// Throttling study: sweep static CTA limits (the Best-SWL oracle search)
// on a cache-sensitive workload and compare the best static point with
// Linebacker's dynamic controller, which throttles by IPC variation and
// reuses the freed registers as victim cache.
//
//	go run ./examples/throttling
package main

import (
	"fmt"
	"log"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	cfg := linebacker.FastConfig()
	bench, _ := linebacker.Benchmark("CF")
	fmt.Printf("CTA throttling on %s — %s\n\n", bench.Name, bench.Desc)

	const windows = 16
	base := mustRun(cfg, bench.Kernel, "baseline", windows)
	fmt.Printf("%-14s IPC %.3f\n", "baseline", base.IPC())

	bestIPC, bestLim := base.IPC(), 0
	for lim := 1; lim <= 5; lim++ {
		res := mustRun(cfg, bench.Kernel, fmt.Sprintf("swl:%d", lim), windows)
		marker := ""
		if res.IPC() > bestIPC {
			bestIPC, bestLim = res.IPC(), lim
			marker = "  <- best so far"
		}
		fmt.Printf("%-14s IPC %.3f%s\n", fmt.Sprintf("swl:%d", lim), res.IPC(), marker)
	}
	fmt.Printf("\nBest-SWL (oracle): limit %d, IPC %.3f (%.2fx baseline)\n",
		bestLim, bestIPC, bestIPC/base.IPC())

	lb := mustRun(cfg, bench.Kernel, "linebacker", windows)
	fmt.Printf("Linebacker:        IPC %.3f (%.2fx baseline, %.2fx Best-SWL)\n",
		lb.IPC(), lb.IPC()/base.IPC(), lb.IPC()/bestIPC)
	fmt.Printf("  throttle events/SM %.1f, reactivations/SM %.1f\n",
		lb.Extra["lb_throttle_events"], lb.Extra["lb_reactivations"])
	fmt.Printf("  victim space (avg) %.0f KB, reg-hit ratio %.1f%%\n",
		lb.Extra["lb_victim_bytes_avg"]/1024, 100*lb.RegHitRatio())
	fmt.Printf("  register backup/restore traffic %.1f KB (%.2f%% of DRAM traffic)\n",
		float64(lb.DRAM.RegBackupBytes+lb.DRAM.RegRestoreBytes)/1024,
		100*float64(lb.DRAM.RegBackupBytes+lb.DRAM.RegRestoreBytes)/float64(lb.DRAM.TotalBytes()))

	fmt.Println("\nUnlike a static limit, Linebacker finds the throttle depth at run time")
	fmt.Println("and converts every throttled CTA's registers into victim cache space.")
}

func mustRun(cfg linebacker.Config, k *linebacker.Kernel, spec string, windows int) *linebacker.Result {
	pol, err := linebacker.NewScheme(spec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := linebacker.Run(cfg, k, pol, windows)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
