// Victim-cache anatomy: show how Linebacker's per-load locality monitoring
// separates high-locality loads from streaming loads, and what the victim
// cache does for each ablation level (Figure 11 of the paper):
//
//	VictimCaching           preserve every evicted line
//	SelectiveVictimCaching  preserve only high-locality loads' lines
//	Linebacker              selective + CTA throttling for more space
//
//	go run ./examples/victimcache
package main

import (
	"fmt"
	"log"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	cfg := linebacker.FastConfig()

	// A kernel with a strong split: one hot 72 KB working set and one
	// heavy streaming load that would pollute an unselective victim cache.
	kernel := linebacker.NewKernel("hot-vs-stream",
		[]linebacker.LoadSpec{
			{Pattern: linebacker.Irregular, Scope: linebacker.PerSM, WorkingSetBytes: 72 * 1024, Coalesced: 2},
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 2, Every: 2},
		},
		[]linebacker.LoadSpec{
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 1},
		},
		2, 8, 2500, 8, 24, 4096)

	const windows = 16
	fmt.Println("scheme                     IPC    reg-hit  installs/SM  drops/SM")
	for _, spec := range []string{"vc", "svc", "linebacker"} {
		pol, err := linebacker.NewScheme(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := linebacker.Run(cfg, kernel, pol, windows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-25s %6.3f  %6.1f%%  %11.0f  %8.0f\n",
			res.Policy, res.IPC(), 100*res.RegHitRatio(),
			res.Extra["lb_vtt_installs"], res.Extra["lb_vtt_drops"])
	}

	fmt.Println("\nWith selection off (VictimCaching) streaming lines flood the victim")
	fmt.Println("space: more installs, more displaced victims, fewer useful reg hits.")

	// Show what the monitor concluded under full Linebacker.
	pol, _ := linebacker.NewScheme("linebacker")
	res, err := linebacker.Run(cfg, kernel, pol, windows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLinebacker monitoring: %.0f windows, %.0f load(s) classified high-locality\n",
		res.Extra["lb_monitor_windows"], res.Extra["lb_selected_loads"])
	fmt.Printf("victim space: %.0f KB average (capacity at end: %.0f KB)\n",
		res.Extra["lb_victim_bytes_avg"]/1024, res.Extra["lb_victim_capacity"]/1024)
}
