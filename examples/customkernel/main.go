// Custom kernel: author a new synthetic workload against the public API and
// evaluate every scheme on it. The kernel below models a sparse solver:
// an irregular row working set shared per SM, per-warp accumulator tiles,
// and a streaming right-hand side.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	kernel := linebacker.NewKernel("sparse-solver",
		[]linebacker.LoadSpec{
			// Matrix rows: irregular reuse across the SM's warps.
			{Pattern: linebacker.Irregular, Scope: linebacker.PerSM, WorkingSetBytes: 88 * 1024, Coalesced: 2},
			// Per-warp accumulators: small hot tiles.
			{Pattern: linebacker.Tiled, Scope: linebacker.PerWarp, WorkingSetBytes: 1024, Coalesced: 1},
			// Right-hand side: streamed once, touched every 4th iteration.
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 2, Every: 4},
		},
		[]linebacker.LoadSpec{
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 1},
		},
		2,    // compute ops per load
		8,    // compute latency
		2500, // iterations per warp
		8,    // warps per CTA
		26,   // registers per thread (leaves ~48 KB of the RF unused)
		4096, // grid CTAs
	)
	if err := kernel.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := linebacker.FastConfig()
	const windows = 16

	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scheme\tIPC\tvs baseline\tL1+reg hit\tDRAM MB")
	var baseIPC float64
	for _, spec := range []string{"baseline", "swl:4", "pcal", "cerf", "cacheext", "svc", "linebacker"} {
		pol, err := linebacker.NewScheme(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := linebacker.Run(cfg, kernel, pol, windows)
		if err != nil {
			log.Fatal(err)
		}
		if spec == "baseline" {
			baseIPC = res.IPC()
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.2fx\t%.1f%%\t%.1f\n",
			res.Policy, res.IPC(), res.IPC()/baseIPC,
			100*res.HitRatio(), float64(res.DRAM.TotalBytes())/(1<<20))
	}
	w.Flush()
}
