// Trace record & replay: capture the full memory trace of one run, then
// replay it through the engine under different schemes. Replay decouples
// the access stream from the synthetic generators, so externally produced
// traces (e.g. converted from GPGPU-Sim) can be studied the same way.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	cfg := linebacker.FastConfig()
	bench, _ := linebacker.Benchmark("S1")

	// 1. Record a short baseline run.
	var buf bytes.Buffer
	rec := linebacker.NewTraceRecorder(&buf)
	pol, _ := linebacker.NewScheme("baseline")
	g, err := linebacker.New(cfg, bench.Kernel, pol)
	if err != nil {
		log.Fatal(err)
	}
	linebacker.RecordTrace(g, rec)
	g.Run(2 * int64(cfg.LB.WindowCycles))
	if err := rec.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d bytes of trace from %s\n", buf.Len(), bench.Name)

	// 2. Parse it back and build a replay kernel.
	tr, err := linebacker.ParseTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d warps, %d static loads, %d events\n\n",
		tr.Warps(), tr.Loads(), tr.Events())
	replay, err := tr.Kernel("replay", 2, 8,
		bench.Kernel.WarpsPerCTA, bench.Kernel.RegsPerThread, bench.Kernel.GridCTAs)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Replay under several schemes.
	fmt.Println("scheme        IPC     hit+reg")
	for _, spec := range []string{"baseline", "cerf", "linebacker"} {
		p, err := linebacker.NewScheme(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := linebacker.Run(cfg, replay, p, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s  %.3f   %.1f%%\n", res.Policy, res.IPC(), 100*res.HitRatio())
	}
}
