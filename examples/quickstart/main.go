// Quickstart: run one cache-sensitive benchmark under the baseline GPU and
// under Linebacker, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	cfg := linebacker.FastConfig()

	bench, ok := linebacker.Benchmark("S2")
	if !ok {
		log.Fatal("benchmark S2 not found")
	}
	fmt.Printf("benchmark: %s — %s (%s)\n\n", bench.Name, bench.Desc, bench.Suite)

	const windows = 16
	for _, spec := range []string{"baseline", "swl:2", "linebacker"} {
		pol, err := linebacker.NewScheme(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := linebacker.Run(cfg, bench.Kernel, pol, windows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s IPC %.3f   L1 hits %4.1f%%   reg hits %4.1f%%   DRAM %6.1f MB\n",
			res.Policy, res.IPC(),
			100*float64(res.Loads[0])/float64(res.TotalLoadReqs()),
			100*res.RegHitRatio(),
			float64(res.DRAM.TotalBytes())/(1<<20))
	}

	fmt.Println("\nLinebacker preserves evicted lines of high-locality loads in idle")
	fmt.Println("register-file space; the reg-hit column is traffic served from there.")
}
