package linebacker_test

import (
	"fmt"
	"log"

	"github.com/linebacker-sim/linebacker"
)

// Example runs one Table 2 benchmark under the full Linebacker architecture
// and reports the victim-cache (Reg) hit share.
func Example() {
	cfg := linebacker.FastConfig()
	bench, ok := linebacker.Benchmark("BC")
	if !ok {
		log.Fatal("unknown benchmark")
	}
	pol, err := linebacker.NewScheme("linebacker")
	if err != nil {
		log.Fatal(err)
	}
	res, err := linebacker.Run(cfg, bench.Kernel, pol, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.RegHitRatio() > 0)
	// Output: true
}

// ExampleNewKernel builds a custom workload declaratively: one hot
// irregular working set plus a streaming input, with a streaming store.
func ExampleNewKernel() {
	k := linebacker.NewKernel("my-kernel",
		[]linebacker.LoadSpec{
			{Pattern: linebacker.Irregular, Scope: linebacker.PerSM, WorkingSetBytes: 64 * 1024, Coalesced: 2},
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 1, Every: 4},
		},
		[]linebacker.LoadSpec{
			{Pattern: linebacker.Streaming, Scope: linebacker.PerWarp, Coalesced: 1},
		},
		2, 8, 2500, 8, 24, 4096)
	fmt.Println(k.Name, len(k.Loads))
	// Output: my-kernel 3
}

// ExampleParseKernelJSON loads the same description from JSON.
func ExampleParseKernelJSON() {
	k, err := linebacker.ParseKernelJSON([]byte(`{
	  "name": "from-json",
	  "loads": [{"pattern": "tiled", "scope": "per-warp", "working_set_bytes": 1024}],
	  "compute_per_load": 2, "compute_latency": 8,
	  "iterations": 1000, "warps_per_cta": 8, "regs_per_thread": 24, "grid_ctas": 64
	}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k.Name, k.WarpsPerCTA)
	// Output: from-json 8
}

// ExampleNewScheme enumerates the comparison points of the paper's
// evaluation.
func ExampleNewScheme() {
	for _, spec := range []string{"baseline", "swl:4", "ccws", "pcal", "cerf", "linebacker"} {
		pol, err := linebacker.NewScheme(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(pol.Name())
	}
	// Output:
	// Baseline
	// SWL-4
	// CCWS
	// PCAL
	// CERF
	// Linebacker
}
