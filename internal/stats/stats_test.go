package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
	// Zero/negative values are skipped, not zeroing the result.
	if got := GeoMean([]float64{0, 4}); got != 4 {
		t.Fatalf("GeoMean(0,4) = %v", got)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			// Restrict to a sane magnitude range: at the extremes of the
			// float64 domain exp(mean(log x)) loses the min/max envelope
			// by more than the comparison tolerance.
			if x > 1e-100 && x < 1e100 && !math.IsNaN(x) {
				pos = append(pos, x)
			}
		}
		for i, x := range xs {
			if !(x > 1e-100 && x < 1e100) {
				xs[i] = 0 // GeoMean skips non-positive entries
			}
		}
		if len(pos) == 0 {
			return GeoMean(xs) == 0
		}
		g := GeoMean(xs)
		min, max := pos[0], pos[0]
		for _, x := range pos {
			min, max = math.Min(min, x), math.Max(max, x)
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
}

func line(n int) memtypes.LineAddr { return memtypes.LineAddr(n * memtypes.LineSize) }

func TestLoadProbeReuseCounting(t *testing.T) {
	p := NewLoadProbe(1000)
	// Window 1: load 0x10 touches lines 0,1,0 (line 0 reused); load 0x20
	// streams lines 10,11,12.
	p.Observe(0x10, line(0), 10)
	p.Observe(0x10, line(1), 20)
	p.Observe(0x10, line(0), 30)
	p.Observe(0x20, line(10), 40)
	p.Observe(0x20, line(11), 50)
	p.Observe(0x20, line(12), 60)
	// Roll into window 2 (empty accesses close window 1).
	p.Observe(0x10, line(5), 1500)
	if p.CompletedWindows() != 1 {
		t.Fatalf("windows = %d", p.CompletedWindows())
	}
	res := p.Results()
	var hot, stream *LoadStats
	for i := range res {
		switch res[i].PC {
		case 0x10:
			hot = &res[i]
		case 0x20:
			stream = &res[i]
		}
	}
	if hot == nil || stream == nil {
		t.Fatalf("missing loads in %+v", res)
	}
	if hot.AvgReusedBytes != memtypes.LineSize {
		t.Fatalf("hot reused = %v, want one line", hot.AvgReusedBytes)
	}
	if hot.Streaming() {
		t.Fatal("hot load classified streaming (reaccess 1/3)")
	}
	if stream.AvgReusedBytes != 0 || !stream.Streaming() {
		t.Fatalf("stream stats = %+v", stream)
	}
	if stream.AvgUniqueBytes != 3*memtypes.LineSize {
		t.Fatalf("stream unique = %v", stream.AvgUniqueBytes)
	}
}

func TestLoadProbeTopOrdering(t *testing.T) {
	p := NewLoadProbe(100)
	for i := 0; i < 10; i++ {
		p.Observe(1, line(i%2), int64(i))
	}
	p.Observe(2, line(50), 1)
	p.Observe(1, line(0), 150) // roll over
	res := p.Results()
	if len(res) != 2 || res[0].PC != 1 {
		t.Fatalf("ordering: %+v", res)
	}
}

func TestTopReusedWorkingSetSkipsStreams(t *testing.T) {
	loads := []LoadStats{
		{PC: 1, AvgAccesses: 100, AvgReusedBytes: 1000, ReaccessRatio: 0.5},
		{PC: 2, AvgAccesses: 90, AvgReusedBytes: 900, ReaccessRatio: 0.01}, // streaming
		{PC: 3, AvgAccesses: 80, AvgReusedBytes: 800, ReaccessRatio: 0.4},
	}
	if got := TopReusedWorkingSet(loads, 4); got != 1800 {
		t.Fatalf("TopReusedWorkingSet = %v, want 1800 (streaming excluded)", got)
	}
	if got := TopReusedWorkingSet(loads, 1); got != 1000 {
		t.Fatalf("top-1 = %v", got)
	}
	if got := StreamingBytes(loads); got != 0 {
		// load 2 has no AvgUniqueBytes set
		t.Fatalf("StreamingBytes = %v", got)
	}
	loads[1].AvgUniqueBytes = 5000
	if got := StreamingBytes(loads); got != 5000 {
		t.Fatalf("StreamingBytes = %v", got)
	}
}
