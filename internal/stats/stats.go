// Package stats provides measurement utilities shared by the experiment
// harness: geometric means, and the per-load working-set / streaming-size
// probes behind Figures 2 and 3.
package stats

import (
	"cmp"
	"fmt"
	"math"
	"sort"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// SortedKeys returns the map's keys in ascending order. It is the
// project-wide idiom for deterministic map iteration: Go randomises map
// order per run, so any iteration that feeds simulation state or a
// reported metric must go through a sorted key slice (see DESIGN.md and
// the lbvet maprange rule).
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GeoMean returns the geometric mean of positive values; zero/negative
// values are skipped. It returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// PairedGeoMean returns the geometric mean of the element-wise ratios
// num[i]/den[i]. Unlike GeoMean — which quietly skips non-positive values,
// fine for a slice of speedups but dangerous when the two sides of a ratio
// come from different sweeps — it refuses to aggregate anything invalid:
// mismatched lengths, empty input, or a non-positive/non-finite value on
// either side is an error naming the offending index, never a silently
// smaller average.
func PairedGeoMean(num, den []float64) (float64, error) {
	if len(num) != len(den) {
		return 0, fmt.Errorf("stats: paired geomean over mismatched arms: %d vs %d values", len(num), len(den))
	}
	if len(num) == 0 {
		return 0, fmt.Errorf("stats: paired geomean of no pairs")
	}
	sum := 0.0
	for i := range num {
		if !(num[i] > 0) || math.IsInf(num[i], 1) {
			return 0, fmt.Errorf("stats: paired geomean: numerator %d is %v (want finite positive)", i, num[i])
		}
		if !(den[i] > 0) || math.IsInf(den[i], 1) {
			return 0, fmt.Errorf("stats: paired geomean: denominator %d is %v (want finite positive)", i, den[i])
		}
		sum += math.Log(num[i] / den[i])
	}
	return math.Exp(sum / float64(len(num))), nil
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// LoadStats summarises one static load's behaviour averaged over complete
// monitoring windows (Figures 2 and 3).
type LoadStats struct {
	PC uint32
	// AvgAccesses is the mean line-requests per window.
	AvgAccesses float64
	// AvgReusedBytes is the mean per-window footprint of lines touched at
	// least twice within the window (Figure 2's reused working set).
	AvgReusedBytes float64
	// AvgUniqueBytes is the mean per-window footprint of all touched lines.
	AvgUniqueBytes float64
	// ReaccessRatio is re-accesses / accesses: a load with a ratio below
	// 0.05 misses >95 % with an infinite cache — the paper's definition of
	// a streaming load (Figure 3).
	ReaccessRatio float64
}

// Streaming reports whether the load meets the paper's streaming test.
func (l *LoadStats) Streaming() bool { return l.ReaccessRatio < 0.05 }

// LoadProbe watches every load line-request of one SM and aggregates
// per-load, per-window reuse statistics. Attach its Observe method to
// sim.SM.Probe.
type LoadProbe struct {
	window int64

	cur       map[uint32]map[memtypes.LineAddr]int32
	winStart  int64
	completed int

	sums map[uint32]*probeSums
}

// probeSums accumulates in integers: every contribution is a whole count
// or a whole line's bytes, and integer addition is commutative, so the
// running sums are exact and independent of map iteration order (floats
// would make the total order-sensitive — the lbvet floatsum rule).
type probeSums struct {
	accesses    int64
	reusedBytes int64
	uniqueBytes int64
	reaccesses  int64
	windows     int
}

// NewLoadProbe builds a probe with the given window length in cycles.
func NewLoadProbe(windowCycles int64) *LoadProbe {
	return &LoadProbe{
		window: windowCycles,
		cur:    map[uint32]map[memtypes.LineAddr]int32{},
		sums:   map[uint32]*probeSums{},
	}
}

// Observe records one load line-request; call it from sim.SM.Probe.
func (p *LoadProbe) Observe(pc uint32, line memtypes.LineAddr, cycle int64) {
	if cycle-p.winStart >= p.window {
		p.rollover()
		p.winStart = cycle - (cycle-p.winStart)%p.window
	}
	m := p.cur[pc]
	if m == nil {
		m = map[memtypes.LineAddr]int32{}
		p.cur[pc] = m
	}
	m[line]++
}

// rollover closes the current window into the running sums.
func (p *LoadProbe) rollover() {
	for pc, lines := range p.cur {
		s := p.sums[pc]
		if s == nil {
			s = &probeSums{}
			p.sums[pc] = s
		}
		for _, n := range lines {
			s.accesses += int64(n)
			s.uniqueBytes += memtypes.LineSize
			if n >= 2 {
				s.reusedBytes += memtypes.LineSize
				s.reaccesses += int64(n - 1)
			}
		}
		s.windows++
	}
	p.completed++
	p.cur = map[uint32]map[memtypes.LineAddr]int32{}
}

// Results returns per-load statistics over all completed windows, sorted by
// AvgAccesses descending (so [0:4] are the paper's "top four frequently
// executed loads").
func (p *LoadProbe) Results() []LoadStats {
	var out []LoadStats
	for pc, s := range p.sums {
		if s.windows == 0 || s.accesses == 0 {
			continue
		}
		w := float64(s.windows)
		out = append(out, LoadStats{
			PC:             pc,
			AvgAccesses:    float64(s.accesses) / w,
			AvgReusedBytes: float64(s.reusedBytes) / w,
			AvgUniqueBytes: float64(s.uniqueBytes) / w,
			ReaccessRatio:  float64(s.reaccesses) / float64(s.accesses),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AvgAccesses != out[j].AvgAccesses {
			return out[i].AvgAccesses > out[j].AvgAccesses
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// CompletedWindows returns how many full windows rolled over.
func (p *LoadProbe) CompletedWindows() int { return p.completed }

// TopReusedWorkingSet returns the summed per-window reused footprint of the
// top-n non-streaming loads (Figure 2's metric).
func TopReusedWorkingSet(loads []LoadStats, n int) float64 {
	total := 0.0
	taken := 0
	for _, l := range loads {
		if l.Streaming() {
			continue
		}
		total += l.AvgReusedBytes
		taken++
		if taken == n {
			break
		}
	}
	return total
}

// StreamingBytes returns the summed per-window unique footprint of all
// streaming loads (Figure 3's metric).
func StreamingBytes(loads []LoadStats) float64 {
	total := 0.0
	for _, l := range loads {
		if l.Streaming() {
			total += l.AvgUniqueBytes
		}
	}
	return total
}
