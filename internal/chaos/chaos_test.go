package chaos_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

func chaosConfig(c config.Chaos) config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 2
	cfg.LB.WindowCycles = 2000
	cfg.Chaos = c
	return cfg
}

func chaosKernel() *workload.Kernel {
	return workload.NewKernel("chaos-tiny",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 8 * 1024, Coalesced: 1, Phase: 1},
			{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1},
		},
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		2, 4, 200, 4, 16, 16)
}

// runRecovering runs the machine and returns the recovered panic message
// ("" if the run finished cleanly) plus the cycle it stopped at.
func runRecovering(t *testing.T, cfg config.Config, maxCycles int64) (msg string, cycle int64) {
	t.Helper()
	g, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Check {
		check.Attach(g)
	}
	chaos.Attach(g)
	defer func() {
		if p := recover(); p != nil {
			msg, cycle = fmt.Sprint(p), g.Cycle()
		}
	}()
	return "", g.Run(maxCycles)
}

func TestChaosPanicIsDeterministic(t *testing.T) {
	cfg := chaosConfig(config.Chaos{Enabled: true, Seed: 7, PanicStage: "sm", PanicCycle: 3000})
	msg1, cyc1 := runRecovering(t, cfg, 1_000_000)
	msg2, cyc2 := runRecovering(t, cfg, 1_000_000)
	if msg1 == "" {
		t.Fatal("armed panic fault never fired")
	}
	if msg1 != msg2 || cyc1 != cyc2 {
		t.Fatalf("chaos panic not reproducible: (%q, %d) vs (%q, %d)", msg1, cyc1, msg2, cyc2)
	}
	if !strings.Contains(msg1, "chaos: injected panic in stage sm") {
		t.Fatalf("unexpected panic message %q", msg1)
	}
	if cyc1 < 3000 {
		t.Fatalf("panic fired at cycle %d, before the armed cycle 3000", cyc1)
	}
}

func TestChaosStallDRAMFreezesProgress(t *testing.T) {
	clean := chaosConfig(config.Chaos{})
	g, err := sim.New(clean, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	cleanCycles := g.Run(2_000_000)
	cleanDone := g.Collect().CTACompleted

	cfg := chaosConfig(config.Chaos{Enabled: true, Seed: 1, StallDRAMCycle: 500})
	s, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	chaos.Attach(s)
	// Run as long as the clean kernel needed and then some: with DRAM
	// frozen the kernel must not complete.
	s.Run(cleanCycles * 4)
	res := s.Collect()
	if !s.DRAM().Stalled() {
		t.Fatal("DRAM never entered the stalled state")
	}
	if res.CTACompleted >= cleanDone {
		t.Fatalf("stalled run completed %d CTAs (clean run: %d); DRAM stall ineffective",
			res.CTACompleted, cleanDone)
	}
}

func TestChaosCorruptStatsTripsInvariantChecker(t *testing.T) {
	cfg := chaosConfig(config.Chaos{Enabled: true, Seed: 3, CorruptStatsCycle: 2000})
	cfg.Check = true
	cfg.CheckEvery = 1000
	msg, _ := runRecovering(t, cfg, 1_000_000)
	if msg == "" {
		t.Fatal("corrupted statistics never tripped the invariant checker")
	}
	if !strings.Contains(msg, "invariant violation") || !strings.Contains(msg, "load-accounting") {
		t.Fatalf("panic did not come from the load-accounting invariant: %q", msg)
	}
}

func TestChaosInactiveIsNoop(t *testing.T) {
	cfg := chaosConfig(config.Chaos{})
	g, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if in := chaos.Attach(g); in != nil {
		t.Fatal("Attach installed an injector with no fault armed")
	}
}

func TestChaosBenchScopeAttachesOnlyToVictim(t *testing.T) {
	// A bench-scoped fault must attach to the named kernel only: this is
	// the single-spec, one-victim mechanism the sweep service relies on to
	// fault 1 of N points of a request.
	armed := config.Chaos{Enabled: true, Seed: 1, PanicStage: "sm", PanicCycle: 100,
		Bench: "chaos-tiny"}
	cfg := chaosConfig(armed)
	g, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if in := chaos.Attach(g); in == nil {
		t.Fatal("Attach skipped the kernel its Bench scope names")
	}

	// Same armed config, different kernel: no injector, and the run is
	// fault-free end to end.
	cfg.Chaos.Bench = "some-other-bench"
	msg, _ := runRecovering(t, cfg, 2000)
	if msg != "" {
		t.Fatalf("bench-scoped fault fired on a non-victim kernel: %s", msg)
	}
}

func TestChaosParseSpec(t *testing.T) {
	good := map[string]config.Chaos{
		"":                    {},
		"panic:sm:5000":       {Enabled: true, Seed: 1, PanicStage: "sm", PanicCycle: 5000},
		"stall-dram:2000":     {Enabled: true, Seed: 1, StallDRAMCycle: 2000},
		"corrupt-stats:900":   {Enabled: true, Seed: 1, CorruptStatsCycle: 900},
		"stall-dram:1,seed:9": {Enabled: true, Seed: 9, StallDRAMCycle: 1},
		"panic:sm:1000,bench:S2": {
			Enabled: true, Seed: 1, PanicStage: "sm", PanicCycle: 1000, Bench: "S2"},
		"panic:dram:10,corrupt-stats:20": {
			Enabled: true, Seed: 1, PanicStage: "dram", PanicCycle: 10, CorruptStatsCycle: 20},
	}
	for spec, want := range good {
		got, err := chaos.ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q) failed: %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", spec, got, want)
		}
	}
	bad := []string{
		"panic:sm",          // missing cycle
		"panic:nowhere:100", // unknown stage
		"panic:sm:-5",       // negative cycle
		"stall-dram:x",      // non-numeric
		"seed:1",            // seed alone arms nothing
		"bogus:1",           // unknown directive
		"panic:sm:100,,",    // empty directive
		"bench:",            // empty bench scope
		"bench:S2",          // scope alone arms nothing
	}
	for _, spec := range bad {
		if _, err := chaos.ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", spec)
		}
	}
}
