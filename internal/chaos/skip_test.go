package chaos_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// runSkipRecovering runs the chaos kernel under the given config and
// returns the recovered panic message ("" if none), the cycle the machine
// stopped at, and how many cycles the run skipped.
func runSkipRecovering(t *testing.T, cfg config.Config, maxCycles int64) (msg string, cycle, skipped int64) {
	t.Helper()
	g, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	chaos.Attach(g)
	defer func() {
		if p := recover(); p != nil {
			msg, cycle, skipped = fmt.Sprint(p), g.Cycle(), g.SkippedCycles()
		}
	}()
	cycle = g.Run(maxCycles)
	return "", cycle, g.SkippedCycles()
}

// TestChaosPanicExactCycleUnderSkipping proves the injector's NextEvent
// participation is load-bearing: with DRAM frozen at cycle 500 the machine
// livelocks into a fully skippable wedge, yet the armed panic at cycle
// 4000 must still fire at exactly cycle 4000 — the skip has to land on the
// advertised fault cycle, never jump it. A skipped count of zero would
// mean the scenario degenerated into strict ticking and proved nothing.
func TestChaosPanicExactCycleUnderSkipping(t *testing.T) {
	cfg := chaosConfig(config.Chaos{
		Enabled: true, Seed: 3,
		StallDRAMCycle: 500,
		PanicStage:     "dram", PanicCycle: 4000,
	})
	cfg.Strict = false
	msg, cycle, skipped := runSkipRecovering(t, cfg, 1_000_000)
	if msg == "" {
		t.Fatal("armed panic fault never fired under skipping")
	}
	if cycle != 4000 {
		t.Fatalf("panic fired at cycle %d, want exactly 4000 (skip jumped the fault point)", cycle)
	}
	if skipped == 0 {
		t.Fatal("run never skipped a cycle; the exact-cycle property was tested under strict ticking")
	}
	if !strings.Contains(msg, "dram") || !strings.Contains(msg, "4000") {
		t.Errorf("panic message lacks stage/cycle identification: %q", msg)
	}
}

// strictOnlyInjector is a FaultInjector that does NOT implement
// sim.NextEventer: the engine cannot know which cycles it must not jump
// over, so RunCtx has to fall back to strict ticking for the whole run.
type strictOnlyInjector struct{ stages int64 }

func (f *strictOnlyInjector) Stage(g *sim.GPU, name string, cycle int64) { f.stages++ }

// TestNonNextEventerInjectorForcesStrict pins the fallback: an opaque
// injector disables skipping entirely (SkippedCycles == 0) and the run
// still produces exactly the results of an uninstrumented strict run.
func TestNonNextEventerInjectorForcesStrict(t *testing.T) {
	cfg := chaosConfig(config.Chaos{})
	cfg.Strict = false
	// Stretch DRAM timing so warps stall long enough for the event engine
	// to find skippable spans — a fully busy machine would make the
	// "plain run skips" half of the comparison vacuous.
	cfg.GPU.DRAM.RCD, cfg.GPU.DRAM.RP, cfg.GPU.DRAM.CL = 120, 120, 120
	run := func(inject bool) (*sim.Result, string, int64) {
		g, err := sim.New(cfg, chaosKernel(), sim.Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		var inj *strictOnlyInjector
		if inject {
			inj = &strictOnlyInjector{}
			g.SetFaultInjector(inj)
		}
		g.Run(20_000)
		if inject && inj.stages == 0 {
			t.Fatal("injector installed but never observed a stage")
		}
		return g.Collect(), g.StateDump(), g.SkippedCycles()
	}
	ri, di, skippedI := run(true)
	rp, dp, skippedP := run(false)
	if skippedI != 0 {
		t.Fatalf("run with a non-NextEventer injector skipped %d cycles, want 0 (forced strict)", skippedI)
	}
	if skippedP == 0 {
		t.Fatal("plain skipping run never skipped; the comparison is vacuous")
	}
	if di != dp {
		t.Fatalf("forced-strict instrumented run diverged from skipping run:\n--- injected ---\n%s\n--- plain ---\n%s", di, dp)
	}
	if ri.Cycles != rp.Cycles || ri.Instructions != rp.Instructions {
		t.Fatalf("result divergence: injected %+v vs plain %+v", ri, rp)
	}
}
