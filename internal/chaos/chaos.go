// Package chaos is a deterministic, seed-driven fault injector for the
// simulator's recovery paths. It implements sim.FaultInjector and, driven
// entirely by config.Chaos, can
//
//   - force a panic the first time a named Step stage executes at or after
//     a given cycle (exercises the harness's per-run panic isolation) — the
//     "sm-worker" pseudo-stage fires inside one SM's tick instead, on a
//     worker goroutine when GPU.Workers > 1 (exercises the parallel
//     executor's panic propagation across the cycle barrier),
//   - stall the DRAM model so dependent warps livelock (exercises the
//     harness watchdog), and
//   - corrupt a load-outcome counter on one SM (trips the internal/check
//     conservation rules).
//
// Every fault is a pure function of (config.Chaos, stage, cycle), so a
// chaos run is exactly as reproducible as a clean one. The harness memo
// fingerprint covers config.Chaos, so faulted results can never alias clean
// cache entries (see DESIGN.md §7).
package chaos

import (
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// Injector applies the faults of one config.Chaos to a running GPU. One
// injector serves one run; each fault fires at most once.
type Injector struct {
	c   config.Chaos
	rng *rand.Rand

	panicked  bool
	stalled   bool
	corrupted bool
}

// New builds an injector for the given chaos configuration.
func New(c config.Chaos) *Injector {
	return &Injector{
		c:   c,
		rng: rand.New(rand.NewPCG(c.Seed, c.Seed^0x9e3779b97f4a7c15)),
	}
}

// Attach installs an injector on the GPU when its configuration arms any
// chaos fault; it is a no-op (and returns nil) otherwise. A Bench-scoped
// chaos config attaches only to runs of the named kernel — the mechanism a
// sweep service uses to fault exactly one point of a many-benchmark
// request while every other point runs fault-free (and, because the chaos
// fields still fingerprint into every memo key, never aliases a clean
// cache entry).
func Attach(g *sim.GPU) *Injector {
	c := g.Config().Chaos
	if !c.Active() {
		return nil
	}
	if c.Bench != "" && g.Kernel().Name != c.Bench {
		return nil
	}
	in := New(c)
	g.SetFaultInjector(in)
	return in
}

// Stage implements sim.FaultInjector.
func (in *Injector) Stage(g *sim.GPU, stage string, cycle int64) {
	c := &in.c
	if c.StallDRAMCycle > 0 && !in.stalled && stage == "dram" && cycle >= c.StallDRAMCycle {
		in.stalled = true
		g.DRAM().SetStalled(true)
	}
	if c.CorruptStatsCycle > 0 && !in.corrupted && stage == "sm" && cycle >= c.CorruptStatsCycle {
		in.corrupted = true
		sms := g.SMs()
		victim := sms[in.rng.IntN(len(sms))]
		// Bump one outcome counter without the matching L1 event: the
		// load-accounting rule's two independent tallies now disagree.
		victim.Stats.LoadReqs[sim.OutHit] += 1 + int64(in.rng.IntN(7))
	}
	// The stage comparison must come before the panicked read: with an
	// "sm-worker" fault armed, panicked is written inside an SM tick —
	// possibly on a worker goroutine — and "sm-worker" never matches a
	// Stage name, so the short-circuit keeps this coordinator-side hook
	// from racing that write.
	if c.PanicCycle > 0 && stage == c.PanicStage && !in.panicked && cycle >= c.PanicCycle {
		in.panicked = true
		panic(fmt.Sprintf("chaos: injected panic in stage %s at cycle %d (seed %d)", stage, cycle, c.Seed))
	}
}

// NextEvent implements sim.NextEventer so the event-driven engine can skip
// cycles without jumping over an exact (stage, cycle) fault point: every
// armed, not-yet-fired fault advertises its trigger cycle, so that cycle is
// always ticked and the fault fires exactly where a strict run fires it.
// Once every fault has fired the injector is quiescent. Without this method
// the engine would have to (and, for third-party injectors, does) fall back
// to strict ticking.
//
// Reading the fired flags here is race-free even for the "sm-worker" fault,
// whose flag is written on a worker goroutine: the engine calls NextEvent
// between Steps, after the cycle barrier has ordered all worker writes
// before coordinator reads.
func (in *Injector) NextEvent(now int64) (int64, bool) {
	c := &in.c
	best, any := int64(0), false
	merge := func(cyc int64) {
		if cyc < now {
			cyc = now
		}
		if !any || cyc < best {
			best, any = cyc, true
		}
	}
	if c.PanicCycle > 0 && !in.panicked {
		merge(c.PanicCycle)
	}
	if c.StallDRAMCycle > 0 && !in.stalled {
		merge(c.StallDRAMCycle)
	}
	if c.CorruptStatsCycle > 0 && !in.corrupted {
		merge(c.CorruptStatsCycle)
	}
	return best, any
}

// SMTick implements sim.SMTickFaultInjector: the "sm-worker" panic stage
// fires inside the victim SM's tick, which runs on a worker goroutine when
// GPU.Workers > 1 — proving a worker panic crosses the cycle barrier and
// reaches the harness as a structured error. The victim is a pure function
// of the chaos seed, and only the victim SM's goroutine ever evaluates (or
// writes) the panicked flag, so the hook is race-free under the parallel
// executor.
func (in *Injector) SMTick(g *sim.GPU, smID int, cycle int64) {
	c := &in.c
	if c.PanicStage != "sm-worker" || c.PanicCycle == 0 {
		return
	}
	if victim := int(c.Seed % uint64(len(g.SMs()))); smID != victim {
		return
	}
	if !in.panicked && cycle >= c.PanicCycle {
		in.panicked = true
		panic(fmt.Sprintf("chaos: injected panic in SM %d tick at cycle %d (seed %d)", smID, cycle, c.Seed))
	}
}

// ParseSpec parses the CLI chaos syntax into a config.Chaos. The spec is a
// comma-separated list of directives:
//
//	panic:<stage>:<cycle>     force a panic in the named Step stage
//	                          (stage "sm-worker" panics inside an SM tick)
//	stall-dram:<cycle>        freeze the DRAM model from that cycle on
//	corrupt-stats:<cycle>     corrupt an SM load counter at that cycle
//	bench:<name>              scope every fault to runs of this benchmark
//	seed:<n>                  injector PRNG seed (default 1)
//
// Example: "panic:sm:5000" or "stall-dram:2000,seed:7", or — the sweep
// service's one-victim form — "panic:sm:1000,bench:S2". An empty spec
// returns a disabled Chaos.
func ParseSpec(spec string) (config.Chaos, error) {
	var c config.Chaos
	if spec == "" {
		return c, nil
	}
	c.Enabled = true
	c.Seed = 1
	for _, dir := range strings.Split(spec, ",") {
		parts := strings.Split(dir, ":")
		bad := func() (config.Chaos, error) {
			return config.Chaos{}, fmt.Errorf("chaos: bad directive %q in spec %q", dir, spec)
		}
		switch parts[0] {
		case "panic":
			if len(parts) != 3 {
				return bad()
			}
			cyc, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || cyc <= 0 {
				return bad()
			}
			c.PanicStage, c.PanicCycle = parts[1], cyc
		case "stall-dram":
			if len(parts) != 2 {
				return bad()
			}
			cyc, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || cyc <= 0 {
				return bad()
			}
			c.StallDRAMCycle = cyc
		case "corrupt-stats":
			if len(parts) != 2 {
				return bad()
			}
			cyc, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil || cyc <= 0 {
				return bad()
			}
			c.CorruptStatsCycle = cyc
		case "bench":
			if len(parts) != 2 || parts[1] == "" {
				return bad()
			}
			c.Bench = parts[1]
		case "seed":
			if len(parts) != 2 {
				return bad()
			}
			seed, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil {
				return bad()
			}
			c.Seed = seed
		default:
			return bad()
		}
	}
	// Surface stage typos and empty specs here, with CLI-quality messages.
	cfg := config.Default()
	cfg.Chaos = c
	if err := cfg.Validate(); err != nil {
		return config.Chaos{}, fmt.Errorf("chaos: spec %q: %w", spec, err)
	}
	return c, nil
}
