package twin

import (
	"context"
	"fmt"
	"sort"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Axes selects the calibration anchors. A nil slice means the default
// anchor set; an empty non-nil slice disables that axis (its queries are
// then out of envelope and fall back to simulation).
type Axes struct {
	// L1KB lists the cache-size anchors in KB (default 16, 32, 48, 96,
	// 192 — brackets the Table 1 point and the Fig. 14 sweep range).
	L1KB []int
	// SWLLimits lists static CTA limits (default: 1, maxResident/4,
	// maxResident/2 and maxResident, deduplicated).
	SWLLimits []int
	// VTTParts lists Linebacker MaxPartitions anchors — the
	// victim-capacity axis (default 1, 4 and the configured maximum).
	VTTParts []int
}

// Options tunes a calibration. The zero value is production-ready.
type Options struct {
	Axes Axes
	// BandFloor is the minimum relative confidence half-width (default
	// 0.05): even a perfectly linear calibration curve does not promise
	// sub-5% accuracy between anchors.
	BandFloor float64
	// BandMargin multiplies the leave-one-out cross-validation error into
	// the band (default 2): the LOO error measures curvature at the
	// anchors, and the margin covers curvature between them.
	BandMargin float64
}

func (o Options) withDefaults() Options {
	if o.Axes.L1KB == nil {
		o.Axes.L1KB = []int{16, 32, 48, 96, 192}
	}
	if o.BandFloor <= 0 {
		o.BandFloor = 0.05
	}
	if o.BandMargin <= 0 {
		o.BandMargin = 2
	}
	return o
}

// defaultSWLAnchors spreads anchors over [1, maxResident].
func defaultSWLAnchors(maxResident int) []int {
	if maxResident < 1 {
		return nil
	}
	return dedupeSorted([]int{1, maxResident / 4, maxResident / 2, maxResident})
}

func dedupeSorted(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x >= 1 {
			out = append(out, x)
		}
	}
	sort.Ints(out)
	n := 0
	for _, x := range out {
		if n == 0 || out[n-1] != x {
			out[n] = x
			n++
		}
	}
	return out[:n]
}

// Calibrate fits one benchmark's analytical twin by running the anchor
// sweep through the runner. Runs are memoised (and, with a store attached,
// committed) like any other harness run, so repeated calibrations — across
// requests, processes and replicas — pay each anchor at most once.
//
// The returned model is a pure function of the anchor results, which are
// themselves bit-identical at any worker count and in both run modes, so
// calibration is deterministic by construction (test-enforced).
func Calibrate(ctx context.Context, r *harness.Runner, bench string, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	b, ok := workload.ByName(bench)
	if !ok {
		return nil, fmt.Errorf("twin: unknown benchmark %q", bench)
	}
	baseCfg := r.Cfg
	m := &Model{
		Bench:       bench,
		Windows:     r.Windows,
		BaseL1Bytes: baseCfg.GPU.L1Bytes,
		MaxResident: sim.MaxResidentCTAs(&baseCfg.GPU, b.Kernel),
	}

	// Cache-size axis: both policy arms at every anchor.
	kbs := dedupeSorted(opt.Axes.L1KB)
	baseBPI := make([]float64, 0, len(kbs)) // baseline bytes/instr per anchor, for the roofline
	for _, kb := range kbs {
		cfg := baseCfg
		cfg.GPU.L1Bytes = kb * 1024
		key := fmt.Sprintf("twin|w=%d|l1=%d", r.Windows, kb)
		base, err := r.RunCfg(ctx, cfg, key, bench, sim.Baseline{})
		if err != nil {
			return nil, fmt.Errorf("twin: calibrating %s l1=%dKB baseline: %w", bench, kb, err)
		}
		lbr, err := r.RunCfg(ctx, cfg, key, bench, core.New())
		if err != nil {
			return nil, fmt.Errorf("twin: calibrating %s l1=%dKB lb: %w", bench, kb, err)
		}
		m.CalRuns += 2
		m.Base = append(m.Base, cachePointOf(cfg.GPU.L1Bytes, base))
		m.LB = append(m.LB, cachePointOf(cfg.GPU.L1Bytes, lbr))
		bpi := 0.0
		if base.Instructions > 0 {
			bpi = float64(base.DRAM.TotalBytes()) / float64(base.Instructions)
		}
		baseBPI = append(baseBPI, bpi)
	}
	if len(m.Base) < 2 {
		return nil, fmt.Errorf("twin: %s: need at least 2 cache-size anchors, have %d", bench, len(m.Base))
	}

	// SWL occupancy axis at the base L1 size.
	swls := opt.Axes.SWLLimits
	if swls == nil {
		swls = defaultSWLAnchors(m.MaxResident)
	}
	for _, lim := range dedupeSorted(swls) {
		if lim > m.MaxResident {
			continue
		}
		res, err := r.RunCfg(ctx, baseCfg, fmt.Sprintf("twin|w=%d", r.Windows), bench, schemes.SWL{Limit: lim})
		if err != nil {
			return nil, fmt.Errorf("twin: calibrating %s swl=%d: %w", bench, lim, err)
		}
		m.CalRuns++
		m.SWL = append(m.SWL, LimitPoint{Limit: lim, IPC: res.IPC()})
	}

	// Victim-capacity axis: Linebacker with varying VTT partition caps.
	vtts := opt.Axes.VTTParts
	if vtts == nil {
		vtts = dedupeSorted([]int{1, 4, baseCfg.LB.MaxPartitions})
	}
	for _, parts := range dedupeSorted(vtts) {
		if parts > baseCfg.LB.MaxPartitions {
			continue
		}
		cfg := baseCfg
		cfg.LB.MaxPartitions = parts
		res, err := r.RunCfg(ctx, cfg, fmt.Sprintf("twin|w=%d|vttp=%d", r.Windows, parts), bench, core.New())
		if err != nil {
			return nil, fmt.Errorf("twin: calibrating %s vtt=%d: %w", bench, parts, err)
		}
		m.CalRuns++
		m.VTT = append(m.VTT, LimitPoint{Limit: parts, IPC: res.IPC()})
	}

	for _, pts := range [][]CachePoint{m.Base, m.LB} {
		for _, p := range pts {
			if p.IPC <= 0 {
				return nil, fmt.Errorf("twin: %s: anchor at l1=%d B retired nothing (IPC 0); benchmark cannot be modelled", bench, p.L1Bytes)
			}
		}
	}

	m.Band = Bands{
		Cache: bandOf(looCache(m.Base, m.LB), opt),
		SWL:   bandOf(looLimit(m.SWL), opt),
		VTT:   bandOf(looLimit(m.VTT), opt),
	}
	m.Roofline = rooflineOf(&baseCfg, m, baseBPI)
	return m, nil
}

// cachePointOf projects one anchor run onto the cache curve.
func cachePointOf(l1Bytes int, res *sim.Result) CachePoint {
	miss := 0.0
	if total := res.L1.TotalLoadAccesses(); total > 0 {
		miss = float64(res.L1.LoadMisses) / float64(total)
	}
	return CachePoint{
		L1Bytes:        l1Bytes,
		EffectiveBytes: float64(l1Bytes) + res.Extra["lb_victim_bytes_avg"],
		IPC:            res.IPC(),
		MissRate:       miss,
	}
}

// looCache returns the maximum leave-one-out relative IPC error across the
// interior anchors of the cache arms: each interior anchor is predicted
// from its neighbours with the same log-linear interpolant queries use,
// and the worst relative miss is the curvature signal the band scales.
func looCache(curves ...[]CachePoint) float64 {
	maxErr := 0.0
	for _, pts := range curves {
		for i := 1; i < len(pts)-1; i++ {
			a, b, p := pts[i-1], pts[i+1], pts[i]
			if p.IPC <= 0 {
				continue
			}
			x := logFrac(float64(a.L1Bytes), float64(b.L1Bytes), float64(p.L1Bytes))
			pred := lerp(a.IPC, b.IPC, x)
			if e := relErr(pred, p.IPC); e > maxErr {
				maxErr = e
			}
		}
	}
	return maxErr
}

// looLimit is looCache for the linear integer-limit curves.
func looLimit(pts []LimitPoint) float64 {
	maxErr := 0.0
	for i := 1; i < len(pts)-1; i++ {
		a, b, p := pts[i-1], pts[i+1], pts[i]
		if p.IPC <= 0 || b.Limit == a.Limit {
			continue
		}
		x := float64(p.Limit-a.Limit) / float64(b.Limit-a.Limit)
		pred := lerp(a.IPC, b.IPC, x)
		if e := relErr(pred, p.IPC); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

func relErr(pred, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	e := (pred - actual) / actual
	if e < 0 {
		e = -e
	}
	return e
}

// bandOf turns a LOO error into the published half-width.
func bandOf(looErr float64, opt Options) float64 {
	band := looErr * opt.BandMargin
	if band < opt.BandFloor {
		band = opt.BandFloor
	}
	return band
}

// rooflineOf positions the benchmark between the machine's two roofs using
// the baseline anchor nearest the base L1 size.
func rooflineOf(cfg *config.Config, m *Model, baseBPI []float64) Roofline {
	g := &cfg.GPU
	rl := Roofline{
		PeakBytesPerCycle: g.BytesPerCycle(),
		IssueRoofIPC:      float64(g.NumSMs * g.NumSchedulers * g.IssueWidth),
	}
	// Nearest baseline anchor to the base size (the curves are sorted).
	best := -1
	for i, p := range m.Base {
		if best < 0 || absInt(p.L1Bytes-m.BaseL1Bytes) < absInt(m.Base[best].L1Bytes-m.BaseL1Bytes) {
			best = i
		}
	}
	if best >= 0 && best < len(baseBPI) {
		rl.BytesPerInstr = baseBPI[best]
	}
	if rl.BytesPerInstr > 0 {
		rl.BandwidthRoofIPC = rl.PeakBytesPerCycle / rl.BytesPerInstr
		rl.MemBound = rl.BandwidthRoofIPC < rl.IssueRoofIPC
	}
	return rl
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
