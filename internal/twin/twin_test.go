package twin

import (
	"math"
	"strings"
	"testing"
)

// testModel builds a hand-written model exercising every curve.
func testModel() *Model {
	return &Model{
		Bench:       "T1",
		Windows:     3,
		BaseL1Bytes: 48 * 1024,
		MaxResident: 8,
		Base: []CachePoint{
			{L1Bytes: 16 * 1024, IPC: 1.0, MissRate: 0.60},
			{L1Bytes: 48 * 1024, IPC: 2.0, MissRate: 0.30},
			{L1Bytes: 96 * 1024, IPC: 3.0, MissRate: 0.10},
		},
		LB: []CachePoint{
			{L1Bytes: 16 * 1024, IPC: 1.5, MissRate: 0.50},
			{L1Bytes: 48 * 1024, IPC: 2.5, MissRate: 0.20},
			{L1Bytes: 96 * 1024, IPC: 3.5, MissRate: 0.05},
		},
		SWL:      []LimitPoint{{Limit: 1, IPC: 0.8}, {Limit: 4, IPC: 1.6}, {Limit: 8, IPC: 2.0}},
		VTT:      []LimitPoint{{Limit: 1, IPC: 2.1}, {Limit: 4, IPC: 2.4}, {Limit: 8, IPC: 2.5}},
		Band:     Bands{Cache: 0.10, SWL: 0.08, VTT: 0.06},
		Roofline: Roofline{IssueRoofIPC: 16},
	}
}

func TestEstimateAtAnchorsIsExact(t *testing.T) {
	m := testModel()
	for _, tc := range []struct {
		q    Query
		want float64
	}{
		{Query{}, 2.0}, // zero value = baseline at base L1
		{Query{L1Bytes: 16 * 1024}, 1.0},
		{Query{L1Bytes: 96 * 1024}, 3.0},
		{Query{LB: true}, 2.5},
		{Query{L1Bytes: 16 * 1024, LB: true}, 1.5},
		{Query{SWLLimit: 4}, 1.6},
		{Query{SWLLimit: 8}, 2.0},
		{Query{LB: true, VTTParts: 4}, 2.4},
	} {
		e := m.Estimate(tc.q)
		if !e.InEnvelope {
			t.Errorf("%+v: out of envelope: %s", tc.q, e.Reason)
			continue
		}
		if math.Abs(e.IPC-tc.want) > 1e-12 {
			t.Errorf("%+v: IPC = %v, want %v", tc.q, e.IPC, tc.want)
		}
		if e.Lo > e.IPC || e.Hi < e.IPC {
			t.Errorf("%+v: band [%v, %v] does not contain IPC %v", tc.q, e.Lo, e.Hi, e.IPC)
		}
	}
}

func TestEstimateInterpolatesBetweenAnchors(t *testing.T) {
	m := testModel()
	e := m.Estimate(Query{L1Bytes: 64 * 1024})
	if !e.InEnvelope {
		t.Fatalf("out of envelope: %s", e.Reason)
	}
	if e.IPC <= 2.0 || e.IPC >= 3.0 {
		t.Errorf("IPC %v not between the bracketing anchors (2.0, 3.0)", e.IPC)
	}
	if e.MissRate >= 0.30 || e.MissRate <= 0.10 {
		t.Errorf("miss rate %v not between anchors (0.10, 0.30)", e.MissRate)
	}
	if !strings.Contains(e.Basis, "cache[baseline]") {
		t.Errorf("basis %q does not name the curve", e.Basis)
	}
	// Log-space: the interpolated value at 64K must sit left of the linear
	// midpoint of the 48..96 segment in IPC terms.
	linX := (64.0 - 48.0) / (96.0 - 48.0)
	logX := logFrac(48, 96, 64)
	if logX <= linX {
		t.Errorf("log-space fraction %v should exceed linear %v on this segment", logX, linX)
	}

	// SWL midpoint is linear.
	e = m.Estimate(Query{SWLLimit: 2})
	if !e.InEnvelope {
		t.Fatalf("swl 2: out of envelope: %s", e.Reason)
	}
	want := 0.8 + (1.6-0.8)*(2.0-1.0)/(4.0-1.0)
	if math.Abs(e.IPC-want) > 1e-12 {
		t.Errorf("swl 2: IPC = %v, want %v", e.IPC, want)
	}
}

func TestEstimateOutOfEnvelope(t *testing.T) {
	m := testModel()
	for name, q := range map[string]Query{
		"l1 below range":      {L1Bytes: 8 * 1024},
		"l1 above range":      {L1Bytes: 256 * 1024},
		"swl with lb":         {SWLLimit: 4, LB: true},
		"swl at non-base l1":  {SWLLimit: 4, L1Bytes: 96 * 1024},
		"swl and vtt jointly": {SWLLimit: 4, VTTParts: 4},
		"vtt without lb":      {VTTParts: 4},
		"vtt at non-base l1":  {VTTParts: 4, LB: true, L1Bytes: 96 * 1024},
		"swl above range":     {SWLLimit: 9},
		"vtt above range":     {VTTParts: 9, LB: true},
		"negative l1":         {L1Bytes: -1},
	} {
		e := m.Estimate(q)
		if e.InEnvelope {
			t.Errorf("%s (%+v): expected out of envelope, got IPC %v", name, q, e.IPC)
		}
		if e.Reason == "" {
			t.Errorf("%s: out-of-envelope estimate must state a reason", name)
		}
		if e.IPC != 0 || e.Lo != 0 || e.Hi != 0 {
			t.Errorf("%s: out-of-envelope estimate must not carry values: %+v", name, e)
		}
	}
}

func TestEstimateDisabledAxes(t *testing.T) {
	m := testModel()
	m.SWL = nil
	m.VTT = nil
	if e := m.Estimate(Query{SWLLimit: 2}); e.InEnvelope {
		t.Errorf("swl estimate with no swl curve must be out of envelope")
	}
	if e := m.Estimate(Query{VTTParts: 2, LB: true}); e.InEnvelope {
		t.Errorf("vtt estimate with no vtt curve must be out of envelope")
	}
	// The cache axis keeps working.
	if e := m.Estimate(Query{}); !e.InEnvelope {
		t.Errorf("cache axis broke when limit axes were disabled: %s", e.Reason)
	}
}

func TestBandClampedToIssueRoof(t *testing.T) {
	m := testModel()
	m.Roofline.IssueRoofIPC = 2.1
	e := m.Estimate(Query{L1Bytes: 96 * 1024}) // raw IPC 3.0, Hi 3.3
	if !e.InEnvelope {
		t.Fatalf("out of envelope: %s", e.Reason)
	}
	if e.IPC > 2.1 || e.Hi > 2.1 {
		t.Errorf("estimate exceeds the issue roof: IPC %v Hi %v", e.IPC, e.Hi)
	}
	if e.Lo > e.IPC {
		t.Errorf("Lo %v above IPC %v after clamping", e.Lo, e.IPC)
	}
}

func TestBandOfFloorsAndScales(t *testing.T) {
	opt := Options{}.withDefaults()
	if b := bandOf(0, opt); b != opt.BandFloor {
		t.Errorf("zero LOO error: band %v, want floor %v", b, opt.BandFloor)
	}
	if b := bandOf(0.10, opt); b != 0.20 {
		t.Errorf("band %v, want 0.10 x margin 2", b)
	}
}

func TestDedupeSorted(t *testing.T) {
	got := dedupeSorted([]int{8, 1, 0, -3, 8, 4, 1})
	want := []int{1, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSegmentFor(t *testing.T) {
	xs := []int{10, 20, 40}
	ge := func(v int) func(int) bool {
		return func(k int) bool { return xs[k] >= v }
	}
	for _, tc := range []struct{ v, want int }{
		{10, 0}, {15, 0}, {20, 0}, {21, 1}, {40, 1},
	} {
		if got := segmentFor(len(xs), ge(tc.v)); got != tc.want {
			t.Errorf("segmentFor(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}
