package twin

import (
	"context"
	"reflect"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/harness"
)

const goldenPath = "../check/testdata/golden.json"

// diffAxes calibrates the cache axis only, deliberately excluding the
// 48KB base point the golden grid was captured at: the differential test
// then asks the twin to predict a size it has never seen, and the
// committed golden snapshot supplies the truth for free.
var diffAxes = Axes{L1KB: []int{32, 64, 96}, SWLLimits: []int{}, VTTParts: []int{}}

// TestDifferentialGoldenGrid is the tentpole's correctness argument: over
// the golden grid (20 benches x {baseline, lb} in the no-race build), every
// in-envelope twin estimate at the held-out base L1 size must land inside
// its own stated confidence band around the committed simulator truth.
func TestDifferentialGoldenGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite simulates calibration anchors; skipped in -short")
	}
	snap, err := check.LoadSnapshot(goldenPath)
	if err != nil {
		t.Fatalf("loading golden snapshot: %v", err)
	}
	cfg := harness.BenchConfig()
	if cfg.GPU.L1Bytes != 48*1024 {
		t.Fatalf("BenchConfig L1 = %d B; the held-out-point argument assumes 48KB", cfg.GPU.L1Bytes)
	}
	r := harness.NewRunner(cfg, snap.Windows)

	for _, bench := range diffBenches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			m, err := Calibrate(context.Background(), r, bench, Options{Axes: diffAxes})
			if err != nil {
				t.Fatalf("calibrate: %v", err)
			}
			for _, arm := range []string{ArmBaseline, ArmLB} {
				truth, ok := snap.Entries[bench+"|"+arm]
				if !ok {
					t.Fatalf("golden snapshot has no entry %s|%s", bench, arm)
				}
				truthIPC := float64(truth.Instructions) / float64(truth.Cycles)
				est := m.Estimate(Query{L1Bytes: cfg.GPU.L1Bytes, LB: arm == ArmLB})
				if !est.InEnvelope {
					t.Errorf("%s: 48KB query out of envelope (%s) despite anchors bracketing it", arm, est.Reason)
					continue
				}
				if truthIPC < est.Lo || truthIPC > est.Hi {
					t.Errorf("%s: simulator IPC %.4f outside twin band [%.4f, %.4f] (point %.4f, band half-width %.1f%%)",
						arm, truthIPC, est.Lo, est.Hi, est.IPC, 100*m.Band.Cache)
					continue
				}
				relErr := (est.IPC - truthIPC) / truthIPC
				t.Logf("%s: twin %.4f vs sim %.4f (%+.2f%%), band ±%.1f%%",
					arm, est.IPC, truthIPC, 100*relErr, 100*m.Band.Cache)
			}
		})
	}
}

// TestCalibrationDeterministicAcrossWorkers enforces the "deterministic by
// construction" claim: calibrating on runners with different intra-run
// worker counts — which the simulator excludes from its identity, and the
// engine keeps bit-identical — must produce byte-for-byte equal models.
func TestCalibrationDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates two runners; skipped in -short")
	}
	axes := Axes{L1KB: []int{32, 64}, SWLLimits: []int{1, 2}, VTTParts: []int{1, 8}}
	models := make([]*Model, 2)
	for i, workers := range []int{1, 3} {
		cfg := harness.BenchConfig()
		cfg.GPU.Workers = workers
		m, err := Calibrate(context.Background(), harness.NewRunner(cfg, 2), "S2", Options{Axes: axes})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		models[i] = m
	}
	if !reflect.DeepEqual(models[0], models[1]) {
		t.Errorf("models diverge across worker counts:\n w=1: %+v\n w=3: %+v", models[0], models[1])
	}
}

// TestCalibrationMemoised verifies a recalibration answers from the
// runner's memo instead of re-simulating: same model, no new executions.
func TestCalibrationMemoised(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a runner; skipped in -short")
	}
	r := harness.NewRunner(harness.BenchConfig(), 2)
	opt := Options{Axes: Axes{L1KB: []int{32, 64}, SWLLimits: []int{}, VTTParts: []int{}}}
	m1, err := Calibrate(context.Background(), r, "BI", opt)
	if err != nil {
		t.Fatal(err)
	}
	execs := r.Executions()
	m2, err := Calibrate(context.Background(), r, "BI", opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Executions(); got != execs {
		t.Errorf("recalibration re-simulated: %d executions, want %d", got, execs)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("recalibration changed the model")
	}
}
