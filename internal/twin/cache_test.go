package twin

import (
	"context"
	"sync"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/harness"
)

func TestCacheSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a runner; skipped in -short")
	}
	r := harness.NewRunner(harness.BenchConfig(), 1)
	c := NewCache(Options{Axes: Axes{L1KB: []int{32, 64}, SWLLimits: []int{}, VTTParts: []int{}}})

	const callers = 8
	models := make([]*Model, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.Model(context.Background(), r, "S2")
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d got a different model instance", i)
		}
	}
	if got, want := r.Executions(), int64(models[0].CalRuns); got != want {
		t.Errorf("%d executions for %d anchor runs: single flight failed", got, want)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	r := harness.NewRunner(harness.BenchConfig(), 1)
	c := NewCache(Options{})
	if _, err := c.Model(context.Background(), r, "NO-SUCH-BENCH"); err == nil {
		t.Fatal("expected an error for an unknown benchmark")
	}
	if c.Len() != 0 {
		t.Errorf("failed calibration stayed cached (%d entries)", c.Len())
	}
}
