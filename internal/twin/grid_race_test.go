//go:build race

package twin

// diffBenches under the race detector: a representative subset — two
// cache-sensitive benches (S2, KM) and two insensitive ones (LI, HS) —
// keeps the differential suite inside CI's race-job budget; the full
// 20-bench grid runs in the dedicated no-race differential step.
var diffBenches = []string{"S2", "KM", "LI", "HS"}
