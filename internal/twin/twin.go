// Package twin is the analytical counterpart of the cycle-level simulator:
// a per-benchmark closed-form model, calibrated against real simulation
// runs, that answers configuration queries ("what if L1 were 64 KB / the
// SWL limit were 8 / Linebacker were off?") in microseconds instead of
// seconds.
//
// The paper already reduces each application to a small set of axes —
// per-load reuse vs effective cache size (Figures 2–3) and memory-bound vs
// compute-bound occupancy — so a model fit along exactly those axes covers
// most interactive queries. The contract (DESIGN.md §13) is that the twin
// must never be quietly wrong:
//
//   - every estimate carries a confidence band derived from the
//     calibration data itself (leave-one-out cross-validation of the
//     interpolant, times a safety margin, floored);
//   - every estimate states whether the query lies inside the calibrated
//     envelope — the axis ranges the model actually observed;
//   - a query outside the envelope is answered with InEnvelope=false and
//     a machine-readable reason, and callers (internal/serve, cmd/lbsweep)
//     fall back to full simulation instead of extrapolating.
//
// Calibration rides the fault-tolerant, memoised harness.Runner, so
// anchor runs are simulated once per store and reused across calibrations,
// restarts and replicas. Everything in a Model is a pure function of the
// simulator's deterministic results: calibrating twice — at any worker
// count, on any machine sharing the store — yields bit-identical models
// (test-enforced).
package twin

import (
	"fmt"
	"math"
	"sort"
)

// Arm names the two calibrated policy arms of the cache-size axis.
const (
	ArmBaseline = "baseline"
	ArmLB       = "lb"
)

// CachePoint is one calibrated anchor on the cache-size axis.
type CachePoint struct {
	// L1Bytes is the configured L1 capacity of the anchor run.
	L1Bytes int `json:"l1_bytes"`
	// EffectiveBytes is L1Bytes plus the average victim capacity the run
	// actually carved out of idle registers (zero for the baseline arm) —
	// the paper's "effective cache size" for this point.
	EffectiveBytes float64 `json:"effective_bytes"`
	// IPC is the measured instructions per cycle.
	IPC float64 `json:"ipc"`
	// MissRate is the measured L1 load miss fraction (misses over all L1
	// load accesses, pending hits counted as hits).
	MissRate float64 `json:"miss_rate"`
}

// LimitPoint is one calibrated anchor on an integer-limit axis (static
// CTA limit, VTT partition count).
type LimitPoint struct {
	Limit int     `json:"limit"`
	IPC   float64 `json:"ipc"`
}

// Roofline summarises the memory-bound vs compute-bound position of the
// benchmark at the base configuration — the occupancy axis of Figures 2–3.
type Roofline struct {
	// BytesPerInstr is off-chip traffic per retired instruction under the
	// baseline policy at the base L1 size.
	BytesPerInstr float64 `json:"bytes_per_instr"`
	// PeakBytesPerCycle is the configured DRAM bandwidth in bytes/cycle.
	PeakBytesPerCycle float64 `json:"peak_bytes_per_cycle"`
	// BandwidthRoofIPC is the IPC the DRAM bandwidth alone would allow.
	BandwidthRoofIPC float64 `json:"bandwidth_roof_ipc"`
	// IssueRoofIPC is the issue-width IPC ceiling of the whole machine.
	IssueRoofIPC float64 `json:"issue_roof_ipc"`
	// MemBound reports whether the bandwidth roof is below the issue roof.
	MemBound bool `json:"mem_bound"`
}

// Bands holds the per-curve relative confidence half-widths the
// calibration derived (leave-one-out error × margin, floored).
type Bands struct {
	Cache float64 `json:"cache"` // shared by both cache-axis arms
	SWL   float64 `json:"swl"`
	VTT   float64 `json:"vtt"`
}

// Model is one benchmark's calibrated analytical twin. All curves are
// sorted by their x coordinate; estimates interpolate, never extrapolate.
type Model struct {
	Bench   string `json:"bench"`
	Windows int    `json:"windows"`
	// BaseL1Bytes is the L1 capacity of the runner's base configuration:
	// the SWL and VTT axes are calibrated at this size only.
	BaseL1Bytes int `json:"base_l1_bytes"`
	// MaxResident is the residency bound the SWL axis was clamped to.
	MaxResident int `json:"max_resident"`

	Base []CachePoint `json:"base"` // baseline arm over L1 sizes
	LB   []CachePoint `json:"lb"`   // linebacker arm over L1 sizes
	SWL  []LimitPoint `json:"swl"`  // static CTA limits at base L1
	VTT  []LimitPoint `json:"vtt"`  // linebacker VTT partition counts at base L1

	Band     Bands    `json:"band"`
	Roofline Roofline `json:"roofline"`
	// CalRuns counts the simulator executions the calibration requested
	// (memo/store hits included — it is the sweep size, not the miss count).
	CalRuns int `json:"cal_runs"`
}

// Query is one configuration question. The zero value asks for the
// baseline policy at the base configuration. Axes compose only as far as
// the calibration observed them: an unobserved combination (e.g. an SWL
// limit at a non-base L1 size) is out of envelope by construction.
type Query struct {
	// L1Bytes is the L1 capacity (0 = the model's base size).
	L1Bytes int `json:"l1_bytes,omitempty"`
	// SWLLimit is a static CTA limit (0 = unlimited). Calibrated at the
	// base L1 size under the baseline policy only.
	SWLLimit int `json:"swl_limit,omitempty"`
	// LB selects the Linebacker policy arm.
	LB bool `json:"lb,omitempty"`
	// VTTParts overrides Linebacker's MaxPartitions — the victim-capacity
	// axis (0 = the configured default). Requires LB, base L1.
	VTTParts int `json:"vtt_parts,omitempty"`
}

// Estimate is the twin's answer. When InEnvelope is false, IPC/Lo/Hi are
// zero and Reason says which envelope rule failed — the caller's cue to
// fall back to full simulation.
type Estimate struct {
	IPC      float64 `json:"ipc"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	MissRate float64 `json:"miss_rate,omitempty"`

	InEnvelope bool   `json:"in_envelope"`
	Reason     string `json:"reason,omitempty"`
	// Basis names the curve and anchor segment the estimate interpolated,
	// for explainability ("cache[lb] 32768..65536 B", "swl 2..6").
	Basis string `json:"basis,omitempty"`
}

// out builds an out-of-envelope answer.
func out(format string, args ...any) Estimate {
	return Estimate{Reason: fmt.Sprintf(format, args...)}
}

// Estimate answers a query from the calibrated curves. It never simulates
// and never extrapolates: queries outside the calibrated envelope come
// back with InEnvelope=false and a reason.
func (m *Model) Estimate(q Query) Estimate {
	l1 := q.L1Bytes
	if l1 == 0 {
		l1 = m.BaseL1Bytes
	}
	switch {
	case q.SWLLimit < 0 || q.VTTParts < 0 || q.L1Bytes < 0:
		return out("negative axis value")
	case q.SWLLimit > 0 && q.LB:
		return out("swl axis calibrated under the baseline policy only")
	case q.SWLLimit > 0 && q.VTTParts > 0:
		return out("swl and vtt axes are not calibrated jointly")
	case q.SWLLimit > 0 && l1 != m.BaseL1Bytes:
		return out("swl axis calibrated at the base L1 size (%d B) only", m.BaseL1Bytes)
	case q.VTTParts > 0 && !q.LB:
		return out("vtt axis requires the linebacker arm")
	case q.VTTParts > 0 && l1 != m.BaseL1Bytes:
		return out("vtt axis calibrated at the base L1 size (%d B) only", m.BaseL1Bytes)
	}

	if q.SWLLimit > 0 {
		return m.estimateLimit("swl", m.SWL, q.SWLLimit, m.Band.SWL)
	}
	if q.VTTParts > 0 {
		return m.estimateLimit("vtt", m.VTT, q.VTTParts, m.Band.VTT)
	}

	arm, curve := ArmBaseline, m.Base
	if q.LB {
		arm, curve = ArmLB, m.LB
	}
	if len(curve) < 2 {
		return out("cache axis not calibrated for arm %s", arm)
	}
	lo, hi := curve[0].L1Bytes, curve[len(curve)-1].L1Bytes
	if l1 < lo || l1 > hi {
		return out("l1 %d B outside calibrated range [%d, %d]", l1, lo, hi)
	}
	i := segmentFor(len(curve), func(k int) bool { return curve[k].L1Bytes >= l1 })
	a, b := curve[i], curve[i+1]
	x := logFrac(float64(a.L1Bytes), float64(b.L1Bytes), float64(l1))
	ipc := lerp(a.IPC, b.IPC, x)
	miss := clamp01(lerp(a.MissRate, b.MissRate, x))
	return m.banded(ipc, miss, m.Band.Cache,
		fmt.Sprintf("cache[%s] %d..%d B", arm, a.L1Bytes, b.L1Bytes))
}

// estimateLimit interpolates an integer-limit curve linearly.
func (m *Model) estimateLimit(name string, curve []LimitPoint, limit int, band float64) Estimate {
	if len(curve) < 2 {
		return out("%s axis not calibrated", name)
	}
	lo, hi := curve[0].Limit, curve[len(curve)-1].Limit
	if limit < lo || limit > hi {
		return out("%s limit %d outside calibrated range [%d, %d]", name, limit, lo, hi)
	}
	i := segmentFor(len(curve), func(k int) bool { return curve[k].Limit >= limit })
	a, b := curve[i], curve[i+1]
	x := 0.0
	if b.Limit != a.Limit {
		x = float64(limit-a.Limit) / float64(b.Limit-a.Limit)
	}
	ipc := lerp(a.IPC, b.IPC, x)
	return m.banded(ipc, 0, band, fmt.Sprintf("%s %d..%d", name, a.Limit, b.Limit))
}

// banded wraps an interpolated IPC in its confidence band, clamped to the
// machine's hard issue roof (no estimate may exceed what the issue width
// can retire — the simulated truth cannot either, so clamping the band is
// sound).
func (m *Model) banded(ipc, miss, band float64, basis string) Estimate {
	e := Estimate{
		IPC:        ipc,
		Lo:         ipc * (1 - band),
		Hi:         ipc * (1 + band),
		MissRate:   miss,
		InEnvelope: true,
		Basis:      basis,
	}
	if roof := m.Roofline.IssueRoofIPC; roof > 0 {
		if e.IPC > roof {
			e.IPC = roof
		}
		if e.Hi > roof {
			e.Hi = roof
		}
		if e.Lo > roof {
			e.Lo = roof
		}
	}
	// IPC is non-negative by construction; a wide relative band must not
	// leak below that hard floor.
	if e.Lo < 0 {
		e.Lo = 0
	}
	return e
}

// segmentFor returns the index i of the curve segment [i, i+1] whose
// right anchor is the first satisfying ge; the caller guarantees the query
// is within range.
func segmentFor(n int, ge func(int) bool) int {
	i := sort.Search(n, ge)
	if i == 0 {
		return 0
	}
	if i >= n {
		return n - 2
	}
	return i - 1
}

// logFrac returns the position of v between a and b in log space.
func logFrac(a, b, v float64) float64 {
	if a <= 0 || b <= 0 || a == b {
		return 0
	}
	return (math.Log(v) - math.Log(a)) / (math.Log(b) - math.Log(a))
}

func lerp(a, b, x float64) float64 { return a + (b-a)*x }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
