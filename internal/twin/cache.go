package twin

import (
	"context"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/harness"
)

// Cache memoises calibrated models per benchmark with single-flight
// semantics: concurrent requests for the same benchmark share one
// calibration (whose anchor runs are themselves memoised by the runner).
// Failed calibrations are not cached — a transient failure (deadline,
// injected fault) must not poison the benchmark forever.
type Cache struct {
	opt Options

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done chan struct{}
	m    *Model
	err  error
}

// NewCache builds an empty model cache calibrating with opt.
func NewCache(opt Options) *Cache {
	return &Cache{opt: opt, entries: make(map[string]*cacheEntry)}
}

// Model returns the calibrated twin for bench, calibrating through r on
// first use. All callers of an in-flight calibration share its outcome;
// an error evicts the entry so the next caller retries.
func (c *Cache) Model(ctx context.Context, r *harness.Runner, bench string) (*Model, error) {
	c.mu.Lock()
	e, ok := c.entries[bench]
	if !ok {
		e = &cacheEntry{done: make(chan struct{})}
		c.entries[bench] = e
		c.mu.Unlock()

		e.m, e.err = Calibrate(ctx, r, bench, c.opt)
		if e.err != nil {
			c.mu.Lock()
			if c.entries[bench] == e {
				delete(c.entries, bench)
			}
			c.mu.Unlock()
		}
		close(e.done)
		return e.m, e.err
	}
	c.mu.Unlock()

	select {
	case <-e.done:
		return e.m, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Len reports how many benchmarks have cached models (for stats).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
