//go:build !race

package twin

import "github.com/linebacker-sim/linebacker/internal/workload"

// diffBenches is the differential-validation grid: without the race
// detector's ~10x slowdown the full 20-benchmark golden grid is cheap
// enough to sweep (the anchors are memoised within the run).
var diffBenches = workload.Names()
