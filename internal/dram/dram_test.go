package dram

import (
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func newDRAM() *DRAM {
	cfg := config.Default()
	return New(&cfg.GPU)
}

// drain runs Tick until n responses arrive or the cycle budget is exhausted.
func drain(d *DRAM, n int, budget int64) ([]*memtypes.Request, int64) {
	var out []*memtypes.Request
	var cyc int64
	for cyc = 0; cyc < budget && len(out) < n; cyc++ {
		out = append(out, d.Tick(cyc)...)
	}
	return out, cyc
}

func TestSingleReadCompletes(t *testing.T) {
	d := newDRAM()
	req := &memtypes.Request{Line: 0, Kind: memtypes.Load}
	d.Enqueue(req)
	got, cyc := drain(d, 1, 10000)
	if len(got) != 1 || got[0] != req {
		t.Fatalf("got %d responses", len(got))
	}
	if cyc < 10 {
		t.Fatalf("read completed after %d cycles; DRAM should cost tens of cycles", cyc)
	}
	if d.Stats.Reads != 1 || d.Stats.BytesRead != 128 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestRowHitClassification(t *testing.T) {
	d := newDRAM()
	l0 := memtypes.LineAddr(0)
	d.Enqueue(&memtypes.Request{Line: l0, Kind: memtypes.Load})
	drain(d, 1, 10000)
	if d.Stats.RowMisses != 1 {
		t.Fatalf("first access should be a row miss: %+v", d.Stats)
	}
	// Re-access the same line: open-row hit, must not add a RowMiss.
	d.Enqueue(&memtypes.Request{Line: l0, Kind: memtypes.Load})
	drain2 := func() { // continue the timeline past the first drain
		for cyc := int64(10000); cyc < 30000; cyc++ {
			if len(d.Tick(cyc)) > 0 {
				return
			}
		}
	}
	drain2()
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("second access should be a row hit: %+v", d.Stats)
	}
}

func TestWriteCountsAndBackupTagging(t *testing.T) {
	d := newDRAM()
	d.Enqueue(&memtypes.Request{Line: 0, Kind: memtypes.RegBackup})
	d.Enqueue(&memtypes.Request{Line: 128, Kind: memtypes.Store})
	d.Enqueue(&memtypes.Request{Line: 256, Kind: memtypes.RegRestore})
	got, _ := drain(d, 3, 100000)
	if len(got) != 3 {
		t.Fatalf("completed %d/3", len(got))
	}
	if d.Stats.Writes != 2 || d.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
	if d.Stats.RegBackupBytes != 128 || d.Stats.RegRestoreBytes != 128 {
		t.Fatalf("backup/restore bytes = %d/%d", d.Stats.RegBackupBytes, d.Stats.RegRestoreBytes)
	}
	if d.Stats.TotalBytes() != 3*128 {
		t.Fatalf("total bytes = %d", d.Stats.TotalBytes())
	}
}

func TestBandwidthCapLimitsThroughput(t *testing.T) {
	d := newDRAM()
	const n = 2000
	for i := 0; i < n; i++ {
		d.Enqueue(&memtypes.Request{Line: memtypes.LineAddr(i * memtypes.LineSize), Kind: memtypes.Load})
	}
	got, cycles := drain(d, n, 1_000_000)
	if len(got) != n {
		t.Fatalf("completed %d/%d in budget", len(got), n)
	}
	gotBW := float64(n*128) / float64(cycles)
	cfg := config.Default()
	capBW := cfg.GPU.BytesPerCycle()
	if gotBW > capBW*1.05 {
		t.Fatalf("achieved %.1f B/cyc exceeds cap %.1f", gotBW, capBW)
	}
	// Streaming reads should still achieve a solid fraction of peak.
	if gotBW < capBW*0.3 {
		t.Fatalf("achieved only %.1f B/cyc of %.1f cap; scheduler too weak", gotBW, capBW)
	}
}

func TestAllRequestsEventuallyComplete(t *testing.T) {
	f := func(seed uint32) bool {
		d := newDRAM()
		n := int(seed%97) + 1
		for i := 0; i < n; i++ {
			l := memtypes.LineAddr((uint64(seed)*2654435761 + uint64(i)*7919) % (1 << 24) * memtypes.LineSize)
			k := memtypes.Load
			if i%3 == 0 {
				k = memtypes.Store
			}
			d.Enqueue(&memtypes.Request{Line: l, Kind: k})
		}
		got, _ := drain(d, n, 2_000_000)
		return len(got) == n && d.QueueLen() == 0 && d.Inflight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChannelMapping(t *testing.T) {
	d := newDRAM()
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[d.channelOf(memtypes.LineAddr(i*memtypes.LineSize))] = true
	}
	if len(seen) != d.channels {
		t.Fatalf("sequential lines touch %d/%d channels", len(seen), d.channels)
	}
}
