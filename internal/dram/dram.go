// Package dram models the off-chip DRAM of Table 1: multiple channels of
// banks with open-row timing (RCD/RP/RC/CL/WR/RAS in core cycles) under an
// aggregate bandwidth cap of 352.5 GB/s. Scheduling is FR-FCFS-lite: within
// a channel, the oldest row-hit request is served before older row-misses.
//
// The model is line-granular (128 B per request) and driven by Tick once per
// core cycle.
package dram

import (
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

const rowBytes = 2048 // open-row (page) size

// Stats aggregates DRAM traffic.
type Stats struct {
	Reads           int64
	Writes          int64
	BytesRead       int64
	BytesWritten    int64
	RegBackupBytes  int64 // subset: Linebacker register backup writes
	RegRestoreBytes int64 // subset: Linebacker register restore reads
	RowHits         int64
	RowMisses       int64
	// BusyCycles counts cycles in which at least one request was in service.
	BusyCycles int64
}

// TotalBytes returns all off-chip traffic in bytes.
func (s *Stats) TotalBytes() int64 { return s.BytesRead + s.BytesWritten }

type bank struct {
	openRow   int64
	rowValid  bool
	readyAt   int64 // earliest cycle the bank can start a new access
	lastActAt int64 // cycle of last activate, for tRC
}

type pending struct {
	req  *memtypes.Request
	done int64
}

// qent is one transaction-queue entry. The bank/row decomposition of the
// line address is immutable, so it is computed once at Enqueue instead of
// by every FR-FCFS window scan (the div/mod chain in bankOf was the
// scheduler's dominant cost under congestion).
type qent struct {
	req  *memtypes.Request
	bank int // global bank index: ch*perChan + bk
	row  int64
}

// less orders completions by done cycle. Deliberately the exact comparator
// the previous container/heap version used — done-cycle ties resolve by
// heap layout, and the sift algorithms below replicate container/heap's
// step for step, so completion order (and therefore every downstream
// metric) is bit-identical to the old implementation. What changed is cost:
// container/heap boxed every entry into an interface on Push — one heap
// allocation per scheduled request — where this version reuses the backing
// array forever.
func (p pending) less(o pending) bool { return p.done < o.done }

// doneHeap is a hand-rolled binary min-heap of in-service requests.
type doneHeap []pending

func (h doneHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h *doneHeap) popRoot() pending {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = pending{}
	q = q[:n]
	*h = q
	// Sift the relocated root down.
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && q[right].less(q[left]) {
			least = right
		}
		if !q[least].less(q[i]) {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	return top
}

// DRAM is the off-chip memory model.
type DRAM struct {
	timing   config.DRAMTiming
	channels int
	banks    []bank // channels * banksPerChan
	perChan  int

	// queues holds one FIFO per channel as a head-indexed slice: heads[ch]
	// is the index of the oldest waiting entry in queues[ch]. Dequeues from
	// the FR-FCFS window shift at most window-1 entries and advance the
	// head; consumed prefixes are compacted away once they dominate the
	// backing array, keeping both enqueue and dequeue amortised O(1). (The
	// previous splice-on-dequeue copied the whole tail — quadratic once a
	// congested run built up a six-figure queue.)
	queues [][]qent
	heads  []int

	bytesPerCycle float64
	tokens        float64
	maxTokens     float64

	// inflight changes only when schedule issues a request or a completion
	// pops at its recorded done cycle — both cycles NextEvent advertises,
	// so a skipped span never moves the heap and Skip owes nothing here.
	//
	//lbvet:eventbound
	inflight doneHeap

	// stalled freezes the model (chaos injection): Tick neither schedules
	// nor completes requests, so every dependent warp livelocks.
	stalled bool

	Stats Stats
}

// New builds the DRAM model from the GPU configuration.
func New(g *config.GPU) *DRAM {
	d := &DRAM{
		timing:        g.DRAM,
		channels:      g.DRAMChannels,
		perChan:       g.DRAMBanksPerChan,
		banks:         make([]bank, g.DRAMChannels*g.DRAMBanksPerChan),
		queues:        make([][]qent, g.DRAMChannels),
		heads:         make([]int, g.DRAMChannels),
		bytesPerCycle: g.BytesPerCycle(),
	}
	d.maxTokens = d.bytesPerCycle * 4 // small burst window
	return d
}

// channelOf maps a line to a channel by low-order line bits (interleaved).
func (d *DRAM) channelOf(l memtypes.LineAddr) int {
	return int((uint64(l) / memtypes.LineSize) % uint64(d.channels))
}

func (d *DRAM) bankOf(l memtypes.LineAddr) (ch, bk int, row int64) {
	ch = d.channelOf(l)
	lineNo := uint64(l) / memtypes.LineSize
	bk = int((lineNo / uint64(d.channels)) % uint64(d.perChan))
	row = int64(uint64(l) / rowBytes / uint64(d.channels*d.perChan))
	return ch, bk, row
}

// Enqueue accepts a line request. The caller keeps ownership of req; the
// same pointer is surfaced by Tick when service completes.
func (d *DRAM) Enqueue(req *memtypes.Request) {
	ch, bk, row := d.bankOf(req.Line)
	d.queues[ch] = append(d.queues[ch], qent{req: req, bank: ch*d.perChan + bk, row: row})
}

// waiting returns channel ch's live FIFO (oldest first).
func (d *DRAM) waiting(ch int) []qent { return d.queues[ch][d.heads[ch]:] }

// compact drops channel ch's consumed prefix once it dominates the backing
// array, bounding memory and keeping the head index small. Amortised O(1)
// per dequeue.
func (d *DRAM) compact(ch int) {
	h := d.heads[ch]
	buf := d.queues[ch]
	if h < 1024 || h*2 < len(buf) {
		return
	}
	n := copy(buf, buf[h:])
	tail := buf[n:]
	for i := range tail {
		tail[i] = qent{} // release retired *Request pointers
	}
	d.queues[ch] = buf[:n]
	d.heads[ch] = 0
}

// QueueLen returns the number of waiting (unscheduled) requests.
func (d *DRAM) QueueLen() int {
	n := 0
	for ch := range d.queues {
		n += len(d.queues[ch]) - d.heads[ch]
	}
	return n
}

// Inflight returns the number of scheduled but not yet completed requests.
func (d *DRAM) Inflight() int { return len(d.inflight) }

// ForEach visits every queued and in-service request in unspecified order.
// Used by the invariant checker; fn must not mutate the model.
func (d *DRAM) ForEach(fn func(*memtypes.Request)) {
	for ch := range d.queues {
		for _, e := range d.waiting(ch) {
			fn(e.req)
		}
	}
	for i := range d.inflight {
		fn(d.inflight[i].req)
	}
}

// SetStalled freezes (or thaws) the model. Used by the chaos injector to
// provoke a livelock: queued and in-flight requests are retained but make
// no progress while stalled.
func (d *DRAM) SetStalled(s bool) { d.stalled = s }

// Stalled reports whether the model is frozen.
func (d *DRAM) Stalled() bool { return d.stalled }

// TickEach advances one core cycle and hands every request whose data
// transfer completes at this cycle to fn, in completion order. This is the
// engine-facing path: it allocates nothing. The return value reports
// whether the tick changed scheduling state (issued a bank access or
// completed a transfer) — an idle tick did nothing Skip's closed forms
// don't reproduce, so the engine may cache NextEvent's answer after one.
func (d *DRAM) TickEach(cycle int64, fn func(*memtypes.Request)) bool {
	if d.stalled {
		return false
	}
	d.tokens += d.bytesPerCycle
	if d.tokens > d.maxTokens {
		d.tokens = d.maxTokens
	}
	active := false
	// Schedule new work per channel.
	for ch := 0; ch < d.channels; ch++ {
		if d.schedule(ch, cycle) {
			active = true
		}
	}
	if len(d.inflight) > 0 {
		d.Stats.BusyCycles++
	}
	for len(d.inflight) > 0 && d.inflight[0].done <= cycle {
		fn(d.inflight.popRoot().req)
		active = true
	}
	return active
}

// NextEvent advertises the earliest cycle >= now at which the model can
// change simulated state if ticked every cycle (the event-driven engine's
// component protocol; see sim/event.go): the earliest in-flight completion,
// or the earliest cycle at which some channel could schedule queued work —
// the first cycle where the bandwidth tokens reach one line AND a bank in
// the channel's scheduling window is ready. Token refills and the busy-
// cycle counter are not events; Skip reproduces them in closed form. A
// stalled (chaos-frozen) model is quiescent by construction.
//
// The token horizon emulates TickEach's refill-then-clamp float arithmetic
// step for step, so the advertised cycle is exact, never late: during a
// skipped span nothing is scheduled or completed, so the token trajectory
// is pure refills — at most a handful before the burst cap clamps.
func (d *DRAM) NextEvent(now int64) (int64, bool) {
	if d.stalled {
		return 0, false
	}
	best, any := int64(0), false
	merge := func(c int64) {
		if c < now {
			c = now
		}
		if !any || c < best {
			best, any = c, true
		}
	}
	if len(d.inflight) > 0 {
		merge(d.inflight[0].done)
	}
	if d.QueueLen() > 0 {
		if delay, ok := d.tokenDelay(); ok {
			tokenReady := now + delay
			for ch := 0; ch < d.channels; ch++ {
				q := d.waiting(ch)
				if len(q) == 0 {
					continue
				}
				window := len(q)
				if window > 16 {
					window = 16
				}
				bankReady := int64(-1)
				for _, e := range q[:window] {
					if r := d.banks[e.bank].readyAt; bankReady < 0 || r < bankReady {
						bankReady = r
					}
				}
				c := tokenReady
				if bankReady > c {
					c = bankReady
				}
				merge(c)
			}
		}
	}
	return best, any
}

// tokenDelay returns the number of cycles until the bandwidth tokens first
// cover one line, emulating TickEach's refill exactly (the tick's refill
// happens before scheduling, so a delay of 0 means the very next tick can
// schedule). ok == false means the burst cap is below one line and the
// model can never schedule — a degenerate configuration that livelocks the
// strict engine identically.
func (d *DRAM) tokenDelay() (int64, bool) {
	tok := d.tokens
	for k := int64(0); ; k++ {
		tok += d.bytesPerCycle
		if tok > d.maxTokens {
			tok = d.maxTokens
		}
		if tok >= memtypes.LineSize {
			return k, true
		}
		if tok == d.maxTokens {
			return 0, false
		}
	}
}

// Skip advances the model over the span [from, to) without ticking,
// reproducing exactly what that many TickEach calls would have done given
// that nothing is scheduled or completed in the span (the engine only skips
// up to the advertised NextEvent): the bandwidth tokens refill with the
// identical float operations — the loop terminates early once the burst cap
// clamps, a fixed point of refill-then-clamp — and the busy counter accrues
// the span when requests are in service. A stalled model is frozen, exactly
// as TickEach leaves it.
func (d *DRAM) Skip(from, to int64) {
	if d.stalled {
		return
	}
	span := to - from
	for i := int64(0); i < span; i++ {
		d.tokens += d.bytesPerCycle
		if d.tokens > d.maxTokens {
			d.tokens = d.maxTokens
			break
		}
		if d.tokens == d.maxTokens {
			break
		}
	}
	if len(d.inflight) > 0 {
		d.Stats.BusyCycles += span
	}
}

// Tick advances one core cycle and returns the requests whose data transfer
// completes at this cycle. Convenience wrapper over TickEach for tests and
// tools; the returned slice is freshly allocated.
func (d *DRAM) Tick(cycle int64) []*memtypes.Request {
	var out []*memtypes.Request
	d.TickEach(cycle, func(req *memtypes.Request) { out = append(out, req) })
	return out
}

// schedule starts at most one request on the channel this cycle (the data
// bus is shared), preferring the oldest row hit (FR-FCFS-lite); true if it
// issued one. It mutates queue, bank and heap state only when it issues,
// and NextEvent advertises the first cycle any channel can issue — across
// a skipped span every schedule call would have returned false having
// written nothing, so Skip owes none of these writes.
//
//lbvet:eventbound
func (d *DRAM) schedule(ch int, cycle int64) bool {
	q := d.waiting(ch)
	if len(q) == 0 || d.tokens < memtypes.LineSize {
		return false
	}
	// The scheduler inspects a bounded window of the queue head (a real
	// controller's transaction queue is finite); this also bounds the
	// per-cycle cost under heavy congestion.
	window := len(q)
	if window > 16 {
		window = 16
	}
	pick := -1
	// First pass: oldest row hit on a ready bank.
	for i := range q[:window] {
		e := &q[i]
		b := &d.banks[e.bank]
		if b.readyAt <= cycle && b.rowValid && b.openRow == e.row {
			pick = i
			break
		}
	}
	if pick < 0 {
		// Second pass: oldest request on a ready bank.
		for i := range q[:window] {
			if d.banks[q[i].bank].readyAt <= cycle {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return false
	}
	req, row := q[pick].req, q[pick].row
	b := &d.banks[q[pick].bank]
	// Dequeue q[pick] preserving FIFO order: shift the older prefix right
	// one slot (at most window-1 entries) and advance the head.
	copy(q[1:pick+1], q[:pick])
	q[0] = qent{}
	d.heads[ch]++
	d.compact(ch)

	t := &d.timing
	var lat float64
	switch {
	case b.rowValid && b.openRow == row:
		lat = t.CL
		d.Stats.RowHits++
	case b.rowValid:
		// Precharge + activate + CAS; honour tRC between activates.
		lat = t.RP + t.RCD + t.CL
		if gap := float64(cycle - b.lastActAt); gap < t.RC {
			lat += t.RC - gap
		}
		b.lastActAt = cycle + int64(t.RP)
		d.Stats.RowMisses++
	default:
		lat = t.RCD + t.CL
		b.lastActAt = cycle
		d.Stats.RowMisses++
	}
	b.openRow, b.rowValid = row, true

	write := req.Kind == memtypes.Store || req.Kind == memtypes.RegBackup
	if write {
		lat += t.WR
	}
	// Data transfer time under the aggregate bandwidth cap.
	d.tokens -= memtypes.LineSize
	xfer := float64(memtypes.LineSize) / d.bytesPerCycle * float64(d.channels)
	if xfer < 1 {
		xfer = 1
	}
	done := cycle + int64(lat+xfer)
	b.readyAt = done
	d.inflight = append(d.inflight, pending{req: req, done: done})
	d.inflight.up(len(d.inflight) - 1)

	if write {
		d.Stats.Writes++
		d.Stats.BytesWritten += memtypes.LineSize
		if req.Kind == memtypes.RegBackup {
			d.Stats.RegBackupBytes += memtypes.LineSize
		}
	} else {
		d.Stats.Reads++
		d.Stats.BytesRead += memtypes.LineSize
		if req.Kind == memtypes.RegRestore {
			d.Stats.RegRestoreBytes += memtypes.LineSize
		}
	}
	return true
}
