// Package regfile models one SM's banked register file: 256 KB organised as
// 2048 warp-registers of 128 B spread over 32 banks. It tracks per-CTA
// allocation (so statically and dynamically unused space can be measured),
// and counts bank conflicts between warp-operand traffic and Linebacker /
// CERF victim-line traffic — the Figure 16 metric.
package regfile

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/config"
)

// Stats aggregates register file events.
type Stats struct {
	OperandAccesses int64 // warp operand reads+writes (register granularity)
	VictimReads     int64 // victim-cache line reads (Reg hits)
	VictimWrites    int64 // victim-line installs
	BackupReads     int64 // register backup drains
	RestoreWrites   int64 // register restore fills
	BankConflicts   int64 // extra same-cycle same-bank accesses
}

// TotalAccesses returns every counted RF access.
func (s *Stats) TotalAccesses() int64 {
	return s.OperandAccesses + s.VictimReads + s.VictimWrites + s.BackupReads + s.RestoreWrites
}

type allocation struct {
	first int // first warp-register number
	count int
}

// RegFile is one SM's register file.
type RegFile struct {
	totalRegs int
	banks     int

	allocs map[int]allocation // CTA slot -> range
	used   int                // warp-registers allocated

	// bankUse is the per-bank access count within the current cycle.
	bankUse   []uint16
	bankCycle int64

	Stats Stats
}

// New builds the register file for the given GPU configuration.
func New(g *config.GPU) *RegFile {
	return &RegFile{
		totalRegs: g.WarpRegisters(),
		banks:     g.RegFileBanks,
		allocs:    make(map[int]allocation),
		bankUse:   make([]uint16, g.RegFileBanks),
	}
}

// TotalRegs returns the number of warp-registers.
func (rf *RegFile) TotalRegs() int { return rf.totalRegs }

// UsedRegs returns the number of allocated warp-registers.
func (rf *RegFile) UsedRegs() int { return rf.used }

// StaticallyUnusedBytes returns the register file space not allocated to any
// resident CTA — the paper's SUR.
func (rf *RegFile) StaticallyUnusedBytes() int {
	return (rf.totalRegs - rf.used) * config.LineSize
}

// Alloc reserves count warp-registers for the CTA slot, first-fit from the
// bottom of the file (matching the paper: throttled CTAs free the top).
// It returns the first register number, or ok=false if space is lacking.
func (rf *RegFile) Alloc(ctaSlot, count int) (first int, ok bool) {
	if count <= 0 {
		return 0, false
	}
	if _, dup := rf.allocs[ctaSlot]; dup {
		panic(fmt.Sprintf("regfile: CTA slot %d already allocated", ctaSlot))
	}
	// First-fit scan over gaps between sorted allocations.
	next := 0
	for {
		conflict := false
		//lbvet:ordered fixpoint: the pass repeats until conflict-free and
		// `next` only grows, so the final placement is the lowest feasible
		// offset regardless of visit order.
		for _, a := range rf.allocs {
			if next < a.first+a.count && a.first < next+count {
				conflict = true
				if a.first+a.count > next {
					next = a.first + a.count
				}
			}
		}
		if !conflict {
			break
		}
		if next+count > rf.totalRegs {
			return 0, false
		}
	}
	if next+count > rf.totalRegs {
		return 0, false
	}
	rf.allocs[ctaSlot] = allocation{first: next, count: count}
	rf.used += count
	return next, true
}

// Free releases the CTA slot's registers.
func (rf *RegFile) Free(ctaSlot int) {
	a, ok := rf.allocs[ctaSlot]
	if !ok {
		return
	}
	delete(rf.allocs, ctaSlot)
	rf.used -= a.count
}

// Range returns the [first, first+count) allocation of a CTA slot.
func (rf *RegFile) Range(ctaSlot int) (first, count int, ok bool) {
	a, found := rf.allocs[ctaSlot]
	return a.first, a.count, found
}

// LargestLiveRN returns the highest register number of any allocation, or
// -1 when empty — the paper's LRN used to gate VTT partition activation.
func (rf *RegFile) LargestLiveRN() int {
	lrn := -1
	//lbvet:ordered max over the allocation set is commutative.
	for _, a := range rf.allocs {
		if last := a.first + a.count - 1; last > lrn {
			lrn = last
		}
	}
	return lrn
}

func (rf *RegFile) bankOf(rn int) int { return rn % rf.banks }

// touch registers an access to rn at the cycle for conflict accounting and
// returns true if the access collided with an earlier same-cycle access to
// the same bank.
func (rf *RegFile) touch(rn int, cycle int64) bool {
	if cycle != rf.bankCycle {
		for i := range rf.bankUse {
			rf.bankUse[i] = 0
		}
		rf.bankCycle = cycle
	}
	b := rf.bankOf(rn)
	rf.bankUse[b]++
	if rf.bankUse[b] > 1 {
		rf.Stats.BankConflicts++
		return true
	}
	return false
}

// AccessOperands models the operand traffic of one issued warp instruction:
// n register accesses at distinct (modelled) registers starting at baseRN.
// It returns the number of bank conflicts incurred.
func (rf *RegFile) AccessOperands(baseRN, n int, cycle int64) int {
	conflicts := 0
	for i := 0; i < n; i++ {
		rf.Stats.OperandAccesses++
		if rf.touch(baseRN+i, cycle) {
			conflicts++
		}
	}
	return conflicts
}

// VictimRead models reading a victim line from register rn (a Reg hit).
// It returns true on a bank conflict (caller adds a cycle of latency).
func (rf *RegFile) VictimRead(rn int, cycle int64) bool {
	rf.Stats.VictimReads++
	return rf.touch(rn, cycle)
}

// VictimWrite models installing an evicted line into register rn.
func (rf *RegFile) VictimWrite(rn int, cycle int64) bool {
	rf.Stats.VictimWrites++
	return rf.touch(rn, cycle)
}

// BackupRead models draining one register during CTA backup.
func (rf *RegFile) BackupRead(rn int, cycle int64) bool {
	rf.Stats.BackupReads++
	return rf.touch(rn, cycle)
}

// RestoreWrite models filling one register during CTA restore.
func (rf *RegFile) RestoreWrite(rn int, cycle int64) bool {
	rf.Stats.RestoreWrites++
	return rf.touch(rn, cycle)
}
