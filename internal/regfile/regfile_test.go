package regfile

import (
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/config"
)

func newRF() *RegFile {
	cfg := config.Default()
	return New(&cfg.GPU)
}

func TestCapacity(t *testing.T) {
	rf := newRF()
	if rf.TotalRegs() != 2048 {
		t.Fatalf("256 KB RF: %d warp-registers, want 2048", rf.TotalRegs())
	}
	if rf.StaticallyUnusedBytes() != 256*1024 {
		t.Fatalf("empty RF SUR = %d", rf.StaticallyUnusedBytes())
	}
}

func TestAllocBottomUpAndSUR(t *testing.T) {
	rf := newRF()
	f0, ok := rf.Alloc(0, 512)
	if !ok || f0 != 0 {
		t.Fatalf("first alloc at %d ok=%v", f0, ok)
	}
	f1, ok := rf.Alloc(1, 512)
	if !ok || f1 != 512 {
		t.Fatalf("second alloc at %d ok=%v", f1, ok)
	}
	if rf.StaticallyUnusedBytes() != (2048-1024)*128 {
		t.Fatalf("SUR = %d", rf.StaticallyUnusedBytes())
	}
	if rf.LargestLiveRN() != 1023 {
		t.Fatalf("LRN = %d, want 1023", rf.LargestLiveRN())
	}
}

func TestFreeReuse(t *testing.T) {
	rf := newRF()
	rf.Alloc(0, 100)
	rf.Alloc(1, 100)
	rf.Free(0)
	f, ok := rf.Alloc(2, 50)
	if !ok || f != 0 {
		t.Fatalf("freed hole not reused: first=%d ok=%v", f, ok)
	}
	// A block too big for the hole goes above allocation 1.
	f3, ok := rf.Alloc(3, 80)
	if !ok || f3 != 200 {
		t.Fatalf("large alloc at %d ok=%v, want 200", f3, ok)
	}
}

func TestAllocExhaustion(t *testing.T) {
	rf := newRF()
	if _, ok := rf.Alloc(0, 2048); !ok {
		t.Fatal("full-file alloc should succeed")
	}
	if _, ok := rf.Alloc(1, 1); ok {
		t.Fatal("alloc beyond capacity should fail")
	}
	if _, ok := rf.Alloc(2, 0); ok {
		t.Fatal("zero-size alloc should fail")
	}
}

func TestDoubleAllocPanics(t *testing.T) {
	rf := newRF()
	rf.Alloc(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate slot alloc should panic")
		}
	}()
	rf.Alloc(0, 10)
}

func TestRangeAndLRN(t *testing.T) {
	rf := newRF()
	rf.Alloc(7, 64)
	first, count, ok := rf.Range(7)
	if !ok || first != 0 || count != 64 {
		t.Fatalf("Range = %d,%d,%v", first, count, ok)
	}
	if _, _, ok := rf.Range(8); ok {
		t.Fatal("Range of unallocated slot should be !ok")
	}
	rf.Free(7)
	if rf.LargestLiveRN() != -1 {
		t.Fatalf("LRN of empty file = %d, want -1", rf.LargestLiveRN())
	}
}

func TestBankConflictCounting(t *testing.T) {
	rf := newRF()
	// Two accesses to same bank (rn and rn+banks) in one cycle: 1 conflict.
	if rf.VictimRead(0, 1) {
		t.Fatal("first access should not conflict")
	}
	if !rf.VictimRead(32, 1) {
		t.Fatal("same-bank same-cycle access should conflict")
	}
	if rf.Stats.BankConflicts != 1 {
		t.Fatalf("conflicts = %d", rf.Stats.BankConflicts)
	}
	// New cycle resets bank usage.
	if rf.VictimRead(64, 2) {
		t.Fatal("new cycle should not conflict")
	}
}

func TestOperandAccessCounts(t *testing.T) {
	rf := newRF()
	c := rf.AccessOperands(0, 3, 5)
	if c != 0 {
		t.Fatalf("3 distinct banks conflicted: %d", c)
	}
	if rf.Stats.OperandAccesses != 3 {
		t.Fatalf("operand accesses = %d", rf.Stats.OperandAccesses)
	}
	// 33 consecutive registers wrap the 32 banks once: 1 conflict.
	rf2 := newRF()
	if c := rf2.AccessOperands(0, 33, 1); c != 1 {
		t.Fatalf("wrap conflicts = %d, want 1", c)
	}
}

func TestStatsTotal(t *testing.T) {
	rf := newRF()
	rf.AccessOperands(0, 2, 1)
	rf.VictimRead(600, 2)
	rf.VictimWrite(601, 3)
	rf.BackupRead(10, 4)
	rf.RestoreWrite(10, 5)
	if rf.Stats.TotalAccesses() != 6 {
		t.Fatalf("total = %d, want 6", rf.Stats.TotalAccesses())
	}
}

// Property: allocations never overlap and never exceed capacity.
func TestAllocNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		rf := newRF()
		type rng struct{ first, count int }
		live := map[int]rng{}
		slot := 0
		for i, s := range sizes {
			n := int(s)%300 + 1
			if i%5 == 4 && len(live) > 0 {
				// Free an arbitrary live slot.
				for k := range live {
					rf.Free(k)
					delete(live, k)
					break
				}
				continue
			}
			if first, ok := rf.Alloc(slot, n); ok {
				live[slot] = rng{first, n}
			}
			slot++
		}
		total := 0
		var all []rng
		for _, r := range live {
			total += r.count
			all = append(all, r)
		}
		if total != rf.UsedRegs() || total > rf.TotalRegs() {
			return false
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				a, b := all[i], all[j]
				if a.first < b.first+b.count && b.first < a.first+a.count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
