package check

import (
	"fmt"
	"reflect"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// SeedDeterminism runs the same (config, benchmark, policy) twice and
// demands byte-identical results: the engine has no hidden entropy, so any
// divergence is a use of unordered state (map iteration, shared mutation).
// mk must build a fresh policy instance per call.
func SeedDeterminism(cfg config.Config, bench string, mk func() sim.Policy, windows int) error {
	run := func() (*sim.Result, error) {
		b, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("check: unknown benchmark %q", bench)
		}
		g, err := sim.New(cfg, b.Kernel, mk())
		if err != nil {
			return nil, err
		}
		g.Run(int64(windows) * int64(cfg.LB.WindowCycles))
		return g.Collect(), nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(a, b) {
		return fmt.Errorf("check: %s/%s diverged across identical runs:\n%+v\n%+v", bench, a.Policy, a, b)
	}
	return nil
}

// L1SizeMonotonicity sweeps the baseline L1 capacity (the Figure 5/14 axis)
// and verifies the combined hit ratio never falls by more than slack: a
// strictly larger cache may reshuffle timing, but a material hit-ratio drop
// with extra capacity means replacement or MSHR accounting is broken.
// sizes must be ascending and compatible with the configured associativity.
func L1SizeMonotonicity(cfg config.Config, bench string, sizes []int, windows int, slack float64) error {
	b, ok := workload.ByName(bench)
	if !ok {
		return fmt.Errorf("check: unknown benchmark %q", bench)
	}
	prev := -1.0
	prevSize := 0
	for _, size := range sizes {
		c := cfg
		c.GPU.L1Bytes = size
		g, err := sim.New(c, b.Kernel, sim.Baseline{})
		if err != nil {
			return fmt.Errorf("check: L1 size %d: %w", size, err)
		}
		Attach(g)
		g.Run(int64(windows) * int64(c.LB.WindowCycles))
		hr := g.Collect().HitRatio()
		if prev >= 0 && hr < prev-slack {
			return fmt.Errorf("check: %s hit ratio fell from %.4f (%d B L1) to %.4f (%d B L1)",
				bench, prev, prevSize, hr, size)
		}
		prev, prevSize = hr, size
	}
	return nil
}

// AggregationConsistency re-derives the collected result from the per-SM
// state, summing in both SM orders, and demands agreement with Collect():
// the aggregate must be invariant under renumbering the SMs, and Collect
// must neither drop nor double-count a component.
func AggregationConsistency(g *sim.GPU, r *sim.Result) error {
	sms := g.SMs()
	sum := func(order []int) (instr, stores, launches, done int64, loads [5]int64, l1 cache.Stats) {
		for _, i := range order {
			sm := sms[i]
			instr += sm.Stats.Retired
			stores += sm.Stats.StoreReqs
			launches += sm.Stats.CTALaunches
			done += sm.Stats.CTADone
			for k, v := range sm.Stats.LoadReqs {
				loads[k] += v
			}
			s := sm.L1().Stats
			l1.LoadHits += s.LoadHits
			l1.LoadPendingHits += s.LoadPendingHits
			l1.LoadMisses += s.LoadMisses
			l1.ColdMisses += s.ColdMisses
			l1.CapConfMisses += s.CapConfMisses
			l1.StoreHits += s.StoreHits
			l1.StoreMisses += s.StoreMisses
			l1.Bypasses += s.Bypasses
			l1.Evictions += s.Evictions
			l1.DirtyEvictions += s.DirtyEvictions
			l1.MSHRStalls += s.MSHRStalls
		}
		return
	}
	fwd := make([]int, len(sms))
	rev := make([]int, len(sms))
	for i := range sms {
		fwd[i] = i
		rev[i] = len(sms) - 1 - i
	}
	fi, fs, fl, fd, flo, fl1 := sum(fwd)
	ri, rs, rl, rd, rlo, rl1 := sum(rev)
	if fi != ri || fs != rs || fl != rl || fd != rd || flo != rlo || fl1 != rl1 {
		return fmt.Errorf("check: aggregate differs across SM orderings")
	}
	switch {
	case r.Instructions != fi:
		return fmt.Errorf("check: Collect has %d instructions, SMs hold %d", r.Instructions, fi)
	case r.Stores != fs:
		return fmt.Errorf("check: Collect has %d stores, SMs hold %d", r.Stores, fs)
	case r.Loads != flo:
		return fmt.Errorf("check: Collect loads %v, SMs hold %v", r.Loads, flo)
	case r.CTALaunches != fl || r.CTACompleted != fd:
		return fmt.Errorf("check: Collect CTAs %d/%d, SMs hold %d/%d", r.CTALaunches, r.CTACompleted, fl, fd)
	case r.L1 != fl1:
		return fmt.Errorf("check: Collect L1 %+v, SMs hold %+v", r.L1, fl1)
	}
	return nil
}
