package check_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden-metrics snapshot")

const (
	goldenPath    = "testdata/golden.json"
	goldenWindows = 3
)

// TestGoldenMetrics re-runs every Table 2 benchmark under the reference
// schemes at the repository's experiment configuration and compares the
// headline metrics against the committed snapshot, exact-integer equal.
// Any engine or scheme change that shifts a metric must be accompanied by
// a reviewed `go test ./internal/check -run TestGoldenMetrics -update`.
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("golden capture runs all 20 benchmarks; skipped in -short")
	}
	got, err := check.Capture(harness.BenchConfig(),
		"BenchConfig (4 SMs, 12.5k-cycle windows), Table 2 benchmarks under {baseline, lb}",
		goldenWindows, workload.Names(), check.GoldenSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := got.Save(goldenPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got.Entries))
		return
	}
	want, err := check.LoadSnapshot(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the snapshot)", err)
	}
	if diffs := want.Compare(got); len(diffs) != 0 {
		t.Errorf("metrics diverged from golden snapshot (re-run with -update if intended):\n%s",
			strings.Join(diffs, "\n"))
	}
}

// TestGoldenSnapshotComplete verifies the committed snapshot covers the
// full benchmark × scheme cross product, so a silently dropped benchmark
// cannot shrink the regression surface.
func TestGoldenSnapshotComplete(t *testing.T) {
	want, err := check.LoadSnapshot(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range workload.Names() {
		for scheme := range check.GoldenSchemes() {
			if _, ok := want.Entries[bench+"|"+scheme]; !ok {
				t.Errorf("snapshot missing %s|%s", bench, scheme)
			}
		}
	}
	if want.Windows != goldenWindows {
		t.Errorf("snapshot captured at %d windows, test runs %d", want.Windows, goldenWindows)
	}
}
