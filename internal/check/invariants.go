package check

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// EngineRules returns the default conservation laws. Every rule must hold
// for every policy at every cycle boundary; policy-specific rules activate
// through the optional interfaces (VictimHitser, RegInflighter,
// SelfChecker) and are skipped where a policy does not implement them.
func EngineRules() []Rule {
	return []Rule{
		{Name: "load-accounting", Check: checkLoadAccounting},
		{Name: "victim-accounting", Check: checkVictimAccounting},
		{Name: "scoreboard", Check: checkScoreboard},
		{Name: "mshr", Check: checkMSHR},
		{Name: "inflight-conservation", Check: checkInflight},
		{Name: "l2-mshr", Check: checkL2MSHR},
		{Name: "policy-invariants", Check: checkPolicies},
	}
}

// checkLoadAccounting verifies the Figure 13 identity per SM: the engine's
// per-outcome load tally and the L1's own counters classify every lookup
// exactly once, so the two independent tallies must agree term by term.
func checkLoadAccounting(g *sim.GPU) error {
	for _, sm := range g.SMs() {
		st := &sm.Stats
		l1 := &sm.L1().Stats
		switch {
		case st.LoadReqs[sim.OutHit] != l1.LoadHits:
			return fmt.Errorf("SM%d: %d hit outcomes vs %d L1 load hits", sm.ID(), st.LoadReqs[sim.OutHit], l1.LoadHits)
		case st.LoadReqs[sim.OutPendingHit] != l1.LoadPendingHits:
			return fmt.Errorf("SM%d: %d pending-hit outcomes vs %d L1 pending hits", sm.ID(), st.LoadReqs[sim.OutPendingHit], l1.LoadPendingHits)
		case st.LoadReqs[sim.OutMiss]+st.LoadReqs[sim.OutBypass] != l1.LoadMisses:
			return fmt.Errorf("SM%d: %d miss + %d bypass outcomes vs %d L1 misses",
				sm.ID(), st.LoadReqs[sim.OutMiss], st.LoadReqs[sim.OutBypass], l1.LoadMisses)
		case l1.ColdMisses+l1.CapConfMisses != l1.LoadMisses:
			return fmt.Errorf("SM%d: miss split %d cold + %d cap/conf vs %d misses",
				sm.ID(), l1.ColdMisses, l1.CapConfMisses, l1.LoadMisses)
		case st.StoreReqs != l1.StoreHits+l1.StoreMisses:
			return fmt.Errorf("SM%d: %d store ops vs %d L1 store accesses", sm.ID(), st.StoreReqs, l1.StoreHits+l1.StoreMisses)
		}
	}
	return nil
}

// checkVictimAccounting cross-checks the engine's reg-hit outcome count
// against the policy's own victim-hit tally, where the policy exposes one.
func checkVictimAccounting(g *sim.GPU) error {
	for i, pol := range g.SMPolicies() {
		vh, ok := pol.(VictimHitser)
		if !ok {
			continue
		}
		sm := g.SMs()[i]
		if got, want := sm.Stats.LoadReqs[sim.OutRegHit], vh.VictimHits(); got != want {
			return fmt.Errorf("SM%d: engine counted %d reg hits, policy serviced %d", sm.ID(), got, want)
		}
	}
	return nil
}

// checkScoreboard verifies per-warp outstanding-request conservation: the
// scoreboard view (sum of warp memPending) must equal the line requests
// still queued in the LSU plus those registered as fill waiters.
func checkScoreboard(g *sim.GPU) error {
	for _, sm := range g.SMs() {
		pending := sm.SumMemPending()
		queued := sm.PendingLoadOps()
		waiting := sm.WaiterEntries()
		if pending != queued+waiting {
			return fmt.Errorf("SM%d: scoreboard holds %d outstanding loads, LSU+waiters hold %d+%d",
				sm.ID(), pending, queued, waiting)
		}
	}
	return nil
}

// checkMSHR verifies that L1 MSHR entries and fill-waiter lines pair up
// one-to-one: an entry without waiters is a leak (it would never be freed
// meaningfully), a waited line without an entry would never be woken.
func checkMSHR(g *sim.GPU) error {
	for _, sm := range g.SMs() {
		if fills, lines := sm.L1().OutstandingFills(), sm.WaiterLines(); fills != lines {
			return fmt.Errorf("SM%d: %d L1 MSHR entries vs %d waited lines", sm.ID(), fills, lines)
		}
		var err error
		sm.ForEachWaitedLine(func(line memtypes.LineAddr, _ int) {
			if err == nil && !sm.L1().HasOutstanding(line) {
				err = fmt.Errorf("SM%d: waiters on line %#x with no outstanding fill", sm.ID(), uint64(line))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// checkInflight takes a census of every request object travelling below
// the SMs and balances it against what each SM expects back: issued minus
// completed loads equal the distinct waited lines, and register
// backup/restore traffic equals the policies' reported in-flight counts.
// Stores are fire-and-forget and carry no return obligation.
func checkInflight(g *sim.GPU) error {
	n := len(g.SMs())
	loads := make([]int, n)
	regs := make([]int, n)
	g.ForEachInflight(func(req *memtypes.Request) {
		if req.SM < 0 || req.SM >= n {
			return
		}
		switch req.Kind {
		case memtypes.Load:
			loads[req.SM]++
		case memtypes.RegBackup, memtypes.RegRestore:
			regs[req.SM]++
		}
	})
	for i, sm := range g.SMs() {
		if want := sm.WaiterLines(); loads[i] != want {
			return fmt.Errorf("SM%d: %d loads in flight, %d lines awaited", sm.ID(), loads[i], want)
		}
		if ri, ok := g.SMPolicies()[i].(RegInflighter); ok {
			if want := ri.RegInflight(); regs[i] != want {
				return fmt.Errorf("SM%d: %d reg transfers in flight, policy expects %d", sm.ID(), regs[i], want)
			}
		}
	}
	return nil
}

// checkL2MSHR verifies the L2 leg of request conservation: every L2 MSHR
// entry corresponds to exactly one distinct load line in the DRAM queues or
// service stations, and vice versa.
func checkL2MSHR(g *sim.GPU) error {
	lines := map[memtypes.LineAddr]struct{}{}
	g.DRAM().ForEach(func(req *memtypes.Request) {
		if req.Kind == memtypes.Load {
			lines[req.Line] = struct{}{}
		}
	})
	if fills := g.L2().OutstandingFills(); fills != len(lines) {
		return fmt.Errorf("%d L2 MSHR entries vs %d distinct load lines in DRAM", fills, len(lines))
	}
	if waited := g.L2WaiterLines(); waited > g.L2().OutstandingFills() {
		return fmt.Errorf("%d L2-waited lines exceed %d outstanding fills", waited, g.L2().OutstandingFills())
	}
	return nil
}

// checkPolicies runs policy self-checks where implemented.
func checkPolicies(g *sim.GPU) error {
	for i, pol := range g.SMPolicies() {
		sc, ok := pol.(SelfChecker)
		if !ok {
			continue
		}
		if err := sc.CheckInvariants(); err != nil {
			return fmt.Errorf("SM%d: %w", g.SMs()[i].ID(), err)
		}
	}
	return nil
}
