// Package check is the simulator's verification subsystem. It cross-checks
// the cycle engine in internal/sim four independent ways:
//
//  1. Runtime invariant checking (Checker): a sim.CycleChecker that sweeps
//     the engine's conservation laws while a run executes — request-count
//     conservation across LSU/interconnect/L2/DRAM, MSHR and scoreboard
//     leak freedom, the Figure 13 load-outcome identity, and policy-internal
//     laws such as Linebacker's victim-capacity bound (via SelfChecker).
//  2. Differential testing (EquivalencePairs, RunPair): pairs of policies
//     that must provably converge — e.g. a victim-caching scheme given zero
//     victim space versus the baseline — executed on the same (bench, seed)
//     and compared metric by metric.
//  3. Metamorphic properties (SeedDeterminism, L1SizeMonotonicity,
//     AggregationConsistency): transformations of a run whose effect on the
//     result is known in advance.
//  4. Golden-metrics regression (Capture, Snapshot): a committed snapshot of
//     headline metrics for every benchmark under the reference schemes,
//     regenerated with `go test ./internal/check -run Golden -update`.
//
// Invariant checking is off by default. Enable it for any run through
// config.Config.Check (honoured by the top-level linebacker API, the
// experiment harness and the -check flag of cmd/lbsim), or attach a Checker
// directly with Attach.
package check

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// Violation records one failed invariant sweep.
type Violation struct {
	Cycle int64
	Rule  string
	Err   error
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %v", v.Cycle, v.Rule, v.Err)
}

// Rule is one named conservation law checked against the whole GPU.
type Rule struct {
	Name  string
	Check func(g *sim.GPU) error
}

// Checker sweeps a rule set over a running simulation. It implements
// sim.CycleChecker; in fail-fast mode (the default) the first violation
// aborts the run, otherwise violations accumulate for later inspection.
type Checker struct {
	every   int64
	collect bool
	maxViol int
	rules   []Rule

	violations []Violation
	sweeps     int64
}

// Option configures a Checker.
type Option func(*Checker)

// Every sets the cycle interval between sweeps (minimum 1).
func Every(n int64) Option {
	return func(c *Checker) {
		if n < 1 {
			n = 1
		}
		c.every = n
	}
}

// Collect switches the checker from fail-fast to recording mode: violations
// are retained (up to a cap) and the simulation continues. Used by tests
// that deliberately inject accounting bugs.
func Collect() Option {
	return func(c *Checker) { c.collect = true }
}

// WithRules replaces the default rule set.
func WithRules(rules []Rule) Option {
	return func(c *Checker) { c.rules = rules }
}

// New builds a checker over the default engine rule set.
func New(opts ...Option) *Checker {
	c := &Checker{every: 1, maxViol: 64, rules: EngineRules()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Attach builds a checker and installs it on the GPU. The sweep interval
// defaults to the run configuration's CheckEvery (0 = every cycle) unless
// overridden by an Every option.
func Attach(g *sim.GPU, opts ...Option) *Checker {
	c := New(append([]Option{Every(int64(g.Config().CheckEvery))}, opts...)...)
	g.SetChecker(c)
	return c
}

// CheckCycle implements sim.CycleChecker.
func (c *Checker) CheckCycle(g *sim.GPU, cycle int64) error {
	if cycle%c.every != 0 {
		return nil
	}
	c.sweeps++
	for _, r := range c.rules {
		err := r.Check(g)
		if err == nil {
			continue
		}
		if !c.collect {
			return fmt.Errorf("%s: %w", r.Name, err)
		}
		if len(c.violations) < c.maxViol {
			c.violations = append(c.violations, Violation{Cycle: cycle, Rule: r.Name, Err: err})
		}
	}
	return nil
}

// Violations returns the recorded violations (Collect mode).
func (c *Checker) Violations() []Violation { return c.violations }

// Sweeps returns how many cycle sweeps ran.
func (c *Checker) Sweeps() int64 { return c.sweeps }

// SelfChecker is implemented by SM policies that can verify their own
// internal conservation laws (e.g. Linebacker's victim-capacity bound).
type SelfChecker interface {
	CheckInvariants() error
}

// VictimHitser is implemented by SM policies that count the victim-cache
// hits they service; the checker cross-checks the count against the
// engine's OutRegHit tally.
type VictimHitser interface {
	VictimHits() int64
}

// RegInflighter is implemented by SM policies that emit register
// backup/restore traffic; the checker matches the reported in-flight count
// against a census of the memory system.
type RegInflighter interface {
	RegInflight() int
}
