package check

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Pair is a differential test case: two (config, policy) legs that must
// produce identical engine-visible results on every benchmark and seed,
// because their behavioural difference is provably nil.
type Pair struct {
	Name string
	// CfgA/CfgB adjust the base configuration per leg (nil = unchanged).
	CfgA, CfgB func(config.Config) config.Config
	// PolA/PolB build the two policies (fresh instances per run).
	PolA, PolB func() sim.Policy
}

// zeroVictimSpace pushes the victim-register offset to the top of the
// register file so the VTT clamps to zero partitions: the scheme keeps all
// its monitoring machinery but can never service or preserve a line.
func zeroVictimSpace(cfg config.Config) config.Config {
	cfg.LB.RegOffset = cfg.GPU.WarpRegisters() - 1
	return cfg
}

// EquivalencePairs returns the canonical must-converge pairs:
//
//   - baseline vs. SWL with a CTA limit at the residency ceiling (the limit
//     never binds, so the gate is transparent);
//   - baseline vs. selective victim caching with zero victim registers (the
//     paper's C=0 degenerate point: monitoring runs but no line can ever be
//     preserved, so timing must match the baseline exactly);
//   - baseline vs. preserve-all victim caching with zero victim registers;
//   - the two zero-register victim schemes against each other (throttling
//     disabled on both sides, per the ablation identity).
func EquivalencePairs(base config.Config) []Pair {
	baseline := func() sim.Policy { return sim.Baseline{} }
	return []Pair{
		{
			Name: "baseline-vs-unbound-swl",
			PolA: baseline,
			PolB: func() sim.Policy { return schemes.SWL{Limit: base.GPU.MaxCTAsPerSM} },
		},
		{
			Name: "baseline-vs-svc-zero-regs",
			PolA: baseline,
			CfgB: zeroVictimSpace,
			PolB: func() sim.Policy { return core.NewWith(core.Options{Selection: true}) },
		},
		{
			Name: "baseline-vs-vc-zero-regs",
			PolA: baseline,
			CfgB: zeroVictimSpace,
			PolB: func() sim.Policy { return core.NewWith(core.Options{Selection: false}) },
		},
		{
			Name: "svc-vs-vc-zero-regs",
			CfgA: zeroVictimSpace,
			PolA: func() sim.Policy { return core.NewWith(core.Options{Selection: true}) },
			CfgB: zeroVictimSpace,
			PolB: func() sim.Policy { return core.NewWith(core.Options{Selection: false}) },
		},
	}
}

// RunPair executes both legs of the pair on one benchmark and returns the
// metric divergences (empty = converged). The invariant checker rides along
// on both legs.
func RunPair(base config.Config, bench string, windows int, p Pair) ([]string, error) {
	run := func(adjust func(config.Config) config.Config, mk func() sim.Policy) (*sim.Result, error) {
		cfg := base
		if adjust != nil {
			cfg = adjust(cfg)
		}
		b, ok := workload.ByName(bench)
		if !ok {
			return nil, fmt.Errorf("check: unknown benchmark %q", bench)
		}
		g, err := sim.New(cfg, b.Kernel, mk())
		if err != nil {
			return nil, err
		}
		Attach(g)
		g.Run(int64(windows) * int64(cfg.LB.WindowCycles))
		return g.Collect(), nil
	}
	a, err := run(p.CfgA, p.PolA)
	if err != nil {
		return nil, err
	}
	b, err := run(p.CfgB, p.PolB)
	if err != nil {
		return nil, err
	}
	return CompareResults(a, b), nil
}

// CompareResults diffs every engine-visible metric of two results, ignoring
// the scheme identity fields (Policy, Extra). The returned strings name
// each divergence.
func CompareResults(a, b *sim.Result) []string {
	var diffs []string
	add := func(field string, av, bv any) {
		diffs = append(diffs, fmt.Sprintf("%s: %v vs %v", field, av, bv))
	}
	if a.Cycles != b.Cycles {
		add("Cycles", a.Cycles, b.Cycles)
	}
	if a.Instructions != b.Instructions {
		add("Instructions", a.Instructions, b.Instructions)
	}
	if a.Loads != b.Loads {
		add("Loads", a.Loads, b.Loads)
	}
	if a.Stores != b.Stores {
		add("Stores", a.Stores, b.Stores)
	}
	if a.L1 != b.L1 {
		add("L1", a.L1, b.L1)
	}
	if a.L2 != b.L2 {
		add("L2", a.L2, b.L2)
	}
	if a.DRAM != b.DRAM {
		add("DRAM", a.DRAM, b.DRAM)
	}
	if a.RF != b.RF {
		add("RF", a.RF, b.RF)
	}
	if a.CTALaunches != b.CTALaunches {
		add("CTALaunches", a.CTALaunches, b.CTALaunches)
	}
	if a.CTACompleted != b.CTACompleted {
		add("CTACompleted", a.CTACompleted, b.CTACompleted)
	}
	return diffs
}
