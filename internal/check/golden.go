package check

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Metrics is the committed headline-metric vector of one (bench, scheme)
// run. Everything is an exact integer count: the simulator is
// deterministic, so the regression gate can demand equality, and derived
// ratios (IPC, hit rates) follow from these.
type Metrics struct {
	Cycles       int64    `json:"cycles"`
	Instructions int64    `json:"instructions"`
	Loads        [5]int64 `json:"loads"` // by sim.Outcome: hit, pending, miss, bypass, reg-hit
	Stores       int64    `json:"stores"`
	L1Hits       int64    `json:"l1_hits"`
	L1Misses     int64    `json:"l1_misses"`
	DRAMRead     int64    `json:"dram_read_bytes"`
	DRAMWritten  int64    `json:"dram_written_bytes"`
}

// MetricsOf projects a result onto the golden vector.
func MetricsOf(r *sim.Result) Metrics {
	return Metrics{
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		Loads:        r.Loads,
		Stores:       r.Stores,
		L1Hits:       r.L1.LoadHits,
		L1Misses:     r.L1.LoadMisses,
		DRAMRead:     r.DRAM.BytesRead,
		DRAMWritten:  r.DRAM.BytesWritten,
	}
}

// Snapshot is a golden-metrics capture: every benchmark under the
// reference schemes at a fixed configuration and run length.
type Snapshot struct {
	Desc    string             `json:"desc"`
	Windows int                `json:"windows"`
	Entries map[string]Metrics `json:"entries"` // key "BENCH|Scheme"
}

// GoldenSchemes returns the reference scheme factories snapshotted by the
// regression gate, keyed by snapshot name.
func GoldenSchemes() map[string]func() sim.Policy {
	return map[string]func() sim.Policy{
		"baseline": func() sim.Policy { return sim.Baseline{} },
		"lb":       func() sim.Policy { return core.New() },
	}
}

// Capture runs every (bench, scheme) combination for the given windows and
// snapshots the headline metrics. Runs execute in parallel; determinism
// across parallel execution is itself part of what the regression verifies.
func Capture(cfg config.Config, desc string, windows int, benches []string, mks map[string]func() sim.Policy) (*Snapshot, error) {
	s := &Snapshot{Desc: desc, Windows: windows, Entries: map[string]Metrics{}}
	type job struct{ bench, scheme string }
	var jobs []job
	for _, b := range benches {
		for name := range mks {
			jobs = append(jobs, job{b, name})
		}
	}
	sort.Slice(jobs, func(i, j int) bool {
		if jobs[i].bench != jobs[j].bench {
			return jobs[i].bench < jobs[j].bench
		}
		return jobs[i].scheme < jobs[j].scheme
	})

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			b, ok := workload.ByName(j.bench)
			if !ok {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("check: unknown benchmark %q", j.bench)
				}
				mu.Unlock()
				return
			}
			g, err := sim.New(cfg, b.Kernel, mks[j.scheme]())
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("check: %s/%s: %w", j.bench, j.scheme, err)
				}
				mu.Unlock()
				return
			}
			g.Run(int64(windows) * int64(cfg.LB.WindowCycles))
			m := MetricsOf(g.Collect())
			mu.Lock()
			s.Entries[j.bench+"|"+j.scheme] = m
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// Compare returns the divergences of got from the golden snapshot: changed
// metrics, missing entries, and unexpected extras, sorted by key.
func (s *Snapshot) Compare(got *Snapshot) []string {
	var diffs []string
	if s.Windows != got.Windows {
		diffs = append(diffs, fmt.Sprintf("windows: golden %d vs got %d", s.Windows, got.Windows))
	}
	keys := map[string]struct{}{}
	for k := range s.Entries {
		keys[k] = struct{}{}
	}
	for k := range got.Entries {
		keys[k] = struct{}{}
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		want, okW := s.Entries[k]
		have, okH := got.Entries[k]
		switch {
		case !okW:
			diffs = append(diffs, fmt.Sprintf("%s: not in golden snapshot", k))
		case !okH:
			diffs = append(diffs, fmt.Sprintf("%s: missing from run", k))
		case want != have:
			diffs = append(diffs, fmt.Sprintf("%s:\n  golden %+v\n  got    %+v", k, want, have))
		}
	}
	return diffs
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("check: parsing %s: %w", path, err)
	}
	return &s, nil
}

// Save writes the snapshot with stable formatting.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
