package check_test

import (
	"runtime"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestGoldenMetricsWorkerMatrix is the bit-identity acceptance matrix of
// the parallel stepping engine (DESIGN.md §9): the full golden capture —
// every Table 2 benchmark under {baseline, lb} — must equal the committed
// snapshot at every worker count, not just the serial engine the snapshot
// was recorded with. Any scheduling leak (unordered interconnect merge,
// cross-SM state touched during the SM phase) shows up here as an
// exact-integer diff.
func TestGoldenMetricsWorkerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("worker matrix runs all 20 benchmarks per worker count; skipped in -short")
	}
	want, err := check.LoadSnapshot(goldenPath)
	if err != nil {
		t.Fatalf("%v (run TestGoldenMetrics with -update to create the snapshot)", err)
	}

	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		cfg := harness.BenchConfig()
		cfg.GPU.Workers = workers
		got, err := check.Capture(cfg,
			"worker-matrix capture",
			goldenWindows, workload.Names(), check.GoldenSchemes())
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if diffs := want.Compare(got); len(diffs) != 0 {
			t.Errorf("Workers=%d diverged from the serial golden snapshot:\n%s",
				workers, strings.Join(diffs, "\n"))
		}
	}
}
