package check

import (
	"strings"
	"testing"
)

// TestEquivalencePairsConverge runs every provably convergent policy pair on
// a sample of benchmarks and demands metric-for-metric identical results.
// These pairs differ only in machinery that is configured to be inert
// (an unbinding CTA limit, a zero-partition VTT), so any divergence is an
// engine bug, not a modelling choice.
func TestEquivalencePairsConverge(t *testing.T) {
	benches := []string{"S2", "BI", "BC"}
	if testing.Short() {
		benches = benches[:1]
	}
	cfg := testConfig()
	for _, p := range EquivalencePairs(cfg) {
		for _, bench := range benches {
			p, bench := p, bench
			t.Run(p.Name+"/"+bench, func(t *testing.T) {
				t.Parallel()
				diffs, err := RunPair(cfg, bench, 6, p)
				if err != nil {
					t.Fatal(err)
				}
				if len(diffs) != 0 {
					t.Errorf("legs diverged:\n%s", strings.Join(diffs, "\n"))
				}
			})
		}
	}
}

// TestRunPairRejectsUnknownBench covers the error path.
func TestRunPairRejectsUnknownBench(t *testing.T) {
	cfg := testConfig()
	p := EquivalencePairs(cfg)[0]
	if _, err := RunPair(cfg, "NOPE", 1, p); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}
