package check

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// buggyVictimPolicy is a deliberately broken victim-caching scheme: it
// services victim hits but "forgets" to count every fourth one — exactly
// the class of silent accounting bug (a dropped hit increment) the
// verification subsystem exists to catch.
type buggyVictimPolicy struct{ dropEvery int64 }

func (p buggyVictimPolicy) Name() string { return "BuggyVictim" }
func (p buggyVictimPolicy) Attach(sm *sim.SM) sim.SMPolicy {
	return &buggyVictimState{dropEvery: p.dropEvery, lines: map[memtypes.LineAddr]bool{}}
}

type buggyVictimState struct {
	sim.BasePolicy
	dropEvery int64
	lines     map[memtypes.LineAddr]bool
	served    int64 // true services
	counted   int64 // what the stats claim
}

func (s *buggyVictimState) OnEviction(ev cache.Eviction, cycle int64) {
	if !ev.Dirty {
		s.lines[ev.Line] = true
	}
}

func (s *buggyVictimState) OnStore(line memtypes.LineAddr, cycle int64) {
	delete(s.lines, line)
}

func (s *buggyVictimState) ProbeVictim(line memtypes.LineAddr, pc uint32, cycle int64) (bool, int) {
	if !s.lines[line] {
		return false, 0
	}
	delete(s.lines, line)
	s.served++
	// The injected bug: every dropEvery-th hit is serviced but not counted.
	if s.dropEvery == 0 || s.served%s.dropEvery != 0 {
		s.counted++
	}
	return true, 1
}

// VictimHits implements VictimHitser with the corrupted count.
func (s *buggyVictimState) VictimHits() int64 { return s.counted }

// TestInjectedAccountingBugCaught demonstrates the acceptance scenario: a
// scheme that drops victim-hit increments is flagged by the invariant
// checker (the engine's OutRegHit tally disagrees with the policy's), while
// the same scheme with honest accounting sails through.
func TestInjectedAccountingBugCaught(t *testing.T) {
	run := func(dropEvery int64) (*Checker, *sim.Result) {
		b, _ := workload.ByName("S2")
		cfg := testConfig()
		g, err := sim.New(cfg, b.Kernel, buggyVictimPolicy{dropEvery: dropEvery})
		if err != nil {
			t.Fatal(err)
		}
		c := Attach(g, Collect())
		g.Run(4 * int64(cfg.LB.WindowCycles))
		return c, g.Collect()
	}

	honest, res := run(0)
	if res.Loads[sim.OutRegHit] == 0 {
		t.Fatal("test scheme never serviced a victim hit; the bug cannot manifest")
	}
	if n := len(honest.Violations()); n != 0 {
		t.Fatalf("honest accounting flagged %d violations: %v", n, honest.Violations()[0])
	}

	buggy, _ := run(4)
	vs := buggy.Violations()
	if len(vs) == 0 {
		t.Fatal("dropped victim-hit increments went undetected")
	}
	if vs[0].Rule != "victim-accounting" {
		t.Fatalf("caught by rule %q, want victim-accounting", vs[0].Rule)
	}
}

// TestGoldenCatchesMetricDrift demonstrates the regression half of the
// acceptance scenario: a single dropped count in a snapshot metric is
// reported by Snapshot.Compare.
func TestGoldenCatchesMetricDrift(t *testing.T) {
	a := &Snapshot{Windows: 2, Entries: map[string]Metrics{
		"S2|lb": {Cycles: 100, Loads: [5]int64{10, 2, 3, 0, 5}},
	}}
	b := &Snapshot{Windows: 2, Entries: map[string]Metrics{
		"S2|lb": {Cycles: 100, Loads: [5]int64{10, 2, 3, 0, 4}}, // one reg hit dropped
	}}
	if diffs := a.Compare(b); len(diffs) != 1 {
		t.Fatalf("expected exactly one divergence, got %v", diffs)
	}
	if diffs := a.Compare(a); len(diffs) != 0 {
		t.Fatalf("self-comparison diverged: %v", diffs)
	}
}
