package check_test

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestSkipFuzzStrictEquivalence is the randomized arm of the cycle-skipping
// invisibility proof: the golden matrix pins two configurations forever,
// this test draws fresh ones every run. Each trial perturbs the machine
// along the axes the event protocol actually reasons about — cache
// geometry (MSHR stall spans), DRAM timing (bank wake cycles), scheduler
// gating (SWL limits), policy (baseline / SWL / Linebacker) — then runs
// the same (bench, config) strict and skipping and demands the full Result
// (including Extra) and the final StateDump match exactly. Seeds are fixed
// per trial index so any failure reproduces deterministically.
func TestSkipFuzzStrictEquivalence(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	benches := workload.Names()
	for i := 0; i < trials; i++ {
		i := i
		t.Run(fmt.Sprintf("trial%02d", i), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewPCG(0x11bebacce5, uint64(i)))

			cfg := harness.BenchConfig()
			line := config.LineSize
			cfg.GPU.L1Bytes = cfg.GPU.L1Ways * line * (8 << rng.IntN(4))  // 8..64 sets
			cfg.GPU.L2Bytes = cfg.GPU.L2Ways * line * (64 << rng.IntN(4)) // 64..512 sets
			cfg.GPU.L1MSHRs = 4 << rng.IntN(5)                            // 4..64
			cfg.GPU.DRAM.RCD = float64(6 + rng.IntN(13))
			cfg.GPU.DRAM.RP = float64(6 + rng.IntN(13))
			cfg.GPU.DRAM.CL = float64(6 + rng.IntN(13))
			cfg.GPU.MaxWarpMLP = 1 + rng.IntN(6)
			cfg.GPU.Workers = 1 + rng.IntN(4)

			var mk func() sim.Policy
			switch rng.IntN(3) {
			case 0:
				mk = func() sim.Policy { return sim.Baseline{} }
			case 1:
				limit := 1 + rng.IntN(cfg.GPU.MaxCTAsPerSM)
				mk = func() sim.Policy { return schemes.SWL{Limit: limit} }
			default:
				mk = func() sim.Policy { return core.New() }
			}
			bench := benches[rng.IntN(len(benches))]
			windows := 2 + rng.IntN(2)
			cycles := int64(windows) * int64(cfg.LB.WindowCycles)

			b, ok := workload.ByName(bench)
			if !ok {
				t.Fatalf("workload %s not found", bench)
			}
			run := func(strict bool) (*sim.Result, string, int64) {
				c := cfg
				c.Strict = strict
				g, err := sim.New(c, b.Kernel, mk())
				if err != nil {
					t.Fatalf("strict=%v: %v", strict, err)
				}
				g.Run(cycles)
				return g.Collect(), g.StateDump(), g.SkippedCycles()
			}
			rs, ds, _ := run(true)
			rk, dk, skipped := run(false)
			if !reflect.DeepEqual(rs, rk) {
				t.Errorf("bench %s: Result diverged between strict and skipping:\nstrict:   %+v\nskipping: %+v",
					bench, rs, rk)
			}
			if ds != dk {
				t.Errorf("bench %s: StateDump diverged:\n--- strict ---\n%s\n--- skipping ---\n%s",
					bench, ds, dk)
			}
			t.Logf("bench=%s policy=%s skipped=%d/%d cycles", bench, mk().Name(), skipped, cycles)
		})
	}
}
