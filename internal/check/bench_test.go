package check

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Run with -bench 'BenchmarkStep' to compare per-cycle cost with checking
// disabled (the default, which must stay within noise of the unhooked
// engine), enabled every cycle, and enabled at the sampling interval.
func benchmarkRun(b *testing.B, attach bool, every int) {
	bench, _ := workload.ByName("S2")
	cfg := testConfig()
	cfg.CheckEvery = every
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := sim.New(cfg, bench.Kernel, sim.Baseline{})
		if err != nil {
			b.Fatal(err)
		}
		if attach {
			Attach(g)
		}
		g.Run(4 * int64(cfg.LB.WindowCycles))
	}
}

func BenchmarkStepCheckerOff(b *testing.B)      { benchmarkRun(b, false, 0) }
func BenchmarkStepCheckerEvery1(b *testing.B)   { benchmarkRun(b, true, 0) }
func BenchmarkStepCheckerEvery100(b *testing.B) { benchmarkRun(b, true, 100) }
