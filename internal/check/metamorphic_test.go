package check

import (
	"reflect"
	"sync"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestSeedDeterminism re-runs every policy family on one benchmark and
// demands deeply equal results: the engine must be free of hidden entropy
// and unordered-map effects.
func TestSeedDeterminism(t *testing.T) {
	for name, mk := range testPolicies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := SeedDeterminism(testConfig(), "S2", mk, 6); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestParallelRunDeterminism runs several identical simulations
// concurrently and demands they all agree with a serial reference run —
// the property the parallel harness.Runner and golden Capture rely on.
// Under -race this also proves run state is never shared across instances.
func TestParallelRunDeterminism(t *testing.T) {
	cfg := testConfig()
	b, _ := workload.ByName("BI")
	run := func() *sim.Result {
		g, err := sim.New(cfg, b.Kernel, testPolicies()["lb"]())
		if err != nil {
			t.Error(err)
			return nil
		}
		g.Run(6 * int64(cfg.LB.WindowCycles))
		return g.Collect()
	}
	ref := run()

	const workers = 4
	results := make([]*sim.Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !reflect.DeepEqual(ref, r) {
			t.Errorf("concurrent run %d diverged from serial reference", i)
		}
	}
}

// TestL1SizeMonotonicity grows the baseline L1 across the Figure 5 axis and
// verifies the hit ratio never materially falls: capacity can only help a
// correctly modelled cache. The small slack absorbs timing-induced
// reshuffling of which windows complete within the fixed run length.
func TestL1SizeMonotonicity(t *testing.T) {
	benches := []string{"S2", "KM"}
	if testing.Short() {
		benches = benches[:1]
	}
	sizes := []int{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024}
	for _, bench := range benches {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			if err := L1SizeMonotonicity(testConfig(), bench, sizes, 6, 0.01); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAggregationConsistency verifies Collect() equals the per-SM sums in
// either SM enumeration order — renumbering the SMs cannot change the
// aggregate, and Collect neither drops nor double-counts a component.
func TestAggregationConsistency(t *testing.T) {
	cfg := testConfig()
	b, _ := workload.ByName("S2")
	for name, mk := range testPolicies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			g, err := sim.New(cfg, b.Kernel, mk())
			if err != nil {
				t.Fatal(err)
			}
			g.Run(6 * int64(cfg.LB.WindowCycles))
			if err := AggregationConsistency(g, g.Collect()); err != nil {
				t.Error(err)
			}
		})
	}
}
