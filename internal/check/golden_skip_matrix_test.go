package check_test

import (
	"context"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestGoldenMetricsSkipMatrix is the bit-identity acceptance matrix of the
// event-driven cycle-skipping engine (DESIGN.md §10): the full golden
// capture — every Table 2 benchmark under {baseline, lb} — must equal the
// committed snapshot in both run modes at both worker counts. The snapshot
// was recorded by a strict serial engine, so any event advertised too late
// (a skipped cycle that would have changed state) or any closed-form
// accrual that drifts from per-cycle ticking shows up as an exact-integer
// diff against it.
func TestGoldenMetricsSkipMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("skip matrix runs all 20 benchmarks per mode/worker leg; skipped in -short")
	}
	want, err := check.LoadSnapshot(goldenPath)
	if err != nil {
		t.Fatalf("%v (run TestGoldenMetrics with -update to create the snapshot)", err)
	}

	for _, strict := range []bool{true, false} {
		for _, workers := range []int{1, 4} {
			cfg := harness.BenchConfig()
			cfg.Strict = strict
			cfg.GPU.Workers = workers
			got, err := check.Capture(cfg,
				"skip-matrix capture",
				goldenWindows, workload.Names(), check.GoldenSchemes())
			if err != nil {
				t.Fatalf("Strict=%v Workers=%d: %v", strict, workers, err)
			}
			if diffs := want.Compare(got); len(diffs) != 0 {
				t.Errorf("Strict=%v Workers=%d diverged from the golden snapshot:\n%s",
					strict, workers, strings.Join(diffs, "\n"))
			}
		}
	}
}

// TestSkipStateDumpSampled drives a strict and a skipping machine for the
// same benchmark side by side, pausing both at sampled cycle points and
// comparing full StateDump output. This is stronger than end-of-run Result
// equality: the dumps expose in-flight machine state (warp counters, queue
// depths, per-component stats), so the two runs must agree not just at the
// finish line but at every sampled instant along the way.
func TestSkipStateDumpSampled(t *testing.T) {
	benches := []string{"S2", "BC", "SP"}
	if testing.Short() {
		benches = benches[:1]
	}
	schemes := check.GoldenSchemes()
	for _, bench := range benches {
		b, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("workload %s not found", bench)
		}
		for name, mk := range schemes {
			t.Run(bench+"/"+name, func(t *testing.T) {
				strictCfg := harness.BenchConfig()
				strictCfg.Strict = true
				skipCfg := harness.BenchConfig()
				skipCfg.Strict = false

				gs, err := sim.New(strictCfg, b.Kernel, mk())
				if err != nil {
					t.Fatal(err)
				}
				gk, err := sim.New(skipCfg, b.Kernel, mk())
				if err != nil {
					t.Fatal(err)
				}
				ctx := context.Background()
				const step, limit = 10_000, 120_000
				for at := int64(step); at <= limit; at += step {
					cs, err := gs.RunCtx(ctx, at)
					if err != nil {
						t.Fatal(err)
					}
					ck, err := gk.RunCtx(ctx, at)
					if err != nil {
						t.Fatal(err)
					}
					if cs != ck {
						t.Fatalf("cycle divergence at sample %d: strict stopped at %d, skipping at %d", at, cs, ck)
					}
					ds, dk := gs.StateDump(), gk.StateDump()
					if ds != dk {
						t.Fatalf("state dump divergence at cycle %d:\n--- strict ---\n%s\n--- skipping ---\n%s",
							cs, ds, dk)
					}
					if cs < at { // both runs completed the grid
						break
					}
				}
				if gk.SkippedCycles() == 0 {
					t.Errorf("skipping run never skipped a cycle; the comparison exercised nothing")
				}
			})
		}
	}
}
