package check

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// testConfig is a small, fast configuration for verification runs.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 2
	cfg.LB.WindowCycles = 2000
	return cfg
}

// testPolicies enumerates fresh policy instances covering every behavioural
// family the engine hosts: plain baseline, CTA gating, cache bypassing,
// victim caching with and without selection/throttling, and L1 reshaping.
func testPolicies() map[string]func() sim.Policy {
	return map[string]func() sim.Policy{
		"baseline": func() sim.Policy { return sim.Baseline{} },
		"swl2":     func() sim.Policy { return schemes.SWL{Limit: 2} },
		"pcal":     func() sim.Policy { return schemes.PCAL{} },
		"cerf":     func() sim.Policy { return schemes.CERF{} },
		"cacheext": func() sim.Policy { return schemes.CacheExt{} },
		"ccws":     func() sim.Policy { return schemes.CCWS{} },
		"lb":       func() sim.Policy { return core.New() },
		"svc":      func() sim.Policy { return core.NewWith(core.Options{Selection: true}) },
		"vc":       func() sim.Policy { return core.NewWith(core.Options{Selection: false}) },
	}
}

// TestInvariantsHoldAcrossSchemes sweeps every conservation law every cycle
// for a sample of benchmarks under every policy family. Zero violations
// are tolerated.
func TestInvariantsHoldAcrossSchemes(t *testing.T) {
	benches := []string{"S2", "BI", "KM"}
	if testing.Short() {
		benches = benches[:1]
	}
	for _, bench := range benches {
		b, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		for name, mk := range testPolicies() {
			t.Run(bench+"/"+name, func(t *testing.T) {
				t.Parallel()
				cfg := testConfig()
				g, err := sim.New(cfg, b.Kernel, mk())
				if err != nil {
					t.Fatal(err)
				}
				c := Attach(g, Collect())
				g.Run(8 * int64(cfg.LB.WindowCycles))
				if c.Sweeps() == 0 {
					t.Fatal("checker never swept")
				}
				for _, v := range c.Violations() {
					t.Errorf("violation: %s", v)
				}
			})
		}
	}
}

// TestCheckerFailFastPanics verifies that fail-fast mode aborts the run
// through the engine's panic path when a rule reports a violation.
func TestCheckerFailFastPanics(t *testing.T) {
	b, _ := workload.ByName("S2")
	cfg := testConfig()
	g, err := sim.New(cfg, b.Kernel, sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	Attach(g, WithRules([]Rule{{
		Name:  "always-fails",
		Check: func(*sim.GPU) error { return errTest },
	}}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from fail-fast checker")
		}
	}()
	g.Run(10)
}

// TestCheckEveryInterval verifies sweep-interval honouring.
func TestCheckEveryInterval(t *testing.T) {
	b, _ := workload.ByName("S2")
	cfg := testConfig()
	cfg.CheckEvery = 100
	g, err := sim.New(cfg, b.Kernel, sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	c := Attach(g, Collect())
	g.Run(1000)
	if got := c.Sweeps(); got != 10 {
		t.Fatalf("swept %d times over 1000 cycles at interval 100, want 10", got)
	}
}

var errTest = errInvariant("injected test failure")

type errInvariant string

func (e errInvariant) Error() string { return string(e) }
