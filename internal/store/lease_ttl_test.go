package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// coarseGranularity makes Open see a simulated filesystem timestamp
// resolution for the test's lifetime.
func coarseGranularity(t *testing.T, gran time.Duration) {
	t.Helper()
	prev := mtimeGranularityFn
	mtimeGranularityFn = func(string) (time.Duration, error) { return gran, nil }
	t.Cleanup(func() { mtimeGranularityFn = prev })
}

// TestOpenRejectsTTLBelowGranularityMinimum is the regression test for
// lease liveness on coarse-mtime filesystems: pre-fix, Open accepted any
// positive TTL, so a 20ms TTL on a 1s-granularity mount meant every TTL/3
// renewal rounded away and live leases were stolen mid-run. Now it is a
// construction error.
func TestOpenRejectsTTLBelowGranularityMinimum(t *testing.T) {
	coarseGranularity(t, time.Second)
	_, err := Open(t.TempDir(), Options{LeaseTTL: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("Open accepted a 20ms lease TTL on a 1s-granularity filesystem")
	}
	for _, want := range []string{"20ms", "granularity", "1s"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}

	// The default TTL (1 minute) clears the minimum even on FAT-like 2s
	// granularity — only explicit fast-test TTLs can be misconfigured.
	coarseGranularity(t, 2*time.Second)
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("default TTL must satisfy a 2s-granularity minimum: %v", err)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
}

func TestMinLeaseTTLBoundary(t *testing.T) {
	coarseGranularity(t, 250*time.Millisecond)
	// Exactly the minimum (4x granularity) must be accepted...
	s, err := Open(t.TempDir(), Options{LeaseTTL: time.Second})
	if err != nil {
		t.Fatalf("TTL at the minimum rejected: %v", err)
	}
	if cerr := s.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	// ...one step below it must not.
	if _, err := Open(t.TempDir(), Options{LeaseTTL: time.Second - time.Millisecond}); err == nil {
		t.Fatal("TTL just below the minimum accepted")
	}
}

// TestMtimeGranularityProbe sanity-checks the real probe on the test
// filesystem: it must succeed, report a non-negative resolution, and not
// leave probe files behind.
func TestMtimeGranularityProbe(t *testing.T) {
	dir := t.TempDir()
	gran, err := mtimeGranularity(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gran < 0 || gran > 2*time.Second {
		t.Errorf("granularity %v outside any plausible filesystem resolution", gran)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("probe left %d file(s) behind", len(ents))
	}
}

// TestLeaseStealBoundary pins the staleness edge: a lease renewed within
// the TTL must never be stolen, one a hair past it must be (via the
// remove-then-reacquire protocol).
func TestLeaseStealBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{LeaseTTL: 30 * time.Second, LeasePoll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	lease := s.leasePath("bench|pol")
	if err := os.WriteFile(lease, []byte("pid 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Renewed just inside the TTL: alive, must not be stolen even after
	// repeated attempts.
	fresh := time.Now().Add(-s.opt.LeaseTTL + 5*time.Second)
	if err := os.Chtimes(lease, fresh, fresh); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok, err := s.tryAcquire(lease); err != nil || ok {
			t.Fatalf("attempt %d on a live lease: ok=%v err=%v", i, ok, err)
		}
	}
	if _, err := os.Stat(lease); err != nil {
		t.Fatalf("live lease file was removed: %v", err)
	}

	// A full TTL past the last renewal: dead. The first attempt steals
	// (removes) it, the retry acquires it — the same two-step every
	// concurrent stealer races through the atomic O_EXCL create.
	stale := time.Now().Add(-s.opt.LeaseTTL - 5*time.Second)
	if err := os.Chtimes(lease, stale, stale); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.tryAcquire(lease); err != nil || ok {
		t.Fatalf("steal attempt must remove and report contention, got ok=%v err=%v", ok, err)
	}
	if _, serr := os.Stat(lease); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("stale lease still present after steal attempt: %v", serr)
	}
	release, ok, err := s.tryAcquire(lease)
	if err != nil || !ok {
		t.Fatalf("reacquire after steal: ok=%v err=%v", ok, err)
	}
	release()
	if _, serr := os.Stat(filepath.Join(dir, lockDir)); serr != nil {
		t.Fatal(serr)
	}
}
