package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// record is one committed result, JSON-encoded inside a CRC frame. The key
// embeds the full harness config fingerprint, so records written under a
// different configuration (or with chaos armed) can never alias.
type record struct {
	V      int         `json:"v"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

const recordVersion = 1

// segment file naming: seg-NNNNNN.lbs, monotonically increasing. Each
// process owns exactly one active segment (created lazily on first Put
// with O_EXCL, so two replicas can never share one) and treats every other
// segment as read-only.
const (
	segPrefix = "seg-"
	segSuffix = ".lbs"
	lockDir   = "locks"
)

// Options tunes a Store. The zero value is production-ready.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Rotation bounds the cost of the torn-tail scan on
	// open and gives compaction removable units.
	MaxSegmentBytes int64
	// NoSync skips the fsync-on-commit — only for tests that measure the
	// framing layer without paying disk-flush latency.
	NoSync bool
	// LeaseTTL is how stale a lease file must be before another process
	// may steal it (default 1 minute). Leaseholders renew at TTL/3, so
	// only a dead process's lease ever expires.
	LeaseTTL time.Duration
	// LeasePoll is the waiters' polling interval for lease release and
	// store refresh (default 25 ms).
	LeasePoll time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Minute
	}
	if o.LeasePoll <= 0 {
		o.LeasePoll = 25 * time.Millisecond
	}
	return o
}

// LoadReport summarises what opening (plus refreshing) a store directory
// found. lbserve exports it through /v1/stats, and the crash-restart
// acceptance test asserts on it.
type LoadReport struct {
	// Loaded counts usable records (unique keys keep their first-loaded
	// result; duplicate records across segments are benign — determinism
	// makes them bit-identical — and counted here once per key).
	Loaded int `json:"loaded"`
	// Skipped counts corrupt regions stepped over by the frame scanner.
	Skipped int `json:"skipped"`
	// TruncatedBytes counts unconsumed tail bytes across segments — the
	// footprint of writers that died mid-record.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// Segments is the number of segment files seen.
	Segments int `json:"segments"`
}

// Store is a persistent content-addressed result store over one directory.
// All methods are safe for concurrent use; several Store handles (in one
// process or many) may share a directory.
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	entries map[string]*sim.Result
	report  LoadReport
	// scanned tracks, per segment base name, how many bytes have been
	// consumed, so Refresh re-reads only appended suffixes.
	scanned map[string]int64
	active  *os.File
	// activeName is the base name of this handle's own segment ("" until
	// the first Put creates it).
	activeName string
	activeSize int64
	segIndex   int // index of the active segment (0 = none yet)
	writeErr   error
	closed     bool
}

// Open loads every segment under dir (creating the directory if needed)
// and returns a handle ready for Get/Put/DoOnce. Corrupt records and torn
// tails are tolerated and tallied in the load report; they cost
// re-simulation, never a failed open.
//
// Open validates the lease TTL against the directory's actual timestamp
// resolution: leaseholders renew by advancing the lease mtime at TTL/3,
// so on a filesystem that stores coarse mtimes (FAT: 2s; some network
// filesystems: 1s) a too-small TTL would make live holders' renewals
// invisible and their leases steadily stolen mid-run. That is a
// misconfiguration, not a runtime condition — so it fails construction.
func Open(dir string, opt Options) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, lockDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	opt = opt.withDefaults()
	gran, err := mtimeGranularityFn(filepath.Join(dir, lockDir))
	if err != nil {
		return nil, err
	}
	if min := minLeaseTTL(gran); opt.LeaseTTL < min {
		return nil, fmt.Errorf("store: LeaseTTL %v is below the liveness minimum %v for %s (observed mtime granularity %v): TTL/3 renewals would round away and live leases would be stolen",
			opt.LeaseTTL, min, dir, gran)
	}
	s := &Store{
		dir:     dir,
		opt:     opt,
		entries: map[string]*sim.Result{},
		scanned: map[string]int64{},
	}
	if err := s.refreshLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// minLeaseTTL is the smallest TTL at which TTL/3 renewals stay visible on
// a filesystem with the observed mtime granularity: each renewal must
// advance the stored timestamp by at least one resolvable step, with one
// extra step of slack for truncate-vs-round ambiguity.
func minLeaseTTL(gran time.Duration) time.Duration {
	if gran <= 0 {
		return 0
	}
	return 4 * gran
}

// mtimeGranularityFn is swapped by tests to simulate coarse filesystems.
var mtimeGranularityFn = mtimeGranularity

// mtimeGranularity measures the filesystem's file-timestamp resolution
// under dir: it stamps a probe file with a reference instant carrying full
// nanosecond precision and reports how much of it the filesystem dropped
// (0 on ext4/tmpfs/APFS; ~1s on many network mounts; up to 2s on FAT).
func mtimeGranularity(dir string) (time.Duration, error) {
	f, err := os.CreateTemp(dir, "mtime-probe-*")
	if err != nil {
		return 0, fmt.Errorf("store: probing mtime granularity in %s: %w", dir, err)
	}
	name := f.Name()
	defer os.Remove(name) //lbvet:errok — a leaked zero-byte probe file is harmless
	if cerr := f.Close(); cerr != nil {
		return 0, fmt.Errorf("store: probing mtime granularity: %w", cerr)
	}
	// An odd second plus maximal sub-second part exposes truncation at any
	// power-of-ten resolution and FAT's 2-second rounding alike.
	ref := time.Unix(1_700_000_001, 999_999_999)
	if terr := os.Chtimes(name, ref, ref); terr != nil {
		return 0, fmt.Errorf("store: probing mtime granularity: %w", terr)
	}
	st, err := os.Stat(name)
	if err != nil {
		return 0, fmt.Errorf("store: probing mtime granularity: %w", err)
	}
	diff := ref.Sub(st.ModTime())
	if diff < 0 {
		diff = -diff // filesystems that round to nearest may land past ref
	}
	return diff, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// segments lists the segment base names in dir, sorted (their zero-padded
// indices make lexical order creation order).
func (s *Store) segments() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", s.dir, err)
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// segIndexOf parses the numeric index out of a segment base name, or -1.
func segIndexOf(name string) int {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	idx := 0
	for _, c := range num {
		if c < '0' || c > '9' {
			return -1
		}
		idx = idx*10 + int(c-'0')
	}
	if num == "" {
		return -1
	}
	return idx
}

func segName(idx int) string { return fmt.Sprintf("%s%06d%s", segPrefix, idx, segSuffix) }

// Refresh picks up records committed by other processes since open (new
// segments, and new suffixes of known ones). It never modifies foreign
// files: an incomplete tail is left alone — if its writer is alive the
// next Refresh consumes it once the fsync lands, and if the writer died
// the bytes simply stay dead until compaction.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshLocked()
}

func (s *Store) refreshLocked() error {
	names, err := s.segments()
	if err != nil {
		return err
	}
	s.report.Segments = len(names)
	for _, name := range names {
		if name == s.activeName {
			continue // our own writes are already in entries
		}
		if err := s.scanSegmentLocked(name); err != nil {
			return err
		}
	}
	return nil
}

// scanSegmentLocked reads the unconsumed suffix of one segment and loads
// its intact records.
func (s *Store) scanSegmentLocked(name string) error {
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // compacted away between ReadDir and here
		}
		return fmt.Errorf("store: reading segment %s: %w", path, err)
	}
	from := s.scanned[name]
	if int64(len(data)) <= from {
		return nil
	}
	sc := scanFrames(data[from:], func(payload []byte) {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.V != recordVersion || rec.Key == "" || rec.Result == nil {
			s.report.Skipped++
			return
		}
		if _, dup := s.entries[rec.Key]; !dup {
			s.entries[rec.Key] = rec.Result
			s.report.Loaded++
		}
	})
	s.scanned[name] = from + sc.consumed
	s.report.Skipped += sc.skipped
	s.report.TruncatedBytes += sc.tail
	return nil
}

// Get returns the committed result for key, if any. It consults only this
// handle's view; DoOnce refreshes before deciding to execute.
func (s *Store) Get(key string) (*sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.entries[key]
	return res, ok
}

// Len returns the number of distinct keys loaded.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Keys returns the loaded keys, sorted.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Report returns the cumulative load report of this handle.
func (s *Store) Report() LoadReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report
}

// Err returns the first sticky write failure, if any. Like the journal, a
// failed append degrades durability, not correctness: the in-memory entry
// stays valid, and lbserve surfaces the error through /healthz instead of
// failing the simulation that produced the result.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeErr
}

// ensureActiveLocked creates this handle's own segment on first use. The
// O_EXCL loop guarantees segment ownership even when several replicas
// open the directory simultaneously.
func (s *Store) ensureActiveLocked() error {
	if s.active != nil {
		return nil
	}
	names, err := s.segments()
	if err != nil {
		return err
	}
	next := 1
	for _, n := range names {
		if idx := segIndexOf(n); idx >= next {
			next = idx + 1
		}
	}
	for tries := 0; tries < 10000; tries++ {
		name := segName(next)
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			s.active, s.activeName, s.activeSize, s.segIndex = f, name, 0, next
			s.report.Segments++
			return nil
		}
		if !os.IsExist(err) {
			return fmt.Errorf("store: creating segment %s: %w", name, err)
		}
		next++ // another replica claimed this index; take the next one
	}
	return fmt.Errorf("store: could not claim a segment index in %s", s.dir)
}

// Put commits one result: framed, appended to this handle's segment and
// fsynced before returning. A key already present is a no-op — results are
// deterministic, so the first commit is as good as any. Write failures are
// sticky (see Err) but do not invalidate the in-memory entry.
func (s *Store) Put(key string, res *sim.Result) error {
	if key == "" || res == nil {
		return fmt.Errorf("store: refusing to commit empty key or nil result")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: put on closed store")
	}
	if _, dup := s.entries[key]; dup {
		return nil
	}
	payload, err := json.Marshal(record{V: recordVersion, Key: key, Result: res})
	if err != nil {
		return s.stickyLocked(fmt.Errorf("store: encoding record: %w", err))
	}
	if err := s.ensureActiveLocked(); err != nil {
		return s.stickyLocked(err)
	}
	frame := appendFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)
	// One Write call per record: a crash mid-write leaves exactly the
	// torn-tail shape the scanner refuses to consume.
	if _, err := s.active.Write(frame); err != nil {
		return s.stickyLocked(fmt.Errorf("store: appending to %s: %w", s.activeName, err))
	}
	if !s.opt.NoSync {
		if err := SyncCommit(s.active); err != nil {
			return s.stickyLocked(fmt.Errorf("store: fsync %s: %w", s.activeName, err))
		}
	}
	s.activeSize += int64(len(frame))
	s.scanned[s.activeName] = s.activeSize
	s.entries[key] = res
	s.report.Loaded++
	if s.activeSize >= s.opt.MaxSegmentBytes {
		s.rotateLocked()
	}
	return nil
}

// stickyLocked records the first write failure and returns err.
func (s *Store) stickyLocked(err error) error {
	if s.writeErr == nil {
		s.writeErr = err
	}
	return err
}

// rotateLocked seals the active segment; the next Put claims a fresh one.
func (s *Store) rotateLocked() {
	if s.active == nil {
		return
	}
	if err := s.active.Close(); err != nil {
		s.stickyLocked(fmt.Errorf("store: sealing %s: %w", s.activeName, err)) //lbvet:errok — stickyLocked returns its own argument; the sticky record is the handling
	}
	s.active, s.activeName, s.activeSize, s.segIndex = nil, "", 0, 0
}

// Compact rewrites every live record into one fresh segment and removes
// the older ones, dropping dead bytes (corrupt regions, torn tails,
// duplicate keys). The new segment is fully written and fsynced before any
// old file is removed, so a crash anywhere in between leaves at worst
// duplicate records — which load dedups — and never a lost one.
//
// Compact requires exclusivity: the caller must know no other process is
// appending to the directory (lbserve compacts only at startup, before
// serving). Foreign live segments removed mid-append would lose their
// writers' future records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.refreshLocked(); err != nil {
		return err
	}
	old, err := s.segments()
	if err != nil {
		return err
	}
	s.rotateLocked() // seal our own segment; it is removed with the rest
	next := 1
	for _, n := range old {
		if idx := segIndexOf(n); idx >= next {
			next = idx + 1
		}
	}
	name := segName(next)
	tmp := filepath.Join(s.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compaction temp %s: %w", tmp, err)
	}
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic segment bytes for identical contents
	var buf []byte
	for _, k := range keys {
		payload, err := json.Marshal(record{V: recordVersion, Key: k, Result: s.entries[k]})
		if err != nil {
			f.Close() //lbvet:errok — the encode error is the one the caller acts on; the temp file is discarded
			return fmt.Errorf("store: encoding record for compaction: %w", err)
		}
		buf = appendFrame(buf[:0], payload)
		if _, err := f.Write(buf); err != nil {
			f.Close() //lbvet:errok — the write error is the one the caller acts on; the temp file is discarded
			return fmt.Errorf("store: writing compacted segment: %w", err)
		}
	}
	if err := SyncCommit(f); err != nil {
		f.Close() //lbvet:errok — the fsync error is the one the caller acts on; the temp file is discarded
		return fmt.Errorf("store: fsync compacted segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing compacted segment: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: publishing compacted segment: %w", err)
	}
	s.syncDir()
	var sz int64
	if st, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
		sz = st.Size()
	}
	s.scanned = map[string]int64{name: sz}
	for _, n := range old {
		if err := os.Remove(filepath.Join(s.dir, n)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: removing compacted-away segment %s: %w", n, err)
		}
	}
	s.report.Segments = 1
	s.report.Skipped = 0
	s.report.TruncatedBytes = 0
	return nil
}

// syncDir fsyncs the directory so a rename survives a crash. Best-effort:
// some filesystems reject directory fsync, and the rename itself is the
// correctness boundary.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err != nil {
		return
	}
	d.Sync()  //lbvet:errok — best-effort directory metadata flush; the rename is already durable-ordered on journaling filesystems
	d.Close() //lbvet:errok — read-only handle used only for the fsync above
}

// Close seals this handle's segment. The directory stays valid for other
// handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.writeErr
	}
	s.closed = true
	s.rotateLocked()
	return s.writeErr
}
