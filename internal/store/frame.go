// Package store is a persistent, concurrent-safe, content-addressed result
// store keyed by the harness memo key (config fingerprint + bench +
// policy). It generalises the harness memo cache and the JSONL sweep
// journal into something a long-lived service can trust:
//
//   - records are CRC-framed in append-only segment files and fsynced on
//     commit, so an acknowledged result survives a power loss;
//   - every process appends to its own segment, so two server replicas
//     sharing one directory never interleave writes;
//   - loading tolerates a truncated tail (the writer died mid-record) and
//     corrupt interior records (skipped, with a resync scan to the next
//     frame) — damage costs re-simulation, never a failed open;
//   - DoOnce provides cross-process single-flight: a lease file per key
//     guarantees that two clients, or two replicas, never simulate the
//     same key twice.
package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// Frame layout: magic(4) | payloadLen uint32 LE (4) | crc32-IEEE(payload)
// (4) | payload. The magic both delimits records and lets the scanner
// resynchronise after a corrupt region: on any header or checksum mismatch
// it slides forward to the next magic occurrence instead of giving up on
// the rest of the segment.
var frameMagic = [4]byte{0xD5, 'L', 'B', '1'}

const frameHeaderLen = 12

// appendFrame appends one framed payload to buf and returns the extended
// slice.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	copy(hdr[:4], frameMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	return append(append(buf, hdr[:]...), payload...)
}

// frameScan is the outcome of scanning a byte range for frames.
type frameScan struct {
	// consumed is the offset just past the last cleanly parsed frame.
	// Bytes beyond it are an incomplete tail: a writer died there, or a
	// live writer has not finished its append yet — the scanner never
	// decides which, it just refuses to consume them.
	consumed int64
	// skipped counts corrupt regions (bad magic runs, checksum failures)
	// that were stepped over, each worth one load-report skip.
	skipped int
	// tail is the number of unconsumed trailing bytes.
	tail int64
}

// scanFrames walks data, invoking onRecord for every intact payload. It
// tolerates arbitrary interior corruption by resynchronising on the frame
// magic, and stops consuming at a frame whose declared payload extends past
// the end of data (the truncated-tail case).
func scanFrames(data []byte, onRecord func(payload []byte)) frameScan {
	var sc frameScan
	off := int64(0)
	n := int64(len(data))
	inCorruption := false
	for off < n {
		// Resynchronise: find the next magic at or after off.
		if n-off < int64(len(frameMagic)) || string(data[off:off+4]) != string(frameMagic[:]) {
			if !inCorruption {
				inCorruption = true
				sc.skipped++
			}
			off++
			continue
		}
		if n-off < frameHeaderLen {
			break // header cut short: tail
		}
		plen := int64(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		sum := binary.LittleEndian.Uint32(data[off+8 : off+12])
		if off+frameHeaderLen+plen > n {
			// Declared payload runs past EOF. Either a truncated tail or a
			// corrupt length field; distinguish by whether another intact
			// frame starts later — if so this was corruption, keep scanning.
			if rest := indexMagic(data[off+4:]); rest >= 0 {
				if !inCorruption {
					inCorruption = true
					sc.skipped++
				}
				off += 4 + int64(rest)
				continue
			}
			break // genuine tail
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+plen]
		if crc32.ChecksumIEEE(payload) != sum {
			if !inCorruption {
				inCorruption = true
				sc.skipped++
			}
			off++ // slide into the frame; resync finds the next magic
			continue
		}
		onRecord(payload)
		off += frameHeaderLen + plen
		sc.consumed = off
		inCorruption = false
	}
	sc.tail = n - sc.consumed
	return sc
}

// indexMagic returns the offset of the first frame-magic occurrence in b,
// or -1.
func indexMagic(b []byte) int {
	for i := 0; i+len(frameMagic) <= len(b); i++ {
		if string(b[i:i+4]) == string(frameMagic[:]) {
			return i
		}
	}
	return -1
}

// SyncCommit flushes f's written data to stable storage. It is the commit
// point shared by the store's segments and the harness sweep journal: a
// record is only acknowledged after SyncCommit returns, so a power loss
// can cost at most the record being written, never one already
// acknowledged.
func SyncCommit(f *os.File) error {
	return f.Sync()
}
