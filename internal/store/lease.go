package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// DoOnce is the cross-process single-flight primitive: it returns the
// committed result for key, executing fn at most once across every process
// sharing the store directory. The second return reports whether fn ran in
// this call.
//
// Protocol: a per-key lease file is created with O_CREATE|O_EXCL — an
// atomic, NFS-unfriendly but local-filesystem-exact mutual exclusion.
// Losers poll: each tick they Refresh the store (the winner's commit
// becomes visible through the segment files, not shared memory) and
// re-attempt the lease in case the winner failed without committing.
// A leaseholder renews its lease's mtime at TTL/3; only a lease whose
// holder died (no renewal for a full TTL) is ever stolen.
//
// fn errors are returned to the caller and never cached: the next caller
// (or process) re-acquires the lease and tries again — exactly the
// journal's "failures are never shared forward" rule, now across
// processes.
func (s *Store) DoOnce(ctx context.Context, key string, fn func(ctx context.Context) (*sim.Result, error)) (*sim.Result, bool, error) {
	if res, ok := s.Get(key); ok {
		return res, false, nil
	}
	lease := s.leasePath(key)
	for {
		release, ok, err := s.tryAcquire(lease)
		if err != nil {
			return nil, false, err
		}
		if ok {
			res, executed, err := s.leaderRun(ctx, key, fn)
			release()
			return res, executed, err
		}
		// Someone else holds the lease. Wait one poll tick, then look for
		// their commit before racing for the lease again.
		select {
		case <-ctx.Done():
			return nil, false, fmt.Errorf("store: waiting for in-flight execution of key %.60q…: %w",
				key, context.Cause(ctx))
		case <-time.After(s.opt.LeasePoll):
		}
		if err := s.Refresh(); err != nil {
			return nil, false, err
		}
		if res, ok := s.Get(key); ok {
			return res, false, nil
		}
	}
}

// leaderRun executes fn under an already-held lease, re-checking the store
// first: a previous holder may have committed between our Get miss and our
// acquire.
func (s *Store) leaderRun(ctx context.Context, key string, fn func(ctx context.Context) (*sim.Result, error)) (*sim.Result, bool, error) {
	if err := s.Refresh(); err != nil {
		return nil, false, err
	}
	if res, ok := s.Get(key); ok {
		return res, false, nil
	}
	res, err := fn(ctx)
	if err != nil {
		return nil, true, err
	}
	if perr := s.Put(key, res); perr != nil {
		// The simulation succeeded; only persistence failed. The result is
		// correct and returned — durability degradation is reported through
		// Err()/the sticky write error, not by failing the run.
		return res, true, nil
	}
	return res, true, nil
}

// leasePath maps a key (arbitrary length, arbitrary bytes) to a stable
// lock-file path.
func (s *Store) leasePath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, lockDir, hex.EncodeToString(sum[:12])+".lease")
}

// tryAcquire attempts the lease once. On success it starts the renewal
// keeper and returns a release func; on contention it checks staleness and
// may steal a dead holder's lease before reporting failure.
func (s *Store) tryAcquire(lease string) (release func(), ok bool, err error) {
	f, err := os.OpenFile(lease, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err == nil {
		fmt.Fprintf(f, "pid %d\n", os.Getpid())
		if cerr := f.Close(); cerr != nil {
			os.Remove(lease) //lbvet:errok — best-effort cleanup; the close error below is the one reported
			return nil, false, fmt.Errorf("store: writing lease %s: %w", lease, cerr)
		}
		stop := make(chan struct{})
		done := make(chan struct{})
		go s.renewLease(lease, stop, done)
		return func() {
			close(stop)
			<-done
			os.Remove(lease) //lbvet:errok — a remove failure only delays waiters by one TTL; the steal path recovers
		}, true, nil
	}
	if !os.IsExist(err) {
		return nil, false, fmt.Errorf("store: acquiring lease %s: %w", lease, err)
	}
	// Held. Steal only if the holder stopped renewing a full TTL ago —
	// i.e. it is dead, because live holders renew at TTL/3.
	if st, serr := os.Stat(lease); serr == nil && time.Since(st.ModTime()) > s.opt.LeaseTTL {
		os.Remove(lease) //lbvet:errok — racing stealers are fine: every path re-runs the O_EXCL acquire, which stays atomic
	}
	return nil, false, nil
}

// renewLease touches the lease's mtime at TTL/3 until stopped, so a live
// (possibly hours-long) simulation is never mistaken for a dead holder.
func (s *Store) renewLease(lease string, stop, done chan struct{}) {
	defer close(done)
	tick := s.opt.LeaseTTL / 3
	if tick <= 0 {
		tick = time.Second
	}
	for {
		select {
		case <-stop:
			return
		case <-time.After(tick):
			now := time.Now()
			os.Chtimes(lease, now, now) //lbvet:errok — a missed renewal is self-healing: worst case the lease is stolen and the duplicate run commits an identical result
		}
	}
}
