package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// testResult builds a distinguishable result for key-equality assertions.
func testResult(n int64) *sim.Result {
	return &sim.Result{
		Policy:       "baseline",
		Kernel:       fmt.Sprintf("K%d", n),
		Cycles:       1000 + n,
		Instructions: 5000 + 3*n,
		Extra:        map[string]float64{"n": float64(n)},
	}
}

func openT(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), testResult(int64(i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if got := s.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A fresh handle must see every committed record, bit-identically.
	s2 := openT(t, dir, Options{})
	rep := s2.Report()
	if rep.Loaded != 20 || rep.Skipped != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("reopen report = %+v, want 20 loaded and no damage", rep)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("key-%02d", i)
		res, ok := s2.Get(key)
		if !ok {
			t.Fatalf("reopen lost key %s", key)
		}
		if want := testResult(int64(i)); !reflect.DeepEqual(res, want) {
			t.Errorf("%s: result changed across reopen\n got %+v\nwant %+v", key, res, want)
		}
	}
}

func TestRecordDurableBeforeAck(t *testing.T) {
	// Crash-safety floor: the moment Put returns, the record must be
	// complete in the segment file — no user-space buffering — so a
	// kill -9 after an acknowledgement can never lose the record.
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("k", testResult(7)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Deliberately no Close: read the directory as a second process would
	// after the first died.
	s2 := openT(t, dir, Options{})
	if res, ok := s2.Get("k"); !ok || res.Cycles != 1007 {
		t.Fatalf("acknowledged record not readable from disk: ok=%v res=%+v", ok, res)
	}
}

func TestDuplicatePutIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put("k", testResult(1)); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := segmentBytes(t, dir)
	if err := s.Put("k", testResult(1)); err != nil {
		t.Fatal(err)
	}
	if got := segmentBytes(t, dir); got != sizeAfterFirst {
		t.Fatalf("duplicate Put appended bytes: %d -> %d", sizeAfterFirst, got)
	}
}

func segmentBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	return total
}

func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Cut the last record short, as a mid-write crash would.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	rep := s2.Report()
	if rep.Loaded != 4 {
		t.Fatalf("loaded %d records past a torn tail, want 4 (report %+v)", rep.Loaded, rep)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if _, ok := s2.Get("k4"); ok {
		t.Fatal("torn record must not load")
	}
	// The store stays writable: the torn key can be recommitted.
	if err := s2.Put("k4", testResult(4)); err != nil {
		t.Fatalf("recommit after torn tail: %v", err)
	}
}

func TestCorruptInteriorRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip bytes inside the second record's payload: its CRC fails, the
	// scanner resynchronises, and records 3..5 still load.
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recLen := len(data) / 5
	for i := recLen + frameHeaderLen + 2; i < recLen+frameHeaderLen+8; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	rep := s2.Report()
	if rep.Loaded != 4 || rep.Skipped == 0 {
		t.Fatalf("report after interior corruption = %+v, want 4 loaded, >0 skipped", rep)
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("intact record %s lost to a neighbour's corruption", k)
		}
	}
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", matches, err)
	}
	return matches[0]
}

func TestRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	s := openT(t, dir, Options{MaxSegmentBytes: 512})
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := s.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want several", len(segs))
	}

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	segs, err = s.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1: %v", len(segs), segs)
	}
	if got := s.Len(); got != 12 {
		t.Fatalf("compaction changed Len to %d, want 12", got)
	}

	// The compacted directory must reload cleanly and completely.
	s2 := openT(t, dir, Options{})
	if got := s2.Len(); got != 12 {
		t.Fatalf("reload after compaction = %d keys, want 12", got)
	}
	if rep := s2.Report(); rep.Skipped != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("compacted store reports damage: %+v", rep)
	}
	// And stay writable after compaction from the compacting handle too.
	if err := s.Put("k-post", testResult(99)); err != nil {
		t.Fatalf("Put after Compact: %v", err)
	}
}

func TestRefreshSeesForeignCommits(t *testing.T) {
	dir := t.TempDir()
	a := openT(t, dir, Options{})
	b := openT(t, dir, Options{})

	if err := a.Put("k", testResult(3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get("k"); ok {
		t.Fatal("handle b saw the commit without Refresh — in-memory views must be per-handle")
	}
	if err := b.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, ok := b.Get("k")
	if !ok {
		t.Fatal("Refresh did not pick up the foreign commit")
	}
	if !reflect.DeepEqual(res, testResult(3)) {
		t.Fatalf("foreign commit mutated in transit: %+v", res)
	}

	// Both handles writing distinct keys must never interleave: each owns
	// its segment.
	if err := b.Put("k2", testResult(4)); err != nil {
		t.Fatal(err)
	}
	if err := a.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get("k2"); !ok {
		t.Fatal("handle a cannot see handle b's segment")
	}
}

func TestDoOnceExecutesExactlyOnceAcrossHandles(t *testing.T) {
	// The acceptance-criteria property at store level: N concurrent
	// callers over separate handles on one directory, one key — exactly
	// one execution, everyone gets the result.
	dir := t.TempDir()
	opt := Options{LeasePoll: 2 * time.Millisecond}
	handles := make([]*Store, 4)
	for i := range handles {
		handles[i] = openT(t, dir, opt)
	}

	var execs int32
	run := func(ctx context.Context) (*sim.Result, error) {
		// Not atomic on purpose: a racing second execution would likely
		// also trip the race detector, giving a second signal.
		execs++
		time.Sleep(20 * time.Millisecond) // hold the lease long enough to create real contention
		return testResult(42), nil
	}

	type out struct {
		res      *sim.Result
		executed bool
		err      error
	}
	outs := make(chan out, len(handles)*2)
	for _, h := range handles {
		h := h
		for j := 0; j < 2; j++ {
			go func() {
				res, executed, err := h.DoOnce(context.Background(), "the-key", run)
				outs <- out{res, executed, err}
			}()
		}
	}
	executed := 0
	for i := 0; i < len(handles)*2; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatalf("DoOnce: %v", o.err)
		}
		if o.executed {
			executed++
		}
		if !reflect.DeepEqual(o.res, testResult(42)) {
			t.Fatalf("caller got wrong result: %+v", o.res)
		}
	}
	if execs != 1 || executed != 1 {
		t.Fatalf("executions = %d (reported %d), want exactly 1", execs, executed)
	}
}

func TestDoOnceContentionTimeout(t *testing.T) {
	dir := t.TempDir()
	opt := Options{LeasePoll: 2 * time.Millisecond}
	a := openT(t, dir, opt)
	b := openT(t, dir, opt)

	started := make(chan struct{})
	finish := make(chan struct{})
	go func() {
		a.DoOnce(context.Background(), "slow", func(ctx context.Context) (*sim.Result, error) {
			close(started)
			<-finish
			return testResult(1), nil
		})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, executed, err := b.DoOnce(ctx, "slow", func(ctx context.Context) (*sim.Result, error) {
		t.Error("waiter must not execute while the lease is held")
		return nil, nil
	})
	if executed || err == nil {
		t.Fatalf("contended DoOnce = executed=%v err=%v, want deadline error", executed, err)
	}
	if ctx.Err() == nil {
		t.Fatalf("returned before the deadline with: %v", err)
	}
	close(finish)
}

func TestDoOnceErrorNotCachedAndRetriable(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{LeasePoll: time.Millisecond})

	boom := fmt.Errorf("injected failure")
	_, executed, err := s.DoOnce(context.Background(), "k", func(ctx context.Context) (*sim.Result, error) {
		return nil, boom
	})
	if !executed || err != boom {
		t.Fatalf("first DoOnce = executed=%v err=%v, want executed + injected failure", executed, err)
	}
	// The failure must not poison the key: the next caller runs again.
	res, executed, err := s.DoOnce(context.Background(), "k", func(ctx context.Context) (*sim.Result, error) {
		return testResult(5), nil
	})
	if err != nil || !executed || res.Cycles != 1005 {
		t.Fatalf("retry after failure = res=%+v executed=%v err=%v", res, executed, err)
	}
}

func TestStaleLeaseStolen(t *testing.T) {
	dir := t.TempDir()
	opt := Options{LeasePoll: 2 * time.Millisecond, LeaseTTL: 20 * time.Millisecond}
	s := openT(t, dir, opt)

	// Fake a dead holder: a lease file nobody renews, older than the TTL.
	lease := s.leasePath("k")
	if err := os.WriteFile(lease, []byte("pid 999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lease, past, past); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, executed, err := s.DoOnce(ctx, "k", func(ctx context.Context) (*sim.Result, error) {
		return testResult(9), nil
	})
	if err != nil || !executed || res.Cycles != 1009 {
		t.Fatalf("stale lease not stolen: res=%+v executed=%v err=%v", res, executed, err)
	}
}
