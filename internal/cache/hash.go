package cache

// StateHash digests the cache's structural state — tag array, LRU stamps,
// MSHR contents and the global access stamp — into one 64-bit fingerprint.
// Every externally visible cache transition (hit, miss, fill, store,
// invalidate, merge into a pending fill) advances the access stamp or
// mutates a line or MSHR entry, so two states with equal hashes are
// equal for the engine's purposes with overwhelming probability.
//
// Deliberately NOT covered: Stats. Counter changes always accompany a
// structural change, with one exception — a retried access stalled on a
// full MSHR mutates only Stats.MSHRStalls — and that exception is exactly
// the per-cycle accrual the cycle-skipping engine reproduces in closed
// form (DESIGN.md §10). The event-lower-bound property test relies on this
// hash being constant across a correctly advertised idle span.
func (c *Cache) StateHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(c.stamp))
	for i := range c.lines {
		ln := &c.lines[i]
		var flags uint64
		if ln.valid {
			flags |= 1
		}
		if ln.pending {
			flags |= 2
		}
		if ln.dirty {
			flags |= 4
		}
		mix(flags)
		mix(uint64(ln.tag))
		mix(uint64(ln.hpc))
		mix(uint64(ln.lru))
	}
	// The MSHR map iterates in random order; fold entries with an
	// order-independent sum of per-entry digests.
	var m uint64
	//lbvet:ordered commutative sum of per-entry digests; order cannot leak
	for l, e := range c.mshr {
		eh := uint64(offset64)
		for _, v := range [...]uint64{uint64(l), uint64(e.Merged), uint64(e.Line)} {
			for i := 0; i < 8; i++ {
				eh ^= v & 0xff
				eh *= prime64
				v >>= 8
			}
		}
		if e.Allocated {
			eh *= prime64
		}
		m += eh
	}
	mix(m)
	return h
}
