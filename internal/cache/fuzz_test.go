package cache

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// FuzzCacheOperations drives a cache with an arbitrary operation tape and
// checks structural invariants after every step: no duplicate residency,
// miss classification adds up, and MSHR occupancy stays within capacity.
func FuzzCacheOperations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{255, 254, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, tape []byte) {
		c := New(2048, 4, 4, len(tape)%2 == 0)
		var pending []memtypes.LineAddr
		for i := 0; i+1 < len(tape); i += 2 {
			l := memtypes.LineAddr(int(tape[i]) % 40 * memtypes.LineSize)
			switch tape[i+1] % 4 {
			case 0, 1:
				res, _, _ := c.Load(l, uint32(tape[i+1]), tape[i+1]%8 < 6)
				if res == Miss || res == MissNoAlloc {
					pending = append(pending, l)
				}
			case 2:
				c.Store(l)
			case 3:
				if len(pending) > 0 {
					c.Fill(pending[0])
					pending = pending[1:]
				}
			}
			if got := c.OutstandingFills(); got > 4 {
				t.Fatalf("MSHR occupancy %d exceeds capacity", got)
			}
			if c.Stats.ColdMisses+c.Stats.CapConfMisses != c.Stats.LoadMisses {
				t.Fatal("miss classification does not add up")
			}
		}
		// No duplicate residency at the end.
		seen := map[memtypes.LineAddr]int{}
		for _, ln := range c.lines {
			if ln.valid {
				seen[ln.tag]++
				if seen[ln.tag] > 1 {
					t.Fatalf("line %#x resident twice", ln.tag)
				}
			}
		}
	})
}
