// Package cache implements the set-associative caches of the simulated GPU:
// a 128 B-line, LRU, MSHR-backed cache used for both the per-SM L1 data
// cache (write-evict on store hit, no-allocate on store miss, as the paper's
// baseline) and the shared L2 (write-allocate, write-back).
//
// The L1 additionally carries the paper's per-line hashed-PC (HPC) field so
// Linebacker can verify which static load last touched an evicted line, and
// classifies every miss as cold or capacity/conflict for the Figure 1
// breakdown.
package cache

import (
	"fmt"
	"math/bits"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// Result is the outcome of a cache access.
type Result uint8

const (
	// Hit: the line is present and filled.
	Hit Result = iota
	// HitPending: the line is allocated but its fill is still in flight;
	// the access is merged into the outstanding MSHR entry.
	HitPending
	// Miss: the line was absent; an MSHR was allocated (and, for allocating
	// accesses, a way was reserved, possibly evicting a victim).
	Miss
	// MissNoAlloc: the line was absent and the access does not allocate
	// (store miss under write-no-allocate, or an explicit bypass).
	MissNoAlloc
	// Stall: no MSHR available; the access must be retried later.
	Stall
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case HitPending:
		return "hit-pending"
	case Miss:
		return "miss"
	case MissNoAlloc:
		return "miss-noalloc"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Result(%d)", uint8(r))
	}
}

// Eviction describes a valid line pushed out by an allocation.
type Eviction struct {
	Line  memtypes.LineAddr
	HPC   uint32 // hashed PC of the last load that touched the line
	Dirty bool
}

// line is one cache way.
type line struct {
	valid   bool
	pending bool // allocated, fill in flight
	dirty   bool
	tag     memtypes.LineAddr
	hpc     uint32
	lru     int64 // last-touch stamp; higher = more recent
}

// Stats aggregates cache event counts.
type Stats struct {
	LoadHits        int64
	LoadPendingHits int64
	LoadMisses      int64
	ColdMisses      int64 // subset of LoadMisses: first-ever touch
	CapConfMisses   int64 // subset of LoadMisses: line was resident before
	StoreHits       int64 // write-evict caches: line invalidated
	StoreMisses     int64
	Bypasses        int64
	Evictions       int64
	DirtyEvictions  int64
	MSHRStalls      int64
}

// TotalLoadAccesses returns hits+pending-hits+misses.
func (s *Stats) TotalLoadAccesses() int64 {
	return s.LoadHits + s.LoadPendingHits + s.LoadMisses
}

// Cache is a set-associative, LRU, MSHR-backed cache model.
type Cache struct {
	sets  int
	ways  int
	lines []line // sets*ways, row-major by set

	// setMask indexes sets by AND when the set count is a power of two
	// (every L2 geometry in Table 1); setPow2 gates the fallback modulo for
	// the others (the 48 KB / 8-way L1 has 48 sets).
	setMask uint64
	setPow2 bool

	mshrCap int
	mshr    map[memtypes.LineAddr]*MSHREntry

	writeAllocate bool // false: L1 policy (write-evict / no-allocate)

	// seen records every line address ever requested, to split cold from
	// capacity/conflict misses (Figure 1).
	seen lineSet

	stamp int64
	Stats Stats
}

// lineSet is an exact, open-addressed (linear-probe) set of line addresses.
// It replaces a map[LineAddr]struct{} on the per-access classification path:
// same answers, no per-insert bucket allocation, and about half the memory.
// The zero value is an empty set; address 0 is held out-of-table because an
// empty slot is encoded as 0.
type lineSet struct {
	slots   []memtypes.LineAddr
	shift   uint // 64 - log2(len(slots)); Fibonacci-hash high bits
	n       int
	hasZero bool
}

// Add inserts l, reporting whether it was absent (first-ever touch).
func (s *lineSet) Add(l memtypes.LineAddr) bool {
	if l == 0 {
		added := !s.hasZero
		s.hasZero = true
		return added
	}
	if (s.n+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	mask := uint64(len(s.slots) - 1)
	i := (uint64(l) * 0x9E3779B97F4A7C15) >> s.shift
	for {
		switch s.slots[i] {
		case 0:
			s.slots[i] = l
			s.n++
			return true
		case l:
			return false
		}
		i = (i + 1) & mask
	}
}

// Len returns the number of distinct addresses recorded.
func (s *lineSet) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

func (s *lineSet) grow() {
	newLen := 256
	if len(s.slots) > 0 {
		newLen = len(s.slots) * 2
	}
	old := s.slots
	s.slots = make([]memtypes.LineAddr, newLen)
	s.shift = uint(64 - bits.TrailingZeros(uint(newLen)))
	mask := uint64(newLen - 1)
	for _, l := range old {
		if l == 0 {
			continue
		}
		i := (uint64(l) * 0x9E3779B97F4A7C15) >> s.shift
		for s.slots[i] != 0 {
			i = (i + 1) & mask
		}
		s.slots[i] = l
	}
}

// MSHREntry tracks one outstanding fill.
type MSHREntry struct {
	Line memtypes.LineAddr
	// Merged counts accesses coalesced into this entry after the first.
	Merged int
	// Allocated reports whether a way was reserved for the fill.
	Allocated bool
}

// New builds a cache of the given geometry. ways must divide sizeBytes/128.
func New(sizeBytes, ways, mshrs int, writeAllocate bool) *Cache {
	if sizeBytes%(memtypes.LineSize*ways) != 0 {
		panic(fmt.Sprintf("cache: %d B not divisible into %d-way sets", sizeBytes, ways))
	}
	sets := sizeBytes / (memtypes.LineSize * ways)
	c := &Cache{
		sets:          sets,
		ways:          ways,
		lines:         make([]line, sets*ways),
		mshrCap:       mshrs,
		mshr:          make(map[memtypes.LineAddr]*MSHREntry),
		writeAllocate: writeAllocate,
	}
	c.initGeometry()
	return c
}

// initGeometry precomputes the set-index mask for power-of-two set counts.
func (c *Cache) initGeometry() {
	c.setPow2 = c.sets&(c.sets-1) == 0
	if c.setPow2 {
		c.setMask = uint64(c.sets - 1)
	} else {
		c.setMask = 0
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set index for a line address.
func (c *Cache) SetIndex(l memtypes.LineAddr) int {
	n := uint64(l) / memtypes.LineSize
	if c.setPow2 {
		return int(n & c.setMask)
	}
	return int(n % uint64(c.sets))
}

// Probe reports whether the line is present and filled, without touching
// LRU state or counters.
func (c *Cache) Probe(l memtypes.LineAddr) bool {
	set := c.SetIndex(l)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if ln.valid && !ln.pending && ln.tag == l {
			return true
		}
	}
	return false
}

// MSHRFree reports whether a new miss can currently be tracked.
func (c *Cache) MSHRFree() bool { return len(c.mshr) < c.mshrCap }

// OutstandingFills returns the number of live MSHR entries.
func (c *Cache) OutstandingFills() int { return len(c.mshr) }

// HasOutstanding reports whether the line has an MSHR entry in flight
// (allocated fill or bypass fetch): an access to it merges rather than
// needing a new MSHR.
func (c *Cache) HasOutstanding(l memtypes.LineAddr) bool {
	_, ok := c.mshr[l]
	return ok
}

func (c *Cache) find(l memtypes.LineAddr) *line {
	base := c.SetIndex(l) * c.ways
	set := c.lines[base : base+c.ways]
	for w := range set {
		if ln := &set[w]; ln.valid && ln.tag == l {
			return ln
		}
	}
	return nil
}

// scan walks the set once and returns both the matching line (if resident)
// and the replacement victim, fusing the separate find + victimWay passes
// the access paths used to make. Victim selection is identical to victimWay:
// the first invalid way wins, else the lowest-LRU non-pending way (earliest
// way on ties), nil when every way is pending. victim is meaningless when
// hit != nil (the scan stops at the match).
func (c *Cache) scan(l memtypes.LineAddr) (hit, victim *line) {
	base := c.SetIndex(l) * c.ways
	set := c.lines[base : base+c.ways]
	sawInvalid := false
	for w := range set {
		ln := &set[w]
		if ln.valid {
			if ln.tag == l {
				return ln, nil
			}
			if !sawInvalid && !ln.pending && (victim == nil || ln.lru < victim.lru) {
				victim = ln
			}
		} else if !sawInvalid && !ln.pending {
			victim = ln
			sawInvalid = true
		}
	}
	return nil, victim
}

// Load performs a load access for the given line. hpc is the hashed PC of
// the issuing static load; it is written into the line's HPC field on both
// fills and hits, per the paper ("updated whenever the line is first fetched
// or accessed"). allocate=false bypasses the cache on a miss (PCAL-style).
//
// On a Miss the returned eviction (valid==true ⇔ ev.Line!=0 sentinel is NOT
// used; check the second return) describes the replaced line so the caller
// can offer it to a victim cache.
func (c *Cache) Load(l memtypes.LineAddr, hpc uint32, allocate bool) (Result, Eviction, bool) {
	c.stamp++
	ln, victim := c.scan(l)
	if ln != nil {
		ln.lru = c.stamp
		ln.hpc = hpc
		if ln.pending {
			c.Stats.LoadPendingHits++
			if e := c.mshr[l]; e != nil {
				e.Merged++
			}
			return HitPending, Eviction{}, false
		}
		c.Stats.LoadHits++
		return Hit, Eviction{}, false
	}
	// Miss path.
	if e, ok := c.mshr[l]; ok {
		// Same line already being fetched without an allocated way
		// (bypass in flight): merge.
		e.Merged++
		c.Stats.LoadPendingHits++
		return HitPending, Eviction{}, false
	}
	if !c.MSHRFree() {
		c.Stats.MSHRStalls++
		return Stall, Eviction{}, false
	}
	c.classifyMiss(l)
	c.Stats.LoadMisses++
	if !allocate {
		c.Stats.Bypasses++
		c.mshr[l] = &MSHREntry{Line: l}
		return MissNoAlloc, Eviction{}, false
	}
	if victim == nil {
		// Every way reserved by in-flight fills: fetch without allocating.
		c.Stats.Bypasses++
		c.mshr[l] = &MSHREntry{Line: l}
		return MissNoAlloc, Eviction{}, false
	}
	var ev Eviction
	evicted := false
	if victim.valid {
		ev = Eviction{Line: victim.tag, HPC: victim.hpc, Dirty: victim.dirty}
		evicted = true
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.DirtyEvictions++
		}
	}
	*victim = line{valid: true, pending: true, tag: l, hpc: hpc, lru: c.stamp}
	c.mshr[l] = &MSHREntry{Line: l, Allocated: true}
	return Miss, ev, evicted
}

// Fill completes the outstanding fetch of a line. It returns the MSHR entry
// (nil if none was outstanding, e.g. a store fill in a write-allocate cache
// that was silently dropped).
func (c *Cache) Fill(l memtypes.LineAddr) *MSHREntry {
	e, ok := c.mshr[l]
	if !ok {
		return nil
	}
	delete(c.mshr, l)
	if e.Allocated {
		if ln := c.find(l); ln != nil && ln.pending {
			ln.pending = false
		}
	}
	return e
}

// Store performs a store access. In a write-evict cache (writeAllocate ==
// false) a hit invalidates the line and the store is forwarded below; a miss
// allocates nothing. In a write-allocate cache a hit marks the line dirty
// and a miss allocates it dirty (fetch-on-write is folded into the fill
// latency by the caller).
func (c *Cache) Store(l memtypes.LineAddr) (Result, Eviction, bool) {
	c.stamp++
	c.classifySeenOnly(l)
	ln, victim := c.scan(l)
	if ln != nil {
		if c.writeAllocate {
			if !ln.pending {
				ln.dirty = true
				ln.lru = c.stamp
			}
			c.Stats.StoreHits++
			return Hit, Eviction{}, false
		}
		// Write-evict: invalidate on hit — but never a pending line, whose
		// way is reserved by an in-flight fill (the same guard Invalidate
		// applies). Clobbering it would free the reservation while the
		// Allocated MSHR entry survives, so the later Fill would find no
		// line and the way accounting would be wrong. The store is
		// forwarded below either way.
		if !ln.pending {
			*ln = line{}
		}
		c.Stats.StoreHits++
		return Hit, Eviction{}, false
	}
	c.Stats.StoreMisses++
	if !c.writeAllocate {
		return MissNoAlloc, Eviction{}, false
	}
	if victim == nil {
		return MissNoAlloc, Eviction{}, false
	}
	var ev Eviction
	evicted := false
	if victim.valid {
		ev = Eviction{Line: victim.tag, HPC: victim.hpc, Dirty: victim.dirty}
		evicted = true
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.DirtyEvictions++
		}
	}
	*victim = line{valid: true, dirty: true, tag: l, lru: c.stamp}
	return Miss, ev, evicted
}

// Invalidate drops the line if present, returning whether it was present.
// Used by Linebacker's store handling against victim lines and by tests.
func (c *Cache) Invalidate(l memtypes.LineAddr) bool {
	if ln := c.find(l); ln != nil && !ln.pending {
		*ln = line{}
		return true
	}
	return false
}

// classifyMiss records whether a load miss is cold or capacity/conflict.
func (c *Cache) classifyMiss(l memtypes.LineAddr) {
	if c.seen.Add(l) {
		c.Stats.ColdMisses++
	} else {
		c.Stats.CapConfMisses++
	}
}

func (c *Cache) classifySeenOnly(l memtypes.LineAddr) {
	c.seen.Add(l)
}

// ResetStats zeroes counters but keeps contents (used at window boundaries).
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Utilization returns the fraction of ways currently valid.
func (c *Cache) Utilization() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// Resize rebuilds the cache with a new byte size, dropping all contents and
// outstanding fills. Used by the CacheExt idealisation, which grows the L1
// by the unused-register byte count at kernel launch.
func (c *Cache) Resize(sizeBytes int) {
	if sizeBytes%(memtypes.LineSize*c.ways) != 0 {
		// Round down to a whole number of sets.
		sizeBytes -= sizeBytes % (memtypes.LineSize * c.ways)
	}
	if sizeBytes < memtypes.LineSize*c.ways {
		sizeBytes = memtypes.LineSize * c.ways
	}
	c.sets = sizeBytes / (memtypes.LineSize * c.ways)
	c.lines = make([]line, c.sets*c.ways)
	c.mshr = make(map[memtypes.LineAddr]*MSHREntry)
	c.initGeometry()
}
