// Package cache implements the set-associative caches of the simulated GPU:
// a 128 B-line, LRU, MSHR-backed cache used for both the per-SM L1 data
// cache (write-evict on store hit, no-allocate on store miss, as the paper's
// baseline) and the shared L2 (write-allocate, write-back).
//
// The L1 additionally carries the paper's per-line hashed-PC (HPC) field so
// Linebacker can verify which static load last touched an evicted line, and
// classifies every miss as cold or capacity/conflict for the Figure 1
// breakdown.
package cache

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// Result is the outcome of a cache access.
type Result uint8

const (
	// Hit: the line is present and filled.
	Hit Result = iota
	// HitPending: the line is allocated but its fill is still in flight;
	// the access is merged into the outstanding MSHR entry.
	HitPending
	// Miss: the line was absent; an MSHR was allocated (and, for allocating
	// accesses, a way was reserved, possibly evicting a victim).
	Miss
	// MissNoAlloc: the line was absent and the access does not allocate
	// (store miss under write-no-allocate, or an explicit bypass).
	MissNoAlloc
	// Stall: no MSHR available; the access must be retried later.
	Stall
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case HitPending:
		return "hit-pending"
	case Miss:
		return "miss"
	case MissNoAlloc:
		return "miss-noalloc"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("Result(%d)", uint8(r))
	}
}

// Eviction describes a valid line pushed out by an allocation.
type Eviction struct {
	Line  memtypes.LineAddr
	HPC   uint32 // hashed PC of the last load that touched the line
	Dirty bool
}

// line is one cache way.
type line struct {
	valid   bool
	pending bool // allocated, fill in flight
	dirty   bool
	tag     memtypes.LineAddr
	hpc     uint32
	lru     int64 // last-touch stamp; higher = more recent
}

// Stats aggregates cache event counts.
type Stats struct {
	LoadHits        int64
	LoadPendingHits int64
	LoadMisses      int64
	ColdMisses      int64 // subset of LoadMisses: first-ever touch
	CapConfMisses   int64 // subset of LoadMisses: line was resident before
	StoreHits       int64 // write-evict caches: line invalidated
	StoreMisses     int64
	Bypasses        int64
	Evictions       int64
	DirtyEvictions  int64
	MSHRStalls      int64
}

// TotalLoadAccesses returns hits+pending-hits+misses.
func (s *Stats) TotalLoadAccesses() int64 {
	return s.LoadHits + s.LoadPendingHits + s.LoadMisses
}

// Cache is a set-associative, LRU, MSHR-backed cache model.
type Cache struct {
	sets  int
	ways  int
	lines []line // sets*ways, row-major by set

	mshrCap int
	mshr    map[memtypes.LineAddr]*MSHREntry

	writeAllocate bool // false: L1 policy (write-evict / no-allocate)

	// seen records every line address ever requested, to split cold from
	// capacity/conflict misses (Figure 1).
	seen map[memtypes.LineAddr]struct{}

	stamp int64
	Stats Stats
}

// MSHREntry tracks one outstanding fill.
type MSHREntry struct {
	Line memtypes.LineAddr
	// Merged counts accesses coalesced into this entry after the first.
	Merged int
	// Allocated reports whether a way was reserved for the fill.
	Allocated bool
}

// New builds a cache of the given geometry. ways must divide sizeBytes/128.
func New(sizeBytes, ways, mshrs int, writeAllocate bool) *Cache {
	if sizeBytes%(memtypes.LineSize*ways) != 0 {
		panic(fmt.Sprintf("cache: %d B not divisible into %d-way sets", sizeBytes, ways))
	}
	sets := sizeBytes / (memtypes.LineSize * ways)
	return &Cache{
		sets:          sets,
		ways:          ways,
		lines:         make([]line, sets*ways),
		mshrCap:       mshrs,
		mshr:          make(map[memtypes.LineAddr]*MSHREntry),
		writeAllocate: writeAllocate,
		seen:          make(map[memtypes.LineAddr]struct{}),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set index for a line address.
func (c *Cache) SetIndex(l memtypes.LineAddr) int {
	return int((uint64(l) / memtypes.LineSize) % uint64(c.sets))
}

// Probe reports whether the line is present and filled, without touching
// LRU state or counters.
func (c *Cache) Probe(l memtypes.LineAddr) bool {
	set := c.SetIndex(l)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if ln.valid && !ln.pending && ln.tag == l {
			return true
		}
	}
	return false
}

// MSHRFree reports whether a new miss can currently be tracked.
func (c *Cache) MSHRFree() bool { return len(c.mshr) < c.mshrCap }

// OutstandingFills returns the number of live MSHR entries.
func (c *Cache) OutstandingFills() int { return len(c.mshr) }

// HasOutstanding reports whether the line has an MSHR entry in flight
// (allocated fill or bypass fetch): an access to it merges rather than
// needing a new MSHR.
func (c *Cache) HasOutstanding(l memtypes.LineAddr) bool {
	_, ok := c.mshr[l]
	return ok
}

func (c *Cache) find(l memtypes.LineAddr) *line {
	set := c.SetIndex(l)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if ln.valid && ln.tag == l {
			return ln
		}
	}
	return nil
}

// victimWay picks the LRU way in the set, preferring invalid ways and never
// choosing a pending (reserved) way. Returns nil if every way is pending.
func (c *Cache) victimWay(set int) *line {
	var victim *line
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[set*c.ways+w]
		if ln.pending {
			continue
		}
		if !ln.valid {
			return ln
		}
		if victim == nil || ln.lru < victim.lru {
			victim = ln
		}
	}
	return victim
}

// Load performs a load access for the given line. hpc is the hashed PC of
// the issuing static load; it is written into the line's HPC field on both
// fills and hits, per the paper ("updated whenever the line is first fetched
// or accessed"). allocate=false bypasses the cache on a miss (PCAL-style).
//
// On a Miss the returned eviction (valid==true ⇔ ev.Line!=0 sentinel is NOT
// used; check the second return) describes the replaced line so the caller
// can offer it to a victim cache.
func (c *Cache) Load(l memtypes.LineAddr, hpc uint32, allocate bool) (Result, Eviction, bool) {
	c.stamp++
	if ln := c.find(l); ln != nil {
		ln.lru = c.stamp
		ln.hpc = hpc
		if ln.pending {
			c.Stats.LoadPendingHits++
			if e := c.mshr[l]; e != nil {
				e.Merged++
			}
			return HitPending, Eviction{}, false
		}
		c.Stats.LoadHits++
		return Hit, Eviction{}, false
	}
	// Miss path.
	if e, ok := c.mshr[l]; ok {
		// Same line already being fetched without an allocated way
		// (bypass in flight): merge.
		e.Merged++
		c.Stats.LoadPendingHits++
		return HitPending, Eviction{}, false
	}
	if !c.MSHRFree() {
		c.Stats.MSHRStalls++
		return Stall, Eviction{}, false
	}
	c.classifyMiss(l)
	c.Stats.LoadMisses++
	if !allocate {
		c.Stats.Bypasses++
		c.mshr[l] = &MSHREntry{Line: l}
		return MissNoAlloc, Eviction{}, false
	}
	set := c.SetIndex(l)
	victim := c.victimWay(set)
	if victim == nil {
		// Every way reserved by in-flight fills: fetch without allocating.
		c.Stats.Bypasses++
		c.mshr[l] = &MSHREntry{Line: l}
		return MissNoAlloc, Eviction{}, false
	}
	var ev Eviction
	evicted := false
	if victim.valid {
		ev = Eviction{Line: victim.tag, HPC: victim.hpc, Dirty: victim.dirty}
		evicted = true
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.DirtyEvictions++
		}
	}
	*victim = line{valid: true, pending: true, tag: l, hpc: hpc, lru: c.stamp}
	c.mshr[l] = &MSHREntry{Line: l, Allocated: true}
	return Miss, ev, evicted
}

// Fill completes the outstanding fetch of a line. It returns the MSHR entry
// (nil if none was outstanding, e.g. a store fill in a write-allocate cache
// that was silently dropped).
func (c *Cache) Fill(l memtypes.LineAddr) *MSHREntry {
	e, ok := c.mshr[l]
	if !ok {
		return nil
	}
	delete(c.mshr, l)
	if e.Allocated {
		if ln := c.find(l); ln != nil && ln.pending {
			ln.pending = false
		}
	}
	return e
}

// Store performs a store access. In a write-evict cache (writeAllocate ==
// false) a hit invalidates the line and the store is forwarded below; a miss
// allocates nothing. In a write-allocate cache a hit marks the line dirty
// and a miss allocates it dirty (fetch-on-write is folded into the fill
// latency by the caller).
func (c *Cache) Store(l memtypes.LineAddr) (Result, Eviction, bool) {
	c.stamp++
	c.classifySeenOnly(l)
	if ln := c.find(l); ln != nil {
		if c.writeAllocate {
			if !ln.pending {
				ln.dirty = true
				ln.lru = c.stamp
			}
			c.Stats.StoreHits++
			return Hit, Eviction{}, false
		}
		// Write-evict: invalidate on hit.
		*ln = line{}
		c.Stats.StoreHits++
		return Hit, Eviction{}, false
	}
	c.Stats.StoreMisses++
	if !c.writeAllocate {
		return MissNoAlloc, Eviction{}, false
	}
	set := c.SetIndex(l)
	victim := c.victimWay(set)
	if victim == nil {
		return MissNoAlloc, Eviction{}, false
	}
	var ev Eviction
	evicted := false
	if victim.valid {
		ev = Eviction{Line: victim.tag, HPC: victim.hpc, Dirty: victim.dirty}
		evicted = true
		c.Stats.Evictions++
		if victim.dirty {
			c.Stats.DirtyEvictions++
		}
	}
	*victim = line{valid: true, dirty: true, tag: l, lru: c.stamp}
	return Miss, ev, evicted
}

// Invalidate drops the line if present, returning whether it was present.
// Used by Linebacker's store handling against victim lines and by tests.
func (c *Cache) Invalidate(l memtypes.LineAddr) bool {
	if ln := c.find(l); ln != nil && !ln.pending {
		*ln = line{}
		return true
	}
	return false
}

// classifyMiss records whether a load miss is cold or capacity/conflict.
func (c *Cache) classifyMiss(l memtypes.LineAddr) {
	if _, ok := c.seen[l]; ok {
		c.Stats.CapConfMisses++
	} else {
		c.Stats.ColdMisses++
		c.seen[l] = struct{}{}
	}
}

func (c *Cache) classifySeenOnly(l memtypes.LineAddr) {
	c.seen[l] = struct{}{}
}

// ResetStats zeroes counters but keeps contents (used at window boundaries).
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Utilization returns the fraction of ways currently valid.
func (c *Cache) Utilization() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// Resize rebuilds the cache with a new byte size, dropping all contents and
// outstanding fills. Used by the CacheExt idealisation, which grows the L1
// by the unused-register byte count at kernel launch.
func (c *Cache) Resize(sizeBytes int) {
	if sizeBytes%(memtypes.LineSize*c.ways) != 0 {
		// Round down to a whole number of sets.
		sizeBytes -= sizeBytes % (memtypes.LineSize * c.ways)
	}
	if sizeBytes < memtypes.LineSize*c.ways {
		sizeBytes = memtypes.LineSize * c.ways
	}
	c.sets = sizeBytes / (memtypes.LineSize * c.ways)
	c.lines = make([]line, c.sets*c.ways)
	c.mshr = make(map[memtypes.LineAddr]*MSHREntry)
}
