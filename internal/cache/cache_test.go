package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func lineAt(set, n int, c *Cache) memtypes.LineAddr {
	// Distinct lines mapping to the given set: stride one full cache image.
	return memtypes.LineAddr((set + n*c.Sets()) * memtypes.LineSize)
}

func mustLoad(t *testing.T, c *Cache, l memtypes.LineAddr, want Result) (Eviction, bool) {
	t.Helper()
	r, ev, ok := c.Load(l, 0, true)
	if r != want {
		t.Fatalf("Load(%#x) = %v, want %v", l, r, want)
	}
	return ev, ok
}

func TestGeometry(t *testing.T) {
	c := New(48*1024, 8, 64, false)
	if c.Sets() != 48 {
		t.Fatalf("48 KB 8-way: sets = %d, want 48 (paper)", c.Sets())
	}
	if c.Ways() != 8 {
		t.Fatalf("ways = %d, want 8", c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with non-divisible size should panic")
		}
	}()
	New(1000, 8, 4, false)
}

func TestLoadMissFillHit(t *testing.T) {
	c := New(4*1024, 4, 8, false)
	l := memtypes.LineAddr(0)
	mustLoad(t, c, l, Miss)
	// Before fill, accesses merge.
	mustLoad(t, c, l, HitPending)
	if e := c.Fill(l); e == nil || e.Merged != 1 {
		t.Fatalf("Fill = %+v, want merged=1", e)
	}
	mustLoad(t, c, l, Hit)
	if c.Stats.LoadHits != 1 || c.Stats.LoadMisses != 1 || c.Stats.LoadPendingHits != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestColdVsCapacityClassification(t *testing.T) {
	c := New(1024, 2, 8, false) // 4 sets, 2 ways
	// Fill set 0 with 3 distinct lines: third evicts first.
	a, b, d := lineAt(0, 0, c), lineAt(0, 1, c), lineAt(0, 2, c)
	for _, l := range []memtypes.LineAddr{a, b, d} {
		c.Load(l, 0, true)
		c.Fill(l)
	}
	if c.Stats.ColdMisses != 3 || c.Stats.CapConfMisses != 0 {
		t.Fatalf("after cold fills: %+v", c.Stats)
	}
	// Re-access evicted a: capacity/conflict miss.
	if r, _, _ := c.Load(a, 0, true); r != Miss {
		t.Fatalf("re-load evicted line = %v, want Miss", r)
	}
	if c.Stats.CapConfMisses != 1 {
		t.Fatalf("capacity misses = %d, want 1", c.Stats.CapConfMisses)
	}
	if got := c.Stats.ColdMisses + c.Stats.CapConfMisses; got != c.Stats.LoadMisses {
		t.Fatalf("cold+2C = %d, misses = %d", got, c.Stats.LoadMisses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1024, 2, 8, false) // 4 sets, 2 ways
	a, b, d := lineAt(1, 0, c), lineAt(1, 1, c), lineAt(1, 2, c)
	c.Load(a, 7, true)
	c.Fill(a)
	c.Load(b, 8, true)
	c.Fill(b)
	c.Load(a, 7, true) // touch a: b becomes LRU
	r, ev, evicted := c.Load(d, 9, true)
	if r != Miss || !evicted {
		t.Fatalf("expected eviction on miss, got %v evicted=%v", r, evicted)
	}
	if ev.Line != b || ev.HPC != 8 {
		t.Fatalf("evicted %#x hpc=%d, want %#x hpc=8 (LRU)", ev.Line, ev.HPC, b)
	}
}

func TestEvictionCarriesHPCOfLastAccess(t *testing.T) {
	c := New(512, 1, 8, false) // direct-mapped, 4 sets
	a := lineAt(2, 0, c)
	c.Load(a, 3, true)
	c.Fill(a)
	c.Load(a, 5, true) // HPC updated on hit
	_, ev, evicted := c.Load(lineAt(2, 1, c), 1, true)
	if !evicted || ev.HPC != 5 {
		t.Fatalf("eviction = %+v evicted=%v, want HPC 5", ev, evicted)
	}
}

func TestWriteEvictStoreHitInvalidates(t *testing.T) {
	c := New(1024, 2, 8, false)
	a := lineAt(0, 0, c)
	c.Load(a, 0, true)
	c.Fill(a)
	if r, _, _ := c.Store(a); r != Hit {
		t.Fatalf("store hit = %v", r)
	}
	if c.Probe(a) {
		t.Fatal("write-evict store hit must invalidate the line")
	}
	// Store miss does not allocate.
	b := lineAt(0, 1, c)
	if r, _, _ := c.Store(b); r != MissNoAlloc {
		t.Fatalf("store miss = %v, want MissNoAlloc", r)
	}
	if c.Probe(b) {
		t.Fatal("write-no-allocate must not install the line")
	}
}

// TestWriteEvictStoreOnPendingLine is the regression test for the
// write-evict store bug: a store hitting a *pending* line used to
// invalidate it, freeing the way reserved by the in-flight fill while the
// Allocated MSHR entry survived — Fill then found no line to complete and
// the reservation accounting was wrong. The pending line must survive the
// store, exactly as Invalidate guards it.
func TestWriteEvictStoreOnPendingLine(t *testing.T) {
	c := New(1024, 2, 8, false)
	a := lineAt(0, 0, c)
	mustLoad(t, c, a, Miss) // allocates a way, fill in flight
	if r, _, _ := c.Store(a); r != Hit {
		t.Fatalf("store on pending line = %v, want Hit", r)
	}
	if c.OutstandingFills() != 1 {
		t.Fatalf("outstanding fills = %d, want 1", c.OutstandingFills())
	}
	e := c.Fill(a)
	if e == nil || !e.Allocated {
		t.Fatalf("Fill = %+v, want allocated entry", e)
	}
	if !c.Probe(a) {
		t.Fatal("line reserved by the in-flight fill was lost: store on a pending line must not invalidate it")
	}
	mustLoad(t, c, a, Hit)
}

func TestWriteAllocateStores(t *testing.T) {
	c := New(1024, 2, 8, true)
	a := lineAt(0, 0, c)
	if r, _, _ := c.Store(a); r != Miss {
		t.Fatalf("store miss in write-allocate = %v, want Miss", r)
	}
	if !c.Probe(a) {
		t.Fatal("write-allocate store must install the line")
	}
	// Evicting the dirty line reports Dirty.
	b, d := lineAt(0, 1, c), lineAt(0, 2, c)
	c.Load(b, 0, true)
	c.Fill(b)
	_, ev, evicted := c.Load(d, 0, true)
	if !evicted || !ev.Dirty || ev.Line != a {
		t.Fatalf("eviction = %+v evicted=%v, want dirty %#x", ev, evicted, a)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats.DirtyEvictions)
	}
}

func TestMSHRStallAndBypass(t *testing.T) {
	c := New(1024, 2, 2, false) // 2 MSHRs
	a, b, d := lineAt(0, 0, c), lineAt(1, 0, c), lineAt(2, 0, c)
	mustLoad(t, c, a, Miss)
	mustLoad(t, c, b, Miss)
	if r, _, _ := c.Load(d, 0, true); r != Stall {
		t.Fatalf("third miss with 2 MSHRs = %v, want Stall", r)
	}
	if c.Stats.MSHRStalls != 1 {
		t.Fatalf("stalls = %d", c.Stats.MSHRStalls)
	}
	c.Fill(a)
	mustLoad(t, c, d, Miss)
}

func TestBypassDoesNotAllocate(t *testing.T) {
	c := New(1024, 2, 8, false)
	a := lineAt(0, 0, c)
	if r, _, _ := c.Load(a, 0, false); r != MissNoAlloc {
		t.Fatalf("bypass load = %v", r)
	}
	c.Fill(a)
	if c.Probe(a) {
		t.Fatal("bypassed line must not be resident")
	}
	if c.Stats.Bypasses != 1 {
		t.Fatalf("bypasses = %d", c.Stats.Bypasses)
	}
}

func TestPendingWaysNotEvicted(t *testing.T) {
	c := New(256, 2, 8, false) // 1 set, 2 ways
	a, b, d := lineAt(0, 0, c), lineAt(0, 1, c), lineAt(0, 2, c)
	mustLoad(t, c, a, Miss)
	mustLoad(t, c, b, Miss)
	// Both ways pending: third allocating load must degrade to no-alloc,
	// never evict a reserved way.
	if r, _, _ := c.Load(d, 0, true); r != MissNoAlloc {
		t.Fatalf("load with all ways pending = %v, want MissNoAlloc", r)
	}
	c.Fill(a)
	c.Fill(b)
	c.Fill(d)
	if !c.Probe(a) || !c.Probe(b) {
		t.Fatal("pending lines lost")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1024, 2, 8, false)
	a := lineAt(0, 0, c)
	c.Load(a, 0, true)
	c.Fill(a)
	if !c.Invalidate(a) {
		t.Fatal("invalidate present line = false")
	}
	if c.Invalidate(a) {
		t.Fatal("invalidate absent line = true")
	}
}

func TestResize(t *testing.T) {
	c := New(1024, 2, 8, false)
	a := lineAt(0, 0, c)
	c.Load(a, 0, true)
	c.Fill(a)
	c.Resize(2048)
	if c.Sets() != 8 {
		t.Fatalf("sets after resize = %d, want 8", c.Sets())
	}
	if c.Probe(a) {
		t.Fatal("resize must drop contents")
	}
	// Non-divisible size rounds down.
	c.Resize(2048 + 100)
	if c.Sets() != 8 {
		t.Fatalf("sets after odd resize = %d, want 8", c.Sets())
	}
}

func TestUtilization(t *testing.T) {
	c := New(1024, 2, 8, false)
	if c.Utilization() != 0 {
		t.Fatal("empty cache utilization != 0")
	}
	a := lineAt(0, 0, c)
	c.Load(a, 0, true)
	c.Fill(a)
	if got := c.Utilization(); got != 1.0/8.0 {
		t.Fatalf("utilization = %v, want 1/8", got)
	}
}

// Property: cold + capacity/conflict always equals total load misses, and a
// line never hits without having been filled after its last invalidation.
func TestMissClassificationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(2048, 4, 16, false)
		filled := map[memtypes.LineAddr]bool{}
		pendingFills := []memtypes.LineAddr{}
		for i := 0; i < 2000; i++ {
			l := memtypes.LineAddr(rng.Intn(64) * memtypes.LineSize)
			switch rng.Intn(4) {
			case 0, 1:
				r, _, _ := c.Load(l, uint32(rng.Intn(32)), true)
				if r == Hit && !filled[l] {
					return false
				}
				if r == Miss || r == MissNoAlloc {
					pendingFills = append(pendingFills, l)
				}
			case 2:
				c.Store(l)
				filled[l] = false
			case 3:
				if len(pendingFills) > 0 {
					j := rng.Intn(len(pendingFills))
					fl := pendingFills[j]
					pendingFills = append(pendingFills[:j], pendingFills[j+1:]...)
					c.Fill(fl)
					filled[fl] = true
				}
			}
			// filled[] overapproximates residency (evictions make it stale),
			// so we only check the "hit implies was filled" direction.
		}
		return c.Stats.ColdMisses+c.Stats.CapConfMisses == c.Stats.LoadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of valid lines never exceeds capacity and each line
// address appears in at most one way.
func TestNoDuplicateResidency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(1024, 4, 8, true)
		for i := 0; i < 1500; i++ {
			l := memtypes.LineAddr(rng.Intn(40) * memtypes.LineSize)
			switch rng.Intn(3) {
			case 0:
				c.Load(l, 0, true)
			case 1:
				c.Store(l)
			case 2:
				c.Fill(l)
			}
		}
		// Count occurrences of each tag among valid lines.
		count := map[memtypes.LineAddr]int{}
		for _, ln := range c.lines {
			if ln.valid {
				count[ln.tag]++
			}
		}
		for _, n := range count {
			if n > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHashPC(t *testing.T) {
	if got := memtypes.HashPC(0, 5); got != 0 {
		t.Fatalf("HashPC(0) = %d", got)
	}
	// Folding is stable and within range.
	for pc := uint32(0); pc < 4096; pc += 97 {
		h := memtypes.HashPC(pc, 5)
		if h > 31 {
			t.Fatalf("HashPC(%d) = %d out of 5-bit range", pc, h)
		}
		if h != memtypes.HashPC(pc, 5) {
			t.Fatal("HashPC not deterministic")
		}
	}
	// 16-bit PCs with disjoint 5-bit groups map distinctly.
	if memtypes.HashPC(1, 5) == memtypes.HashPC(2, 5) {
		t.Fatal("adjacent PCs collide unexpectedly")
	}
}

func TestHashPCBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HashPC with bits=0 should panic")
		}
	}()
	memtypes.HashPC(1, 0)
}

// TestLoadAllocCeiling pins the steady-state allocation cost of Load: a
// warm hit touches no heap at all, and a classified miss only pays the MSHR
// entry (the seen-set is open-addressed, not a map). The ceiling exists to
// catch a regression back to per-access map/bucket allocation.
func TestLoadAllocCeiling(t *testing.T) {
	c := New(48*1024, 8, 64, false)
	const resident = 128
	for i := 0; i < resident; i++ {
		l := memtypes.LineAddr(i * memtypes.LineSize)
		c.Load(l, 0, true)
		c.Fill(l)
	}
	i := 0
	perOp := testing.AllocsPerRun(4096, func() {
		c.Load(memtypes.LineAddr((i%resident)*memtypes.LineSize), 0, true)
		i++
	})
	if perOp > 0 {
		t.Errorf("warm-hit Load allocates %.3f objects/op, want 0", perOp)
	}
}
