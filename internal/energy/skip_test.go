package energy

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestEnergySkipInvariance closes the reporting chain over the
// cycle-skipping engine: the energy model consumes only Result counters,
// and those are bit-identical between strict and skipping runs, so every
// energy figure must be too — float-for-float, not approximately. A
// divergence here means a per-cycle accrual leaked into a skipped span
// (e.g. DRAM busy accounting feeding the background-energy term).
func TestEnergySkipInvariance(t *testing.T) {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	cfg.GPU.DRAMBandwidthGBs = 176.25
	cfg.GPU.DRAMChannels = 4
	cfg.GPU.L2Bytes = 512 * 1024
	cfg.LB.WindowCycles = 12500

	b, ok := workload.ByName("S2")
	if !ok {
		t.Fatal("workload S2 not found")
	}
	run := func(strict bool) Breakdown {
		c := cfg
		c.Strict = strict
		g, err := sim.New(c, b.Kernel, sim.Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		g.Run(50_000)
		return Compute(&c, g.Collect())
	}
	es, ek := run(true), run(false)
	if es != ek {
		t.Fatalf("energy breakdown diverged between run modes:\nstrict:   %+v\nskipping: %+v", es, ek)
	}
	if es.Total() == 0 {
		t.Fatal("energy model returned zero total; the comparison is vacuous")
	}
}
