// Package energy models GPU energy consumption as event counts times
// per-access energies plus static power — the GPUWattch/CACTI substitution
// described in DESIGN.md. The per-access energies of the Linebacker
// structures are the paper's own Table 3 numbers; the conventional
// components use representative constants. Absolute joules are not
// meaningful; the package exists for the relative comparisons of Figure 18.
package energy

import (
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// Breakdown itemises a run's energy in joules.
type Breakdown struct {
	Exec    float64
	RegFile float64
	L1      float64
	L2      float64
	DRAM    float64
	LBExtra float64 // LM + VTT + CTA manager + HPC fields
	Static  float64
}

// Total returns the summed energy.
func (b *Breakdown) Total() float64 {
	return b.Exec + b.RegFile + b.L1 + b.L2 + b.DRAM + b.LBExtra + b.Static
}

// Compute derives the energy of a run from its result.
func Compute(cfg *config.Config, r *sim.Result) Breakdown {
	e := &cfg.Energy
	pj := func(count int64, per float64) float64 { return float64(count) * per * 1e-12 }

	var b Breakdown
	b.Exec = pj(r.Instructions, e.ExecPJ)
	b.RegFile = pj(r.RF.TotalAccesses(), e.RegFileAccessPJ)

	l1Accesses := r.TotalLoadReqs() + r.Stores
	b.L1 = pj(l1Accesses, e.L1AccessPJ)

	l2Accesses := r.L2.TotalLoadAccesses() + r.L2.StoreHits + r.L2.StoreMisses
	b.L2 = pj(l2Accesses, e.L2AccessPJ)

	b.DRAM = pj(r.DRAM.TotalBytes()/memtypes.LineSize, e.DRAMAccessPJ)

	lb := r.Extra["lb_lm_accesses"]*e.LMAccessPJ +
		r.Extra["lb_vtt_accesses"]*e.VTTAccessPJ +
		r.Extra["lb_ctamgr_accesses"]*e.CTAManagerAccessPJ +
		r.Extra["lb_hpc_accesses"]*e.HPCAccessPJ
	// Extra stats are per-SM averages; scale to the whole GPU.
	b.LBExtra = lb * float64(cfg.GPU.NumSMs) * 1e-12

	seconds := float64(r.Cycles) / (float64(cfg.GPU.ClockMHz) * 1e6)
	b.Static = e.StaticWattsSM * float64(cfg.GPU.NumSMs) * seconds
	return b
}

// PerInstruction returns energy per retired warp instruction, the
// fixed-work-comparable metric used to normalise Figure 18 (runs are
// fixed-cycle, so energy per unit of work is the meaningful ratio).
func PerInstruction(cfg *config.Config, r *sim.Result) float64 {
	if r.Instructions == 0 {
		return 0
	}
	b := Compute(cfg, r)
	return b.Total() / float64(r.Instructions)
}
