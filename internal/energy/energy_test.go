package energy

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

func testResult() *sim.Result {
	r := &sim.Result{
		Cycles:       100000,
		Instructions: 200000,
		Extra:        map[string]float64{},
	}
	r.Loads[sim.OutHit] = 10000
	r.Loads[sim.OutMiss] = 5000
	r.Stores = 2000
	r.RF.OperandAccesses = 600000
	r.L2.LoadHits = 2000
	r.L2.LoadMisses = 3000
	r.DRAM.BytesRead = 3000 * 128
	r.DRAM.BytesWritten = 1000 * 128
	return r
}

func TestComputeComponents(t *testing.T) {
	cfg := config.Default()
	r := testResult()
	b := Compute(&cfg, r)
	if b.Exec <= 0 || b.RegFile <= 0 || b.L1 <= 0 || b.L2 <= 0 || b.DRAM <= 0 || b.Static <= 0 {
		t.Fatalf("component missing: %+v", b)
	}
	if b.LBExtra != 0 {
		t.Fatalf("LB energy without LB stats: %v", b.LBExtra)
	}
	// DRAM should dominate per-access costs: 4000 pJ * 4000 lines = 16 µJ.
	wantDRAM := 4000.0 * 4000 * 1e-12
	if diff := b.DRAM - wantDRAM; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("DRAM energy = %v, want %v", b.DRAM, wantDRAM)
	}
	if b.Total() <= b.DRAM {
		t.Fatal("total not cumulative")
	}
}

func TestLinebackerStructureEnergy(t *testing.T) {
	cfg := config.Default()
	r := testResult()
	r.Extra["lb_lm_accesses"] = 1000
	r.Extra["lb_vtt_accesses"] = 2000
	r.Extra["lb_ctamgr_accesses"] = 10
	r.Extra["lb_hpc_accesses"] = 5000
	b := Compute(&cfg, r)
	// Per-SM averages × 16 SMs × Table 3 energies.
	want := (1000*0.32 + 2000*2.05 + 10*1.94 + 5000*0.09) * 16 * 1e-12
	if diff := b.LBExtra - want; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("LB energy = %v, want %v", b.LBExtra, want)
	}
}

func TestPerInstruction(t *testing.T) {
	cfg := config.Default()
	r := testResult()
	pi := PerInstruction(&cfg, r)
	b := Compute(&cfg, r)
	if pi <= 0 || pi != b.Total()/float64(r.Instructions) {
		t.Fatalf("per-instruction = %v", pi)
	}
	r.Instructions = 0
	if PerInstruction(&cfg, r) != 0 {
		t.Fatal("zero instructions should yield 0")
	}
}

func TestStaticScalesWithTime(t *testing.T) {
	cfg := config.Default()
	r1, r2 := testResult(), testResult()
	r2.Cycles *= 2
	b1, b2 := Compute(&cfg, r1), Compute(&cfg, r2)
	if b2.Static <= b1.Static {
		t.Fatal("static energy must grow with cycles")
	}
}
