package energy

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestZeroActivityWindow covers the degenerate result of a window in which
// nothing ran: every component must be exactly zero (no spurious static
// charge for zero cycles, no division blow-ups) and the per-instruction
// metric must be defined as zero.
func TestZeroActivityWindow(t *testing.T) {
	cfg := config.Default()
	r := &sim.Result{Extra: map[string]float64{}}
	b := Compute(&cfg, r)
	if b.Exec != 0 || b.RegFile != 0 || b.L1 != 0 || b.L2 != 0 || b.DRAM != 0 ||
		b.Static != 0 || b.LBExtra != 0 {
		t.Fatalf("zero-activity window has nonzero energy: %+v", b)
	}
	if b.Total() != 0 {
		t.Fatalf("zero-activity total = %v", b.Total())
	}
	if pi := PerInstruction(&cfg, r); pi != 0 {
		t.Fatalf("zero-activity per-instruction = %v", pi)
	}
}

// TestIdleWindowStaticOnly verifies a window with cycles but no retired
// work accrues static leakage and nothing else.
func TestIdleWindowStaticOnly(t *testing.T) {
	cfg := config.Default()
	r := &sim.Result{Cycles: 50000, Extra: map[string]float64{}}
	b := Compute(&cfg, r)
	if b.Static <= 0 {
		t.Fatalf("idle window must leak statically: %+v", b)
	}
	if b.Exec != 0 || b.RegFile != 0 || b.L1 != 0 || b.L2 != 0 || b.DRAM != 0 || b.LBExtra != 0 {
		t.Fatalf("idle window charged dynamic energy: %+v", b)
	}
	if b.Total() != b.Static {
		t.Fatalf("idle total %v != static %v", b.Total(), b.Static)
	}
}
