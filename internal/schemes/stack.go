package schemes

import (
	"strings"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
)

// Stack composes policies (for the Figure 15 combinations: PCAL+CERF,
// PCAL+SVC, Baseline+SVC, LB+CacheExt, Best-SWL+CacheExt).
//
// Hook semantics: permission hooks (CTAActive, AllowNewCTA, AllocateL1)
// AND together; ExtraL1Latency sums; ProbeVictim takes the first hit;
// notification hooks fan out to every member. Attach runs in order, so put
// policies that reshape the SM (CacheExt, CERF) first.
type Stack struct {
	Label    string
	Policies []sim.Policy
}

// Combine builds a Stack with a derived name.
func Combine(label string, ps ...sim.Policy) Stack {
	return Stack{Label: label, Policies: ps}
}

// Name implements sim.Policy.
func (s Stack) Name() string {
	if s.Label != "" {
		return s.Label
	}
	names := make([]string, len(s.Policies))
	for i, p := range s.Policies {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Attach implements sim.Policy.
func (s Stack) Attach(sm *sim.SM) sim.SMPolicy {
	st := &stackState{}
	for _, p := range s.Policies {
		st.ps = append(st.ps, p.Attach(sm))
	}
	return st
}

type stackState struct {
	ps []sim.SMPolicy
}

func (s *stackState) CTAActive(slot int) bool {
	for _, p := range s.ps {
		if !p.CTAActive(slot) {
			return false
		}
	}
	return true
}

func (s *stackState) WarpActive(warpSlot int) bool {
	for _, p := range s.ps {
		if !p.WarpActive(warpSlot) {
			return false
		}
	}
	return true
}

func (s *stackState) AllowNewCTA() bool {
	for _, p := range s.ps {
		if !p.AllowNewCTA() {
			return false
		}
	}
	return true
}

func (s *stackState) AllocateL1(warpSlot int, pc uint32) bool {
	for _, p := range s.ps {
		if !p.AllocateL1(warpSlot, pc) {
			return false
		}
	}
	return true
}

func (s *stackState) ExtraL1Latency(line memtypes.LineAddr, cycle int64) int {
	n := 0
	for _, p := range s.ps {
		n += p.ExtraL1Latency(line, cycle)
	}
	return n
}

func (s *stackState) ProbeVictim(line memtypes.LineAddr, pc uint32, cycle int64) (bool, int) {
	missLat := 0
	for _, p := range s.ps {
		hit, lat := p.ProbeVictim(line, pc, cycle)
		if hit {
			return true, lat
		}
		// Serial searches that missed still cost their latency.
		missLat += lat
	}
	return false, missLat
}

func (s *stackState) OnEviction(ev cache.Eviction, cycle int64) {
	for _, p := range s.ps {
		p.OnEviction(ev, cycle)
	}
}

func (s *stackState) OnLoadOutcome(warpSlot int, pc uint32, line memtypes.LineAddr, out sim.Outcome, cycle int64) {
	for _, p := range s.ps {
		p.OnLoadOutcome(warpSlot, pc, line, out, cycle)
	}
}

func (s *stackState) OnStore(line memtypes.LineAddr, cycle int64) {
	for _, p := range s.ps {
		p.OnStore(line, cycle)
	}
}

func (s *stackState) OnCTALaunch(slot, seq int, cycle int64) {
	for _, p := range s.ps {
		p.OnCTALaunch(slot, seq, cycle)
	}
}

func (s *stackState) OnCTAComplete(slot int, cycle int64) {
	for _, p := range s.ps {
		p.OnCTAComplete(slot, cycle)
	}
}

func (s *stackState) OnRegResponse(req *memtypes.Request, cycle int64) {
	for _, p := range s.ps {
		p.OnRegResponse(req, cycle)
	}
}

func (s *stackState) OnCycle(cycle int64) {
	for _, p := range s.ps {
		p.OnCycle(cycle)
	}
}

// NextEvent merges the members' advertisements: the stack can change state
// whenever any member can, so the combined event is the earliest one.
func (s *stackState) NextEvent(now int64) (int64, bool) {
	best, any := int64(0), false
	for _, p := range s.ps {
		c, ok := p.NextEvent(now)
		if !ok {
			continue
		}
		if c < now {
			c = now
		}
		if !any || c < best {
			best, any = c, true
		}
	}
	return best, any
}

// SkipCycles fans the skipped span out to every member, mirroring OnCycle.
func (s *stackState) SkipCycles(from, to int64) {
	for _, p := range s.ps {
		p.SkipCycles(from, to)
	}
}

// ExtraStats implements sim.ExtraStatser, merging member stats.
func (s *stackState) ExtraStats() map[string]float64 {
	out := map[string]float64{}
	for _, p := range s.ps {
		if es, ok := p.(sim.ExtraStatser); ok {
			// Sorted keys: members may export overlapping keys, and the
			// float merge must happen in one fixed order across runs.
			ex := es.ExtraStats()
			for _, k := range stats.SortedKeys(ex) {
				out[k] += ex[k]
			}
		}
	}
	return out
}
