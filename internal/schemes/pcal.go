package schemes

import (
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// PCAL is Priority-based Cache ALlocation (Li et al., HPCA '15) at the
// level of detail the paper models it: a number of token-holding warps may
// allocate in the L1; non-token warps keep running but bypass the L1, so
// thread-level parallelism is preserved while cache contention is capped.
// The token count is tuned at window boundaries by the same IPC-variation
// hill-climbing the paper's throttling schemes use.
type PCAL struct{}

// Name implements sim.Policy.
func (PCAL) Name() string { return "PCAL" }

// Attach implements sim.Policy.
func (PCAL) Attach(sm *sim.SM) sim.SMPolicy {
	maxWarps := sm.MaxResident() * sm.Kernel().WarpsPerCTA
	return &pcalState{sm: sm, tokens: maxWarps, maxWarps: maxWarps}
}

type pcalState struct {
	sim.BasePolicy
	sm       *sim.SM
	tokens   int // warps allowed to allocate in L1
	maxWarps int

	windowStart  int64
	retiredStart int64
	prevIPC      float64
	bestIPC      float64
	windows      int
	bypassWarps  int64 // stat: time-integral of non-token warps
	cycles       int64
}

// AllocateL1 grants allocation to token-holding warps only. Tokens go to
// the lowest warp slots (oldest CTAs occupy low slots in steady state).
func (p *pcalState) AllocateL1(warpSlot int, pc uint32) bool {
	return warpSlot < p.tokens
}

// OnCycle tunes the token count at window boundaries.
func (p *pcalState) OnCycle(cycle int64) {
	p.cycles++
	p.bypassWarps += int64(p.maxWarps - p.tokens)
	if cycle-p.windowStart < int64(p.sm.Config().LB.WindowCycles) {
		return
	}
	p.retune(cycle)
}

// retune moves the token count by the IPC-variation hill-climb. It runs
// only at window boundaries, which NextEvent advertises, so a skipped span
// never crosses one and SkipCycles owes none of these writes.
//
//lbvet:eventbound
func (p *pcalState) retune(cycle int64) {
	cfg := p.sm.Config()
	retired := p.sm.Retired() - p.retiredStart
	ipc := float64(retired) / float64(cycle-p.windowStart)
	p.windowStart = cycle
	p.retiredStart = p.sm.Retired()
	p.windows++

	if ipc > p.bestIPC {
		p.bestIPC = ipc
	}
	step := p.sm.Kernel().WarpsPerCTA
	switch {
	case p.windows == 2:
		// Kick-start: probe aggressively whether restricting allocation
		// helps (non-token warps keep running, so the parallelism cost of
		// a wrong guess is small — PCAL's selling point over throttling).
		p.tokens = maxInt(step, p.maxWarps/2)
	case p.windows > 2 && p.prevIPC > 0:
		vari := (ipc - p.prevIPC) / p.prevIPC
		drifted := p.bestIPC > 0 && (ipc-p.bestIPC)/p.bestIPC < cfg.LB.IPCVarLower/2
		if vari > cfg.LB.IPCVarUpper {
			p.tokens = maxInt(step, p.tokens-step)
		} else if vari < cfg.LB.IPCVarLower || drifted {
			p.tokens = minInt(p.maxWarps, p.tokens+step)
		}
	}
	p.prevIPC = ipc
}

// NextEvent implements sim.SMPolicy: PCAL's only self-driven state change
// is the token retuning at the next window boundary. The per-cycle bypass
// integral is not an event; SkipCycles reproduces it.
func (p *pcalState) NextEvent(now int64) (int64, bool) {
	b := p.windowStart + int64(p.sm.Config().LB.WindowCycles)
	if b < now {
		b = now
	}
	return b, true
}

// SkipCycles implements sim.SMPolicy: the bypass-warp time-integral in
// closed form. The token count is constant across a skipped span — it only
// moves at window boundaries, which NextEvent advertises.
func (p *pcalState) SkipCycles(from, to int64) {
	span := to - from
	p.cycles += span
	p.bypassWarps += span * int64(p.maxWarps-p.tokens)
}

// ExtraStats implements sim.ExtraStatser.
func (p *pcalState) ExtraStats() map[string]float64 {
	avgBypass := 0.0
	if p.cycles > 0 {
		avgBypass = float64(p.bypassWarps) / float64(p.cycles)
	}
	return map[string]float64{
		"pcal_tokens":           float64(p.tokens),
		"pcal_bypass_warps_avg": avgBypass,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
