// Package schemes implements the comparison points of the paper's
// evaluation: static warp limiting (SWL / Best-SWL), PCAL (priority-based
// cache allocation, HPCA '15), CERF (cache-emulated register file,
// MICRO '16), the CacheExt idealisation of Section 2.4, and a policy
// combinator for the Figure 15 combinations.
package schemes

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// SWL is static warp (CTA) limiting: only Limit CTAs per SM may issue;
// the rest stay resident — their registers become dynamically unused (DUR).
// Best-SWL is the oracle that picks the Limit with the highest IPC.
type SWL struct {
	// Limit is the number of CTAs allowed to run concurrently per SM.
	Limit int
}

// Name implements sim.Policy.
func (s SWL) Name() string { return fmt.Sprintf("SWL-%d", s.Limit) }

// Attach implements sim.Policy.
func (s SWL) Attach(sm *sim.SM) sim.SMPolicy {
	st := &swlState{sm: sm, limit: s.Limit, active: make([]bool, sm.MaxResident())}
	st.rebuild()
	return st
}

type swlState struct {
	sim.BasePolicy
	sm    *sim.SM
	limit int

	// active caches each slot's issue permission. CTA residency only moves
	// in the launch/complete hooks, which rebuild the cache, so the O(slots²)
	// rank computation runs per residency change instead of per scheduler
	// query — CTAActive sits on the warp scheduler's innermost loop.
	active []bool

	durByteCycles float64
	cycles        int64
}

// rebuild recomputes every slot's permission: the `limit` oldest resident
// CTAs (ranked by launch sequence) may run; empty slots stay permissive so
// a freshly launched CTA is judged by its own rank.
func (s *swlState) rebuild() {
	for slot := range s.active {
		info := s.sm.CTA(slot)
		if !info.Resident {
			s.active[slot] = true
			continue
		}
		rank := 0
		for i := 0; i < s.sm.MaxResident(); i++ {
			o := s.sm.CTA(i)
			if i != slot && o.Resident && (o.Seq < info.Seq) {
				rank++
			}
		}
		s.active[slot] = rank < s.limit
	}
}

// CTAActive allows the `limit` oldest resident CTAs to run.
func (s *swlState) CTAActive(slot int) bool { return s.active[slot] }

// OnCTALaunch implements sim.SMPolicy: residency changed, recompute ranks.
func (s *swlState) OnCTALaunch(int, int, int64) { s.rebuild() }

// OnCTAComplete implements sim.SMPolicy: a completed CTA frees a rank, which
// may admit the next-oldest throttled CTA.
func (s *swlState) OnCTAComplete(int, int64) { s.rebuild() }

// OnCycle integrates the dynamically-unused register bytes (Figure 4).
func (s *swlState) OnCycle(cycle int64) {
	s.cycles++
	resident := s.sm.ResidentCTAs()
	throttled := resident - s.limit
	if throttled < 0 {
		throttled = 0
	}
	s.durByteCycles += float64(throttled * s.sm.Kernel().RegsPerCTA() * config.LineSize)
}

// NextEvent implements sim.SMPolicy: SWL has no self-driven state changes —
// its throttle set is a pure function of CTA residency, which only moves in
// launch/complete hooks — so it is permanently quiescent. The per-cycle DUR
// integral is not an event; SkipCycles reproduces it.
func (s *swlState) NextEvent(int64) (int64, bool) { return 0, false }

// SkipCycles implements sim.SMPolicy: the DUR integral of OnCycle in closed
// form. The throttled-CTA count is constant across a skipped span (residency
// changes only in ticked hooks), and the integral adds integer-valued
// float64 terms, so one multiply-add is bit-identical to span additions.
func (s *swlState) SkipCycles(from, to int64) {
	span := to - from
	s.cycles += span
	throttled := s.sm.ResidentCTAs() - s.limit
	if throttled < 0 {
		throttled = 0
	}
	s.durByteCycles += float64(span * int64(throttled*s.sm.Kernel().RegsPerCTA()*config.LineSize))
}

// ExtraStats implements sim.ExtraStatser.
func (s *swlState) ExtraStats() map[string]float64 {
	dur := 0.0
	if s.cycles > 0 {
		dur = s.durByteCycles / float64(s.cycles)
	}
	return map[string]float64{
		"swl_limit":         float64(s.limit),
		"swl_dur_bytes_avg": dur,
	}
}

// SURBytes returns the statically unused register file bytes for a kernel
// at full residency (Figure 4's SUR).
func SURBytes(g *config.GPU, k *workload.Kernel) int {
	resident := sim.MaxResidentCTAs(g, k)
	used := resident * k.RegsPerCTA() * config.LineSize
	return g.RegFileBytes - used
}

// DURBytes returns the dynamically unused register bytes when only `limit`
// of the resident CTAs run (Figure 4's DUR under Best-SWL).
func DURBytes(g *config.GPU, k *workload.Kernel, limit int) int {
	resident := sim.MaxResidentCTAs(g, k)
	if limit >= resident {
		return 0
	}
	return (resident - limit) * k.RegsPerCTA() * config.LineSize
}
