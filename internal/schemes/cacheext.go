package schemes

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// CacheExt is the Section 2.4 idealisation: the L1 is magically enlarged by
// the unused register bytes — statically unused space always, plus the
// dynamically unused space of a static warp limit when DURLimit > 0. It has
// no bank conflicts and no management cost; the paper uses it to bound what
// repurposed register space could achieve.
type CacheExt struct {
	// DURLimit, when positive, additionally counts the registers of CTAs
	// throttled beyond the limit (pair with SWL{Limit: DURLimit}).
	DURLimit int
}

// Name implements sim.Policy.
func (c CacheExt) Name() string {
	if c.DURLimit > 0 {
		return fmt.Sprintf("CacheExt+DUR(%d)", c.DURLimit)
	}
	return "CacheExt"
}

// Attach implements sim.Policy.
func (c CacheExt) Attach(sm *sim.SM) sim.SMPolicy {
	g := &sm.Config().GPU
	extra := SURBytes(g, sm.Kernel())
	if c.DURLimit > 0 {
		extra += DURBytes(g, sm.Kernel(), c.DURLimit)
	}
	sm.L1().Resize(g.L1Bytes + extra)
	return cacheExtState{extra: extra}
}

type cacheExtState struct {
	sim.BasePolicy
	extra int
}

// ExtraStats implements sim.ExtraStatser.
func (s cacheExtState) ExtraStats() map[string]float64 {
	return map[string]float64{"cacheext_extra_bytes": float64(s.extra)}
}
