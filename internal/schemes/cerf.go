package schemes

import (
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// CERF is the Cache-Emulated Register File (Jing et al., MICRO '16): a
// unified on-chip memory holding both the register file and the L1, sized
// at their sum (304 KB in the paper's configuration). Register space not
// used by resident warps serves as extra cache capacity.
//
// The model captures the two properties the paper's comparison rests on:
//
//  1. the L1 grows by the statically unused register bytes (no 24 KB
//     granularity, no tag-search latency — CERF's advantage), and
//  2. every cache access contends with warp-operand traffic for the unified
//     structure's banks (CERF's weakness, Figures 14 and 16), and no
//     streaming filter exists (its other weakness, Figure 12).
type CERF struct{}

// Name implements sim.Policy.
func (CERF) Name() string { return "CERF" }

// Attach implements sim.Policy: grow the L1 by the unused register bytes.
func (CERF) Attach(sm *sim.SM) sim.SMPolicy {
	sur := SURBytes(&sm.Config().GPU, sm.Kernel())
	sm.L1().Resize(sm.Config().GPU.L1Bytes + sur)
	return &cerfState{sm: sm, banks: sm.Config().GPU.RegFileBanks}
}

type cerfState struct {
	sim.BasePolicy
	sm    *sim.SM
	banks int
}

// ExtraL1Latency models the unified-structure bank conflict: each cache
// access occupies a register bank for the cycle; colliding with operand
// traffic (or other cache accesses) costs extra latency.
func (c *cerfState) ExtraL1Latency(line memtypes.LineAddr, cycle int64) int {
	rn := int(uint64(line)/memtypes.LineSize) % c.sm.Config().GPU.WarpRegisters()
	if c.sm.RF().VictimRead(rn, cycle) {
		return 2
	}
	return 0
}

// ExtraStats implements sim.ExtraStatser.
func (c *cerfState) ExtraStats() map[string]float64 {
	return map[string]float64{
		"cerf_unified_bytes": float64(c.sm.Config().GPU.L1Bytes +
			SURBytes(&c.sm.Config().GPU, c.sm.Kernel()) + c.sm.RF().UsedRegs()*config.LineSize),
	}
}
