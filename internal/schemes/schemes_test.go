package schemes

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 2
	cfg.GPU.DRAMBandwidthGBs = 88
	cfg.GPU.DRAMChannels = 2
	cfg.GPU.L2Bytes = 256 * 1024
	cfg.LB.WindowCycles = 4000
	return cfg
}

// thrashKernel combines per-warp tiles (aggregate footprint scales with the
// active warp count, so throttling helps) with a shared per-SM sweep and a
// streaming load; 8 CTAs of 8 warps × 24 regs leave 512 warp-registers
// statically unused for victim caching.
func thrashKernel() *workload.Kernel {
	return workload.NewKernel("thrash",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerWarp, WorkingSetBytes: 512, Coalesced: 1},
			{Pattern: workload.Tiled, Scope: workload.PerWarp, WorkingSetBytes: 512, Coalesced: 1},
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 16 * 1024, Coalesced: 4},
		},
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		1, 8, 100000, 8, 24, 4096)
}

func run(t *testing.T, pol sim.Policy, cycles int64) *sim.Result {
	t.Helper()
	g, err := sim.New(testConfig(), thrashKernel(), pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(cycles)
	return g.Collect()
}

func TestSWLLimitsActiveCTAs(t *testing.T) {
	r := run(t, SWL{Limit: 2}, 60_000)
	if r.Instructions == 0 {
		t.Fatal("no progress under SWL")
	}
	// DUR should be positive: resident CTAs beyond the limit hold regs.
	if r.Extra["swl_dur_bytes_avg"] <= 0 {
		t.Fatalf("DUR = %v, want > 0", r.Extra["swl_dur_bytes_avg"])
	}
	if r.Extra["swl_limit"] != 2 {
		t.Fatalf("limit stat = %v", r.Extra["swl_limit"])
	}
}

func TestSWLThrottlingImprovesThrashingKernel(t *testing.T) {
	base := run(t, sim.Baseline{}, 120_000)
	best := base
	for _, lim := range []int{1, 2, 3} {
		r := run(t, SWL{Limit: lim}, 120_000)
		if r.IPC() > best.IPC() {
			best = r
		}
	}
	if best.IPC() <= base.IPC() {
		t.Fatalf("no SWL limit beats baseline (%.3f) on a thrashing kernel", base.IPC())
	}
}

func TestSURAndDURAccounting(t *testing.T) {
	cfg := config.Default()
	k := thrashKernel() // 8 CTAs * 192 regs = 1536 used of 2048
	if got := SURBytes(&cfg.GPU, k); got != 512*128 {
		t.Fatalf("SUR = %d, want %d", got, 512*128)
	}
	if got := DURBytes(&cfg.GPU, k, 5); got != 3*192*128 {
		t.Fatalf("DUR(5) = %d, want %d", got, 3*192*128)
	}
	if got := DURBytes(&cfg.GPU, k, 99); got != 0 {
		t.Fatalf("DUR above residency = %d, want 0", got)
	}
}

func TestPCALBypassesNonTokenWarps(t *testing.T) {
	r := run(t, PCAL{}, 120_000)
	if r.Loads[sim.OutBypass] == 0 {
		t.Fatal("PCAL produced no bypasses after token reduction")
	}
	if r.Extra["pcal_tokens"] <= 0 {
		t.Fatalf("tokens = %v", r.Extra["pcal_tokens"])
	}
}

func TestCERFEnlargesL1AndConflicts(t *testing.T) {
	g, err := sim.New(testConfig(), thrashKernel(), CERF{})
	if err != nil {
		t.Fatal(err)
	}
	// 48 KB + 64 KB SUR = 112 KB → 112*1024/(128*8) = 112 sets.
	if got := g.SMs()[0].L1().Sets(); got != 112 {
		t.Fatalf("CERF L1 sets = %d, want 112", got)
	}
	g.Run(60_000)
	r := g.Collect()
	base := run(t, sim.Baseline{}, 60_000)
	if r.RF.BankConflicts <= base.RF.BankConflicts {
		t.Fatalf("CERF bank conflicts %d not above baseline %d",
			r.RF.BankConflicts, base.RF.BankConflicts)
	}
}

func TestCacheExtIdealisation(t *testing.T) {
	g, err := sim.New(testConfig(), thrashKernel(), CacheExt{})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.SMs()[0].L1().Sets(); got != 112 {
		t.Fatalf("CacheExt L1 sets = %d, want 112", got)
	}
	g.Run(120_000)
	ext := g.Collect()
	base := run(t, sim.Baseline{}, 120_000)
	if ext.IPC() <= base.IPC() {
		t.Fatalf("CacheExt IPC %.3f not above baseline %.3f on thrashing kernel",
			ext.IPC(), base.IPC())
	}
	// With DUR: even larger.
	g2, _ := sim.New(testConfig(), thrashKernel(), Combine("Best-SWL+CacheExt", CacheExt{DURLimit: 4}, SWL{Limit: 4}))
	if got := g2.SMs()[0].L1().Sets(); got <= 112 {
		t.Fatalf("CacheExt+DUR sets = %d, want > 112", got)
	}
}

func TestStackComposition(t *testing.T) {
	// PCAL+SVC: bypassing plus selective victim caching on SUR.
	pol := Combine("PCAL+SVC", PCAL{}, core.NewWith(core.Options{Selection: true}))
	r := run(t, pol, 150_000)
	if r.Instructions == 0 {
		t.Fatal("no progress under stacked policy")
	}
	if r.Extra["lb_monitor_windows"] == 0 {
		t.Fatal("stacked SVC did not monitor")
	}
	if pol.Name() != "PCAL+SVC" {
		t.Fatalf("name = %q", pol.Name())
	}
	if Combine("", PCAL{}, CERF{}).Name() != "PCAL+CERF" {
		t.Fatal("derived name wrong")
	}
}

func TestStackPermissionAND(t *testing.T) {
	// SWL(1) stacked with SWL(2): effective limit is the intersection (1).
	pol := Combine("swl-and", SWL{Limit: 1}, SWL{Limit: 2})
	r := run(t, pol, 30_000)
	single := run(t, SWL{Limit: 1}, 30_000)
	// Same active-CTA constraint → similar IPC (identical schedule).
	if r.Instructions != single.Instructions {
		t.Fatalf("stacked AND semantics differ: %d vs %d", r.Instructions, single.Instructions)
	}
}

func TestCCWSDeschedulesOnLostLocality(t *testing.T) {
	r := run(t, CCWS{}, 120_000)
	if r.Extra["ccws_lost_detections"] == 0 {
		t.Fatal("no lost-locality detections on a thrashing kernel")
	}
	if r.Extra["ccws_desched_avg"] <= 0 {
		t.Fatal("CCWS never descheduled warps")
	}
	base := run(t, sim.Baseline{}, 120_000)
	if r.IPC() < base.IPC()*0.8 {
		t.Fatalf("CCWS (%.3f) far below baseline (%.3f)", r.IPC(), base.IPC())
	}
}

func TestCCWSIdleOnStreamingKernel(t *testing.T) {
	// Streams never re-miss the same line, so no lost locality accrues and
	// CCWS must not throttle.
	k := workload.NewKernel("stream-ccws",
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		nil, 2, 8, 5000, 8, 24, 4096)
	g, err := sim.New(testConfig(), k, CCWS{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(60_000)
	r := g.Collect()
	if r.Extra["ccws_lost_detections"] != 0 {
		t.Fatalf("streaming produced %v lost-locality detections", r.Extra["ccws_lost_detections"])
	}
	if r.Extra["ccws_desched_avg"] != 0 {
		t.Fatal("CCWS throttled a streaming kernel")
	}
}

func TestCCWSKeepsOneCTAWorthOfWarps(t *testing.T) {
	// Even with an absurdly low deschedule threshold, a CTA's worth of
	// warps must stay active.
	pol := CCWS{ScorePerDescheduledWarp: 1e-6, ScoreHit: 1e6, DecayPerCycle: 1e-9}
	g, err := sim.New(testConfig(), thrashKernel(), pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(40_000)
	r := g.Collect()
	if r.Extra["ccws_active_warps"] < float64(g.Kernel().WarpsPerCTA) {
		t.Fatalf("active warps %v below one CTA (%d)", r.Extra["ccws_active_warps"], g.Kernel().WarpsPerCTA)
	}
	if r.Instructions == 0 {
		t.Fatal("no forward progress under extreme CCWS throttling")
	}
}
