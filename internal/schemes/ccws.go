package schemes

import (
	"sort"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// CCWS is Cache-Conscious Wavefront Scheduling (Rogers, O'Connor, Aamodt,
// MICRO 2012) — the dynamic warp-throttling technique the paper's Best-SWL
// oracle is defined against. It is included as a reproduction extension so
// Best-SWL's "better than CCWS" framing can be checked.
//
// Mechanism (the paper's locality scoring system, modelled at the same
// granularity as the other schemes here):
//
//   - every warp owns a small victim tag array (VTA) of the lines it
//     recently missed on;
//   - a warp re-missing on a line still in its VTA has *lost intra-warp
//     locality*: its locality score jumps;
//   - scores decay linearly every cycle;
//   - warps are ranked by score; when the aggregate score grows, the
//     lowest-scoring warps are descheduled so high-score warps can
//     re-establish their working sets.
type CCWS struct {
	// VTAEntries is the per-warp victim tag array size (default 16).
	VTAEntries int
	// ScoreHit is the score added on a lost-locality detection
	// (default 64 — roughly the paper's KTHROTTLE-scaled bump).
	ScoreHit float64
	// DecayPerCycle is the linear per-cycle score decay (default 0.02).
	DecayPerCycle float64
	// ScorePerDescheduledWarp converts aggregate score into the number of
	// descheduled warps (default 256).
	ScorePerDescheduledWarp float64
}

// Name implements sim.Policy.
func (CCWS) Name() string { return "CCWS" }

// withDefaults fills zero fields.
func (c CCWS) withDefaults() CCWS {
	if c.VTAEntries == 0 {
		c.VTAEntries = 16
	}
	if c.ScoreHit == 0 {
		c.ScoreHit = 64
	}
	if c.DecayPerCycle == 0 {
		c.DecayPerCycle = 0.02
	}
	if c.ScorePerDescheduledWarp == 0 {
		c.ScorePerDescheduledWarp = 256
	}
	return c
}

// Attach implements sim.Policy.
func (c CCWS) Attach(sm *sim.SM) sim.SMPolicy {
	c = c.withDefaults()
	n := sm.MaxResident() * sm.Kernel().WarpsPerCTA
	st := &ccwsState{
		cfg:    c,
		sm:     sm,
		warps:  make([]ccwsWarp, n),
		active: make([]bool, n),
	}
	for i := range st.active {
		st.active[i] = true
	}
	return st
}

// ccwsWarp is the per-warp locality state.
type ccwsWarp struct {
	vta   []memtypes.LineAddr // FIFO ring of recently missed lines
	head  int
	score float64
}

type ccwsState struct {
	sim.BasePolicy
	cfg CCWS
	sm  *sim.SM
	// warps only changes per cycle while some score is positive, and then
	// NextEvent pins the event to now — a skipped span never covers a decay
	// step, so SkipCycles owes nothing here.
	//
	//lbvet:eventbound
	warps  []ccwsWarp
	active []bool

	lastRank       int64
	lostDetections int64
	descheduled    int64 // time-integral of descheduled warps
	cycles         int64
}

// rankInterval is how often the score stack is re-evaluated (cycles).
const rankInterval = 128

// WarpActive implements sim.SMPolicy.
func (s *ccwsState) WarpActive(warpSlot int) bool { return s.active[warpSlot] }

// OnLoadOutcome implements sim.SMPolicy: detect lost intra-warp locality.
func (s *ccwsState) OnLoadOutcome(warpSlot int, pc uint32, line memtypes.LineAddr, out sim.Outcome, cycle int64) {
	if out == sim.OutHit || out == sim.OutRegHit {
		return
	}
	w := &s.warps[warpSlot]
	for _, t := range w.vta {
		if t == line {
			// The warp touched this line recently and misses on it again:
			// its locality was destroyed by intervening evictions.
			w.score += s.cfg.ScoreHit
			s.lostDetections++
			break
		}
	}
	if len(w.vta) < s.cfg.VTAEntries {
		w.vta = append(w.vta, line)
		return
	}
	w.vta[w.head] = line
	w.head = (w.head + 1) % s.cfg.VTAEntries
}

// OnCycle implements sim.SMPolicy: decay scores and periodically rebuild
// the active set from the score stack.
func (s *ccwsState) OnCycle(cycle int64) {
	s.cycles++
	for i := range s.warps {
		if sc := &s.warps[i].score; *sc > 0 {
			*sc -= s.cfg.DecayPerCycle
			if *sc < 0 {
				*sc = 0
			}
		}
	}
	if cycle-s.lastRank < rankInterval {
		for _, a := range s.active {
			if !a {
				s.descheduled++
			}
		}
		return
	}
	s.rank(cycle)
}

// NextEvent implements sim.SMPolicy: while any warp carries a positive
// locality score, OnCycle decays it every cycle — a genuine per-cycle state
// change, so the event is now and the engine must tick. With all scores at
// zero the only self-driven change left is the next ranking boundary (rank
// rewrites the active set and lastRank even when nothing is descheduled).
func (s *ccwsState) NextEvent(now int64) (int64, bool) {
	for i := range s.warps {
		if s.warps[i].score > 0 {
			return now, true
		}
	}
	b := s.lastRank + rankInterval
	if b < now {
		b = now
	}
	return b, true
}

// SkipCycles implements sim.SMPolicy: the descheduled-warp time-integral in
// closed form. Every skipped cycle lies strictly before the next ranking
// boundary (NextEvent advertises it), so each would have taken OnCycle's
// early-return path: no decay (all scores are zero, or the engine would not
// have skipped) and one descheduled count per inactive warp.
func (s *ccwsState) SkipCycles(from, to int64) {
	span := to - from
	s.cycles += span
	inactive := int64(0)
	for _, a := range s.active {
		if !a {
			inactive++
		}
	}
	s.descheduled += span * inactive
}

// rank descedules the lowest-scoring warps in proportion to the aggregate
// lost-locality score. It runs only at ranking boundaries, which NextEvent
// advertises — a skipped span never crosses one, so SkipCycles owes none
// of these writes.
//
//lbvet:eventbound
func (s *ccwsState) rank(cycle int64) {
	s.lastRank = cycle
	total := 0.0
	for i := range s.warps {
		total += s.warps[i].score
	}
	n := len(s.warps)
	desched := int(total / s.cfg.ScorePerDescheduledWarp)
	if desched > n-s.sm.Kernel().WarpsPerCTA {
		// Keep at least one CTA's worth of warps running.
		desched = n - s.sm.Kernel().WarpsPerCTA
	}
	if desched < 0 {
		desched = 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return s.warps[idx[a]].score < s.warps[idx[b]].score
	})
	for i, w := range idx {
		s.active[w] = i >= desched
	}
}

// ExtraStats implements sim.ExtraStatser.
func (s *ccwsState) ExtraStats() map[string]float64 {
	activeNow := 0
	for _, a := range s.active {
		if a {
			activeNow++
		}
	}
	avgDesched := 0.0
	if s.cycles > 0 {
		avgDesched = float64(s.descheduled) / float64(s.cycles)
	}
	return map[string]float64{
		"ccws_lost_detections": float64(s.lostDetections),
		"ccws_active_warps":    float64(activeNow),
		"ccws_desched_avg":     avgDesched,
	}
}
