package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/twin"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// EstimateRequest is the POST /v1/estimate body: one configuration
// question about one benchmark, on the twin's calibrated axes.
type EstimateRequest struct {
	// Bench is a Table 2 benchmark code (required).
	Bench string `json:"bench"`
	// LB selects the Linebacker arm (default: baseline).
	LB bool `json:"lb,omitempty"`
	// L1KB overrides the L1 capacity in KB (0 = the base configuration).
	L1KB int `json:"l1_kb,omitempty"`
	// SWLLimit asks for a static CTA limit (baseline arm only).
	SWLLimit int `json:"swl_limit,omitempty"`
	// VTTParts overrides Linebacker's VTT partition cap (LB arm only).
	VTTParts int `json:"vtt_parts,omitempty"`
	// Windows / Paper select the machine, exactly as on sweep requests.
	Windows int  `json:"windows,omitempty"`
	Paper   bool `json:"paper,omitempty"`
}

// EstimateResponse is the answer. Source says how it was produced:
// "twin" carries a confidence band; "sim" is ground truth from a full
// cycle-level run (the fallback for out-of-envelope queries, and the only
// source when the twin tier is disabled). An out-of-envelope Reason is
// always reported, even after the fallback answered — the twin must never
// be quietly wrong, and never silently absent either.
type EstimateResponse struct {
	Bench      string  `json:"bench"`
	Source     string  `json:"source"`
	IPC        float64 `json:"ipc"`
	Lo         float64 `json:"lo,omitempty"`
	Hi         float64 `json:"hi,omitempty"`
	MissRate   float64 `json:"miss_rate,omitempty"`
	InEnvelope bool    `json:"in_envelope"`
	Reason     string  `json:"reason,omitempty"`
	Basis      string  `json:"basis,omitempty"`
}

// Estimate sources.
const (
	SourceTwin = "twin"
	SourceSim  = "sim"
)

// TwinStats are the cheap-query-tier counters in /v1/stats.
type TwinStats struct {
	// Enabled mirrors Options.Twin.
	Enabled bool `json:"enabled"`
	// Hits counts queries answered by a calibrated model, in-envelope.
	Hits int64 `json:"hits"`
	// Fallbacks counts queries answered by full simulation (out of
	// envelope, non-twin scheme, or twin tier disabled).
	Fallbacks int64 `json:"fallbacks"`
	// Models counts calibrated models currently cached across runners.
	Models int `json:"models"`
}

// twinFor returns (lazily building) the model cache paired with one
// runner. Calibration options ride Options.TwinCal.
func (s *Server) twinFor(k runnerKey) *twin.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.twins[k]
	if !ok {
		c = twin.NewCache(s.opts.TwinCal)
		s.twins[k] = c
	}
	return c
}

// twinModels sums cached models across runners for /v1/stats.
func (s *Server) twinModels() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, c := range s.twins {
		total += c.Len()
	}
	return total
}

// twinQuery maps a sweep scheme spec onto the twin's calibrated arms.
// Only the two golden-grid arms are twin-answerable; anything else (pcal,
// swl:4, cerf, ...) reports false and stays on the simulator.
func twinQuery(scheme string) (twin.Query, bool) {
	switch scheme {
	case "baseline":
		return twin.Query{}, true
	case "linebacker", "lb":
		return twin.Query{LB: true}, true
	}
	return twin.Query{}, false
}

// validate checks the axes compose at all (the envelope check proper lives
// in the model; this rejects requests no calibration could ever answer).
func (er *EstimateRequest) validate() error {
	if _, ok := workload.ByName(er.Bench); !ok {
		return fmt.Errorf("unknown benchmark %q", er.Bench)
	}
	if er.L1KB < 0 || er.SWLLimit < 0 || er.VTTParts < 0 {
		return fmt.Errorf("negative axis value")
	}
	if er.SWLLimit > 0 && er.LB {
		return fmt.Errorf("swl_limit applies to the baseline arm only")
	}
	if er.VTTParts > 0 && !er.LB {
		return fmt.Errorf("vtt_parts requires lb: true")
	}
	if er.Windows < 0 || er.Windows > 10000 {
		return fmt.Errorf("windows %d out of range [0, 10000]", er.Windows)
	}
	return nil
}

// query projects the request onto a twin query.
func (er *EstimateRequest) query() twin.Query {
	return twin.Query{
		L1Bytes:  er.L1KB * 1024,
		SWLLimit: er.SWLLimit,
		LB:       er.LB,
		VTTParts: er.VTTParts,
	}
}

// handleEstimate answers one configuration query: from the calibrated twin
// when the query is in-envelope (microseconds), otherwise from a full
// simulation run synchronously under the same retry policy as sweep
// points. Simulation-tier admission is bounded by the estimate semaphore;
// overflow answers 429 like the sweep queue.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	windows := req.Windows
	if windows == 0 {
		windows = s.opts.Windows
	}
	k := runnerKey{windows, req.Paper}

	// Every path below may simulate (calibration on a cold model, or the
	// fallback run), so all of them pass admission control first.
	select {
	case s.estSem <- struct{}{}:
		defer func() { <-s.estSem }()
	default:
		w.Header().Set("Retry-After", strconv.Itoa(1+s.opts.QueueDepth))
		writeError(w, http.StatusTooManyRequests, "estimate tier busy; retry later")
		return
	}

	resp := EstimateResponse{Bench: req.Bench}
	if s.opts.Twin {
		m, err := s.twinFor(k).Model(r.Context(), s.runnerFor(windows, req.Paper), req.Bench)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "calibration failed: "+err.Error())
			return
		}
		est := m.Estimate(req.query())
		if est.InEnvelope {
			s.twinHits.Add(1)
			resp.Source, resp.IPC, resp.Lo, resp.Hi = SourceTwin, est.IPC, est.Lo, est.Hi
			resp.MissRate, resp.InEnvelope, resp.Basis = est.MissRate, true, est.Basis
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp.Reason = est.Reason
	} else {
		resp.Reason = "twin tier disabled"
	}

	// Fallback: the real simulator, synchronously.
	s.twinFallbacks.Add(1)
	res, err := s.simulateEstimate(r.Context(), windows, req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "simulation fallback: "+err.Error())
		return
	}
	resp.Source, resp.IPC, resp.InEnvelope = SourceSim, res.IPC(), false
	if total := res.L1.TotalLoadAccesses(); total > 0 {
		resp.MissRate = float64(res.L1.LoadMisses) / float64(total)
	}
	writeJSON(w, http.StatusOK, resp)
}

// simulateEstimate runs the queried configuration for real, reusing the
// sweep-point memo keys when the query has no axis overrides so estimates
// and sweeps of the same point cost one simulation between them.
func (s *Server) simulateEstimate(ctx context.Context, windows int, req EstimateRequest) (*sim.Result, error) {
	r := s.runnerFor(windows, req.Paper)
	cfg := r.Cfg
	var pol sim.Policy = sim.Baseline{}
	spec := "baseline"
	switch {
	case req.SWLLimit > 0:
		pol, spec = schemes.SWL{Limit: req.SWLLimit}, fmt.Sprintf("swl:%d", req.SWLLimit)
	case req.LB:
		pol, spec = core.New(), "linebacker"
		if req.VTTParts > 0 {
			cfg.LB.MaxPartitions = req.VTTParts
		}
	}
	if req.L1KB > 0 {
		cfg.GPU.L1Bytes = req.L1KB * 1024
	}
	cfgKey := fmt.Sprintf("serve|w=%d|%s", windows, spec)
	if req.L1KB > 0 || req.VTTParts > 0 {
		cfgKey = fmt.Sprintf("est|w=%d|l1=%d|vtt=%d|%s", windows, req.L1KB, req.VTTParts, spec)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res, _, err := runWithRetry(ctx, s.opts.Retry, s.jit,
		func(ctx context.Context) (*sim.Result, error) {
			return r.RunCfg(ctx, cfg, cfgKey, req.Bench, pol)
		})
	return res, err
}

// tryTwinPoint answers one sweep point from the twin when the job asked
// for mode "twin" and the point's scheme maps onto a calibrated arm.
// The bool reports whether the twin answered; false falls through to the
// normal simulation path.
func (s *Server) tryTwinPoint(ctx context.Context, r *harness.Runner, job *Job, i int, p Point) bool {
	if !s.opts.Twin || job.Req.Mode != ModeTwin || job.Req.Chaos != "" {
		return false
	}
	q, ok := twinQuery(p.Scheme)
	if !ok {
		return false
	}
	k := runnerKey{job.Req.Windows, job.Req.Paper}
	m, err := s.twinFor(k).Model(ctx, r, p.Bench)
	if err != nil {
		return false // calibration trouble is the simulator's job to survive
	}
	est := m.Estimate(q)
	if !est.InEnvelope {
		return false
	}
	s.twinHits.Add(1)
	p.State, p.Source = PointOK, SourceTwin
	p.IPC, p.Lo, p.Hi = est.IPC, est.Lo, est.Hi
	p.Error = nil
	job.setPoint(i, p)
	return true
}
