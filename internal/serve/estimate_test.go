package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/twin"
)

// fastTwinOpts keeps estimate-tier tests quick: two cache anchors, no SWL
// or VTT axes (empty non-nil = disabled).
func fastTwinOpts() Options {
	return Options{
		Windows: 1,
		Twin:    true,
		TwinCal: twin.Options{Axes: twin.Axes{
			L1KB:      []int{32, 64},
			SWLLimits: []int{},
			VTTParts:  []int{},
		}},
	}
}

func postEstimate(t *testing.T, ts *httptest.Server, body string) (int, EstimateResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var er EstimateResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding estimate (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, er
}

func serveStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEstimateTwinAnswersInEnvelope: the base-configuration query sits
// inside the calibrated anchor range, so after the one-time calibration
// cost every further estimate is answered by the model — zero additional
// simulations — with a band around the point value.
func TestEstimateTwinAnswersInEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a twin model")
	}
	ts, s, _ := newServerAt(t, t.TempDir(), fastTwinOpts())

	code, er := postEstimate(t, ts, `{"bench": "S2"}`)
	if code != http.StatusOK {
		t.Fatalf("estimate HTTP %d: %+v", code, er)
	}
	if er.Source != SourceTwin || !er.InEnvelope {
		t.Fatalf("base-config query not answered by the twin: %+v", er)
	}
	if !(er.Lo > 0 && er.Lo <= er.IPC && er.IPC <= er.Hi) {
		t.Fatalf("band does not bracket the estimate: lo %v ipc %v hi %v", er.Lo, er.IPC, er.Hi)
	}
	if er.Basis == "" {
		t.Error("in-envelope estimate must state its basis")
	}

	// Repeat queries (other arm included) ride the cached model.
	calibrated := s.Executions()
	for _, body := range []string{`{"bench": "S2"}`, `{"bench": "S2", "lb": true}`} {
		if code, er = postEstimate(t, ts, body); code != http.StatusOK || er.Source != SourceTwin {
			t.Fatalf("%s: HTTP %d source %q", body, code, er.Source)
		}
	}
	if got := s.Executions(); got != calibrated {
		t.Errorf("in-envelope estimates simulated: executions %d -> %d", calibrated, got)
	}

	st := serveStats(t, ts)
	if !st.Twin.Enabled || st.Twin.Hits < 3 || st.Twin.Models != 1 {
		t.Errorf("twin stats = %+v, want enabled, >=3 hits, 1 model", st.Twin)
	}
}

// TestEstimateFallsBackOutOfEnvelope is the acceptance demonstration: a
// query outside the calibrated envelope must answer from a real
// simulation, say so (source "sim", in_envelope false), and carry the
// refusal reason alongside the ground-truth number.
func TestEstimateFallsBackOutOfEnvelope(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a twin model and runs a fallback simulation")
	}
	ts, s, _ := newServerAt(t, t.TempDir(), fastTwinOpts())

	if code, er := postEstimate(t, ts, `{"bench": "S2"}`); code != http.StatusOK || er.Source != SourceTwin {
		t.Fatalf("warm-up estimate: HTTP %d %+v", code, er)
	}
	calibrated := s.Executions()

	// 1 MB L1 is far outside the [32, 64] KB anchor range.
	code, er := postEstimate(t, ts, `{"bench": "S2", "l1_kb": 1024}`)
	if code != http.StatusOK {
		t.Fatalf("fallback estimate HTTP %d: %+v", code, er)
	}
	if er.Source != SourceSim || er.InEnvelope {
		t.Fatalf("out-of-envelope query answered as %+v, want source sim", er)
	}
	if er.Reason == "" {
		t.Error("fallback response must carry the out-of-envelope reason")
	}
	if er.IPC <= 0 {
		t.Errorf("fallback IPC = %v, want a simulated value", er.IPC)
	}
	if er.Lo != 0 || er.Hi != 0 {
		t.Errorf("simulated answers carry no band, got [%v, %v]", er.Lo, er.Hi)
	}
	if got := s.Executions(); got != calibrated+1 {
		t.Errorf("fallback ran %d simulation(s), want exactly 1", got-calibrated)
	}
	if st := serveStats(t, ts); st.Twin.Fallbacks != 1 {
		t.Errorf("fallback counter = %d, want 1", st.Twin.Fallbacks)
	}
}

// TestEstimateTwinDisabled: with the tier off, every estimate is a full
// simulation and the response says why.
func TestEstimateTwinDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	ts, s, _ := newServerAt(t, t.TempDir(), Options{Windows: 1})

	code, er := postEstimate(t, ts, `{"bench": "S2"}`)
	if code != http.StatusOK || er.Source != SourceSim {
		t.Fatalf("HTTP %d %+v, want a simulated answer", code, er)
	}
	if !strings.Contains(er.Reason, "disabled") {
		t.Errorf("reason %q does not say the tier is disabled", er.Reason)
	}
	if s.Executions() != 1 {
		t.Errorf("executions = %d, want 1", s.Executions())
	}
}

func TestEstimateValidation(t *testing.T) {
	ts, _, _ := newServerAt(t, t.TempDir(), fastTwinOpts())
	for name, body := range map[string]string{
		"unknown bench":   `{"bench": "NOPE"}`,
		"swl on lb arm":   `{"bench": "S2", "lb": true, "swl_limit": 2}`,
		"vtt without lb":  `{"bench": "S2", "vtt_parts": 4}`,
		"negative axis":   `{"bench": "S2", "l1_kb": -1}`,
		"unknown field":   `{"bench": "S2", "bogus": 1}`,
		"windows too big": `{"bench": "S2", "windows": 20000}`,
	} {
		if code, _ := postEstimate(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		}
	}
}

// TestTwinModeSweep: a mode:"twin" sweep answers the calibrated arms from
// the model (banded, no Result payload) and simulates everything else.
func TestTwinModeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrates a twin model")
	}
	ts, _, _ := newServerAt(t, t.TempDir(), fastTwinOpts())

	code, js := submit(t, ts, SweepRequest{
		Benches: []string{"S2"},
		Schemes: []string{"baseline", "linebacker", "pcal"},
		Mode:    ModeTwin,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit HTTP %d: %+v", code, js)
	}
	done := waitDone(t, ts, js.ID, 2*time.Minute)
	if len(done.Points) != 3 {
		t.Fatalf("%d points, want 3", len(done.Points))
	}
	for _, p := range done.Points {
		if p.State != PointOK {
			t.Fatalf("point %s/%s state %s: %+v", p.Bench, p.Scheme, p.State, p.Error)
		}
		switch p.Scheme {
		case "baseline", "linebacker":
			if p.Source != SourceTwin {
				t.Errorf("%s source = %q, want twin", p.Scheme, p.Source)
			}
			if !(p.Lo > 0 && p.Lo <= p.IPC && p.IPC <= p.Hi) {
				t.Errorf("%s band [%v, %v] does not bracket %v", p.Scheme, p.Lo, p.Hi, p.IPC)
			}
			if p.Result != nil {
				t.Errorf("%s: twin points carry no cycle-level Result", p.Scheme)
			}
		case "pcal":
			if p.Source != SourceSim || p.Result == nil {
				t.Errorf("pcal source = %q result %v, want a simulated point", p.Source, p.Result != nil)
			}
		}
	}
}

// TestModeTicketCompatibility: mode "sim" is the default tier spelled out,
// so it must hash to the ticket pre-mode clients already hold; mode "twin"
// asks for different behaviour and must not collide with it.
func TestModeTicketCompatibility(t *testing.T) {
	plain, err := canonicalize(SweepRequest{Benches: []string{"S2"}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	simMode, err := canonicalize(SweepRequest{Benches: []string{"S2"}, Mode: ModeSim}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ticketID(plain) != ticketID(simMode) {
		t.Error(`mode "sim" changed the ticket of a default request`)
	}
	twinMode, err := canonicalize(SweepRequest{Benches: []string{"S2"}, Mode: ModeTwin}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ticketID(plain) == ticketID(twinMode) {
		t.Error(`mode "twin" must not share the default-mode ticket`)
	}
	if _, err := canonicalize(SweepRequest{Mode: "bogus"}, 3); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestEstimateRejectsWhileDraining mirrors submit's drain behaviour.
func TestEstimateRejectsWhileDraining(t *testing.T) {
	ts, s, _ := newServerAt(t, t.TempDir(), fastTwinOpts())
	s.draining.Store(true)
	code, _ := postEstimate(t, ts, `{"bench": "S2"}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("estimate while draining: HTTP %d, want 503", code)
	}
	s.draining.Store(false)
}
