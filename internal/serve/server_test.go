package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/store"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// newServerAt builds a server over dir and serves it via httptest. The
// returned shutdown is idempotent; it is also registered as cleanup.
func newServerAt(t *testing.T, dir string, opts Options) (*httptest.Server, *Server, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{LeasePoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, opts)
	ts := httptest.NewServer(s.Handler())
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			s.Drain(ctx)
			ts.Close()
			if err := st.Close(); err != nil {
				t.Errorf("closing store: %v", err)
			}
		})
	}
	t.Cleanup(shutdown)
	return ts, s, shutdown
}

func submit(t *testing.T, ts *httptest.Server, req SweepRequest) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil && resp.StatusCode < 400 {
		t.Fatalf("decoding submit response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, js
}

// waitDone polls the result endpoint until the job is done and returns the
// full result payload.
func waitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var js JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&js)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("decoding result (HTTP %d): %v", resp.StatusCode, derr)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return js
		case http.StatusAccepted:
		default:
			t.Fatalf("result endpoint returned HTTP %d: %+v", resp.StatusCode, js)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s not done after %v: %+v", id, timeout, js)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCanonicalizeAndTicket(t *testing.T) {
	names := workload.Names()
	all, err := canonicalize(SweepRequest{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Benches) != len(names) || all.Windows != 3 || len(all.Schemes) != 1 || all.Schemes[0] != "baseline" {
		t.Fatalf("empty request canonicalized to %+v", all)
	}
	// The ticket is order- and duplicate-insensitive: equivalent requests
	// from different clients share one job.
	a, err := canonicalize(SweepRequest{Benches: []string{names[1], names[0], names[1]}, Windows: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := canonicalize(SweepRequest{Benches: []string{names[0], names[1]}, Windows: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ticketID(a) != ticketID(b) {
		t.Fatal("equivalent requests produced different tickets")
	}
	if ticketID(a) == ticketID(all) {
		t.Fatal("different requests produced the same ticket")
	}

	bad := []SweepRequest{
		{Benches: []string{"no-such-bench"}},
		{Schemes: []string{"no-such-scheme"}},
		{Windows: 10001},
		{Windows: -1},
		{Chaos: "panic:sm"},
		{DeadlineMs: -5},
	}
	for _, req := range bad {
		if _, err := canonicalize(req, 3); err == nil {
			t.Errorf("canonicalize accepted invalid request %+v", req)
		}
	}
}

func TestRunWithRetry(t *testing.T) {
	transient := &harness.RunError{Bench: "S2", Phase: harness.PhaseRun,
		Err: fmt.Errorf("boom: %w", harness.ErrWatchdog)}
	permanent := &harness.RunError{Bench: "S2", Phase: harness.PhaseSetup,
		Err: fmt.Errorf("bad: %w", harness.ErrBadConfig)}
	pol := RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	j := newJitter(1)

	// Transient failures retry up to Attempts, then succeed mid-way.
	calls := 0
	res, attempts, err := runWithRetry(context.Background(), pol, j,
		func(context.Context) (*sim.Result, error) {
			calls++
			if calls < 3 {
				return nil, transient
			}
			return &sim.Result{Cycles: 1, Instructions: 1}, nil
		})
	if err != nil || attempts != 3 || res == nil {
		t.Fatalf("transient retry: res=%v attempts=%d err=%v", res, attempts, err)
	}

	// Exhaustion returns the last transient error.
	calls = 0
	_, attempts, err = runWithRetry(context.Background(), pol, j,
		func(context.Context) (*sim.Result, error) { calls++; return nil, transient })
	if !errors.Is(err, harness.ErrWatchdog) || attempts != 3 || calls != 3 {
		t.Fatalf("exhaustion: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// Deterministic failures never retry: re-running a pure function of
	// its inputs cannot change the answer.
	calls = 0
	_, attempts, err = runWithRetry(context.Background(), pol, j,
		func(context.Context) (*sim.Result, error) { calls++; return nil, permanent })
	if !errors.Is(err, harness.ErrBadConfig) || attempts != 1 || calls != 1 {
		t.Fatalf("permanent: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	// A cancelled context stops the backoff loop immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, attempts, err = runWithRetry(ctx, RetryPolicy{Attempts: 5, BaseDelay: time.Hour}, j,
		func(context.Context) (*sim.Result, error) { return nil, transient })
	if attempts != 1 || err == nil {
		t.Fatalf("cancelled backoff: attempts=%d err=%v", attempts, err)
	}
}

func TestSubmitRoundtripAndConcurrentDedup(t *testing.T) {
	names := workload.Names()
	ts, s, _ := newServerAt(t, t.TempDir(), Options{Windows: 2})
	req := SweepRequest{Benches: names[:2], Windows: 2}

	// The acceptance criterion: N clients concurrently requesting the same
	// sweep share one ticket and cost exactly one execution per point.
	const clients = 6
	ids := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, js := submit(t, ts, req)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("client %d: HTTP %d", i, code)
			}
			ids[i] = js.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("identical requests got different tickets: %v", ids)
		}
	}

	final := waitDone(t, ts, ids[0], 2*time.Minute)
	if len(final.Points) != 2 || final.Counts[PointOK] != 2 {
		t.Fatalf("final state %+v", final)
	}
	for _, p := range final.Points {
		if p.Result == nil || p.IPC <= 0 || p.Error != nil {
			t.Fatalf("point %s/%s incomplete: %+v", p.Bench, p.Scheme, p)
		}
	}
	if got := s.Executions(); got != 2 {
		t.Fatalf("%d clients × 2 points cost %d executions, want exactly 2", clients, got)
	}

	// Status endpoint agrees; stats expose the executions and store size.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if js.State != StateDone {
		t.Fatalf("status endpoint: %+v", js)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Executions != 2 || stats.StoreEntries != 2 || stats.Jobs[StateDone] != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _, _ := newServerAt(t, t.TempDir(), Options{Windows: 2})
	for _, req := range []SweepRequest{
		{Benches: []string{"nope"}},
		{Schemes: []string{"nope"}},
		{Chaos: "bogus:1"},
	} {
		if code, _ := submit(t, ts, req); code != http.StatusBadRequest {
			t.Errorf("invalid request %+v got HTTP %d, want 400", req, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body got HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/sweeps/sw-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ticket got HTTP %d, want 404", resp.StatusCode)
	}
}

func TestAdmissionControlQueueFull(t *testing.T) {
	// One worker, one queue slot, six distinct jobs submitted faster than
	// any can finish: by pigeonhole at least one submit must be turned
	// away with 429 + Retry-After. Backpressure is the client's signal.
	ts, _, _ := newServerAt(t, t.TempDir(), Options{Windows: 2, QueueDepth: 1, JobWorkers: 1})
	rejected := 0
	for w := 2; w <= 7; w++ {
		code, _ := submit(t, ts, SweepRequest{Benches: []string{"S2"}, Windows: w})
		switch code {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("submit windows=%d: HTTP %d", w, code)
		}
	}
	if rejected == 0 {
		t.Fatal("6 instant submits through a 1-deep queue produced no 429")
	}

	// The 429 carries Retry-After.
	body, err := json.Marshal(SweepRequest{Benches: []string{"S2"}, Windows: 9})
	if err != nil {
		t.Fatal(err)
	}
	for {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
			return
		}
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			// Queue drained before we hit it again — the earlier 429
			// already proved admission control; accept and stop.
			return
		}
		t.Fatalf("unexpected HTTP %d", resp.StatusCode)
	}
}

func TestDeadlinePropagatesAndNeverRetries(t *testing.T) {
	ts, s, _ := newServerAt(t, t.TempDir(), Options{Windows: 2})
	// 50 windows is far more simulation than 1 ms allows: the deadline
	// must abort the run via sim.GPU.RunCtx, fail the point with kind
	// "deadline", and — a caller-owned failure — never retry.
	code, js := submit(t, ts, SweepRequest{Benches: []string{"S2"}, Windows: 50, DeadlineMs: 1})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := waitDone(t, ts, js.ID, time.Minute)
	p := final.Points[0]
	if p.State != PointFailed || p.Error == nil {
		t.Fatalf("deadline point %+v", p)
	}
	if p.Error.Kind != "deadline" || p.Error.Transient || p.Attempts != 1 {
		t.Fatalf("deadline failure misclassified: %+v", p.Error)
	}
	if s.Executions() > 1 {
		t.Fatalf("deadline failure was retried (%d executions)", s.Executions())
	}
}

func TestDrainRejectsQueuedFinishesInflight(t *testing.T) {
	names := workload.Names()
	ts, s, _ := newServerAt(t, t.TempDir(), Options{Windows: 2, QueueDepth: 2, JobWorkers: 1})

	// Job A is big enough to still be running when we drain; B sits queued
	// behind the single worker.
	codeA, jsA := submit(t, ts, SweepRequest{Benches: names, Windows: 3})
	if codeA != http.StatusAccepted {
		t.Fatalf("submit A: HTTP %d", codeA)
	}
	codeB, jsB := submit(t, ts, SweepRequest{Benches: []string{"S2"}, Windows: 4})
	if codeB != http.StatusAccepted {
		t.Fatalf("submit B: HTTP %d", codeB)
	}

	repCh := make(chan DrainReport, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		repCh <- s.Drain(ctx)
	}()

	// While draining: not ready, and new submits are refused with the
	// resumable-ticket message.
	waitFor(t, 10*time.Second, func() bool { return s.draining.Load() })
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: HTTP %d, want 503", resp.StatusCode)
	}
	codeC, jsC := submit(t, ts, SweepRequest{Benches: []string{"S2"}, Windows: 5})
	if codeC != http.StatusServiceUnavailable || jsC.State != StateRejected {
		t.Fatalf("submit during drain: HTTP %d %+v", codeC, jsC)
	}

	rep := <-repCh
	if rep.TimedOut {
		t.Fatal("drain timed out waiting for the in-flight job")
	}
	// A (in-flight) finished and committed; B (queued) was rejected with a
	// resumable ticket. Which job the worker picked first is scheduling —
	// between them there must be exactly one of each terminal state.
	stateA, _, pointsA := getJob(s, jsA.ID).snapshot()
	stateB, reasonB, _ := getJob(s, jsB.ID).snapshot()
	if stateA != StateDone || stateB != StateRejected {
		t.Fatalf("after drain: A=%s B=%s, want done/rejected", stateA, stateB)
	}
	if !strings.Contains(reasonB, "resubmit") {
		t.Fatalf("rejected job carries no resume hint: %q", reasonB)
	}
	if rep.Rejected != 1 {
		t.Fatalf("drain rejected %d jobs, want 1", rep.Rejected)
	}
	for _, p := range pointsA {
		if p.State != PointOK {
			t.Fatalf("in-flight job lost point %s/%s: %+v", p.Bench, p.Scheme, p)
		}
	}
	// Liveness outlives readiness.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: HTTP %d", resp.StatusCode)
	}
}

func getJob(s *Server, id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRestartResumesFromStore(t *testing.T) {
	names := workload.Names()
	dir := t.TempDir()
	req := SweepRequest{Benches: names[:3], Windows: 2}

	ts1, s1, shutdown1 := newServerAt(t, dir, Options{Windows: 2})
	_, js := submit(t, ts1, req)
	first := waitDone(t, ts1, js.ID, 2*time.Minute)
	if s1.Executions() != 3 {
		t.Fatalf("first server executed %d points, want 3", s1.Executions())
	}
	shutdown1()

	// A restarted server over the same store directory serves the whole
	// sweep without a single simulation.
	ts2, s2, _ := newServerAt(t, dir, Options{Windows: 2})
	_, js2 := submit(t, ts2, req)
	if js2.ID != js.ID {
		t.Fatalf("restart changed the ticket: %s vs %s", js2.ID, js.ID)
	}
	second := waitDone(t, ts2, js2.ID, 2*time.Minute)
	if s2.Executions() != 0 {
		t.Fatalf("restarted server re-simulated %d completed points", s2.Executions())
	}
	for i, p := range second.Points {
		q := first.Points[i]
		if p.Bench != q.Bench || p.IPC != q.IPC {
			t.Fatalf("restart changed point %d: %+v vs %+v", i, p, q)
		}
	}
}

func TestStreamEmitsPointsThenDone(t *testing.T) {
	ts, _, _ := newServerAt(t, t.TempDir(), Options{Windows: 2})
	_, js := submit(t, ts, SweepRequest{Benches: []string{"S2"}, Windows: 2})

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + js.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	points, done := 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		switch line := sc.Text(); line {
		case "event: point":
			points++
		case "event: done":
			done = true
		}
		if done {
			break
		}
	}
	if points != 1 || !done {
		t.Fatalf("stream emitted %d point events, done=%v", points, done)
	}
}

func TestChaosThroughServerMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden sweep through the server in -short mode")
	}
	golden, err := check.LoadSnapshot("../check/testdata/golden.json")
	if err != nil {
		t.Fatal(err)
	}
	names := workload.Names()
	victim := names[0]

	ts, _, _ := newServerAt(t, t.TempDir(), Options{
		Windows: 3, // golden capture length
		Retry:   RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	// One request, all benchmarks, one bench-scoped fault: the victim
	// panics deterministically; every other point must be bit-identical to
	// the golden snapshot even though chaos is armed in its config.
	code, js := submit(t, ts, SweepRequest{Chaos: "panic:sm:1000,bench:" + victim})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := waitDone(t, ts, js.ID, 5*time.Minute)
	if len(final.Points) != len(names) {
		t.Fatalf("%d points, want %d", len(final.Points), len(names))
	}
	for _, p := range final.Points {
		if p.Bench == victim {
			if p.State != PointFailed || p.Error == nil {
				t.Fatalf("victim %s did not fail: %+v", victim, p)
			}
			if p.Error.Kind != "panic" || !p.Error.Transient {
				t.Fatalf("victim failure misclassified: %+v", p.Error)
			}
			if p.Attempts != 2 {
				t.Fatalf("transient victim retried %d times, want the policy's 2", p.Attempts)
			}
			if !strings.Contains(p.Error.Message, "chaos: injected panic") {
				t.Fatalf("victim error lost the injected-panic message: %q", p.Error.Message)
			}
			continue
		}
		if p.State != PointOK || p.Result == nil {
			t.Fatalf("clean point %s failed: %+v", p.Bench, p)
		}
		want, ok := golden.Entries[p.Bench+"|baseline"]
		if !ok {
			t.Fatalf("golden snapshot has no entry for %s|baseline", p.Bench)
		}
		if got := check.MetricsOf(p.Result); got != want {
			t.Errorf("%s: metrics through the server diverged from golden\n  golden %+v\n  got    %+v",
				p.Bench, want, got)
		}
	}
}
