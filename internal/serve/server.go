package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	linebacker "github.com/linebacker-sim/linebacker"
	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/store"
	"github.com/linebacker-sim/linebacker/internal/twin"
)

// newScheme resolves a policy spec through the public registry, so the
// service accepts exactly the scheme names the CLIs accept.
func newScheme(spec string) (sim.Policy, error) { return linebacker.NewScheme(spec) }

// Options configures a Server. The zero value is usable: fast 4-SM
// experiment machine, 3-window runs, a small queue, default retry.
type Options struct {
	// Windows is the run length applied when a request omits windows
	// (default 3 — the acceptance-test run length).
	Windows int
	// QueueDepth bounds the admission queue; a submit that finds the queue
	// full is rejected with 429 + Retry-After instead of queueing unbounded
	// work behind a bounded simulator (default 4).
	QueueDepth int
	// JobWorkers is how many jobs execute concurrently (default 2). Points
	// within a job already fan out through the runner's bounded sweep pool,
	// so this bounds head-of-line blocking, not CPU use.
	JobWorkers int
	// Retry is the transient-failure retry policy.
	Retry RetryPolicy
	// Seed seeds the backoff jitter PRNG (default 1).
	Seed uint64
	// RunTimeout bounds one simulation's wall-clock time (0 = none).
	RunTimeout time.Duration
	// WatchdogTick enables the no-forward-progress watchdog (0 = off).
	WatchdogTick time.Duration
	// Twin enables the analytical cheap-query tier: /v1/estimate answers
	// in-envelope from calibrated models, and mode:"twin" sweeps answer
	// twin-eligible points without simulating. Disabled at the zero value —
	// out-of-envelope queries and all sweeps then run the full simulator.
	Twin bool
	// TwinCal sets the calibration axes and band parameters (zero value:
	// twin defaults).
	TwinCal twin.Options
}

func (o Options) withDefaults() Options {
	if o.Windows <= 0 {
		o.Windows = 3
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.JobWorkers <= 0 {
		o.JobWorkers = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// Server executes sweep jobs over a persistent result store. It owns one
// store-backed harness.Runner per (windows, paper) pair — harness memo
// fingerprints exclude the run length, so runners are never shared across
// window counts and every memo key carries a "w=N" discriminator.
type Server struct {
	opts  Options
	store *store.Store
	jit   *jitter

	mu      sync.Mutex
	runners map[runnerKey]*harness.Runner
	jobs    map[string]*Job
	twins   map[runnerKey]*twin.Cache

	queue    chan *Job
	quit     chan struct{}
	quitOnce sync.Once
	workers  sync.WaitGroup
	inflight sync.WaitGroup
	draining atomic.Bool

	// estSem bounds how many /v1/estimate requests may be touching the
	// simulator (calibration or fallback) at once.
	estSem        chan struct{}
	twinHits      atomic.Int64
	twinFallbacks atomic.Int64
}

type runnerKey struct {
	windows int
	paper   bool
}

// New builds a server over the store and starts its job workers. The
// caller owns the store's lifetime; the server never closes it.
func New(st *store.Store, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		store:   st,
		jit:     newJitter(opts.Seed),
		runners: map[runnerKey]*harness.Runner{},
		jobs:    map[string]*Job{},
		twins:   map[runnerKey]*twin.Cache{},
		queue:   make(chan *Job, opts.QueueDepth),
		quit:    make(chan struct{}),
		estSem:  make(chan struct{}, opts.JobWorkers),
	}
	for i := 0; i < opts.JobWorkers; i++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for {
				select {
				case <-s.quit:
					return
				case job := <-s.queue:
					s.runJob(job)
				}
			}
		}()
	}
	return s
}

// runnerFor returns (lazily building) the runner for one machine shape.
func (s *Server) runnerFor(windows int, paper bool) *harness.Runner {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := runnerKey{windows, paper}
	if r, ok := s.runners[k]; ok {
		return r
	}
	cfg := harness.BenchConfig()
	if paper {
		cfg = harness.PaperConfig()
	}
	r := harness.NewRunner(cfg, windows)
	r.Timeout = s.opts.RunTimeout
	r.WatchdogTick = s.opts.WatchdogTick
	r.AttachStore(s.store)
	s.runners[k] = r
	return r
}

// Executions sums actual simulations across all runners — what the
// dedup/crash-recovery acceptance tests assert on.
func (s *Server) Executions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, r := range s.runners {
		total += r.Executions()
	}
	return total
}

// runJob executes every point of one admitted job. In-flight jobs always
// run to completion — drain waits for them, and every finished point is
// already committed to the store, so even a job cut short by process death
// resumes from its last completed point.
func (s *Server) runJob(job *Job) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	job.setState(StateRunning, "")
	r := s.runnerFor(job.Req.Windows, job.Req.Paper)

	_, _, points := job.snapshot()
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int, p Point) {
			defer wg.Done()
			s.runPoint(r, job, i, p)
		}(i, points[i])
	}
	wg.Wait()
	job.setState(StateDone, "")
}

// runPoint executes one (bench, scheme) cell under the retry policy and
// publishes its outcome on the job.
func (s *Server) runPoint(r *harness.Runner, job *Job, i int, p Point) {
	p.State = PointRunning
	job.setPoint(i, p)

	fail := func(attempts int, err error) {
		p.State, p.Attempts = PointFailed, attempts
		pe := &PointError{Message: err.Error(), Kind: harness.FailureKind(err),
			Transient: harness.Transient(err)}
		var re *harness.RunError
		if errors.As(err, &re) {
			pe.Phase, pe.Cycle = re.Phase, re.Cycle
		}
		p.Error = pe
		job.setPoint(i, p)
	}

	cfg := r.Cfg
	ch, err := chaos.ParseSpec(job.Req.Chaos)
	if err != nil { // validated at submit; defensive
		fail(0, err)
		return
	}
	cfg.Chaos = ch
	pol, err := newScheme(p.Scheme)
	if err != nil { // validated at submit; defensive
		fail(0, err)
		return
	}

	ctx := context.Background()
	if job.Req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	// mode:"twin" jobs try the analytical tier first; anything it cannot
	// answer in-envelope falls through to the simulator below.
	if s.tryTwinPoint(ctx, r, job, i, p) {
		return
	}
	// The run length is deliberately in the cfgKey: harness fingerprints
	// exclude Windows, so "w=N" keeps 3-window and 8-window runs of the
	// same machine from aliasing one store entry.
	cfgKey := fmt.Sprintf("serve|w=%d|%s", job.Req.Windows, p.Scheme)
	res, attempts, err := runWithRetry(ctx, s.opts.Retry, s.jit,
		func(ctx context.Context) (*sim.Result, error) {
			return r.RunCfg(ctx, cfg, cfgKey, p.Bench, pol)
		})
	if err != nil {
		fail(attempts, err)
		return
	}
	p.State, p.Attempts, p.Result, p.IPC = PointOK, attempts, res, res.IPC()
	p.Source = SourceSim
	p.Error = nil
	job.setPoint(i, p)
}

// DrainReport summarises a graceful shutdown.
type DrainReport struct {
	// Rejected counts queued-but-unstarted jobs turned away with their
	// resumable tickets.
	Rejected int `json:"rejected"`
	// TimedOut is true when ctx expired before every in-flight job
	// finished; completed points are committed either way.
	TimedOut bool `json:"timed_out"`
}

// Drain gracefully shuts the server down: new submits are refused (503),
// queued jobs are rejected with resumable tickets — the store already
// holds every completed point, so resubmitting the same request after a
// restart only pays for what never ran — and in-flight jobs are given
// until ctx expires to finish and commit.
func (s *Server) Drain(ctx context.Context) DrainReport {
	s.draining.Store(true)
	s.quitOnce.Do(func() { close(s.quit) })

	var rep DrainReport
	for {
		select {
		case job := <-s.queue:
			job.setState(StateRejected,
				"server draining; completed points are stored — resubmit the same request to resume")
			rep.Rejected++
			continue
		default:
		}
		break
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		rep.TimedOut = true
	}
	return rep
}

// Handler returns the HTTP API:
//
//	POST /v1/sweeps             submit (202 accepted / 200 already known /
//	                            400 invalid / 429 queue full / 503 draining)
//	GET  /v1/sweeps/{id}        status summary
//	GET  /v1/sweeps/{id}/result full results (202 until done)
//	GET  /v1/sweeps/{id}/stream SSE progress events
//	POST /v1/estimate           one configuration query: twin when
//	                            in-envelope, simulation fallback otherwise
//	GET  /v1/stats              executions, store, job and twin counters
//	GET  /healthz               liveness (always 200)
//	GET  /readyz                readiness (503 while draining or store-sick)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

// JobStatus is the wire shape of a job summary.
type JobStatus struct {
	ID     string         `json:"id"`
	State  string         `json:"state"`
	Reason string         `json:"reason,omitempty"`
	Counts map[string]int `json:"counts"`
	Points []Point        `json:"points,omitempty"`
}

func statusOf(j *Job, withPoints bool) JobStatus {
	state, reason, points := j.snapshot()
	out := JobStatus{ID: j.ID, State: state, Reason: reason, Counts: counts(points)}
	if withPoints {
		out.Points = points
	}
	return out
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	canon, err := canonicalize(req, s.opts.Windows)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := ticketID(canon)

	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, JobStatus{
			ID: id, State: StateRejected,
			Reason: "server draining; resubmit this request after restart — completed points are stored",
		})
		return
	}

	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, statusOf(existing, false))
		return
	}
	job := newJob(id, canon)
	select {
	case s.queue <- job:
		s.jobs[id] = job
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, statusOf(job, false))
	default:
		s.mu.Unlock()
		// Admission control: the queue is the only unbounded-growth point
		// of a long-lived service, so it is bounded and overflow is the
		// client's signal to back off — not the server's signal to buffer.
		w.Header().Set("Retry-After", strconv.Itoa(1+s.opts.QueueDepth))
		writeError(w, http.StatusTooManyRequests, "sweep queue full; retry later")
	}
}

// lookup resolves {id}; a miss writes 404 and returns nil.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "unknown sweep "+id)
	}
	return job
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		writeJSON(w, http.StatusOK, statusOf(job, false))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	switch state, _, _ := job.snapshot(); state {
	case StateDone:
		writeJSON(w, http.StatusOK, statusOf(job, true))
	case StateRejected:
		writeJSON(w, http.StatusConflict, statusOf(job, false))
	default:
		writeJSON(w, http.StatusAccepted, statusOf(job, false))
	}
}

// handleStream emits server-sent events: one "point" event per completed
// point, then a final "done" event with the job summary.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sent := map[int]bool{}
	emit := func() bool {
		state, _, points := job.snapshot()
		for i, p := range points {
			if sent[i] || (p.State != PointOK && p.State != PointFailed) {
				continue
			}
			sent[i] = true
			// Stream frames are compact: full results stay on the
			// /result endpoint.
			p.Result = nil
			data, err := json.Marshal(p)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: point\ndata: %s\n\n", data)
		}
		if state == StateDone || state == StateRejected {
			data, err := json.Marshal(statusOf(job, false))
			if err == nil {
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			}
			fl.Flush()
			return true
		}
		fl.Flush()
		return false
	}

	ticker := time.NewTicker(50 * time.Millisecond)
	defer ticker.Stop()
	for {
		if emit() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
		case <-ticker.C:
		}
	}
}

// Stats is the wire shape of /v1/stats.
type Stats struct {
	Executions   int64            `json:"executions"`
	StoreEntries int              `json:"store_entries"`
	StoreLoad    store.LoadReport `json:"store_load"`
	Jobs         map[string]int   `json:"jobs"`
	Draining     bool             `json:"draining"`
	Twin         TwinStats        `json:"twin"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := map[string]int{}
	for _, j := range s.jobs {
		state, _, _ := j.snapshot()
		jobs[state]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Stats{
		Executions:   s.Executions(),
		StoreEntries: s.store.Len(),
		StoreLoad:    s.store.Report(),
		Jobs:         jobs,
		Draining:     s.draining.Load(),
		Twin: TwinStats{
			Enabled:   s.opts.Twin,
			Hits:      s.twinHits.Load(),
			Fallbacks: s.twinFallbacks.Load(),
			Models:    s.twinModels(),
		},
	})
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if err := s.store.Err(); err != nil {
		// A sticky store write error means results can no longer be made
		// durable: stop admitting traffic rather than serve amnesia.
		writeError(w, http.StatusServiceUnavailable, "store unhealthy: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, "encode: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(data) //lbvet:errok — client gone mid-response; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
