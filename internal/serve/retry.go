package serve

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"

	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// RetryPolicy governs how the server re-runs transiently-failed points.
// Deterministic failures (bad configs, unknown benchmarks, client deadlines)
// are never retried regardless of the policy: re-running a pure function of
// its inputs cannot change the answer, and retrying would only mask the
// class of bug this simulator is built to expose (DESIGN.md §10).
type RetryPolicy struct {
	// Attempts is the maximum number of executions per point (default 3;
	// 1 disables retry).
	Attempts int
	// BaseDelay is the first backoff step; step n waits
	// BaseDelay << n, jittered ±50%, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// jitter is a seeded, mutex-guarded PRNG: backoff spreads competing
// retriers apart, and a fixed seed keeps test runs reproducible.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter(seed uint64) *jitter {
	return &jitter{rng: rand.New(rand.NewPCG(seed, seed^0x6c62272e07bb0142))}
}

// delay returns the backoff before retry attempt n (n = 1 is the first
// retry): BaseDelay << (n-1), jittered to [50%, 150%], capped at MaxDelay.
func (j *jitter) delay(p RetryPolicy, n int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	j.mu.Lock()
	f := 0.5 + j.rng.Float64() // [0.5, 1.5)
	j.mu.Unlock()
	d = time.Duration(float64(d) * f)
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

// runWithRetry drives fn under the retry policy. Only failures that
// harness.Transient classifies as transient are retried; everything else —
// including a context cancellation that arrives during backoff — returns
// immediately. It reports the result, the number of attempts actually made,
// and the final error.
func runWithRetry(ctx context.Context, p RetryPolicy, j *jitter,
	fn func(ctx context.Context) (*sim.Result, error)) (*sim.Result, int, error) {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		var res *sim.Result
		res, err = fn(ctx)
		if err == nil {
			return res, attempt, nil
		}
		if attempt >= p.Attempts || !harness.Transient(err) {
			return nil, attempt, err
		}
		select {
		case <-time.After(j.delay(p, attempt)):
		case <-ctx.Done():
			return nil, attempt, err
		}
	}
}
