// Package serve turns the fault-tolerant sweep harness into a long-lived,
// crash-safe, backpressured HTTP service. Clients submit sweep requests
// (benchmarks × schemes), poll or stream progress, and fetch results; the
// server executes every point through a store-backed harness.Runner, so
//
//   - overlapping requests from any number of clients cost one simulation
//     per distinct point (in-process single-flight + the store's
//     cross-process lease),
//   - every completed point is committed (CRC-framed, fsynced) before a
//     client can observe it, so a kill -9 loses at most in-flight work,
//   - transient failures (watchdog kills, chaos faults) retry with
//     exponential backoff + jitter, while deterministic failures
//     (ErrBadConfig, unknown benchmarks) surface immediately and are
//     never retried — retries must never mask nondeterminism
//     (DESIGN.md §12).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// SweepRequest is the submit body. The zero value of every field has a
// server-side default, so `{}` is a valid request (all benchmarks,
// baseline, default windows).
type SweepRequest struct {
	// Benches lists Table 2 benchmark codes; empty or ["all"] expands to
	// every benchmark.
	Benches []string `json:"benches,omitempty"`
	// Schemes lists policy specs as linebacker.NewScheme accepts them
	// ("baseline", "linebacker", "pcal", "swl:4", ...); default
	// ["baseline"].
	Schemes []string `json:"schemes,omitempty"`
	// Windows is the run length in monitoring windows (default: the
	// server's -windows flag).
	Windows int `json:"windows,omitempty"`
	// Paper selects the full Table 1 machine instead of the fast 4-SM
	// experiment configuration.
	Paper bool `json:"paper,omitempty"`
	// Chaos is a fault-injection spec (internal/chaos syntax). With a
	// bench:<name> directive the spec faults exactly that point and
	// leaves every other point of the sweep fault-free.
	Chaos string `json:"chaos,omitempty"`
	// DeadlineMs bounds each point's wall-clock time; the deadline is
	// propagated into sim.GPU.RunCtx, so an expired point aborts at the
	// next cancellation checkpoint. Deadline expiry is a caller-owned
	// failure and is never retried.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Mode selects the execution tier: "" or "sim" runs every point on the
	// cycle-level simulator; "twin" answers twin-eligible points (baseline
	// and linebacker arms, chaos-free) from the calibrated analytical model
	// and simulates the rest. "sim" canonicalises to "", so the ticket of
	// every pre-twin request is unchanged.
	Mode string `json:"mode,omitempty"`
}

// Sweep execution modes.
const (
	ModeSim  = "sim"
	ModeTwin = "twin"
)

// canonicalize validates req against the registries and normalises it so
// that every equivalent request has one byte representation — the basis of
// the content-addressed ticket.
func canonicalize(req SweepRequest, defaultWindows int) (SweepRequest, error) {
	out := req
	if len(out.Benches) == 0 || (len(out.Benches) == 1 && out.Benches[0] == "all") {
		out.Benches = workload.Names()
	} else {
		seen := map[string]bool{}
		var benches []string
		for _, b := range out.Benches {
			if _, ok := workload.ByName(b); !ok {
				return SweepRequest{}, fmt.Errorf("unknown benchmark %q", b)
			}
			if !seen[b] {
				seen[b] = true
				benches = append(benches, b)
			}
		}
		sort.Strings(benches)
		out.Benches = benches
	}
	if len(out.Schemes) == 0 {
		out.Schemes = []string{"baseline"}
	} else {
		seen := map[string]bool{}
		var schemes []string
		for _, spec := range out.Schemes {
			if _, err := newScheme(spec); err != nil {
				return SweepRequest{}, err
			}
			if !seen[spec] {
				seen[spec] = true
				schemes = append(schemes, spec)
			}
		}
		sort.Strings(schemes)
		out.Schemes = schemes
	}
	if out.Windows == 0 {
		out.Windows = defaultWindows
	}
	if out.Windows < 1 || out.Windows > 10000 {
		return SweepRequest{}, fmt.Errorf("windows %d out of range [1, 10000]", out.Windows)
	}
	if out.DeadlineMs < 0 {
		return SweepRequest{}, fmt.Errorf("negative deadline_ms %d", out.DeadlineMs)
	}
	if _, err := chaos.ParseSpec(out.Chaos); err != nil {
		return SweepRequest{}, err
	}
	switch out.Mode {
	case "", ModeTwin:
	case ModeSim:
		out.Mode = "" // the default tier; normalised so tickets predate the field
	default:
		return SweepRequest{}, fmt.Errorf("unknown mode %q (want sim or twin)", out.Mode)
	}
	return out, nil
}

// ticketID derives the content-addressed job ID: identical canonical
// requests — from any client, any time — share one ticket, one queue slot
// and one set of simulations.
func ticketID(req SweepRequest) string {
	data, err := json.Marshal(req)
	if err != nil {
		// A SweepRequest is plain data; Marshal cannot fail. Keep a
		// defensive distinct-id fallback rather than a panic in a daemon.
		return "sw-unhashable"
	}
	sum := sha256.Sum256(data)
	return "sw-" + hex.EncodeToString(sum[:12])
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateRejected = "rejected" // drained out of the queue; resubmit to resume
)

// Point states.
const (
	PointPending = "pending"
	PointRunning = "running"
	PointOK      = "ok"
	PointFailed  = "failed"
)

// PointError is the structured failure of one sweep point, JSON-shaped for
// clients. Kind mirrors the harness sentinel classes; Transient says
// whether the server's retry policy applied (and was exhausted) or the
// failure was surfaced immediately.
type PointError struct {
	Message   string `json:"message"`
	Kind      string `json:"kind"`
	Phase     string `json:"phase,omitempty"`
	Cycle     int64  `json:"cycle,omitempty"`
	Transient bool   `json:"transient"`
}

// Point is one (bench, scheme) cell of a sweep job. Source says which
// tier produced it ("sim" or "twin"); twin-sourced points carry the
// model's confidence band in [Lo, Hi] and no full Result.
type Point struct {
	Bench    string      `json:"bench"`
	Scheme   string      `json:"scheme"`
	State    string      `json:"state"`
	Attempts int         `json:"attempts,omitempty"`
	IPC      float64     `json:"ipc,omitempty"`
	Source   string      `json:"source,omitempty"`
	Lo       float64     `json:"lo,omitempty"`
	Hi       float64     `json:"hi,omitempty"`
	Result   *sim.Result `json:"result,omitempty"`
	Error    *PointError `json:"error,omitempty"`
}

// Job is one admitted sweep request and its progress. All fields behind mu;
// handlers read snapshots.
type Job struct {
	ID  string
	Req SweepRequest

	mu     sync.Mutex
	state  string
	points []Point
	reason string        // rejection reason, when state == StateRejected
	done   chan struct{} // closed on done or rejected
}

func newJob(id string, req SweepRequest) *Job {
	j := &Job{ID: id, Req: req, state: StateQueued, done: make(chan struct{})}
	for _, b := range req.Benches {
		for _, sc := range req.Schemes {
			j.points = append(j.points, Point{Bench: b, Scheme: sc, State: PointPending})
		}
	}
	return j
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// snapshot copies the mutable state for handlers.
func (j *Job) snapshot() (state, reason string, points []Point) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.reason, append([]Point(nil), j.points...)
}

// setState transitions the job; terminal states close done exactly once.
func (j *Job) setState(state, reason string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone || j.state == StateRejected {
		return
	}
	j.state, j.reason = state, reason
	if state == StateDone || state == StateRejected {
		close(j.done)
	}
}

func (j *Job) setPoint(i int, p Point) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.points[i] = p
}

// counts tallies point states for the status endpoint.
func counts(points []Point) map[string]int {
	out := map[string]int{}
	for _, p := range points {
		out[p.State]++
	}
	return out
}
