package analysis

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestSelectErrors covers every rejection path of the run-set resolver.
func TestSelectErrors(t *testing.T) {
	cases := []struct {
		names, skip string
		wantErr     string
	}{
		{"maprange,maprange", "", "duplicate analyzer"},
		{"maprange, maprange", "", "duplicate analyzer"},
		{"", "errflow,errflow", "duplicate analyzer"},
		{"bogus", "", `unknown analyzer "bogus" in -analyzers`},
		{"", "bogus", `unknown analyzer "bogus" in -skip`},
		{"maprange", "maprange", "both selected and skipped"},
	}
	for _, c := range cases {
		if _, err := Select(c.names, c.skip); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Select(%q, %q) = %v, want error containing %q", c.names, c.skip, err, c.wantErr)
		}
	}
	var everything []string
	for _, a := range Analyzers() {
		everything = append(everything, a.Name)
	}
	if _, err := Select("", strings.Join(everything, ",")); err == nil || !strings.Contains(err.Error(), "excludes every analyzer") {
		t.Errorf("skipping the whole suite should fail, got %v", err)
	}
}

// TestSelectSkip checks -skip subtracts from the full suite.
func TestSelectSkip(t *testing.T) {
	got, err := Select("", "errflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(Analyzers())-1 {
		t.Fatalf("skip of one analyzer left %d of %d", len(got), len(Analyzers()))
	}
	for _, a := range got {
		if a.Name == "errflow" {
			t.Fatal("skipped analyzer still selected")
		}
	}
}

// TestSelectFromCorruptRegistry pins the duplicate-name registry guard.
func TestSelectFromCorruptRegistry(t *testing.T) {
	reg := []*Analyzer{{Name: "dup"}, {Name: "dup"}}
	if _, err := selectFrom(reg, "", ""); err == nil || !strings.Contains(err.Error(), "registry is corrupt") {
		t.Fatalf("duplicate registry names should fail, got %v", err)
	}
}

// TestRelativize pins module-relative rewriting: inside-root paths become
// slash-relative, outside-root and already-relative paths stay untouched,
// and the input slice is not mutated.
func TestRelativize(t *testing.T) {
	root := filepath.Join(string(filepath.Separator), "mod")
	in := []Diagnostic{
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "sim", "a.go"), Line: 3}},
		{Pos: token.Position{Filename: filepath.Join(string(filepath.Separator), "elsewhere", "b.go")}},
		{Pos: token.Position{Filename: "already/relative.go"}},
	}
	out := Relativize(root, in)
	if out[0].Pos.Filename != "internal/sim/a.go" {
		t.Errorf("inside-root: got %q", out[0].Pos.Filename)
	}
	if out[1].Pos.Filename != in[1].Pos.Filename {
		t.Errorf("outside-root path rewritten to %q", out[1].Pos.Filename)
	}
	if out[2].Pos.Filename != "already/relative.go" {
		t.Errorf("relative path rewritten to %q", out[2].Pos.Filename)
	}
	if !filepath.IsAbs(in[0].Pos.Filename) {
		t.Error("Relativize mutated its input")
	}
}
