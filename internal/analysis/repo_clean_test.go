package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoClean runs the full lbvet suite over the whole module: a new
// determinism or accounting violation anywhere in the tree fails `go test
// ./...` even when the CI lbvet step is bypassed. Fix the finding, sort
// the iteration, or justify it with the matching //lbvet directive — see
// DESIGN.md.
//
// The run goes through the incremental cache at <module>/.lbvet-cache
// (gitignored), so after one cold pass this test costs milliseconds: only
// packages whose content or import closure changed are re-analyzed.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, stats, err := RunIncremental(root, []string{"./..."}, Analyzers(), filepath.Join(root, ".lbvet-cache"))
	if err != nil {
		t.Fatalf("incremental run: %v", err)
	}
	if stats.Packages < 15 {
		t.Fatalf("analyzed only %d packages; pattern resolution is missing parts of the module", stats.Packages)
	}
	sawSim := false
	for _, p := range stats.PackagePaths {
		if strings.HasSuffix(p, "/internal/sim") {
			sawSim = true
		}
	}
	if !sawSim {
		t.Fatal("internal/sim not among analyzed packages; scope detection would be vacuous")
	}

	for _, d := range diags {
		t.Errorf("lbvet: %s", d)
	}
}
