package analysis

import (
	"path/filepath"
	"testing"
)

// TestRepoClean runs the full lbvet suite over the whole module: a new
// determinism or accounting violation anywhere in the tree fails `go test
// ./...` even when the CI lbvet step is bypassed. Fix the finding, sort
// the iteration, or justify it with //lbvet:ordered — see DESIGN.md.
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; the loader is missing parts of the module", len(pkgs))
	}
	sawSim := false
	for _, p := range pkgs {
		if p.Types.Name() == "sim" {
			sawSim = true
		}
	}
	if !sawSim {
		t.Fatal("internal/sim not among loaded packages; scope detection would be vacuous")
	}

	for _, d := range Run(loader.Fset, pkgs, Analyzers()) {
		t.Errorf("lbvet: %s", d)
	}
}
