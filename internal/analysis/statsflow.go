package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatsFlow is the static twin of the runtime checker's accounting
// identity: a counter that is incremented but never read can never reach
// ExtraStats, an accessor, or a Result aggregation — the event it counts
// is silently lost to every report. Each such field in a simulation-state
// package is either dead weight or (worse) a metric someone believes is
// being exported.
//
// A field counts as a counter when it is an unexported numeric field of a
// package-local struct and some statement `x.f++` / `x.f += e` bumps it.
// Any read — in ExtraStats, an accessor, an invariant check, a plain
// expression — discharges the obligation; only write-only counters are
// flagged.
var StatsFlow = &Analyzer{
	Name: "statsflow",
	Doc:  "counters incremented but never exported via ExtraStats/Result",
	Run:  runStatsFlow,
}

func runStatsFlow(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}

	// First pass: classify every selector node that is the target of an
	// increment or plain store, so the read scan below can skip them.
	incremented := map[types.Object]bool{} // counter fields bumped somewhere
	writeNodes := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IncDecStmt:
				if se, ok := n.X.(*ast.SelectorExpr); ok {
					writeNodes[se] = true
					if obj := localCounterField(pass, se); obj != nil && n.Tok == token.INC {
						incremented[obj] = true
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					se, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					switch n.Tok {
					case token.ADD_ASSIGN:
						writeNodes[se] = true
						if obj := localCounterField(pass, se); obj != nil {
							incremented[obj] = true
						}
					case token.ASSIGN, token.DEFINE:
						// A plain store resets the field; it is a write,
						// not an export.
						writeNodes[se] = true
					}
				}
			}
			return true
		})
	}
	if len(incremented) == 0 {
		return
	}

	// Second pass: any selector of the field that is not a write is a read.
	read := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || writeNodes[se] {
				return true
			}
			if obj := localCounterField(pass, se); obj != nil {
				read[obj] = true
			}
			return true
		})
	}

	for obj := range incremented {
		if read[obj] {
			continue
		}
		pass.Reportf(obj.Pos(),
			"counter %s is incremented but never read: the events it counts can never reach ExtraStats or a Result aggregation",
			obj.Name())
	}
}

// localCounterField resolves se to an unexported numeric field of a struct
// type declared in the package under analysis.
func localCounterField(pass *Pass, se *ast.SelectorExpr) types.Object {
	sel := pass.Pkg.Info.Selections[se]
	if sel == nil || sel.Kind() != types.FieldVal {
		return nil
	}
	obj := sel.Obj()
	if obj.Exported() || obj.Pkg() != pass.Pkg.Types {
		return nil
	}
	if !isInteger(obj.Type()) && !isFloat(obj.Type()) {
		return nil
	}
	return obj
}
