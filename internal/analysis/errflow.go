package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrFlow enforces the error discipline of the run engine (harness), the
// CLI convention layer (cliutil), and the sweep-service stack built on
// them — the persistent result store (store), the HTTP daemon (serve) and
// the lbserve command — where a silently dropped error is a result that
// quietly never happened, or worse, one that was acknowledged to a client
// without being durable:
//
//   - no error value may be discarded: neither a bare call statement whose
//     callee returns an error, nor a blank-identifier assignment of an
//     error-typed value. Best-effort fmt printing (Fprintf to stderr and
//     friends) is exempt; everything else needs handling or a justified
//     //lbvet:errok directive.
//   - wrapping must preserve the chain: an error-typed argument to
//     fmt.Errorf must be formatted with %w, not %v/%s — otherwise
//     errors.Is/As stop working and a *RunError loses its structured
//     context (bench, policy, phase, cycle, snapshot) on the way up.
var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc:  "discarded error values and chain-breaking error wrapping in harness/cliutil/store/serve/lbserve",
	Run:  runErrFlow,
}

// errFlowPackages are the packages under the error discipline, keyed by
// package name.
var errFlowPackages = map[string]bool{
	"harness": true,
	"cliutil": true,
	"store":   true,
	"serve":   true,
}

// errFlowPathSuffixes scope `package main` commands — whose package name is
// uselessly "main" — by import-path suffix.
var errFlowPathSuffixes = []string{
	"cmd/lbserve",
}

// errFlowScoped reports whether the package is under the error discipline.
func errFlowScoped(pkg *Package) bool {
	if errFlowPackages[pkg.Types.Name()] {
		return true
	}
	path := pkg.Types.Path()
	for _, suffix := range errFlowPathSuffixes {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func runErrFlow(pass *Pass) {
	if !errFlowScoped(pass.Pkg) {
		return
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDiscardedCall(pass, info, errIface, call, st)
				}
			case *ast.DeferStmt:
				checkDiscardedCall(pass, info, errIface, st.Call, st)
			case *ast.GoStmt:
				checkDiscardedCall(pass, info, errIface, st.Call, st)
			case *ast.AssignStmt:
				checkBlankDiscard(pass, info, errIface, st)
			case *ast.CallExpr:
				checkErrorfWrap(pass, info, errIface, st)
			}
			return true
		})
	}
}

// checkDiscardedCall flags a call statement whose results include an error
// nobody looks at.
func checkDiscardedCall(pass *Pass, info *types.Info, errIface *types.Interface, call *ast.CallExpr, stmt ast.Node) {
	tv, ok := info.Types[call]
	if !ok {
		return
	}
	errAt := -1
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type(), errIface) {
				errAt = i
			}
		}
	default:
		if isErrorType(tv.Type, errIface) {
			errAt = 0
		}
	}
	if errAt < 0 {
		return
	}
	if bestEffortPrint(info, call) || neverFails(info, call) {
		return
	}
	if pass.Pkg.errOKAt(pass.Fset, stmt) {
		return
	}
	pass.Reportf(stmt.Pos(),
		"error result of %s is discarded: a dropped error here is a run that silently never happened — handle it or justify with //lbvet:errok",
		callLabel(call))
}

// checkBlankDiscard flags `_ = err` and `x, _ := f()` where the blanked
// position is error-typed.
func checkBlankDiscard(pass *Pass, info *types.Info, errIface *types.Interface, st *ast.AssignStmt) {
	blankErr := func(lhs ast.Expr, t types.Type) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || t == nil || !isErrorType(t, errIface) {
			return
		}
		if pass.Pkg.errOKAt(pass.Fset, st) {
			return
		}
		pass.Reportf(st.Pos(),
			"error value discarded through the blank identifier: handle it or justify with //lbvet:errok")
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			blankErr(lhs, info.TypeOf(st.Rhs[i]))
		}
		return
	}
	// Multi-value form: a, _ := f().
	if len(st.Rhs) != 1 {
		return
	}
	tuple, ok := info.TypeOf(st.Rhs[0]).(*types.Tuple)
	if !ok || tuple.Len() != len(st.Lhs) {
		return
	}
	for i, lhs := range st.Lhs {
		blankErr(lhs, tuple.At(i).Type())
	}
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument with a verb other than %w.
func checkErrorfWrap(pass *Pass, info *types.Info, errIface *types.Interface, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok || pn.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	ftv, ok := info.Types[call.Args[0]]
	if !ok || ftv.Value == nil || ftv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(ftv.Value)
	verbs := formatVerbs(format)
	for vi, verb := range verbs {
		argIdx := 1 + vi
		if argIdx >= len(call.Args) || verb == 'w' {
			continue
		}
		at := info.TypeOf(call.Args[argIdx])
		if at == nil || !isErrorType(at, errIface) {
			continue
		}
		if pass.Pkg.errOKAt(pass.Fset, call) {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(),
			"error wrapped with %%%c breaks the chain: errors.Is/As and *RunError context stop working upstream — use %%w",
			verb)
	}
}

// formatVerbs returns the verb consuming each successive variadic argument
// of a fmt format string ('*' width/precision markers consume an argument
// of their own and appear as '*').
func formatVerbs(format string) []rune {
	var out []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision; '*' consumes an argument.
		for i < len(format) {
			c := format[i]
			if strings.ContainsRune("+-# 0.", rune(c)) || c >= '0' && c <= '9' {
				i++
				continue
			}
			if c == '*' {
				out = append(out, '*')
				i++
				continue
			}
			break
		}
		if i < len(format) {
			out = append(out, rune(format[i]))
		}
	}
	return out
}

// bestEffortPrint exempts the fmt print family: diagnostics to a terminal
// or an already-flushing writer, where the error is unactionable.
func bestEffortPrint(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
		return true
	}
	return false
}

// neverFails exempts methods whose error result is documented to always be
// nil: strings.Builder and bytes.Buffer grow in memory and only carry the
// error to satisfy io.Writer.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func isErrorType(t types.Type, errIface *types.Interface) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errIface)
}

func callLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return shortExpr(fun.X) + "." + fun.Sel.Name
	}
	return "call"
}
