// Package config mimics the engine's shared run configuration.
package config

// Config is read-mostly shared state: workers may read it, never write it.
type Config struct{ Workers int }
