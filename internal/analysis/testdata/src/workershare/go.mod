module workershare

go 1.22
