// Package schemes exercises the workershare analyzer from the policy side:
// every type here implements sim.SMPolicy, so its worker-phase hooks are
// closure roots.
package schemes

import (
	"workershare/config"
	"workershare/sim"
)

// racer writes shared engine state straight from a worker-phase hook.
type racer struct {
	gpu  *sim.GPU
	cfg  *config.Config
	mine int64
}

func (r *racer) OnCycle(cycle int64) {
	r.mine++       // own policy state: clean
	r.gpu.Cycles++ // want `racer.OnCycle is reachable from the parallel SM tick but writes r.gpu.Cycles through shared sim.GPU`
	r.bump()
}

func (r *racer) NextEvent(now int64) (int64, bool) { return now + 1, true }

// bump hides a shared write one call deep; reachability follows the call.
func (r *racer) bump() {
	r.cfg.Workers++ // want `racer.bump is reachable from the parallel SM tick but writes r.cfg.Workers through shared config.Config`
}

// sanctioned is part of the executor's buffered-merge protocol: the
// directive carries the justification.
type sanctioned struct {
	gpu *sim.GPU
}

func (s *sanctioned) OnCycle(cycle int64) {
	s.gpu.Cycles++ //lbvet:smshared per-worker slot, merged in SM-index order at the barrier (fixture)
}

func (s *sanctioned) NextEvent(now int64) (int64, bool) { return now, true }

// serialOnly writes shared state only from a hook that runs on the
// coordinator between barriers (OnCTALaunch is not a worker-phase hook).
type serialOnly struct {
	gpu *sim.GPU
}

func (s *serialOnly) OnCycle(int64) {}

func (s *serialOnly) NextEvent(now int64) (int64, bool) { return now, true }

func (s *serialOnly) OnCTALaunch() { s.gpu.Cycles++ }

// perSM keeps every write inside its own state: clean.
type perSM struct {
	sm   *sim.SM
	busy int64
}

func (p *perSM) OnCycle(int64) {
	p.busy++
	p.sm.Stats.Ticks++
}

func (p *perSM) NextEvent(now int64) (int64, bool) { return now, true }
