// Package sim mimics the engine shapes the workershare analyzer keys on:
// the GPU shared type, the SMPolicy interface and the stepSM worker entry.
package sim

// GPU is shared engine state: one instance, touched by every worker.
type GPU struct {
	Cycles int64
}

// SM is per-SM state, owned by exactly one worker during the SM phase.
type SM struct {
	NextWake int64
	Stats    Stats
}

// Stats is per-SM accounting.
type Stats struct{ Ticks int64 }

// SMPolicy is the per-SM policy hook set (abridged to what the fixture
// needs; the analyzer keys on the interface name and method names).
type SMPolicy interface {
	OnCycle(cycle int64)
	NextEvent(now int64) (int64, bool)
}

var totalSteps int64

// stepSM is the per-worker tick entry point the analyzer roots at.
func (g *GPU) stepSM(sm *SM, cyc int64) {
	sm.Stats.Ticks++      // per-SM chain: clean
	sm.NextWake = cyc + 1 // per-SM chain: clean
	g.Cycles++            // want `GPU.stepSM is reachable from the parallel SM tick but writes g.Cycles through shared sim.GPU`
	totalSteps++          // want `GPU.stepSM is reachable from the parallel SM tick but writes package-level totalSteps`
}
