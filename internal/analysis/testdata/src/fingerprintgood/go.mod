module fingerprintgood

go 1.22
