// Package harness fingerprints the whole Config value: every field —
// present and future — is part of the memo key by construction.
package harness

import (
	"fmt"

	"fingerprintgood/config"
)

func cfgFingerprint(cfg *config.Config) string {
	return fmt.Sprintf("%v", *cfg)
}
