// Package config is the clean twin of fingerprintbad: every exported
// field is validated, and the harness fingerprints the whole struct.
package config

import "errors"

type GPU struct {
	NumSMs   int
	ClockMHz int
}

type Linebacker struct {
	WindowCycles int
}

type Config struct {
	GPU GPU
	LB  Linebacker
}

func (c *Config) Validate() error {
	if c.GPU.NumSMs <= 0 || c.GPU.ClockMHz <= 0 {
		return errors.New("gpu")
	}
	if c.LB.WindowCycles <= 0 {
		return errors.New("lb")
	}
	return nil
}
