module fingerprintbad

go 1.22
