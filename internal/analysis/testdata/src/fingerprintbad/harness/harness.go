// Package harness builds a memo key field-by-field and forgets some:
// exactly the PR-1 aliasing bug the fingerprint analyzer prevents.
package harness

import (
	"fmt"

	"fingerprintbad/config"
)

func cfgFingerprint(cfg *config.Config) string {
	return fmt.Sprintf("%d|%d", cfg.GPU.NumSMs, cfg.GPU.Unseen)
}
