// Package config mimics the real config package with holes the
// fingerprint analyzer must find.
package config

import "errors"

type GPU struct {
	NumSMs int
	Unseen int // want `GPU\.Unseen is not checked by .*Validate`
}

type Linebacker struct {
	WindowCycles int // want `Linebacker\.WindowCycles is not part of the harness memo-key fingerprint`
}

type Config struct {
	GPU GPU
	LB  Linebacker
}

func (c *Config) Validate() error {
	if c.GPU.NumSMs <= 0 {
		return errors.New("NumSMs")
	}
	if c.LB.WindowCycles <= 0 {
		return errors.New("WindowCycles")
	}
	return nil
}
