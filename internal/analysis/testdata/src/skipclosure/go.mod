module skipclosure

go 1.22
