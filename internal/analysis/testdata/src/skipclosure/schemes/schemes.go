// Package schemes exercises the skipclosure analyzer: the package name
// puts it in the simulation-state scope.
package schemes

// gateStale is the PR 6 fused-wake bug shape: OnCycle flips an issue gate
// that SkipCycles forgets, so a skipped span resumes with a stale gate.
type gateStale struct {
	cycles int64
	gate   bool
}

func (g *gateStale) OnCycle(cycle int64) {
	g.cycles++
	g.gate = cycle%2 == 0 // want `gateStale.OnCycle writes field "gate" but SkipCycles does not reproduce it`
}

func (g *gateStale) NextEvent(now int64) (int64, bool) { return now + 1, true }

func (g *gateStale) SkipCycles(from, to int64) { g.cycles += to - from }

// transitive hides the forgotten write one call deep: the closure follows
// same-package calls, so decay's write is charged to OnCycle.
type transitive struct {
	cycles int64
	score  float64
}

func (t *transitive) OnCycle(cycle int64) {
	t.cycles++
	t.decay() // want `transitive.OnCycle writes field "score" \(via decay\) but SkipCycles does not reproduce it`
}

func (t *transitive) decay() { t.score *= 0.5 }

func (t *transitive) SkipCycles(from, to int64) { t.cycles += to - from }

// boundMethod escapes through a method directive: retune only runs at
// boundaries NextEvent advertises, which excuses everything it writes.
type boundMethod struct {
	cycles int64
	window int64
}

func (b *boundMethod) OnCycle(cycle int64) {
	b.cycles++
	b.retune(cycle)
}

// retune runs only at the window boundary NextEvent advertises (fixture).
//
//lbvet:eventbound
func (b *boundMethod) retune(cycle int64) { b.window = cycle }

func (b *boundMethod) NextEvent(now int64) (int64, bool) { return b.window + 8, true }

func (b *boundMethod) SkipCycles(from, to int64) { b.cycles += to - from }

// boundField escapes through a field directive: score only changes while
// NextEvent pins the event to now, so no skipped span straddles an update.
type boundField struct {
	cycles int64
	//lbvet:eventbound only decays while NextEvent pins the event to now (fixture)
	score float64
}

func (b *boundField) OnCycle(int64) {
	b.cycles++
	b.score *= 0.5
}

func (b *boundField) NextEvent(now int64) (int64, bool) { return now, true }

func (b *boundField) SkipCycles(from, to int64) { b.cycles += to - from }

// closed reproduces every per-cycle write in closed form: clean.
type closed struct {
	cycles int64
	busy   int64
}

func (c *closed) OnCycle(int64) { c.cycles++; c.busy++ }

func (c *closed) SkipCycles(from, to int64) {
	span := to - from
	c.cycles += span
	c.busy += span
}

// tickedQueue covers the TickEach/Skip pair the engine queues use.
type tickedQueue struct {
	tokens float64
	heads  int
}

func (q *tickedQueue) TickEach(cycle int64, fn func(int64)) {
	q.tokens++
	q.heads++ // want `tickedQueue.TickEach writes field "heads" but Skip does not reproduce it`
}

func (q *tickedQueue) Skip(from, to int64) { q.tokens += float64(to - from) }

// opaque overwrites the whole receiver, which no field set can close over.
type opaque struct {
	cycles int64
}

func (o *opaque) OnCycle(int64) { // want `opaque.OnCycle writes through the whole receiver`
	*o = opaque{cycles: o.cycles + 1}
}

func (o *opaque) SkipCycles(from, to int64) { o.cycles += to - from }
