module nextevent

go 1.22
