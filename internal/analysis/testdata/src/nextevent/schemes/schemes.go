// Package schemes exercises the nextevent analyzer: the package name puts
// it in the simulation-state scope.
package schemes

// base mimics sim.BasePolicy: it declares the full event protocol itself,
// so it is clean — and it makes the embedding cases below compile the same
// way the real schemes do.
type base struct{}

func (base) OnCycle(int64)                 {}
func (base) NextEvent(int64) (int64, bool) { return 0, false }
func (base) SkipCycles(int64, int64)       {}

// silentWindow is the bug this analyzer exists for: it embeds base,
// overrides OnCycle with real window work, and inherits the permanently
// quiescent NextEvent/SkipCycles. It satisfies the policy interface via
// promotion, and a skipping run jumps straight over its window boundaries.
type silentWindow struct {
	base
	window int64
	active bool
}

func (s *silentWindow) OnCycle(cycle int64) { // want `silentWindow declares OnCycle but neither NextEvent nor SkipCycles`
	s.active = (cycle/s.window)%2 == 0
}

// halfProtocol advertises its events but forgets the closed-form accrual.
type halfProtocol struct {
	base
	busy int64
}

func (h *halfProtocol) OnCycle(cycle int64) { // want `halfProtocol declares OnCycle but no SkipCycles`
	h.busy++
}

func (h *halfProtocol) NextEvent(now int64) (int64, bool) { return now, true }

// accrualOnly applies skipped spans but never advertises an event.
type accrualOnly struct {
	base
	idle int64
}

func (a *accrualOnly) OnCycle(int64) { // want `accrualOnly declares OnCycle but no NextEvent`
	a.idle++
}

func (a *accrualOnly) SkipCycles(from, to int64) { a.idle += to - from }

// queue mimics the DRAM/interconnect ticked-queue shape without the
// advertisement half of the protocol.
type queue struct {
	items []int64
}

func (q *queue) TickEach(cycle int64, fn func(int64)) { // want `queue declares TickEach but no NextEvent`
	for _, it := range q.items {
		fn(it)
	}
}

// link declares both halves: clean.
type link struct {
	q []int64
}

func (l *link) DeliverEach(cycle int64, fn func(int64)) {
	for _, it := range l.q {
		fn(it)
	}
}

func (l *link) NextEvent(now int64) (int64, bool) {
	if len(l.q) == 0 {
		return 0, false
	}
	return now, true
}

// full declares the whole protocol: clean.
type full struct {
	integral float64
}

func (f *full) OnCycle(int64)                     { f.integral++ }
func (f *full) NextEvent(now int64) (int64, bool) { return now + 1, true }
func (f *full) SkipCycles(from, to int64)         { f.integral += float64(to - from) }
