// Command lbserve (fixture) proves the path-suffix scoping: package main
// is in scope because its import path ends in cmd/lbserve.
package main

import "errors"

func shutdown() error { return errors.New("shutdown") }

func main() {
	shutdown()     // want `error result of shutdown is discarded`
	_ = shutdown() // want `error value discarded through the blank identifier`
	shutdown()     //lbvet:errok fixture: exercised the directive on a command
	if err := shutdown(); err != nil {
		return
	}
}
