// Command other (fixture) is the negative control: a package main whose
// import path is NOT cmd/lbserve stays outside the errflow scope, so its
// dropped error produces no diagnostic.
package main

import "errors"

func cleanup() error { return errors.New("cleanup") }

func main() {
	cleanup() // out of scope: no diagnostic expected
}
