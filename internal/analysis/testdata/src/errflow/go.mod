module errflow

go 1.22
