// Package serve exercises the errflow analyzer's serve scope: in the HTTP
// daemon a dropped error is a sweep point that silently never reaches the
// client.
package serve

import "fmt"

func runPoint() error { return nil }

func dropsPoint() {
	runPoint()       // want `error result of runPoint is discarded`
	defer runPoint() // want `error result of runPoint is discarded`
}

func wrapsBadly() error {
	if err := runPoint(); err != nil {
		return fmt.Errorf("point failed: %v", err) // want `error wrapped with %v breaks the chain`
	}
	return nil
}

func sanctioned() {
	runPoint() //lbvet:errok fixture: the response writer is gone; nothing to do
}
