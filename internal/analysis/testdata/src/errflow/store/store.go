// Package store exercises the errflow analyzer's store scope: the
// persistent result store is where a dropped error turns an acknowledged
// commit into amnesia after a crash.
package store

import (
	"fmt"
	"os"
)

func commit() error { return nil }

func fsyncAndRotate() (string, error) { return "", nil }

func dropsCommit() {
	commit()                   // want `error result of commit is discarded`
	go commit()                // want `error result of commit is discarded`
	seg, _ := fsyncAndRotate() // want `error value discarded through the blank identifier`
	_ = seg
}

func wrapsBadly() error {
	if err := commit(); err != nil {
		return fmt.Errorf("segment rotation: %s", err) // want `error wrapped with %s breaks the chain`
	}
	return nil
}

func sanctioned() {
	commit() //lbvet:errok fixture: double-close on an already-failed path
	fmt.Fprintf(os.Stderr, "best-effort: %v\n", commit())
}
