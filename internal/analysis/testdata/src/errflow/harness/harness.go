// Package harness exercises the errflow analyzer: the package name puts it
// under the run engine's error discipline.
package harness

import (
	"fmt"
	"os"
	"strings"
)

func mightFail() error { return nil }

func twoValued() (int, error) { return 0, nil }

func discards() {
	mightFail()         // want `error result of mightFail is discarded`
	defer mightFail()   // want `error result of mightFail is discarded`
	_ = mightFail()     // want `error value discarded through the blank identifier`
	v, _ := twoValued() // want `error value discarded through the blank identifier`
	_ = v               // not error-typed: clean
}

func wrapped() error {
	if err := mightFail(); err != nil {
		return fmt.Errorf("run step: %w", err) // %w keeps the chain: clean
	}
	v, err := twoValued()
	if err != nil {
		return fmt.Errorf("value %d failed: %v", v, err) // want `error wrapped with %v breaks the chain`
	}
	return nil
}

func sanctioned() {
	mightFail()                                              //lbvet:errok fixture: deliberately dropped on a path already returning a better error
	fmt.Fprintf(os.Stderr, "best-effort: %v\n", mightFail()) // fmt print family: exempt
	var b strings.Builder
	b.WriteString("never fails") // strings.Builder: exempt
	_ = b.String()               // not error-typed: clean
}
