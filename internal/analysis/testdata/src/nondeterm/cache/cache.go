// Package cache exercises the nondeterm analyzer: the package name puts it
// in the simulation-state scope.
package cache

import (
	"math/rand"
	"time"
)

type c struct {
	stamp time.Time
	rng   *rand.Rand
}

func (x *c) bad(done chan struct{}) {
	x.stamp = time.Now()               // want `time\.Now`
	_ = time.Since(x.stamp)            // want `time\.Since`
	_ = rand.Intn(4)                   // want `global rand\.Intn`
	rand.Shuffle(4, func(a, b int) {}) // want `global rand\.Shuffle`
	go func() { done <- struct{}{} }() // want `goroutine spawned`
}

// sanctioned is the one legal goroutine shape: a cycle-barrier executor
// worker carrying an //lbvet:executor justification. No diagnostic.
func (x *c) sanctioned(cycles chan int64) {
	//lbvet:executor fixture: cycle-barrier worker over a disjoint chunk, merged in fixed order
	go func() { <-cycles }()
}

// unsanctioned shows the directive only attaches to its own or the next
// line — a goroutine further down stays banned.
func (x *c) unsanctioned(done chan struct{}) {
	//lbvet:executor stale justification, separated by another statement
	_ = cap(done)
	go func() { done <- struct{}{} }() // want `goroutine spawned`
}

func (x *c) good(seed int64) int {
	// Explicitly seeded generators are the sanctioned randomness source.
	x.rng = rand.New(rand.NewSource(seed))
	// Durations as constants are fine; only wall-clock reads are banned.
	_ = 5 * time.Millisecond
	return x.rng.Intn(16)
}
