module nondeterm

go 1.22
