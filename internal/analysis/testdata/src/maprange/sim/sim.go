// Package sim exercises the maprange analyzer: the package name puts it in
// the simulation-state scope.
package sim

import "sort"

type engine struct {
	waiters map[uint64][]int
	scores  map[string]float64
}

// bad ranges a map and lets order reach state.
func (e *engine) bad(out *[]int) {
	for _, ws := range e.waiters { // want `range over map e\.waiters`
		*out = append(*out, ws...)
	}
}

// badReturn leaks order through an early exit on a value condition.
func (e *engine) badReturn() int {
	for k, ws := range e.waiters { // want `range over map e\.waiters`
		if len(ws) > 2 {
			return int(k)
		}
	}
	return -1
}

// countOnly is order-insensitive integer accumulation: allowed.
func (e *engine) countOnly() int {
	n := 0
	for _, ws := range e.waiters {
		n += len(ws)
	}
	return n
}

// guardedCount keeps the accumulation under a side-effect-free guard.
func (e *engine) guardedCount() int {
	n := 0
	for _, ws := range e.waiters {
		if len(ws) > 1 {
			n++
		}
	}
	return n
}

// collectSort gathers keys and sorts them before use: allowed.
func (e *engine) collectSort() []uint64 {
	keys := make([]uint64, 0, len(e.waiters))
	for k := range e.waiters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// collectNoSort gathers keys but never sorts: flagged.
func (e *engine) collectNoSort() []uint64 {
	var keys []uint64
	for k := range e.waiters { // want `range over map e\.waiters`
		keys = append(keys, k)
	}
	return keys
}

// justifiedTrailing carries the directive on the loop line.
func (e *engine) justifiedTrailing() {
	for k := range e.waiters { //lbvet:ordered clearing the whole map is order-free
		e.waiters[k] = nil
	}
}

// justifiedAbove carries a multi-line justification ending just above.
func (e *engine) justifiedAbove() float64 {
	best := 0.0
	//lbvet:ordered max over the score set is commutative, so the
	// result cannot depend on visit order.
	for _, s := range e.scores {
		if s > best {
			best = s
		}
	}
	return best
}

// deleteAll only deletes entries: allowed.
func (e *engine) deleteAll(dead map[uint64]bool) {
	for k := range dead {
		delete(e.waiters, k)
	}
}
