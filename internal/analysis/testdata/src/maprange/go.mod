module maprange

go 1.22
