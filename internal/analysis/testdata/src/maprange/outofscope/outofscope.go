// Package outofscope is not a simulation-state package: maprange must
// leave it alone.
package outofscope

func Sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
