// Package dram exercises the statsflow analyzer: the package name puts it
// in the simulation-state scope.
package dram

type bank struct {
	hits     int64
	drops    int64   // want `counter drops is incremented but never read`
	lost     float64 // want `counter lost is incremented but never read`
	cursor   int
	Exported int64
}

func (b *bank) access(hit bool, weight float64) {
	if hit {
		b.hits++
	} else {
		b.drops++
		b.lost += weight
	}
	// Exported fields are readable by other packages: out of scope.
	b.Exported++
	// cursor is incremented and read below: a live counter.
	b.cursor++
}

func (b *bank) stats() map[string]float64 {
	return map[string]float64{
		"dram_hits":   float64(b.hits),
		"dram_cursor": float64(b.cursor),
	}
}

func (b *bank) reset() {
	// Plain stores are writes, not exports: they must not discharge the
	// read obligation of drops/lost.
	b.drops = 0
	b.lost = 0
}
