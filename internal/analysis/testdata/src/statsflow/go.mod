module statsflow

go 1.22
