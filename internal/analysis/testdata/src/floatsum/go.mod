module floatsum

go 1.22
