// Package stats exercises the floatsum analyzer: the package name puts it
// in the metric-reduction scope.
package stats

import "sort"

// Bad sums floats in map order.
func Bad(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation into total under map iteration`
	}
	return total
}

// BadNested accumulates floats in a slice loop nested under a map range:
// the outer order still reorders the additions.
func BadNested(m map[int][]float64, sums map[int]float64) float64 {
	grand := 0.0
	for k, vs := range m {
		for _, v := range vs {
			grand += v // want `float accumulation into grand under map iteration`
			sums[k] += v
		}
	}
	return grand
}

// IntCounts is exact arithmetic: integers commute.
func IntCounts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedFirst iterates a sorted key slice: the canonical fix.
func SortedFirst(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Justified carries the escape hatch.
func Justified(m map[string]float64) float64 {
	total := 0.0
	//lbvet:ordered all values are exact powers of two in tests
	for _, v := range m {
		total += v
	}
	return total
}

// FuncLitResets ensures closures reset the in-map-range state.
func FuncLitResets(m map[string]float64, xs []float64) func() float64 {
	var f func() float64
	for range m {
		f = func() float64 {
			s := 0.0
			for _, x := range xs {
				s += x
			}
			return s
		}
	}
	return f
}
