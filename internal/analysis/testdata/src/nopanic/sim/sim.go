package sim

import "fmt"

type kind int

const (
	read kind = iota
	write
)

// access dispatches on kind; the default arm is unreachable by
// construction and carries the directive.
func access(k kind) string {
	switch k {
	case read:
		return "r"
	case write:
		return "w"
	default:
		//lbvet:panic unreachable by construction: only the two kinds above exist
		panic(fmt.Sprintf("sim: unexpected kind %d", k))
	}
}

// tick panics on an expected run-time condition: forbidden.
func tick(queue []int) int {
	if len(queue) == 0 {
		panic("sim: empty queue") // want `panic in fault-isolated package sim`
	}
	return queue[0]
}
