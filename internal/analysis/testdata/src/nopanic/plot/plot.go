package plot

// Render is outside the fault-isolated packages: nopanic does not apply.
func Render(rows []string) string {
	if rows == nil {
		panic("plot: nil rows")
	}
	return rows[0]
}
