package harness

import "errors"

// Run is fallible code: panicking here escapes the sweep's error handling.
func Run(bench string) (int, error) {
	if bench == "" {
		panic("empty bench") // want `panic in fault-isolated package harness`
	}
	return 1, nil
}

// MustRun's contract is to panic; the Must* exemption covers it.
func MustRun(bench string) int {
	n, err := Run(bench)
	if err != nil {
		panic(err)
	}
	return n
}

// MustSweep is exempt too, including panics in nested closures.
func MustSweep(benches []string) []int {
	out := make([]int, 0, len(benches))
	collect := func(b string) {
		n, err := Run(b)
		if err != nil {
			panic(err)
		}
		out = append(out, n)
	}
	for _, b := range benches {
		collect(b)
	}
	return out
}

func init() {
	if len("x") != 1 {
		panic("broken compiler")
	}
}

// RunSafe re-raises non-error panics; the directive justifies it.
func RunSafe() (err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = e
				return
			}
			//lbvet:panic non-error panic values are foreign; re-raise for the outer barrier
			panic(p)
		}
	}()
	return errors.New("x")
}

// shadowed has a local function named panic: not the builtin, not flagged.
func shadowed() {
	panic := func(string) {}
	panic("fine")
}

// inClosure panics inside a goroutine closure of a non-Must function.
func inClosure(ch chan struct{}) {
	go func() {
		defer close(ch)
		panic("boom") // want `panic in fault-isolated package harness`
	}()
}
