package analysis

import (
	"go/types"
	"sort"
)

// WorkerShare is the static half of DESIGN.md §9's disjoint-partition
// argument: during the parallel SM phase, code reachable from the SM tick
// may write only per-SM state (the SM itself, its policy, its L1, register
// file, outbox and request pool — all reached through the SM or the policy
// receiver). Writing anything reached through shared engine types
// (sim.GPU, config.Config, workload.Kernel) or a package-level variable is
// a data race waiting for a schedule — `-race` only sees schedules that
// execute; this rejects the write at build time.
//
// Roots of the worker-phase closure, per simulation-state package:
//
//   - methods named stepSM or tickRange (the executor's per-worker tick
//     path in package sim);
//   - the worker-phase hooks of every type implementing sim.SMPolicy:
//     CTAActive, WarpActive, AllocateL1, ExtraL1Latency, ProbeVictim,
//     OnEviction, OnLoadOutcome, OnStore, OnCTAComplete, OnCycle,
//     NextEvent. (AllowNewCTA, OnCTALaunch, OnRegResponse, SkipCycles and
//     Attach run on the coordinator between barriers and are exempt.)
//
// The closure follows same-package calls only; mutations hidden behind
// cross-package or interface calls on shared objects are out of reach (a
// documented limitation — the per-SM object graph makes such calls
// per-SM-rooted in practice). The //lbvet:smshared directive sanctions a
// write that is part of the executor's buffered-merge protocol.
var WorkerShare = &Analyzer{
	Name: "workershare",
	Doc:  "writes to shared engine state reachable from the parallel SM tick",
	Run:  runWorkerShare,
}

// workerPhaseHooks are the sim.SMPolicy methods invoked inside an SM's
// tick, i.e. on a worker goroutine whenever Workers > 1.
var workerPhaseHooks = map[string]bool{
	"CTAActive":      true,
	"WarpActive":     true,
	"AllocateL1":     true,
	"ExtraL1Latency": true,
	"ProbeVictim":    true,
	"OnEviction":     true,
	"OnLoadOutcome":  true,
	"OnStore":        true,
	"OnCTAComplete":  true,
	"OnCycle":        true,
	"NextEvent":      true,
}

// workerEntryMethods are the executor's own per-worker entry points in
// package sim.
var workerEntryMethods = map[string]bool{
	"stepSM":    true,
	"tickRange": true,
}

func runWorkerShare(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}
	sums := packageSummaries(pass.Fset, pass.Pkg)
	iface := findSMPolicy(pass)

	// Collect the roots, in stable order.
	var roots []*funcSummary
	seen := map[*funcSummary]bool{}
	addRoot := func(fs *funcSummary) {
		if fs != nil && !seen[fs] {
			seen[fs] = true
			roots = append(roots, fs)
		}
	}
	var all []*funcSummary
	for _, fs := range sums {
		all = append(all, fs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].decl.Pos() < all[j].decl.Pos() })

	policyTypes := smPolicyTypes(pass, iface)
	for _, fs := range all {
		if fs.recvType == "" {
			continue
		}
		if pass.Pkg.Types.Name() == "sim" && workerEntryMethods[fs.obj.Name()] {
			addRoot(fs)
		}
		if policyTypes[fs.recvType] && workerPhaseHooks[fs.obj.Name()] {
			addRoot(fs)
		}
	}
	if len(roots) == 0 {
		return
	}

	// Close over same-package calls and report each reachable function's
	// own shared/global writes.
	reach := map[*funcSummary]bool{}
	var visit func(fs *funcSummary)
	visit = func(fs *funcSummary) {
		if reach[fs] {
			return
		}
		reach[fs] = true
		for _, c := range fs.calls {
			if cs := sums[c.callee]; cs != nil {
				visit(cs)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}

	for _, fs := range all {
		if !reach[fs] {
			continue
		}
		for _, w := range fs.sharedW {
			if sanctioned(pass, w) {
				continue
			}
			pass.Reportf(w.pos,
				"%s.%s is reachable from the parallel SM tick but writes %s through shared %s: only per-SM state may be written during the SM phase (DESIGN.md §9) — move it to a serial phase, buffer it per-SM, or justify with //lbvet:smshared",
				recvLabel(fs), fs.obj.Name(), w.what, w.shared)
		}
		for _, w := range fs.globalW {
			if sanctioned(pass, w) {
				continue
			}
			pass.Reportf(w.pos,
				"%s.%s is reachable from the parallel SM tick but writes package-level %s: worker goroutines share package state, so this races at Workers > 1 — make it per-SM or justify with //lbvet:smshared",
				recvLabel(fs), fs.obj.Name(), w.what)
		}
	}
}

func recvLabel(fs *funcSummary) string {
	if fs.recvType == "" {
		return fs.obj.Pkg().Name()
	}
	return fs.recvType
}

func sanctioned(pass *Pass, w sharedWrite) bool {
	pos := pass.Fset.Position(w.pos)
	lines := pass.Pkg.smShared[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// findSMPolicy locates the sim.SMPolicy interface: in the package under
// analysis if it IS sim, else among the loaded packages and the package's
// imports (the loader pulls sim in for any policy package).
func findSMPolicy(pass *Pass) *types.Interface {
	lookup := func(tp *types.Package) *types.Interface {
		if tp == nil || tp.Name() != "sim" {
			return nil
		}
		obj := tp.Scope().Lookup("SMPolicy")
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if i := lookup(pass.Pkg.Types); i != nil {
		return i
	}
	for _, p := range pass.All {
		if i := lookup(p.Types); i != nil {
			return i
		}
	}
	for _, imp := range pass.Pkg.Types.Imports() {
		if i := lookup(imp); i != nil {
			return i
		}
	}
	return nil
}

// smPolicyTypes names the package-local types whose pointer type satisfies
// the SMPolicy interface.
func smPolicyTypes(pass *Pass, iface *types.Interface) map[string]bool {
	out := map[string]bool{}
	if iface == nil {
		return out
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			out[name] = true
		}
	}
	return out
}
