package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTree materializes a file tree under a temp module root.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

const incGoMod = "module m\n\ngo 1.22\n"

const incSimDirty = `package sim

type Table struct{ M map[int]int }

func (t *Table) Keys() []int {
	var out []int
	for k := range t.M {
		out = append(out, k)
	}
	return out
}
`

const incSimClean = `package sim

type Table struct{ M map[int]int }

func (t *Table) Keys() []int {
	out := make([]int, 0, len(t.M))
	for i := 0; i < len(t.M); i++ {
		out = append(out, i)
	}
	return out
}
`

const incSchemes = `package schemes

import "m/sim"

func Count(t *sim.Table) int { return len(t.Keys()) }
`

const incStats = `package stats

func Mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
`

// TestIncrementalCache covers the cache lifecycle: a cold run analyzes
// everything, a warm run loads nothing and returns identical diagnostics,
// and an edit re-analyzes exactly the changed package and its dependents.
func TestIncrementalCache(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":             incGoMod,
		"sim/sim.go":         incSimDirty,
		"schemes/schemes.go": incSchemes,
		"stats/stats.go":     incStats,
	})
	cache := filepath.Join(root, ".lbvet-cache")
	az := []*Analyzer{MapRange}

	cold, coldStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if coldStats.Packages != 3 || coldStats.AnalyzedPackages != 3 || coldStats.CachedPackages != 0 {
		t.Fatalf("cold stats: %+v", coldStats)
	}
	if len(cold) != 1 || cold[0].Pos.Filename != "sim/sim.go" || cold[0].Analyzer != "maprange" {
		t.Fatalf("cold diagnostics: %v", cold)
	}

	warm, warmStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warmStats.CachedPackages != 3 || warmStats.AnalyzedPackages != 0 || warmStats.LoadedPackages != 0 {
		t.Fatalf("warm run should be a full hit: %+v", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm diagnostics differ:\ncold: %v\nwarm: %v", cold, warm)
	}

	// Fixing sim invalidates sim and its importer schemes, but stats —
	// untouched and independent — stays cached.
	writeTree(t, root, map[string]string{"sim/sim.go": incSimClean})
	third, thirdStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if len(third) != 0 {
		t.Fatalf("fixed module still dirty: %v", third)
	}
	if thirdStats.AnalyzedPackages != 2 || thirdStats.CachedPackages != 1 {
		t.Fatalf("edit should re-analyze sim+schemes only: %+v", thirdStats)
	}
}

// TestIncrementalWholeProgram covers caching of whole-program analyzers:
// the fingerprint pass serves from cache on a warm run and invalidates on
// any package edit.
func TestIncrementalWholeProgram(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":         incGoMod,
		"stats/stats.go": incStats,
	})
	cache := filepath.Join(root, ".lbvet-cache")
	az := []*Analyzer{MapRange, Fingerprint}

	_, coldStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if coldStats.WholeFromCache {
		t.Fatalf("cold run claims whole-program cache hit: %+v", coldStats)
	}
	_, warmStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !warmStats.WholeFromCache || warmStats.LoadedPackages != 0 {
		t.Fatalf("warm run should serve whole-program pass from cache: %+v", warmStats)
	}

	writeTree(t, root, map[string]string{"stats/stats.go": incStats + "\n// touched\n"})
	_, editStats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if editStats.WholeFromCache {
		t.Fatalf("edit should invalidate the whole-program entry: %+v", editStats)
	}
}

// TestCacheEntryCorruption: a truncated or mismatched entry re-analyzes
// instead of being trusted.
func TestCacheEntryCorruption(t *testing.T) {
	root := t.TempDir()
	writeTree(t, root, map[string]string{
		"go.mod":         incGoMod,
		"stats/stats.go": incStats,
	})
	cache := filepath.Join(root, ".lbvet-cache")
	az := []*Analyzer{MapRange}
	if _, _, err := RunIncremental(root, []string{"./..."}, az, cache); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache entries written: %v", err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("{truncated"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, stats, err := RunIncremental(root, []string{"./..."}, az, cache)
	if err != nil {
		t.Fatalf("run over corrupt cache: %v", err)
	}
	if stats.CachedPackages != 0 || stats.AnalyzedPackages != 1 {
		t.Fatalf("corrupt entries should miss: %+v", stats)
	}
}
