package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic forbids panic calls in the fault-isolated packages — harness,
// sim and check. The run engine's contract is that every failure surfaces
// as a *harness.RunError a sweep can skip and report; a stray panic in
// these packages either crashes a campaign or relies on a recovery barrier
// the author never checked exists. Two escapes:
//
//   - functions named Must* (and init), whose documented contract IS to
//     panic on failure;
//   - the //lbvet:panic <reason> directive, for engine-bug assertions the
//     harness's per-run recover() deliberately converts to RunErrors.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "panic outside Must*/init in fault-isolated packages (harness, sim, check)",
	Run:  runNoPanic,
}

// faultIsolatedPackages run under the harness's recovery contract.
var faultIsolatedPackages = map[string]bool{
	"harness": true,
	"sim":     true,
	"check":   true,
}

func runNoPanic(pass *Pass) {
	if !faultIsolatedPackages[pass.Pkg.Types.Name()] {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			exempt := false
			if fd, ok := decl.(*ast.FuncDecl); ok {
				name := fd.Name.Name
				exempt = strings.HasPrefix(name, "Must") || name == "init"
			}
			if exempt {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				ident, ok := call.Fun.(*ast.Ident)
				if !ok || ident.Name != "panic" {
					return true
				}
				// Only the builtin: a local function named panic shadows it.
				if _, ok := pass.Pkg.Info.Uses[ident].(*types.Builtin); !ok {
					return true
				}
				if pass.PanicAllowed(pass.Pkg, call) {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in fault-isolated package %s: return an error (or a *RunError) instead, rename the function Must*, or justify with %q",
					pass.Pkg.Types.Name(), PanicDirective+" <reason>")
				return true
			})
		}
	}
}
