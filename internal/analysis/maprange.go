package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` over a map inside simulation-state packages. Go
// randomises map iteration order per run; any order that reaches a
// cycle-level decision or a reported metric breaks seed determinism (the
// property internal/check's golden and differential suites rely on).
//
// An iteration is accepted without a directive when it provably cannot
// leak order:
//
//   - the body only accumulates integers (counts, sums of len()) — integer
//     addition is commutative and associative;
//   - the loop only collects keys/values into a slice that is sorted by a
//     sort.* / slices.Sort* call later in the same block;
//   - the loop only deletes entries from a map.
//
// Anything else needs either sorted keys (e.g. stats.SortedKeys) or an
// `//lbvet:ordered <reason>` directive on or directly above the loop.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "unordered map iteration in simulation-state packages",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rng, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if mapType(pass.TypeOf(rng.X)) == nil {
					continue
				}
				if pass.Ordered(pass.Pkg, rng) {
					continue
				}
				if orderInsensitiveBody(pass, rng.Body) {
					continue
				}
				if collectThenSort(pass, rng, block.List[i+1:]) {
					continue
				}
				pass.Reportf(rng.Pos(),
					"range over map %s: iteration order is runtime-random and may leak into simulation state; sort the keys or justify with %s",
					render(pass.Fset, rng.X), OrderedDirective)
			}
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement in the loop body is
// a commutative integer accumulation or a map delete, optionally nested in
// if statements (guards select which elements contribute, not in which
// order).
func orderInsensitiveBody(pass *Pass, body *ast.BlockStmt) bool {
	var ok func(ast.Stmt) bool
	ok = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return isInteger(pass.TypeOf(s.X))
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN:
				return isInteger(pass.TypeOf(s.Lhs[0])) && sideEffectFree(pass, s.Rhs[0])
			}
			return false
		case *ast.ExprStmt:
			call, isCall := s.X.(*ast.CallExpr)
			if !isCall {
				return false
			}
			id, isIdent := call.Fun.(*ast.Ident)
			return isIdent && isBuiltin(pass, id, "delete")
		case *ast.IfStmt:
			if s.Init != nil || s.Cond == nil || !sideEffectFree(pass, s.Cond) {
				return false
			}
			for _, inner := range s.Body.List {
				if !ok(inner) {
					return false
				}
			}
			if s.Else != nil {
				els, isBlock := s.Else.(*ast.BlockStmt)
				if !isBlock {
					return false
				}
				for _, inner := range els.List {
					if !ok(inner) {
						return false
					}
				}
			}
			return true
		default:
			return false
		}
	}
	for _, s := range body.List {
		if !ok(s) {
			return false
		}
	}
	return true
}

// isBuiltin reports whether id resolves to the named predeclared builtin
// (and is not shadowed by a package-level declaration).
func isBuiltin(pass *Pass, id *ast.Ident, name string) bool {
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// sideEffectFree reports whether the expression contains no calls other
// than len/cap (so evaluating it per element cannot observe order).
func sideEffectFree(pass *Pass, e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent {
			if b, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				if name := b.Name(); name == "len" || name == "cap" {
					return true
				}
			}
		}
		free = false
		return false
	})
	return free
}

// collectThenSort accepts the canonical sort pattern: the body only appends
// to slices, and each appended-to slice is passed to a sort call in one of
// the following statements of the same block.
func collectThenSort(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	var targets []types.Object
	for _, s := range rng.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || !isBuiltin(pass, fn, "append") {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedLater(pass, obj, rest) {
			return false
		}
	}
	return true
}

// sortedLater scans the statements after the loop for a sort.*/slices.*
// call mentioning obj.
func sortedLater(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	found := false
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			if name := pn.Imported().Path(); name != "sort" && name != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentioned := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
						mentioned = true
						return false
					}
					return true
				})
				if mentioned {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
