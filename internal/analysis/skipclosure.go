package analysis

import (
	"go/ast"
	"sort"
)

// SkipClosure is the field-level closure of the cycle-skipping contract
// (DESIGN.md §11). The nextevent analyzer checks a per-cycle mutator
// DECLARES SkipCycles; this analyzer checks the declaration is COMPLETE:
// every receiver field the mutator writes — transitively through
// same-package calls — must also be written by the skip method, or carry a
// //lbvet:eventbound justification (on the field, or on a mutating helper
// method that only runs at advertised event boundaries).
//
// This is exactly the PR 6 fused-wake bug class made un-writable: a policy
// that flips an issue gate in OnCycle but forgets it in SkipCycles no
// longer waits for the event-lower-bound property test to catch it at run
// time — the build fails.
//
// Checked pairs, when a type declares both members itself:
//
//	OnCycle  / SkipCycles   (sim.SMPolicy per-cycle hook)
//	TickEach / Skip         (ticked engine queues)
//	Tick     / Skip
var SkipClosure = &Analyzer{
	Name: "skipclosure",
	Doc:  "per-cycle writes that SkipCycles/Skip does not reproduce and no //lbvet:eventbound justifies",
	Run:  runSkipClosure,
}

// skipPairs lists (per-cycle mutator, closed-form skip) method pairs.
var skipPairs = [][2]string{
	{"OnCycle", "SkipCycles"},
	{"TickEach", "Skip"},
	{"Tick", "Skip"},
}

func runSkipClosure(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}
	sums := packageSummaries(pass.Fset, pass.Pkg)

	// Index declared methods by receiver type.
	methods := map[string]map[string]*funcSummary{}
	for _, fs := range sums {
		if fs.recvType == "" {
			continue
		}
		if methods[fs.recvType] == nil {
			methods[fs.recvType] = map[string]*funcSummary{}
		}
		methods[fs.recvType][fs.obj.Name()] = fs
	}

	ebFields := eventBoundFields(pass)

	var recvs []string
	for recv := range methods {
		recvs = append(recvs, recv)
	}
	sort.Strings(recvs)

	for _, recv := range recvs {
		ms := methods[recv]
		// Dedupe by (skip method, field): TickEach and Tick share a Skip,
		// and a field both forget should be reported once.
		reported := map[[2]string]bool{}
		for _, pair := range skipPairs {
			mut, skip := ms[pair[0]], ms[pair[1]]
			if mut == nil || skip == nil || mut.eventBound {
				continue
			}
			if mut.boundedRecvW && !skip.closedRecvW {
				pass.Reportf(mut.decl.Name.Pos(),
					"%s.%s writes through the whole receiver, so its write set cannot be closed against %s; replace the opaque write or restructure it into named-field writes",
					recv, pair[0], pair[1])
				continue
			}
			var fields []string
			for f := range mut.boundedFieldW {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				if _, ok := skip.closedFieldW[f]; ok {
					continue
				}
				if skip.closedRecvW || ebFields[recv][f] {
					continue
				}
				key := [2]string{pair[1], f}
				if reported[key] {
					continue
				}
				reported[key] = true
				origin := mut.boundedFieldW[f]
				via := ""
				if origin.via != "" {
					via = " (via " + origin.via + ")"
				}
				pass.Reportf(origin.pos,
					"%s.%s writes field %q%s but %s does not reproduce it: a skipped span silently loses the update — write it in %s or justify the field or mutating helper with //lbvet:eventbound (DESIGN.md §11)",
					recv, pair[0], f, via, pair[1], pair[1])
			}
		}
	}
}

// eventBoundFields collects, per receiver type, the struct fields carrying
// a //lbvet:eventbound directive (the field-level escape hatch: the field
// only changes at cycles NextEvent advertises).
func eventBoundFields(pass *Pass) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !pass.Pkg.eventBoundAt(pass.Fset, field) {
						continue
					}
					if out[ts.Name.Name] == nil {
						out[ts.Name.Name] = map[string]bool{}
					}
					for _, name := range field.Names {
						out[ts.Name.Name][name.Name] = true
					}
				}
			}
		}
	}
	return out
}
