package analysis

import (
	"go/ast"
	"go/types"
)

// Fingerprint is the static twin of the PR-1 memo-aliasing fix: every
// exported field of config.GPU and config.Linebacker must be consumed by
// both (*Config).Validate and the harness memo-key fingerprint. A field
// invisible to Validate ships unvalidated; a field invisible to the
// fingerprint lets two different configurations alias one memoised result
// — the exact bug class PR 1 fixed at runtime.
//
// The harness side accepts either per-field consumption or a whole-struct
// fingerprint (formatting the full Config value covers every field by
// construction).
var Fingerprint = &Analyzer{
	Name:  "fingerprint",
	Doc:   "config fields invisible to Validate or the harness memo key",
	Whole: true,
	Run:   runFingerprint,
}

func runFingerprint(pass *Pass) {
	var cfgPkg, harnessPkg *Package
	for _, p := range pass.All {
		switch p.Types.Name() {
		case "config":
			if scopeHasStruct(p, "GPU") && scopeHasStruct(p, "Linebacker") {
				cfgPkg = p
			}
		case "harness":
			harnessPkg = p
		}
	}
	if cfgPkg == nil {
		return // partial load (e.g. lbvet ./internal/sim): nothing to check
	}

	watched := map[*types.Struct]string{
		structOf(cfgPkg, "GPU"):        "GPU",
		structOf(cfgPkg, "Linebacker"): "Linebacker",
	}

	// Validate must reference every exported field directly.
	validate := findFunc(cfgPkg, "Validate", "Config")
	if validate == nil {
		pass.Reportf(cfgPkg.Files[0].Name.Pos(),
			"package config has no (*Config).Validate method to consume GPU/Linebacker fields")
	} else {
		used := fieldsReferenced(cfgPkg, validate, watched)
		reportMissing(pass, watched, used, "not checked by (*Config).Validate: unvalidated configuration ships into runs")
	}

	if harnessPkg == nil {
		return
	}
	fp := findFunc(harnessPkg, "cfgFingerprint", "")
	if fp == nil {
		pass.Reportf(harnessPkg.Files[0].Name.Pos(),
			"package harness has no cfgFingerprint function: memo keys cannot separate configurations")
		return
	}
	if consumesWholeConfig(harnessPkg, fp, cfgPkg) {
		return
	}
	used := fieldsReferenced(harnessPkg, fp, watched)
	reportMissing(pass, watched, used, "not part of the harness memo-key fingerprint (cfgFingerprint): two configs differing only here alias one cached result")
}

func reportMissing(pass *Pass, watched map[*types.Struct]string, used map[types.Object]bool, why string) {
	for st, name := range watched {
		if st == nil {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || used[f] {
				continue
			}
			pass.Reportf(f.Pos(), "config field %s.%s is %s", name, f.Name(), why)
		}
	}
}

// scopeHasStruct reports whether the package declares a struct type name.
func scopeHasStruct(p *Package, name string) bool { return structOf(p, name) != nil }

func structOf(p *Package, name string) *types.Struct {
	obj := p.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, _ := obj.Type().Underlying().(*types.Struct)
	return st
}

// findFunc returns the declaration of the named function; recv restricts
// to methods on recv/*recv when non-empty.
func findFunc(p *Package, name, recv string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			if recv == "" {
				if fd.Recv == nil {
					return fd
				}
				continue
			}
			if fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == recv {
				return fd
			}
		}
	}
	return nil
}

// fieldsReferenced collects the fields of the watched structs selected
// anywhere inside fn.
func fieldsReferenced(p *Package, fn *ast.FuncDecl, watched map[*types.Struct]string) map[types.Object]bool {
	used := map[types.Object]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := p.Info.Selections[se]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		recv := sel.Recv()
		if ptr, ok := recv.Underlying().(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if st, ok := recv.Underlying().(*types.Struct); ok {
			if _, watchedStruct := watched[st]; watchedStruct {
				used[sel.Obj()] = true
			}
		}
		return true
	})
	return used
}

// consumesWholeConfig reports whether fn passes a full config.Config value
// (not a pointer) as a call argument — e.g. fmt.Sprintf("%v", *cfg) —
// which renders every field into the fingerprint by construction.
func consumesWholeConfig(p *Package, fn *ast.FuncDecl, cfgPkg *Package) bool {
	cfgObj := cfgPkg.Types.Scope().Lookup("Config")
	if cfgObj == nil {
		return false
	}
	whole := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || whole {
			return !whole
		}
		for _, arg := range call.Args {
			t := p.Info.TypeOf(arg)
			if t != nil && types.Identical(t, cfgObj.Type()) {
				whole = true
				return false
			}
		}
		return true
	})
	return whole
}
