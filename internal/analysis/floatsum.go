package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatSum flags order-sensitive floating-point accumulation driven by map
// iteration in the metric-reduction packages (stats, energy). Float
// addition is not associative: summing the same multiset of values in a
// different order can produce a different result, so a `sum += x` whose
// iteration order comes from a map yields run-to-run drift even when every
// contributing value is identical — exactly what the golden-metrics suite
// would then flap on. Accumulate in integers, iterate sorted keys (e.g.
// stats.SortedKeys), or justify with //lbvet:ordered.
//
// One refinement keeps the rule precise: `bins[k] += v` where k is the
// range key of an enclosing map iteration is allowed — each key owns its
// accumulator, so element order cannot reorder any individual sum.
var FloatSum = &Analyzer{
	Name: "floatsum",
	Doc:  "order-sensitive float accumulation over map iteration",
	Run:  runFloatSum,
}

func runFloatSum(pass *Pass) {
	if !inAccumulation(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				floatSumWalk(pass, fd.Body, false, map[types.Object]bool{})
			}
		}
	}
}

// floatSumWalk recurses through the tree tracking whether the current
// point is (transitively) inside a range over a map, and which range keys
// introduced by those map loops are in scope.
func floatSumWalk(pass *Pass, n ast.Node, inMapRange bool, keys map[types.Object]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.RangeStmt:
			inner := inMapRange
			innerKeys := keys
			if mapType(pass.TypeOf(m.X)) != nil && !pass.Ordered(pass.Pkg, m) {
				inner = true
				if id, ok := m.Key.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.Pkg.Info.Defs[id]; obj != nil {
						innerKeys = map[types.Object]bool{obj: true}
						for k := range keys {
							innerKeys[k] = true
						}
					}
				}
			}
			floatSumWalk(pass, m.Body, inner, innerKeys)
			return false
		case *ast.FuncLit:
			// A closure body establishes its own iteration context.
			floatSumWalk(pass, m.Body, false, map[types.Object]bool{})
			return false
		case *ast.AssignStmt:
			if !inMapRange {
				return true
			}
			if m.Tok != token.ADD_ASSIGN && m.Tok != token.SUB_ASSIGN && m.Tok != token.MUL_ASSIGN {
				return true
			}
			if len(m.Lhs) != 1 || !isFloat(pass.TypeOf(m.Lhs[0])) || pass.Ordered(pass.Pkg, m) {
				return true
			}
			if keyedBin(pass, m.Lhs[0], keys) {
				return true
			}
			pass.Reportf(m.Pos(),
				"float accumulation into %s under map iteration: float addition is not associative, so map order leaks into the value; accumulate integers or iterate sorted keys",
				render(pass.Fset, m.Lhs[0]))
		}
		return true
	})
}

// keyedBin reports whether lhs is an index expression keyed by the range
// key of an enclosing map loop (per-key accumulators are order-safe).
func keyedBin(pass *Pass, lhs ast.Expr, keys map[types.Object]bool) bool {
	idx, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := idx.Index.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	return obj != nil && keys[obj]
}
