package analysis

import (
	"go/ast"
	"go/token"
)

// NextEvent is the static guard of the cycle-skipping contract (DESIGN.md
// §10): every component that mutates simulated state on a per-cycle basis
// must advertise its future events, or the event-driven run loop will skip
// over state changes it was never told about.
//
// Two patterns are enforced in the simulation-state packages:
//
//   - A type that declares an OnCycle method does per-cycle work, so it
//     must declare its own NextEvent AND SkipCycles. Declaring — not merely
//     satisfying the interface: the dangerous case is a scheme embedding
//     BasePolicy, overriding OnCycle with real window logic, and silently
//     inheriting the base's permanently-quiescent NextEvent. The promoted
//     methods make it compile; the first skipping run jumps its window
//     boundaries. That inheritance bug is invisible to the type checker
//     and exactly what this rule rejects.
//   - A type that declares TickEach or DeliverEach is a ticked engine
//     queue, so it must declare NextEvent (its contents decide when the
//     engine may next sleep).
var NextEvent = &Analyzer{
	Name: "nextevent",
	Doc:  "per-cycle state mutators that do not participate in the NextEvent protocol",
	Run:  runNextEvent,
}

func runNextEvent(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}

	// Collect the methods every package-local type declares itself —
	// embedding-promoted methods deliberately do not count.
	methods := map[string]map[string]token.Pos{} // receiver type -> method -> pos
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := receiverTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			if methods[recv] == nil {
				methods[recv] = map[string]token.Pos{}
			}
			methods[recv][fd.Name.Name] = fd.Name.Pos()
		}
	}

	for recv, ms := range methods {
		if pos, ok := ms["OnCycle"]; ok {
			_, hasNext := ms["NextEvent"]
			_, hasSkip := ms["SkipCycles"]
			switch {
			case !hasNext && !hasSkip:
				pass.Reportf(pos,
					"%s declares OnCycle but neither NextEvent nor SkipCycles: its per-cycle work is invisible to the cycle-skipping engine",
					recv)
			case !hasNext:
				pass.Reportf(pos,
					"%s declares OnCycle but no NextEvent: the engine cannot know when its per-cycle work next changes state",
					recv)
			case !hasSkip:
				pass.Reportf(pos,
					"%s declares OnCycle but no SkipCycles: any per-cycle accrual it maintains is lost across skipped spans",
					recv)
			}
		}
		for _, tick := range []string{"TickEach", "DeliverEach"} {
			pos, ok := ms[tick]
			if !ok {
				continue
			}
			if _, hasNext := ms["NextEvent"]; !hasNext {
				pass.Reportf(pos,
					"%s declares %s but no NextEvent: a ticked queue must advertise when its contents next move",
					recv, tick)
			}
		}
	}
}

// receiverTypeName unwraps a method receiver expression to the named type,
// through pointers and generic instantiations.
func receiverTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		case *ast.ParenExpr:
			e = t.X
		default:
			return ""
		}
	}
}
