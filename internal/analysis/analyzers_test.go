package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads testdata/src/<name> as its own module, runs the given
// analyzers over every package in it, and checks the diagnostics against
// the fixture's `// want "regexp" ...` comments: every expectation must be
// matched by a diagnostic on its line, and every diagnostic must be
// expected.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.LoadPatterns(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", fixture)
	}

	type expectation struct {
		re  *regexp.Regexp
		raw string
		hit bool
	}
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := loader.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, raw := range splitWant(t, pos, rest) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, raw, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}

	diags := Run(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// splitWant parses the `"re" "re"` or backquoted forms of a want comment.
func splitWant(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			rest := s[1:]
			end := strings.IndexByte(rest, '"')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern %q", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+2])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s, err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: want patterns must be quoted or backquoted, got %q", pos, s)
		}
	}
	return out
}

func TestMapRangeFixture(t *testing.T)  { runFixture(t, "maprange", MapRange) }
func TestNonDetermFixture(t *testing.T) { runFixture(t, "nondeterm", NonDeterm) }
func TestStatsFlowFixture(t *testing.T) { runFixture(t, "statsflow", StatsFlow) }
func TestFloatSumFixture(t *testing.T)  { runFixture(t, "floatsum", FloatSum) }
func TestFingerprintBad(t *testing.T)   { runFixture(t, "fingerprintbad", Fingerprint) }
func TestFingerprintGood(t *testing.T)  { runFixture(t, "fingerprintgood", Fingerprint) }
func TestNoPanicFixture(t *testing.T)   { runFixture(t, "nopanic", NoPanic) }
func TestNextEventFixture(t *testing.T) { runFixture(t, "nextevent", NextEvent) }

func TestSkipClosureFixture(t *testing.T) { runFixture(t, "skipclosure", SkipClosure) }

func TestWorkerShareFixture(t *testing.T) { runFixture(t, "workershare", WorkerShare) }

func TestErrFlowFixture(t *testing.T) { runFixture(t, "errflow", ErrFlow) }

// TestByName covers the analyzer-subset resolver.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("maprange, floatsum")
	if err != nil || len(two) != 2 || two[0] != MapRange || two[1] != FloatSum {
		t.Fatalf("ByName subset = %v, err %v", two, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) should fail")
	}
}

// TestDirectiveAttachment pins the two sanctioned directive placements:
// trailing on the loop line, and the last line of a comment group directly
// above — but not a directive separated by a blank line.
func TestDirectiveAttachment(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module directive\n\ngo 1.22\n")
	write("sim.go", `package sim

type s struct{ m map[int]int }

func (x *s) detached() []int {
	var out []int
	//lbvet:ordered stale justification

	for k := range x.m {
		out = append(out, k)
	}
	return out
}
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(loader.Fset, pkgs, []*Analyzer{MapRange})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "range over map") {
		t.Fatalf("blank-line-separated directive should not attach; got %v", diags)
	}
}

// TestLoaderRejectsOutsideModule pins the loader's module boundary.
func TestLoaderRejectsOutsideModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(t.TempDir()); err == nil {
		t.Fatal("LoadDir outside the module should fail")
	}
}
