package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchemaVersion invalidates every cache entry when the analyzers, the
// entry format or the hashing scheme change. Bump it whenever an analyzer's
// semantics or message text move.
const cacheSchemaVersion = 1

// RunStats describes what an incremental run actually did — the driver
// prints it and the cache-correctness tests assert on it.
type RunStats struct {
	// Packages is the number of packages the patterns selected.
	Packages int
	// CachedPackages had their per-package findings served from cache.
	CachedPackages int
	// AnalyzedPackages had their per-package findings computed fresh.
	AnalyzedPackages int
	// WholeFromCache reports whether the whole-program findings came from
	// cache (vacuously true when no whole-program analyzer is selected).
	WholeFromCache bool
	// LoadedPackages is the number of packages parsed and type-checked this
	// run (0 on a full cache hit).
	LoadedPackages int
	// PackagePaths lists the selected packages' import paths, sorted.
	PackagePaths []string
}

// RunIncremental analyzes the packages selected by patterns (relative to
// dir), serving unchanged packages from the on-disk cache at cacheDir and
// analyzing only the rest. A package's cache key covers its own sources,
// the sources of every module-internal package it transitively imports,
// go.mod, the Go toolchain version and the analyzer set — any edit that
// could change a finding misses the cache; everything else hits it without
// parsing or type-checking a single file.
//
// Returned diagnostics use module-relative, slash-separated file names and
// are sorted with SortDiagnostics, so a warm run's output is byte-identical
// to a cold run's.
func RunIncremental(dir string, patterns []string, analyzers []*Analyzer, cacheDir string) ([]Diagnostic, RunStats, error) {
	var stats RunStats
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, stats, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, stats, err
	}
	dirs, err := resolvePatternDirs(abs, patterns)
	if err != nil {
		return nil, stats, err
	}

	// Import paths, in the sorted order LoadPatterns would produce.
	pathOf := map[string]string{}
	dirOf := map[string]string{}
	var paths []string
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, stats, fmt.Errorf("analysis: %s is outside module %s", d, root)
		}
		p := modPath
		if rel != "." {
			p = modPath + "/" + filepath.ToSlash(rel)
		}
		pathOf[d] = p
		dirOf[p] = d
		paths = append(paths, p)
	}
	sort.Strings(paths)
	stats.Packages = len(paths)
	stats.PackagePaths = paths

	g := &depGraph{root: root, modPath: modPath, content: map[string]string{}, deps: map[string][]string{}, closure: map[string]string{}}
	suite, err := suiteKey(root, analyzers)
	if err != nil {
		return nil, stats, err
	}

	var wholeAnalyzers, pkgAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.Whole {
			wholeAnalyzers = append(wholeAnalyzers, a)
		} else {
			pkgAnalyzers = append(pkgAnalyzers, a)
		}
	}

	// Per-package lookups.
	cached := map[string][]Diagnostic{}
	var dirty []string // import paths needing fresh analysis
	closures := map[string]string{}
	for _, p := range paths {
		cl, err := g.closureHash(dirOf[p])
		if err != nil {
			return nil, stats, err
		}
		closures[p] = cl
		if len(pkgAnalyzers) == 0 {
			continue
		}
		diags, ok := readCacheEntry(cacheDir, pkgEntryName(suite, cl), p)
		if ok {
			cached[p] = diags
			stats.CachedPackages++
		} else {
			dirty = append(dirty, p)
		}
	}

	// Whole-program lookup: the key covers every selected package.
	var wholeDiags []Diagnostic
	wholeHit := true
	wholeName := wholeEntryName(suite, paths, closures)
	if len(wholeAnalyzers) > 0 {
		wholeDiags, wholeHit = readCacheEntry(cacheDir, wholeName, "")
	}
	stats.WholeFromCache = wholeHit

	needWhole := len(wholeAnalyzers) > 0 && !wholeHit
	if len(dirty) > 0 || needWhole {
		loadPaths := dirty
		if needWhole {
			loadPaths = paths // whole-program passes see every package
		}
		loader, err := NewLoader(root)
		if err != nil {
			return nil, stats, err
		}
		var pkgs []*Package
		for _, p := range loadPaths {
			pkg, err := loader.LoadDir(dirOf[p])
			if err != nil {
				return nil, stats, err
			}
			if pkg != nil {
				pkgs = append(pkgs, pkg)
			}
		}
		stats.LoadedPackages = len(pkgs)

		toRun := pkgAnalyzers
		if needWhole {
			toRun = append(append([]*Analyzer{}, pkgAnalyzers...), wholeAnalyzers...)
		}
		skip := map[string]bool{}
		for p := range cached {
			skip[p] = true
		}
		perPkg, whole := runUnits(loader.Fset, pkgs, toRun, skip)

		for _, p := range dirty {
			diags := Relativize(root, perPkg[p])
			cached[p] = diags
			if err := writeCacheEntry(cacheDir, pkgEntryName(suite, closures[p]), p, diags); err != nil {
				return nil, stats, err
			}
		}
		stats.AnalyzedPackages = len(dirty)
		if needWhole {
			wholeDiags = Relativize(root, whole)
			if err := writeCacheEntry(cacheDir, wholeName, "", wholeDiags); err != nil {
				return nil, stats, err
			}
		}
	}

	var out []Diagnostic
	for _, p := range paths {
		out = append(out, cached[p]...)
	}
	out = append(out, wholeDiags...)
	SortDiagnostics(out)
	return out, stats, nil
}

// depGraph hashes the module-internal dependency graph without
// type-checking: package sources are parsed imports-only, and each
// package's closure hash folds in the closure hashes of everything it
// imports inside the module.
type depGraph struct {
	root, modPath string
	content       map[string]string   // dir -> hash of its own sources
	deps          map[string][]string // dir -> module-internal dep dirs
	closure       map[string]string   // dir -> hash of sources + transitive deps
}

// scan parses dir's sources imports-only, recording the content hash and
// the module-internal dependency edges.
func (g *depGraph) scan(dir string) error {
	if _, ok := g.content[dir]; ok {
		return nil
	}
	srcs, err := goSources(dir)
	if err != nil {
		return err
	}
	h := sha256.New()
	fset := token.NewFileSet()
	var deps []string
	seen := map[string]bool{}
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(g.root, src)
		fmt.Fprintf(h, "%s\x00%d\x00", filepath.ToSlash(rel), len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, src, data, parser.ImportsOnly)
		if err != nil {
			// A syntactically broken file still lands in the content hash;
			// the analysis run itself will report the parse error.
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != g.modPath && !strings.HasPrefix(path, g.modPath+"/") {
				continue
			}
			depDir := filepath.Join(g.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, g.modPath), "/")))
			if !seen[depDir] {
				seen[depDir] = true
				deps = append(deps, depDir)
			}
		}
	}
	sort.Strings(deps)
	g.content[dir] = hex.EncodeToString(h.Sum(nil))
	g.deps[dir] = deps
	return nil
}

// closureHash returns the hash of dir's sources plus every module-internal
// package it transitively imports. Go forbids import cycles, so plain
// recursion with memoization terminates.
func (g *depGraph) closureHash(dir string) (string, error) {
	if cl, ok := g.closure[dir]; ok {
		return cl, nil
	}
	if err := g.scan(dir); err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "self\x00%s\x00", g.content[dir])
	for _, dep := range g.deps[dir] {
		dcl, err := g.closureHash(dep)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(g.root, dep)
		fmt.Fprintf(h, "dep\x00%s\x00%s\x00", filepath.ToSlash(rel), dcl)
	}
	cl := hex.EncodeToString(h.Sum(nil))
	g.closure[dir] = cl
	return cl, nil
}

// suiteKey fingerprints everything outside package sources that a finding
// can depend on: the cache schema, the Go toolchain (stdlib type-checking
// feeds the analyzers), go.mod (the module path prefixes every import) and
// the selected analyzer set.
func suiteKey(root string, analyzers []*Analyzer) (string, error) {
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	h := sha256.New()
	fmt.Fprintf(h, "lbvet-cache\x00v%d\x00%s\x00%s\x00%s\x00",
		cacheSchemaVersion, runtime.Version(), strings.Join(names, ","), gomod)
	return hex.EncodeToString(h.Sum(nil)), nil
}

func pkgEntryName(suite, closure string) string {
	h := sha256.Sum256([]byte(suite + "\x00" + closure))
	return "p-" + hex.EncodeToString(h[:])[:40] + ".json"
}

func wholeEntryName(suite string, paths []string, closures map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", suite)
	for _, p := range paths {
		fmt.Fprintf(h, "%s\x00%s\x00", p, closures[p])
	}
	return "w-" + hex.EncodeToString(h.Sum(nil))[:40] + ".json"
}

// cacheEntry is the on-disk format of one cache file.
type cacheEntry struct {
	Schema  int          `json:"schema"`
	Package string       `json:"package,omitempty"` // import path; empty for whole-program entries
	Diags   []cachedDiag `json:"diags"`
}

type cachedDiag struct {
	File     string `json:"file"` // module-relative, slash-separated
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// readCacheEntry loads one entry, returning ok=false on any miss, decode
// failure or identity mismatch (a truncated or colliding entry re-analyzes
// rather than lying).
func readCacheEntry(cacheDir, name, wantPkg string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(cacheDir, name))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchemaVersion || e.Package != wantPkg {
		return nil, false
	}
	diags := make([]Diagnostic, len(e.Diags))
	for i, d := range e.Diags {
		diags[i] = Diagnostic{
			Pos:      token.Position{Filename: d.File, Line: d.Line, Column: d.Col},
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	return diags, true
}

// writeCacheEntry stores one entry atomically (temp file + rename), so a
// crashed run never leaves a half-written entry a later run could trust.
func writeCacheEntry(cacheDir, name, pkg string, diags []Diagnostic) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	e := cacheEntry{Schema: cacheSchemaVersion, Package: pkg, Diags: make([]cachedDiag, len(diags))}
	for i, d := range diags {
		e.Diags[i] = cachedDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message}
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(cacheDir, name))
}
