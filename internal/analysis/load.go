package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks the module's packages without golang.org/x/tools: it
// parses sources with go/parser, resolves module-internal imports by
// walking the module tree, and delegates standard-library imports to the
// stdlib source importer. Test files are skipped — the determinism rules
// govern simulator code, and the loader stays free of external test
// package handling.
type Loader struct {
	Fset *token.FileSet

	rootDir    string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // by import path
	loading    map[string]bool
}

// NewLoader builds a loader rooted at the directory containing go.mod.
// rootDir may point anywhere inside the module; the loader walks up to the
// module root.
func NewLoader(rootDir string) (*Loader, error) {
	abs, err := filepath.Abs(rootDir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		rootDir:    root,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.rootDir }

// findModule walks up from dir to the first go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// LoadPatterns loads the packages named by Go-style patterns relative to
// dir: "./..." (everything under dir), "./x/..." or plain directory paths.
// Directories without non-test Go files are skipped silently for `...`
// patterns and reported as errors for explicit ones.
func (l *Loader) LoadPatterns(dir string, patterns []string) ([]*Package, error) {
	dirs, err := resolvePatternDirs(dir, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// resolvePatternDirs expands Go-style package patterns relative to dir into
// absolute package directories: "./..." (everything under dir), "x/..." or
// plain directory paths. Shared by LoadPatterns and the incremental driver,
// so a cached run resolves exactly the package set a cold run loads.
func resolvePatternDirs(dir string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			expanded, err := expandDirs(dir)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(dir, strings.TrimSuffix(pat, "/..."))
			expanded, err := expandDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			d := filepath.Join(dir, pat)
			info, err := os.Stat(d)
			if err != nil || !info.IsDir() {
				return nil, fmt.Errorf("analysis: %q is not a package directory", pat)
			}
			names, err := goSources(d)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("analysis: no Go files in %s", d)
			}
			add(d)
		}
	}
	return dirs, nil
}

// expandDirs returns every directory under root that contains non-test Go
// files, skipping testdata, vendor, hidden and underscore directories.
func expandDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		srcs, err := goSources(path)
		if err != nil {
			return err
		}
		if len(srcs) > 0 {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// goSources lists the non-test, non-hidden Go files of a directory.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// LoadDir loads and type-checks the package in dir (which must live inside
// the loader's module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	rel, err := filepath.Rel(l.rootDir, dir)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.rootDir)
	}
	path := l.modulePath
	if rel != "." {
		path = l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path)
}

// Import implements types.Importer: module-internal paths load from
// source; everything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.rootDir, filepath.FromSlash(rel))
	srcs, err := goSources(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %v", path, err)
	}
	if len(srcs) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	pkg := &Package{Path: path, Dir: dir,
		ordered:    map[string]map[int]bool{},
		panicOK:    map[string]map[int]bool{},
		executorOK: map[string]map[int]bool{},
		eventBound: map[string]map[int]bool{},
		smShared:   map[string]map[int]bool{},
		errOK:      map[string]map[int]bool{},
	}
	for _, src := range srcs {
		f, err := parser.ParseFile(l.Fset, src, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.ordered[src] = directiveLines(l.Fset, f, OrderedDirective)
		pkg.panicOK[src] = directiveLines(l.Fset, f, PanicDirective)
		pkg.executorOK[src] = directiveLines(l.Fset, f, ExecutorDirective)
		pkg.eventBound[src] = directiveLines(l.Fset, f, EventBoundDirective)
		pkg.smShared[src] = directiveLines(l.Fset, f, SMSharedDirective)
		pkg.errOK[src] = directiveLines(l.Fset, f, ErrOKDirective)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	pkg.fset = l.Fset
	l.pkgs[path] = pkg
	return pkg, nil
}

// directiveLines records the lines of a file that the given directive
// covers: the directive's own line (trailing-comment form) and the last
// line of its comment group (so a multi-line justification above a loop
// still attaches to it).
func directiveLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directive) {
				out[fset.Position(c.Pos()).Line] = true
				out[fset.Position(cg.End()).Line] = true
			}
		}
	}
	return out
}
