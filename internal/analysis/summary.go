package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the write-summary substrate shared by the dataflow analyzers
// (skipclosure, workershare). For every function declared in a package it
// computes which memory roots the function writes — receiver fields, the
// whole receiver, parameters, package-level variables, and chains passing
// through shared engine types — and closes the summaries transitively
// through same-package calls with a fixpoint over the package call graph.
//
// Precision model (DESIGN.md §11):
//
//   - Field granularity is the FIRST hop off the root: `s.trans.sent++`
//     writes field "trans". That is exactly the granularity SkipCycles
//     bodies use, so no precision is lost where it matters.
//   - Intra-function aliases are tracked flow-insensitively: after
//     `t := s.trans` or `sc := &s.warps[i].score`, writes through t/sc
//     attribute to the underlying field. Aliases obtained through call
//     results (`q := d.waiting(ch)`) are NOT tracked — writes through them
//     vanish, which is why mutating helpers that hide behind such aliases
//     must either be reached as calls (they are, via the call graph) or be
//     annotated //lbvet:eventbound.
//   - A callee that writes through its receiver or a pointer parameter
//     marks the caller's corresponding argument root as written, so
//     `s.pumpTransfer(t, cycle)` with `t := s.trans` writes "trans" and
//     `d.inflight.popRoot()` writes "inflight".
//   - Calls that cannot be resolved to a same-package declaration
//     (interface methods, cross-package calls, function values) contribute
//     nothing. The analyzers built on top bound that blindness: skipclosure
//     compares two closures over the SAME package, and workershare states
//     the limitation in its doc.
//
// Each summary carries two closures: the full one (everything the function
// writes, used for the SkipCycles side) and the bounded one, which refuses
// to propagate through callees annotated //lbvet:eventbound (used for the
// OnCycle side — an event-bound helper's writes are excused by definition).

type rootKind uint8

const (
	rootNone   rootKind = iota // untracked local, call result, ...
	rootRecv                   // the method receiver itself
	rootField                  // a first-hop field of the receiver
	rootParam                  // a (pointer) parameter
	rootGlobal                 // a package-level variable
)

type root struct {
	kind  rootKind
	field string // rootField: first-hop field name
	param int    // rootParam: parameter index
	obj   types.Object
}

// fieldOrigin records where a (possibly transitive) field write was first
// observed and through which callee it arrived ("" for a direct write).
type fieldOrigin struct {
	pos token.Pos
	via string
}

// sharedWrite is one write whose lvalue chain passes through a shared
// engine type or a package-level variable (workershare's raw material).
type sharedWrite struct {
	pos    token.Pos
	what   string // rendered lvalue
	shared string // shared type name, or "" for a package-level variable
}

// callEdge is one syntactic call site with the caller-side roots of its
// receiver and arguments.
type callEdge struct {
	callee   *types.Func
	pos      token.Pos
	recvRoot root   // rootNone for plain function calls
	argRoots []root // positional arguments
}

// funcSummary is the per-function write summary.
type funcSummary struct {
	obj        *types.Func
	decl       *ast.FuncDecl
	recvType   string // named receiver type, "" for plain functions
	eventBound bool   // carries //lbvet:eventbound on its declaration

	// Direct observations.
	fieldW  map[string]fieldOrigin
	paramW  map[int]token.Pos
	recvW   bool // writes through the whole receiver (`*s = ...`)
	recvPos token.Pos
	globalW []sharedWrite
	sharedW []sharedWrite
	calls   []callEdge

	// Fixpoint results. closed* includes every same-package callee;
	// bounded* stops at //lbvet:eventbound callees.
	closedFieldW  map[string]fieldOrigin
	boundedFieldW map[string]fieldOrigin
	closedParamW  map[int]bool
	boundedParamW map[int]bool
	closedRecvW   bool
	boundedRecvW  bool
}

// packageSummaries builds (once per package) the closed write summaries of
// every declared function, keyed by its types.Func object.
func packageSummaries(fset *token.FileSet, pkg *Package) map[*types.Func]*funcSummary {
	pkg.summaryOnce.Do(func() {
		pkg.summaries = buildSummaries(fset, pkg)
	})
	return pkg.summaries
}

func buildSummaries(fset *token.FileSet, pkg *Package) map[*types.Func]*funcSummary {
	sums := map[*types.Func]*funcSummary{}
	var order []*funcSummary // declaration order, for a deterministic fixpoint
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fs := collectFunc(fset, pkg, fd, obj)
			sums[obj] = fs
			order = append(order, fs)
		}
	}

	// Seed the closures from the direct observations.
	for _, fs := range order {
		fs.closedFieldW = map[string]fieldOrigin{}
		fs.boundedFieldW = map[string]fieldOrigin{}
		for k, v := range fs.fieldW {
			fs.closedFieldW[k] = v
			fs.boundedFieldW[k] = v
		}
		fs.closedParamW = map[int]bool{}
		fs.boundedParamW = map[int]bool{}
		for i := range fs.paramW {
			fs.closedParamW[i] = true
			fs.boundedParamW[i] = true
		}
		fs.closedRecvW = fs.recvW
		fs.boundedRecvW = fs.recvW
	}

	// Close over same-package calls. The sets only grow and are bounded by
	// (fields + params) per function, so the fixpoint terminates.
	for changed := true; changed; {
		changed = false
		for _, fs := range order {
			for _, c := range fs.calls {
				cs := sums[c.callee]
				if cs == nil {
					continue
				}
				if propagateCall(fs, cs, c, false) {
					changed = true
				}
				if !cs.eventBound && propagateCall(fs, cs, c, true) {
					changed = true
				}
			}
		}
	}
	return sums
}

// propagateCall folds callee cs's effects through call edge c into caller
// fs, in the closed (bounded=false) or bounded (bounded=true) variant.
// Returns true if the caller's sets grew.
func propagateCall(fs, cs *funcSummary, c callEdge, bounded bool) bool {
	calleeFieldW := cs.closedFieldW
	calleeParamW := cs.closedParamW
	calleeRecvW := cs.closedRecvW
	if bounded {
		calleeFieldW = cs.boundedFieldW
		calleeParamW = cs.boundedParamW
		calleeRecvW = cs.boundedRecvW
	}
	fieldW := fs.closedFieldW
	paramW := fs.closedParamW
	recvW := &fs.closedRecvW
	if bounded {
		fieldW = fs.boundedFieldW
		paramW = fs.boundedParamW
		recvW = &fs.boundedRecvW
	}

	changed := false
	markRoot := func(r root, fields map[string]fieldOrigin, wholeRecv bool) {
		switch r.kind {
		case rootRecv:
			if wholeRecv || fields == nil {
				// The callee writes through the shared receiver but we cannot
				// name the fields (whole-receiver write, or a non-method
				// callee writing through a parameter bound to the receiver).
				if !*recvW {
					*recvW = true
					changed = true
				}
				return
			}
			for f := range fields {
				if _, ok := fieldW[f]; !ok {
					fieldW[f] = fieldOrigin{pos: c.pos, via: cs.obj.Name()}
					changed = true
				}
			}
		case rootField:
			if _, ok := fieldW[r.field]; !ok {
				fieldW[r.field] = fieldOrigin{pos: c.pos, via: cs.obj.Name()}
				changed = true
			}
		case rootParam:
			if !paramW[r.param] {
				paramW[r.param] = true
				changed = true
			}
		}
	}

	// The callee's receiver effects land on the call's receiver root.
	if calleeRecvW || len(calleeFieldW) > 0 {
		sameType := fs.recvType != "" && fs.recvType == cs.recvType
		if sameType && c.recvRoot.kind == rootRecv {
			// s.helper(): merge the callee's per-field sets name for name.
			markRoot(c.recvRoot, calleeFieldW, calleeRecvW)
		} else {
			markRoot(c.recvRoot, nil, true)
		}
	}
	// The callee's parameter effects land on the matching argument roots.
	for i, r := range c.argRoots {
		if calleeParamW[i] {
			markRoot(r, nil, true)
		}
	}
	return changed
}

// fnCtx is the per-function environment used while collecting writes.
type fnCtx struct {
	info   *types.Info
	recv   types.Object
	params map[types.Object]int
	env    map[types.Object]root // intra-function aliases
}

// collectFunc gathers the direct write/call observations of one function.
func collectFunc(fset *token.FileSet, pkg *Package, fd *ast.FuncDecl, obj *types.Func) *funcSummary {
	fs := &funcSummary{
		obj:        obj,
		decl:       fd,
		eventBound: pkg.eventBoundAt(fset, fd),
		fieldW:     map[string]fieldOrigin{},
		paramW:     map[int]token.Pos{},
	}
	ctx := &fnCtx{info: pkg.Info, params: map[types.Object]int{}, env: map[types.Object]root{}}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		fs.recvType = receiverTypeName(fd.Recv.List[0].Type)
		for _, name := range fd.Recv.List[0].Names {
			if o := pkg.Info.Defs[name]; o != nil {
				ctx.recv = o
			}
		}
	}
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if o := pkg.Info.Defs[name]; o != nil {
					ctx.params[o] = idx
				}
				idx++
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				// New bindings: track aliases of interesting roots.
				if len(st.Lhs) == len(st.Rhs) {
					for i, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok {
							continue
						}
						o := pkg.Info.Defs[id]
						if o == nil {
							continue
						}
						if r := exprRoot(st.Rhs[i], ctx); r.kind == rootRecv || r.kind == rootField || r.kind == rootParam {
							ctx.env[o] = r
						}
					}
				}
				return true
			}
			for i, lhs := range st.Lhs {
				recordWrite(fset, pkg, fs, ctx, lhs)
				// Plain re-binding of a local to a trackable root keeps the
				// alias environment honest (`t = s.trans` after `var t *T`).
				if id, ok := lhs.(*ast.Ident); ok && i < len(st.Rhs) && len(st.Lhs) == len(st.Rhs) {
					if o := pkg.Info.Uses[id]; o != nil {
						if r := exprRoot(st.Rhs[i], ctx); r.kind == rootRecv || r.kind == rootField || r.kind == rootParam {
							ctx.env[o] = r
						}
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range st.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					o := pkg.Info.Defs[name]
					if o == nil {
						continue
					}
					if r := exprRoot(vs.Values[i], ctx); r.kind == rootRecv || r.kind == rootField || r.kind == rootParam {
						ctx.env[o] = r
					}
				}
			}
		case *ast.IncDecStmt:
			recordWrite(fset, pkg, fs, ctx, st.X)
		case *ast.RangeStmt:
			if st.Tok == token.ASSIGN {
				if st.Key != nil {
					recordWrite(fset, pkg, fs, ctx, st.Key)
				}
				if st.Value != nil {
					recordWrite(fset, pkg, fs, ctx, st.Value)
				}
			}
		case *ast.CallExpr:
			collectCall(pkg, fs, ctx, st, fset)
		}
		return true
	})
	return fs
}

// collectCall records a call edge (for the fixpoint) and the write effects
// of mutating builtins.
func collectCall(pkg *Package, fs *funcSummary, ctx *fnCtx, call *ast.CallExpr, fset *token.FileSet) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[fun]
		if b, ok := obj.(*types.Builtin); ok {
			switch b.Name() {
			case "delete", "copy":
				if len(call.Args) > 0 {
					recordWrite(fset, pkg, fs, ctx, call.Args[0])
				}
			}
			return
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() != pkg.Types {
			return
		}
		fs.calls = append(fs.calls, callEdge{
			callee:   fn,
			pos:      call.Pos(),
			recvRoot: root{kind: rootNone},
			argRoots: argRoots(call, ctx),
		})
	case *ast.SelectorExpr:
		sel := pkg.Info.Selections[fun]
		if sel == nil || sel.Kind() != types.MethodVal {
			// Package-qualified call (pkg.Fn): same-package is impossible
			// through a selector, so nothing to record.
			return
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok || fn.Pkg() != pkg.Types {
			return
		}
		fs.calls = append(fs.calls, callEdge{
			callee:   fn,
			pos:      call.Pos(),
			recvRoot: exprRoot(fun.X, ctx),
			argRoots: argRoots(call, ctx),
		})
	}
}

func argRoots(call *ast.CallExpr, ctx *fnCtx) []root {
	out := make([]root, len(call.Args))
	for i, a := range call.Args {
		out[i] = exprRoot(a, ctx)
	}
	return out
}

// recordWrite attributes one lvalue write to its root and scans the lvalue
// chain for shared engine types.
func recordWrite(fset *token.FileSet, pkg *Package, fs *funcSummary, ctx *fnCtx, lhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if shared, ok := sharedOnChain(lhs, ctx.info); ok {
		fs.sharedW = append(fs.sharedW, sharedWrite{
			pos: lhs.Pos(), what: shortExpr(lhs), shared: shared,
		})
	}
	r := exprRoot(lhs, ctx)
	switch r.kind {
	case rootField:
		if _, ok := fs.fieldW[r.field]; !ok {
			fs.fieldW[r.field] = fieldOrigin{pos: lhs.Pos()}
		}
	case rootRecv:
		if !fs.recvW {
			fs.recvW = true
			fs.recvPos = lhs.Pos()
		}
	case rootParam:
		if _, ok := fs.paramW[r.param]; !ok {
			fs.paramW[r.param] = lhs.Pos()
		}
	case rootGlobal:
		fs.globalW = append(fs.globalW, sharedWrite{pos: lhs.Pos(), what: shortExpr(lhs)})
	}
}

// exprRoot resolves an expression to its memory root, keeping the FIRST
// field hop off the receiver and following intra-function aliases.
func exprRoot(e ast.Expr, ctx *fnCtx) root {
	switch x := e.(type) {
	case *ast.Ident:
		obj := ctx.info.Uses[x]
		if obj == nil {
			obj = ctx.info.Defs[x]
		}
		if obj == nil {
			return root{kind: rootNone}
		}
		if obj == ctx.recv {
			return root{kind: rootRecv, obj: obj}
		}
		if i, ok := ctx.params[obj]; ok {
			return root{kind: rootParam, param: i, obj: obj}
		}
		if r, ok := ctx.env[obj]; ok {
			return r
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return root{kind: rootGlobal, obj: obj}
		}
		return root{kind: rootNone}
	case *ast.SelectorExpr:
		r := exprRoot(x.X, ctx)
		if r.kind == rootRecv {
			return root{kind: rootField, field: firstHopField(x, ctx.info)}
		}
		// Package-qualified globals: pkgname.Var.
		if r.kind == rootNone {
			if obj := ctx.info.Uses[x.Sel]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return root{kind: rootGlobal, obj: obj}
				}
			}
		}
		return r
	case *ast.StarExpr:
		return exprRoot(x.X, ctx)
	case *ast.ParenExpr:
		return exprRoot(x.X, ctx)
	case *ast.IndexExpr:
		return exprRoot(x.X, ctx)
	case *ast.SliceExpr:
		return exprRoot(x.X, ctx)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprRoot(x.X, ctx)
		}
	}
	return root{kind: rootNone}
}

// firstHopField names the first field stepped off the receiver, normalising
// promoted selectors (s.Promoted resolves to the embedded hop's name, so
// both spellings of the same write agree).
func firstHopField(sel *ast.SelectorExpr, info *types.Info) string {
	s := info.Selections[sel]
	if s == nil || len(s.Index()) == 0 {
		return sel.Sel.Name
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		i := s.Index()[0]
		if i < st.NumFields() {
			return st.Field(i).Name()
		}
	}
	return sel.Sel.Name
}

// sharedEngineTypes are the types workershare treats as cross-SM shared
// state: a write whose lvalue chain passes through any of them during the
// parallel SM phase breaks the disjoint-partition argument of DESIGN.md §9.
// Matched by (package name, type name), so fixture modules participate.
var sharedEngineTypes = map[[2]string]bool{
	{"sim", "GPU"}:         true,
	{"config", "Config"}:   true,
	{"workload", "Kernel"}: true,
}

// sharedOnChain reports whether any subexpression of the lvalue chain has a
// shared engine type (unwrapping pointers).
func sharedOnChain(e ast.Expr, info *types.Info) (string, bool) {
	for {
		if name, ok := sharedType(info.TypeOf(e)); ok {
			return name, true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return "", false
			}
			e = x.X
		default:
			return "", false
		}
	}
}

func sharedType(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if p, ok2 := t.(*types.Pointer); ok2 {
			n, ok = p.Elem().(*types.Named)
		}
		if !ok {
			return "", false
		}
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	key := [2]string{obj.Pkg().Name(), obj.Name()}
	if sharedEngineTypes[key] {
		return obj.Pkg().Name() + "." + obj.Name(), true
	}
	return "", false
}

// shortExpr renders an lvalue for a diagnostic without a FileSet (positions
// carry the location; this is just the label).
func shortExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return shortExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + shortExpr(x.X)
	case *ast.ParenExpr:
		return "(" + shortExpr(x.X) + ")"
	case *ast.IndexExpr:
		return shortExpr(x.X) + "[...]"
	case *ast.SliceExpr:
		return shortExpr(x.X) + "[...]"
	case *ast.UnaryExpr:
		return x.Op.String() + shortExpr(x.X)
	}
	return "<expr>"
}
