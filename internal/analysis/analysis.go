// Package analysis is lbvet: a project-specific static-analysis suite that
// enforces the simulator's determinism and accounting rules at compile time.
//
// The runtime verification subsystem (internal/check) catches
// nondeterminism and mis-accounting while a simulation runs; the analyzers
// here reject the *sources* of those bugs before any simulation happens:
//
//   - maprange:    unordered map iteration in simulation-state packages
//   - nondeterm:   wall-clock time, global math/rand and goroutines in the
//     cycle-level hot paths
//   - fingerprint: config fields invisible to Validate or the harness memo
//     key (the PR-1 memo-aliasing bug, made structural)
//   - statsflow:   counters that are incremented but can never reach
//     ExtraStats/Result
//   - floatsum:    order-sensitive float accumulation over map iteration
//   - nextevent:   per-cycle state mutators that opted out of the
//     cycle-skipping event protocol (e.g. an OnCycle override inheriting
//     BasePolicy's quiescent NextEvent)
//
// The suite is built directly on the stdlib go/ast + go/types toolchain so
// the module stays dependency-free. cmd/lbvet is the command-line driver;
// repo_clean_test.go gates `go test ./...` on a clean repo.
package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// OrderedDirective is the escape-hatch comment that justifies a map
// iteration: it asserts that iteration order provably cannot leak into any
// simulation decision or reported metric. Use sparingly and always with a
// reason after the directive, e.g.
//
//	//lbvet:ordered max over the set is commutative
const OrderedDirective = "//lbvet:ordered"

// PanicDirective is the escape-hatch comment that justifies a panic in the
// fault-isolated packages (see the nopanic analyzer): it asserts the panic
// marks a caller/engine bug that the harness's recovery barrier turns into
// a *RunError, never an expected run-time condition. Always give the
// reason after the directive, e.g.
//
//	//lbvet:panic unreachable by construction: only the four Kinds exist
const PanicDirective = "//lbvet:panic"

// ExecutorDirective is the escape-hatch comment that sanctions a goroutine
// spawn inside a simulation-state package (see the nondeterm analyzer). It
// asserts the goroutine is part of a deterministic cycle-barrier executor:
// it works on a disjoint, statically assigned state partition and every
// cross-partition effect is buffered and merged in a fixed order at a
// barrier, so results are bit-identical at any worker count (DESIGN.md §9).
// Any other goroutine in those packages stays banned. Always give the
// reason after the directive, e.g.
//
//	//lbvet:executor cycle-barrier SM worker: disjoint chunk, ordered merge
const ExecutorDirective = "//lbvet:executor"

// EventBoundDirective is the escape hatch of the skipclosure analyzer
// (DESIGN.md §11). On a struct field it asserts the field only changes at
// cycles the type's NextEvent advertises, so a skipped span can never
// straddle an update and SkipCycles owes it nothing. On a method it asserts
// the method only executes at advertised event boundaries (a window
// boundary, a draining transfer that pins NextEvent to now), which excuses
// every field the method writes — directly or transitively — from the
// SkipCycles closure. Always give the reason after the directive, e.g.
//
//	//lbvet:eventbound runs only at the window boundary NextEvent advertises
const EventBoundDirective = "//lbvet:eventbound"

// SMSharedDirective is the escape hatch of the workershare analyzer: it
// sanctions one write to shared engine state from code reachable during the
// parallel SM phase, asserting the access is part of the cycle-barrier
// executor's buffered-and-merged protocol (DESIGN.md §9). Always give the
// reason after the directive, e.g.
//
//	//lbvet:smshared per-worker slot, merged in SM-index order at the barrier
const SMSharedDirective = "//lbvet:smshared"

// ErrOKDirective is the escape hatch of the errflow analyzer: it justifies
// one deliberately discarded error value in the harness/cliutil packages —
// typically a best-effort cleanup on a path already returning a more
// important error. Always give the reason after the directive, e.g.
//
//	//lbvet:errok close on the error path; the open error is already returned
const ErrOKDirective = "//lbvet:errok"

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("github.com/.../internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	fset *token.FileSet
	// ordered maps file name -> set of lines carrying OrderedDirective.
	ordered map[string]map[int]bool
	// panicOK maps file name -> set of lines carrying PanicDirective.
	panicOK map[string]map[int]bool
	// executorOK maps file name -> set of lines carrying ExecutorDirective.
	executorOK map[string]map[int]bool
	// eventBound maps file name -> set of lines carrying EventBoundDirective.
	eventBound map[string]map[int]bool
	// smShared maps file name -> set of lines carrying SMSharedDirective.
	smShared map[string]map[int]bool
	// errOK maps file name -> set of lines carrying ErrOKDirective.
	errOK map[string]map[int]bool

	// summaryOnce guards the lazily built write-summary substrate shared by
	// the dataflow analyzers (skipclosure, workershare); analyzers may run
	// concurrently over the same package.
	summaryOnce sync.Once
	summaries   map[*types.Func]*funcSummary
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is the per-run view handed to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Pkg is the package under analysis (nil for whole-program analyzers).
	Pkg *Package
	// All holds every loaded package; whole-program analyzers walk this.
	All []*Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Analyzer is one lbvet rule.
type Analyzer struct {
	Name string
	Doc  string
	// Whole marks analyzers that need a cross-package view (fingerprint);
	// they run once per load with Pass.Pkg nil.
	Whole bool
	Run   func(*Pass)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e in the package under analysis.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// Ordered reports whether the node carries an OrderedDirective comment on
// its own line or the line immediately above.
func (p *Pass) Ordered(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.ordered[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// PanicAllowed reports whether the node carries a PanicDirective comment on
// its own line or the line immediately above.
func (p *Pass) PanicAllowed(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.panicOK[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// ExecutorSanctioned reports whether the node carries an ExecutorDirective
// comment on its own line or the line immediately above.
func (p *Pass) ExecutorSanctioned(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.executorOK[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// eventBoundAt reports whether the node carries an EventBoundDirective
// comment on its own line or the line immediately above.
func (pkg *Package) eventBoundAt(fset *token.FileSet, n ast.Node) bool {
	pos := fset.Position(n.Pos())
	lines := pkg.eventBound[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// smSharedAt reports whether the node carries an SMSharedDirective comment
// on its own line or the line immediately above.
func (pkg *Package) smSharedAt(fset *token.FileSet, n ast.Node) bool {
	pos := fset.Position(n.Pos())
	lines := pkg.smShared[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// errOKAt reports whether the node carries an ErrOKDirective comment on its
// own line or the line immediately above.
func (pkg *Package) errOKAt(fset *token.FileSet, n ast.Node) bool {
	pos := fset.Position(n.Pos())
	lines := pkg.errOK[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange,
		NonDeterm,
		Fingerprint,
		StatsFlow,
		FloatSum,
		NoPanic,
		NextEvent,
		SkipClosure,
		WorkerShare,
		ErrFlow,
	}
}

// ByName resolves a comma-separated analyzer list ("maprange,floatsum").
// Duplicate or unknown names are errors.
func ByName(names string) ([]*Analyzer, error) { return Select(names, "") }

// Select resolves the run set from a comma-separated include list (empty
// means the full suite) minus a comma-separated skip list. Unknown names
// and duplicates — in either list — are errors, as is a registry that
// exposes two analyzers under one name.
func Select(names, skip string) ([]*Analyzer, error) {
	return selectFrom(Analyzers(), names, skip)
}

func selectFrom(registry []*Analyzer, names, skip string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range registry {
		if byName[a.Name] != nil {
			return nil, fmt.Errorf("analyzer registry is corrupt: two analyzers named %q", a.Name)
		}
		byName[a.Name] = a
	}
	splitList := func(list, flag string) ([]string, error) {
		if list == "" {
			return nil, nil
		}
		seen := map[string]bool{}
		var out []string
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown analyzer %q in %s", n, flag)
			}
			if seen[n] {
				return nil, fmt.Errorf("duplicate analyzer %q in %s", n, flag)
			}
			seen[n] = true
			out = append(out, n)
		}
		return out, nil
	}
	include, err := splitList(names, "-analyzers")
	if err != nil {
		return nil, err
	}
	skipped, err := splitList(skip, "-skip")
	if err != nil {
		return nil, err
	}
	skipSet := map[string]bool{}
	for _, n := range skipped {
		skipSet[n] = true
	}
	var out []*Analyzer
	if include == nil {
		for _, a := range registry {
			if !skipSet[a.Name] {
				out = append(out, a)
			}
		}
	} else {
		for _, n := range include {
			if skipSet[n] {
				return nil, fmt.Errorf("analyzer %q both selected and skipped", n)
			}
			out = append(out, byName[n])
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-skip excludes every analyzer")
	}
	return out, nil
}

// Run executes the given analyzers over the loaded packages and returns
// the findings sorted by position. Per-(analyzer, package) units run
// concurrently: analyzers only read the type-checked packages (the shared
// dataflow substrate is built once per package under a sync.Once) and each
// unit appends to its own slice, so the merged, sorted result is identical
// at any parallelism level.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	perPkg, whole := runUnits(fset, pkgs, analyzers, nil)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, perPkg[pkg.Path]...)
	}
	diags = append(diags, whole...)
	SortDiagnostics(diags)
	return diags
}

// runUnits runs the analyzers and returns per-package findings (from
// non-Whole analyzers, keyed by import path) and whole-program findings
// separately — the split the incremental cache stores. Packages whose path
// is in skipPkgs are not analyzed by per-package analyzers (their findings
// come from the cache) but still participate in whole-program passes.
func runUnits(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, skipPkgs map[string]bool) (perPkg map[string][]Diagnostic, whole []Diagnostic) {
	type unit struct {
		a   *Analyzer
		pkg *Package // nil for whole-program units
	}
	var units []unit
	for _, a := range analyzers {
		if a.Whole {
			units = append(units, unit{a: a})
			continue
		}
		for _, pkg := range pkgs {
			if skipPkgs[pkg.Path] {
				continue
			}
			units = append(units, unit{a: a, pkg: pkg})
		}
	}
	results := make([][]Diagnostic, len(units))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				u := units[i]
				pass := &Pass{Fset: fset, Pkg: u.pkg, All: pkgs, analyzer: u.a, diags: &results[i]}
				u.a.Run(pass)
			}
		}()
	}
	for i := range units {
		next <- i
	}
	close(next)
	wg.Wait()

	perPkg = map[string][]Diagnostic{}
	for i, u := range units {
		if u.pkg == nil {
			whole = append(whole, results[i]...)
		} else {
			perPkg[u.pkg.Path] = append(perPkg[u.pkg.Path], results[i]...)
		}
	}
	return perPkg, whole
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// stable order every lbvet output format uses.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Relativize rewrites diagnostic file names under root to module-relative,
// slash-separated paths, so goldens, CI logs and SARIF locations are stable
// across machines. Paths outside root are left untouched. Byte offsets are
// dropped: they are meaningless once the position is detached from a
// FileSet, and zeroing them keeps fresh and cache-served diagnostics
// structurally identical.
func Relativize(root string, diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, len(diags))
	copy(out, diags)
	for i := range out {
		out[i].Pos.Offset = 0
		name := out[i].Pos.Filename
		if !filepath.IsAbs(name) {
			continue
		}
		rel, err := filepath.Rel(root, name)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		out[i].Pos.Filename = filepath.ToSlash(rel)
	}
	return out
}

// simStatePackages are the cycle-level packages whose state feeds
// simulation decisions: map iteration order and wall-clock inputs there are
// correctness bugs (see DESIGN.md "Why map order is a correctness bug").
var simStatePackages = map[string]bool{
	"sim":     true,
	"cache":   true,
	"schemes": true,
	"icnt":    true,
	"dram":    true,
	"regfile": true,
	"core":    true,
}

// accumulationPackages are where metric reduction happens; float summation
// order there must not depend on map iteration.
var accumulationPackages = map[string]bool{
	"stats":  true,
	"energy": true,
}

func inSimState(pkg *Package) bool     { return simStatePackages[pkg.Types.Name()] }
func inAccumulation(pkg *Package) bool { return accumulationPackages[pkg.Types.Name()] }
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// render formats an expression for a diagnostic message.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// mapType returns the map type ranged/indexed, unwrapping pointers.
func mapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	m, _ := u.(*types.Map)
	return m
}
