// Package analysis is lbvet: a project-specific static-analysis suite that
// enforces the simulator's determinism and accounting rules at compile time.
//
// The runtime verification subsystem (internal/check) catches
// nondeterminism and mis-accounting while a simulation runs; the analyzers
// here reject the *sources* of those bugs before any simulation happens:
//
//   - maprange:    unordered map iteration in simulation-state packages
//   - nondeterm:   wall-clock time, global math/rand and goroutines in the
//     cycle-level hot paths
//   - fingerprint: config fields invisible to Validate or the harness memo
//     key (the PR-1 memo-aliasing bug, made structural)
//   - statsflow:   counters that are incremented but can never reach
//     ExtraStats/Result
//   - floatsum:    order-sensitive float accumulation over map iteration
//   - nextevent:   per-cycle state mutators that opted out of the
//     cycle-skipping event protocol (e.g. an OnCycle override inheriting
//     BasePolicy's quiescent NextEvent)
//
// The suite is built directly on the stdlib go/ast + go/types toolchain so
// the module stays dependency-free. cmd/lbvet is the command-line driver;
// repo_clean_test.go gates `go test ./...` on a clean repo.
package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// OrderedDirective is the escape-hatch comment that justifies a map
// iteration: it asserts that iteration order provably cannot leak into any
// simulation decision or reported metric. Use sparingly and always with a
// reason after the directive, e.g.
//
//	//lbvet:ordered max over the set is commutative
const OrderedDirective = "//lbvet:ordered"

// PanicDirective is the escape-hatch comment that justifies a panic in the
// fault-isolated packages (see the nopanic analyzer): it asserts the panic
// marks a caller/engine bug that the harness's recovery barrier turns into
// a *RunError, never an expected run-time condition. Always give the
// reason after the directive, e.g.
//
//	//lbvet:panic unreachable by construction: only the four Kinds exist
const PanicDirective = "//lbvet:panic"

// ExecutorDirective is the escape-hatch comment that sanctions a goroutine
// spawn inside a simulation-state package (see the nondeterm analyzer). It
// asserts the goroutine is part of a deterministic cycle-barrier executor:
// it works on a disjoint, statically assigned state partition and every
// cross-partition effect is buffered and merged in a fixed order at a
// barrier, so results are bit-identical at any worker count (DESIGN.md §9).
// Any other goroutine in those packages stays banned. Always give the
// reason after the directive, e.g.
//
//	//lbvet:executor cycle-barrier SM worker: disjoint chunk, ordered merge
const ExecutorDirective = "//lbvet:executor"

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("github.com/.../internal/sim").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info

	fset *token.FileSet
	// ordered maps file name -> set of lines carrying OrderedDirective.
	ordered map[string]map[int]bool
	// panicOK maps file name -> set of lines carrying PanicDirective.
	panicOK map[string]map[int]bool
	// executorOK maps file name -> set of lines carrying ExecutorDirective.
	executorOK map[string]map[int]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass is the per-run view handed to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Pkg is the package under analysis (nil for whole-program analyzers).
	Pkg *Package
	// All holds every loaded package; whole-program analyzers walk this.
	All []*Package

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Analyzer is one lbvet rule.
type Analyzer struct {
	Name string
	Doc  string
	// Whole marks analyzers that need a cross-package view (fingerprint);
	// they run once per load with Pass.Pkg nil.
	Whole bool
	Run   func(*Pass)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e in the package under analysis.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// Ordered reports whether the node carries an OrderedDirective comment on
// its own line or the line immediately above.
func (p *Pass) Ordered(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.ordered[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// PanicAllowed reports whether the node carries a PanicDirective comment on
// its own line or the line immediately above.
func (p *Pass) PanicAllowed(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.panicOK[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// ExecutorSanctioned reports whether the node carries an ExecutorDirective
// comment on its own line or the line immediately above.
func (p *Pass) ExecutorSanctioned(pkg *Package, n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	lines := pkg.executorOK[pos.Filename]
	return lines[pos.Line] || lines[pos.Line-1]
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapRange,
		NonDeterm,
		Fingerprint,
		StatsFlow,
		FloatSum,
		NoPanic,
		NextEvent,
	}
}

// ByName resolves a comma-separated analyzer list ("maprange,floatsum").
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	all := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		all[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := all[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the given analyzers over the loaded packages and returns
// the findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Whole {
			pass := &Pass{Fset: fset, All: pkgs, analyzer: a, diags: &diags}
			a.Run(pass)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Fset: fset, Pkg: pkg, All: pkgs, analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// simStatePackages are the cycle-level packages whose state feeds
// simulation decisions: map iteration order and wall-clock inputs there are
// correctness bugs (see DESIGN.md "Why map order is a correctness bug").
var simStatePackages = map[string]bool{
	"sim":     true,
	"cache":   true,
	"schemes": true,
	"icnt":    true,
	"dram":    true,
	"regfile": true,
	"core":    true,
}

// accumulationPackages are where metric reduction happens; float summation
// order there must not depend on map iteration.
var accumulationPackages = map[string]bool{
	"stats":  true,
	"energy": true,
}

func inSimState(pkg *Package) bool     { return simStatePackages[pkg.Types.Name()] }
func inAccumulation(pkg *Package) bool { return accumulationPackages[pkg.Types.Name()] }
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// render formats an expression for a diagnostic message.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<expr>"
	}
	return buf.String()
}

// mapType returns the map type ranged/indexed, unwrapping pointers.
func mapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	m, _ := u.(*types.Map)
	return m
}
