package analysis

import (
	"go/ast"
	"go/types"
)

// NonDeterm forbids the three classic nondeterminism sources inside the
// cycle-level simulation packages:
//
//   - wall-clock reads (time.Now and friends): simulated time is the cycle
//     counter; real time differs across runs and machines;
//   - the global math/rand generator: it is seeded per process, shared
//     across goroutines and not controlled by config.Seed — every random
//     draw in the simulator must flow from an explicitly seeded source
//     (rand.New / the workload PRNG);
//   - goroutine spawning: concurrency inside a cycle makes event order
//     scheduler-dependent. Parallelism belongs in the harness, across
//     runs — with one sanctioned exception: a cycle-barrier executor
//     goroutine marked with an ExecutorDirective comment, which asserts
//     disjoint state partitions and a fixed-order merge at the barrier
//     (the internal/sim worker pool, DESIGN.md §9). Every other goroutine
//     stays banned.
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc:  "wall-clock, global math/rand and goroutines in sim hot paths",
	Run:  runNonDeterm,
}

// wallClockFuncs are the time package functions that read or schedule on
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

// seededRandFuncs are the math/rand constructors that return explicitly
// seeded generators; every other package-level rand function draws from
// the shared global source.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func runNonDeterm(pass *Pass) {
	if !inSimState(pass.Pkg) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.ExecutorSanctioned(pass.Pkg, n) {
					return true
				}
				pass.Reportf(n.Pos(),
					"goroutine spawned in simulation package %s: cycle-level event order must not depend on the scheduler; parallelise in the harness, or mark a cycle-barrier executor worker with %s <reason>",
					pass.Pkg.Types.Name(), ExecutorDirective)
			case *ast.SelectorExpr:
				pkgPath, name, ok := qualifiedRef(pass, n)
				if !ok {
					return true
				}
				switch {
				case pkgPath == "time" && wallClockFuncs[name]:
					pass.Reportf(n.Pos(),
						"time.%s in simulation package %s: simulated time is the cycle counter, wall-clock reads are nondeterministic",
						name, pass.Pkg.Types.Name())
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandFuncs[name]:
					pass.Reportf(n.Pos(),
						"global rand.%s in simulation package %s: draws bypass config.Seed; use an explicitly seeded rand.New(rand.NewSource(seed))",
						name, pass.Pkg.Types.Name())
				}
			}
			return true
		})
	}
}

// qualifiedRef resolves pkg.Func selector references to (import path,
// name); ok is false for field/method selections and for type references
// like time.Time or rand.Rand.
func qualifiedRef(pass *Pass, sel *ast.SelectorExpr) (string, string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
