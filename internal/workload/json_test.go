package workload

import (
	"strings"
	"testing"
)

const sampleJSON = `{
  "name": "solver",
  "loads": [
    {"pattern": "irregular", "scope": "per-sm", "working_set_bytes": 65536, "coalesced": 2},
    {"pattern": "tiled", "scope": "per-warp", "working_set_bytes": 1024},
    {"pattern": "streaming", "scope": "per-warp", "coalesced": 2, "every": 4}
  ],
  "stores": [
    {"pattern": "streaming", "scope": "per-warp"}
  ],
  "compute_per_load": 2,
  "compute_latency": 8,
  "iterations": 2500,
  "warps_per_cta": 8,
  "regs_per_thread": 26,
  "grid_ctas": 4096
}`

func TestParseKernelJSON(t *testing.T) {
	k, err := ParseKernelJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "solver" || len(k.Loads) != 4 {
		t.Fatalf("kernel = %+v", k)
	}
	if k.Loads[0].Pattern != Irregular || k.Loads[0].Scope != PerSM {
		t.Fatalf("load 0 = %+v", k.Loads[0])
	}
	if k.Loads[1].Coalesced != 1 {
		t.Fatal("coalesced default not applied")
	}
	if k.Loads[2].Every != 4 {
		t.Fatal("every not parsed")
	}
	// Body: 3 loads * (1+2) + 1 store = 10 instructions.
	if len(k.Body) != 10 {
		t.Fatalf("body = %d instructions", len(k.Body))
	}
}

func TestParseKernelJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":""}`,
		`{"name":"x","unknown_field":1}`,
		`{"name":"x","loads":[{"pattern":"bogus"}],"compute_per_load":1,"compute_latency":1,"iterations":1,"warps_per_cta":1,"regs_per_thread":1,"grid_ctas":1}`,
		`{"name":"x","loads":[{"pattern":"tiled","scope":"bogus"}],"compute_per_load":1,"compute_latency":1,"iterations":1,"warps_per_cta":1,"regs_per_thread":1,"grid_ctas":1}`,
		// Tiled load without a working set fails kernel validation.
		`{"name":"x","loads":[{"pattern":"tiled","scope":"global"}],"compute_per_load":1,"compute_latency":1,"iterations":1,"warps_per_cta":1,"regs_per_thread":1,"grid_ctas":1}`,
		// Missing shape parameters.
		`{"name":"x","loads":[{"pattern":"streaming","scope":"per-warp"}]}`,
	}
	for i, c := range cases {
		if _, err := ParseKernelJSON([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestKernelJSONRoundTrip(t *testing.T) {
	k1, err := ParseKernelJSON([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := KernelJSON(k1, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ParseKernelJSON(data)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, data)
	}
	if len(k2.Loads) != len(k1.Loads) || len(k2.Body) != len(k1.Body) {
		t.Fatalf("round trip mismatch: %d/%d loads, %d/%d body",
			len(k2.Loads), len(k1.Loads), len(k2.Body), len(k1.Body))
	}
	for i := range k1.Loads {
		a, b := k1.Loads[i], k2.Loads[i]
		if a.Pattern != b.Pattern || a.Scope != b.Scope ||
			a.WorkingSetBytes != b.WorkingSetBytes || a.Coalesced != b.Coalesced ||
			a.Phase != b.Phase || a.Every != b.Every {
			t.Fatalf("load %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	// Addresses must be identical after the round trip.
	c := Ctx{SM: 1, CTASeq: 2, Warp: 3, Iter: 17}
	for li := range k1.Loads {
		if k1.Address(li, c, 0) != k2.Address(li, c, 0) {
			t.Fatalf("load %d addresses diverge after round trip", li)
		}
	}
	if !strings.Contains(string(data), `"per-sm"`) {
		t.Fatalf("scope names not serialised:\n%s", data)
	}
}
