package workload

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// TestPerWarpFootprintHeterogeneity verifies the documented [0.5, 1.75]
// spread of per-warp working sets and that the doubled region stride keeps
// neighbouring warps disjoint even at the maximum factor.
func TestPerWarpFootprintHeterogeneity(t *testing.T) {
	k := NewKernel("het",
		[]LoadSpec{{Pattern: Tiled, Scope: PerWarp, WorkingSetBytes: 8 * 1024, Coalesced: 1}},
		nil, 1, 4, 100, 8, 16, 64)
	nominal := 8 * 1024 / memtypes.LineSize

	sizes := map[int]bool{}
	for cta := 0; cta < 4; cta++ {
		for warp := 0; warp < 8; warp++ {
			lines := map[memtypes.LineAddr]bool{}
			for iter := 0; iter < 4*nominal; iter++ {
				lines[k.Address(0, Ctx{SM: 0, CTASeq: cta, Warp: warp, Iter: iter}, 0)] = true
			}
			n := len(lines)
			lo, hi := nominal/2, nominal*7/4
			if n < lo || n > hi {
				t.Fatalf("warp (%d,%d) footprint %d lines outside [%d,%d]", cta, warp, n, lo, hi)
			}
			sizes[n] = true
		}
	}
	if len(sizes) < 3 {
		t.Fatalf("footprints not heterogeneous: %v", sizes)
	}
}

func TestPerWarpRegionsDisjointAtMaxFactor(t *testing.T) {
	k := NewKernel("het2",
		[]LoadSpec{{Pattern: Irregular, Scope: PerWarp, WorkingSetBytes: 4 * 1024, Coalesced: 1}},
		nil, 1, 4, 100, 4, 16, 64)
	owner := map[memtypes.LineAddr]uint64{}
	for cta := 0; cta < 8; cta++ {
		for warp := 0; warp < 4; warp++ {
			gw := uint64(cta*4 + warp)
			for iter := 0; iter < 500; iter++ {
				a := k.Address(0, Ctx{SM: 0, CTASeq: cta, Warp: warp, Iter: iter}, 0)
				if prev, ok := owner[a]; ok && prev != gw {
					t.Fatalf("line %#x shared by warps %d and %d", a, prev, gw)
				}
				owner[a] = gw
			}
		}
	}
}

func TestSharedScopesUnaffectedByHeterogeneity(t *testing.T) {
	k := NewKernel("het3",
		[]LoadSpec{{Pattern: Tiled, Scope: PerSM, WorkingSetBytes: 4 * 1024, Coalesced: 1}},
		nil, 1, 4, 100, 4, 16, 64)
	lines := map[memtypes.LineAddr]bool{}
	for iter := 0; iter < 500; iter++ {
		lines[k.Address(0, Ctx{SM: 1, CTASeq: 0, Warp: 0, Iter: iter}, 0)] = true
	}
	if want := 4 * 1024 / memtypes.LineSize; len(lines) != want {
		t.Fatalf("PerSM footprint %d lines, want exactly %d", len(lines), want)
	}
}
