package workload

import "testing"

// FuzzParseKernelJSON checks that arbitrary input never panics the parser
// and that anything it accepts is a valid, addressable kernel.
func FuzzParseKernelJSON(f *testing.F) {
	f.Add([]byte(`{"name":"x","loads":[{"pattern":"streaming","scope":"per-warp"}],` +
		`"compute_per_load":1,"compute_latency":1,"iterations":10,` +
		`"warps_per_cta":2,"regs_per_thread":4,"grid_ctas":4}`))
	f.Add([]byte(`{"name":"y","loads":[{"pattern":"tiled","scope":"per-sm","working_set_bytes":4096}],` +
		`"compute_per_load":0,"compute_latency":0,"iterations":1,` +
		`"warps_per_cta":1,"regs_per_thread":1,"grid_ctas":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		k, err := ParseKernelJSON(data)
		if err != nil {
			return
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("accepted kernel fails validation: %v", err)
		}
		// Address generation must be total on accepted kernels.
		for li := range k.Loads {
			for iter := 0; iter < 3; iter++ {
				_ = k.Address(li, Ctx{SM: 1, CTASeq: 2, Warp: 0, Iter: iter}, 0)
			}
		}
	})
}
