package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

const sampleTrace = `# two warps, two loads and a store
0 0x100 L 0x1000
0 0x10c L 0x2000
1 0x100 L 0x1080
0 0x100 L 0x1000
1 0x118 S 0x3000
`

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Warps() != 2 || tr.Loads() != 3 {
		t.Fatalf("warps=%d loads=%d", tr.Warps(), tr.Loads())
	}
	if tr.Events() != 5 {
		t.Fatalf("events=%d", tr.Events())
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                             // empty
		"0 0x100 L",                    // wrong arity
		"x 0x100 L 0x0",                // bad warp
		"0 zz L 0x0",                   // bad pc
		"0 0x100 Q 0x0",                // bad kind
		"0 0x100 L zz",                 // bad addr
		"0 0x100 L 0x0\n0 0x100 S 0x0", // pc is both load and store
	}
	for i, c := range cases {
		if _, err := ParseTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTraceReplayAddresses(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	k, err := tr.Kernel("replay", 1, 4, 2, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Load 0 (pc 0x100): warp 0 sequence is [0x1000, 0x1000], warp 1 is
	// [0x1080]. Global warp 0 maps to trace warp 0.
	c := Ctx{SM: 0, CTASeq: 0, Warp: 0, Iter: 0}
	if got := k.Address(0, c, 0); got != memtypes.LineAddr(0x1000) {
		t.Fatalf("warp0 iter0 = %#x", got)
	}
	c.Warp = 1
	if got := k.Address(0, c, 0); got != memtypes.LineAddr(0x1080) {
		t.Fatalf("warp1 iter0 = %#x", got)
	}
	// Wrapping: warp 1 has one event; iter 5 wraps to it.
	c.Iter = 5
	if got := k.Address(0, c, 0); got != memtypes.LineAddr(0x1080) {
		t.Fatalf("warp1 wrap = %#x", got)
	}
	// Simulated warps beyond the trace reuse trace warps round-robin.
	c = Ctx{CTASeq: 1, Warp: 0, Iter: 0} // global warp 2 -> trace warp 0
	if got := k.Address(0, c, 0); got != memtypes.LineAddr(0x1000) {
		t.Fatalf("round-robin mapping = %#x", got)
	}
}

func TestTraceRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewTraceRecorder(&buf)
	rec.Observe(0, 0x100, memtypes.Addr(0x1010).Line(), false)
	rec.Observe(3, 0x10c, memtypes.Addr(0x2000).Line(), true)
	rec.Observe(0, 0x100, memtypes.Addr(0x1080).Line(), false)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := ParseTrace(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if tr.Warps() != 2 || tr.Loads() != 2 || tr.Events() != 3 {
		t.Fatalf("round trip: %d warps %d loads %d events", tr.Warps(), tr.Loads(), tr.Events())
	}
	if _, err := tr.Kernel("rt", 1, 4, 4, 8, 8); err != nil {
		t.Fatal(err)
	}
}

func TestTraceKernelValidation(t *testing.T) {
	// A TraceP load without an attached trace must fail validation.
	k := NewKernelChecked("bad",
		[]LoadSpec{{Pattern: TraceP, Coalesced: 1, WorkingSetBytes: 128}},
		nil, 1, 1, 1, 1, 1, 1)
	if k.Validate() == nil {
		t.Fatal("trace load without trace accepted")
	}
}
