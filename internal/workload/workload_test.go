package workload

import (
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func simpleKernel() *Kernel {
	return NewKernel("test",
		[]LoadSpec{
			load(Streaming, PerWarp, 0, 2, 0),
			load(Tiled, PerSM, 8*kb, 1, 1),
			load(Irregular, PerCTA, 4*kb, 2, 0),
			load(Tiled, Global, 2*kb, 1, 0),
			load(Tiled, PerWarp, 1*kb, 1, 0),
		},
		[]LoadSpec{streamStore()},
		1, 4, 100, 4, 16, 64)
}

func TestNewKernelAssignsPCs(t *testing.T) {
	k := simpleKernel()
	seen := map[uint32]bool{}
	for _, ins := range k.Body {
		if seen[ins.PC] {
			t.Fatalf("duplicate PC %#x", ins.PC)
		}
		seen[ins.PC] = true
	}
	// Every load's PC matches its body instruction's PC.
	for i, ins := range k.Body {
		if ins.Op != Compute {
			if k.Loads[ins.LoadIdx].PC != ins.PC {
				t.Fatalf("body[%d] PC %#x != load PC %#x", i, ins.PC, k.Loads[ins.LoadIdx].PC)
			}
		}
	}
}

func TestStreamingNeverRepeats(t *testing.T) {
	k := simpleKernel()
	seen := map[memtypes.LineAddr]bool{}
	for warp := 0; warp < 4; warp++ {
		for iter := 0; iter < 50; iter++ {
			for req := 0; req < k.Loads[0].Coalesced; req++ {
				a := k.Address(0, Ctx{SM: 0, CTASeq: 0, Warp: warp, Iter: iter}, req)
				if seen[a] {
					t.Fatalf("streaming address %#x repeated", a)
				}
				seen[a] = true
			}
		}
	}
}

func TestStreamingDisjointAcrossCTAs(t *testing.T) {
	k := simpleKernel()
	a := k.Address(0, Ctx{SM: 0, CTASeq: 0, Warp: 3, Iter: 99}, 1)
	b := k.Address(0, Ctx{SM: 1, CTASeq: 1, Warp: 0, Iter: 0}, 0)
	if a == b {
		t.Fatal("streams of different CTAs collide")
	}
}

func TestTiledFootprintBounded(t *testing.T) {
	k := simpleKernel()
	li := 1 // Tiled PerSM 8 KB
	lines := map[memtypes.LineAddr]bool{}
	for warp := 0; warp < 8; warp++ {
		for iter := 0; iter < 500; iter++ {
			lines[k.Address(li, Ctx{SM: 2, CTASeq: warp / 4, Warp: warp % 4, Iter: iter}, 0)] = true
		}
	}
	want := 8 * kb / memtypes.LineSize
	if len(lines) > want {
		t.Fatalf("tiled footprint %d lines exceeds working set %d", len(lines), want)
	}
	if len(lines) < want/2 {
		t.Fatalf("tiled footprint %d lines; sweep covers too little of %d", len(lines), want)
	}
}

func TestTiledReusesLines(t *testing.T) {
	k := simpleKernel()
	li := 1
	c := Ctx{SM: 0, CTASeq: 0, Warp: 0}
	first := k.Address(li, c, 0)
	wsLines := 8 * kb / memtypes.LineSize
	c.Iter = wsLines // one full sweep later
	if got := k.Address(li, c, 0); got != first {
		t.Fatalf("tiled sweep did not return to %#x (got %#x)", first, got)
	}
}

func TestScopeIsolation(t *testing.T) {
	k := simpleKernel()
	// PerSM: different SMs never share lines.
	li := 1
	a := k.Address(li, Ctx{SM: 0, CTASeq: 0, Warp: 0, Iter: 7}, 0)
	for iter := 0; iter < 200; iter++ {
		b := k.Address(li, Ctx{SM: 1, CTASeq: 0, Warp: 0, Iter: iter}, 0)
		if a == b {
			t.Fatal("PerSM scopes overlap across SMs")
		}
	}
	// Global: different SMs do share lines.
	gi := 3
	ga := k.Address(gi, Ctx{SM: 0, CTASeq: 0, Warp: 0, Iter: 3}, 0)
	gb := k.Address(gi, Ctx{SM: 5, CTASeq: 9, Warp: 2, Iter: 3}, 0)
	// Same iteration, phase 0: identical position in the shared set.
	if ga != gb {
		t.Fatalf("global scope not shared: %#x vs %#x", ga, gb)
	}
}

func TestPerWarpIsolation(t *testing.T) {
	k := simpleKernel()
	li := 4
	lines := map[memtypes.LineAddr]int{}
	for warp := 0; warp < 4; warp++ {
		for iter := 0; iter < 64; iter++ {
			a := k.Address(li, Ctx{SM: 0, CTASeq: 0, Warp: warp, Iter: iter}, 0)
			if prev, ok := lines[a]; ok && prev != warp {
				t.Fatalf("per-warp footprints overlap between warps %d and %d", prev, warp)
			}
			lines[a] = warp
		}
	}
}

func TestIrregularStaysInRange(t *testing.T) {
	k := simpleKernel()
	li := 2 // Irregular PerCTA 4 KB
	lines := map[memtypes.LineAddr]bool{}
	for iter := 0; iter < 3000; iter++ {
		for req := 0; req < 2; req++ {
			lines[k.Address(li, Ctx{SM: 0, CTASeq: 3, Warp: 1, Iter: iter}, req)] = true
		}
	}
	want := 4 * kb / memtypes.LineSize
	if len(lines) > want {
		t.Fatalf("irregular touched %d lines, range is %d", len(lines), want)
	}
	if len(lines) < want*3/4 {
		t.Fatalf("irregular touched only %d of %d lines; generator too narrow", len(lines), want)
	}
}

func TestAddressDeterminism(t *testing.T) {
	f := func(sm, cta, warp, iter uint8, req uint8) bool {
		k := simpleKernel()
		c := Ctx{SM: int(sm % 16), CTASeq: int(cta), Warp: int(warp % 4), Iter: int(iter)}
		for li := range k.Loads {
			r := int(req) % k.Loads[li].Coalesced
			if k.Address(li, c, r) != k.Address(li, c, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRegionsDisjoint(t *testing.T) {
	k := simpleKernel()
	regions := map[uint64]int{}
	for li := range k.Loads {
		for iter := 0; iter < 100; iter++ {
			a := k.Address(li, Ctx{SM: 1, CTASeq: 2, Warp: 1, Iter: iter}, 0)
			r := uint64(a) >> loadRegionBits
			if prev, ok := regions[r]; ok && prev != li {
				t.Fatalf("loads %d and %d share region %d", prev, li, r)
			}
			regions[r] = li
		}
	}
}

func TestAllBenchmarksValid(t *testing.T) {
	bs := All()
	if len(bs) != 20 {
		t.Fatalf("benchmarks = %d, want 20", len(bs))
	}
	sensitive := 0
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
		if err := b.Kernel.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if b.Sensitive {
			sensitive++
		}
	}
	if sensitive != 10 {
		t.Fatalf("cache-sensitive apps = %d, want 10 (Table 2)", sensitive)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("S2"); !ok {
		t.Fatal("S2 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown benchmark found")
	}
	if len(Names()) != 20 {
		t.Fatal("Names() != 20")
	}
	if len(SensitiveNames()) != 10 {
		t.Fatal("SensitiveNames() != 10")
	}
}

func TestValidateCatchesBadKernels(t *testing.T) {
	k := simpleKernel()
	k.Iterations = 0
	if k.Validate() == nil {
		t.Fatal("zero iterations accepted")
	}
	k = simpleKernel()
	k.Body[0].LoadIdx = 99
	if k.Validate() == nil {
		t.Fatal("out-of-range load index accepted")
	}
	k = simpleKernel()
	k.Loads[0].Coalesced = 0
	if k.Validate() == nil {
		t.Fatal("zero coalesced accepted")
	}
	k = simpleKernel()
	k.Loads[1].WorkingSetBytes = 10
	if k.Validate() == nil {
		t.Fatal("sub-line working set accepted")
	}
}

func TestRegsAccounting(t *testing.T) {
	k := simpleKernel()
	if k.RegsPerWarp() != 16 {
		t.Fatalf("RegsPerWarp = %d", k.RegsPerWarp())
	}
	if k.RegsPerCTA() != 64 {
		t.Fatalf("RegsPerCTA = %d", k.RegsPerCTA())
	}
}

func TestStringers(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Streaming.String(), "streaming"},
		{Tiled.String(), "tiled"},
		{Irregular.String(), "irregular"},
		{Pattern(9).String(), "Pattern(9)"},
		{Global.String(), "global"},
		{PerSM.String(), "per-SM"},
		{PerCTA.String(), "per-CTA"},
		{PerWarp.String(), "per-warp"},
		{Scope(9).String(), "Scope(9)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestActiveAt(t *testing.T) {
	l := LoadSpec{Every: 0}
	if !l.ActiveAt(0) || !l.ActiveAt(7) {
		t.Fatal("Every=0 must fire every iteration")
	}
	l.Every = 3
	if !l.ActiveAt(0) || l.ActiveAt(1) || l.ActiveAt(2) || !l.ActiveAt(3) {
		t.Fatal("Every=3 pattern wrong")
	}
	l.Every = -1
	k := simpleKernel()
	k.Loads[0].Every = -1
	if k.Validate() == nil {
		t.Fatal("negative Every accepted")
	}
}

func TestStreamingWithEveryStaysDense(t *testing.T) {
	k := NewKernel("dense",
		[]LoadSpec{{Pattern: Streaming, Scope: PerWarp, Coalesced: 1, Every: 4}},
		nil, 1, 4, 64, 4, 16, 8)
	seen := map[memtypes.LineAddr]bool{}
	for iter := 0; iter < 64; iter += 4 {
		a := k.Address(0, Ctx{Iter: iter}, 0)
		if seen[a] {
			t.Fatalf("address %#x repeated", a)
		}
		seen[a] = true
	}
	// Consecutive firings are adjacent lines (iter compressed by Every).
	a0 := k.Address(0, Ctx{Iter: 0}, 0)
	a4 := k.Address(0, Ctx{Iter: 4}, 0)
	if a4 != a0+memtypes.LineSize {
		t.Fatalf("stream not dense: %#x then %#x", a0, a4)
	}
}
