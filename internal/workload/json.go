package workload

import (
	"encoding/json"
	"fmt"
	"strings"
)

// kernelJSON is the on-disk kernel description consumed by ParseKernelJSON
// (and produced by KernelJSON). Sizes are bytes, like the Go API.
type kernelJSON struct {
	Name           string     `json:"name"`
	Loads          []loadJSON `json:"loads"`
	Stores         []loadJSON `json:"stores,omitempty"`
	ComputePerLoad int        `json:"compute_per_load"`
	ComputeLatency int        `json:"compute_latency"`
	Iterations     int        `json:"iterations"`
	WarpsPerCTA    int        `json:"warps_per_cta"`
	RegsPerThread  int        `json:"regs_per_thread"`
	GridCTAs       int        `json:"grid_ctas"`
}

type loadJSON struct {
	Pattern         string `json:"pattern"` // streaming | tiled | irregular
	Scope           string `json:"scope"`   // global | per-sm | per-cta | per-warp
	WorkingSetBytes int    `json:"working_set_bytes,omitempty"`
	Coalesced       int    `json:"coalesced,omitempty"` // default 1
	Phase           int    `json:"phase,omitempty"`
	Every           int    `json:"every,omitempty"`
}

// ParseKernelJSON builds a kernel from its JSON description. The result is
// validated; all errors name the offending field.
func ParseKernelJSON(data []byte) (*Kernel, error) {
	var kj kernelJSON
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kj); err != nil {
		return nil, fmt.Errorf("workload: parsing kernel JSON: %w", err)
	}
	if kj.Name == "" {
		return nil, fmt.Errorf("workload: kernel JSON missing name")
	}
	loads, err := parseLoads(kj.Loads)
	if err != nil {
		return nil, fmt.Errorf("workload: kernel %q loads: %w", kj.Name, err)
	}
	stores, err := parseLoads(kj.Stores)
	if err != nil {
		return nil, fmt.Errorf("workload: kernel %q stores: %w", kj.Name, err)
	}
	k := NewKernelChecked(kj.Name, loads, stores, kj.ComputePerLoad, kj.ComputeLatency,
		kj.Iterations, kj.WarpsPerCTA, kj.RegsPerThread, kj.GridCTAs)
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// KernelJSON serialises a kernel's declarative description (the body is
// regenerated on parse, so only the NewKernel inputs are stored). Kernels
// with hand-built bodies cannot be serialised faithfully and are rejected.
func KernelJSON(k *Kernel, computePerLoad, computeLatency int) ([]byte, error) {
	kj := kernelJSON{
		Name:           k.Name,
		ComputePerLoad: computePerLoad,
		ComputeLatency: computeLatency,
		Iterations:     k.Iterations,
		WarpsPerCTA:    k.WarpsPerCTA,
		RegsPerThread:  k.RegsPerThread,
		GridCTAs:       k.GridCTAs,
	}
	for _, l := range k.Loads {
		lj := loadJSON{
			Pattern:         l.Pattern.String(),
			Scope:           scopeJSONName(l.Scope),
			WorkingSetBytes: l.WorkingSetBytes,
			Coalesced:       l.Coalesced,
			Phase:           l.Phase,
			Every:           l.Every,
		}
		isStore := false
		for _, ins := range k.Body {
			if ins.PC == l.PC && ins.Op == StoreOp {
				isStore = true
			}
		}
		if isStore {
			kj.Stores = append(kj.Stores, lj)
		} else {
			kj.Loads = append(kj.Loads, lj)
		}
	}
	return json.MarshalIndent(&kj, "", "  ")
}

func parseLoads(ljs []loadJSON) ([]LoadSpec, error) {
	var out []LoadSpec
	for i, lj := range ljs {
		p, err := parsePattern(lj.Pattern)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		s, err := parseScope(lj.Scope)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		coalesced := lj.Coalesced
		if coalesced == 0 {
			coalesced = 1
		}
		out = append(out, LoadSpec{
			Pattern:         p,
			Scope:           s,
			WorkingSetBytes: lj.WorkingSetBytes,
			Coalesced:       coalesced,
			Phase:           lj.Phase,
			Every:           lj.Every,
		})
	}
	return out, nil
}

func parsePattern(s string) (Pattern, error) {
	switch strings.ToLower(s) {
	case "streaming":
		return Streaming, nil
	case "tiled":
		return Tiled, nil
	case "irregular":
		return Irregular, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q (streaming|tiled|irregular)", s)
	}
}

func parseScope(s string) (Scope, error) {
	switch strings.ToLower(s) {
	case "global", "":
		return Global, nil
	case "per-sm", "persm":
		return PerSM, nil
	case "per-cta", "percta":
		return PerCTA, nil
	case "per-warp", "perwarp":
		return PerWarp, nil
	default:
		return 0, fmt.Errorf("unknown scope %q (global|per-sm|per-cta|per-warp)", s)
	}
}

func scopeJSONName(s Scope) string { return strings.ToLower(s.String()) }

// NewKernelChecked is NewKernel without the panic-on-invalid behaviour:
// callers that assemble kernels from external input validate explicitly.
func NewKernelChecked(name string, loads, stores []LoadSpec, computePerLoad, computeLatency, iterations, warpsPerCTA, regsPerThread, gridCTAs int) *Kernel {
	k := &Kernel{
		Name:          name,
		Iterations:    iterations,
		WarpsPerCTA:   warpsPerCTA,
		RegsPerThread: regsPerThread,
		GridCTAs:      gridCTAs,
		Seed:          splitmix(uint64(len(name))*31 + uint64(iterations)),
	}
	pc := uint32(0x100)
	addInstr := func(ins Instr) {
		ins.PC = pc
		pc += 4
		k.Body = append(k.Body, ins)
	}
	for i := range loads {
		l := loads[i]
		l.PC = pc
		k.Loads = append(k.Loads, l)
		addInstr(Instr{Op: LoadOp, LoadIdx: len(k.Loads) - 1})
		for c := 0; c < computePerLoad; c++ {
			addInstr(Instr{Op: Compute, Latency: computeLatency})
		}
	}
	for i := range stores {
		s := stores[i]
		s.PC = pc
		k.Loads = append(k.Loads, s)
		addInstr(Instr{Op: StoreOp, LoadIdx: len(k.Loads) - 1})
	}
	return k
}
