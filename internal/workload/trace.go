package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// TraceP is the replay pattern: addresses come from a recorded trace
// attached to the kernel instead of a generator. Loads with this pattern
// are built by Trace.Kernel.
const TraceP Pattern = 250

// Trace holds a per-warp, per-static-load memory trace for replay. The
// text format is one event per line:
//
//	<warp> <pc> <L|S> <addr>
//
// with warp decimal, pc and addr hex (0x prefix optional), '#' comments and
// blank lines ignored. Events of one warp must appear in program order;
// warps may interleave arbitrarily.
type Trace struct {
	// pcs in order of first appearance; parallel to kinds.
	pcs   []uint32
	kinds []OpKind
	// seqs[li][warp] is the ordered line-address sequence of static load li
	// in trace warp `warp`.
	seqs  [][][]memtypes.LineAddr
	warps int
}

// ParseTrace reads the text trace format.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	pcIndex := map[uint32]int{}
	warpSeen := map[int]bool{}
	type key struct{ li, warp int }
	seqs := map[key][]memtypes.LineAddr{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		warp, err := strconv.Atoi(fields[0])
		if err != nil || warp < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad warp %q", lineNo, fields[0])
		}
		pc64, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad pc %q", lineNo, fields[1])
		}
		var kind OpKind
		switch fields[2] {
		case "L", "l":
			kind = LoadOp
		case "S", "s":
			kind = StoreOp
		default:
			return nil, fmt.Errorf("workload: trace line %d: bad kind %q (L|S)", lineNo, fields[2])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad addr %q", lineNo, fields[3])
		}

		pc := uint32(pc64)
		li, ok := pcIndex[pc]
		if !ok {
			li = len(tr.pcs)
			pcIndex[pc] = li
			tr.pcs = append(tr.pcs, pc)
			tr.kinds = append(tr.kinds, kind)
		} else if tr.kinds[li] != kind {
			return nil, fmt.Errorf("workload: trace line %d: pc %#x is both load and store", lineNo, pc)
		}
		warpSeen[warp] = true
		k := key{li, warp}
		seqs[k] = append(seqs[k], memtypes.Addr(addr).Line())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.pcs) == 0 {
		return nil, fmt.Errorf("workload: trace has no events")
	}

	// Compact warp ids to 0..n-1 in ascending order.
	var warpIDs []int
	for w := range warpSeen {
		warpIDs = append(warpIDs, w)
	}
	sort.Ints(warpIDs)
	warpMap := map[int]int{}
	for i, w := range warpIDs {
		warpMap[w] = i
	}
	tr.warps = len(warpIDs)
	tr.seqs = make([][][]memtypes.LineAddr, len(tr.pcs))
	for li := range tr.pcs {
		tr.seqs[li] = make([][]memtypes.LineAddr, tr.warps)
	}
	for k, seq := range seqs {
		tr.seqs[k.li][warpMap[k.warp]] = seq
	}
	return tr, nil
}

// Warps returns the number of distinct warps in the trace.
func (t *Trace) Warps() int { return t.warps }

// Loads returns the number of static memory instructions in the trace.
func (t *Trace) Loads() int { return len(t.pcs) }

// Events returns the total traced events.
func (t *Trace) Events() int {
	n := 0
	for _, per := range t.seqs {
		for _, s := range per {
			n += len(s)
		}
	}
	return n
}

// Kernel builds a replay kernel: each traced static load becomes a TraceP
// load whose per-warp address sequence is replayed in order (wrapping when
// a warp exhausts its sequence). Simulated warps map onto trace warps
// round-robin. Iterations is sized so the longest per-warp sequence plays
// at least once.
func (t *Trace) Kernel(name string, computePerLoad, computeLatency, warpsPerCTA, regsPerThread, gridCTAs int) (*Kernel, error) {
	iters := 1
	for _, per := range t.seqs {
		for _, s := range per {
			if len(s) > iters {
				iters = len(s)
			}
		}
	}
	var loads, stores []LoadSpec
	for li := range t.pcs {
		spec := LoadSpec{Pattern: TraceP, Coalesced: 1, WorkingSetBytes: memtypes.LineSize}
		// Remember the trace slot in Phase (unused by TraceP otherwise).
		spec.Phase = li
		if t.kinds[li] == StoreOp {
			stores = append(stores, spec)
		} else {
			loads = append(loads, spec)
		}
	}
	k := NewKernelChecked(name, loads, stores, computePerLoad, computeLatency,
		iters, warpsPerCTA, regsPerThread, gridCTAs)
	k.trace = t
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return k, nil
}

// traceAddress resolves a TraceP access.
func (k *Kernel) traceAddress(l *LoadSpec, c Ctx, req int) memtypes.LineAddr {
	t := k.trace
	li := l.Phase
	w := int(k.globalWarp(c)) % t.warps
	seq := t.seqs[li][w]
	if len(seq) == 0 {
		// This warp never executed the load in the trace; touch a private
		// dummy line so the replay stays total.
		return memtypes.LineAddr((uint64(li+1)<<loadRegionBits | 0x7f<<32) + k.globalWarp(c)*memtypes.LineSize)
	}
	idx := (c.Iter*l.Coalesced + req) % len(seq)
	return seq[idx]
}

// TraceRecorder writes the replayable text trace format from a running
// simulation: attach its Observe method to sim.SM.Probe.
type TraceRecorder struct {
	bw  *bufio.Writer
	err error
}

// NewTraceRecorder wraps a writer.
func NewTraceRecorder(w io.Writer) *TraceRecorder {
	return &TraceRecorder{bw: bufio.NewWriter(w)}
}

// Observe records one line request (signature matches sim.SM.Probe up to
// the warp-identity prefix; cycle is not stored — the format is
// order-based).
func (r *TraceRecorder) Observe(warpSlot int, pc uint32, line memtypes.LineAddr, isStore bool) {
	if r.err != nil {
		return
	}
	kind := "L"
	if isStore {
		kind = "S"
	}
	_, r.err = fmt.Fprintf(r.bw, "%d 0x%x %s 0x%x\n", warpSlot, pc, kind, uint64(line))
}

// Flush completes the trace and reports any write error.
func (r *TraceRecorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.bw.Flush()
}
