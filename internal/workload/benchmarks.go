package workload

import "sort"

// Benchmark pairs a synthetic kernel with its Table 2 identity.
type Benchmark struct {
	// Name is the paper's two-letter code (S2, BI, ...).
	Name string
	// Desc is the Table 2 description.
	Desc string
	// Suite is the source benchmark suite in the paper.
	Suite string
	// Sensitive is the paper's cache-sensitivity class (Table 2): an app is
	// cache-sensitive when a 192 KB L1 speeds it up >30 % over 48 KB.
	Sensitive bool
	// Kernel is the synthetic model.
	Kernel *Kernel
}

// Each synthetic kernel below encodes the per-load behaviour the paper
// reports for its application (Sections 2.2–2.4):
//
//   - Per-warp tiled loads model the CCWS-style working sets whose
//     aggregate scales with the active warp count — these respond to warp
//     throttling (SWL), token-based allocation (PCAL) and victim caching.
//   - Phase-0 shared tiled loads (per-SM/global) model rows and vectors
//     reused by concurrently running warps — their footprint does not
//     shrink under throttling, so only extra cache capacity helps them.
//   - Streaming loads model one-touch data; their volumes follow Figure 3
//     (BI, LI, SR2, 2D and HS exceed the 48 KB cache in one window).
//
// Register and CTA shapes spread statically unused register space over the
// paper's 4–144 KB range (Figure 4).

func load(p Pattern, s Scope, ws, coalesced, phase int) LoadSpec {
	return LoadSpec{Pattern: p, Scope: s, WorkingSetBytes: ws, Coalesced: coalesced, Phase: phase}
}

func streamStore() LoadSpec {
	return LoadSpec{Pattern: Streaming, Scope: PerWarp, Coalesced: 1}
}

const kb = 1024

// defaultGrid is the CTA grid size for every synthetic kernel: large enough
// that SMs never starve during a capped simulation.
const defaultGrid = 4096

// defaultIters keeps CTA lifetimes at a few monitoring windows so the
// CTA-completion / re-activation path is exercised.
const defaultIters = 2500

// All returns the 20 benchmark models of Table 2, in the paper's order
// (cache-sensitive first).
func All() []Benchmark {
	return []Benchmark{
		// ---- Cache-sensitive (Table 2a) ----
		{
			Name: "S2", Desc: "Symm. rank 2k operations", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("S2",
				[]LoadSpec{
					load(Irregular, PerSM, 96*kb, 2, 0),
					load(Tiled, PerWarp, 512, 1, 0),
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 8, 24, defaultGrid),
		},
		{
			Name: "GE", Desc: "Scalar, Vector and Matrix Mul.", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("GE",
				[]LoadSpec{
					load(Irregular, PerSM, 80*kb, 2, 0),
					load(Tiled, PerWarp, 512, 1, 0),
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 4, 26, defaultGrid),
		},
		{
			Name: "BI", Desc: "BiCGStab Linear Solver", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("BI",
				[]LoadSpec{
					load(Irregular, PerSM, 96*kb, 2, 0),
					{Pattern: Streaming, Scope: PerWarp, Coalesced: 2, Every: 4},
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 8, 24, defaultGrid),
		},
		{
			Name: "KM", Desc: "KMeans", Suite: "Rodinia", Sensitive: true,
			Kernel: NewKernel("KM",
				[]LoadSpec{
					load(Irregular, PerSM, 80*kb, 2, 0),
					{Pattern: Streaming, Scope: PerWarp, Coalesced: 1, Every: 16},
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 8, 20, defaultGrid),
		},
		{
			Name: "AT", Desc: "Matrix Transpose-Vector Mul.", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("AT",
				[]LoadSpec{
					load(Irregular, PerSM, 112*kb, 2, 0),
					load(Tiled, Global, 8*kb, 2, 0),
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 4, 24, defaultGrid),
		},
		{
			Name: "BC", Desc: "BFS (CUDA SDK)", Suite: "CUDA SDK", Sensitive: true,
			Kernel: NewKernel("BC",
				[]LoadSpec{
					load(Irregular, PerSM, 96*kb, 4, 0),
					{Pattern: Streaming, Scope: PerWarp, Coalesced: 2, Every: 2},
				},
				nil,
				2, 6, defaultIters, 4, 16, defaultGrid),
		},
		{
			Name: "S1", Desc: "Symm. rank 1k operations", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("S1",
				[]LoadSpec{
					load(Irregular, PerSM, 64*kb, 2, 0),
					load(Tiled, PerWarp, 1*kb, 1, 0),
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 8, 26, defaultGrid),
		},
		{
			Name: "MV", Desc: "Matrix Vector Product-Transpose", Suite: "Polybench", Sensitive: true,
			Kernel: NewKernel("MV",
				[]LoadSpec{
					load(Irregular, PerSM, 88*kb, 2, 0),
					load(Tiled, Global, 16*kb, 2, 0),
					{Pattern: Streaming, Scope: PerWarp, Coalesced: 1, Every: 8},
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 4, 24, defaultGrid),
		},
		{
			Name: "CF", Desc: "CFD Solver", Suite: "Rodinia", Sensitive: true,
			Kernel: NewKernel("CF",
				[]LoadSpec{
					load(Irregular, PerWarp, 2*kb, 2, 0),
					load(Irregular, PerSM, 32*kb, 2, 0),
				},
				[]LoadSpec{streamStore()},
				3, 10, defaultIters, 8, 40, defaultGrid),
		},
		{
			Name: "PF", Desc: "ParticleFilter Float", Suite: "Rodinia", Sensitive: true,
			Kernel: NewKernel("PF",
				[]LoadSpec{
					load(Irregular, PerWarp, 2*kb, 2, 0),
					load(Tiled, PerCTA, 8*kb, 1, 0),
				},
				[]LoadSpec{streamStore()},
				3, 8, defaultIters, 8, 28, defaultGrid),
		},

		// ---- Cache-insensitive (Table 2b) ----
		{
			Name: "BG", Desc: "BFS (GPGPU-Sim)", Suite: "GPGPU-Sim", Sensitive: false,
			Kernel: NewKernel("BG",
				[]LoadSpec{
					load(Irregular, PerSM, 512*kb, 4, 0),
					load(Streaming, PerWarp, 0, 2, 0),
				},
				nil,
				2, 6, defaultIters, 4, 16, defaultGrid),
		},
		{
			Name: "LI", Desc: "LIBOR Monte Carlo", Suite: "GPGPU-Sim", Sensitive: false,
			Kernel: NewKernel("LI",
				[]LoadSpec{
					load(Streaming, PerWarp, 0, 2, 0),
					load(Tiled, Global, 8*kb, 1, 0),
				},
				[]LoadSpec{streamStore()},
				4, 12, defaultIters, 8, 63, defaultGrid),
		},
		{
			Name: "SR2", Desc: "SRAD (v2)", Suite: "Rodinia", Sensitive: false,
			Kernel: NewKernel("SR2",
				[]LoadSpec{
					load(Streaming, PerWarp, 0, 2, 0),
					load(Tiled, PerCTA, 4*kb, 1, 0),
				},
				[]LoadSpec{streamStore()},
				3, 8, defaultIters, 8, 24, defaultGrid),
		},
		{
			Name: "SP", Desc: "SPMV", Suite: "Parboil", Sensitive: false,
			Kernel: NewKernel("SP",
				[]LoadSpec{
					load(Irregular, Global, 40*kb, 2, 0),
					load(Streaming, PerWarp, 0, 2, 0),
				},
				[]LoadSpec{streamStore()},
				2, 6, defaultIters, 4, 21, defaultGrid),
		},
		{
			Name: "BR", Desc: "BFS (Rodinia)", Suite: "Rodinia", Sensitive: false,
			Kernel: NewKernel("BR",
				[]LoadSpec{
					load(Irregular, PerSM, 16*kb, 4, 0),
					load(Streaming, PerWarp, 0, 1, 0),
				},
				nil,
				2, 6, defaultIters, 4, 17, defaultGrid),
		},
		{
			Name: "FD", Desc: "2D FDTD", Suite: "Polybench", Sensitive: false,
			Kernel: NewKernel("FD",
				[]LoadSpec{
					load(Tiled, PerSM, 12*kb, 1, 0),
					load(Tiled, PerSM, 12*kb, 1, 0),
				},
				[]LoadSpec{streamStore()},
				4, 14, defaultIters, 16, 20, defaultGrid),
		},
		{
			Name: "GA", Desc: "Gaussian Elimination", Suite: "Rodinia", Sensitive: false,
			Kernel: NewKernel("GA",
				[]LoadSpec{
					load(Tiled, PerSM, 10*kb, 1, 0),
					load(Streaming, PerWarp, 0, 1, 0),
				},
				[]LoadSpec{streamStore()},
				2, 8, defaultIters, 4, 18, defaultGrid),
		},
		{
			Name: "2D", Desc: "2D Convolution", Suite: "Polybench", Sensitive: false,
			Kernel: NewKernel("2D",
				[]LoadSpec{
					load(Tiled, PerSM, 16*kb, 1, 0),
					load(Streaming, PerWarp, 0, 2, 0),
				},
				[]LoadSpec{streamStore()},
				3, 8, defaultIters, 8, 26, defaultGrid),
		},
		{
			Name: "SR1", Desc: "SRAD (v1)", Suite: "Rodinia", Sensitive: false,
			Kernel: NewKernel("SR1",
				[]LoadSpec{
					load(Tiled, PerSM, 24*kb, 1, 0),
					load(Streaming, PerWarp, 0, 1, 0),
				},
				[]LoadSpec{streamStore()},
				3, 8, defaultIters, 8, 28, defaultGrid),
		},
		{
			Name: "HS", Desc: "HotSpot", Suite: "Rodinia", Sensitive: false,
			Kernel: NewKernel("HS",
				[]LoadSpec{
					load(Tiled, PerSM, 20*kb, 1, 0),
					load(Streaming, PerWarp, 0, 2, 0),
				},
				[]LoadSpec{streamStore()},
				4, 12, defaultIters, 8, 34, defaultGrid),
		},
	}
}

// Names returns the benchmark codes in Table 2 order.
func Names() []string {
	bs := All()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// ByName looks a benchmark up by its Table 2 code.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// SensitiveNames returns the cache-sensitive benchmark codes, sorted.
func SensitiveNames() []string {
	var out []string
	for _, b := range All() {
		if b.Sensitive {
			out = append(out, b.Name)
		}
	}
	sort.Strings(out)
	return out
}
