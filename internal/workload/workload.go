// Package workload defines the synthetic kernels that stand in for the
// paper's 20 CUDA benchmarks (Table 2).
//
// The paper characterises each application by the behaviour of its static
// global loads (Section 2.3): a handful of loads each either stream (no
// reuse) or repeatedly touch a bounded working set, at some scope (shared by
// the whole GPU, one SM, one CTA, or private to a warp). This package
// reproduces exactly those observable properties — per-load working-set
// size, reuse scope, streaming volume, register usage, CTA shape — as
// parameterised address generators, so the cache and victim-cache dynamics
// the paper measures are exercised without CUDA binaries.
package workload

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// Pattern is the reuse behaviour of one static load.
type Pattern uint8

const (
	// Streaming data is touched once and never again (worst locality).
	Streaming Pattern = iota
	// Tiled data is swept cyclically through a bounded working set.
	Tiled
	// Irregular data is accessed pseudo-randomly within a bounded range.
	Irregular
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case Streaming:
		return "streaming"
	case Tiled:
		return "tiled"
	case Irregular:
		return "irregular"
	case TraceP:
		return "trace"
	default:
		return fmt.Sprintf("Pattern(%d)", uint8(p))
	}
}

// Scope is the sharing domain of a load's working set.
type Scope uint8

const (
	// Global: every warp on every SM touches the same footprint.
	Global Scope = iota
	// PerSM: warps on one SM share a footprint; SMs are disjoint.
	PerSM
	// PerCTA: warps of one CTA share a footprint; CTAs are disjoint.
	PerCTA
	// PerWarp: every warp has a private footprint.
	PerWarp
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case Global:
		return "global"
	case PerSM:
		return "per-SM"
	case PerCTA:
		return "per-CTA"
	case PerWarp:
		return "per-warp"
	default:
		return fmt.Sprintf("Scope(%d)", uint8(s))
	}
}

// LoadSpec describes one static global load (or store) instruction.
type LoadSpec struct {
	// PC is the static instruction address; assigned by NewKernel.
	PC uint32
	// Pattern and Scope select the address generator.
	Pattern Pattern
	Scope   Scope
	// WorkingSetBytes is the reuse footprint within the scope (Tiled and
	// Irregular). Ignored for Streaming.
	WorkingSetBytes int
	// Coalesced is the number of 128 B line requests one warp execution of
	// this load produces (1 = fully coalesced ... 32 = fully divergent).
	Coalesced int
	// Phase staggers the sweep position of different warps through a Tiled
	// working set (0 = all warps in lockstep).
	Phase int
	// Every issues the load only on iterations divisible by Every
	// (0 or 1 = every iteration). Real kernels touch streaming inputs far
	// less often than their hot reuse data; this models that rate.
	Every int
}

// ActiveAt reports whether the load issues at the given iteration.
func (l *LoadSpec) ActiveAt(iter int) bool {
	return l.Every <= 1 || iter%l.Every == 0
}

// OpKind is the instruction type in a kernel body.
type OpKind uint8

const (
	// Compute is a non-memory warp instruction with a fixed latency.
	Compute OpKind = iota
	// LoadOp issues the LoadSpec at Instr.LoadIdx.
	LoadOp
	// StoreOp issues the (store) LoadSpec at Instr.LoadIdx.
	StoreOp
)

// Instr is one static instruction of the kernel body. A warp executes the
// body once per iteration, in order; each instruction depends on the
// previous one (latency is hidden by switching warps, as on real SMs).
type Instr struct {
	PC      uint32
	Op      OpKind
	Latency int // Compute only
	LoadIdx int // LoadOp/StoreOp only, index into Kernel.Loads
}

// Kernel is one synthetic GPU kernel.
type Kernel struct {
	Name string
	// Loads are the static memory instructions (loads and stores).
	Loads []LoadSpec
	// Body is the per-iteration instruction sequence.
	Body []Instr
	// Iterations is the per-warp loop trip count.
	Iterations int
	// WarpsPerCTA and RegsPerThread shape occupancy and register usage.
	WarpsPerCTA   int
	RegsPerThread int
	// GridCTAs is the total number of CTAs in the grid.
	GridCTAs int
	// Seed perturbs the irregular-pattern generator per kernel.
	Seed uint64

	// trace backs TraceP loads (set by Trace.Kernel).
	trace *Trace
}

// WithSeed returns a shallow copy of the kernel whose irregular-pattern
// generator is perturbed by the given seed (for sensitivity studies across
// synthetic-trace instances).
func (k *Kernel) WithSeed(seed uint64) *Kernel {
	c := *k
	c.Seed = k.Seed ^ splitmix(seed)
	return &c
}

// RegsPerWarp returns the number of 128 B warp-registers one warp uses.
func (k *Kernel) RegsPerWarp() int { return k.RegsPerThread }

// RegsPerCTA returns warp-registers used by one CTA.
func (k *Kernel) RegsPerCTA() int { return k.WarpsPerCTA * k.RegsPerThread }

// Validate reports the first inconsistency in the kernel description.
func (k *Kernel) Validate() error {
	if k.WarpsPerCTA <= 0 || k.RegsPerThread <= 0 || k.GridCTAs <= 0 || k.Iterations <= 0 {
		return fmt.Errorf("workload %q: non-positive shape parameter", k.Name)
	}
	if len(k.Body) == 0 {
		return fmt.Errorf("workload %q: empty body", k.Name)
	}
	for i, ins := range k.Body {
		if ins.Op != Compute {
			if ins.LoadIdx < 0 || ins.LoadIdx >= len(k.Loads) {
				return fmt.Errorf("workload %q: body[%d] references load %d of %d", k.Name, i, ins.LoadIdx, len(k.Loads))
			}
		}
	}
	for i, l := range k.Loads {
		if l.Coalesced < 1 || l.Coalesced > 32 {
			return fmt.Errorf("workload %q: load %d coalesced %d out of [1,32]", k.Name, i, l.Coalesced)
		}
		if l.Pattern == TraceP {
			if k.trace == nil {
				return fmt.Errorf("workload %q: load %d replays a trace but none is attached", k.Name, i)
			}
			continue
		}
		if l.Pattern != Streaming && l.WorkingSetBytes < memtypes.LineSize {
			return fmt.Errorf("workload %q: load %d working set %d below one line", k.Name, i, l.WorkingSetBytes)
		}
		if l.Every < 0 {
			return fmt.Errorf("workload %q: load %d negative Every", k.Name, i)
		}
	}
	return nil
}

// loadRegionBits is the log2 size of the disjoint address region given to
// each static load (64 GB regions keep all patterns collision-free).
const loadRegionBits = 36

// Ctx identifies one dynamic execution of a load: which warp of which CTA
// on which SM, at which loop iteration.
type Ctx struct {
	SM     int
	CTASeq int // global CTA launch sequence number
	Warp   int // warp index within the CTA
	Iter   int
}

// globalWarp returns a grid-unique warp number.
func (k *Kernel) globalWarp(c Ctx) uint64 {
	return uint64(c.CTASeq)*uint64(k.WarpsPerCTA) + uint64(c.Warp)
}

// Address returns the line address of request req (0..Coalesced-1) of load
// li in execution context c. Generation is pure and deterministic.
func (k *Kernel) Address(li int, c Ctx, req int) memtypes.LineAddr {
	l := &k.Loads[li]
	base := uint64(li+1) << loadRegionBits
	switch l.Pattern {
	case TraceP:
		return k.traceAddress(l, c, req)
	case Streaming:
		// Each warp streams through its own arithmetic sequence.
		gw := k.globalWarp(c)
		iter := uint64(c.Iter)
		if l.Every > 1 {
			iter /= uint64(l.Every)
		}
		line := gw*uint64(k.Iterations)*uint64(l.Coalesced) +
			iter*uint64(l.Coalesced) + uint64(req)
		return memtypes.LineAddr(base + line*memtypes.LineSize)
	case Tiled:
		lines := k.scopeLines(l, c)
		pos := (uint64(c.Iter)*uint64(l.Coalesced) + uint64(req) +
			uint64(l.Phase)*k.scopeWarp(l.Scope, c)) % lines
		return memtypes.LineAddr(base + k.scopeBase(l.Scope, c, l.WorkingSetBytes) + pos*memtypes.LineSize)
	case Irregular:
		lines := k.scopeLines(l, c)
		h := splitmix(k.Seed ^ uint64(li)<<40 ^ k.scopeID(l.Scope, c)<<20 ^
			uint64(c.Iter)<<5 ^ uint64(req) ^ k.globalWarp(c)<<48)
		return memtypes.LineAddr(base + k.scopeBase(l.Scope, c, l.WorkingSetBytes) + (h%lines)*memtypes.LineSize)
	default:
		panic("workload: unknown pattern")
	}
}

// scopeBase returns the byte offset of the scope's private footprint region.
// Per-warp regions are spaced at twice the nominal working set because of
// the per-warp size heterogeneity below.
func (k *Kernel) scopeBase(s Scope, c Ctx, ws int) uint64 {
	stride := uint64(ws + memtypes.LineSize)
	if s == PerWarp {
		stride *= 2
	}
	return k.scopeID(s, c) * stride
}

// scopeLines returns the footprint in lines for the execution context. Real
// kernels' per-thread working sets vary (row lengths, degree distributions),
// which is what makes warp throttling respond smoothly; per-warp footprints
// are therefore scaled by a deterministic factor in [0.5, 1.75] (mean ≈ 1.1)
// keyed on the warp identity.
func (k *Kernel) scopeLines(l *LoadSpec, c Ctx) uint64 {
	lines := uint64(l.WorkingSetBytes / memtypes.LineSize)
	if l.Scope == PerWarp {
		gw := k.globalWarp(c)
		lines = lines * (2 + gw%6) / 4
	}
	if lines == 0 {
		lines = 1
	}
	return lines
}

// scopeID numbers the sharing domains of a scope.
func (k *Kernel) scopeID(s Scope, c Ctx) uint64 {
	switch s {
	case Global:
		return 0
	case PerSM:
		return uint64(c.SM) + 1
	case PerCTA:
		return uint64(c.CTASeq) + 1
	case PerWarp:
		return k.globalWarp(c) + 1
	default:
		panic("workload: unknown scope")
	}
}

// scopeWarp returns the warp's index within the sharing domain, used to
// phase-stagger tiled sweeps.
func (k *Kernel) scopeWarp(s Scope, c Ctx) uint64 {
	switch s {
	case PerWarp:
		return 0
	case PerCTA:
		return uint64(c.Warp)
	default:
		// Global/PerSM: stagger by position within the SM.
		return uint64(c.Warp) + uint64(c.CTASeq%64)*uint64(k.WarpsPerCTA)
	}
}

// splitmix is SplitMix64, a high-quality stateless mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewKernel assembles a kernel whose body interleaves each load with
// computePerLoad compute instructions, ending with the given stores.
// PCs are assigned sequentially (4 bytes apart, as on real ISAs).
// It panics on an invalid description; external input should go through
// ParseKernelJSON or NewKernelChecked + Validate instead.
func NewKernel(name string, loads []LoadSpec, stores []LoadSpec, computePerLoad, computeLatency, iterations, warpsPerCTA, regsPerThread, gridCTAs int) *Kernel {
	k := NewKernelChecked(name, loads, stores, computePerLoad, computeLatency,
		iterations, warpsPerCTA, regsPerThread, gridCTAs)
	if err := k.Validate(); err != nil {
		panic(err)
	}
	return k
}
