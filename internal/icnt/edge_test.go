package icnt

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// TestLinkEdgeCases table-drives the boundary behaviours: a zero-latency
// link must deliver in the send cycle, and a link driven above its delivery
// rate must back requests up (backpressure) and then drain them in FIFO
// order without losing or duplicating any.
func TestLinkEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		latency  int64
		perCycle int
		sends    int   // requests injected at cycle 0
		deliver  []int // expected Deliver sizes at cycles 0,1,2,...
	}{
		{"zero-latency-same-cycle", 0, 4, 3, []int{3, 0}},
		{"zero-latency-capped", 0, 2, 5, []int{2, 2, 1, 0}},
		{"unit-latency-single", 1, 1, 3, []int{0, 1, 1, 1, 0}},
		{"latency-then-burst", 3, 8, 6, []int{0, 0, 0, 6, 0}},
		{"empty-link", 5, 2, 0, []int{0, 0}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := New(tc.latency, tc.perCycle)
			reqs := make([]*memtypes.Request, tc.sends)
			for i := range reqs {
				reqs[i] = &memtypes.Request{Line: memtypes.LineAddr(i)}
				l.Send(reqs[i], 0)
			}
			var got []*memtypes.Request
			for cyc, want := range tc.deliver {
				out := l.Deliver(int64(cyc))
				if len(out) != want {
					t.Fatalf("cycle %d: delivered %d, want %d", cyc, len(out), want)
				}
				if backlog := tc.sends - len(got) - len(out); l.Pending() != backlog {
					t.Fatalf("cycle %d: pending %d, want %d", cyc, l.Pending(), backlog)
				}
				got = append(got, out...)
			}
			if len(got) != tc.sends {
				t.Fatalf("delivered %d of %d sends", len(got), tc.sends)
			}
			for i, r := range got {
				if r != reqs[i] {
					t.Fatalf("delivery %d out of FIFO order", i)
				}
			}
			if l.Sent != int64(tc.sends) || l.Delivered != int64(tc.sends) {
				t.Fatalf("counters sent=%d delivered=%d, want %d", l.Sent, l.Delivered, tc.sends)
			}
		})
	}
}

// TestForEachCensus verifies the checker's census hook sees exactly the
// in-flight requests, and that visiting does not perturb delivery.
func TestForEachCensus(t *testing.T) {
	l := New(4, 2)
	want := map[memtypes.LineAddr]bool{}
	for i := 0; i < 3; i++ {
		r := &memtypes.Request{Line: memtypes.LineAddr(10 + i)}
		want[r.Line] = true
		l.Send(r, 0)
	}
	seen := map[memtypes.LineAddr]bool{}
	l.ForEach(func(r *memtypes.Request) { seen[r.Line] = true })
	if len(seen) != len(want) {
		t.Fatalf("census saw %d requests, want %d", len(seen), len(want))
	}
	for line := range want {
		if !seen[line] {
			t.Fatalf("census missed line %d", line)
		}
	}
	if got := l.Deliver(4); len(got) != 2 {
		t.Fatalf("post-census delivery broken: %d", len(got))
	}
}
