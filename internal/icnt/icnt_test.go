package icnt

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func TestLatency(t *testing.T) {
	l := New(10, 4)
	req := &memtypes.Request{Line: 0}
	l.Send(req, 100)
	if got := l.Deliver(109); len(got) != 0 {
		t.Fatalf("delivered %d before latency elapsed", len(got))
	}
	got := l.Deliver(110)
	if len(got) != 1 || got[0] != req {
		t.Fatalf("Deliver = %v", got)
	}
	if l.Pending() != 0 {
		t.Fatalf("pending = %d", l.Pending())
	}
}

func TestThroughputCap(t *testing.T) {
	l := New(1, 2)
	for i := 0; i < 5; i++ {
		l.Send(&memtypes.Request{Line: memtypes.LineAddr(i)}, 0)
	}
	if got := l.Deliver(1); len(got) != 2 {
		t.Fatalf("cycle 1 delivered %d, want 2", len(got))
	}
	if got := l.Deliver(2); len(got) != 2 {
		t.Fatalf("cycle 2 delivered %d, want 2", len(got))
	}
	if got := l.Deliver(3); len(got) != 1 {
		t.Fatalf("cycle 3 delivered %d, want 1", len(got))
	}
}

func TestFIFOOrder(t *testing.T) {
	l := New(5, 1)
	a := &memtypes.Request{Line: 1}
	b := &memtypes.Request{Line: 2}
	l.Send(a, 0)
	l.Send(b, 0)
	if got := l.Deliver(5); len(got) != 1 || got[0] != a {
		t.Fatalf("first delivery = %v, want a", got)
	}
	if got := l.Deliver(6); len(got) != 1 || got[0] != b {
		t.Fatalf("second delivery = %v, want b", got)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 0) should panic")
		}
	}()
	New(-1, 0)
}

func TestCounters(t *testing.T) {
	l := New(0, 8)
	l.Send(&memtypes.Request{}, 0)
	l.Deliver(0)
	if l.Sent != 1 || l.Delivered != 1 {
		t.Fatalf("sent=%d delivered=%d", l.Sent, l.Delivered)
	}
}
