// Package icnt models the on-chip interconnect between the SMs and the
// shared L2 as fixed-latency, bandwidth-capped delay queues. One Link is a
// unidirectional pipe; the GPU uses one per direction.
package icnt

import (
	"container/heap"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

type entry struct {
	req   *memtypes.Request
	ready int64
	seq   int64
}

type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Link is a unidirectional, fixed-latency, bounded-throughput pipe.
type Link struct {
	latency  int64
	perCycle int
	q        entryHeap
	seq      int64

	// Sent counts requests accepted; Delivered counts requests handed out.
	Sent      int64
	Delivered int64
}

// New builds a link with the given traversal latency (cycles) and maximum
// deliveries per cycle.
func New(latency int64, perCycle int) *Link {
	if latency < 0 || perCycle <= 0 {
		panic("icnt: invalid link parameters")
	}
	return &Link{latency: latency, perCycle: perCycle}
}

// Send injects a request at the given cycle.
func (l *Link) Send(req *memtypes.Request, cycle int64) {
	l.seq++
	heap.Push(&l.q, entry{req: req, ready: cycle + l.latency, seq: l.seq})
	l.Sent++
}

// Deliver returns up to perCycle requests whose traversal has completed by
// the given cycle, in FIFO order of readiness.
func (l *Link) Deliver(cycle int64) []*memtypes.Request {
	var out []*memtypes.Request
	for len(l.q) > 0 && l.q[0].ready <= cycle && len(out) < l.perCycle {
		e := heap.Pop(&l.q).(entry)
		out = append(out, e.req)
		l.Delivered++
	}
	return out
}

// Pending returns the number of in-flight requests.
func (l *Link) Pending() int { return len(l.q) }

// ForEach visits every in-flight request in unspecified order. Used by the
// invariant checker to take a census of the memory system; fn must not
// mutate the link.
func (l *Link) ForEach(fn func(*memtypes.Request)) {
	for i := range l.q {
		fn(l.q[i].req)
	}
}
