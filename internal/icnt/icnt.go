// Package icnt models the on-chip interconnect between the SMs and the
// shared L2 as fixed-latency, bandwidth-capped delay queues. One Link is a
// unidirectional pipe; the GPU uses one per direction.
package icnt

import (
	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

type entry struct {
	req   *memtypes.Request
	ready int64
	seq   int64
}

// less orders entries by readiness cycle, then injection order. seq is
// unique per link, so the order is total and delivery is deterministic no
// matter how the heap happens to be shaped.
func (e entry) less(o entry) bool {
	if e.ready != o.ready {
		return e.ready < o.ready
	}
	return e.seq < o.seq
}

// Link is a unidirectional, fixed-latency, bounded-throughput pipe.
//
// The in-flight set is a hand-rolled binary min-heap over a plain []entry.
// container/heap would box every entry into an interface on Push — one heap
// allocation per traversing request — where this version reuses the backing
// array forever: steady-state Send/Deliver is allocation-free.
type Link struct {
	latency  int64
	perCycle int
	q        []entry
	seq      int64

	// Sent counts requests accepted; Delivered counts requests handed out.
	Sent      int64
	Delivered int64
}

// New builds a link with the given traversal latency (cycles) and maximum
// deliveries per cycle.
func New(latency int64, perCycle int) *Link {
	if latency < 0 || perCycle <= 0 {
		panic("icnt: invalid link parameters")
	}
	return &Link{latency: latency, perCycle: perCycle}
}

// Send injects a request at the given cycle.
func (l *Link) Send(req *memtypes.Request, cycle int64) {
	l.seq++
	l.q = append(l.q, entry{req: req, ready: cycle + l.latency, seq: l.seq})
	l.up(len(l.q) - 1)
	l.Sent++
}

// DeliverEach hands up to perCycle requests whose traversal has completed
// by the given cycle to fn, in FIFO order of readiness. This is the
// engine-facing path: it allocates nothing.
func (l *Link) DeliverEach(cycle int64, fn func(*memtypes.Request)) {
	for n := 0; n < l.perCycle && len(l.q) > 0 && l.q[0].ready <= cycle; n++ {
		req := l.q[0].req
		l.popRoot()
		l.Delivered++
		fn(req)
	}
}

// Deliver returns up to perCycle requests whose traversal has completed by
// the given cycle, in FIFO order of readiness. Convenience wrapper over
// DeliverEach for tests and tools; the returned slice is freshly allocated.
func (l *Link) Deliver(cycle int64) []*memtypes.Request {
	var out []*memtypes.Request
	l.DeliverEach(cycle, func(req *memtypes.Request) { out = append(out, req) })
	return out
}

// Pending returns the number of in-flight requests.
func (l *Link) Pending() int { return len(l.q) }

// NextEvent advertises the earliest cycle >= now at which the link can
// deliver a request (the event-driven engine's component protocol; see
// sim/event.go). An empty link is quiescent; otherwise the heap root is the
// earliest arrival. Residual entries that were throttled by the per-cycle
// delivery cap have ready cycles in the past and pin the event to now. The
// link accrues nothing per cycle, so it needs no skip hook.
func (l *Link) NextEvent(now int64) (int64, bool) {
	if len(l.q) == 0 {
		return 0, false
	}
	if r := l.q[0].ready; r > now {
		return r, true
	}
	return now, true
}

// ForEach visits every in-flight request in unspecified order. Used by the
// invariant checker to take a census of the memory system; fn must not
// mutate the link.
func (l *Link) ForEach(fn func(*memtypes.Request)) {
	for i := range l.q {
		fn(l.q[i].req)
	}
}

// up restores the heap property from leaf i towards the root.
func (l *Link) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !l.q[i].less(l.q[parent]) {
			return
		}
		l.q[i], l.q[parent] = l.q[parent], l.q[i]
		i = parent
	}
}

// popRoot removes the minimum entry, shrinking the backing array in place.
func (l *Link) popRoot() {
	n := len(l.q) - 1
	l.q[0] = l.q[n]
	l.q[n] = entry{} // drop the request pointer
	l.q = l.q[:n]
	l.down(0)
}

// down restores the heap property from the root towards the leaves.
func (l *Link) down(i int) {
	n := len(l.q)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && l.q[right].less(l.q[left]) {
			least = right
		}
		if !l.q[least].less(l.q[i]) {
			return
		}
		l.q[i], l.q[least] = l.q[least], l.q[i]
		i = least
	}
}
