package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	cfg := Default()
	g := &cfg.GPU
	if g.NumSMs != 16 || g.ClockMHz != 1126 || g.SIMDWidth != 32 {
		t.Fatalf("core config = %+v", g)
	}
	if g.MaxThreadsPerSM != 2048 || g.MaxWarpsPerSM != 64 || g.MaxCTAsPerSM != 32 {
		t.Fatal("residency limits differ from Table 1")
	}
	if g.RegFileBytes != 256*1024 || g.SharedMemBytes != 96*1024 {
		t.Fatal("storage sizes differ from Table 1")
	}
	if g.L1Bytes != 48*1024 || g.L1Ways != 8 || g.L1MSHRs != 64 {
		t.Fatal("L1 differs from Table 1")
	}
	if g.L2Bytes != 2048*1024 || g.L2Ways != 8 {
		t.Fatal("L2 differs from Table 1")
	}
	if g.DRAMBandwidthGBs != 352.5 {
		t.Fatal("DRAM bandwidth differs from Table 1")
	}
	if g.DRAM.RCD != 12 || g.DRAM.RP != 12 || g.DRAM.RC != 40 ||
		g.DRAM.RRD != 5.5 || g.DRAM.CL != 12 || g.DRAM.WR != 12 || g.DRAM.RAS != 28 {
		t.Fatal("DRAM timing differs from Table 1")
	}
}

func TestDefaultMatchesTable3(t *testing.T) {
	cfg := Default()
	l := &cfg.LB
	if l.WindowCycles != 50000 || l.HitThreshold != 0.20 {
		t.Fatal("monitoring config differs from Table 3")
	}
	if l.IPCVarUpper != 0.10 || l.IPCVarLower != -0.10 {
		t.Fatal("IPC bounds differ from Table 3")
	}
	if l.VTTWays != 4 || l.MaxPartitions != 8 || l.VPAccessLatency != 3 {
		t.Fatal("VTT config differs from Table 3")
	}
	e := &cfg.Energy
	if e.CTAManagerAccessPJ != 1.94 || e.HPCAccessPJ != 0.09 ||
		e.LMAccessPJ != 0.32 || e.VTTAccessPJ != 2.05 {
		t.Fatal("structure energies differ from Table 3")
	}
}

func TestDerivedGeometry(t *testing.T) {
	cfg := Default()
	if got := cfg.GPU.L1Sets(); got != 48 {
		t.Fatalf("L1 sets = %d, want 48", got)
	}
	if got := cfg.GPU.WarpRegisters(); got != 2048 {
		t.Fatalf("warp registers = %d, want 2048", got)
	}
	bpc := cfg.GPU.BytesPerCycle()
	if bpc < 310 || bpc > 320 {
		t.Fatalf("bytes/cycle = %.1f, want ~313", bpc)
	}
}

func TestValidateAcceptsDefault(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.GPU.NumSMs = 0 },
		func(c *Config) { c.GPU.SIMDWidth = 0 },
		func(c *Config) { c.GPU.MaxWarpsPerSM = 0 },
		func(c *Config) { c.GPU.RegFileBytes = 1000 },
		func(c *Config) { c.GPU.L1Bytes = 1000 },
		func(c *Config) { c.GPU.L2Bytes = 999 },
		func(c *Config) { c.GPU.NumSchedulers = 0 },
		func(c *Config) { c.GPU.RegFileBanks = 0 },
		func(c *Config) { c.GPU.MaxWarpMLP = 0 },
		func(c *Config) { c.LB.WindowCycles = 0 },
		func(c *Config) { c.LB.VTTWays = 0 },
		func(c *Config) { c.LB.VTTWays = 33 },
		func(c *Config) { c.LB.HitThreshold = 1.5 },
		func(c *Config) { c.LB.IPCVarUpper, c.LB.IPCVarLower = -0.1, 0.1 },
		func(c *Config) { c.LB.RegOffset = -1 },
		func(c *Config) { c.LB.RegOffset = 99999 },
		func(c *Config) { c.LB.LMEntries = 0 },
		func(c *Config) { c.LB.LMEntries = 64 }, // not addressable by 5 bits
		func(c *Config) { c.LB.BackupBufEntries = 0 },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScaled(t *testing.T) {
	cfg := Scaled(4)
	if cfg.GPU.NumSMs != 4 {
		t.Fatalf("scaled SMs = %d", cfg.GPU.NumSMs)
	}
	if cfg.LB.WindowCycles != 12500 {
		t.Fatalf("scaled window = %d", cfg.LB.WindowCycles)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := Scaled(1).GPU.NumSMs; got != 16 {
		t.Fatalf("Scaled(1) SMs = %d", got)
	}
}
