// Package config defines the simulated GPU and Linebacker configurations.
//
// The defaults reproduce Table 1 (baseline GPU) and Table 3 (Linebacker
// microarchitecture) of the ISCA '19 paper. All sizes are bytes unless a
// field name says otherwise.
package config

import (
	"errors"
	"fmt"
)

// LineSize is the cache-line and warp-register size in bytes. The paper
// fixes both to 128 B so an evicted line maps onto one warp register.
const LineSize = 128

// GPU describes the baseline GPU of Table 1.
type GPU struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// ClockMHz is the core clock frequency in MHz.
	ClockMHz int
	// SIMDWidth is the number of threads per warp.
	SIMDWidth int
	// MaxThreadsPerSM, MaxWarpsPerSM and MaxCTAsPerSM are the hardware
	// residency limits of one SM.
	MaxThreadsPerSM int
	MaxWarpsPerSM   int
	MaxCTAsPerSM    int
	// NumSchedulers is the number of warp schedulers per SM (GTO policy).
	NumSchedulers int

	// RegFileBytes is the register file capacity per SM.
	RegFileBytes int
	// RegFileBanks is the number of register file banks per SM.
	RegFileBanks int
	// SharedMemBytes is the shared memory capacity per SM (occupancy only).
	SharedMemBytes int

	// L1 data cache geometry per SM.
	L1Bytes int
	L1Ways  int
	L1MSHRs int
	// L1HitLatency is the load-to-use latency of an L1 hit in cycles.
	L1HitLatency int

	// L2 shared cache geometry.
	L2Bytes int
	L2Ways  int
	// L2Latency is the minimum L1-miss-to-L2-hit latency in cycles
	// (interconnect + tag + data). The paper quotes "minimum 200 cycles".
	L2Latency int

	// DRAM configuration.
	DRAMBandwidthGBs float64 // aggregate off-chip bandwidth, GB/s
	DRAMChannels     int
	DRAMBanksPerChan int
	DRAM             DRAMTiming

	// Issue width per scheduler per cycle.
	IssueWidth int
	// MaxWarpMLP is the per-warp memory-level parallelism: the number of
	// outstanding line requests a warp may have before it stalls. Real SMs
	// keep many loads in flight per warp (score-boarded registers).
	MaxWarpMLP int

	// Workers is the intra-run parallelism: how many OS threads step
	// disjoint chunks of SMs concurrently within each cycle (DESIGN.md §9).
	// 1 (the default) is the serial engine; 0 means one worker per
	// GOMAXPROCS; values above NumSMs are clamped. Results are bit-identical
	// for every worker count — the field is deliberately excluded from the
	// harness memo fingerprint, and a test proves both properties.
	Workers int
}

// EffectiveWorkers resolves the Workers request against the machine and the
// SM count: 0 expands to maxProcs (pass runtime.GOMAXPROCS(0)), and the
// result is clamped to [1, NumSMs] — more workers than SMs would only idle.
func (g *GPU) EffectiveWorkers(maxProcs int) int {
	w := g.Workers
	if w == 0 {
		w = maxProcs
	}
	if w < 1 {
		w = 1
	}
	if w > g.NumSMs {
		w = g.NumSMs
	}
	return w
}

// DRAMTiming holds the Table 1 DRAM timing parameters in DRAM-clock cycles.
type DRAMTiming struct {
	RCD float64
	RP  float64
	RC  float64
	RRD float64
	CL  float64
	WR  float64
	RAS float64
}

// Linebacker describes the Table 3 microarchitectural configuration of the
// Linebacker structures.
type Linebacker struct {
	// WindowCycles is the IPC and per-load locality monitoring period.
	WindowCycles int
	// HitThreshold is the cache (L1+VTT) hit-ratio above which a load is
	// classified as high locality.
	HitThreshold float64
	// IPCVarUpper and IPCVarLower are the fractional IPC-variation bounds
	// that trigger throttling one more CTA (upper) or re-activating an
	// inactive CTA (lower).
	IPCVarUpper float64
	IPCVarLower float64
	// VTTWays is the set associativity of one victim tag table partition.
	VTTWays int
	// MaxPartitions is the maximum number of VTT partitions.
	MaxPartitions int
	// VPAccessLatency is the latency in cycles to probe one VTT partition.
	VPAccessLatency int
	// RegOffset is the first register number (exclusive) usable as victim
	// storage: victim lines map to RN in (RegOffset, RegFile registers).
	RegOffset int
	// LMEntries is the number of load-monitor entries (hashed-PC indexed).
	LMEntries int
	// HPCBits is the width of the hashed PC.
	HPCBits int
	// BackupBufEntries is the register backup/restore buffer depth.
	BackupBufEntries int
	// MaxMonitorWindows bounds how many windows locality monitoring may run
	// before Linebacker gives up (the paper monitors until two consecutive
	// windows agree or the kernel ends; most apps converge in two).
	MaxMonitorWindows int
}

// Energy holds per-access energies (pJ) for the energy model. The four
// Linebacker structure energies are the paper's Table 3 CACTI numbers; the
// remaining entries are conventional per-event costs used only for relative
// comparisons between schemes.
type Energy struct {
	CTAManagerAccessPJ float64
	HPCAccessPJ        float64
	LMAccessPJ         float64
	VTTAccessPJ        float64

	RegFileAccessPJ float64 // one 128 B warp-register read/write
	L1AccessPJ      float64 // one L1 tag+data access
	L2AccessPJ      float64 // one L2 access
	DRAMAccessPJ    float64 // one 128 B DRAM transfer
	ExecPJ          float64 // one warp instruction executed
	StaticWattsSM   float64 // per-SM static power
}

// ChaosStages lists the GPU.Step phases a chaos panic can target, in
// pipeline order (see sim.FaultInjector). "sm-worker" is the parallel
// variant of "sm": the panic fires inside one SM's tick — on a worker
// goroutine when GPU.Workers > 1 — exercising the executor's panic
// propagation across the cycle barrier (sim.SMTickFaultInjector).
var ChaosStages = []string{"dispatch", "sm", "sm-worker", "l2", "dram", "response"}

// Chaos configures the deterministic fault injector (internal/chaos). All
// faults are driven by (Seed, cycle, stage) so a chaos run is exactly as
// reproducible as a clean one, and every Chaos field is part of the harness
// memo fingerprint so a faulted run can never alias a clean cache entry.
type Chaos struct {
	// Enabled turns injection on; with it false the other fields are inert.
	Enabled bool
	// Seed drives the injector's own PRNG (victim-SM choice, corruption
	// magnitude). Independent from Config.Seed so the same workload can be
	// chaos-tested under many fault placements.
	Seed uint64
	// PanicStage and PanicCycle force a panic the first time the named
	// Step stage (see ChaosStages) executes at or after PanicCycle.
	// PanicCycle 0 disables the fault.
	PanicStage string
	PanicCycle int64
	// StallDRAMCycle freezes the DRAM model from that cycle on: no request
	// is scheduled or completed, livelocking any run that still needs
	// memory. 0 disables.
	StallDRAMCycle int64
	// CorruptStatsCycle bumps a load-outcome counter on one SM at that
	// cycle, tripping the internal/check conservation rules. 0 disables.
	CorruptStatsCycle int64
	// Bench scopes every armed fault to runs of the named kernel (the
	// Table 2 benchmark code); empty means every run. This is how a sweep
	// service faults exactly one point of a 20-benchmark request with a
	// single chaos spec: the spec rides in the request config unchanged,
	// and the injector only attaches where the kernel name matches.
	Bench string
}

// Active reports whether any fault is armed.
func (c *Chaos) Active() bool {
	return c.Enabled && (c.PanicCycle > 0 || c.StallDRAMCycle > 0 || c.CorruptStatsCycle > 0)
}

// Config bundles everything a simulation run needs.
type Config struct {
	GPU    GPU
	LB     Linebacker
	Energy Energy
	// MaxCycles caps simulation length (0 = run to completion).
	MaxCycles int64
	// Seed drives the deterministic workload PRNG.
	Seed uint64
	// Check enables the runtime invariant checker (internal/check) on every
	// run built through the top-level API and the experiment harness: the
	// engine's conservation laws are verified while the simulation runs and
	// any violation aborts the run. Off by default — checking costs time.
	Check bool
	// CheckEvery is the cycle interval between invariant sweeps when Check
	// is enabled (0 = every cycle). Larger intervals trade detection
	// latency for speed; window-boundary checking uses LB.WindowCycles.
	CheckEvery int
	// Strict disables event-driven cycle skipping: the engine ticks every
	// cycle, exactly as the pre-skip engine did. The default (false) lets
	// RunCtx fast-forward over provably idle spans. Results are
	// bit-identical in both modes — like GPU.Workers, the field is
	// deliberately excluded from the harness memo fingerprint, and a test
	// matrix proves both properties (DESIGN.md §10).
	Strict bool
	// Chaos configures deterministic fault injection (internal/chaos).
	Chaos Chaos
}

// Default returns the paper's baseline configuration (Tables 1 and 3).
func Default() Config {
	return Config{
		GPU: GPU{
			NumSMs:           16,
			ClockMHz:         1126,
			SIMDWidth:        32,
			MaxThreadsPerSM:  2048,
			MaxWarpsPerSM:    64,
			MaxCTAsPerSM:     32,
			NumSchedulers:    4,
			RegFileBytes:     256 * 1024,
			RegFileBanks:     32,
			SharedMemBytes:   96 * 1024,
			L1Bytes:          48 * 1024,
			L1Ways:           8,
			L1MSHRs:          64,
			L1HitLatency:     24,
			L2Bytes:          2048 * 1024,
			L2Ways:           8,
			L2Latency:        200,
			DRAMBandwidthGBs: 352.5,
			DRAMChannels:     8,
			DRAMBanksPerChan: 8,
			DRAM: DRAMTiming{
				RCD: 12, RP: 12, RC: 40, RRD: 5.5, CL: 12, WR: 12, RAS: 28,
			},
			IssueWidth: 1,
			MaxWarpMLP: 4,
			Workers:    1,
		},
		LB: Linebacker{
			WindowCycles:      50000,
			HitThreshold:      0.20,
			IPCVarUpper:       0.10,
			IPCVarLower:       -0.10,
			VTTWays:           4,
			MaxPartitions:     8,
			VPAccessLatency:   3,
			RegOffset:         511,
			LMEntries:         32,
			HPCBits:           5,
			BackupBufEntries:  6,
			MaxMonitorWindows: 8,
		},
		Energy: Energy{
			CTAManagerAccessPJ: 1.94,
			HPCAccessPJ:        0.09,
			LMAccessPJ:         0.32,
			VTTAccessPJ:        2.05,
			RegFileAccessPJ:    48.0,
			L1AccessPJ:         60.0,
			L2AccessPJ:         240.0,
			DRAMAccessPJ:       4000.0,
			ExecPJ:             20.0,
			StaticWattsSM:      1.2,
		},
		MaxCycles: 0,
		Seed:      1,
	}
}

// Scaled returns the default configuration shrunk by the given factor for
// fast tests and benches: fewer SMs and a proportionally shorter monitoring
// window. factor must be >= 1; Scaled(1) equals Default().
//
// The Linebacker controller operates on per-window ratios (hit ratio, IPC
// variation), so shrinking the window preserves behaviour shapes; tests
// verify this on a sample of workloads.
func Scaled(factor int) Config {
	c := Default()
	if factor <= 1 {
		return c
	}
	c.GPU.NumSMs = maxInt(1, c.GPU.NumSMs/factor)
	c.LB.WindowCycles = maxInt(500, c.LB.WindowCycles/factor)
	return c
}

// L1Sets returns the number of L1 sets for the configured geometry.
func (g *GPU) L1Sets() int { return g.L1Bytes / (LineSize * g.L1Ways) }

// WarpRegisters returns the number of 128 B warp-registers in the RF.
func (g *GPU) WarpRegisters() int { return g.RegFileBytes / LineSize }

// BytesPerCycle returns the off-chip DRAM bandwidth in bytes per core cycle.
func (g *GPU) BytesPerCycle() float64 {
	return g.DRAMBandwidthGBs * 1e9 / (float64(g.ClockMHz) * 1e6)
}

// Validate reports the first configuration inconsistency found, if any.
func (c *Config) Validate() error {
	g := &c.GPU
	switch {
	case g.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case g.ClockMHz <= 0:
		return errors.New("config: ClockMHz must be positive")
	case g.SIMDWidth <= 0:
		return errors.New("config: SIMDWidth must be positive")
	case g.MaxThreadsPerSM <= 0 || g.MaxWarpsPerSM <= 0 || g.MaxCTAsPerSM <= 0:
		return errors.New("config: residency limits must be positive")
	case g.SharedMemBytes < 0:
		return errors.New("config: SharedMemBytes must be non-negative")
	case g.RegFileBytes%LineSize != 0:
		return fmt.Errorf("config: RegFileBytes %d not a multiple of line size", g.RegFileBytes)
	case g.L1Bytes%(LineSize*g.L1Ways) != 0:
		return fmt.Errorf("config: L1 %d B not divisible into %d-way 128 B sets", g.L1Bytes, g.L1Ways)
	case g.L1MSHRs <= 0:
		return errors.New("config: L1MSHRs must be positive")
	case g.L1HitLatency <= 0:
		return errors.New("config: L1HitLatency must be positive")
	case g.L2Bytes%(LineSize*g.L2Ways) != 0:
		return fmt.Errorf("config: L2 %d B not divisible into %d-way 128 B sets", g.L2Bytes, g.L2Ways)
	case g.L2Latency <= 0:
		return errors.New("config: L2Latency must be positive")
	case g.DRAMBandwidthGBs <= 0:
		return errors.New("config: DRAMBandwidthGBs must be positive")
	case g.DRAMChannels <= 0 || g.DRAMBanksPerChan <= 0:
		return errors.New("config: DRAM geometry must be positive")
	case g.NumSchedulers <= 0:
		return errors.New("config: NumSchedulers must be positive")
	case g.RegFileBanks <= 0:
		return errors.New("config: RegFileBanks must be positive")
	case g.IssueWidth <= 0:
		return errors.New("config: IssueWidth must be positive")
	case g.MaxWarpMLP <= 0:
		return errors.New("config: MaxWarpMLP must be positive")
	case g.Workers < 0:
		return errors.New("config: Workers must be non-negative (0 = GOMAXPROCS, 1 = serial)")
	}
	if err := g.DRAM.validate(); err != nil {
		return err
	}
	l := &c.LB
	switch {
	case l.WindowCycles <= 0:
		return errors.New("config: WindowCycles must be positive")
	case l.VTTWays <= 0 || l.VTTWays > 32:
		return fmt.Errorf("config: VTTWays %d out of range [1,32]", l.VTTWays)
	case l.MaxPartitions <= 0:
		return errors.New("config: MaxPartitions must be positive")
	case l.VPAccessLatency < 0:
		return errors.New("config: VPAccessLatency must be non-negative")
	case l.MaxMonitorWindows <= 0:
		return errors.New("config: MaxMonitorWindows must be positive")
	case l.HitThreshold < 0 || l.HitThreshold > 1:
		return fmt.Errorf("config: HitThreshold %v out of [0,1]", l.HitThreshold)
	case l.IPCVarUpper < l.IPCVarLower:
		return errors.New("config: IPCVarUpper below IPCVarLower")
	case l.RegOffset < 0 || l.RegOffset >= g.WarpRegisters():
		return fmt.Errorf("config: RegOffset %d outside register file (%d warp registers)", l.RegOffset, g.WarpRegisters())
	case l.LMEntries <= 0 || l.HPCBits <= 0 || (1<<l.HPCBits) < l.LMEntries:
		return fmt.Errorf("config: LM %d entries not addressable by %d-bit HPC", l.LMEntries, l.HPCBits)
	case l.BackupBufEntries <= 0:
		return errors.New("config: BackupBufEntries must be positive")
	}
	if c.CheckEvery < 0 {
		return errors.New("config: CheckEvery must be non-negative")
	}
	return c.Chaos.validate()
}

// validate rejects inconsistent chaos configurations. A disabled Chaos block
// is always valid so zero-value configs stay usable.
func (c *Chaos) validate() error {
	if !c.Enabled {
		if c.Bench != "" {
			return errors.New("config: chaos bench scope set but chaos disabled")
		}
		return nil
	}
	switch {
	case c.PanicCycle < 0 || c.StallDRAMCycle < 0 || c.CorruptStatsCycle < 0:
		return errors.New("config: chaos fault cycles must be non-negative")
	case !c.Active():
		return errors.New("config: chaos enabled but no fault armed")
	}
	if c.PanicCycle > 0 {
		ok := false
		for _, s := range ChaosStages {
			if s == c.PanicStage {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("config: chaos panic stage %q not in %v", c.PanicStage, ChaosStages)
		}
	}
	return nil
}

// validate rejects non-positive DRAM timing parameters: a zero timing
// collapses the bank state machine into zero-cycle transitions.
func (t *DRAMTiming) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"RCD", t.RCD}, {"RP", t.RP}, {"RC", t.RC}, {"RRD", t.RRD},
		{"CL", t.CL}, {"WR", t.WR}, {"RAS", t.RAS},
	} {
		if p.v <= 0 {
			return fmt.Errorf("config: DRAM timing %s must be positive", p.name)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
