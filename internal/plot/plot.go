// Package plot renders experiment tables as standalone SVG bar charts so
// reproduced figures can be compared with the paper's visually. It is
// intentionally small: grouped vertical bars, a reference line at 1.0 for
// normalized charts, axis labels, and a legend — no external dependencies.
package plot

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Series is one bar group member (one scheme).
type Series struct {
	Name   string
	Values []float64
}

// Chart is a grouped bar chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Labels are the x-axis group labels (benchmark names).
	Labels []string
	Series []Series
	// RefLine draws a horizontal reference (e.g. 1.0 for normalized data);
	// nil disables it.
	RefLine *float64
}

// palette is colour-blind-friendly (Okabe–Ito).
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
}

const (
	chartW   = 960
	chartH   = 420
	marginL  = 62
	marginR  = 16
	marginT  = 46
	marginB  = 64
	tickStep = 6 // target number of y ticks
)

// Validate reports structural problems (mismatched lengths, no data).
func (c *Chart) Validate() error {
	if len(c.Series) == 0 || len(c.Labels) == 0 {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Labels) {
			return fmt.Errorf("plot: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.Labels))
		}
	}
	return nil
}

// SVG renders the chart.
func (c *Chart) SVG() (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > maxV {
				maxV = v
			}
		}
	}
	if c.RefLine != nil && *c.RefLine > maxV {
		maxV = *c.RefLine
	}
	if maxV <= 0 {
		maxV = 1
	}
	maxV *= 1.08 // headroom

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	x0, y0 := float64(marginL), float64(marginT)

	var b strings.Builder
	b.WriteString(fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`, chartW, chartH))
	b.WriteString(fmt.Sprintf(`<rect width="%d" height="%d" fill="white"/>`, chartW, chartH))
	b.WriteString(fmt.Sprintf(`<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`, marginL, esc(c.Title)))

	// Y axis ticks and grid.
	step := niceStep(maxV / tickStep)
	for v := 0.0; v <= maxV+1e-9; v += step {
		y := y0 + plotH - v/maxV*plotH
		b.WriteString(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`,
			x0, y, x0+plotW, y))
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			x0-6, y+3, trimFloat(v)))
	}
	if c.YLabel != "" {
		b.WriteString(fmt.Sprintf(`<text x="14" y="%.1f" font-size="11" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`,
			y0+plotH/2, y0+plotH/2, esc(c.YLabel)))
	}

	// Bars.
	groups := len(c.Labels)
	groupW := plotW / float64(groups)
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, label := range c.Labels {
		gx := x0 + float64(gi)*groupW + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[gi]
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				v = 0
			}
			h := v / maxV * plotH
			x := gx + float64(si)*barW
			y := y0 + plotH - h
			b.WriteString(fmt.Sprintf(`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.3f</title></rect>`,
				x, y, barW*0.92, h, palette[si%len(palette)], esc(label), esc(s.Name), s.Values[gi]))
		}
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`,
			gx+groupW*0.4, y0+plotH+14, esc(label)))
	}

	// Reference line.
	if c.RefLine != nil {
		y := y0 + plotH - *c.RefLine/maxV*plotH
		b.WriteString(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#555" stroke-dasharray="5,4"/>`,
			x0, y, x0+plotW, y))
	}

	// Axes.
	b.WriteString(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		x0, y0+plotH, x0+plotW, y0+plotH))
	b.WriteString(fmt.Sprintf(`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`,
		x0, y0, x0, y0+plotH))
	if c.XLabel != "" {
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`,
			x0+plotW/2, chartH-28, esc(c.XLabel)))
	}

	// Legend.
	lx := x0
	ly := float64(chartH - 12)
	for si, s := range c.Series {
		b.WriteString(fmt.Sprintf(`<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`,
			lx, ly-9, palette[si%len(palette)]))
		b.WriteString(fmt.Sprintf(`<text x="%.1f" y="%.1f" font-size="11">%s</text>`, lx+14, ly, esc(s.Name)))
		lx += 18 + 7*float64(len(s.Name)) + 14
	}

	b.WriteString(`</svg>`)
	return b.String(), nil
}

// esc escapes XML-special characters.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceStep rounds a raw tick step to 1/2/5 × 10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// trimFloat formats a tick label without trailing zeros.
func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
