package plot

import (
	"strings"
	"testing"
)

func sample() *Chart {
	ref := 1.0
	return &Chart{
		Title:  "fig12: demo",
		XLabel: "App",
		YLabel: "speedup",
		Labels: []string{"S2", "BI", "GM"},
		Series: []Series{
			{Name: "CERF", Values: []float64{1.17, 1.12, 1.01}},
			{Name: "Linebacker", Values: []float64{1.28, 1.20, 1.12}},
		},
		RefLine: &ref,
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an svg document")
	}
	for _, want := range []string{"fig12: demo", "Linebacker", "S2", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// One rect per bar (6) plus background and legend swatches (2).
	if got := strings.Count(svg, "<rect"); got != 6+1+2 {
		t.Fatalf("rect count = %d", got)
	}
}

func TestValidate(t *testing.T) {
	c := sample()
	c.Series[0].Values = c.Series[0].Values[:1]
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := (&Chart{Title: "x"}).Validate(); err == nil {
		t.Fatal("empty chart accepted")
	}
}

func TestEscaping(t *testing.T) {
	c := sample()
	c.Title = `<&"injection">`
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `<&`) {
		t.Fatal("unescaped XML specials")
	}
	if !strings.Contains(svg, "&lt;&amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestDegenerateValues(t *testing.T) {
	c := &Chart{
		Title:  "deg",
		Labels: []string{"a"},
		Series: []Series{{Name: "s", Values: []float64{0}}},
	}
	if _, err := c.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{0.3: 0.5, 0.07: 0.1, 1.2: 2, 4: 5, 40: 50, 0: 1}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
}
