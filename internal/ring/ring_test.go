package ring

import (
	"testing"
)

func TestFIFOOrder(t *testing.T) {
	var b Buffer[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d, want 100", b.Len())
	}
	for i := 0; i < 100; i++ {
		if got := b.Pop(); got != i {
			t.Fatalf("Pop #%d = %d", i, got)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len after drain = %d", b.Len())
	}
}

// TestInterleavedWrap drives the head around the backing array repeatedly:
// FIFO order must survive wrap-around and growth mid-stream.
func TestInterleavedWrap(t *testing.T) {
	var b Buffer[int]
	next, expect := 0, 0
	for round := 0; round < 200; round++ {
		push := 1 + round%7
		for i := 0; i < push; i++ {
			b.Push(next)
			next++
		}
		pop := 1 + round%5
		if pop > b.Len() {
			pop = b.Len()
		}
		for i := 0; i < pop; i++ {
			if got := b.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
	for b.Len() > 0 {
		if got := b.Pop(); got != expect {
			t.Fatalf("drain: Pop = %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d of %d pushed", expect, next)
	}
}

func TestFrontAndAt(t *testing.T) {
	var b Buffer[string]
	b.Push("a")
	b.Push("b")
	b.Push("c")
	if b.Front() != "a" {
		t.Fatalf("Front = %q", b.Front())
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := b.At(i); got != want {
			t.Fatalf("At(%d) = %q, want %q", i, got, want)
		}
	}
	b.Pop()
	if b.Front() != "b" || b.At(1) != "c" {
		t.Fatalf("after Pop: Front=%q At(1)=%q", b.Front(), b.At(1))
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty buffer should panic")
		}
	}()
	var b Buffer[int]
	b.Pop()
}

// TestSteadyStateNoAllocs locks in the reason the ring exists: once the
// high-water mark is reached, Push/Pop cycles must never allocate.
func TestSteadyStateNoAllocs(t *testing.T) {
	var b Buffer[*int]
	v := new(int)
	for i := 0; i < 64; i++ {
		b.Push(v)
	}
	for b.Len() > 0 {
		b.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			b.Push(v)
		}
		for b.Len() > 0 {
			b.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocates %.1f per round, want 0", allocs)
	}
}
