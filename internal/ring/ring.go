// Package ring provides a growable FIFO ring buffer for the simulator's
// hot-path queues (L2 input queue, SM outbox, LSU queue).
//
// The engine's previous queues were plain slices advanced with
// `q = q[1:]` — every pop leaked the backing array forward, so a queue
// that stayed non-empty re-allocated continuously, and `append` after a
// reslice could never reuse the vacated front. A ring buffer keeps one
// backing array for the queue's high-water mark and reuses it forever:
// steady-state Push/Pop is allocation-free.
//
// Determinism: the buffer is strictly FIFO — Pop order is exactly Push
// order regardless of past growth, so swapping it in for an append/reslice
// slice is behaviour-preserving by construction.
package ring

// Buffer is a growable FIFO queue. The zero value is an empty buffer ready
// for use.
type Buffer[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of live elements
}

// Len returns the number of queued elements.
func (b *Buffer[T]) Len() int { return b.n }

// Push appends v to the back of the queue.
func (b *Buffer[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&(len(b.buf)-1)] = v
	b.n++
}

// Pop removes and returns the front element. It panics on an empty buffer,
// exactly as q[0] on an empty slice would.
func (b *Buffer[T]) Pop() T {
	v := b.buf[b.head]
	// Zero the vacated slot so popped pointers do not pin their referents
	// (pooled requests are recycled, not leaked, but lsuOp holds warp
	// pointers the GC should be free to treat precisely).
	var zero T
	b.buf[b.head] = zero
	b.head = (b.head + 1) & (len(b.buf) - 1)
	b.n--
	if b.n == 0 {
		b.head = 0
	}
	return v
}

// Front returns the front element without removing it.
func (b *Buffer[T]) Front() T { return b.buf[b.head] }

// At returns the i-th element from the front (0 = front) without removing
// it. Used by inspection walks (invariant checker, state dumps).
func (b *Buffer[T]) At(i int) T { return b.buf[(b.head+i)&(len(b.buf)-1)] }

// grow doubles the capacity (always a power of two, so indexing masks
// instead of dividing), linearising the live elements to the front.
func (b *Buffer[T]) grow() {
	capacity := len(b.buf) * 2
	if capacity == 0 {
		capacity = 16
	}
	next := make([]T, capacity)
	for i := 0; i < b.n; i++ {
		next[i] = b.buf[(b.head+i)&(len(b.buf)-1)]
	}
	b.buf, b.head = next, 0
}
