// Package cliutil fixes the exit-code and error-reporting conventions of
// the repository's commands:
//
//	0  success (including -h/-help)
//	1  run failure — a simulation failed, a file could not be read, ...
//	2  usage error — bad flags, unknown benchmark/scheme/experiment
//
// Run-engine failures (*harness.RunError) print their full diagnostic —
// machine-state snapshot and, for panics, the recovered stack — so a
// failed overnight sweep leaves enough on stderr to debug from.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/linebacker-sim/linebacker/internal/harness"
)

// ErrUsage marks a command-line mistake; Exit maps it to status 2.
var ErrUsage = errors.New("usage error")

// Usagef builds a usage error (exit status 2).
func Usagef(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUsage, fmt.Sprintf(format, args...))
}

// WrapParse classifies a flag.FlagSet.Parse error: -h/-help passes through
// (Exit turns it into success), anything else is a usage error. The flag
// package has already printed the message and usage text, so the wrapper
// is marked quiet.
func WrapParse(err error) error {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return fmt.Errorf("%w: %w%w", ErrUsage, err, errQuiet)
}

// errQuiet marks errors whose message has already been shown to the user.
var errQuiet = errors.New("")

// Exit renders err for the tool and returns the process exit status. A nil
// error and -h/-help return 0 and print nothing.
func Exit(stderr io.Writer, tool string, err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errQuiet):
	default:
		var re *harness.RunError
		if errors.As(err, &re) {
			fmt.Fprintf(stderr, "%s: %s\n", tool, re.Detail())
		} else {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		}
	}
	if errors.Is(err, ErrUsage) {
		return 2
	}
	return 1
}

// StartProfiles starts CPU profiling to cpuPath and arranges a heap profile
// at stopPath time to memPath; either path may be empty to skip that
// profile. The returned stop function finishes both and must be called
// exactly once (typically deferred) — it reports the first error hit while
// finalising, which callers should surface but not fail the run over.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close() //lbvet:errok — the StartCPUProfile error is the one the caller acts on; nothing was written yet
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		var ferr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && ferr == nil {
				ferr = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if ferr == nil {
					ferr = fmt.Errorf("mem profile: %w", err)
				}
				return ferr
			}
			runtime.GC() // materialise final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil && ferr == nil {
				ferr = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && ferr == nil {
				ferr = fmt.Errorf("mem profile: %w", err)
			}
		}
		return ferr
	}, nil
}
