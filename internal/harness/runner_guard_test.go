package harness

import (
	"context"
	"errors"
	"testing"
)

// TestSWLSweepLimitsDegenerate is the regression test for the unguarded
// maxResident < 1 case: the sweep used to come back as []int{0} (or worse,
// []int{-1}), and a CTA limit of 0 can never launch a CTA — the point only
// died via watchdog. A degenerate bound must yield no sweep at all.
func TestSWLSweepLimitsDegenerate(t *testing.T) {
	for _, maxRes := range []int{0, -1, -32} {
		if got := swlSweepLimits(maxRes); got != nil {
			t.Fatalf("swlSweepLimits(%d) = %v, want nil", maxRes, got)
		}
	}
	// Sane bounds still sweep up to and including the bound.
	got := swlSweepLimits(4)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("swlSweepLimits(4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("swlSweepLimits(4) = %v, want %v", got, want)
		}
	}
}

// TestBestSWLDegenerateResidency proves the Best-SWL front door fails fast
// with ErrBadConfig instead of launching an unwinnable sweep.
func TestBestSWLDegenerateResidency(t *testing.T) {
	r := NewRunner(BenchConfig(), 1)
	_, _, err := r.bestSWLOver(context.Background(), "S2", 0)
	if err == nil {
		t.Fatal("bestSWLOver with maxRes=0 succeeded, want ErrBadConfig")
	}
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig in chain", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Phase != PhaseSetup {
		t.Fatalf("err = %#v, want *RunError in PhaseSetup", err)
	}
	if r.Executions() != 0 {
		t.Fatalf("degenerate sweep executed %d simulations, want 0", r.Executions())
	}
}
