package harness

import (
	"strings"
	"testing"
)

func chartTable() *Table {
	t := &Table{ID: "figX", Title: "Performance (normalized to Best-SWL)",
		Header: []string{"App", "CERF", "Linebacker", "Class"}}
	t.AddRow("S2", "1.17", "1.28", "sensitive")
	t.AddRow("BI", "1.12", "1.20", "sensitive")
	t.AddRow("GM", "1.01", "1.12", "")
	return t
}

func TestTableToChart(t *testing.T) {
	c, err := chartTable().Chart()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 2 {
		t.Fatalf("series = %d, want 2 (Class column is not numeric)", len(c.Series))
	}
	if c.Series[1].Name != "Linebacker" || c.Series[1].Values[2] != 1.12 {
		t.Fatalf("series broken: %+v", c.Series)
	}
	if c.RefLine == nil || *c.RefLine != 1.0 {
		t.Fatal("normalized table must get a 1.0 reference line")
	}
	if len(c.Labels) != 3 || c.Labels[0] != "S2" {
		t.Fatalf("labels = %v", c.Labels)
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "Linebacker") {
		t.Fatal("svg missing series")
	}
}

func TestPercentCellsPlotAsFractions(t *testing.T) {
	tab := &Table{ID: "p", Title: "x", Header: []string{"App", "Hit"}}
	tab.AddRow("A", "45.0%")
	c, err := tab.Chart()
	if err != nil {
		t.Fatal(err)
	}
	if c.Series[0].Values[0] != 0.45 {
		t.Fatalf("percent parsed as %v", c.Series[0].Values[0])
	}
}

func TestConfigTablesRejectChart(t *testing.T) {
	tab := &Table{ID: "table1", Title: "config", Header: []string{"Parameter", "Value"}}
	tab.AddRow("# of SMs", "16 SMs") // non-numeric
	if _, err := tab.Chart(); err == nil {
		t.Fatal("config table produced a chart")
	}
}
