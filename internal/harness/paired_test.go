package harness

import (
	"errors"
	"strings"
	"testing"
)

// sweep3 builds a 3-bench sweep; a negative value marks the point failed.
func sweep3(vals ...float64) *Sweep {
	s := &Sweep{Benches: []string{"A", "B", "C"}, Vals: make([]float64, 3), Errs: make([]error, 3)}
	for i, v := range vals {
		if v < 0 {
			s.Errs[i] = errors.New("point failed")
			continue
		}
		s.Vals[i] = v
	}
	return s
}

// TestPairedSpeedupGMRejectsMismatchedArms is the regression test for the
// quiet-wrongness bug: before the paired helper, arm aggregation divided
// GeoMean(arm.OKVals()) by GeoMean(base.OKVals()), so arms that failed on
// *different* benches compared disjoint bench sets and produced a
// confident-looking number. The helper must refuse instead.
func TestPairedSpeedupGMRejectsMismatchedArms(t *testing.T) {
	arm := sweep3(2, -1, 8)  // failed on B
	base := sweep3(1, 1, -1) // failed on C

	// The pre-fix aggregation path: no error, and a "speedup" of 4.0 that
	// pairs arm C's 8 against base B's 1 — two different benchmarks.
	naive := GeoMean(arm.OKVals()) / GeoMean(base.OKVals())
	if naive < 3.999 || naive > 4.001 {
		t.Fatalf("naive aggregate = %v; the scenario no longer demonstrates the bug", naive)
	}

	_, _, err := PairedSpeedupGM(arm, base)
	if err == nil {
		t.Fatalf("mismatched arms aggregated without error (naive path gives %v)", naive)
	}
	if !strings.Contains(err.Error(), "B") || !strings.Contains(err.Error(), "C") {
		t.Errorf("error %q does not name the mismatched benches", err)
	}
}

func TestPairedSpeedupGMConsistentFailuresReportN(t *testing.T) {
	arm := sweep3(2, -1, 8)
	base := sweep3(1, -1, 2)
	gm, n, err := PairedSpeedupGM(arm, base)
	if err != nil {
		t.Fatalf("arms failing on the same bench must still aggregate: %v", err)
	}
	if n != 2 {
		t.Errorf("n = %d, want 2", n)
	}
	if want := 2.8284271247461903; gm < want-1e-9 || gm > want+1e-9 { // sqrt(2*4)
		t.Errorf("gm = %v, want sqrt(8)", gm)
	}
}

// TestPairedSpeedupGMRejectsZeroValues: stats.GeoMean silently skips
// non-positive values, so a zero IPC (a stalled-but-"successful" point)
// used to shrink the mean's population without a trace. Paired
// aggregation must error instead.
func TestPairedSpeedupGMRejectsZeroValues(t *testing.T) {
	if _, _, err := PairedSpeedupGM(sweep3(2, 0, 8), sweep3(1, 1, 2)); err == nil {
		t.Error("zero arm value must be an error")
	}
	if _, _, err := PairedSpeedupGM(sweep3(2, 1, 8), sweep3(1, 0, 2)); err == nil {
		t.Error("zero base value must be an error")
	}
}

func TestPairedSpeedupGMRejectsDifferentSweeps(t *testing.T) {
	arm := sweep3(2, 1, 8)
	base := &Sweep{Benches: []string{"A", "B"}, Vals: []float64{1, 1}, Errs: make([]error, 2)}
	if _, _, err := PairedSpeedupGM(arm, base); err == nil {
		t.Error("different sweep lengths must be an error")
	}
	base2 := sweep3(1, 1, 1)
	base2.Benches[2] = "Z"
	if _, _, err := PairedSpeedupGM(arm, base2); err == nil {
		t.Error("different bench names must be an error")
	}
}

func TestPairedGMCellRendersErrorsAndN(t *testing.T) {
	tbl := &Table{}
	if cell := pairedGMCell(tbl, sweep3(2, -1, 8), sweep3(1, 1, -1)); cell != "ERR" {
		t.Errorf("mismatched arms cell = %q, want ERR", cell)
	}
	if len(tbl.Notes) == 0 {
		t.Error("ERR cell must leave a note naming the failure")
	}
	if cell := pairedGMCell(tbl, sweep3(2, -1, 8), sweep3(1, -1, 2)); cell != "2.83 (n=2)" {
		t.Errorf("shrunken-pairs cell = %q, want annotated n", cell)
	}
	if cell := pairedGMCell(tbl, sweep3(2, 2, 2), sweep3(1, 1, 1)); cell != "2.00" {
		t.Errorf("full cell = %q, want plain value", cell)
	}
}
