package harness

import (
	"context"
	"fmt"
	"runtime/debug"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// ProbeResult carries the per-load statistics of an instrumented baseline
// run, averaged over SMs (Figures 2 and 3).
type ProbeResult struct {
	Loads []stats.LoadStats
}

// RunProbe executes the benchmark under the baseline policy with a per-load
// probe attached to every SM and returns merged per-load statistics. A
// non-nil error is always a *RunError.
func (r *Runner) RunProbe(ctx context.Context, bench string) (*ProbeResult, error) {
	key := "probe|" + bench
	r.mu.Lock()
	if res, ok := r.probeCache[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, &RunError{Bench: bench, Policy: "probe", Phase: PhaseQueue,
			Err: context.Cause(ctx)}
	}
	res, err := r.executeProbe(ctx, bench)
	<-r.sem
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	r.probeCache[key] = res
	r.mu.Unlock()
	return res, nil
}

// MustRunProbe is RunProbe with a background context, panicking on failure.
// The panic value is the *RunError.
func (r *Runner) MustRunProbe(bench string) *ProbeResult {
	res, err := r.RunProbe(context.Background(), bench)
	if err != nil {
		panic(err)
	}
	return res
}

func (r *Runner) executeProbe(ctx context.Context, bench string) (res *ProbeResult, err error) {
	rerr := &RunError{Bench: bench, Policy: "probe", Phase: PhaseSetup}
	var g *sim.GPU
	defer func() {
		if p := recover(); p != nil {
			rerr.Err = fmt.Errorf("%w: %v", ErrPanic, p)
			rerr.Stack = string(debug.Stack())
			if g != nil {
				rerr.Cycle = g.Cycle()
				rerr.Snapshot = safeDump(g)
			}
			res, err = nil, rerr
		}
	}()

	b, ok := workload.ByName(bench)
	if !ok {
		rerr.Err = fmt.Errorf("%w %q", ErrUnknownBench, bench)
		return nil, rerr
	}
	machine, serr := sim.New(r.Cfg, b.Kernel, sim.Baseline{})
	if serr != nil {
		rerr.Err = fmt.Errorf("%w: %w", ErrBadConfig, serr)
		return nil, rerr
	}
	g = machine
	r.execs.Add(1)
	probes := make([]*stats.LoadProbe, len(g.SMs()))
	for i, smx := range g.SMs() {
		p := stats.NewLoadProbe(int64(r.Cfg.LB.WindowCycles))
		probes[i] = p
		smx.Probe = func(warpSlot int, pc uint32, line memtypes.LineAddr, isStore bool, cycle int64) {
			if !isStore {
				p.Observe(pc, line, cycle)
			}
		}
	}
	rerr.Phase = PhaseRun
	cyc, runErr := g.RunCtx(ctx, r.cycles(&r.Cfg))
	if runErr != nil {
		rerr.Cycle = cyc
		rerr.Snapshot = safeDump(g)
		rerr.Err = runErr
		return nil, rerr
	}
	return &ProbeResult{Loads: mergeProbes(probes)}, nil
}

// mergeProbes averages per-PC statistics across SMs.
func mergeProbes(probes []*stats.LoadProbe) []stats.LoadStats {
	type acc struct {
		s stats.LoadStats
		n int
	}
	accs := map[uint32]*acc{}
	var order []uint32
	for _, p := range probes {
		for _, l := range p.Results() {
			a := accs[l.PC]
			if a == nil {
				a = &acc{s: stats.LoadStats{PC: l.PC}}
				accs[l.PC] = a
				order = append(order, l.PC)
			}
			a.s.AvgAccesses += l.AvgAccesses
			a.s.AvgReusedBytes += l.AvgReusedBytes
			a.s.AvgUniqueBytes += l.AvgUniqueBytes
			a.s.ReaccessRatio += l.ReaccessRatio
			a.n++
		}
	}
	var out []stats.LoadStats
	for _, pc := range order {
		a := accs[pc]
		n := float64(a.n)
		out = append(out, stats.LoadStats{
			PC:             pc,
			AvgAccesses:    a.s.AvgAccesses / n,
			AvgReusedBytes: a.s.AvgReusedBytes / n,
			AvgUniqueBytes: a.s.AvgUniqueBytes / n,
			ReaccessRatio:  a.s.ReaccessRatio / n,
		})
	}
	// Keep top-accessed first, as stats.LoadProbe.Results does.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].AvgAccesses > out[j-1].AvgAccesses; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
