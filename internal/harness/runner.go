// Package harness defines and executes the paper's experiments: one
// function per table/figure of the evaluation, shared by cmd/lbfig, the
// root-level benchmarks and EXPERIMENTS.md generation.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Runner executes and memoises simulation runs. All experiments of one
// invocation share a Runner so expensive sweeps (Best-SWL) are paid once.
type Runner struct {
	// Cfg is the base configuration for every run (experiments clone and
	// adjust it, e.g. the cache-size sweep).
	Cfg config.Config
	// Windows is the run length in monitoring windows.
	Windows int

	mu         sync.Mutex
	cache      map[string]*sim.Result
	probeCache map[string]*ProbeResult
	sem        chan struct{}
}

// NewRunner builds a runner over the given configuration. windows sets the
// run length (8 windows ≈ monitoring + several throttle adjustments).
func NewRunner(cfg config.Config, windows int) *Runner {
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	return &Runner{
		Cfg:        cfg,
		Windows:    windows,
		cache:      map[string]*sim.Result{},
		probeCache: map[string]*ProbeResult{},
		sem:        make(chan struct{}, workers),
	}
}

// BenchConfig returns a fast experiment configuration: 4 SMs with the
// shared resources (DRAM bandwidth/channels, L2 capacity) scaled by the
// same 4/16 factor so per-SM contention matches the Table 1 machine, and a
// 12.5 k cycle window (the controller operates on window-relative ratios;
// see DESIGN.md §4).
func BenchConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	// Half-rate bandwidth per SM keeps queueing pressure comparable to the
	// 16-SM machine once the 4 SMs' burstiness is accounted for (calibrated
	// against the Best-SWL gains of Figure 5).
	cfg.GPU.DRAMBandwidthGBs = 176.25
	cfg.GPU.DRAMChannels = 4
	cfg.GPU.L2Bytes = 512 * 1024
	cfg.LB.WindowCycles = 12500
	return cfg
}

// PaperConfig returns the full Table 1 configuration.
func PaperConfig() config.Config { return config.Default() }

func (r *Runner) cycles(cfg *config.Config) int64 {
	return int64(r.Windows) * int64(cfg.LB.WindowCycles)
}

// Run simulates one benchmark under one policy using the runner's base
// config, memoised by (config fingerprint, bench, policy-name).
func (r *Runner) Run(bench string, pol sim.Policy) *sim.Result {
	return r.RunCfg(r.Cfg, "", bench, pol)
}

// cfgFingerprint renders every field of the configuration into the memo
// key. Config is a tree of value types, so %v is deterministic and two
// configs collide only when they are semantically identical.
func cfgFingerprint(cfg *config.Config) string {
	return fmt.Sprintf("%v", *cfg)
}

// RunCfg simulates with an explicit configuration. The memo key always
// includes a full fingerprint of cfg, so two different configurations can
// never alias a cache entry; cfgKey is a human-readable discriminator kept
// for experiment labelling and stable memo keys across sweeps.
func (r *Runner) RunCfg(cfg config.Config, cfgKey, bench string, pol sim.Policy) *sim.Result {
	key := fmt.Sprintf("%s|%s|%s|%s", cfgKey, cfgFingerprint(&cfg), bench, pol.Name())
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	r.sem <- struct{}{}
	res := r.execute(cfg, bench, pol)
	<-r.sem

	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res
}

func (r *Runner) execute(cfg config.Config, bench string, pol sim.Policy) *sim.Result {
	b, ok := workload.ByName(bench)
	if !ok {
		panic(fmt.Sprintf("harness: unknown benchmark %q", bench))
	}
	g, err := sim.New(cfg, b.Kernel, pol)
	if err != nil {
		panic(fmt.Sprintf("harness: %s/%s: %v", bench, pol.Name(), err))
	}
	if cfg.Check {
		check.Attach(g)
	}
	g.Run(r.cycles(&cfg))
	return g.Collect()
}

// swlSweepLimits returns the CTA limits Best-SWL tries.
func swlSweepLimits(maxResident int) []int {
	candidates := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	var out []int
	for _, c := range candidates {
		if c < maxResident {
			out = append(out, c)
		}
	}
	return append(out, maxResident)
}

// BestSWL sweeps static CTA limits for the benchmark and returns the
// best-performing limit and its result (the paper's Best-SWL oracle).
// The full-residency limit (== plain baseline scheduling order) is part of
// the sweep, so Best-SWL is never worse than baseline.
func (r *Runner) BestSWL(bench string) (int, *sim.Result) {
	b, _ := workload.ByName(bench)
	maxRes := sim.MaxResidentCTAs(&r.Cfg.GPU, b.Kernel)
	limits := swlSweepLimits(maxRes)

	type out struct {
		limit int
		res   *sim.Result
	}
	results := make([]out, len(limits))
	var wg sync.WaitGroup
	for i, lim := range limits {
		wg.Add(1)
		go func(i, lim int) {
			defer wg.Done()
			results[i] = out{lim, r.Run(bench, schemes.SWL{Limit: lim})}
		}(i, lim)
	}
	wg.Wait()

	best := results[0]
	for _, o := range results[1:] {
		if o.res.IPC() > best.res.IPC() {
			best = o
		}
	}
	return best.limit, best.res
}

// ForEachBench runs fn concurrently for every benchmark name and collects
// per-benchmark values in Table 2 order.
func (r *Runner) ForEachBench(fn func(bench string) float64) []float64 {
	names := workload.Names()
	out := make([]float64, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			out[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	return out
}

// Speedup returns a.IPC()/b.IPC().
func Speedup(a, b *sim.Result) float64 {
	if b.IPC() == 0 {
		return 0
	}
	return a.IPC() / b.IPC()
}

// GeoMean re-exports stats.GeoMean for experiment code.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }
