// Package harness defines and executes the paper's experiments: one
// function per table/figure of the evaluation, shared by cmd/lbfig, the
// root-level benchmarks and EXPERIMENTS.md generation.
//
// The Runner is a fault-tolerant run engine: every simulation executes
// under a panic-recovery barrier with cooperative context cancellation, an
// optional per-run deadline and an optional no-forward-progress watchdog.
// Failures come back as *RunError values carrying the failed point's
// identity and a machine-state snapshot; sweeps degrade gracefully by
// skipping (and reporting) failed points instead of dying. Successful
// results — and only successful results — are memoised, and optionally
// journaled to disk so interrupted sweeps resume without re-simulating
// completed points.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Runner executes and memoises simulation runs. All experiments of one
// invocation share a Runner so expensive sweeps (Best-SWL) are paid once.
type Runner struct {
	// Cfg is the base configuration for every run (experiments clone and
	// adjust it, e.g. the cache-size sweep).
	Cfg config.Config
	// Windows is the run length in monitoring windows (0 = run each
	// kernel to completion).
	Windows int
	// Timeout bounds the wall-clock time of one simulation (0 = none).
	// An exceeded deadline aborts the run with an ErrTimeout RunError.
	Timeout time.Duration
	// WatchdogTick enables the forward-progress watchdog (0 = off): a run
	// that commits no instruction across one full tick is aborted with an
	// ErrWatchdog RunError and a machine-state snapshot — a livelocked
	// point fails fast instead of wedging the sweep.
	WatchdogTick time.Duration
	// SweepWorkers bounds the sweep-level fan-out: ForEachBench and the
	// Best-SWL sweep run at most this many points concurrently, instead of
	// one goroutine per point. NewRunner divides the machine between the
	// two parallelism levels — SweepWorkers × cfg.GPU.EffectiveWorkers ≈
	// GOMAXPROCS — so intra-run workers (DESIGN.md §9) and sweep workers
	// never oversubscribe cores. 0 falls back to serial sweeps.
	SweepWorkers int

	mu         sync.Mutex
	cache      map[string]*sim.Result
	probeCache map[string]*ProbeResult
	flights    map[string]*flight
	sem        chan struct{}
	journal    *Journal
	store      ResultStore
	execs      atomic.Int64
}

// ResultStore is the persistent memo backend a Runner can attach
// (internal/store implements it). Get/Put mirror the in-memory cache;
// DoOnce adds cross-process single-flight — with a store attached, a memo
// key is simulated at most once across every process sharing the store
// directory, not just within this Runner.
type ResultStore interface {
	Get(key string) (*sim.Result, bool)
	Put(key string, res *sim.Result) error
	DoOnce(ctx context.Context, key string, fn func(ctx context.Context) (*sim.Result, error)) (*sim.Result, bool, error)
}

// flight is one in-progress execution of a memo key. Concurrent same-key
// callers that arrive while the leader runs wait on done instead of
// executing (and journaling) the identical simulation a second time.
type flight struct {
	done chan struct{} // closed by the leader after res/err are set
	res  *sim.Result
	err  error
}

// NewRunner builds a runner over the given configuration. windows sets the
// run length (8 windows ≈ monitoring + several throttle adjustments).
//
// The core budget is split between the two parallelism levels: each run
// uses cfg.GPU.EffectiveWorkers intra-run SM workers, so the sweep level
// gets GOMAXPROCS / that many concurrent simulations (at least one). With
// the default Workers=1 this reduces to the classic one-run-per-core
// sweep.
func NewRunner(cfg config.Config, windows int) *Runner {
	maxProcs := runtime.GOMAXPROCS(0)
	if maxProcs < 1 {
		maxProcs = 1
	}
	sweep := maxProcs / cfg.GPU.EffectiveWorkers(maxProcs)
	if sweep < 1 {
		sweep = 1
	}
	return &Runner{
		Cfg:          cfg,
		Windows:      windows,
		SweepWorkers: sweep,
		cache:        map[string]*sim.Result{},
		probeCache:   map[string]*ProbeResult{},
		flights:      map[string]*flight{},
		sem:          make(chan struct{}, sweep),
	}
}

// forEachIndex is the shared bounded sweep pool: it applies fn to every
// index in [0, n), running at most SweepWorkers items concurrently. The
// calling goroutine participates as a worker and at most SweepWorkers-1
// helpers are spawned per call, so nested sweeps (ForEachBench points that
// call BestSWL) compose without deadlock — every level always owns at
// least its caller. Items are claimed from an atomic counter; results must
// be written by index, which keeps sweep output independent of claim
// order.
func (r *Runner) forEachIndex(n int, fn func(i int)) {
	workers := r.SweepWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	for k := 1; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// AttachJournal preloads the memo cache from the journal's records and
// persists every subsequent successful run to it. Keys embed the full
// config fingerprint, so entries journaled under a different configuration
// are simply never hit. The returned report says what the preload found —
// loaded, skipped-as-corrupt and truncated-tail counts — so services can
// export it and tests can assert on recovery instead of re-parsing
// warnings.
func (r *Runner) AttachJournal(j *Journal) JournalReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
	for k, res := range j.Entries() {
		if _, ok := r.cache[k]; !ok {
			r.cache[k] = res
		}
	}
	return j.Report()
}

// AttachStore routes every memo miss through the persistent store: the
// leader of an in-process flight executes under the store's cross-process
// single-flight (DoOnce), so concurrent clients — and concurrent server
// replicas — pay one simulation per key, and every success is committed
// (CRC-framed, fsynced) before the caller sees it.
func (r *Runner) AttachStore(st ResultStore) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
}

// Executions returns how many simulations actually ran (memo misses) —
// journal-resume tests use it to prove completed points are not re-run.
func (r *Runner) Executions() int64 { return r.execs.Load() }

// BenchConfig returns a fast experiment configuration: 4 SMs with the
// shared resources (DRAM bandwidth/channels, L2 capacity) scaled by the
// same 4/16 factor so per-SM contention matches the Table 1 machine, and a
// 12.5 k cycle window (the controller operates on window-relative ratios;
// see DESIGN.md §4).
func BenchConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	// Half-rate bandwidth per SM keeps queueing pressure comparable to the
	// 16-SM machine once the 4 SMs' burstiness is accounted for (calibrated
	// against the Best-SWL gains of Figure 5).
	cfg.GPU.DRAMBandwidthGBs = 176.25
	cfg.GPU.DRAMChannels = 4
	cfg.GPU.L2Bytes = 512 * 1024
	cfg.LB.WindowCycles = 12500
	return cfg
}

// PaperConfig returns the full Table 1 configuration.
func PaperConfig() config.Config { return config.Default() }

func (r *Runner) cycles(cfg *config.Config) int64 {
	return int64(r.Windows) * int64(cfg.LB.WindowCycles)
}

// cfgFingerprint renders every field of the configuration into the memo
// key. Config is a tree of value types, so %v is deterministic and two
// configs collide only when they are semantically identical. Chaos fields
// are part of the fingerprint by construction: a faulted run can never
// alias a clean cache or journal entry.
//
// GPU.Workers and Strict are the two deliberate exclusions: Workers only
// chooses how many threads step the SMs, and Strict only chooses whether
// the run loop ticks every cycle or fast-forwards over provably idle spans
// — results are bit-identical at every worker count and in both run modes
// (test-enforced, DESIGN.md §9 and §10) — so such runs share memo and
// journal entries instead of re-simulating.
func cfgFingerprint(cfg *config.Config) string {
	canon := *cfg
	canon.GPU.Workers = 0
	canon.Strict = false
	return fmt.Sprintf("%v", canon)
}

// Run simulates one benchmark under one policy using the runner's base
// config, memoised by (config fingerprint, bench, policy-name). A non-nil
// error is always a *RunError.
func (r *Runner) Run(ctx context.Context, bench string, pol sim.Policy) (*sim.Result, error) {
	return r.RunCfg(ctx, r.Cfg, "", bench, pol)
}

// MustRun is Run with a background context, panicking on failure — the
// thin wrapper experiment code uses, where a failed point is a bug in the
// experiment itself. The panic value is the *RunError, so Experiment.RunSafe
// recovers it losslessly.
func (r *Runner) MustRun(bench string, pol sim.Policy) *sim.Result {
	res, err := r.Run(context.Background(), bench, pol)
	if err != nil {
		panic(err)
	}
	return res
}

// RunCfg simulates with an explicit configuration. The memo key always
// includes a full fingerprint of cfg, so two different configurations can
// never alias a cache entry; cfgKey is a human-readable discriminator kept
// for experiment labelling and stable memo keys across sweeps. Only
// successful results enter the memo cache and journal — a failed or
// cancelled run leaves no partial entry behind. A non-nil error is always
// a *RunError.
//
// Same-key calls are single-flight: concurrent callers that miss the memo
// cache while an identical run is executing wait for that run instead of
// duplicating it, so a key is simulated (and journaled) exactly once no
// matter how many sweep goroutines race to it. Failures are never shared
// forward: a waiter whose leader failed retries with its own context.
func (r *Runner) RunCfg(ctx context.Context, cfg config.Config, cfgKey, bench string, pol sim.Policy) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|%s|%s", cfgKey, cfgFingerprint(&cfg), bench, pol.Name())
	var f *flight
	for {
		r.mu.Lock()
		if res, ok := r.cache[key]; ok {
			r.mu.Unlock()
			return res, nil
		}
		inFlight := false
		if f, inFlight = r.flights[key]; !inFlight {
			f = &flight{done: make(chan struct{})}
			r.flights[key] = f
			r.mu.Unlock()
			break // this caller is the leader
		}
		r.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				return f.res, nil
			}
			// The leader failed, so nothing was memoised; loop and try
			// again as (potential) leader under this caller's context.
		case <-ctx.Done():
			return nil, &RunError{Bench: bench, Policy: pol.Name(), CfgKey: cfgKey,
				Phase: PhaseQueue, Err: context.Cause(ctx)}
		}
	}

	var res *sim.Result
	var err error
	select {
	case r.sem <- struct{}{}:
		r.mu.Lock()
		st := r.store
		r.mu.Unlock()
		if st != nil {
			// The store may satisfy the key from another process's commit
			// (no execution), or run us as the cross-process leader.
			res, _, err = st.DoOnce(ctx, key, func(ctx context.Context) (*sim.Result, error) {
				return r.execute(ctx, cfg, cfgKey, bench, pol)
			})
		} else {
			res, err = r.execute(ctx, cfg, cfgKey, bench, pol)
		}
		<-r.sem
	case <-ctx.Done():
		err = &RunError{Bench: bench, Policy: pol.Name(), CfgKey: cfgKey,
			Phase: PhaseQueue, Err: context.Cause(ctx)}
	}
	if err != nil {
		// Store-layer failures (lease wait cancelled, refresh I/O) arrive
		// unstructured; keep the RunCfg contract that every error is a
		// *RunError carrying the point's identity.
		var re *RunError
		if !errors.As(err, &re) {
			err = &RunError{Bench: bench, Policy: pol.Name(), CfgKey: cfgKey,
				Phase: PhaseQueue, Err: err}
		}
	}

	// Publish atomically: cache insert and flight retirement happen under
	// the same critical section, so no racing caller can observe the gap
	// (missing cache entry, no flight) and start a duplicate execution.
	r.mu.Lock()
	if err == nil {
		r.cache[key] = res
	}
	delete(r.flights, key)
	j := r.journal
	r.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
	if err != nil {
		return nil, err
	}
	if j != nil {
		j.Record(key, res)
	}
	return res, nil
}

// MustRunCfg is RunCfg with a background context, panicking on failure.
func (r *Runner) MustRunCfg(cfg config.Config, cfgKey, bench string, pol sim.Policy) *sim.Result {
	res, err := r.RunCfg(context.Background(), cfg, cfgKey, bench, pol)
	if err != nil {
		panic(err)
	}
	return res
}

// execute runs one simulation under the full fault barrier: panic
// recovery, per-run deadline, forward-progress watchdog and cooperative
// cancellation. All machine state in the returned *RunError (cycle,
// snapshot) is read by this goroutine after the run loop has stopped, so
// no diagnostic ever races the engine.
func (r *Runner) execute(ctx context.Context, cfg config.Config, cfgKey, bench string, pol sim.Policy) (res *sim.Result, err error) {
	rerr := &RunError{Bench: bench, Policy: pol.Name(), CfgKey: cfgKey, Phase: PhaseSetup}
	var g *sim.GPU
	defer func() {
		if p := recover(); p != nil {
			rerr.Err = fmt.Errorf("%w: %v", ErrPanic, p)
			rerr.Stack = string(debug.Stack())
			if g != nil {
				rerr.Cycle = g.Cycle()
				rerr.Snapshot = safeDump(g)
			}
			res, err = nil, rerr
		}
	}()

	b, ok := workload.ByName(bench)
	if !ok {
		rerr.Err = fmt.Errorf("%w %q", ErrUnknownBench, bench)
		return nil, rerr
	}
	machine, serr := sim.New(cfg, b.Kernel, pol)
	if serr != nil {
		rerr.Err = fmt.Errorf("%w: %w", ErrBadConfig, serr)
		return nil, rerr
	}
	g = machine
	if cfg.Check {
		check.Attach(g)
	}
	chaos.Attach(g)
	r.execs.Add(1)

	runCtx := ctx
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeoutCause(runCtx, r.Timeout, ErrTimeout)
		defer cancel()
	}
	if r.WatchdogTick > 0 {
		wdCtx, cancelCause := context.WithCancelCause(runCtx)
		stop := startWatchdog(cancelCause, g, r.WatchdogTick)
		defer func() {
			stop()
			cancelCause(nil)
		}()
		runCtx = wdCtx
	}

	rerr.Phase = PhaseRun
	cyc, runErr := g.RunCtx(runCtx, r.cycles(&cfg))
	if runErr != nil {
		rerr.Cycle = cyc
		rerr.Snapshot = safeDump(g)
		rerr.Err = runErr
		return nil, rerr
	}
	rerr.Phase = PhaseCollect
	return g.Collect(), nil
}

// safeDump renders the diagnostic snapshot, never letting a dump of an
// inconsistent (mid-panic) machine turn one failure into two.
func safeDump(g *sim.GPU) (dump string) {
	defer func() {
		if recover() != nil {
			dump = "(state dump unavailable: machine inconsistent)"
		}
	}()
	return g.StateDump()
}

// swlSweepLimits returns the CTA limits Best-SWL tries. A degenerate
// residency bound (< 1) yields no sweep at all: a limit of 0 can never
// launch a CTA, so a sweep containing it would only die via watchdog.
func swlSweepLimits(maxResident int) []int {
	if maxResident < 1 {
		return nil
	}
	candidates := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	var out []int
	for _, c := range candidates {
		if c < maxResident {
			out = append(out, c)
		}
	}
	return append(out, maxResident)
}

// BestSWL sweeps static CTA limits for the benchmark and returns the
// best-performing limit and its result (the paper's Best-SWL oracle).
// The full-residency limit (== plain baseline scheduling order) is part of
// the sweep, so Best-SWL is never worse than baseline. If any sweep point
// fails, BestSWL fails: an oracle picked over a partial sweep would be
// silently wrong, so the errors are joined and reported instead.
func (r *Runner) BestSWL(ctx context.Context, bench string) (int, *sim.Result, error) {
	b, ok := workload.ByName(bench)
	if !ok {
		return 0, nil, &RunError{Bench: bench, Policy: "Best-SWL", Phase: PhaseSetup,
			Err: fmt.Errorf("%w %q", ErrUnknownBench, bench)}
	}
	return r.bestSWLOver(ctx, bench, sim.MaxResidentCTAs(&r.Cfg.GPU, b.Kernel))
}

// bestSWLOver runs the Best-SWL sweep for an explicit residency bound. A
// bound below 1 is rejected up front with ErrBadConfig: the sweep would
// contain CTA limit 0, which can never launch a CTA and only dies via
// watchdog.
func (r *Runner) bestSWLOver(ctx context.Context, bench string, maxRes int) (int, *sim.Result, error) {
	limits := swlSweepLimits(maxRes)
	if len(limits) == 0 {
		return 0, nil, &RunError{Bench: bench, Policy: "Best-SWL", Phase: PhaseSetup,
			Err: fmt.Errorf("%w: max resident CTAs %d leaves no CTA limit to sweep", ErrBadConfig, maxRes)}
	}

	type out struct {
		limit int
		res   *sim.Result
		err   error
	}
	// The sweep shares the bounded pool with ForEachBench instead of
	// fanning out one goroutine per limit.
	results := make([]out, len(limits))
	r.forEachIndex(len(limits), func(i int) {
		res, err := r.Run(ctx, bench, schemes.SWL{Limit: limits[i]})
		results[i] = out{limits[i], res, err}
	})

	var errs []error
	for _, o := range results {
		if o.err != nil {
			errs = append(errs, o.err)
		}
	}
	if len(errs) > 0 {
		return 0, nil, errors.Join(errs...)
	}
	best := results[0]
	for _, o := range results[1:] {
		if o.res.IPC() > best.res.IPC() {
			best = o
		}
	}
	return best.limit, best.res, nil
}

// MustBestSWL is BestSWL with a background context, panicking on failure.
func (r *Runner) MustBestSWL(bench string) (int, *sim.Result) {
	lim, res, err := r.BestSWL(context.Background(), bench)
	if err != nil {
		panic(err)
	}
	return lim, res
}

// Sweep is the outcome of a per-benchmark sweep. Failed points are never
// silently zeroed: Vals[i] is only meaningful where Errs[i] is nil, and
// every error is reported (as a *RunError where the failure came from the
// run engine).
type Sweep struct {
	// Benches lists the benchmark names in Table 2 order.
	Benches []string
	// Vals holds the per-benchmark values; Vals[i] is valid iff
	// Errs[i] == nil.
	Vals []float64
	// Errs holds the per-benchmark failures (nil for successful points).
	Errs []error
}

// Failed returns the benchmarks whose points failed, in sweep order.
func (s *Sweep) Failed() []string {
	var out []string
	for i, err := range s.Errs {
		if err != nil {
			out = append(out, s.Benches[i])
		}
	}
	return out
}

// Err joins every point failure (nil when the sweep fully succeeded).
func (s *Sweep) Err() error { return errors.Join(s.Errs...) }

// OKVals returns the values of the successful points only.
func (s *Sweep) OKVals() []float64 {
	var out []float64
	for i, err := range s.Errs {
		if err == nil {
			out = append(out, s.Vals[i])
		}
	}
	return out
}

// ForEachBench runs fn for every benchmark name — at most SweepWorkers
// concurrently — and collects per-benchmark values in Table 2 order. A
// failed point is recorded in the sweep's Errs slice and skipped; it never
// aborts the other benchmarks, so one bad point cannot take down a
// fleet-sized campaign.
func (r *Runner) ForEachBench(ctx context.Context, fn func(ctx context.Context, bench string) (float64, error)) *Sweep {
	names := workload.Names()
	s := &Sweep{
		Benches: names,
		Vals:    make([]float64, len(names)),
		Errs:    make([]error, len(names)),
	}
	r.forEachIndex(len(names), func(i int) {
		name := names[i]
		defer func() {
			// fn is caller code: isolate its panics exactly like the
			// engine's own, so a sweep survives a bad closure too — and the
			// pool worker moves on to the next benchmark.
			if p := recover(); p != nil {
				if re, ok := p.(*RunError); ok {
					s.Errs[i] = re
					return
				}
				s.Errs[i] = &RunError{Bench: name, Phase: PhaseRun,
					Err: fmt.Errorf("%w: %v", ErrPanic, p), Stack: string(debug.Stack())}
			}
		}()
		s.Vals[i], s.Errs[i] = fn(ctx, name)
	})
	return s
}

// MustForEachBench is ForEachBench for infallible experiment closures: fn
// may use the Must* run methods freely — a panicking point surfaces as the
// sweep panic — and the values come back as a plain slice.
func (r *Runner) MustForEachBench(fn func(bench string) float64) []float64 {
	s := r.ForEachBench(context.Background(), func(_ context.Context, bench string) (float64, error) {
		return fn(bench), nil
	})
	if err := s.Err(); err != nil {
		panic(err)
	}
	return s.Vals
}

// Speedup returns a.IPC()/b.IPC().
func Speedup(a, b *sim.Result) float64 {
	if b.IPC() == 0 {
		return 0
	}
	return a.IPC() / b.IPC()
}

// GeoMean re-exports stats.GeoMean for experiment code.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }

// PairedSpeedupGM aggregates two sweep arms into a per-benchmark-paired
// speedup geometric mean: GM over arm.Vals[i]/base.Vals[i].
//
// Pairing is what GeoMean-over-OKVals cannot give: when the arms failed on
// *different* benchmarks, dividing their independently shrunken geomeans
// silently compares apples to oranges. Here a bench that failed in only
// one arm is an error; benches that failed in both arms drop from both
// sides consistently, and the returned n says how many pairs the mean
// actually covers.
func PairedSpeedupGM(arm, base *Sweep) (gm float64, n int, err error) {
	if len(arm.Benches) != len(base.Benches) {
		return 0, 0, fmt.Errorf("harness: paired speedup over different sweeps: %d vs %d benches",
			len(arm.Benches), len(base.Benches))
	}
	var num, den []float64
	var mismatched []string
	for i := range arm.Benches {
		if arm.Benches[i] != base.Benches[i] {
			return 0, 0, fmt.Errorf("harness: paired speedup over different sweeps: bench %d is %q vs %q",
				i, arm.Benches[i], base.Benches[i])
		}
		armOK, baseOK := arm.Errs[i] == nil, base.Errs[i] == nil
		switch {
		case armOK && baseOK:
			num = append(num, arm.Vals[i])
			den = append(den, base.Vals[i])
		case armOK != baseOK:
			mismatched = append(mismatched, arm.Benches[i])
		}
	}
	if len(mismatched) > 0 {
		return 0, 0, fmt.Errorf("harness: paired speedup arms mismatch: %v failed in only one arm", mismatched)
	}
	gm, err = stats.PairedGeoMean(num, den)
	if err != nil {
		return 0, 0, err
	}
	return gm, len(num), nil
}
