package harness

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestRunCfgSingleFlight is the regression test for the concurrent
// double-execution bug: N goroutines racing RunCfg on the same memo key all
// used to pass the cache check before any of them finished, so the identical
// simulation executed N times (and raced to journal the result). With
// single-flight memoisation exactly one leader simulates; every racer gets
// the leader's result, and the journal holds exactly one record.
func TestRunCfgSingleFlight(t *testing.T) {
	// The race needs real parallelism: under GOMAXPROCS=1 the callers can
	// serialise by accident and the pre-fix code passes vacuously.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	r := tinyRunner()
	j, err := OpenJournal(t.TempDir() + "/flight.jsonl")
	if err != nil {
		t.Fatalf("opening journal: %v", err)
	}
	defer j.Close()
	r.AttachJournal(j)

	const callers = 8
	results := make([]*sim.Result, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start // all callers hit the memo check together
			results[i], errs[i] = r.Run(context.Background(), "S2", sim.Baseline{})
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("caller %d: nil result", i)
		}
		if results[i] != results[0] {
			t.Errorf("caller %d got a different result object than caller 0", i)
		}
	}
	if got := r.Executions(); got != 1 {
		t.Errorf("Executions() = %d, want 1 (same-key racers must share one run)", got)
	}
	if got := j.Len(); got != 1 {
		t.Errorf("journal Len() = %d, want 1", got)
	}
	if err := j.Err(); err != nil {
		t.Errorf("journal write error: %v", err)
	}

	// A later same-key call is a plain memo hit: still one execution.
	if _, err := r.Run(context.Background(), "S2", sim.Baseline{}); err != nil {
		t.Fatalf("memo-hit run: %v", err)
	}
	if got := r.Executions(); got != 1 {
		t.Errorf("Executions() after memo hit = %d, want 1", got)
	}
}
