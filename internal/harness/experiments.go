package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Experiment is one reproducible paper table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) *Table
}

// RunSafe executes the experiment under the runner's fault barrier: a
// failed point (which experiment code raises by panicking with the
// *RunError from a Must* method) comes back as that error instead of
// crashing the caller. CLIs use it to print diagnostics and exit non-zero.
func (e Experiment) RunSafe(r *Runner) (tab *Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			if re, ok := p.(error); ok {
				tab, err = nil, re
				return
			}
			//lbvet:panic non-error panic values are not ours; re-raise for the test harness or crash reporter
			panic(p)
		}
	}()
	return e.Run(r), nil
}

// Experiments returns every reproduced table and figure in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Simulation configuration", Table1},
		{"table2", "Benchmarks and cache sensitivity", Table2},
		{"table3", "Linebacker microarchitectural configuration", Table3},
		{"fig1", "Cold vs capacity/conflict miss breakdown", Fig1},
		{"fig2", "Per-SM reused working set of top-4 loads", Fig2},
		{"fig3", "Per-SM streaming data size", Fig3},
		{"fig4", "Statically and dynamically unused register file", Fig4},
		{"fig5", "Performance of enhanced (idealised) L1 cache", Fig5},
		{"fig9", "Idle register file used as victim cache", Fig9},
		{"fig10", "VTT partition set-associativity sweep", Fig10},
		{"fig11", "Linebacker performance breakdown (ablation)", Fig11},
		{"fig12", "Performance vs previous approaches", Fig12},
		{"fig13", "L1/victim hit, miss and bypass breakdown", Fig13},
		{"fig14", "L1 cache size impact", Fig14},
		{"fig15", "Combinations of previous works", Fig15},
		{"fig16", "Register file bank conflicts", Fig16},
		{"fig17", "Off-chip memory traffic", Fig17},
		{"fig18", "Energy consumption", Fig18},
		{"ext-ccws", "Extension: CCWS vs Best-SWL vs Linebacker", ExtCCWS},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// lb returns a fresh full Linebacker policy (fresh per call: policies are
// stateless factories, state lives in Attach).
func lb() sim.Policy { return core.New() }

func svc() sim.Policy { return core.NewWith(core.Options{Selection: true}) }
func vc() sim.Policy  { return core.NewWith(core.Options{Selection: false}) }

// Table1 prints the simulated GPU configuration (Table 1).
func Table1(r *Runner) *Table {
	g := &r.Cfg.GPU
	t := &Table{ID: "table1", Title: "Simulation configuration", Header: []string{"Parameter", "Value"}}
	t.AddRow("# of SMs", fmt.Sprint(g.NumSMs))
	t.AddRow("Clock freq.", fmt.Sprintf("%d MHz", g.ClockMHz))
	t.AddRow("SIMD width", fmt.Sprint(g.SIMDWidth))
	t.AddRow("Max threads/warps/CTAs per SM", fmt.Sprintf("%d/%d/%d", g.MaxThreadsPerSM, g.MaxWarpsPerSM, g.MaxCTAsPerSM))
	t.AddRow("Warp scheduling", fmt.Sprintf("GTO, %d schedulers per SM", g.NumSchedulers))
	t.AddRow("Register file/SM", fmt.Sprintf("%d KB", g.RegFileBytes/1024))
	t.AddRow("Shared memory/SM", fmt.Sprintf("%d KB", g.SharedMemBytes/1024))
	t.AddRow("L1 cache size/SM", fmt.Sprintf("%d KB, %d-way, 128B line, %d MSHRs", g.L1Bytes/1024, g.L1Ways, g.L1MSHRs))
	t.AddRow("L2 shared cache", fmt.Sprintf("%d-way, %d KB", g.L2Ways, g.L2Bytes/1024))
	t.AddRow("Off-chip DRAM bandwidth", fmt.Sprintf("%.1f GB/s", g.DRAMBandwidthGBs))
	t.AddRow("DRAM timing", fmt.Sprintf("RCD=%g,RP=%g,RC=%g,RRD=%g,CL=%g,WR=%g,RAS=%g",
		g.DRAM.RCD, g.DRAM.RP, g.DRAM.RC, g.DRAM.RRD, g.DRAM.CL, g.DRAM.WR, g.DRAM.RAS))
	return t
}

// Table3 prints the Linebacker configuration (Table 3).
func Table3(r *Runner) *Table {
	l := &r.Cfg.LB
	e := &r.Cfg.Energy
	t := &Table{ID: "table3", Title: "Linebacker microarchitectural configuration", Header: []string{"Parameter", "Value"}}
	t.AddRow("IPC & per-load locality monitoring period", fmt.Sprintf("%d cycles", l.WindowCycles))
	t.AddRow("Cache hit threshold", pct(l.HitThreshold))
	t.AddRow("IPC variation bounds", fmt.Sprintf("Upper: %+.2f, Lower: %+.2f", l.IPCVarUpper, l.IPCVarLower))
	t.AddRow("VTT configuration", fmt.Sprintf("%d-way set-associative VP / %d VPs", l.VTTWays, l.MaxPartitions))
	t.AddRow("VP access latency", fmt.Sprintf("%d cycles", l.VPAccessLatency))
	t.AddRow("CTA manager access energy", fmt.Sprintf("%.2f pJ", e.CTAManagerAccessPJ))
	t.AddRow("HPC access energy", fmt.Sprintf("%.2f pJ", e.HPCAccessPJ))
	t.AddRow("LM access energy", fmt.Sprintf("%.2f pJ", e.LMAccessPJ))
	t.AddRow("VTT access energy", fmt.Sprintf("%.2f pJ", e.VTTAccessPJ))
	return t
}

// cfgWithL1 clones the runner config with a different L1 size.
func cfgWithL1(base config.Config, kb int) config.Config {
	base.GPU.L1Bytes = kb * 1024
	return base
}

// Table2 reproduces the cache-sensitivity classification: apps >30 % faster
// with a 192 KB L1 than with the 48 KB baseline are cache-sensitive.
func Table2(r *Runner) *Table {
	t := &Table{ID: "table2", Title: "Benchmarks and cache sensitivity (192 KB vs 48 KB L1)",
		Header: []string{"App", "Description", "Suite", "Speedup@192KB", "Class(measured)", "Class(paper)"}}
	type row struct {
		b       workload.Benchmark
		speedup float64
	}
	benches := workload.All()
	rows := make([]row, len(benches))
	errs := make([]error, len(benches))
	ctx := context.Background()
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b workload.Benchmark) {
			defer wg.Done()
			// The error API, not Must*: a panic in a bare goroutine would
			// escape Experiment.RunSafe's recovery barrier and kill the
			// process. Failures join below and surface on the caller's
			// goroutine instead.
			base, err := r.Run(ctx, b.Name, sim.Baseline{})
			if err != nil {
				errs[i] = err
				return
			}
			big, err := r.RunCfg(ctx, cfgWithL1(r.Cfg, 192), "l1=192", b.Name, sim.Baseline{})
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = row{b, Speedup(big, base)}
		}(i, b)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		//lbvet:panic experiments are infallible by contract; RunSafe converts this to the joined error
		panic(err)
	}
	for _, row := range rows {
		cls := "insensitive"
		if row.speedup > 1.30 {
			cls = "sensitive"
		}
		want := "insensitive"
		if row.b.Sensitive {
			want = "sensitive"
		}
		t.AddRow(row.b.Name, row.b.Desc, row.b.Suite, f2(row.speedup), cls, want)
	}
	return t
}

// Fig1 reproduces the cold vs capacity/conflict miss breakdown.
func Fig1(r *Runner) *Table {
	t := &Table{ID: "fig1", Title: "L1 miss breakdown (baseline 48 KB)",
		Header: []string{"App", "ColdMissRatio", "2CMissRatio", "TotalMissRatio", "2C/Total"}}
	var coldR, ccR, totR []float64
	for _, name := range workload.Names() {
		res := r.MustRun(name, sim.Baseline{})
		// Classified misses exclude merged pending hits (which the paper's
		// counters also fold into the first miss).
		total := float64(res.L1.TotalLoadAccesses())
		if total == 0 {
			continue
		}
		cold := float64(res.L1.ColdMisses) / total
		cc := float64(res.L1.CapConfMisses+res.L1.LoadPendingHits) / total
		miss := cold + cc
		share := 0.0
		if miss > 0 {
			share = cc / miss
		}
		coldR = append(coldR, cold)
		ccR = append(ccR, cc)
		totR = append(totR, miss)
		t.AddRow(name, pct(cold), pct(cc), pct(miss), pct(share))
	}
	t.AddRow("Avg", pct(stats.Mean(coldR)), pct(stats.Mean(ccR)), pct(stats.Mean(totR)),
		pct(stats.Mean(ccR)/stats.Mean(totR)))
	t.Notes = append(t.Notes, "paper: avg total 66.6%, avg 2C 44.6%, 2C share 67.0%; merged (pending) re-misses are counted as capacity re-references")
	return t
}

// Fig2 reproduces the reused working set of the top-4 loads per SM.
func Fig2(r *Runner) *Table {
	t := &Table{ID: "fig2", Title: "Per-SM reused working set, top-4 non-streaming loads (KB/window)",
		Header: []string{"App", "ReusedWS(KB)", ">L1(48KB)?"}}
	exceed := 0
	for _, name := range workload.Names() {
		p := r.MustRunProbe(name)
		ws := stats.TopReusedWorkingSet(p.Loads, 4)
		over := ""
		if ws > 48*1024 {
			over = "yes"
			exceed++
		}
		t.AddRow(name, kbs(ws), over)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d/20 apps exceed the 48 KB L1 (paper: 13/20)", exceed))
	return t
}

// Fig3 reproduces the per-SM streaming data size.
func Fig3(r *Runner) *Table {
	t := &Table{ID: "fig3", Title: "Per-SM streaming data size (KB/window)",
		Header: []string{"App", "Streaming(KB)", ">16KB?", ">L1?"}}
	over16, overL1 := 0, 0
	for _, name := range workload.Names() {
		p := r.MustRunProbe(name)
		sb := stats.StreamingBytes(p.Loads)
		m16, mL1 := "", ""
		if sb > 16*1024 {
			m16 = "yes"
			over16++
		}
		if sb > float64(r.Cfg.GPU.L1Bytes) {
			mL1 = "yes"
			overL1++
		}
		t.AddRow(name, kbs(sb), m16, mL1)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/20 apps stream >16 KB (paper: 9/20); %d exceed the cache (paper: BI, LI, SR2, 2D, HS)", over16, overL1))
	return t
}

// Fig4 reproduces statically and dynamically unused register file sizes.
func Fig4(r *Runner) *Table {
	t := &Table{ID: "fig4", Title: "Unused register file under Best-SWL (KB)",
		Header: []string{"App", "SUR(KB)", "BestSWL", "DUR(KB)"}}
	var surs, durs []float64
	for _, name := range workload.Names() {
		b, _ := workload.ByName(name)
		sur := float64(schemes.SURBytes(&r.Cfg.GPU, b.Kernel))
		lim, _ := r.MustBestSWL(name)
		dur := float64(schemes.DURBytes(&r.Cfg.GPU, b.Kernel, lim))
		surs = append(surs, sur)
		durs = append(durs, dur)
		t.AddRow(name, kbs(sur), fmt.Sprint(lim), kbs(dur))
	}
	t.AddRow("Avg", kbs(stats.Mean(surs)), "", kbs(stats.Mean(durs)))
	t.Notes = append(t.Notes, "paper: SUR 4-144 KB (avg 87.1 KB); DUR 27-173 KB (avg 58.7 KB) in 13/20 apps")
	return t
}

// Fig5 reproduces the idealised CacheExt study.
func Fig5(r *Runner) *Table {
	t := &Table{ID: "fig5", Title: "Idealised enhanced-L1 performance (normalized to baseline)",
		Header: []string{"App", "Best-SWL", "CacheExt", "Best-SWL+CacheExt"}}
	var sw, ce, both []float64
	for _, name := range workload.Names() {
		base := r.MustRun(name, sim.Baseline{})
		lim, swl := r.MustBestSWL(name)
		ext := r.MustRun(name, schemes.CacheExt{})
		combo := r.MustRun(name, schemes.Combine(
			fmt.Sprintf("Best-SWL+CacheExt(%d)", lim),
			schemes.CacheExt{DURLimit: lim}, schemes.SWL{Limit: lim}))
		s1, s2, s3 := Speedup(swl, base), Speedup(ext, base), Speedup(combo, base)
		sw = append(sw, s1)
		ce = append(ce, s2)
		both = append(both, s3)
		t.AddRow(name, f2(s1), f2(s2), f2(s3))
	}
	t.AddRow("GM", f2(GeoMean(sw)), f2(GeoMean(ce)), f2(GeoMean(both)))
	t.Notes = append(t.Notes, "paper GM: Best-SWL 1.115, CacheExt 1.543, Best-SWL+CacheExt 1.770")
	return t
}

// Fig9 reproduces the idle-register victim space and monitoring length.
func Fig9(r *Runner) *Table {
	t := &Table{ID: "fig9", Title: "Idle register file space used as victim cache",
		Header: []string{"App", "StaticVictim(KB)", "DynamicVictim(KB)", "MonitorWindows"}}
	var st, dy []float64
	for _, name := range workload.Names() {
		b, _ := workload.ByName(name)
		res := r.MustRun(name, lb())
		// Static victim space: partitions that fit above the live registers
		// at full residency (i.e. without any throttling).
		staticBytes := staticVictimBytes(&r.Cfg, b.Kernel)
		avg := res.Extra["lb_victim_bytes_avg"]
		dynamic := avg - staticBytes
		if dynamic < 0 {
			dynamic = 0
		}
		st = append(st, staticBytes)
		dy = append(dy, dynamic)
		t.AddRow(name, kbs(staticBytes), kbs(dynamic), fmt.Sprintf("%.0f", res.Extra["lb_monitor_windows"]))
	}
	t.AddRow("Avg", kbs(stats.Mean(st)), kbs(stats.Mean(dy)), "")
	t.Notes = append(t.Notes, "paper: avg static 88.5 KB, avg dynamic 48.5 KB; most apps finish monitoring in 2 windows")
	return t
}

// staticVictimBytes computes the victim capacity available from statically
// unused registers alone (whole 24 KB partitions above the live registers).
func staticVictimBytes(cfg *config.Config, k *workload.Kernel) float64 {
	resident := sim.MaxResidentCTAs(&cfg.GPU, k)
	lrn := resident*k.RegsPerCTA() - 1
	partRegs := (cfg.GPU.L1Bytes / (config.LineSize * cfg.GPU.L1Ways)) * cfg.LB.VTTWays
	parts := 0
	for n := 0; n < cfg.LB.MaxPartitions; n++ {
		base := cfg.LB.RegOffset + 1 + n*partRegs
		if base > lrn && base+partRegs-1 <= cfg.GPU.WarpRegisters()-1 {
			parts++
		}
	}
	return float64(parts * partRegs * config.LineSize)
}

// Fig10 reproduces the VTT partition associativity sweep.
func Fig10(r *Runner) *Table {
	t := &Table{ID: "fig10", Title: "VTT partition set associativity: utilization and performance",
		Header: []string{"VPWays", "IdleRFUtilization", "GM speedup vs Best-SWL"}}
	for _, ways := range []int{1, 2, 4, 8, 16, 32} {
		pol := func() sim.Policy {
			return core.NewWith(core.Options{Selection: true, Throttling: true, VTTWays: ways})
		}
		var speedups, utils []float64
		for _, name := range workload.Names() {
			_, swl := r.MustBestSWL(name)
			res := r.MustRun(name, namedPolicy{fmt.Sprintf("LB-vtt%d", ways), pol()})
			speedups = append(speedups, Speedup(res, swl))
			unused := res.Extra["lb_unused_bytes_avg"]
			if unused > 0 {
				utils = append(utils, res.Extra["lb_victim_bytes_avg"]/unused)
			}
		}
		t.AddRow(fmt.Sprint(ways), pct(stats.Mean(utils)), f2(GeoMean(speedups)))
	}
	t.Notes = append(t.Notes, "paper: best at 4-way (1.29 over Best-SWL, 88.5% utilization); 1-way utilizes 92.8% but searches slowly; 16-way wastes space (71.1%)")
	return t
}

// namedPolicy renames a policy for cache keying.
type namedPolicy struct {
	name string
	p    sim.Policy
}

func (n namedPolicy) Name() string                   { return n.name }
func (n namedPolicy) Attach(sm *sim.SM) sim.SMPolicy { return n.p.Attach(sm) }

// Fig11 reproduces the ablation breakdown.
func Fig11(r *Runner) *Table {
	t := &Table{ID: "fig11", Title: "Linebacker breakdown (normalized to Best-SWL)",
		Header: []string{"App", "VictimCaching", "SelectiveVC", "Throttling+SVC(LB)"}}
	var a, b, c []float64
	for _, name := range workload.Names() {
		_, swl := r.MustBestSWL(name)
		v1 := Speedup(r.MustRun(name, vc()), swl)
		v2 := Speedup(r.MustRun(name, svc()), swl)
		v3 := Speedup(r.MustRun(name, lb()), swl)
		a = append(a, v1)
		b = append(b, v2)
		c = append(c, v3)
		t.AddRow(name, f2(v1), f2(v2), f2(v3))
	}
	t.AddRow("GM", f2(GeoMean(a)), f2(GeoMean(b)), f2(GeoMean(c)))
	t.Notes = append(t.Notes, "paper: SVC gains >7% over VC in BI, BC, BG, SR2, SP; full LB gains 7.7% over SVC")
	return t
}

// Fig12 reproduces the headline comparison.
func Fig12(r *Runner) *Table {
	t := &Table{ID: "fig12", Title: "Performance comparison (normalized to Best-SWL)",
		Header: []string{"App", "Baseline", "Best-SWL", "PCAL", "CERF", "Linebacker"}}
	pols := []func() sim.Policy{
		func() sim.Policy { return sim.Baseline{} },
		nil, // Best-SWL handled specially
		func() sim.Policy { return schemes.PCAL{} },
		func() sim.Policy { return schemes.CERF{} },
		lb,
	}
	sums := make([][]float64, len(pols))
	for _, name := range workload.Names() {
		_, swl := r.MustBestSWL(name)
		row := []string{name}
		for i, pf := range pols {
			var s float64
			if pf == nil {
				s = 1.0
			} else {
				s = Speedup(r.MustRun(name, pf()), swl)
			}
			sums[i] = append(sums[i], s)
			row = append(row, f2(s))
		}
		t.AddRow(row...)
	}
	gm := []string{"GM"}
	for _, s := range sums {
		gm = append(gm, f2(GeoMean(s)))
	}
	t.AddRow(gm...)
	t.Notes = append(t.Notes, "paper GM vs Best-SWL: Baseline 0.90 (SWL +11.5% over baseline), PCAL 1.076, CERF 1.196, Linebacker 1.290")
	return t
}
