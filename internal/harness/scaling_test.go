package harness

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// TestWindowScaleInvariance verifies the DESIGN.md claim that the
// Linebacker controller's behaviour survives window scaling: with the
// monitoring window halved (and the run length in windows fixed), the
// Linebacker-vs-baseline speedup stays clearly positive on a sample of
// workloads (magnitudes shift with run length; direction must not).
func TestWindowScaleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling study is slow")
	}
	for _, bench := range []string{"S2", "BC"} {
		b, _ := workload.ByName(bench)
		var speedups []float64
		for _, window := range []int{12500, 6250} {
			cfg := BenchConfig()
			cfg.LB.WindowCycles = window
			run := func(pol sim.Policy) float64 {
				g, err := sim.New(cfg, b.Kernel, pol)
				if err != nil {
					t.Fatal(err)
				}
				g.Run(16 * int64(window))
				return g.Collect().IPC()
			}
			speedups = append(speedups, run(core.New())/run(sim.Baseline{}))
		}
		for i, s := range speedups {
			if s <= 1.0 {
				t.Fatalf("%s: Linebacker speedup %.2f at scale %d not > 1", bench, s, i)
			}
		}
		// Magnitudes legitimately shrink with the window (shorter runs see
		// less of the steady state); what must be preserved is the
		// direction and a non-degenerate effect size at both scales.
		for i, s := range speedups {
			if s < 1.05 {
				t.Fatalf("%s: effect degenerate at scale %d: %v", bench, i, speedups)
			}
		}
	}
}
