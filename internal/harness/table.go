package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced paper table or figure, rendered as rows of the
// same series the paper plots.
type Table struct {
	ID     string // "fig12", "table2", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n_" + n + "_\n")
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func kbs(v float64) string { return fmt.Sprintf("%.1f", v/1024) }
