package harness

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/linebacker-sim/linebacker/internal/plot"
)

// Chart converts a rendered experiment table into a grouped bar chart: the
// first column becomes the x-axis labels and every column whose cells parse
// as numbers becomes a series. Percent cells are plotted as fractions.
// Tables without numeric columns (the config tables) return an error.
func (t *Table) Chart() (*plot.Chart, error) {
	if len(t.Rows) == 0 {
		return nil, fmt.Errorf("harness: table %s has no rows", t.ID)
	}
	numeric := make([]bool, len(t.Header))
	for col := 1; col < len(t.Header); col++ {
		any := false
		ok := true
		for _, row := range t.Rows {
			if col >= len(row) || row[col] == "" {
				continue
			}
			if _, err := parseCell(row[col]); err != nil {
				ok = false
				break
			}
			any = true
		}
		numeric[col] = ok && any
	}

	c := &plot.Chart{
		Title:  fmt.Sprintf("%s: %s", t.ID, t.Title),
		XLabel: t.Header[0],
	}
	for col, isNum := range numeric {
		if isNum {
			c.Series = append(c.Series, plot.Series{Name: t.Header[col]})
		}
	}
	if len(c.Series) == 0 {
		return nil, fmt.Errorf("harness: table %s has no numeric columns to plot", t.ID)
	}
	for _, row := range t.Rows {
		c.Labels = append(c.Labels, row[0])
		si := 0
		for col, isNum := range numeric {
			if !isNum {
				continue
			}
			v := 0.0
			if col < len(row) && row[col] != "" {
				v, _ = parseCell(row[col]) //lbvet:errok — a non-numeric cell plots as zero by design; the column was vetted numeric on row one
			}
			c.Series[si].Values = append(c.Series[si].Values, v)
			si++
		}
	}
	if strings.Contains(strings.ToLower(t.Title), "normalized") {
		ref := 1.0
		c.RefLine = &ref
		c.YLabel = "speedup (normalized)"
	}
	return c, nil
}

// parseCell parses "1.23", "45.6%" (as 0.456) or plain integers.
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if pct {
		v /= 100
	}
	return v, nil
}
