package harness

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestWorkersExcludedFromMemoKey proves the deliberate fingerprint
// exclusion: the same run at different worker counts shares one memo entry
// (results are bit-identical, so re-simulating would be pure waste), while
// any other GPU field still splits the key.
func TestWorkersExcludedFromMemoKey(t *testing.T) {
	r := NewRunner(BenchConfig(), 2)

	serial := r.Cfg
	serial.GPU.Workers = 1
	parallel := r.Cfg
	parallel.GPU.Workers = 4

	resSerial := r.MustRunCfg(serial, "", "S2", sim.Baseline{})
	resParallel := r.MustRunCfg(parallel, "", "S2", sim.Baseline{})
	if resSerial != resParallel {
		t.Fatal("Workers=1 and Workers=4 produced distinct memo entries; the fingerprint must exclude Workers")
	}
	if got := r.Executions(); got != 1 {
		t.Fatalf("executions = %d, want 1 (second worker count must hit the memo)", got)
	}

	// Control: a real configuration change must still miss.
	bigger := parallel
	bigger.GPU.L1Bytes *= 2
	if r.MustRunCfg(bigger, "", "S2", sim.Baseline{}) == resSerial {
		t.Fatal("L1 size change aliased to the memoised result")
	}
}

// TestParallelRunMatchesSerialThroughRunner runs one benchmark through the
// full harness stack (checker attached, recovery barrier, memoisation)
// serially and in parallel, with memo sharing defeated via distinct
// runners, and requires identical metrics. The sim-layer matrix test
// covers the full worker-count spread; one parallel count here keeps the
// package affordable under the race detector.
func TestParallelRunMatchesSerialThroughRunner(t *testing.T) {
	run := func(workers int) *sim.Result {
		cfg := BenchConfig()
		cfg.GPU.Workers = workers
		cfg.Check = true
		return NewRunner(cfg, 1).MustRun("BI", sim.Baseline{})
	}
	want := run(1)
	for _, w := range []int{4} {
		got := run(w)
		if got.Cycles != want.Cycles || got.Instructions != want.Instructions ||
			got.Loads != want.Loads || got.Stores != want.Stores ||
			got.L1 != want.L1 || got.RF != want.RF || got.L2 != want.L2 ||
			got.DRAM != want.DRAM {
			t.Errorf("Workers=%d metrics diverged: serial %+v, got %+v", w, want, got)
		}
	}
}

// TestChaosSMWorkerPanicStructured is the chaos acceptance for the parallel
// engine: a panic injected inside one SM's tick — on a worker goroutine,
// since Workers > 1 — must surface as a structured *RunError naming the
// right cycle, with the worker's stack and a machine snapshot, exactly like
// a serial-stage panic does.
func TestChaosSMWorkerPanicStructured(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := BenchConfig()
		cfg.GPU.Workers = workers
		cfg.Chaos = config.Chaos{Enabled: true, Seed: 3, PanicStage: "sm-worker", PanicCycle: 1000}
		r := NewRunner(cfg, 2)

		_, err := r.Run(context.Background(), "S2", sim.Baseline{})
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("Workers=%d: error %T is not a *RunError: %v", workers, err, err)
		}
		if !errors.Is(re, ErrPanic) {
			t.Errorf("Workers=%d: not classified as ErrPanic: %v", workers, re)
		}
		if re.Cycle != 1000 {
			t.Errorf("Workers=%d: RunError.Cycle = %d, want 1000 (the injected PanicCycle)", workers, re.Cycle)
		}
		if !strings.Contains(re.Err.Error(), "chaos: injected panic in SM") {
			t.Errorf("Workers=%d: cause lost the injected message: %v", workers, re.Err)
		}
		if re.Snapshot == "" {
			t.Errorf("Workers=%d: no machine-state snapshot", workers)
		}
		if workers > 1 && !strings.Contains(re.Err.Error(), "[SM worker stack]") {
			t.Errorf("Workers=%d: propagated panic lost the worker goroutine's stack: %v", workers, re.Err)
		}
	}
}

// TestNewRunnerDividesCores pins the core-budget split: sweep-level
// concurrency is GOMAXPROCS divided by the configured intra-run workers,
// never below one.
func TestNewRunnerDividesCores(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, workers := range []int{1, 2, 4, 0} {
		cfg := BenchConfig()
		cfg.GPU.Workers = workers
		r := NewRunner(cfg, 2)
		want := maxProcs / cfg.GPU.EffectiveWorkers(maxProcs)
		if want < 1 {
			want = 1
		}
		if r.SweepWorkers != want {
			t.Errorf("Workers=%d: SweepWorkers = %d, want %d (GOMAXPROCS %d)",
				workers, r.SweepWorkers, want, maxProcs)
		}
	}
}

// TestForEachIndexCoversAllAndBoundsFanOut proves the shared sweep pool
// visits every index exactly once and never runs more than SweepWorkers
// items at a time — including from nested sweeps, the ForEachBench→BestSWL
// shape.
func TestForEachIndexCoversAllAndBoundsFanOut(t *testing.T) {
	r := NewRunner(BenchConfig(), 2)
	r.SweepWorkers = 3

	const n = 64
	var hits [n]atomic.Int32
	var active, peak atomic.Int32
	r.forEachIndex(n, func(i int) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		hits[i].Add(1)
		// Nested sweep: must not deadlock and must respect the outer pool's
		// inline-caller design.
		var inner atomic.Int32
		r.forEachIndex(4, func(int) { inner.Add(1) })
		if inner.Load() != 4 {
			t.Errorf("nested sweep ran %d/4 items", inner.Load())
		}
		active.Add(-1)
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times, want exactly once", i, got)
		}
	}
	// The outer pool itself holds ≤ SweepWorkers items concurrently; each
	// may run its nested sweep inline plus helpers, so the hard bound on the
	// outer counter is SweepWorkers.
	if p := peak.Load(); p > int32(r.SweepWorkers) {
		t.Fatalf("outer sweep concurrency peaked at %d, bound is %d", p, r.SweepWorkers)
	}
}
