package harness

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
)

// shapeSample is a representative benchmark subset for the fast regression
// checks below: two capacity-sensitive apps, one throttling-friendly app,
// one stream-filter app and one insensitive app.
var shapeSample = []string{"S2", "BC", "CF", "BI", "HS"}

// TestPaperShapesQuick asserts the paper's headline qualitative claims on a
// reduced benchmark sample at bench scale. The full-suite equivalents live
// in EXPERIMENTS.md via cmd/lbfig.
func TestPaperShapesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression is slow")
	}
	r := NewRunner(BenchConfig(), 12)

	var lbS, baseS, cerfConfS, lbConfS []float64
	for _, name := range shapeSample {
		base := r.MustRun(name, sim.Baseline{})
		lbr := r.MustRun(name, core.New())
		cerf := r.MustRun(name, schemes.CERF{})
		_, swl := r.MustBestSWL(name)

		lbS = append(lbS, Speedup(lbr, swl))
		baseS = append(baseS, Speedup(base, swl))

		// Figure 17 shape: Linebacker must not increase off-chip traffic
		// per instruction, and backup/restore must stay a small share.
		basePer := float64(base.DRAM.TotalBytes()) / float64(base.Instructions)
		lbPer := float64(lbr.DRAM.TotalBytes()) / float64(lbr.Instructions)
		if lbPer > basePer*1.1 {
			t.Errorf("%s: LB traffic/instr %.1f exceeds baseline %.1f", name, lbPer, basePer)
		}
		if tot := lbr.DRAM.TotalBytes(); tot > 0 {
			share := float64(lbr.DRAM.RegBackupBytes+lbr.DRAM.RegRestoreBytes) / float64(tot)
			if share > 0.05 {
				t.Errorf("%s: backup/restore share %.1f%% too high", name, share*100)
			}
		}

		// Figure 16 inputs: bank conflicts per instruction, normalized to
		// this app's baseline (aggregated below — the paper's claim is an
		// average, and apps with heavy victim traffic can exceed CERF).
		baseConf := float64(base.RF.BankConflicts) / float64(base.Instructions)
		if baseConf > 0 {
			cerfConfS = append(cerfConfS, float64(cerf.RF.BankConflicts)/float64(cerf.Instructions)/baseConf)
			lbConfS = append(lbConfS, float64(lbr.RF.BankConflicts)/float64(lbr.Instructions)/baseConf)
		}
	}
	// Figure 16 shape: on average CERF pays at least as many extra bank
	// conflicts as Linebacker, and both exceed the baseline.
	if c, l := stats.Mean(cerfConfS), stats.Mean(lbConfS); c < l*0.7 || c < 1.0 {
		t.Errorf("bank conflicts: CERF %.2f vs LB %.2f vs baseline 1.0", c, l)
	}
	// Figure 12 shape on the sample: LB beats Best-SWL on GM, and Best-SWL
	// beats plain baseline.
	if gm := stats.GeoMean(lbS); gm < 1.02 {
		t.Errorf("LB GM vs Best-SWL = %.3f, want > 1.02", gm)
	}
	if gm := stats.GeoMean(baseS); gm > 1.0 {
		t.Errorf("baseline GM vs Best-SWL = %.3f, want < 1.0", gm)
	}
}

// TestSeedStability verifies that the Linebacker-vs-baseline comparison is
// not an artifact of one synthetic trace instance: across PRNG seeds the
// speedup direction is unchanged.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("seed study is slow")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := BenchConfig()
		cfg.Seed = seed
		r := NewRunner(cfg, 12)
		base := r.MustRun("BC", sim.Baseline{})
		lbr := r.MustRun("BC", core.New())
		if sp := Speedup(lbr, base); sp < 1.05 {
			t.Errorf("seed %d: LB speedup %.3f degenerate", seed, sp)
		}
	}
}
