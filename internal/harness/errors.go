package harness

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel errors of the run engine. Callers classify failures with
// errors.Is against these; the concrete error is always a *RunError
// carrying the failed point's identity and a diagnostic snapshot.
var (
	// ErrUnknownBench marks a benchmark name not in the Table 2 registry.
	ErrUnknownBench = errors.New("harness: unknown benchmark")
	// ErrBadConfig marks a configuration or kernel rejected by validation.
	ErrBadConfig = errors.New("harness: bad configuration")
	// ErrPanic marks a run that panicked in any subsystem and was isolated
	// by the runner's recovery barrier.
	ErrPanic = errors.New("harness: run panicked")
	// ErrWatchdog marks a run aborted for lack of forward progress: no
	// instruction committed across a wall-clock watchdog tick.
	ErrWatchdog = errors.New("harness: watchdog: no forward progress")
	// ErrTimeout marks a run that exceeded the runner's per-run deadline.
	ErrTimeout = errors.New("harness: run deadline exceeded")
)

// Transient classifies a run failure for retry: true means the fault is
// environmental (a watchdog kill, a per-run deadline, an isolated panic —
// including injected chaos faults) and a retry might succeed; false means
// the failure is deterministic (bad configuration, unknown benchmark) or
// caller-owned (the client's context expired), where a retry would either
// fail identically or spend the caller's budget against its will.
//
// The deliberate asymmetry: retrying a deterministic failure can never
// succeed, but worse, a retry loop around one would mask the difference
// between "the environment hiccuped" and "this configuration is wrong" —
// the service must surface the second kind immediately and structurally
// (DESIGN.md §12).
func Transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBadConfig), errors.Is(err, ErrUnknownBench):
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The caller's own context ended the run; its budget, its call.
		return false
	case errors.Is(err, ErrWatchdog), errors.Is(err, ErrTimeout), errors.Is(err, ErrPanic):
		return true
	}
	return false
}

// FailureKind names the sentinel class of a run failure for structured
// (JSON) error reporting; "other" covers unclassified causes.
func FailureKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBadConfig):
		return "badconfig"
	case errors.Is(err, ErrUnknownBench):
		return "unknownbench"
	case errors.Is(err, ErrWatchdog):
		return "watchdog"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrPanic):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "other"
}

// Run phases a RunError can fail in.
const (
	PhaseSetup   = "setup"   // benchmark lookup, config validation, machine build
	PhaseQueue   = "queue"   // waiting for a worker slot
	PhaseRun     = "run"     // cycle simulation
	PhaseCollect = "collect" // result aggregation
)

// RunError describes one failed simulation point. It survives sweeps: a
// failed (bench, policy, config) is reported with enough identity to re-run
// it alone and enough machine state to see where it stopped.
type RunError struct {
	// Bench, Policy and CfgKey identify the point exactly as the memo
	// cache keys it.
	Bench  string
	Policy string
	CfgKey string
	// Phase is the run stage that failed (PhaseSetup, PhaseRun, ...).
	Phase string
	// Cycle is the simulated cycle at abort (0 if the machine never ran).
	Cycle int64
	// Snapshot is the sim.GPU.StateDump diagnostic at abort, when the
	// machine existed.
	Snapshot string
	// Stack is the recovered goroutine stack for panic failures.
	Stack string
	// Err is the underlying cause, wrapping one of the sentinels above
	// and/or a context cancellation cause.
	Err error
}

// Error renders the point identity and cause; the snapshot and stack are
// deliberately excluded (use Detail for the full diagnostic).
func (e *RunError) Error() string {
	id := e.Bench
	if e.Policy != "" {
		id += "/" + e.Policy
	}
	if e.CfgKey != "" {
		id += "[" + e.CfgKey + "]"
	}
	if e.Cycle > 0 {
		return fmt.Sprintf("harness: %s: %s failed at cycle %d: %v", id, e.Phase, e.Cycle, e.Err)
	}
	return fmt.Sprintf("harness: %s: %s failed: %v", id, e.Phase, e.Err)
}

// Unwrap exposes the cause chain for errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Detail renders the error plus its diagnostic snapshot and, for panics,
// the recovered stack — the form CLIs print to stderr.
func (e *RunError) Detail() string {
	s := e.Error()
	if e.Snapshot != "" {
		s += "\nmachine state at abort:\n" + indent(e.Snapshot)
	}
	if e.Stack != "" {
		s += "\nrecovered stack:\n" + indent(e.Stack)
	}
	return s
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
