package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/store"
)

// storeRunner returns a tiny-machine runner with a persistent store
// attached over dir.
func storeRunner(t *testing.T, dir string) (*Runner, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{LeasePoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	r := journalRunner()
	r.AttachStore(st)
	return r, st
}

func TestStoreBackedMemoPersistsAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	r1, st1 := storeRunner(t, dir)
	a, err := r1.Run(ctx, "S2", sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Executions() != 1 || st1.Len() != 1 {
		t.Fatalf("execs=%d store=%d, want 1/1", r1.Executions(), st1.Len())
	}

	// A second runner over the same directory — a restarted process, or a
	// replica — must serve the point from the store without simulating.
	r2, _ := storeRunner(t, dir)
	b, err := r2.Run(ctx, "S2", sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Executions() != 0 {
		t.Fatalf("store-committed point re-simulated (%d executions)", r2.Executions())
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.IPC() != b.IPC() {
		t.Fatalf("store round-trip changed the result: %+v vs %+v", a, b)
	}
}

func TestStoreSingleFlightAcrossRunners(t *testing.T) {
	// Two runners (two store handles, one directory) race the same key
	// concurrently: the cross-process lease must let exactly one execute.
	dir := t.TempDir()
	ctx := context.Background()
	r1, _ := storeRunner(t, dir)
	r2, _ := storeRunner(t, dir)

	var wg sync.WaitGroup
	runs := []*Runner{r1, r2, r1, r2}
	errs := make([]error, len(runs))
	for i, r := range runs {
		wg.Add(1)
		go func(i int, r *Runner) {
			defer wg.Done()
			_, errs[i] = r.Run(ctx, "S2", sim.Baseline{})
		}(i, r)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if total := r1.Executions() + r2.Executions(); total != 1 {
		t.Fatalf("concurrent same-key runs across two runners executed %d times, want exactly 1", total)
	}
}

func TestStoreFailedRunNotCommitted(t *testing.T) {
	dir := t.TempDir()
	r, st := storeRunner(t, dir)
	r.Timeout = time.Nanosecond // every run fails with ErrTimeout

	_, err := r.Run(context.Background(), "S2", sim.Baseline{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if st.Len() != 0 {
		t.Fatalf("failed run committed to the store (%d entries)", st.Len())
	}
	// And the failure is classified transient: a retry is allowed to
	// succeed.
	r.Timeout = 0
	if _, err := r.Run(context.Background(), "S2", sim.Baseline{}); err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if st.Len() != 1 {
		t.Fatalf("retried success not committed (%d entries)", st.Len())
	}
}

func TestTransientClassification(t *testing.T) {
	wrap := func(sentinel error) error {
		return &RunError{Bench: "S2", Policy: "baseline", Phase: PhaseRun,
			Err: fmt.Errorf("wrapped: %w", sentinel)}
	}
	cases := []struct {
		name      string
		err       error
		transient bool
		kind      string
	}{
		{"nil", nil, false, ""},
		{"watchdog", wrap(ErrWatchdog), true, "watchdog"},
		{"timeout", wrap(ErrTimeout), true, "timeout"},
		{"panic", wrap(ErrPanic), true, "panic"},
		{"badconfig", wrap(ErrBadConfig), false, "badconfig"},
		{"unknownbench", wrap(ErrUnknownBench), false, "unknownbench"},
		{"client-cancel", wrap(context.Canceled), false, "canceled"},
		{"client-deadline", wrap(context.DeadlineExceeded), false, "deadline"},
		{"unclassified", errors.New("mystery"), false, "other"},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.transient {
			t.Errorf("%s: Transient = %v, want %v", tc.name, got, tc.transient)
		}
		if got := FailureKind(tc.err); got != tc.kind {
			t.Errorf("%s: FailureKind = %q, want %q", tc.name, got, tc.kind)
		}
	}
	// A panic that is ALSO a bad config (panic while validating) must stay
	// permanent: the badconfig classification wins.
	both := &RunError{Err: fmt.Errorf("%w: %w", ErrBadConfig, ErrPanic)}
	if Transient(both) {
		t.Error("badconfig+panic classified transient; deterministic failures must never retry")
	}
}

func TestJournalReportCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	good := `{"v":1,"key":"a|b|c","result":{"Policy":"baseline","Cycles":10,"Instructions":5}}`
	bad := `{"v":1,"key":`
	invalid := `{"v":9,"key":"x","result":{}}`
	partial := `{"v":1,"key":"tail`
	content := good + "\n" + bad + "\n" + invalid + "\n" + partial // no trailing newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rep := j.Report()
	if rep.Loaded != 1 || rep.Skipped != 2 || rep.TruncatedBytes != int64(len(partial)) {
		t.Fatalf("report = %+v, want {Loaded:1 Skipped:2 TruncatedBytes:%d}", rep, len(partial))
	}

	// AttachJournal surfaces the same report to the caller.
	r := journalRunner()
	if got := r.AttachJournal(j); got != rep {
		t.Fatalf("AttachJournal report %+v != journal report %+v", got, rep)
	}
}

func TestJournalRecordIsDurableBeforeReturn(t *testing.T) {
	// The fsync-on-record rule: once Record returns, the full line must be
	// on disk — readable by a second process — with no Close in between.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Record("k|fp|S2|baseline", &sim.Result{Policy: "baseline", Cycles: 3, Instructions: 9})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rep := j2.Report(); rep.Loaded != 1 || rep.Skipped != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("acknowledged record not cleanly on disk: %+v", rep)
	}
}
