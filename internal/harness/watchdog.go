package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// startWatchdog monitors one run for forward progress: every tick it reads
// the GPU's published committed-instruction count (an atomic — the only
// cross-goroutine view of a running machine) and cancels the run's context
// with an ErrWatchdog cause when two consecutive ticks observe the same
// value. The simulation goroutine notices the cancellation at its next
// window boundary and returns the error itself, so all diagnostic state
// (cycle, StateDump) is read race-free by the goroutine that owns the
// machine.
//
// The returned stop function must be called when the run ends; it waits for
// the watchdog goroutine to exit.
func startWatchdog(cancel context.CancelCauseFunc, g *sim.GPU, tick time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		// Seed below any real count so the first tick never trips: the run
		// gets at least one full tick to publish its first checkpoint.
		last := int64(-1)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				p := g.Progress()
				if p == last {
					cancel(fmt.Errorf("%w: %d instructions committed after a further %v",
						ErrWatchdog, p, tick))
					return
				}
				last = p
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}
