package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/store"
)

// journalRecord is one completed memo entry in the JSONL artifact. The key
// embeds the full config fingerprint, so replaying a journal written under
// a different configuration (or with chaos armed) can never alias a clean
// entry — the keys simply won't match.
type journalRecord struct {
	V      int         `json:"v"`
	Key    string      `json:"key"`
	Result *sim.Result `json:"result"`
}

const journalVersion = 1

// Journal checkpoints completed simulation results to an append-only JSONL
// file so an interrupted sweep resumes where it stopped: attach one to a
// Runner and every memoised success is persisted; on the next run the
// journal preloads the memo cache and only the missing points re-simulate.
//
// Loading is corruption-tolerant: a truncated tail line (the process died
// mid-write) is silently dropped, and interior records that fail to parse
// are skipped with a warning — a damaged journal costs re-simulation, never
// a failed sweep.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	entries  map[string]*sim.Result
	warnings []string
	report   JournalReport
	writeErr error
}

// JournalReport quantifies what loading a journal found, so callers
// (lbserve's /v1/stats, the resume tests) can assert on recovery instead
// of grepping warnings.
type JournalReport struct {
	// Loaded counts usable records preloaded into the memo cache.
	Loaded int `json:"loaded"`
	// Skipped counts interior records dropped as unparsable or invalid.
	Skipped int `json:"skipped"`
	// TruncatedBytes is the size of the partial tail record dropped when
	// the previous writer died mid-append (0 for a clean file).
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// OpenJournal opens (creating if needed) the journal at path and loads its
// valid records. If the file ends mid-record, the partial tail is truncated
// away so subsequent appends start on a clean line boundary.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("harness: opening journal: %w", err)
	}
	j := &Journal{f: f, path: path, entries: map[string]*sim.Result{}}
	if err := j.load(); err != nil {
		f.Close() //lbvet:errok — the load error is the one the caller acts on; the handle is read-only at this point
		return nil, err
	}
	return j, nil
}

// load reads every record, tolerating a truncated tail and skipping bad
// interior lines, then positions the file for appending.
func (j *Journal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("harness: reading journal %s: %w", j.path, err)
	}
	keep := int64(len(data))
	if n := strings.LastIndexByte(string(data), '\n'); n < len(data)-1 {
		// The file does not end on a line boundary: the last write was cut
		// short. Drop the partial record and truncate so the next append
		// cannot fuse two records into one garbage line.
		keep = int64(n + 1)
		j.report.TruncatedBytes = int64(len(data)) - keep
		j.warnings = append(j.warnings,
			fmt.Sprintf("%s: dropped truncated tail record (%d bytes)", j.path, int64(len(data))-keep))
	}
	for i, line := range strings.Split(string(data[:keep]), "\n") {
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			j.report.Skipped++
			j.warnings = append(j.warnings,
				fmt.Sprintf("%s:%d: skipping unparsable record: %v", j.path, i+1, err))
			continue
		}
		if rec.V != journalVersion || rec.Key == "" || rec.Result == nil {
			j.report.Skipped++
			j.warnings = append(j.warnings,
				fmt.Sprintf("%s:%d: skipping invalid record (v=%d, key=%q)", j.path, i+1, rec.V, rec.Key))
			continue
		}
		j.entries[rec.Key] = rec.Result
		j.report.Loaded++
	}
	if err := j.f.Truncate(keep); err != nil {
		return fmt.Errorf("harness: truncating journal %s: %w", j.path, err)
	}
	if _, err := j.f.Seek(keep, io.SeekStart); err != nil {
		return fmt.Errorf("harness: seeking journal %s: %w", j.path, err)
	}
	return nil
}

// Entries returns the loaded (and since-recorded) results by memo key.
func (j *Journal) Entries() map[string]*sim.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]*sim.Result, len(j.entries))
	for k, v := range j.entries {
		out[k] = v
	}
	return out
}

// Warnings returns the non-fatal problems found while loading.
func (j *Journal) Warnings() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.warnings...)
}

// Report returns the load report captured when the journal was opened.
func (j *Journal) Report() JournalReport {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Record appends one completed result and fsyncs it before returning —
// the same commit point as the store's segments (store.SyncCommit), so a
// power loss can never silently drop a point the sweep already counts as
// checkpointed. Failures are sticky (see Err) but deliberately do not fail
// the simulation that produced the result: a full disk costs resumability,
// not the sweep.
func (j *Journal) Record(key string, res *sim.Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.writeErr != nil {
		return
	}
	if _, dup := j.entries[key]; dup {
		return
	}
	data, err := json.Marshal(journalRecord{V: journalVersion, Key: key, Result: res})
	if err != nil {
		j.writeErr = fmt.Errorf("harness: encoding journal record: %w", err)
		return
	}
	// One Write call per record keeps a crash from interleaving two
	// records; a cut-short write is exactly the truncated-tail case load
	// already tolerates.
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		j.writeErr = fmt.Errorf("harness: appending to journal %s: %w", j.path, err)
		return
	}
	if err := store.SyncCommit(j.f); err != nil {
		j.writeErr = fmt.Errorf("harness: fsync journal %s: %w", j.path, err)
		return
	}
	j.entries[key] = res
}

// Len returns the number of usable records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Err returns the first write failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Close(); err != nil && j.writeErr == nil {
		j.writeErr = err
	}
	return j.writeErr
}
