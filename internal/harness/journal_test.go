package harness

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

func journalRunner() *Runner {
	cfg := BenchConfig()
	cfg.GPU.NumSMs = 1
	cfg.GPU.DRAMBandwidthGBs = 44
	cfg.GPU.DRAMChannels = 2
	cfg.GPU.L2Bytes = 128 * 1024
	cfg.LB.WindowCycles = 2000
	return NewRunner(cfg, 2)
}

func TestJournalResumeSkipsCompletedPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx := context.Background()

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := journalRunner()
	r.AttachJournal(j)
	a, err := r.Run(ctx, "S2", sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Executions() != 1 || j.Len() != 1 {
		t.Fatalf("execs=%d journal=%d, want 1/1", r.Executions(), j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new runner, same journal file. The completed point
	// must come from the journal; only the new point simulates.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := journalRunner()
	r2.AttachJournal(j2)
	a2, err := r2.Run(ctx, "S2", sim.Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Executions() != 0 {
		t.Fatalf("journaled point re-simulated (%d executions)", r2.Executions())
	}
	if a2.Cycles != a.Cycles || a2.Instructions != a.Instructions {
		t.Fatalf("journal replay diverged: %+v vs %+v", a2, a)
	}
	if _, err := r2.Run(ctx, "BI", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	if r2.Executions() != 1 {
		t.Fatalf("incomplete point did not simulate (%d executions)", r2.Executions())
	}
	if j2.Len() != 2 {
		t.Fatalf("journal has %d entries, want 2", j2.Len())
	}
}

func TestJournalDifferentConfigNeverAliases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx := context.Background()

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := journalRunner()
	r.AttachJournal(j)
	if _, err := r.Run(ctx, "S2", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Same journal, different configuration: the key fingerprints differ,
	// so the stale entry must be ignored and the run re-simulated.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := journalRunner()
	r2.Cfg.GPU.L1Bytes = 96 * 1024
	r2.AttachJournal(j2)
	if _, err := r2.Run(ctx, "S2", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	if r2.Executions() != 1 {
		t.Fatal("changed config hit a stale journal entry")
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx := context.Background()

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := journalRunner()
	r.AttachJournal(j)
	if _, err := r.Run(ctx, "S2", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(ctx, "BI", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Cut the file mid-record, as a kill -9 during an append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("journal loaded %d entries from truncated file, want 1", j2.Len())
	}
	warned := false
	for _, w := range j2.Warnings() {
		if strings.Contains(w, "truncated tail") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no truncated-tail warning in %v", j2.Warnings())
	}

	// Appends after recovery must start on a clean line boundary.
	r2 := journalRunner()
	r2.AttachJournal(j2)
	if _, err := r2.Run(ctx, "BI", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 || len(j3.Warnings()) != 0 {
		t.Fatalf("post-recovery journal: %d entries, warnings %v; want 2 clean",
			j3.Len(), j3.Warnings())
	}
}

func TestJournalSkipsCorruptInteriorRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	ctx := context.Background()

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	r := journalRunner()
	r.AttachJournal(j)
	if _, err := r.Run(ctx, "S2", sim.Baseline{}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	garbage := "not json at all\n" + `{"v":99,"key":"future","result":null}` + "\n"
	if err := os.WriteFile(path, append([]byte(garbage), data...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("journal loaded %d entries, want the 1 valid record", j2.Len())
	}
	if len(j2.Warnings()) != 2 {
		t.Fatalf("warnings = %v, want one per bad record", j2.Warnings())
	}
}

func TestJournalRecordDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	res := &sim.Result{Cycles: 1}
	j.Record("k", res)
	j.Record("k", res)
	if j.Len() != 1 {
		t.Fatalf("duplicate key recorded twice (len=%d)", j.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 1 {
		t.Fatalf("journal file has %d lines, want 1", n)
	}
}
