package harness

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// tinyRunner is fast enough for unit tests: 1 SM, short windows.
func tinyRunner() *Runner {
	cfg := BenchConfig()
	cfg.GPU.NumSMs = 1
	cfg.GPU.DRAMBandwidthGBs = 44
	cfg.GPU.DRAMChannels = 2
	cfg.GPU.L2Bytes = 128 * 1024
	cfg.LB.WindowCycles = 2000
	return NewRunner(cfg, 4)
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 19 {
		t.Fatalf("experiments = %d, want 19 (3 tables + 15 figures + 1 extension)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("incomplete experiment %q", e.ID)
		}
	}
	if _, ok := ExperimentByID("fig12"); !ok {
		t.Fatal("fig12 missing")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestRunnerMemoisation(t *testing.T) {
	r := tinyRunner()
	a := r.MustRun("S2", sim.Baseline{})
	b := r.MustRun("S2", sim.Baseline{})
	if a != b {
		t.Fatal("identical runs not memoised")
	}
	c := r.MustRunCfg(cfgWithL1(r.Cfg, 192), "l1=192", "S2", sim.Baseline{})
	if c == a {
		t.Fatal("different cfgKey hit the same cache entry")
	}
}

func TestSentinelErrorChains(t *testing.T) {
	r := tinyRunner()
	ctx := context.Background()

	_, err := r.Run(ctx, "no-such-bench", sim.Baseline{})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("Run(unknown bench) error = %T, want *RunError", err)
	}
	if !errors.Is(err, ErrUnknownBench) {
		t.Fatalf("unknown-bench chain missing ErrUnknownBench: %v", err)
	}
	if re.Bench != "no-such-bench" || re.Phase != PhaseSetup {
		t.Fatalf("RunError identity = %q/%q, want no-such-bench/setup", re.Bench, re.Phase)
	}

	bad := r.Cfg
	bad.GPU.NumSMs = 0
	_, err = r.RunCfg(ctx, bad, "bad", "S2", sim.Baseline{})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad-config chain missing ErrBadConfig: %v", err)
	}
	if errors.Is(err, ErrUnknownBench) {
		t.Fatalf("bad-config chain wrongly matches ErrUnknownBench: %v", err)
	}

	_, err = r.RunProbe(ctx, "no-such-bench")
	if !errors.Is(err, ErrUnknownBench) {
		t.Fatalf("probe unknown-bench chain missing ErrUnknownBench: %v", err)
	}
	if !errors.As(err, &re) || re.Policy != "probe" {
		t.Fatalf("probe RunError = %+v, want Policy=probe", err)
	}

	if _, _, err := r.BestSWL(ctx, "no-such-bench"); !errors.Is(err, ErrUnknownBench) {
		t.Fatalf("BestSWL unknown-bench chain missing ErrUnknownBench: %v", err)
	}
}

func TestMustRunPanicsWithRunError(t *testing.T) {
	r := tinyRunner()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("MustRun(unknown bench) did not panic")
		}
		re, ok := p.(*RunError)
		if !ok {
			t.Fatalf("panic value = %T, want *RunError", p)
		}
		if !errors.Is(re, ErrUnknownBench) {
			t.Fatalf("panic chain missing ErrUnknownBench: %v", re)
		}
	}()
	r.MustRun("no-such-bench", sim.Baseline{})
}

func TestFailedRunsAreNotMemoised(t *testing.T) {
	r := tinyRunner()
	ctx := context.Background()
	if _, err := r.Run(ctx, "no-such-bench", sim.Baseline{}); err == nil {
		t.Fatal("expected failure")
	}
	r.mu.Lock()
	n := len(r.cache)
	r.mu.Unlock()
	if n != 0 {
		t.Fatalf("failed run left %d memo entries", n)
	}
}

func TestBestSWLNeverWorseThanFullResidency(t *testing.T) {
	r := tinyRunner()
	lim, best := r.MustBestSWL("CF")
	if lim < 1 {
		t.Fatalf("best limit = %d", lim)
	}
	base := r.MustRun("CF", sim.Baseline{})
	// Best-SWL's sweep includes the full-residency limit, which matches
	// baseline scheduling up to CTA age ordering; allow small tolerance.
	if best.IPC() < base.IPC()*0.9 {
		t.Fatalf("Best-SWL %.3f far below baseline %.3f", best.IPC(), base.IPC())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "Demo", Header: []string{"A", "B"},
		Notes: []string{"a note"},
	}
	tab.AddRow("x", "1.00")
	tab.AddRow("longer,cell", "2.00")

	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "longer,cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint missing %q in:\n%s", want, out)
		}
	}

	csv := tab.CSV()
	if !strings.Contains(csv, `"longer,cell"`) {
		t.Fatalf("CSV quoting broken:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "A,B\n") {
		t.Fatalf("CSV header broken:\n%s", csv)
	}

	md := tab.Markdown()
	if !strings.Contains(md, "| A | B |") || !strings.Contains(md, "_a note_") {
		t.Fatalf("markdown broken:\n%s", md)
	}
}

func TestProbeExperimentsRun(t *testing.T) {
	r := tinyRunner()
	p := r.MustRunProbe("BI")
	if len(p.Loads) == 0 {
		t.Fatal("probe saw no loads")
	}
	// BI has a streaming load: the probe must classify at least one load
	// as streaming and at least one as reused.
	streams, reused := 0, 0
	for _, l := range p.Loads {
		if l.Streaming() {
			streams++
		} else if l.AvgReusedBytes > 0 {
			reused++
		}
	}
	if streams == 0 || reused == 0 {
		t.Fatalf("classification degenerate: %+v", p.Loads)
	}
	if r.MustRunProbe("BI") != p {
		t.Fatal("probe results not memoised")
	}
}

func TestSmallExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment end-to-end is slow")
	}
	r := tinyRunner()
	// The two config tables are cheap; fig1 exercises the full benchmark
	// list on the tiny runner.
	for _, id := range []string{"table1", "table3", "fig1"} {
		e, _ := ExperimentByID(id)
		tab := e.Run(r)
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestSpeedupAndGeoMean(t *testing.T) {
	a := &sim.Result{Cycles: 100, Instructions: 300}
	b := &sim.Result{Cycles: 100, Instructions: 200}
	if got := Speedup(a, b); got != 1.5 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(a, &sim.Result{Cycles: 100}); got != 0 {
		t.Fatalf("Speedup vs zero = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Fatalf("GeoMean = %v", got)
	}
}
