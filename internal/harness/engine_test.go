package harness

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/check"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// The acceptance tests of the fault-tolerant run engine: one injected
// fault (panic, DRAM livelock, cancellation) must terminate a full
// 20-benchmark sweep promptly, report exactly the faulted point as a
// *RunError, and leave every other benchmark's metrics bit-identical to
// the committed golden snapshot.

const acceptGoldenPath = "../check/testdata/golden.json"

// acceptWindows must match the golden snapshot's capture length.
const acceptWindows = 3

var (
	acceptOnce   sync.Once
	acceptRunner *Runner
	acceptGolden *check.Snapshot
	acceptErr    error
)

// acceptSetup shares one runner (and the loaded golden snapshot) across the
// acceptance tests so the 19 clean benchmarks simulate once and memoise.
func acceptSetup(t *testing.T) (*Runner, *check.Snapshot) {
	t.Helper()
	if testing.Short() {
		t.Skip("acceptance sweeps run all 20 benchmarks; skipped in -short")
	}
	acceptOnce.Do(func() {
		acceptRunner = NewRunner(BenchConfig(), acceptWindows)
		acceptGolden, acceptErr = check.LoadSnapshot(acceptGoldenPath)
	})
	if acceptErr != nil {
		t.Fatalf("loading golden snapshot: %v", acceptErr)
	}
	return acceptRunner, acceptGolden
}

// assertSweepMatchesGolden requires that every benchmark except victim
// succeeded with metrics exactly equal to the golden baseline entries.
func assertSweepMatchesGolden(t *testing.T, s *Sweep, results map[string]*sim.Result, golden *check.Snapshot, victim string) {
	t.Helper()
	for i, bench := range s.Benches {
		if bench == victim {
			continue
		}
		if s.Errs[i] != nil {
			t.Errorf("clean benchmark %s failed: %v", bench, s.Errs[i])
			continue
		}
		want, ok := golden.Entries[bench+"|baseline"]
		if !ok {
			t.Fatalf("golden snapshot has no entry for %s|baseline", bench)
		}
		if got := check.MetricsOf(results[bench]); got != want {
			t.Errorf("%s: metrics diverged from golden\n  golden %+v\n  got    %+v", bench, want, got)
		}
	}
}

// runFaultSweep sweeps every benchmark under baseline, applying chaosFor's
// config (and optionally a dedicated runner) to the victim benchmark only.
func runFaultSweep(r *Runner, victimRunner *Runner, victim string, chaosCfg config.Chaos) (*Sweep, map[string]*sim.Result) {
	var mu sync.Mutex
	results := map[string]*sim.Result{}
	s := r.ForEachBench(context.Background(), func(ctx context.Context, bench string) (float64, error) {
		rr, cfg := r, r.Cfg
		if bench == victim {
			rr = victimRunner
			cfg = victimRunner.Cfg
			cfg.Chaos = chaosCfg
		}
		res, err := rr.RunCfg(ctx, cfg, "", bench, sim.Baseline{})
		if err != nil {
			return 0, err
		}
		mu.Lock()
		results[bench] = res
		mu.Unlock()
		return res.IPC(), nil
	})
	return s, results
}

func TestAcceptanceChaosPanicSweep(t *testing.T) {
	r, golden := acceptSetup(t)
	victim := workload.Names()[0]

	s, results := runFaultSweep(r, r, victim, config.Chaos{
		Enabled: true, Seed: 1, PanicStage: "sm", PanicCycle: 1000,
	})

	if failed := s.Failed(); len(failed) != 1 || failed[0] != victim {
		t.Fatalf("failed points = %v, want exactly [%s]", failed, victim)
	}
	var re *RunError
	if !errors.As(s.Err(), &re) {
		t.Fatalf("sweep error %T does not chain a *RunError: %v", s.Err(), s.Err())
	}
	if re.Bench != victim {
		t.Errorf("RunError names bench %q, want %q", re.Bench, victim)
	}
	if !errors.Is(re, ErrPanic) {
		t.Errorf("chaos panic not classified as ErrPanic: %v", re)
	}
	if !strings.Contains(re.Err.Error(), "chaos: injected panic") {
		t.Errorf("cause does not carry the injected panic message: %v", re.Err)
	}
	if re.Stack == "" {
		t.Error("panic RunError carries no recovered stack")
	}
	if re.Snapshot == "" {
		t.Error("panic RunError carries no machine-state snapshot")
	}
	assertSweepMatchesGolden(t, s, results, golden, victim)
}

func TestAcceptanceWatchdogLivelockSweep(t *testing.T) {
	r, golden := acceptSetup(t)
	victim := workload.Names()[1]

	// The victim runs to completion (Windows=0): with DRAM frozen its warps
	// can never finish, cycles keep retiring with zero commits — a true
	// livelock only the forward-progress watchdog can end.
	wd := NewRunner(r.Cfg, 0)
	wd.WatchdogTick = 25 * time.Millisecond
	wd.Timeout = 30 * time.Second // backstop so a broken watchdog cannot hang the suite

	s, results := runFaultSweep(r, wd, victim, config.Chaos{
		Enabled: true, Seed: 1, StallDRAMCycle: 1000,
	})

	if failed := s.Failed(); len(failed) != 1 || failed[0] != victim {
		t.Fatalf("failed points = %v, want exactly [%s]", failed, victim)
	}
	var re *RunError
	if !errors.As(s.Err(), &re) {
		t.Fatalf("sweep error %T does not chain a *RunError: %v", s.Err(), s.Err())
	}
	if !errors.Is(re, ErrWatchdog) {
		t.Fatalf("livelocked run not aborted by the watchdog: %v", re)
	}
	if re.Phase != PhaseRun || re.Cycle == 0 {
		t.Errorf("watchdog RunError phase/cycle = %s/%d, want run/>0", re.Phase, re.Cycle)
	}
	if !strings.Contains(re.Snapshot, "dram") {
		t.Errorf("state dump missing DRAM diagnostics:\n%s", re.Snapshot)
	}
	assertSweepMatchesGolden(t, s, results, golden, victim)
}

func TestAcceptanceCancellationSweep(t *testing.T) {
	_, golden := acceptSetup(t)
	victim := workload.Names()[2]

	// A private runner with an empty memo: the shared one may already hold
	// the victim's clean result, and a memo hit would (correctly) satisfy
	// the run before cancellation is ever consulted.
	r := NewRunner(BenchConfig(), acceptWindows)

	// Attach a journal so the test can also prove a cancelled run leaves no
	// partial checkpoint behind.
	j, err := OpenJournal(t.TempDir() + "/sweep.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	r.AttachJournal(j)

	victimCtx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the victim ever starts

	var mu sync.Mutex
	results := map[string]*sim.Result{}
	s := r.ForEachBench(context.Background(), func(ctx context.Context, bench string) (float64, error) {
		if bench == victim {
			ctx = victimCtx
		}
		res, err := r.RunCfg(ctx, r.Cfg, "", bench, sim.Baseline{})
		if err != nil {
			return 0, err
		}
		mu.Lock()
		results[bench] = res
		mu.Unlock()
		return res.IPC(), nil
	})

	if failed := s.Failed(); len(failed) != 1 || failed[0] != victim {
		t.Fatalf("failed points = %v, want exactly [%s]", failed, victim)
	}
	var re *RunError
	if !errors.As(s.Err(), &re) {
		t.Fatalf("sweep error %T does not chain a *RunError: %v", s.Err(), s.Err())
	}
	if !errors.Is(re, context.Canceled) {
		t.Errorf("cancelled run does not chain context.Canceled: %v", re)
	}
	assertSweepMatchesGolden(t, s, results, golden, victim)

	// Determinism of recovery: the cancelled point must leave no memo or
	// journal entry, and a clean re-run must still reproduce the golden
	// metrics exactly — cancellation can never mask nondeterminism.
	r.mu.Lock()
	for key := range r.cache {
		if strings.Contains(key, "|"+victim+"|") {
			t.Errorf("cancelled run left memo entry %q", key)
		}
	}
	r.mu.Unlock()
	for key := range j.Entries() {
		if strings.Contains(key, "|"+victim+"|") {
			t.Errorf("cancelled run left journal entry %q", key)
		}
	}

	res, err := r.RunCfg(context.Background(), r.Cfg, "", victim, sim.Baseline{})
	if err != nil {
		t.Fatalf("clean re-run of cancelled point failed: %v", err)
	}
	want := golden.Entries[victim+"|baseline"]
	if got := check.MetricsOf(res); got != want {
		t.Errorf("re-run after cancellation diverged from golden\n  golden %+v\n  got    %+v", want, got)
	}
}

func TestTimeoutAbortsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timeout test simulates until the deadline")
	}
	cfg := BenchConfig()
	cfg.GPU.NumSMs = 1
	r := NewRunner(cfg, 0) // run to completion: long enough to hit the deadline
	r.Timeout = time.Millisecond

	_, err := r.Run(context.Background(), "S2", sim.Baseline{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline overrun not classified ErrTimeout: %v", err)
	}
	var re *RunError
	if !errors.As(err, &re) || re.Phase != PhaseRun {
		t.Fatalf("timeout error = %+v, want *RunError in run phase", err)
	}
}
