package harness

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestRunCfgNoConfigAliasing is the regression test for the memo-key bug
// where RunCfg keyed runs by (cfgKey, bench, policy-name) only: two
// different configurations sharing a cfgKey silently returned the first
// run's result. The key now embeds a full config fingerprint.
func TestRunCfgNoConfigAliasing(t *testing.T) {
	r := NewRunner(BenchConfig(), 2)

	small := r.Cfg
	small.GPU.L1Bytes = 16 * 1024
	large := r.Cfg
	large.GPU.L1Bytes = 128 * 1024

	// Identical cfgKey ("") and (bench, policy) on purpose.
	resSmall := r.MustRunCfg(small, "", "S2", sim.Baseline{})
	resLarge := r.MustRunCfg(large, "", "S2", sim.Baseline{})

	if resSmall == resLarge {
		t.Fatal("different configs aliased to one memoised result")
	}
	if resSmall.L1.LoadHits == resLarge.L1.LoadHits && resSmall.Cycles == resLarge.Cycles {
		t.Fatal("8x L1 capacity changed nothing; runs likely aliased")
	}

	// Same config twice must still memoise (pointer-identical result).
	if again := r.MustRunCfg(small, "", "S2", sim.Baseline{}); again != resSmall {
		t.Fatal("identical config re-ran instead of hitting the memo")
	}
}

// TestRunCfgKeyIncludesPolicy guards the rest of the key.
func TestRunCfgKeyIncludesPolicy(t *testing.T) {
	r := NewRunner(BenchConfig(), 2)
	a := r.MustRun("S2", sim.Baseline{})
	b := r.MustRun("BI", sim.Baseline{})
	if a == b {
		t.Fatal("different benchmarks aliased")
	}
}
