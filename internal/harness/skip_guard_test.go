package harness

import (
	"errors"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestWatchdogFiresUnderSkipping pins the interaction between the
// forward-progress watchdog and the event-driven run loop: a chaos-stalled
// DRAM livelocks the machine into a wedge the skipping engine fast-forwards
// through checkpoint by checkpoint, and skipped spans publish no new
// progress (committed instructions cannot change across a skip, by the
// event contract). A naive implementation could have credited the rapidly
// advancing cycle count as liveness; the watchdog must still see a flat
// progress counter and abort the run.
func TestWatchdogFiresUnderSkipping(t *testing.T) {
	cfg := BenchConfig()
	cfg.Strict = false
	cfg.Chaos = config.Chaos{Enabled: true, Seed: 1, StallDRAMCycle: 1000}

	r := NewRunner(cfg, 0) // Windows=0: run to completion, which never comes
	r.WatchdogTick = 25 * time.Millisecond
	r.Timeout = 30 * time.Second // backstop so a broken watchdog cannot hang the suite

	_, err := r.Run(t.Context(), "S2", sim.Baseline{})
	if err == nil {
		t.Fatal("livelocked skipping run finished without error")
	}
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("livelocked skipping run aborted with %v, want ErrWatchdog", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T does not chain a *RunError: %v", err, err)
	}
	if re.Cycle <= 1000 {
		t.Errorf("watchdog aborted at cycle %d; expected the skipping loop to have advanced past the stall point", re.Cycle)
	}
}

// TestMemoStrictAliasing proves the memo deliberately aliases the two run
// modes: results are bit-identical strict vs skipping (test-enforced), so
// a skipping run may satisfy a strict request from cache and vice versa —
// cfgFingerprint canonicalises Strict away exactly like GPU.Workers.
func TestMemoStrictAliasing(t *testing.T) {
	skip := BenchConfig()
	skip.Strict = false
	strict := skip
	strict.Strict = true

	r := NewRunner(skip, 2)
	first := r.MustRunCfg(skip, "", "S2", sim.Baseline{})
	if n := r.Executions(); n != 1 {
		t.Fatalf("first run executed %d simulations, want 1", n)
	}
	second := r.MustRunCfg(strict, "", "S2", sim.Baseline{})
	if n := r.Executions(); n != 1 {
		t.Fatalf("strict request after skipping run executed %d simulations, want 1 (memo aliased)", n)
	}
	if first != second {
		t.Fatal("strict request returned a different result pointer than the memoised skipping run")
	}
}
