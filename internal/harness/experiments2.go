package harness

import (
	"context"
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/energy"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/stats"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// ExtCCWS is a reproduction extension (not a paper figure): it checks the
// paper's premise that the Best-SWL oracle upper-bounds dynamic warp
// throttling (CCWS, Rogers et al. MICRO '12), and situates Linebacker
// against both.
func ExtCCWS(r *Runner) *Table {
	t := &Table{ID: "ext-ccws", Title: "CCWS vs Best-SWL vs Linebacker (normalized to Best-SWL)",
		Header: []string{"App", "Baseline", "CCWS", "Linebacker"}}
	var bs, cs, ls []float64
	for _, name := range workload.Names() {
		_, swl := r.MustBestSWL(name)
		b := Speedup(r.MustRun(name, sim.Baseline{}), swl)
		c := Speedup(r.MustRun(name, schemes.CCWS{}), swl)
		l := Speedup(r.MustRun(name, lb()), swl)
		bs = append(bs, b)
		cs = append(cs, c)
		ls = append(ls, l)
		t.AddRow(name, f2(b), f2(c), f2(l))
	}
	t.AddRow("GM", f2(GeoMean(bs)), f2(GeoMean(cs)), f2(GeoMean(ls)))
	t.Notes = append(t.Notes, "paper (Section 2.4): Best-SWL has been shown to outperform CCWS; expect CCWS between baseline and Best-SWL")
	return t
}

// fig13Schemes are the Figure 13 columns (B, S, P, C, L).
func fig13Schemes(r *Runner, name string) []struct {
	tag string
	res *sim.Result
} {
	_, swl := r.MustBestSWL(name)
	return []struct {
		tag string
		res *sim.Result
	}{
		{"B", r.MustRun(name, sim.Baseline{})},
		{"S", swl},
		{"P", r.MustRun(name, schemes.PCAL{})},
		{"C", r.MustRun(name, schemes.CERF{})},
		{"L", r.MustRun(name, lb())},
	}
}

// Fig13 reproduces the access-outcome breakdown per scheme.
func Fig13(r *Runner) *Table {
	t := &Table{ID: "fig13", Title: "Load request breakdown per scheme",
		Header: []string{"App", "Scheme", "Hit", "Miss", "Bypass", "RegHit", "Hit+RegHit"}}
	aggHit := map[string][]float64{}
	aggReg := map[string][]float64{}
	for _, name := range workload.Names() {
		for _, s := range fig13Schemes(r, name) {
			total := float64(s.res.TotalLoadReqs())
			if total == 0 {
				continue
			}
			hit := float64(s.res.Loads[sim.OutHit]) / total
			miss := float64(s.res.Loads[sim.OutMiss]+s.res.Loads[sim.OutPendingHit]) / total
			byp := float64(s.res.Loads[sim.OutBypass]) / total
			reg := float64(s.res.Loads[sim.OutRegHit]) / total
			aggHit[s.tag] = append(aggHit[s.tag], hit+reg)
			aggReg[s.tag] = append(aggReg[s.tag], reg)
			t.AddRow(name, s.tag, pct(hit), pct(miss), pct(byp), pct(reg), pct(hit+reg))
		}
	}
	for _, tag := range []string{"B", "S", "P", "C", "L"} {
		t.AddRow("Avg", tag, "", "", "", pct(stats.Mean(aggReg[tag])), pct(stats.Mean(aggHit[tag])))
	}
	t.Notes = append(t.Notes,
		"paper: Linebacker combined hit 65.1% with 40.4% Reg hits; CERF 57.9%",
		"CERF's extra capacity is modelled inside the enlarged L1, so its victim hits appear as L1 hits here")
	return t
}

// Fig14 reproduces the L1-size sweep. The GM row aggregates through the
// paired helper: each scheme arm divides by the baseline of the *same*
// benchmark, and an arm that failed on a bench its baseline completed (or
// vice versa) renders as an error cell instead of a quietly smaller mean.
func Fig14(r *Runner) *Table {
	t := &Table{ID: "fig14", Title: "GM speedup vs baseline at each L1 size",
		Header: []string{"L1(KB)", "CERF", "Linebacker"}}
	ctx := context.Background()
	for _, kb := range []int{16, 48, 64, 96, 128} {
		cfg := cfgWithL1(r.Cfg, kb)
		key := fmt.Sprintf("l1=%d", kb)
		sweepOf := func(mk func() sim.Policy) *Sweep {
			return r.ForEachBench(ctx, func(ctx context.Context, name string) (float64, error) {
				res, err := r.RunCfg(ctx, cfg, key, name, mk())
				if err != nil {
					return 0, err
				}
				return res.IPC(), nil
			})
		}
		base := sweepOf(func() sim.Policy { return sim.Baseline{} })
		cerf := sweepOf(func() sim.Policy { return schemes.CERF{} })
		lbs := sweepOf(func() sim.Policy { return lb() })
		t.AddRow(fmt.Sprint(kb), pairedGMCell(t, cerf, base), pairedGMCell(t, lbs, base))
	}
	t.Notes = append(t.Notes, "paper: 16 KB → CERF 1.581, LB 1.780; 128 KB → CERF 1.061, LB 1.120; LB wins at every size")
	return t
}

// pairedGMCell renders a paired speedup geomean as a table cell: the value
// (annotated with n when pairs dropped), or an error marker plus a note
// naming the failure instead of a misleading number.
func pairedGMCell(t *Table, arm, base *Sweep) string {
	gm, n, err := PairedSpeedupGM(arm, base)
	if err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("GM unavailable: %v", err))
		return "ERR"
	}
	if n < len(arm.Benches) {
		return fmt.Sprintf("%s (n=%d)", f2(gm), n)
	}
	return f2(gm)
}

// Fig15 reproduces the combination study.
func Fig15(r *Runner) *Table {
	t := &Table{ID: "fig15", Title: "Combinations of warp scheduling and cache structures (normalized to Best-SWL)",
		Header: []string{"App", "Baseline+SVC", "PCAL+CERF", "PCAL+SVC", "LB", "LB+CacheExt"}}
	mk := func() []sim.Policy {
		return []sim.Policy{
			vc(), // Baseline+SVC == the Victim Caching configuration (Section 5.5)
			schemes.Combine("PCAL+CERF", schemes.CERF{}, schemes.PCAL{}),
			schemes.Combine("PCAL+SVC", schemes.PCAL{}, svc()),
			lb(),
			schemes.Combine("LB+CacheExt", schemes.CacheExt{}, lb()),
		}
	}
	sums := make([][]float64, 5)
	for _, name := range workload.Names() {
		_, swl := r.MustBestSWL(name)
		row := []string{name}
		for i, pol := range mk() {
			s := Speedup(r.MustRun(name, pol), swl)
			sums[i] = append(sums[i], s)
			row = append(row, f2(s))
		}
		t.AddRow(row...)
	}
	gm := []string{"GM"}
	for _, s := range sums {
		gm = append(gm, f2(GeoMean(s)))
	}
	t.AddRow(gm...)
	t.Notes = append(t.Notes, "paper GM: PCAL+CERF 1.213, PCAL+SVC 1.251, LB 1.290, LB+CacheExt 1.419; Baseline+SVC == Fig 11 Victim Caching")
	return t
}

// Fig16 reproduces the register file bank conflict comparison.
func Fig16(r *Runner) *Table {
	t := &Table{ID: "fig16", Title: "Register file bank conflicts (normalized to baseline, per instruction)",
		Header: []string{"App", "CERF", "Linebacker"}}
	var cs, ls []float64
	for _, name := range workload.Names() {
		base := r.MustRun(name, sim.Baseline{})
		cerf := r.MustRun(name, schemes.CERF{})
		lbr := r.MustRun(name, lb())
		norm := func(res *sim.Result) float64 {
			if res.Instructions == 0 || base.Instructions == 0 || base.RF.BankConflicts == 0 {
				return 0
			}
			per := float64(res.RF.BankConflicts) / float64(res.Instructions)
			basePer := float64(base.RF.BankConflicts) / float64(base.Instructions)
			return per / basePer
		}
		c, l := norm(cerf), norm(lbr)
		cs = append(cs, c)
		ls = append(ls, l)
		t.AddRow(name, f2(c), f2(l))
	}
	t.AddRow("Avg", f2(stats.Mean(cs)), f2(stats.Mean(ls)))
	t.Notes = append(t.Notes, "paper: CERF +52.4%, Linebacker +29.1% over baseline; normalized per retired instruction because runs are fixed-cycle")
	return t
}

// Fig17 reproduces the off-chip traffic comparison.
func Fig17(r *Runner) *Table {
	t := &Table{ID: "fig17", Title: "Off-chip memory traffic per instruction (normalized to baseline)",
		Header: []string{"App", "CERF", "Linebacker", "LB backup+restore share"}}
	var cs, ls, ov []float64
	for _, name := range workload.Names() {
		base := r.MustRun(name, sim.Baseline{})
		cerf := r.MustRun(name, schemes.CERF{})
		lbr := r.MustRun(name, lb())
		perInstr := func(res *sim.Result) float64 {
			if res.Instructions == 0 {
				return 0
			}
			return float64(res.DRAM.TotalBytes()) / float64(res.Instructions)
		}
		b := perInstr(base)
		c, l := perInstr(cerf)/b, perInstr(lbr)/b
		share := 0.0
		if tot := lbr.DRAM.TotalBytes(); tot > 0 {
			share = float64(lbr.DRAM.RegBackupBytes+lbr.DRAM.RegRestoreBytes) / float64(tot)
		}
		cs = append(cs, c)
		ls = append(ls, l)
		ov = append(ov, share)
		t.AddRow(name, f2(c), f2(l), pct(share))
	}
	t.AddRow("Avg", f2(stats.Mean(cs)), f2(stats.Mean(ls)), pct(stats.Mean(ov)))
	t.Notes = append(t.Notes, "paper: LB reduces traffic 24.0% vs baseline, 4.6% more than CERF; backup/restore <1% everywhere")
	return t
}

// Fig18 reproduces the energy comparison.
func Fig18(r *Runner) *Table {
	t := &Table{ID: "fig18", Title: "Energy per instruction (normalized to baseline)",
		Header: []string{"App", "CERF", "Linebacker"}}
	var cs, ls []float64
	for _, name := range workload.Names() {
		base := r.MustRun(name, sim.Baseline{})
		cerf := r.MustRun(name, schemes.CERF{})
		lbr := r.MustRun(name, lb())
		b := energy.PerInstruction(&r.Cfg, base)
		if b == 0 {
			continue
		}
		c := energy.PerInstruction(&r.Cfg, cerf) / b
		l := energy.PerInstruction(&r.Cfg, lbr) / b
		cs = append(cs, c)
		ls = append(ls, l)
		t.AddRow(name, f2(c), f2(l))
	}
	t.AddRow("Avg", f2(stats.Mean(cs)), f2(stats.Mean(ls)))
	t.Notes = append(t.Notes, "paper: Linebacker -22.1%, CERF -21.2% vs baseline; normalized per instruction (fixed-cycle runs)")
	return t
}
