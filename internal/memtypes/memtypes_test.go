package memtypes

import (
	"testing"
	"testing/quick"
)

func TestLineRounding(t *testing.T) {
	if Addr(0).Line() != 0 {
		t.Fatal("line of 0")
	}
	if Addr(127).Line() != 0 {
		t.Fatal("addr 127 should be in line 0")
	}
	if Addr(128).Line() != 128 {
		t.Fatal("addr 128 should start line 1")
	}
	if LineAddr(256).Addr() != 256 {
		t.Fatal("round trip")
	}
}

func TestLineAlwaysAligned(t *testing.T) {
	f := func(a uint64) bool {
		return uint64(Addr(a).Line())%LineSize == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Load: "load", Store: "store", RegBackup: "reg-backup", RegRestore: "reg-restore",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestHashPCRange(t *testing.T) {
	f := func(pc uint32) bool {
		h := HashPC(pc, 5)
		return h < 32 && h == HashPC(pc, 5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPCDistributes(t *testing.T) {
	// Sequential instruction addresses (4 apart) should spread over the
	// 32-entry LM table without pathological clustering.
	seen := map[uint32]int{}
	for i := 0; i < 32; i++ {
		seen[HashPC(uint32(0x100+i*4), 5)]++
	}
	if len(seen) < 16 {
		t.Fatalf("32 sequential PCs map to only %d LM rows", len(seen))
	}
}

// TestRequestPoolRoundTrip proves the pool's two contracts: a recycled Get
// returns a fully zeroed object (pool order must be invisible to the
// simulation), and a steady-state Get/Put round trip allocates nothing.
func TestRequestPoolRoundTrip(t *testing.T) {
	var p RequestPool
	r := p.Get()
	r.Line, r.Kind, r.SM, r.WarpID, r.PC = 0x1000, Store, 3, 7, 42
	r.IssueCycle, r.ExtraLatency, r.Meta = 99, 5, "stale"
	p.Put(r)
	if got := p.Get(); *got != (Request{}) {
		t.Fatalf("recycled Get returned non-zero Request: %+v", *got)
	} else {
		p.Put(got)
	}
	if n := p.Free(); n != 1 {
		t.Fatalf("Free() = %d, want 1", n)
	}
	perOp := testing.AllocsPerRun(4096, func() {
		req := p.Get()
		req.Line = 0x2000
		p.Put(req)
	})
	if perOp > 0 {
		t.Errorf("pool round trip allocates %.3f objects/op, want 0", perOp)
	}
}
