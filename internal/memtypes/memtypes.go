// Package memtypes defines the addresses, request kinds and line helpers
// shared by every level of the simulated memory hierarchy.
package memtypes

import "fmt"

// Addr is a byte address in the simulated global memory space.
type Addr uint64

// LineSize is the cache-line size in bytes (also the warp-register size).
const LineSize = 128

// LineAddr is a cache-line-aligned address.
type LineAddr uint64

// Line returns the line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a &^ (LineSize - 1)) }

// Addr returns the first byte address of the line.
func (l LineAddr) Addr() Addr { return Addr(l) }

// Kind distinguishes memory request types.
type Kind uint8

const (
	// Load is a global load.
	Load Kind = iota
	// Store is a global store.
	Store
	// RegBackup is a Linebacker register backup write to off-chip memory.
	RegBackup
	// RegRestore is a Linebacker register restore read from off-chip memory.
	RegRestore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	case RegBackup:
		return "reg-backup"
	case RegRestore:
		return "reg-restore"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Request is one line-granular memory request traveling below the L1.
type Request struct {
	// Line is the requested cache line.
	Line LineAddr
	// Kind is the request type.
	Kind Kind
	// SM identifies the issuing SM (for routing the response back).
	SM int
	// WarpID identifies the issuing warp within the SM (-1 for Linebacker
	// backup/restore traffic, which is not warp-bound).
	WarpID int
	// PC is the static instruction address of the issuing load/store.
	PC uint32
	// IssueCycle is the core cycle at which the request left the SM.
	IssueCycle int64
	// ExtraLatency is added to the requester's wake-up when the response
	// arrives (e.g. the sequential victim-tag-table search that preceded
	// the fetch).
	ExtraLatency int
	// Meta carries an opaque pointer for the issuer (e.g. MSHR entry).
	Meta any
}

// Response is the completion of a Request.
type Response struct {
	Req       *Request
	DoneCycle int64
}

// RequestPool is a free list recycling Request objects inside one
// single-threaded engine instance. Requests churn at every memory level
// (SM outbox → icnt → L2 → DRAM and back), and allocating each one fresh
// made the allocator the hottest object in a sweep; the pool caps that at
// the in-flight high-water mark.
//
// Determinism contract (enforced by DESIGN.md §8 and the lbvet nondeterm
// analyzer's spirit): a Get returns a fully zeroed Request, so simulated
// state can never depend on which recycled object comes back — pool order
// is invisible to the simulation. The pool is intentionally unsynchronised:
// one pool belongs to one GPU, and the engine is single-threaded by design
// (parallelism lives in the harness, across runs).
type RequestPool struct {
	free []*Request
}

// Get returns a zeroed Request, reusing a recycled one when available.
func (p *RequestPool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return r
	}
	return &Request{}
}

// Put recycles a Request the engine has finished with. The object is zeroed
// immediately so a stale field (or the opaque Meta pointer) can neither
// leak into the next use nor pin dead state for the GC.
func (p *RequestPool) Put(r *Request) {
	*r = Request{}
	p.free = append(p.free, r)
}

// Free returns the number of pooled (idle) requests.
func (p *RequestPool) Free() int { return len(p.free) }

// HashPC folds a 32-bit PC into bits bits by XOR, as the paper's hashed-PC
// (HPC) function does. bits must be in [1,16].
func HashPC(pc uint32, bits int) uint32 {
	if bits <= 0 || bits > 16 {
		panic(fmt.Sprintf("memtypes: HashPC bits %d out of range", bits))
	}
	mask := uint32(1)<<bits - 1
	h := uint32(0)
	for pc != 0 {
		h ^= pc & mask
		pc >>= uint(bits)
	}
	return h & mask
}
