package sim

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/workload"
)

func computeKernel(latency int) *workload.Kernel {
	return workload.NewKernel("compute",
		nil,
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1, Every: 1 << 20}},
		4, latency, 500, 4, 16, 64)
}

func TestComputeThroughputBound(t *testing.T) {
	// A compute-only kernel with unit latency saturates the schedulers:
	// IPC per SM approaches NumSchedulers.
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	g, err := New(cfg, computeKernel(1), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20_000)
	r := g.Collect()
	if ipc := r.IPC(); ipc < 3.2 || ipc > 4.01 {
		t.Fatalf("compute-only IPC = %.2f, want near 4 (schedulers)", ipc)
	}
}

func TestMLPLimitRespected(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	cfg.GPU.MaxWarpMLP = 3
	k := workload.NewKernel("mlp",
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 2}},
		nil, 1, 2, 2000, 4, 16, 8)
	g, err := New(cfg, k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	maxSeen := 0
	for i := 0; i < 30_000; i++ {
		g.Step()
		sm := g.SMs()[0]
		for j := range sm.warps {
			if p := sm.warps[j].memPending; p > maxSeen {
				maxSeen = p
			}
		}
	}
	// A single issue can add Coalesced requests at once, so the bound is
	// MLP-1 (ready check) + Coalesced.
	if maxSeen > cfg.GPU.MaxWarpMLP-1+2 {
		t.Fatalf("outstanding requests %d exceed MLP bound", maxSeen)
	}
	if maxSeen == 0 {
		t.Fatal("no memory parallelism observed")
	}
}

func TestStoresWriteThroughBelowL1(t *testing.T) {
	cfg := testConfig()
	k := workload.NewKernel("stores",
		nil,
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		1, 2, 200, 4, 16, 8)
	g, err := New(cfg, k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(0)
	r := g.Collect()
	if r.Stores == 0 {
		t.Fatal("no stores executed")
	}
	// Every store is forwarded below the (write-evict) L1: the L2 sees all
	// of them, and dirty L2 evictions eventually reach DRAM.
	if got := r.L2.StoreHits + r.L2.StoreMisses; got != r.Stores {
		t.Fatalf("L2 saw %d stores, SMs issued %d", got, r.Stores)
	}
}

func TestGTOGreedyStickiness(t *testing.T) {
	// With long-latency compute, GTO should rotate across warps; with unit
	// latency it should stick to one warp per scheduler (greedy), giving
	// the same IPC but far fewer distinct issuing warps per window.
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	g, err := New(cfg, computeKernel(1), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	sm := g.SMs()[0]
	for i := 0; i < 1000; i++ {
		g.Step()
	}
	// Greedy: the last-issued warp of each scheduler should be issuing
	// repeatedly; its iteration count must far exceed the average.
	maxIter, sumIter, alive := 0, 0, 0
	for i := range sm.warps {
		w := &sm.warps[i]
		if !w.Alive {
			continue
		}
		alive++
		sumIter += w.iter
		if w.iter > maxIter {
			maxIter = w.iter
		}
	}
	if alive == 0 {
		t.Fatal("no live warps")
	}
	avg := float64(sumIter) / float64(alive)
	if float64(maxIter) < 2*avg {
		t.Fatalf("greedy warp iter %d not ahead of average %.1f", maxIter, avg)
	}
}

func TestEveryFieldSkipsIterations(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	k := workload.NewKernel("every",
		[]workload.LoadSpec{
			{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1, Every: 4},
		},
		nil, 1, 2, 400, 4, 16, 4)
	g, err := New(cfg, k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(0)
	r := g.Collect()
	// 4 CTAs * 4 warps * 400 iters, load active every 4th iteration.
	want := int64(4 * 4 * 400 / 4)
	if got := r.TotalLoadReqs(); got != want {
		t.Fatalf("load requests = %d, want %d", got, want)
	}
}
