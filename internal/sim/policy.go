// Package sim is the cycle-level GPU engine: streaming multiprocessors with
// GTO warp schedulers, a coalescing LSU, per-SM L1 caches, a shared L2,
// banked DRAM, and a CTA dispatcher. Scheme behaviour (baseline, SWL, PCAL,
// CERF, Linebacker, ...) plugs in through the Policy interfaces below.
package sim

import (
	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// Policy is a cache/scheduling scheme. One Policy is attached to a run and
// produces one SMPolicy per SM (schemes keep per-SM state: monitors, tag
// tables, throttle controllers).
type Policy interface {
	// Name identifies the scheme in reports.
	Name() string
	// Attach binds the policy to an SM before the run starts. The policy
	// may reshape the SM here (e.g. CacheExt resizes the L1).
	Attach(sm *SM) SMPolicy
}

// SMPolicy is the per-SM half of a Policy. The engine calls these hooks on
// the simulation fast path; implementations must not retain the cycle
// argument across calls.
type SMPolicy interface {
	// CTAActive reports whether the CTA in the given slot may issue
	// instructions this cycle (false = throttled).
	CTAActive(slot int) bool

	// WarpActive reports whether the individual warp slot may issue this
	// cycle. CCWS-style schemes throttle at warp rather than CTA
	// granularity through this hook.
	WarpActive(warpSlot int) bool

	// AllowNewCTA gates the dispatcher: return false to keep a freed CTA
	// slot empty (schemes that throttle want to reactivate their own
	// inactive CTAs instead of admitting new ones).
	AllowNewCTA() bool

	// AllocateL1 decides whether a load miss for the given static load may
	// allocate a line in L1 (false = bypass).
	AllocateL1(warpSlot int, pc uint32) bool

	// ExtraL1Latency lets a scheme add latency to an L1 access (CERF models
	// register-bank contention on every cache access here). Called once per
	// line request that reaches the L1.
	ExtraL1Latency(line memtypes.LineAddr, cycle int64) int

	// ProbeVictim is consulted on an L1 miss before the request goes below.
	// A hit returns the extra latency of the register-file read path and
	// the engine completes the load without touching L2; a miss may return
	// the latency its (serial) tag search cost, which the engine adds to
	// the downstream fetch.
	ProbeVictim(line memtypes.LineAddr, pc uint32, cycle int64) (hit bool, extraLatency int)

	// OnEviction offers an L1 eviction to the scheme's victim store.
	OnEviction(ev cache.Eviction, cycle int64)

	// OnLoadOutcome reports the final outcome of one load line-request so
	// locality monitors can count hits and misses per static load and per
	// issuing warp.
	OnLoadOutcome(warpSlot int, pc uint32, line memtypes.LineAddr, out Outcome, cycle int64)

	// OnStore is called for every store line-request before it is sent
	// below; schemes must invalidate any victim copy (victim lines are
	// never dirty).
	OnStore(line memtypes.LineAddr, cycle int64)

	// OnCTALaunch and OnCTAComplete track CTA residency. seq is the global
	// launch sequence number.
	OnCTALaunch(slot, seq int, cycle int64)
	OnCTAComplete(slot int, cycle int64)

	// OnRegResponse completes a register backup/restore request previously
	// sent with SM.SendRegTraffic.
	OnRegResponse(req *memtypes.Request, cycle int64)

	// OnCycle runs once per cycle after the SM pipelines ticked; schemes
	// implement window boundaries, backup draining and throttle decisions
	// here.
	OnCycle(cycle int64)

	// NextEvent advertises the earliest cycle (>= now) at which the policy
	// can change simulated state on its own — typically its next window or
	// ranking boundary. ok == false means the policy is quiescent: it will
	// not change state until some engine hook (load outcome, CTA launch,
	// register response, ...) fires. Returning now blocks cycle skipping.
	// Advertising too early is always safe; advertising past a state change
	// is an engine bug (property-tested). See DESIGN.md §10.
	NextEvent(now int64) (int64, bool)

	// SkipCycles informs the policy that the engine fast-forwarded from
	// cycle `from` to cycle `to` without ticking: OnCycle was not called for
	// cycles [from, to). Policies that integrate per-cycle quantities
	// (occupancy, victim-capacity or unused-register byte-cycles) must apply
	// the closed-form update for the span here, bit-identically to `to-from`
	// repeated OnCycle calls.
	SkipCycles(from, to int64)
}

// Outcome classifies one load line-request for reporting (Figure 13) and
// for per-load locality monitoring.
type Outcome uint8

const (
	// OutHit: L1 hit.
	OutHit Outcome = iota
	// OutPendingHit: merged into an outstanding fill (reported as miss
	// latency but not a new request below).
	OutPendingHit
	// OutMiss: L1 miss serviced by L2/DRAM with allocation.
	OutMiss
	// OutBypass: L1 miss serviced below without allocation.
	OutBypass
	// OutRegHit: serviced from the register-file victim cache.
	OutRegHit
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutHit:
		return "hit"
	case OutPendingHit:
		return "pending-hit"
	case OutMiss:
		return "miss"
	case OutBypass:
		return "bypass"
	case OutRegHit:
		return "reg-hit"
	default:
		return "unknown"
	}
}

// BasePolicy is a no-op SMPolicy: every CTA active, every load allocates,
// no victim cache. Schemes embed it and override what they need.
type BasePolicy struct{}

// CTAActive implements SMPolicy.
func (BasePolicy) CTAActive(int) bool { return true }

// WarpActive implements SMPolicy.
func (BasePolicy) WarpActive(int) bool { return true }

// AllowNewCTA implements SMPolicy.
func (BasePolicy) AllowNewCTA() bool { return true }

// AllocateL1 implements SMPolicy.
func (BasePolicy) AllocateL1(int, uint32) bool { return true }

// ExtraL1Latency implements SMPolicy.
func (BasePolicy) ExtraL1Latency(memtypes.LineAddr, int64) int { return 0 }

// ProbeVictim implements SMPolicy.
func (BasePolicy) ProbeVictim(memtypes.LineAddr, uint32, int64) (bool, int) { return false, 0 }

// OnEviction implements SMPolicy.
func (BasePolicy) OnEviction(cache.Eviction, int64) {}

// OnLoadOutcome implements SMPolicy.
func (BasePolicy) OnLoadOutcome(int, uint32, memtypes.LineAddr, Outcome, int64) {}

// OnStore implements SMPolicy.
func (BasePolicy) OnStore(memtypes.LineAddr, int64) {}

// OnCTALaunch implements SMPolicy.
func (BasePolicy) OnCTALaunch(int, int, int64) {}

// OnCTAComplete implements SMPolicy.
func (BasePolicy) OnCTAComplete(int, int64) {}

// OnRegResponse implements SMPolicy.
func (BasePolicy) OnRegResponse(*memtypes.Request, int64) {}

// OnCycle implements SMPolicy.
func (BasePolicy) OnCycle(int64) {}

// NextEvent implements SMPolicy: the base policy is stateless, so it is
// permanently quiescent. Schemes whose OnCycle does real work must override
// this (and SkipCycles) — the lbvet nextevent analyzer enforces it.
func (BasePolicy) NextEvent(int64) (int64, bool) { return 0, false }

// SkipCycles implements SMPolicy: nothing accrues per cycle.
func (BasePolicy) SkipCycles(int64, int64) {}

// Baseline is the unmodified GPU of Table 1.
type Baseline struct{}

// Name implements Policy.
func (Baseline) Name() string { return "Baseline" }

// Attach implements Policy.
func (Baseline) Attach(*SM) SMPolicy { return BasePolicy{} }
