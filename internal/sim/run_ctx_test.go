package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	k := tinyKernel(30, 8)
	a, err := New(testConfig(), k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(testConfig(), k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	ca := a.Run(2_000_000)
	cb, rerr := b.RunCtx(context.Background(), 2_000_000)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if ca != cb {
		t.Fatalf("Run=%d cycles, RunCtx=%d", ca, cb)
	}
	ra, rb := a.Collect(), b.Collect()
	if ra.Instructions != rb.Instructions || ra.L1.LoadHits != rb.L1.LoadHits {
		t.Fatalf("RunCtx diverged from Run: %+v vs %+v", rb, ra)
	}
}

func TestRunCtxCancelsAtWindowBoundary(t *testing.T) {
	cfg := testConfig()
	g, err := New(cfg, tinyKernel(100000, 64), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("test cause")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)

	cyc, rerr := g.RunCtx(ctx, 10_000_000)
	if rerr == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(rerr, cause) {
		t.Fatalf("error does not chain the cancellation cause: %v", rerr)
	}
	if !strings.Contains(rerr.Error(), "aborted at cycle") {
		t.Fatalf("error missing abort cycle: %v", rerr)
	}
	// Cancellation is cooperative: the run stops at the first window
	// boundary, never mid-window.
	if cyc == 0 || cyc%int64(cfg.LB.WindowCycles) != 0 {
		t.Fatalf("aborted at cycle %d, want a multiple of %d", cyc, cfg.LB.WindowCycles)
	}
}

func TestRunCtxPublishesProgress(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(30, 8), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunCtx(context.Background(), 2_000_000); err != nil {
		t.Fatal(err)
	}
	r := g.Collect()
	if got := g.Progress(); got != r.Instructions {
		t.Fatalf("published progress %d != committed instructions %d", got, r.Instructions)
	}
}

func TestStateDumpRendersMachine(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(30, 8), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(10_000)
	dump := g.StateDump()
	for _, want := range []string{"cycle", "SM0", "dram"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("state dump missing %q:\n%s", want, dump)
		}
	}
}
