package sim

import "testing"

// TestGoldenDeterminism pins the exact outcome of one small reference run.
// The simulator is fully deterministic, so any change to these numbers
// means engine behaviour changed — intentional changes must update the
// constants below (and re-check the EXPERIMENTS.md shapes).
func TestGoldenDeterminism(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(50, 12), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(0)
	r := g.Collect()

	want := struct {
		cycles, instr, stores, l1Hits, dramBytes int64
		loads                                    [5]int64
	}{
		cycles:    6349,
		instr:     16800,
		stores:    2400,
		l1Hits:    1314,
		dramBytes: 323584,
		loads:     [5]int64{1314, 860, 2626, 0, 0},
	}
	if r.Cycles != want.cycles || r.Instructions != want.instr ||
		r.Stores != want.stores || r.L1.LoadHits != want.l1Hits ||
		r.DRAM.TotalBytes() != want.dramBytes || r.Loads != want.loads {
		t.Fatalf("reference run diverged from golden values:\n got: cycles=%d instr=%d loads=%v stores=%d l1hits=%d dram=%d\nwant: %+v",
			r.Cycles, r.Instructions, r.Loads, r.Stores, r.L1.LoadHits, r.DRAM.TotalBytes(), want)
	}
}
