package sim

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// testConfig is a small, fast configuration.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 2
	cfg.LB.WindowCycles = 2000
	return cfg
}

// tinyKernel builds a small kernel that completes quickly.
func tinyKernel(iters, grid int) *workload.Kernel {
	return workload.NewKernel("tiny",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 8 * 1024, Coalesced: 1, Phase: 1},
			{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1},
		},
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		2, 4, iters, 4, 16, grid)
}

func TestRunToCompletion(t *testing.T) {
	cfg := testConfig()
	k := tinyKernel(30, 8)
	g, err := New(cfg, k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := g.Run(2_000_000)
	r := g.Collect()
	if r.CTACompleted != 8 {
		t.Fatalf("completed %d/8 CTAs in %d cycles", r.CTACompleted, cycles)
	}
	// Every warp retires iters * body instructions.
	wantInstr := int64(8) * 4 * 30 * int64(len(k.Body))
	if r.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", r.Instructions, wantInstr)
	}
	if r.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		g, err := New(testConfig(), tinyKernel(50, 12), Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		g.Run(0)
		return g.Collect()
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.L1 != b.L1 || a.Loads != b.Loads || a.DRAM != b.DRAM {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestMaxCycleCap(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(100000, 1000), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := g.Run(5000)
	if cycles != 5000 {
		t.Fatalf("ran %d cycles, want cap 5000", cycles)
	}
	if g.Collect().Instructions == 0 {
		t.Fatal("no instructions retired under cap")
	}
}

func TestTiledLoadHitsInCache(t *testing.T) {
	// An 8 KB per-SM working set fits a 48 KB L1 with no competing
	// streaming traffic: after warmup the tiled load should mostly hit.
	k := workload.NewKernel("tiledonly",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 8 * 1024, Coalesced: 1, Phase: 1},
		},
		nil, 2, 4, 600, 4, 16, 8)
	g, err := New(testConfig(), k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(800_000)
	r := g.Collect()
	if r.CTACompleted == 0 {
		t.Fatal("nothing completed")
	}
	total := r.TotalLoadReqs()
	hitFrac := float64(r.Loads[OutHit]) / float64(total)
	if hitFrac < 0.8 {
		t.Fatalf("hit fraction %.2f too low; tiled reuse not captured", hitFrac)
	}
	if r.Loads[OutRegHit] != 0 || r.Loads[OutBypass] != 0 {
		t.Fatalf("baseline produced reg hits/bypasses: %+v", r.Loads)
	}
}

func TestStreamingEvictsReuseLines(t *testing.T) {
	// The paper's motivation (Section 2.3): adding a streaming load to a
	// cacheable working set destroys its hit ratio. This is the behaviour
	// Linebacker's selective victim caching exists to fix.
	g, err := New(testConfig(), tinyKernel(600, 8), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(800_000)
	r := g.Collect()
	hitFrac := float64(r.Loads[OutHit]) / float64(r.TotalLoadReqs())
	if hitFrac > 0.3 {
		t.Fatalf("hit fraction %.2f with streaming interference; expected thrashing", hitFrac)
	}
}

func TestStreamingMissesAndTraffic(t *testing.T) {
	k := workload.NewKernel("stream",
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		nil, 1, 4, 400, 4, 16, 8)
	g, err := New(testConfig(), k, Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(1_500_000)
	r := g.Collect()
	if r.CTACompleted != 8 {
		t.Fatalf("completed %d/8", r.CTACompleted)
	}
	total := r.TotalLoadReqs()
	missFrac := float64(r.Loads[OutMiss]) / float64(total)
	if missFrac < 0.95 {
		t.Fatalf("streaming miss fraction %.2f, want ~1", missFrac)
	}
	if r.DRAM.BytesRead == 0 {
		t.Fatal("streaming load produced no DRAM traffic")
	}
	// Cold misses should dominate (2C ≈ 0 for pure streaming).
	if r.L1.CapConfMisses > r.L1.ColdMisses/10 {
		t.Fatalf("streaming produced capacity misses: %+v", r.L1)
	}
}

func TestMaxResidentCTAs(t *testing.T) {
	cfg := config.Default()
	k := tinyKernel(10, 10) // 4 warps * 16 regs = 64 regs/CTA
	// Warp limit: 64/4 = 16; thread limit 2048/128 = 16; reg limit
	// 2048/64 = 32; CTA cap 32 → 16.
	if got := MaxResidentCTAs(&cfg.GPU, k); got != 16 {
		t.Fatalf("MaxResidentCTAs = %d, want 16", got)
	}
	k.RegsPerThread = 64 // 256 regs/CTA → reg limit 8
	if got := MaxResidentCTAs(&cfg.GPU, k); got != 8 {
		t.Fatalf("reg-limited MaxResidentCTAs = %d, want 8", got)
	}
}

func TestProbeObservesLoads(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(20, 4), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	var probedLoads, probedStores int
	pcs := map[uint32]bool{}
	for _, sm := range g.SMs() {
		sm.Probe = func(warpSlot int, pc uint32, line memtypes.LineAddr, isStore bool, cycle int64) {
			if isStore {
				probedStores++
				return
			}
			probedLoads++
			pcs[pc] = true
		}
	}
	g.Run(0)
	r := g.Collect()
	if int64(probedLoads) != r.TotalLoadReqs() {
		t.Fatalf("probe saw %d loads, requests %d", probedLoads, r.TotalLoadReqs())
	}
	if int64(probedStores) != r.Stores {
		t.Fatalf("probe saw %d stores, issued %d", probedStores, r.Stores)
	}
	if len(pcs) != 2 {
		t.Fatalf("probe saw %d static loads, want 2", len(pcs))
	}
}

// throttlePolicy deactivates odd CTA slots — checks that throttled warps
// never issue.
type throttlePolicy struct{ BasePolicy }

func (throttlePolicy) CTAActive(slot int) bool { return slot%2 == 0 }

type throttleScheme struct{}

func (throttleScheme) Name() string        { return "throttle-test" }
func (throttleScheme) Attach(*SM) SMPolicy { return throttlePolicy{} }

func TestThrottledCTAsDoNotIssue(t *testing.T) {
	cfg := testConfig()
	k := tinyKernel(50, 64)
	g, err := New(cfg, k, throttleScheme{})
	if err != nil {
		t.Fatal(err)
	}
	g.Run(30_000)
	// Only even slots ever execute, so at most half the resident CTAs can
	// complete; with odd slots frozen forever the run cannot finish the
	// grid, but even ones complete and are replaced.
	r := g.Collect()
	if r.Instructions == 0 {
		t.Fatal("no progress with half the CTAs active")
	}
	for _, sm := range g.SMs() {
		for i := range sm.warps {
			w := &sm.warps[i]
			if w.CTASlot%2 == 1 && sm.ctas[w.CTASlot].Resident && w.iter > 0 {
				t.Fatalf("throttled warp (slot %d) made progress", w.CTASlot)
			}
		}
	}
}

func TestRegTrafficRoundTrip(t *testing.T) {
	cfg := testConfig()
	k := tinyKernel(10000, 64)
	done := map[int]bool{}
	pol := &regTrafficScheme{done: done}
	g, err := New(cfg, k, pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(20_000)
	if len(done) != 2 || !done[600] || !done[601] {
		t.Fatalf("reg traffic completions = %v", done)
	}
	if g.DRAM().Stats.RegBackupBytes != 128 || g.DRAM().Stats.RegRestoreBytes != 128 {
		t.Fatalf("reg traffic bytes: %+v", g.DRAM().Stats)
	}
}

type regTrafficScheme struct {
	done map[int]bool
	sent bool
}

func (s *regTrafficScheme) Name() string { return "regtraffic-test" }
func (s *regTrafficScheme) Attach(sm *SM) SMPolicy {
	if sm.ID() == 0 {
		return &regTrafficPolicy{scheme: s, sm: sm}
	}
	return BasePolicy{}
}

type regTrafficPolicy struct {
	BasePolicy
	scheme *regTrafficScheme
	sm     *SM
}

func (p *regTrafficPolicy) OnCycle(cycle int64) {
	if !p.scheme.sent && cycle == 100 {
		p.scheme.sent = true
		p.sm.SendRegTraffic(memtypes.RegBackup, 600, cycle)
		p.sm.SendRegTraffic(memtypes.RegRestore, 601, cycle)
	}
}

func (p *regTrafficPolicy) OnRegResponse(req *memtypes.Request, cycle int64) {
	p.scheme.done[req.Meta.(int)] = true
}
