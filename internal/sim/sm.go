package sim

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/regfile"
	"github.com/linebacker-sim/linebacker/internal/ring"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// Warp is one resident warp context.
type Warp struct {
	Alive   bool
	CTASlot int
	Idx     int // index within the CTA
	Seq     int // global CTA launch sequence (age for GTO)

	iter       int
	pcIdx      int
	readyAt    int64
	memPending int  // outstanding line requests of the current load
	retired    bool // warp fully done, including outstanding memory
}

// ready reports whether the warp can issue at the cycle. A warp keeps
// issuing past outstanding loads up to the configured memory-level
// parallelism (mlp line requests in flight).
func (w *Warp) ready(cycle int64, mlp int) bool {
	return w.Alive && w.memPending < mlp && w.readyAt <= cycle
}

// CTASlotInfo describes one CTA slot of an SM.
type CTASlotInfo struct {
	Resident  bool
	Seq       int
	FirstRN   int // first warp-register number of the CTA's allocation
	RegCount  int // warp-registers allocated
	WarpsLive int
}

// lsuOp is one line request waiting for the load/store unit. The address
// context is captured at issue so a draining store cannot be corrupted by
// the warp slot being recycled.
type lsuOp struct {
	warp    *Warp
	loadIdx int
	req     int
	isStore bool
	ctx     workload.Ctx
}

// SMStats counts per-SM pipeline and memory events.
type SMStats struct {
	Retired     int64
	IssueIdle   int64    // cycles a scheduler found no ready warp
	LoadReqs    [5]int64 // indexed by Outcome
	StoreReqs   int64
	CTALaunches int64
	CTADone     int64
}

// SM is one streaming multiprocessor.
type SM struct {
	id     int
	cfg    *config.Config
	kernel *workload.Kernel

	l1 *cache.Cache
	rf *regfile.RegFile

	warps []Warp
	ctas  []CTASlotInfo

	maxResidentCTAs int
	// freeSlots counts non-resident CTA slots — the O(1) answer behind
	// HasFreeSlot, maintained by launchCTA and completeCTA.
	freeSlots   int
	warpsPerCTA int

	// GTO scheduler state: the last warp each scheduler issued from.
	lastIssued []int

	lsu      ring.Buffer[lsuOp]
	lsuWidth int
	waiters  map[memtypes.LineAddr][]*Warp
	outbox   ring.Buffer[*memtypes.Request]

	// pool recycles this SM's Request objects. Per-SM ownership is what
	// keeps the free list race-free under parallel stepping: during the SM
	// phase only this SM's goroutine touches it, and the serial memory
	// phases return every dying request to the pool of the SM that issued
	// it (req.SM). Get still returns a zeroed object, so pool order stays
	// invisible to simulated state (DESIGN.md §8, §9).
	pool memtypes.RequestPool

	pol SMPolicy

	// nextWake caches this SM's next event cycle (see event.go): while the
	// run clock is below it, stepSM replaces the tick with the closed-form
	// accruals of skipCycles. Purely an engine shortcut — simulated state
	// is bit-identical either way. Invalidated (set to 0) by the two
	// external inputs an SM has: a response delivery (handleResponse) and
	// a CTA launch (launchCTA). sleepStalled caches the head-of-line MSHR
	// stall verdict for the sleep span — the predicate cannot change while
	// the SM sleeps (only a fill changes it, and a fill resets nextWake),
	// so the per-cycle accrual avoids re-deriving the head's address.
	// scanWake is the merged future-ready minimum gathered by issue()'s
	// failed scheduler scans — valid only for the cycle of an issue-less
	// tick, where it hands stepSM the warp part of NextEvent for free.
	// slept counts the cycles this SM's state advanced through the
	// closed-form sleep/skip path instead of a full tick — per-SM sleeping
	// and global fast-forwards both land here. Diagnostic only (the skip
	// ratio of the benchmark trajectory); never part of Result/StateDump.
	nextWake     int64
	scanWake     int64
	sleepStalled bool
	slept        int64

	// Probe, when non-nil, observes every load and store line-request
	// (used by the Figure 2/3 working-set probes and the trace recorder).
	Probe func(warpSlot int, pc uint32, line memtypes.LineAddr, isStore bool, cycle int64)

	Stats SMStats
}

// lsuWidthDefault is the number of line requests the LSU retires per cycle.
const lsuWidthDefault = 2

// storeIssueLatency is the pipeline cost of issuing a store (the warp does
// not wait for completion).
const storeIssueLatency = 2

// loadIssueLatency is the pipeline cost of issuing a load; completion is
// tracked through the warp's outstanding-request count instead of blocking.
const loadIssueLatency = 2

// fillWakeLatency is the register writeback delay after a fill arrives.
const fillWakeLatency = 4

// newSM builds an SM for the kernel.
func newSM(id int, cfg *config.Config, k *workload.Kernel) *SM {
	g := &cfg.GPU
	sm := &SM{
		id:          id,
		cfg:         cfg,
		kernel:      k,
		l1:          cache.New(g.L1Bytes, g.L1Ways, g.L1MSHRs, false),
		rf:          regfile.New(g),
		warpsPerCTA: k.WarpsPerCTA,
		lastIssued:  make([]int, g.NumSchedulers),
		lsuWidth:    lsuWidthDefault,
		waiters:     make(map[memtypes.LineAddr][]*Warp),
	}
	for i := range sm.lastIssued {
		sm.lastIssued[i] = -1
	}
	sm.maxResidentCTAs = MaxResidentCTAs(g, k)
	sm.warps = make([]Warp, sm.maxResidentCTAs*k.WarpsPerCTA)
	sm.ctas = make([]CTASlotInfo, sm.maxResidentCTAs)
	sm.freeSlots = sm.maxResidentCTAs
	return sm
}

// MaxResidentCTAs returns how many CTAs of the kernel fit on one SM given
// the Table 1 residency limits (warps, threads, CTA slots, register file).
func MaxResidentCTAs(g *config.GPU, k *workload.Kernel) int {
	byWarps := g.MaxWarpsPerSM / k.WarpsPerCTA
	byThreads := g.MaxThreadsPerSM / (k.WarpsPerCTA * g.SIMDWidth)
	byRegs := g.WarpRegisters() / k.RegsPerCTA()
	n := byWarps
	if byThreads < n {
		n = byThreads
	}
	if byRegs < n {
		n = byRegs
	}
	if g.MaxCTAsPerSM < n {
		n = g.MaxCTAsPerSM
	}
	if n < 1 {
		n = 1
	}
	return n
}

// --- accessors used by policies ---

// ID returns the SM index.
func (sm *SM) ID() int { return sm.id }

// L1 returns the SM's data cache.
func (sm *SM) L1() *cache.Cache { return sm.l1 }

// RF returns the SM's register file.
func (sm *SM) RF() *regfile.RegFile { return sm.rf }

// Kernel returns the running kernel.
func (sm *SM) Kernel() *workload.Kernel { return sm.kernel }

// Config returns the run configuration.
func (sm *SM) Config() *config.Config { return sm.cfg }

// MaxResident returns the CTA residency limit for this kernel.
func (sm *SM) MaxResident() int { return sm.maxResidentCTAs }

// CTA returns the slot info (copy).
func (sm *SM) CTA(slot int) CTASlotInfo { return sm.ctas[slot] }

// ResidentCTAs counts resident CTAs.
func (sm *SM) ResidentCTAs() int {
	n := 0
	for i := range sm.ctas {
		if sm.ctas[i].Resident {
			n++
		}
	}
	return n
}

// Retired returns cumulative retired warp instructions.
func (sm *SM) Retired() int64 { return sm.Stats.Retired }

// FreeSlot returns a free CTA slot index, or -1.
func (sm *SM) FreeSlot() int {
	if sm.freeSlots == 0 {
		return -1
	}
	for i := range sm.ctas {
		if !sm.ctas[i].Resident {
			return i
		}
	}
	return -1
}

// HasFreeSlot reports whether any CTA slot is free — the O(1) form of
// FreeSlot() >= 0, for the dispatch stage and the event probe, both of
// which test eligibility every cycle.
func (sm *SM) HasFreeSlot() bool { return sm.freeSlots > 0 }

// SendRegTraffic emits one register backup (write) or restore (read) line
// request directly to off-chip memory. rn identifies the register; the
// paper maps it to a dedicated backup region (here one line per register at
// a reserved address range). The request is returned so the policy can
// match the completion in OnRegResponse.
func (sm *SM) SendRegTraffic(kind memtypes.Kind, rn int, cycle int64) *memtypes.Request {
	if kind != memtypes.RegBackup && kind != memtypes.RegRestore {
		//lbvet:panic caller bug, not a run-time condition: only the two register kinds are valid here
		panic(fmt.Sprintf("sim: SendRegTraffic kind %v", kind))
	}
	const backupRegion = uint64(1) << 60
	line := memtypes.LineAddr(backupRegion + uint64(sm.id)<<20 + uint64(rn)*memtypes.LineSize)
	req := sm.pool.Get()
	req.Line, req.Kind, req.SM, req.WarpID, req.IssueCycle, req.Meta = line, kind, sm.id, -1, cycle, rn
	sm.outbox.Push(req)
	return req
}

// ReleaseCTARegs frees the register allocation of a still-resident CTA
// whose architectural state has been backed up off-chip (Linebacker's C=1
// point). The slot stays resident; its FRN becomes meaningless until
// ReserveCTARegs.
func (sm *SM) ReleaseCTARegs(slot int) {
	if !sm.ctas[slot].Resident {
		//lbvet:panic policy bug, not a run-time condition: releasing an unoccupied slot is mis-accounting
		panic(fmt.Sprintf("sim: ReleaseCTARegs on empty slot %d", slot))
	}
	sm.rf.Free(slot)
	sm.ctas[slot].FirstRN = -1
}

// ReserveCTARegs re-allocates register space for an inactive CTA about to
// be restored, updating the slot's FRN.
func (sm *SM) ReserveCTARegs(slot, count int) (first int, ok bool) {
	if !sm.ctas[slot].Resident {
		//lbvet:panic policy bug, not a run-time condition: reserving into an unoccupied slot is mis-accounting
		panic(fmt.Sprintf("sim: ReserveCTARegs on empty slot %d", slot))
	}
	first, ok = sm.rf.Alloc(slot, count)
	if ok {
		sm.ctas[slot].FirstRN = first
	}
	return first, ok
}

// --- CTA lifecycle ---

// launchCTA places grid CTA seq into a free slot; returns false when no
// slot or registers are available.
func (sm *SM) launchCTA(seq int, cycle int64) bool {
	slot := sm.FreeSlot()
	if slot < 0 {
		return false
	}
	first, ok := sm.rf.Alloc(slot, sm.kernel.RegsPerCTA())
	if !ok {
		return false
	}
	sm.ctas[slot] = CTASlotInfo{
		Resident: true, Seq: seq,
		FirstRN: first, RegCount: sm.kernel.RegsPerCTA(),
		WarpsLive: sm.warpsPerCTA,
	}
	for i := 0; i < sm.warpsPerCTA; i++ {
		w := &sm.warps[slot*sm.warpsPerCTA+i]
		*w = Warp{Alive: true, CTASlot: slot, Idx: i, Seq: seq}
	}
	sm.freeSlots--
	sm.Stats.CTALaunches++
	sm.pol.OnCTALaunch(slot, seq, cycle)
	// External input: fresh warps mean fresh events (see event.go).
	sm.nextWake = 0
	return true
}

// completeCTA retires the CTA in the slot.
func (sm *SM) completeCTA(slot int, cycle int64) {
	sm.ctas[slot].Resident = false
	sm.freeSlots++
	sm.rf.Free(slot)
	sm.Stats.CTADone++
	sm.pol.OnCTAComplete(slot, cycle)
}

// Busy reports whether any CTA is resident or memory work is in flight.
func (sm *SM) Busy() bool {
	for i := range sm.ctas {
		if sm.ctas[i].Resident {
			return true
		}
	}
	return sm.lsu.Len() > 0 || len(sm.waiters) > 0
}

// --- per-cycle pipeline ---

// tick advances the SM one cycle: schedulers issue, the LSU retires line
// requests, and the policy runs. The return value reports whether the
// front-end did any work (issued an instruction or moved an LSU request) —
// a cheap activity hint stepSM uses to decide when an event rescan is
// worth it; it carries no correctness weight (see event.go).
func (sm *SM) tick(cycle int64) bool {
	issued := sm.issue(cycle)
	moved := sm.runLSU(cycle)
	sm.pol.OnCycle(cycle)
	return issued || moved
}

// issue runs the GTO warp schedulers; true if any of them issued. When no
// scheduler issues, every scheduler performed a full scan of its warp
// partition, and the merged future-ready minimum is cached in scanWake —
// the per-SM sleeper (event.go) reads it instead of re-scanning.
func (sm *SM) issue(cycle int64) bool {
	ns := sm.cfg.GPU.NumSchedulers
	issued := false
	future := neverWake
	for s := 0; s < ns; s++ {
		w, f := sm.pickWarp(s, cycle)
		if w < 0 {
			sm.Stats.IssueIdle++
			if f < future {
				future = f
			}
			continue
		}
		issued = true
		sm.lastIssued[s] = w
		sm.execute(&sm.warps[w], cycle)
	}
	sm.scanWake = future
	return issued
}

// pickWarp implements greedy-then-oldest among the scheduler's warps. The
// second result is the earliest readyAt among this scheduler's alive,
// under-MLP warps that are not ready yet (neverWake if none) — gathered
// for free during the failed scan; meaningful only when no warp is picked.
func (sm *SM) pickWarp(sched int, cycle int64) (int, int64) {
	ns := sm.cfg.GPU.NumSchedulers
	mlp := sm.cfg.GPU.MaxWarpMLP
	// Greedy: stick with the last issued warp while it remains ready.
	if last := sm.lastIssued[sched]; last >= 0 {
		w := &sm.warps[last]
		if w.ready(cycle, mlp) && sm.pol.CTAActive(w.CTASlot) && sm.pol.WarpActive(last) {
			return last, 0
		}
	}
	// Oldest: smallest (CTA seq, warp idx) among ready warps. Policy gates
	// are consulted only for warps ready this cycle, exactly as the fused
	// w.ready(...) check did: not-ready short-circuited past the gates.
	best := -1
	future := neverWake
	for i := sched; i < len(sm.warps); i += ns {
		w := &sm.warps[i]
		if !w.Alive || w.memPending >= mlp {
			continue
		}
		if w.readyAt > cycle {
			if w.readyAt < future {
				future = w.readyAt
			}
			continue
		}
		if !sm.pol.CTAActive(w.CTASlot) || !sm.pol.WarpActive(i) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := &sm.warps[best]
		if w.Seq < b.Seq || (w.Seq == b.Seq && w.Idx < b.Idx) {
			best = i
		}
	}
	return best, future
}

// execute issues the warp's next instruction.
func (sm *SM) execute(w *Warp, cycle int64) {
	ins := &sm.kernel.Body[w.pcIdx]
	sm.Stats.Retired++
	// Operand collector traffic: ~3 register accesses per instruction.
	base := sm.ctas[w.CTASlot].FirstRN + w.Idx*sm.kernel.RegsPerWarp()
	opReg := base + (w.pcIdx*3)%maxi(sm.kernel.RegsPerWarp()-2, 1)
	sm.rf.AccessOperands(opReg, 3, cycle)

	switch ins.Op {
	case workload.Compute:
		w.readyAt = cycle + int64(ins.Latency)
	case workload.LoadOp:
		l := &sm.kernel.Loads[ins.LoadIdx]
		if !l.ActiveAt(w.iter) {
			w.readyAt = cycle + 1 // predicated off this iteration
			break
		}
		w.readyAt = cycle + loadIssueLatency
		w.memPending += l.Coalesced
		for r := 0; r < l.Coalesced; r++ {
			sm.lsu.Push(lsuOp{warp: w, loadIdx: ins.LoadIdx, req: r, ctx: sm.ctx(w)})
		}
	case workload.StoreOp:
		l := &sm.kernel.Loads[ins.LoadIdx]
		if !l.ActiveAt(w.iter) {
			w.readyAt = cycle + 1
			break
		}
		w.readyAt = cycle + storeIssueLatency
		for r := 0; r < l.Coalesced; r++ {
			sm.lsu.Push(lsuOp{warp: w, loadIdx: ins.LoadIdx, req: r, isStore: true, ctx: sm.ctx(w)})
		}
	}
	sm.advance(w, cycle)
}

// advance moves the warp past the issued instruction, retiring the warp and
// possibly its CTA at the end of the last iteration.
func (sm *SM) advance(w *Warp, cycle int64) {
	w.pcIdx++
	if w.pcIdx < len(sm.kernel.Body) {
		return
	}
	w.pcIdx = 0
	w.iter++
	if w.iter < sm.kernel.Iterations {
		return
	}
	w.Alive = false
	if w.memPending == 0 {
		sm.retireWarp(w, cycle)
	}
	// Otherwise finishLoad retires the warp when its last request lands.
}

// retireWarp finalises a finished warp and completes its CTA when it is the
// last one standing.
func (sm *SM) retireWarp(w *Warp, cycle int64) {
	if w.retired {
		return
	}
	w.retired = true
	slot := w.CTASlot
	sm.ctas[slot].WarpsLive--
	if sm.ctas[slot].WarpsLive == 0 {
		sm.completeCTA(slot, cycle)
	}
}

// runLSU retires up to lsuWidth line requests; true if any moved.
func (sm *SM) runLSU(cycle int64) bool {
	n := 0
	for ; n < sm.lsuWidth && sm.lsu.Len() > 0; n++ {
		if !sm.processOp(sm.lsu.Front(), cycle) {
			break // head-of-line stall (MSHR full); retry next cycle
		}
		sm.lsu.Pop()
	}
	return n > 0
}

// ctx builds the address-generation context for a warp.
func (sm *SM) ctx(w *Warp) workload.Ctx {
	return workload.Ctx{SM: sm.id, CTASeq: w.Seq, Warp: w.Idx, Iter: w.iter}
}

// processOp services one line request; false means stall (retry).
func (sm *SM) processOp(op lsuOp, cycle int64) bool {
	w := op.warp
	l := &sm.kernel.Loads[op.loadIdx]
	line := sm.kernel.Address(op.loadIdx, op.ctx, op.req)

	if op.isStore {
		sm.Stats.StoreReqs++
		if sm.Probe != nil {
			sm.Probe(warpIndex(sm, w), l.PC, line, true, cycle)
		}
		sm.pol.OnStore(line, cycle)
		sm.l1.Store(line)
		req := sm.pool.Get()
		req.Line, req.Kind, req.SM, req.WarpID, req.PC, req.IssueCycle =
			line, memtypes.Store, sm.id, warpIndex(sm, w), l.PC, cycle
		sm.outbox.Push(req)
		return true
	}

	// Structural stall check first so a retried request has no side
	// effects (probes, monitors, energy counters fire exactly once).
	if !sm.l1.Probe(line) && !sm.l1.HasOutstanding(line) && !sm.l1.MSHRFree() {
		sm.l1.Stats.MSHRStalls++
		return false
	}
	if sm.Probe != nil {
		sm.Probe(warpIndex(sm, w), l.PC, line, false, cycle)
	}
	hpc := memtypes.HashPC(l.PC, sm.cfg.LB.HPCBits)
	extra := sm.pol.ExtraL1Latency(line, cycle)

	// Fast path: resident line.
	if sm.l1.Probe(line) {
		sm.l1.Load(line, hpc, true)
		sm.finishLoad(w, cycle, int64(sm.cfg.GPU.L1HitLatency+extra))
		sm.Stats.LoadReqs[OutHit]++
		sm.pol.OnLoadOutcome(warpIndex(sm, w), l.PC, line, OutHit, cycle)
		return true
	}
	// Victim cache probe before going below. A miss reports its serial
	// tag-search cost, which delays the downstream fetch's completion.
	vhit, vlat := sm.pol.ProbeVictim(line, l.PC, cycle)
	if vhit {
		sm.finishLoad(w, cycle, int64(sm.cfg.GPU.L1HitLatency+extra+vlat))
		sm.Stats.LoadReqs[OutRegHit]++
		sm.pol.OnLoadOutcome(warpIndex(sm, w), l.PC, line, OutRegHit, cycle)
		return true
	}
	allocate := sm.pol.AllocateL1(warpIndex(sm, w), l.PC)
	res, ev, evicted := sm.l1.Load(line, hpc, allocate)
	if evicted {
		sm.pol.OnEviction(ev, cycle)
	}
	switch res {
	case cache.Stall:
		// Unreachable: the structural check above covers MSHR exhaustion.
		return false
	case cache.HitPending:
		sm.waiters[line] = append(sm.waiters[line], w)
		sm.Stats.LoadReqs[OutPendingHit]++
		sm.pol.OnLoadOutcome(warpIndex(sm, w), l.PC, line, OutPendingHit, cycle)
	case cache.Miss, cache.MissNoAlloc:
		out := OutMiss
		if res == cache.MissNoAlloc {
			out = OutBypass
		}
		sm.waiters[line] = append(sm.waiters[line], w)
		req := sm.pool.Get()
		req.Line, req.Kind, req.SM, req.WarpID, req.PC, req.IssueCycle, req.ExtraLatency =
			line, memtypes.Load, sm.id, warpIndex(sm, w), l.PC, cycle, vlat
		sm.outbox.Push(req)
		sm.Stats.LoadReqs[out]++
		sm.pol.OnLoadOutcome(warpIndex(sm, w), l.PC, line, out, cycle)
	case cache.Hit:
		// Race between Probe and Load cannot happen single-threaded, but
		// keep the path correct.
		sm.finishLoad(w, cycle, int64(sm.cfg.GPU.L1HitLatency+extra))
		sm.Stats.LoadReqs[OutHit]++
		sm.pol.OnLoadOutcome(warpIndex(sm, w), l.PC, line, OutHit, cycle)
	}
	return true
}

// finishLoad resolves one of the warp's outstanding line requests after the
// given latency.
func (sm *SM) finishLoad(w *Warp, cycle, latency int64) {
	if w.memPending > 0 {
		w.memPending--
	}
	// The load's value becomes available `latency` cycles out; consumers
	// are modelled through the MLP limit rather than a hard block, so the
	// warp's readyAt is only pushed when it was already waiting at the
	// limit (scoreboard full).
	if w.memPending >= sm.cfg.GPU.MaxWarpMLP-1 {
		if t := cycle + latency; t > w.readyAt {
			w.readyAt = t
		}
	}
	if !w.Alive && w.memPending == 0 {
		sm.retireWarp(w, cycle)
	}
}

// handleResponse completes a request that returned from the memory system.
// This is a request death point: the object goes back to the pool once every
// waiter is woken (loads) or the policy has observed the completion
// (register traffic) — no component retains the pointer past those calls.
func (sm *SM) handleResponse(req *memtypes.Request, cycle int64) {
	// External input: whatever wake cycle the SM advertised is stale now —
	// a fill can unstall the LSU head, wake waiters, retire warps.
	sm.nextWake = 0
	switch req.Kind {
	case memtypes.Load:
		sm.l1.Fill(req.Line)
		ws := sm.waiters[req.Line]
		delete(sm.waiters, req.Line)
		for _, w := range ws {
			sm.finishLoad(w, cycle, fillWakeLatency+int64(req.ExtraLatency))
		}
		sm.pool.Put(req)
	case memtypes.RegBackup, memtypes.RegRestore:
		sm.pol.OnRegResponse(req, cycle)
		sm.pool.Put(req)
	}
}

func warpIndex(sm *SM, w *Warp) int {
	return w.CTASlot*sm.warpsPerCTA + w.Idx
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
