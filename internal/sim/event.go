package sim

// This file is the event-driven cycle-skipping core (DESIGN.md §10). Every
// engine component advertises the earliest future cycle at which it can
// change simulated state; when the global minimum lies beyond the current
// cycle, RunCtx fast-forwards the clock there instead of ticking through
// provably idle cycles, applying the few cycle-proportional accumulators
// (scheduler idle counts, DRAM busy/bandwidth tokens, policy byte-cycle
// integrals) in closed form. The contract that keeps the skip observably
// invisible:
//
//   - NextEvent(now) returns the earliest cycle >= now at which the
//     component might change state if the engine ticked every cycle;
//     ok == false means it never will (quiescent until some other
//     component's event interacts with it). Returning now blocks skipping.
//   - Advertising too early is always safe (the engine ticks a cycle in
//     which nothing happens); advertising too late is an engine bug — the
//     event-lower-bound property test in event_test.go instruments a
//     CycleChecker to catch it at the source.
//   - Skip/SkipCycles must reproduce the per-cycle accumulators of the
//     skipped span bit-identically to ticking (all of them add
//     integer-valued float64 terms or plain integers, so closed forms are
//     exact; see DESIGN.md §10).

// NextEventer is the optional interface through which engine extensions
// participate in cycle skipping. Fault injectors implement it to advertise
// their armed fault cycles so a skip can never jump over an exact
// (stage, cycle) fault point; an injector that does not implement it
// disables skipping for the run (RunCtx falls back to strict ticking).
type NextEventer interface {
	NextEvent(now int64) (int64, bool)
}

// mergeEvent folds one (cycle, ok) advertisement into a running minimum.
func mergeEvent(best int64, any bool, c int64, ok bool, now int64) (int64, bool) {
	if !ok {
		return best, any
	}
	if c < now {
		c = now
	}
	if !any || c < best {
		return c, true
	}
	return best, any
}

// NextEvent implements the component protocol for one SM: the earliest
// cycle at which the SM front-end, LSU or its policy can change state.
//
//   - A non-empty outbox pins the event to now: it is drained at every
//     cycle barrier. A non-empty LSU queue pins the event to now UNLESS its
//     head-of-line request is structurally stalled on a full MSHR: a
//     stalled head blocks the whole queue, and each retried cycle mutates
//     exactly one counter (l1.Stats.MSHRStalls — the structural check in
//     processOp runs before any other side effect), which skipCycles
//     reproduces in closed form. The stall can only resolve through an L1
//     fill, and fills arrive via handleResponse — the response link's
//     event, so a skip can never jump over the resolution cycle.
//   - A warp that is alive, under its MLP limit, scheduler-eligible and
//     ready now pins the event to now; one that becomes ready later
//     contributes its readyAt. Warps blocked on memory (memPending at the
//     MLP limit, or dead with requests in flight) wake through
//     handleResponse, which is the response link's event, not the SM's.
//   - Policy gates (CTAActive/WarpActive) are pure functions of policy
//     state, and policy state only changes in hooks that run during ticked
//     cycles — so a warp gated off now stays gated for the whole skipped
//     span. Future-ready warps are counted without consulting gates: that
//     is conservative (at worst one spurious tick), never unsafe.
func (sm *SM) NextEvent(now int64) (int64, bool) {
	if sm.outbox.Len() > 0 {
		return now, true
	}
	if sm.lsu.Len() > 0 && !sm.lsuHeadStalled() {
		return now, true
	}
	best, any := sm.pol.NextEvent(now)
	if any && best <= now {
		return now, true
	}
	mlp := sm.cfg.GPU.MaxWarpMLP
	for i := range sm.warps {
		w := &sm.warps[i]
		if !w.Alive || w.memPending >= mlp {
			continue
		}
		if w.readyAt > now {
			if !any || w.readyAt < best {
				best, any = w.readyAt, true
			}
			continue
		}
		if sm.pol.CTAActive(w.CTASlot) && sm.pol.WarpActive(i) {
			return now, true
		}
	}
	return best, any
}

// neverWake marks an SM with no self-driven future event: it stays asleep
// until an external input (response delivery, CTA launch) resets nextWake.
const neverWake = int64(1)<<62 - 1

// stepSM advances one SM by one cycle. With per-SM sleeping enabled and
// the SM's cached wake cycle still in the future, the tick is replaced by
// skipCycles over the single-cycle span — O(1), and bit-identical to
// ticking by the invisibility contract above. Otherwise the SM ticks; if
// the tick's activity hint says the front-end did nothing, the SM's next
// event is computed once and cached, so a long stall costs one scan plus
// O(1) per stalled cycle instead of a full front-end pass per cycle.
//
// The hint is only a heuristic for when the scan is worth running — a
// "busy" verdict just means the SM ticks again next cycle, which is always
// safe. Correctness rests solely on NextEvent's contract, and on the wake
// cache being reset at the SM's two external input points (handleResponse,
// launchCTA). Both run on the coordinating goroutine between cycle
// barriers, so workers never observe a torn nextWake.
func (g *GPU) stepSM(sm *SM, cyc int64) {
	if !g.smSleep {
		sm.tick(cyc)
		return
	}
	if cyc < sm.nextWake {
		sm.sleepCycle(cyc)
		return
	}
	if sm.tick(cyc) {
		sm.nextWake = cyc + 1
		return
	}
	// An issue-less tick means every scheduler completed a full scan, so
	// sm.scanWake already holds the warps' next ready cycle; fold in the
	// policy's self-event and the outbox and the wake is complete. The LSU
	// contributes nothing of its own: an inactive tick implies it is empty
	// or head-of-line stalled on a full MSHR (runLSU would otherwise have
	// moved and made the tick active), and a stalled head resolves only
	// through handleResponse, which resets nextWake.
	//
	// One staleness hazard: the gate checks embedded in this tick's issue
	// scan ran BEFORE the policy's OnCycle hook, so if the policy had a
	// self-event at this very cycle (a window boundary flipping
	// CTAActive/WarpActive during OnCycle), scanWake may ignore warps the
	// flip just enabled — the SM would oversleep a whole active window
	// (caught by the event-lower-bound differential in event_test.go). In
	// that case redo the full scan against the post-hook policy state.
	// Gate flips in the other hooks cannot be missed: OnLoadOutcome and
	// OnRegResponse only fire on ticks the activity hint reports as busy,
	// and OnCTALaunch / response delivery reset nextWake outright.
	pc, pok := sm.pol.NextEvent(cyc)
	if pok && pc <= cyc {
		if w, ok := sm.NextEvent(cyc + 1); ok {
			sm.nextWake = w
		} else {
			sm.nextWake = neverWake
		}
		sm.sleepStalled = sm.lsu.Len() > 0
		return
	}
	wake := sm.scanWake
	if pok && pc < wake {
		wake = pc
	}
	if sm.outbox.Len() > 0 {
		wake = cyc + 1
	}
	sm.nextWake = wake
	sm.sleepStalled = sm.lsu.Len() > 0
}

// sleepCycle applies one slept cycle's accruals using the verdict cached
// at scan time — the O(1) fast path of skipCycles for the per-SM sleeper.
func (sm *SM) sleepCycle(cyc int64) {
	sm.Stats.IssueIdle += int64(sm.cfg.GPU.NumSchedulers)
	if sm.sleepStalled {
		sm.l1.Stats.MSHRStalls++
	}
	sm.slept++
	sm.pol.SkipCycles(cyc, cyc+1)
}

// lsuHeadStalled reports whether the LSU's head-of-line request is a load
// structurally stalled on a full MSHR — the exact predicate processOp
// checks before doing anything else, evaluated with the same pure reads
// (Address, Probe, HasOutstanding, MSHRFree mutate nothing). While it
// holds, a tick changes nothing but l1.Stats.MSHRStalls, and nothing the
// SM itself does can clear it: runLSU is blocked behind the head, issue()
// only appends to the queue's tail, and policy hooks never touch L1 tag or
// MSHR state outside Attach. Only an L1 fill (handleResponse) resolves it.
func (sm *SM) lsuHeadStalled() bool {
	op := sm.lsu.Front()
	if op.isStore {
		return false
	}
	line := sm.kernel.Address(op.loadIdx, op.ctx, op.req)
	return !sm.l1.Probe(line) && !sm.l1.HasOutstanding(line) && !sm.l1.MSHRFree()
}

// skipCycles applies the SM's cycle-proportional accumulators for the
// skipped span [from, to): every scheduler provably found no eligible warp
// in every skipped cycle (otherwise the SM would have advertised an earlier
// event), so the idle counter advances by span x schedulers — exactly what
// ticking would have accumulated. A head-of-line MSHR stall counts one
// retry per skipped cycle (the predicate is constant across the span: the
// fill that clears it is a response-link event, which bounds the skip).
// The policy applies its own integrals.
func (sm *SM) skipCycles(from, to int64) {
	span := to - from
	sm.slept += span
	sm.Stats.IssueIdle += span * int64(sm.cfg.GPU.NumSchedulers)
	if sm.lsu.Len() > 0 && sm.lsuHeadStalled() {
		sm.l1.Stats.MSHRStalls += span
	}
	sm.pol.SkipCycles(from, to)
}

// nextEventCycle returns the earliest cycle >= now at which any component
// of the machine can change simulated state, assuming the engine ticked
// every cycle from now on. ok == false means no component ever will — the
// machine is wedged (e.g. a chaos-stalled DRAM) and only external
// cancellation can end the run.
//
// Component inventory (every Step stage is accounted for):
//
//	dispatch — pinned to now while undispatched CTAs could find a free,
//	           policy-admitted slot (a failed register allocation mutates
//	           nothing, so the retry spin is conservative but correct);
//	sm       — per-SM front-end/LSU/policy events (see SM.NextEvent);
//	l2       — a non-empty L2 input queue is serviced (or MSHR-retried)
//	           every cycle; the feeding link advertises its head arrival;
//	dram     — next schedule or completion cycle (see dram.NextEvent);
//	response — the return link's head arrival;
//	faults   — the injector's armed fault cycles, so a skip never jumps
//	           an exact (stage, cycle) fault point. RunCtx only enables
//	           skipping when the injector implements NextEventer.
func (g *GPU) nextEventCycle(now int64) (int64, bool) {
	if g.nextCTA < g.kernel.GridCTAs {
		for _, sm := range g.sms {
			if sm.HasFreeSlot() && sm.pol.AllowNewCTA() {
				return now, true
			}
		}
	}
	if g.l2Queue.Len() > 0 {
		return now, true
	}
	best, any := int64(0), false
	for _, sm := range g.sms {
		var c int64
		var ok bool
		if g.smSleep {
			// The per-SM wake cache is authoritative while sleeping is on:
			// stepSM refreshes it every ticked cycle and the external-input
			// points reset it, so reading it here is O(1) and never later
			// than a fresh scan would be.
			c, ok = sm.nextWake, sm.nextWake != neverWake
		} else {
			c, ok = sm.NextEvent(now)
		}
		if ok && c <= now {
			return now, true
		}
		best, any = mergeEvent(best, any, c, ok, now)
	}
	c, ok := g.toL2.NextEvent(now)
	best, any = mergeEvent(best, any, c, ok, now)
	c, ok = g.fromL2.NextEvent(now)
	best, any = mergeEvent(best, any, c, ok, now)
	if g.smSleep {
		// Probes run between Steps, where dramDirty is always false (the
		// dram stage consumes it in the same cycle the l2 stage sets it),
		// so the wake cache is current.
		c, ok = g.dramWake, g.dramWake != neverWake
	} else {
		c, ok = g.dram.NextEvent(now)
	}
	best, any = mergeEvent(best, any, c, ok, now)
	if g.faults != nil {
		// RunCtx guarantees the assertion: skipping is disabled for
		// injectors that do not implement NextEventer. Reading the
		// injector's fault flags here is race-free — workers are parked at
		// the cycle barrier between Steps, which orders their writes before
		// this coordinator read.
		ne := g.faults.(NextEventer)
		c, ok = ne.NextEvent(now)
		best, any = mergeEvent(best, any, c, ok, now)
	}
	if any && best <= now {
		return now, true
	}
	return best, any
}

// skipTo fast-forwards the clock from the current cycle to `to` without
// ticking: per-SM and DRAM cycle-proportional state advances in closed
// form, everything else is provably unchanged across the span (that is what
// the event advertisements guarantee). The cycle checker, by design, only
// observes ticked cycles — it validates conservation laws over engine
// state, which a skipped span does not move.
func (g *GPU) skipTo(to int64) {
	from := g.cycle
	for _, sm := range g.sms {
		sm.skipCycles(from, to)
	}
	g.dram.Skip(from, to)
	g.skipped += to - from
	g.cycle = to
}

// SkippedCycles returns how many cycles the run fast-forwarded over instead
// of ticking. Purely diagnostic: it is not part of Result or StateDump
// (those are bit-identical between strict and skipping runs — the whole
// point), but benchmarks report it as the per-bench skip ratio.
func (g *GPU) SkippedCycles() int64 { return g.skipped }

// SleptSMCycles returns the total SM-cycles serviced by the closed-form
// sleep/skip path instead of a full tick, across both mechanisms: per-SM
// sleeping (an SM dozing while the rest of the machine ticks) and global
// fast-forwards. Divided by Cycle() x NumSMs it is the fraction of SM work
// the event engine avoided — the honest skip ratio on machines whose DRAM
// never goes globally idle. Diagnostic only, like SkippedCycles.
func (g *GPU) SleptSMCycles() int64 {
	var n int64
	for _, sm := range g.sms {
		n += sm.slept
	}
	return n
}
