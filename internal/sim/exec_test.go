package sim

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// resultFingerprint renders every headline metric of a run for exact
// comparison across worker counts.
func resultFingerprint(r *Result) string {
	return fmt.Sprintf("cycles=%d instr=%d loads=%v stores=%d l1=%+v rf=%+v l2=%+v dram=%+v ctas=%d/%d extra=%v",
		r.Cycles, r.Instructions, r.Loads, r.Stores, r.L1, r.RF, r.L2, r.DRAM,
		r.CTALaunches, r.CTACompleted, r.Extra)
}

// workerCountsUnderTest returns the deduplicated worker counts of the
// satellite matrix: 1, 2, 4 and GOMAXPROCS.
func workerCountsUnderTest() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestParallelStepBitIdentity proves the core contract of the parallel
// stepping engine: the same run, at every worker count, produces exactly
// the same metrics as the serial engine — including with the invariant
// checker attached (it observes the merged state at the cycle barrier).
func TestParallelStepBitIdentity(t *testing.T) {
	run := func(workers int) *Result {
		cfg := testConfig()
		cfg.GPU.Workers = workers
		g, err := New(cfg, tinyKernel(400, 48), Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Workers(); workers > 1 && got < 2 && runtime.GOMAXPROCS(0) > 1 {
			t.Fatalf("Workers=%d resolved to %d", workers, got)
		}
		if _, err := g.RunCtx(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		return g.Collect()
	}
	want := resultFingerprint(run(1))
	for _, w := range workerCountsUnderTest()[1:] {
		if got := resultFingerprint(run(w)); got != want {
			t.Errorf("Workers=%d diverged from serial run:\n serial: %s\n got:    %s", w, want, got)
		}
	}
}

// TestParallelStepBitIdentityLinebacker repeats the identity check under
// the full Linebacker-shaped policy surface: a policy with per-SM victim
// state, register traffic and CTA throttling exercises every SM-phase hook
// that runs on a worker goroutine.
func TestParallelStepBitIdentityLinebacker(t *testing.T) {
	run := func(workers int) *Result {
		cfg := testConfig()
		cfg.GPU.Workers = workers
		g, err := New(cfg, tinyKernel(600, 96), &regTrafficScheme{done: map[int]bool{}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.RunCtx(context.Background(), 40000); err != nil {
			t.Fatal(err)
		}
		return g.Collect()
	}
	want := resultFingerprint(run(1))
	for _, w := range workerCountsUnderTest()[1:] {
		if got := resultFingerprint(run(w)); got != want {
			t.Errorf("Workers=%d diverged from serial run:\n serial: %s\n got:    %s", w, want, got)
		}
	}
}

// TestParallelStateDumpIdentity pins the full machine state, not just the
// collected metrics: after the same number of cycles the serial and
// parallel engines must hold byte-identical state dumps.
func TestParallelStateDumpIdentity(t *testing.T) {
	dump := func(workers int) string {
		cfg := testConfig()
		cfg.GPU.Workers = workers
		g, err := New(cfg, tinyKernel(400, 48), Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.RunCtx(context.Background(), 3000); err != nil {
			t.Fatal(err)
		}
		return g.StateDump()
	}
	want := dump(1)
	for _, w := range workerCountsUnderTest()[1:] {
		if got := dump(w); got != want {
			t.Errorf("Workers=%d state dump diverged from serial engine", w)
		}
	}
}

// panicAtPolicy panics inside OnCycle of one SM at one cycle — the
// worker-goroutine analogue of an engine bug.
type panicAtPolicy struct {
	sm    int
	cycle int64
}

func (p *panicAtPolicy) Name() string { return "panic-at" }
func (p *panicAtPolicy) Attach(sm *SM) SMPolicy {
	return &panicAtSMPolicy{BasePolicy{}, p, sm.ID()}
}

type panicAtSMPolicy struct {
	BasePolicy
	p  *panicAtPolicy
	id int
}

func (s *panicAtSMPolicy) OnCycle(cycle int64) {
	if s.id == s.p.sm && cycle == s.p.cycle {
		//lbvet:panic test-injected fault: proves worker panics cross the barrier
		panic(fmt.Sprintf("test: injected SM %d panic at cycle %d", s.id, cycle))
	}
}

// TestWorkerPanicPropagates proves a panic on an SM worker goroutine
// resurfaces on the stepping goroutine as a *workerPanic carrying the SM,
// the original value and the worker stack — instead of crashing the
// process from a goroutine no recovery barrier covers.
func TestWorkerPanicPropagates(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.Workers = 2
	g, err := New(cfg, tinyKernel(400, 48), &panicAtPolicy{sm: 1, cycle: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("injected SM worker panic did not propagate")
		}
		wp, ok := p.(*workerPanic)
		if !ok {
			t.Fatalf("propagated panic is %T, want *workerPanic: %v", p, p)
		}
		if wp.sm != 1 {
			t.Errorf("workerPanic.sm = %d, want 1", wp.sm)
		}
		if !strings.Contains(wp.String(), "injected SM 1 panic at cycle 100") {
			t.Errorf("workerPanic lost the original value: %s", wp.String())
		}
		if !strings.Contains(wp.String(), "[SM worker stack]") {
			t.Errorf("workerPanic carries no worker stack: %s", wp.String())
		}
		if g.Cycle() != 100 {
			t.Errorf("machine stopped at cycle %d, want 100", g.Cycle())
		}
	}()
	for i := 0; i < 200; i++ {
		g.Step()
	}
}

// TestResolveWorkers pins the resolution rules: 1 is serial, 0 expands to
// GOMAXPROCS, and the count clamps to the SM count.
func TestResolveWorkers(t *testing.T) {
	mp := runtime.GOMAXPROCS(0)
	cases := []struct{ configured, numSMs, want int }{
		{1, 16, 1},
		{4, 16, 4},
		{4, 2, 2},
		{100, 16, 16},
		{0, 1, 1},
		{0, 1 << 30, mp},
	}
	for _, c := range cases {
		if got := resolveWorkers(c.configured, c.numSMs); got != c.want {
			t.Errorf("resolveWorkers(%d, %d) = %d, want %d", c.configured, c.numSMs, got, c.want)
		}
	}
}

// TestCloseIdempotent proves Close (and a RunCtx that already closed) can
// be called repeatedly and that a closed machine can run again — the
// timeline path calls RunCtx once per window.
func TestCloseIdempotent(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.Workers = 2
	g, err := New(cfg, tinyKernel(400, 48), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	for seg := int64(1); seg <= 3; seg++ {
		if _, err := g.RunCtx(context.Background(), seg*500); err != nil {
			t.Fatal(err)
		}
		g.Close()
		g.Close()
	}
	if g.Cycle() != 1500 {
		t.Fatalf("segmented parallel run stopped at %d, want 1500", g.Cycle())
	}
}
