package sim

import (
	"reflect"
	"testing"
)

// TestSeedDeterminismDeep repeats a run and compares the complete collected
// result — every nested stats block, not a field sample — with
// reflect.DeepEqual. Any divergence means the engine consulted unordered
// state (map iteration, address-dependent scheduling) somewhere.
func TestSeedDeterminismDeep(t *testing.T) {
	run := func() (*Result, []SMStats) {
		g, err := New(testConfig(), tinyKernel(200, 16), Baseline{})
		if err != nil {
			t.Fatal(err)
		}
		g.Run(0)
		perSM := make([]SMStats, 0, len(g.SMs()))
		for _, sm := range g.SMs() {
			perSM = append(perSM, sm.Stats)
		}
		return g.Collect(), perSM
	}
	resA, smA := run()
	resB, smB := run()
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("aggregate results diverged across identical runs:\n%+v\n%+v", resA, resB)
	}
	if !reflect.DeepEqual(smA, smB) {
		t.Fatalf("per-SM stats diverged across identical runs:\n%+v\n%+v", smA, smB)
	}
}
