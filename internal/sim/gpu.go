package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/dram"
	"github.com/linebacker-sim/linebacker/internal/icnt"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/ring"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// l2PortsFor returns how many requests the L2 services per cycle: one slice
// per two SMs, matching the paper's 16-SM / 8-slice proportion.
func l2PortsFor(numSMs int) int {
	p := numSMs / 2
	if p < 1 {
		p = 1
	}
	return p
}

// GPU ties the SMs, interconnect, shared L2 and DRAM together and runs a
// kernel under a Policy.
type GPU struct {
	cfg    config.Config
	kernel *workload.Kernel
	policy Policy

	sms    []*SM
	smpols []SMPolicy

	toL2   *icnt.Link
	fromL2 *icnt.Link

	l2        *cache.Cache
	l2Queue   ring.Buffer[*memtypes.Request]
	l2Waiters map[memtypes.LineAddr][]*memtypes.Request
	l2Service int64
	l2Ports   int

	dram *dram.DRAM

	nextCTA int
	cycle   int64

	// skipped counts cycles the run loop fast-forwarded over instead of
	// ticking (event.go). Diagnostic only: never part of Result/StateDump.
	skipped int64

	// workers is the resolved intra-run parallelism (config.GPU.Workers
	// against this machine); exec is the persistent SM worker pool, built
	// lazily on the first Step when workers > 1 and torn down by Close.
	// With workers == 1 the engine is exactly the serial machine.
	workers int
	exec    *smExecutor

	checker  CycleChecker
	faults   FaultInjector
	smFaults SMTickFaultInjector

	// smSleep enables per-SM sleeping inside ticked cycles (see stepSM in
	// event.go). RunCtx turns it on for event-driven runs with no fault
	// injector: SMTick faults must observe a real tick on every cycle, so
	// any injector forces full per-SM ticking even when global skipping
	// stays legal.
	smSleep bool

	// dramWake caches the DRAM's next event cycle, mirroring the per-SM
	// wake cache: while the clock is below it (and nothing new was
	// enqueued — dramDirty), the dram stage applies Skip's closed-form
	// token/busy accruals instead of running the full scheduler scan.
	// Only consulted when smSleep is on.
	dramWake  int64
	dramDirty bool

	// progress publishes the cumulative committed-instruction count at
	// RunCtx checkpoints. It is the only GPU state a harness watchdog may
	// read concurrently with a running simulation.
	progress atomic.Int64
}

// CycleChecker observes the GPU at the end of simulated cycles. A non-nil
// error aborts the simulation by panic: an invariant violation means the
// engine (or a policy) mis-accounted, and continuing would only produce
// numbers derived from a broken state. internal/check implements this.
type CycleChecker interface {
	CheckCycle(g *GPU, cycle int64) error
}

// SetChecker installs (or, with nil, removes) the cycle checker.
func (g *GPU) SetChecker(c CycleChecker) { g.checker = c }

// FaultInjector observes each Step stage as it is about to execute and may
// mutate the machine or panic — the hook internal/chaos implements to force
// failures at exact (stage, cycle) points. A nil injector costs one pointer
// compare per stage.
type FaultInjector interface {
	Stage(g *GPU, stage string, cycle int64)
}

// SetFaultInjector installs (or, with nil, removes) the fault injector.
// An injector that additionally implements SMTickFaultInjector is also
// consulted inside each SM's tick — on a worker goroutine when the run is
// parallel (see exec.go for the contract that keeps that race-free).
func (g *GPU) SetFaultInjector(f FaultInjector) {
	g.faults = f
	g.smFaults, _ = f.(SMTickFaultInjector)
}

// stage notifies the fault injector that the named Step phase is starting.
func (g *GPU) stage(name string, cyc int64) {
	if g.faults != nil {
		g.faults.Stage(g, name, cyc)
	}
}

// New builds a GPU run. The config is copied; policies may adjust per-SM
// structures in Attach.
func New(cfg config.Config, k *workload.Kernel, pol Policy) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed != 1 {
		// Perturb the synthetic address generators: the default seed (1)
		// leaves the kernel untouched so results are reproducible, while
		// other seeds produce independent trace instances.
		k = k.WithSeed(cfg.Seed)
	}
	g := &GPU{
		cfg:       cfg,
		kernel:    k,
		policy:    pol,
		l2:        cache.New(cfg.GPU.L2Bytes, cfg.GPU.L2Ways, 256, true),
		l2Ports:   l2PortsFor(cfg.GPU.NumSMs),
		l2Waiters: make(map[memtypes.LineAddr][]*memtypes.Request),
		dram:      dram.New(&cfg.GPU),
		workers:   resolveWorkers(cfg.GPU.Workers, cfg.GPU.NumSMs),
	}
	// Split the minimum L2 round trip across request path, service, and
	// response path.
	lat := int64(cfg.GPU.L2Latency)
	g.toL2 = icnt.New(lat*3/10, cfg.GPU.NumSMs*2)
	g.l2Service = lat * 4 / 10
	g.fromL2 = icnt.New(lat*3/10, cfg.GPU.NumSMs*2)

	for i := 0; i < cfg.GPU.NumSMs; i++ {
		sm := newSM(i, &g.cfg, k)
		smp := pol.Attach(sm)
		sm.pol = smp
		g.sms = append(g.sms, sm)
		g.smpols = append(g.smpols, smp)
	}
	return g, nil
}

// SMs exposes the SMs (for probes and tests).
func (g *GPU) SMs() []*SM { return g.sms }

// SMPolicies exposes the per-SM policy instances (for scheme statistics).
func (g *GPU) SMPolicies() []SMPolicy { return g.smpols }

// DRAM exposes the DRAM model (for traffic statistics).
func (g *GPU) DRAM() *dram.DRAM { return g.dram }

// L2 exposes the shared cache.
func (g *GPU) L2() *cache.Cache { return g.l2 }

// Cycle returns the current cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// Kernel returns the running kernel.
func (g *GPU) Kernel() *workload.Kernel { return g.kernel }

// Config returns the run configuration.
func (g *GPU) Config() *config.Config { return &g.cfg }

// Run simulates until the grid completes or maxCycles elapses (0 means use
// cfg.MaxCycles; if that is also 0, run to completion). It returns the
// final cycle count.
func (g *GPU) Run(maxCycles int64) int64 {
	// A background context never cancels, so RunCtx cannot fail.
	cyc, _ := g.RunCtx(context.Background(), maxCycles)
	return cyc
}

// checkpointCycles bounds the interval between cooperative cancellation
// checks: every monitoring-window boundary, and at least this often for
// large windows so a cancelled or watchdog-aborted run reacts promptly.
const checkpointCycles = 8192

// RunCtx simulates until the grid completes, maxCycles elapses (0 means use
// cfg.MaxCycles; if that is also 0, run to completion) or ctx is cancelled.
// Cancellation is cooperative: ctx is consulted at monitoring-window
// boundaries (more often for very long windows), where the engine also
// publishes its committed-instruction count for external watchdogs (see
// Progress). On cancellation the returned error wraps context.Cause(ctx)
// and the machine is left in a consistent between-cycles state — Collect
// and StateDump remain safe, but the run must not be resumed.
//
// Unless cfg.Strict is set, the loop is event-driven: when no component can
// change state this cycle it fast-forwards to the earliest advertised event
// (event.go), clamped to the next checkpoint so cancellation latency and
// watchdog cadence stay bounded in simulated time. Skipped spans publish no
// new progress — committed instructions cannot change across a skip — so a
// livelocked machine still trips an external forward-progress watchdog.
// Results and state dumps are bit-identical to strict mode (test-enforced,
// DESIGN.md §10). A fault injector that does not implement NextEventer
// forces strict ticking: the engine cannot know which cycles it must not
// jump over.
func (g *GPU) RunCtx(ctx context.Context, maxCycles int64) (int64, error) {
	// A parallel run's worker pool lives exactly as long as the run loop:
	// Step builds it lazily, and no goroutine survives past this return
	// (Close is idempotent, so callers that Step by hand and Close
	// themselves compose with RunCtx).
	defer g.Close()
	if maxCycles == 0 {
		maxCycles = g.cfg.MaxCycles
	}
	every := int64(g.cfg.LB.WindowCycles)
	if every <= 0 || every > checkpointCycles {
		every = checkpointCycles
	}
	skipping := !g.cfg.Strict
	if skipping && g.faults != nil {
		_, skipping = g.faults.(NextEventer)
	}
	g.smSleep = skipping && g.faults == nil
	g.progress.Store(g.committed())
	// nextCheck is the first cycle count at or past which a checkpoint
	// fires — the accumulator form of the strict engine's cycle%every == 0
	// test, shared by both modes so checkpoint cycles coincide.
	nextCheck := (g.cycle/every + 1) * every
	for {
		if maxCycles > 0 && g.cycle >= maxCycles {
			g.progress.Store(g.committed())
			return g.cycle, nil
		}
		if g.done() {
			g.progress.Store(g.committed())
			return g.cycle, nil
		}
		if skipping {
			target, ok := g.nextEventCycle(g.cycle)
			if !ok || target > nextCheck {
				// No event before the checkpoint (or none ever — a wedged
				// machine): advance checkpoint-by-checkpoint so ctx and
				// watchdogs keep observing the run.
				target = nextCheck
			}
			if maxCycles > 0 && target > maxCycles {
				target = maxCycles
			}
			if target > g.cycle {
				g.skipTo(target)
				continue
			}
		}
		g.Step()
		if g.cycle >= nextCheck {
			g.progress.Store(g.committed())
			if ctx.Err() != nil {
				return g.cycle, fmt.Errorf("sim: run aborted at cycle %d: %w", g.cycle, context.Cause(ctx))
			}
			nextCheck += every
		}
	}
}

// committed returns the cumulative retired warp instructions over all SMs.
func (g *GPU) committed() int64 {
	var n int64
	for _, sm := range g.sms {
		n += sm.Stats.Retired
	}
	return n
}

// Close tears down the parallel stepping workers, if any are running.
// Idempotent and cheap when the run is serial. Callers that drive Step
// directly with Workers > 1 (benchmarks, tools) should Close when done;
// RunCtx does it automatically.
func (g *GPU) Close() {
	if g.exec != nil {
		g.exec.stop()
		g.exec = nil
	}
}

// Workers returns the resolved intra-run worker count (>= 1) this machine
// will use for the SM phase.
func (g *GPU) Workers() int { return g.workers }

// Progress returns the committed-instruction count published at the last
// RunCtx checkpoint. Safe to call from other goroutines while the
// simulation runs; a watchdog that sees the same value across a wall-clock
// tick is observing a livelocked machine (cycles may still be retiring, but
// no instruction commits).
func (g *GPU) Progress() int64 { return g.progress.Load() }

// done reports grid completion: all CTAs dispatched and all SMs drained.
func (g *GPU) done() bool {
	if g.nextCTA < g.kernel.GridCTAs {
		return false
	}
	for _, sm := range g.sms {
		if sm.Busy() {
			return false
		}
	}
	return g.toL2.Pending() == 0 && g.fromL2.Pending() == 0 &&
		g.l2Queue.Len() == 0 && g.dram.QueueLen() == 0 && g.dram.Inflight() == 0
}

// Step advances the whole GPU by one cycle: a serial dispatch, the SM
// phase (parallel across disjoint SM chunks when Workers > 1, plain loop
// otherwise), an ordered merge of the per-SM outboxes into the
// interconnect, and the serial memory phases. The SM phase only ever
// touches per-SM state, and the merge happens in fixed SM-index order, so
// the machine's trajectory is bit-identical for every worker count
// (DESIGN.md §9).
func (g *GPU) Step() {
	cyc := g.cycle

	g.stage("dispatch", cyc)
	g.dispatch(cyc)

	g.stage("sm", cyc)
	if g.workers > 1 && g.exec == nil {
		g.exec = newSMExecutor(g, g.workers)
	}
	if g.exec != nil {
		g.exec.cycle(cyc)
	} else {
		for id, sm := range g.sms {
			if g.smFaults != nil {
				g.smFaults.SMTick(g, id, cyc)
			}
			g.stepSM(sm, cyc)
		}
	}
	// Barrier merge: drain the per-SM outboxes into the interconnect in
	// SM-index order. The serial engine produced exactly this injection
	// order (ticks never observe the interconnect), so icnt sequence
	// numbers — and every tie-break derived from them — are preserved.
	for _, sm := range g.sms {
		for sm.outbox.Len() > 0 {
			g.toL2.Send(sm.outbox.Pop(), cyc)
		}
	}

	// Requests arriving at L2.
	g.stage("l2", cyc)
	g.toL2.DeliverEach(cyc, func(req *memtypes.Request) { g.l2Queue.Push(req) })
	g.serviceL2(cyc)

	// DRAM. With sleeping enabled and no event due (and no enqueue this
	// cycle), the tick reduces to the closed-form token refill and busy
	// accrual — provably what the full tick would have done (DESIGN.md
	// §10) — and the scheduler scan is elided.
	g.stage("dram", cyc)
	if g.smSleep && cyc < g.dramWake && !g.dramDirty {
		g.dram.Skip(cyc, cyc+1)
	} else {
		active := g.dram.TickEach(cyc, func(req *memtypes.Request) { g.dramComplete(req, cyc) })
		g.dramDirty = false
		if g.smSleep {
			if active {
				// A scheduling or completing DRAM is almost always about
				// to do it again; probing it would cost as much as the
				// tick it tries to save.
				g.dramWake = cyc + 1
			} else if e, ok := g.dram.NextEvent(cyc + 1); ok {
				g.dramWake = e
			} else {
				g.dramWake = neverWake
			}
		}
	}

	// Responses arriving at SMs.
	g.stage("response", cyc)
	g.fromL2.DeliverEach(cyc, func(req *memtypes.Request) { g.sms[req.SM].handleResponse(req, cyc) })

	if g.checker != nil {
		if err := g.checker.CheckCycle(g, cyc); err != nil {
			//lbvet:panic an invariant violation means the engine mis-accounted; the harness isolates this per run
			panic(fmt.Sprintf("sim: invariant violation at cycle %d: %v", cyc, err))
		}
	}

	g.cycle++
}

// dispatch launches new CTAs into free slots, gated by each SM's policy.
func (g *GPU) dispatch(cyc int64) {
	for _, sm := range g.sms {
		if g.nextCTA >= g.kernel.GridCTAs {
			return
		}
		if !sm.HasFreeSlot() || !sm.pol.AllowNewCTA() {
			continue
		}
		if sm.launchCTA(g.nextCTA, cyc) {
			g.nextCTA++
		}
	}
}

// serviceL2 processes up to l2Ports requests from the L2 input queue. The
// queue is a ring buffer: the old slice version's `q = q[1:]` leaked the
// backing array forward every cycle, re-allocating continuously whenever
// the queue stayed busy.
func (g *GPU) serviceL2(cyc int64) {
	for n := 0; n < g.l2Ports && g.l2Queue.Len() > 0; n++ {
		if !g.l2Access(g.l2Queue.Front(), cyc) {
			break // L2 MSHRs exhausted: head-of-line retry next cycle
		}
		g.l2Queue.Pop()
	}
}

// enqueueDRAM hands a request to the DRAM and marks the wake cache dirty:
// a fresh arrival can create a schedule opportunity earlier than the last
// advertised event, so the next dram stage must run the full tick.
func (g *GPU) enqueueDRAM(req *memtypes.Request) {
	g.dram.Enqueue(req)
	g.dramDirty = true
}

// l2Access performs one L2 access; false means stall.
func (g *GPU) l2Access(req *memtypes.Request, cyc int64) bool {
	switch req.Kind {
	case memtypes.RegBackup, memtypes.RegRestore:
		// Register backup space is a dedicated off-chip region; it does not
		// pollute the L2.
		g.enqueueDRAM(req)
		return true
	case memtypes.Store:
		// Death point: the L2 is write-allocate, so a store retires here.
		// Any dirty writeback it displaces is built before the incoming
		// request is recycled (Put zeroes the object). Recycling goes back
		// to the issuing SM's pool — the L2 phase is serial, and returning
		// objects to their origin keeps every per-SM free list balanced.
		res, ev, evicted := g.l2.Store(req.Line)
		if evicted && ev.Dirty {
			g.enqueueDRAM(g.writeback(ev.Line, req.SM))
		}
		_ = res
		g.sms[req.SM].pool.Put(req)
		return true
	case memtypes.Load:
		res, ev, evicted := g.l2.Load(req.Line, 0, true)
		if evicted && ev.Dirty {
			g.enqueueDRAM(g.writeback(ev.Line, req.SM))
		}
		switch res {
		case cache.Hit:
			g.fromL2.Send(req, cyc+g.l2Service)
		case cache.HitPending:
			g.l2Waiters[req.Line] = append(g.l2Waiters[req.Line], req)
		case cache.Miss, cache.MissNoAlloc:
			g.enqueueDRAM(req)
		case cache.Stall:
			return false
		}
		return true
	default:
		//lbvet:panic unreachable by construction: only the four Kinds above are ever enqueued
		panic(fmt.Sprintf("sim: unexpected request kind %v at L2", req.Kind))
	}
}

// writeback builds a pooled dirty-eviction store request, drawn from the
// triggering SM's pool (only ever called from the serial memory phases).
func (g *GPU) writeback(line memtypes.LineAddr, smID int) *memtypes.Request {
	wb := g.sms[smID].pool.Get()
	wb.Line, wb.Kind, wb.SM, wb.WarpID = line, memtypes.Store, smID, -1
	return wb
}

// dramComplete routes a finished DRAM access.
func (g *GPU) dramComplete(req *memtypes.Request, cyc int64) {
	switch req.Kind {
	case memtypes.Store:
		// Writeback completion: nothing to deliver. Death point — recycle
		// to the owning SM's pool (the DRAM phase is serial).
		g.sms[req.SM].pool.Put(req)
	case memtypes.Load:
		g.l2.Fill(req.Line)
		g.fromL2.Send(req, cyc)
		for _, waiter := range g.l2Waiters[req.Line] {
			g.fromL2.Send(waiter, cyc)
		}
		delete(g.l2Waiters, req.Line)
	case memtypes.RegBackup, memtypes.RegRestore:
		g.fromL2.Send(req, cyc)
	}
}
