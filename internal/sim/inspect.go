package sim

import (
	"fmt"
	"strings"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/stats"
)

// This file exposes read-only views of the engine's in-flight state for the
// runtime invariant checker (internal/check). None of these methods mutate
// the simulation; all of them reflect the state between two Step calls.

// ForEachInflight visits every request object currently travelling below
// the SMs: per-SM outboxes, the SM→L2 link, the L2 input queue, requests
// parked on L2 MSHRs, the DRAM queues and service stations, and the L2→SM
// response link. Each live request is visited exactly once.
func (g *GPU) ForEachInflight(fn func(*memtypes.Request)) {
	for _, sm := range g.sms {
		for i := 0; i < sm.outbox.Len(); i++ {
			fn(sm.outbox.At(i))
		}
	}
	g.toL2.ForEach(fn)
	for i := 0; i < g.l2Queue.Len(); i++ {
		fn(g.l2Queue.At(i))
	}
	// Sorted keys: the visit order of merged waiters must not depend on
	// map order — fn may fold the requests into anything, including
	// order-sensitive aggregates.
	for _, line := range stats.SortedKeys(g.l2Waiters) {
		for _, req := range g.l2Waiters[line] {
			fn(req)
		}
	}
	g.dram.ForEach(fn)
	g.fromL2.ForEach(fn)
}

// L2WaiterLines returns the number of distinct lines with requests merged
// into an outstanding L2 fill.
func (g *GPU) L2WaiterLines() int { return len(g.l2Waiters) }

// L2QueueLen returns the occupancy of the L2 input queue.
func (g *GPU) L2QueueLen() int { return g.l2Queue.Len() }

// PendingLoadOps returns the load line-requests waiting in the SM's LSU
// queue (issued by a warp, not yet presented to the L1).
func (sm *SM) PendingLoadOps() int {
	n := 0
	for i := 0; i < sm.lsu.Len(); i++ {
		if !sm.lsu.At(i).isStore {
			n++
		}
	}
	return n
}

// PendingStoreOps returns the store line-requests waiting in the LSU queue.
func (sm *SM) PendingStoreOps() int { return sm.lsu.Len() - sm.PendingLoadOps() }

// WaiterLines returns the number of distinct lines with warps waiting on an
// outstanding L1 fill — by construction equal to the L1's live MSHR count.
func (sm *SM) WaiterLines() int { return len(sm.waiters) }

// WaiterEntries returns the total warp↦line wait registrations: one per
// outstanding line request that has gone below the L1.
func (sm *SM) WaiterEntries() int {
	n := 0
	for _, ws := range sm.waiters {
		n += len(ws)
	}
	return n
}

// HasWaiter reports whether any warp waits on the line.
func (sm *SM) HasWaiter(line memtypes.LineAddr) bool {
	_, ok := sm.waiters[line]
	return ok
}

// ForEachWaitedLine visits every line some warp of this SM waits on, in
// ascending line order so the visit sequence is deterministic.
func (sm *SM) ForEachWaitedLine(fn func(line memtypes.LineAddr, waiters int)) {
	for _, line := range stats.SortedKeys(sm.waiters) {
		fn(line, len(sm.waiters[line]))
	}
}

// SumMemPending returns the outstanding line requests summed over the SM's
// warp contexts (the per-warp scoreboard view of the same in-flight work
// the LSU and waiter structures track).
func (sm *SM) SumMemPending() int {
	n := 0
	for i := range sm.warps {
		n += sm.warps[i].memPending
	}
	return n
}

// OutboxLen returns the requests queued for hand-off to the interconnect.
func (sm *SM) OutboxLen() int { return sm.outbox.Len() }

// StateDump renders a deterministic one-look diagnostic snapshot of the
// machine's in-flight state: where every queue stands and what each SM has
// committed. Harness RunErrors attach it so a watchdog abort or recovered
// panic reports *where* the machine wedged, not just that it did. The dump
// only reads engine state; it is safe between Steps and after a recovered
// panic.
func (g *GPU) StateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d ctas=%d/%d committed=%d\n",
		g.cycle, g.nextCTA, g.kernel.GridCTAs, g.committed())
	fmt.Fprintf(&b, "icnt: toL2=%d fromL2=%d | l2: queue=%d waiterLines=%d | dram: queue=%d inflight=%d stalled=%v\n",
		g.toL2.Pending(), g.fromL2.Pending(), g.l2Queue.Len(), len(g.l2Waiters),
		g.dram.QueueLen(), g.dram.Inflight(), g.dram.Stalled())
	for _, sm := range g.sms {
		fmt.Fprintf(&b, "SM%d: retired=%d resident=%d outbox=%d lsu=%d waitLines=%d waitEntries=%d memPending=%d\n",
			sm.id, sm.Stats.Retired, sm.ResidentCTAs(), sm.outbox.Len(), sm.lsu.Len(),
			sm.WaiterLines(), sm.WaiterEntries(), sm.SumMemPending())
	}
	return b.String()
}
