package sim

import (
	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/dram"
	"github.com/linebacker-sim/linebacker/internal/regfile"
	"github.com/linebacker-sim/linebacker/internal/stats"
)

// ExtraStatser is implemented by SM policies that export scheme-specific
// metrics (victim cache bytes, monitoring windows, throttle level, ...).
type ExtraStatser interface {
	ExtraStats() map[string]float64
}

// Result aggregates a finished run.
type Result struct {
	Policy       string
	Kernel       string
	Cycles       int64
	Instructions int64

	// Per-line-request outcome counts summed over SMs (Figure 13).
	Loads  [5]int64 // indexed by Outcome
	Stores int64

	L1   cache.Stats   // summed over SMs
	RF   regfile.Stats // summed over SMs
	L2   cache.Stats
	DRAM dram.Stats

	CTALaunches  int64
	CTACompleted int64

	// Extra holds scheme-specific metrics, averaged over SMs.
	Extra map[string]float64
}

// IPC returns retired warp instructions per cycle over the whole GPU.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// TotalLoadReqs returns all load line-requests.
func (r *Result) TotalLoadReqs() int64 {
	var n int64
	for _, v := range r.Loads {
		n += v
	}
	return n
}

// HitRatio returns the combined L1 + victim (Reg) hit fraction of load
// requests — the paper's "aggregated Reg hit and cache hit ratio".
func (r *Result) HitRatio() float64 {
	t := r.TotalLoadReqs()
	if t == 0 {
		return 0
	}
	return float64(r.Loads[OutHit]+r.Loads[OutRegHit]) / float64(t)
}

// RegHitRatio returns the victim-cache hit fraction of load requests.
func (r *Result) RegHitRatio() float64 {
	t := r.TotalLoadReqs()
	if t == 0 {
		return 0
	}
	return float64(r.Loads[OutRegHit]) / float64(t)
}

// Collect gathers the result of a completed run.
func (g *GPU) Collect() *Result {
	r := &Result{
		Policy: g.policy.Name(),
		Kernel: g.kernel.Name,
		Cycles: g.cycle,
		L2:     g.l2.Stats,
		DRAM:   g.dram.Stats,
		Extra:  map[string]float64{},
	}
	for _, sm := range g.sms {
		r.Instructions += sm.Stats.Retired
		for i, v := range sm.Stats.LoadReqs {
			r.Loads[i] += v
		}
		r.Stores += sm.Stats.StoreReqs
		r.CTALaunches += sm.Stats.CTALaunches
		r.CTACompleted += sm.Stats.CTADone
		addCacheStats(&r.L1, &sm.l1.Stats)
		addRFStats(&r.RF, &sm.rf.Stats)
	}
	n := float64(len(g.smpols))
	for _, p := range g.smpols {
		if es, ok := p.(ExtraStatser); ok {
			// Sorted keys keep the float accumulation into Extra in one
			// fixed order across runs (map order would reorder the sums).
			ex := es.ExtraStats()
			for _, k := range stats.SortedKeys(ex) {
				r.Extra[k] += ex[k] / n
			}
		}
	}
	return r
}

func addCacheStats(dst, src *cache.Stats) {
	dst.LoadHits += src.LoadHits
	dst.LoadPendingHits += src.LoadPendingHits
	dst.LoadMisses += src.LoadMisses
	dst.ColdMisses += src.ColdMisses
	dst.CapConfMisses += src.CapConfMisses
	dst.StoreHits += src.StoreHits
	dst.StoreMisses += src.StoreMisses
	dst.Bypasses += src.Bypasses
	dst.Evictions += src.Evictions
	dst.DirtyEvictions += src.DirtyEvictions
	dst.MSHRStalls += src.MSHRStalls
}

func addRFStats(dst, src *regfile.Stats) {
	dst.OperandAccesses += src.OperandAccesses
	dst.VictimReads += src.VictimReads
	dst.VictimWrites += src.VictimWrites
	dst.BackupReads += src.BackupReads
	dst.RestoreWrites += src.RestoreWrites
	dst.BankConflicts += src.BankConflicts
}
