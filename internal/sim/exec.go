package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// This file is the deterministic parallel stepping engine (DESIGN.md §9):
// a persistent pool of workers that steps disjoint, contiguous chunks of
// SMs concurrently within one cycle and joins at a barrier before the
// serial memory phase runs. It is the ONLY sanctioned concurrency inside
// the cycle-level engine — the lbvet nondeterm analyzer bans every other
// goroutine in simulation packages, and the //lbvet:executor directives
// below are the single escape hatch.
//
// Why this is safe to run in parallel (and bit-identical at any worker
// count):
//
//   - During the SM phase, an SM touches only its own state: warps, L1,
//     register file, per-SM policy, per-SM request pool and per-SM outbox.
//     The kernel is read-only and address generation is pure.
//   - All cross-SM effects are buffered: line requests go to the per-SM
//     outbox and are merged into the interconnect in fixed SM-index order
//     at the barrier, so icnt sequence numbers — and therefore every
//     downstream tie-break — are identical to the serial engine's.
//   - The L2, DRAM and response phases stay serial; they are the only
//     cross-SM coupling (Accel-Sim's observation) and cost a small
//     fraction of the cycle.

// SMTickFaultInjector is the optional fault-injection extension for the
// parallel SM phase: unlike FaultInjector.Stage, which runs once per stage
// on the coordinating goroutine, SMTick runs inside each SM's tick — on a
// worker goroutine when Workers > 1. Implementations must only act on one
// deterministically chosen SM and must not share mutable state across SMs
// (internal/chaos picks a seed-derived victim).
type SMTickFaultInjector interface {
	SMTick(g *GPU, smID int, cycle int64)
}

// workerPanic carries a panic recovered on an SM worker across the cycle
// barrier so it can resurface on the coordinating goroutine, where the
// harness's recovery barrier turns it into a structured *RunError.
type workerPanic struct {
	sm    int // SM whose tick panicked
	val   any
	stack string
}

// String renders the original panic value and the worker's stack; the
// harness embeds it in the RunError message.
func (p *workerPanic) String() string {
	return fmt.Sprintf("SM %d worker: %v\n[SM worker stack]\n%s", p.sm, p.val, p.stack)
}

// smExecutor is the persistent worker pool. Worker w owns the contiguous
// SM range [bounds[w], bounds[w+1]); chunks are fixed for the lifetime of
// the run, so work assignment never depends on scheduling.
type smExecutor struct {
	g      *GPU
	bounds []int
	start  []chan int64 // per-worker cycle kick; closed by stop
	done   chan struct{}
	panics []*workerPanic // slot w written only by worker w, read at barrier
	wg     sync.WaitGroup
}

// resolveWorkers maps the configured worker count onto this machine: 0
// expands to GOMAXPROCS and the result is clamped to [1, numSMs]. The
// answer can differ between hosts — which is exactly why results must not
// (and, test-enforced, do not) depend on it.
func resolveWorkers(configured, numSMs int) int {
	w := configured
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > numSMs {
		w = numSMs
	}
	return w
}

// newSMExecutor starts workers persistent goroutines. workers must be >= 2
// (a single worker is the serial path and never builds an executor).
func newSMExecutor(g *GPU, workers int) *smExecutor {
	n := len(g.sms)
	e := &smExecutor{
		g:      g,
		bounds: make([]int, workers+1),
		start:  make([]chan int64, workers),
		done:   make(chan struct{}, workers),
		panics: make([]*workerPanic, workers),
	}
	// Contiguous chunks differing in size by at most one SM, low indices
	// first — the deterministic analogue of a static OpenMP schedule.
	for w := 0; w <= workers; w++ {
		e.bounds[w] = w * n / workers
	}
	for w := 0; w < workers; w++ {
		e.start[w] = make(chan int64, 1)
		e.wg.Add(1)
		//lbvet:executor cycle-barrier SM worker: disjoint chunk, merged in SM-index order at the barrier (DESIGN.md §9)
		go e.worker(w)
	}
	return e
}

// worker is one pool member: it waits for a cycle kick, ticks its chunk,
// and reports completion. It exits when its start channel is closed.
func (e *smExecutor) worker(w int) {
	defer e.wg.Done()
	lo, hi := e.bounds[w], e.bounds[w+1]
	for cyc := range e.start[w] {
		e.panics[w] = e.tickRange(cyc, lo, hi)
		e.done <- struct{}{}
	}
}

// tickRange advances SMs [lo, hi) one cycle, converting a panic into a
// workerPanic so one SM's failure cannot crash the process from a
// non-coordinating goroutine.
func (e *smExecutor) tickRange(cyc int64, lo, hi int) (wp *workerPanic) {
	smID := lo
	defer func() {
		if r := recover(); r != nil {
			wp = &workerPanic{sm: smID, val: r, stack: string(debug.Stack())}
		}
	}()
	for smID = lo; smID < hi; smID++ {
		sm := e.g.sms[smID]
		if e.g.smFaults != nil {
			e.g.smFaults.SMTick(e.g, smID, cyc)
		}
		// stepSM may sleep the SM through this cycle (event.go); the wake
		// cache it reads is only written by this worker's own ticks and by
		// coordinator code between barriers, so the access is race-free.
		e.g.stepSM(sm, cyc)
	}
	return nil
}

// cycle runs one parallel SM phase: kick every worker, wait for all of
// them (the barrier), then re-raise the lowest-indexed worker panic, if
// any — a deterministic choice even when several chunks fail in the same
// cycle. Steady state allocates nothing.
func (e *smExecutor) cycle(cyc int64) {
	for _, ch := range e.start {
		ch <- cyc
	}
	for range e.start {
		<-e.done
	}
	for _, wp := range e.panics {
		if wp != nil {
			//lbvet:panic re-raising a recovered SM-worker panic on the coordinator; the harness run barrier structures it
			panic(wp)
		}
	}
}

// stop shuts the pool down and waits for every worker to exit, so no
// goroutine outlives the run that spawned it.
func (e *smExecutor) stop() {
	for _, ch := range e.start {
		close(ch)
	}
	e.wg.Wait()
}
