package sim

import "testing"

// TestStepAllocCeiling pins the steady-state allocation cost of GPU.Step.
// Before the request pool and ring-buffer queues, a warmed step averaged ~9
// heap allocations (fresh Request objects, container/heap boxing, reslice
// leaks); pooling brought it down to ~1 (waiter-list appends on misses).
// The ceiling is deliberately loose — it exists to catch a regression that
// reintroduces per-request allocation, not to freeze the exact count.
func TestStepAllocCeiling(t *testing.T) {
	g, err := New(testConfig(), tinyKernel(400, 48), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: pool and ring high-water marks are reached once the memory
	// system is saturated.
	for i := 0; i < 2000; i++ {
		g.Step()
	}
	const steps = 2000
	perStep := testing.AllocsPerRun(1, func() {
		for i := 0; i < steps; i++ {
			g.Step()
		}
	}) / steps
	const ceiling = 5.0
	if perStep > ceiling {
		t.Errorf("GPU.Step allocates %.2f objects/step steady-state, ceiling %v", perStep, ceiling)
	}
}

// TestStepAllocCeilingParallel holds the parallel engine to the same
// steady-state budget: per-SM request pools must keep their free lists
// balanced even though stores die at L2/DRAM, away from the issuing SM (the
// serial phases return them to the issuer's pool), and the executor's
// kick/barrier channels must not allocate per cycle. The ceiling gets one
// extra object over the serial budget for scheduler bookkeeping.
func TestStepAllocCeilingParallel(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.Workers = 2
	g, err := New(cfg, tinyKernel(400, 48), Baseline{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 2000; i++ {
		g.Step()
	}
	const steps = 2000
	perStep := testing.AllocsPerRun(1, func() {
		for i := 0; i < steps; i++ {
			g.Step()
		}
	}) / steps
	const ceiling = 6.0
	if perStep > ceiling {
		t.Errorf("parallel GPU.Step allocates %.2f objects/step steady-state, ceiling %v", perStep, ceiling)
	}
}
