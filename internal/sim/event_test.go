package sim

import (
	"fmt"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// eventBoundChecker is a CycleChecker that proves the event-lower-bound
// half of the invisibility contract (DESIGN.md §10) from inside a strict
// run: after every ticked cycle it fingerprints all engine state that is
// NOT a per-cycle accrual, and whenever the machine advertises its next
// event at cycle E it demands the fingerprint stay frozen until E. A
// fingerprint change at any cycle < E means some component advertised its
// event too late — the exact bug class that would make a skipping run
// diverge from this strict one.
//
// The exempt accruals (scheduler IssueIdle, L1 MSHRStalls, DRAM busy and
// bandwidth-token state, policy byte-cycle integrals) are the quantities
// skipTo applies in closed form; everything else must be event-driven.
type eventBoundChecker struct {
	fp      uint64
	until   int64
	started bool
	checks  int64
	spans   int64 // advertisements with until > now+1 (real skippable spans)
	err     error
}

func (c *eventBoundChecker) CheckCycle(g *GPU, cycle int64) error {
	nfp := eventFingerprint(g)
	if c.started && nfp != c.fp && cycle < c.until {
		c.err = fmt.Errorf("engine state changed at cycle %d, but the machine advertised no event before cycle %d",
			cycle, c.until)
		return c.err
	}
	c.checks++
	if !c.started || nfp != c.fp || cycle+1 >= c.until {
		if e, ok := g.nextEventCycle(cycle + 1); ok {
			c.until = e
		} else {
			c.until = neverWake
		}
		if c.until > cycle+2 {
			c.spans++
		}
		c.fp = nfp
		c.started = true
	}
	return nil
}

// eventFingerprint digests every piece of engine state the event protocol
// promises is frozen across an advertised idle span. Per-cycle accruals are
// deliberately absent; cache structural state enters through StateHash,
// which excludes them by construction.
func eventFingerprint(g *GPU) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	mixb := func(b bool) {
		if b {
			mix(1)
		} else {
			mix(0)
		}
	}
	mix(int64(g.nextCTA))
	mix(int64(g.l2Queue.Len()))
	mix(int64(g.toL2.Pending()))
	mix(int64(g.fromL2.Pending()))
	mix(int64(g.l2.StateHash()))
	mix(int64(g.dram.QueueLen()))
	mix(int64(g.dram.Inflight()))
	ds := g.dram.Stats // BusyCycles is the DRAM's per-cycle accrual
	for _, v := range []int64{ds.Reads, ds.Writes, ds.BytesRead, ds.BytesWritten,
		ds.RegBackupBytes, ds.RegRestoreBytes, ds.RowHits, ds.RowMisses} {
		mix(v)
	}
	for _, sm := range g.sms {
		mix(sm.Stats.Retired)
		mix(sm.Stats.StoreReqs)
		mix(sm.Stats.CTALaunches)
		mix(sm.Stats.CTADone)
		for _, v := range sm.Stats.LoadReqs {
			mix(v)
		}
		mix(int64(sm.lsu.Len()))
		mix(int64(sm.outbox.Len()))
		mix(int64(sm.freeSlots))
		mix(int64(sm.l1.StateHash()))
		for i := range sm.warps {
			w := &sm.warps[i]
			mixb(w.Alive)
			mixb(w.retired)
			mix(int64(w.iter))
			mix(int64(w.pcIdx))
			mix(w.readyAt)
			mix(int64(w.memPending))
		}
	}
	return h
}

// pulsePolicy gates every CTA off during alternating windows of `period`
// cycles and advertises the boundary through NextEvent — a minimal
// policy-driven event source that forces the engine to merge policy events
// into its global minimum. During an "off" phase the whole SM front-end is
// idle, so any too-late advertisement from the policy merge path would
// surface as a lower-bound violation.
type pulsePolicy struct{ period int64 }

func (p pulsePolicy) Name() string           { return "pulse" }
func (p pulsePolicy) Attach(sm *SM) SMPolicy { return &pulseState{period: p.period} }

type pulseState struct {
	BasePolicy
	period int64
	on     bool
}

func (s *pulseState) CTAActive(int) bool { return s.on }
func (s *pulseState) OnCycle(cycle int64) {
	s.on = (cycle/s.period)%2 == 0
}
func (s *pulseState) NextEvent(now int64) (int64, bool) {
	// The phase flips during OnCycle of every multiple of period, so the
	// earliest self-event >= now is the ceiling boundary (now itself when
	// now is a boundary — the eventBoundChecker caught the off-by-one
	// floor+period version advertising past a flip).
	return (now + s.period - 1) / s.period * s.period, true
}
func (s *pulseState) SkipCycles(from, to int64) {
	// on is a pure function of the last OnCycle's cycle; replay the final
	// skipped cycle's decision so a skipping run lands in the same phase.
	if to > from {
		s.on = ((to-1)/s.period)%2 == 0
	}
}

func eventBoundCfg() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 4
	cfg.GPU.DRAMBandwidthGBs = 176.25
	cfg.GPU.DRAMChannels = 4
	cfg.GPU.L2Bytes = 512 * 1024
	cfg.LB.WindowCycles = 12500
	cfg.Strict = true // tick every cycle so the checker sees each transition
	return cfg
}

// TestEventLowerBound runs strict simulations with the lower-bound checker
// installed: every advertised event must be a true lower bound on the next
// engine-state change. Covers a memory-bound benchmark under the stateless
// baseline (warp readyAt / MSHR / DRAM events) and under a window-pulsed
// gating policy (policy NextEvent merge path).
func TestEventLowerBound(t *testing.T) {
	benches := []string{"S2", "BC"}
	if testing.Short() {
		benches = benches[:1]
	}
	pols := map[string]func() Policy{
		"baseline": func() Policy { return Baseline{} },
		"pulse":    func() Policy { return pulsePolicy{period: 3000} },
	}
	for _, bench := range benches {
		b, ok := workload.ByName(bench)
		if !ok {
			t.Fatalf("workload %s not found", bench)
		}
		for name, mk := range pols {
			t.Run(bench+"/"+name, func(t *testing.T) {
				t.Parallel() // each case owns its GPU; no shared state
				cfg := eventBoundCfg()
				g, err := New(cfg, b.Kernel, mk())
				if err != nil {
					t.Fatal(err)
				}
				chk := &eventBoundChecker{}
				g.SetChecker(chk)
				g.Run(60_000)
				if chk.err != nil {
					t.Fatalf("event lower bound violated: %v", chk.err)
				}
				if chk.checks == 0 {
					t.Fatal("checker never ran")
				}
				if chk.spans == 0 {
					t.Errorf("no advertisement ever exceeded now+1; the property was vacuous")
				}
				t.Logf("checked %d cycles, %d multi-cycle advertisements", chk.checks, chk.spans)
			})
		}
	}
}

// TestPulsePolicySkipEquivalence cross-checks the pulse policy used above:
// its own NextEvent/SkipCycles implementation must satisfy the invisibility
// contract, which doubles as a second strict-vs-skip differential on a
// policy written independently of the shipped schemes.
func TestPulsePolicySkipEquivalence(t *testing.T) {
	b, ok := workload.ByName("S2")
	if !ok {
		t.Fatal("workload S2 not found")
	}
	run := func(strict bool) (string, int64) {
		cfg := eventBoundCfg()
		cfg.Strict = strict
		g, err := New(cfg, b.Kernel, pulsePolicy{period: 3000})
		if err != nil {
			t.Fatal(err)
		}
		g.Run(60_000)
		return g.StateDump(), g.SkippedCycles()
	}
	ds, _ := run(true)
	dk, skipped := run(false)
	if ds != dk {
		t.Fatalf("pulse policy diverged between strict and skipping:\n--- strict ---\n%s\n--- skipping ---\n%s", ds, dk)
	}
	if skipped == 0 {
		t.Error("skipping run never skipped; differential was vacuous")
	}
}
