package core

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.GPU.NumSMs = 2
	cfg.GPU.DRAMBandwidthGBs = 88
	cfg.GPU.DRAMChannels = 2
	cfg.GPU.L2Bytes = 256 * 1024
	cfg.LB.WindowCycles = 4000
	return cfg
}

// sensitiveKernel thrashes a 48 KB L1: a shared 48 KB per-SM working set
// plus per-CTA tiles (aggregate footprint shrinks under throttling) plus a
// streaming load. Register usage leaves ~48 KB statically unused so victim
// caching has space even before throttling (8 CTAs × 8 warps × 24 regs =
// 1536 of 2048 warp-registers).
func sensitiveKernel() *workload.Kernel {
	return workload.NewKernel("sens",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 48 * 1024, Coalesced: 1, Phase: 1},
			{Pattern: workload.Tiled, Scope: workload.PerCTA, WorkingSetBytes: 8 * 1024, Coalesced: 1, Phase: 1},
			{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1},
		},
		[]workload.LoadSpec{{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1}},
		2, 8, 100000, 8, 24, 4096)
}

// insensitiveKernel streams only: no locality anywhere.
func insensitiveKernel() *workload.Kernel {
	return workload.NewKernel("insens",
		[]workload.LoadSpec{
			{Pattern: workload.Streaming, Scope: workload.PerWarp, Coalesced: 1},
		},
		nil, 2, 8, 100000, 8, 32, 4096)
}

func runPolicy(t *testing.T, k *workload.Kernel, pol sim.Policy, cycles int64) *sim.Result {
	t.Helper()
	g, err := sim.New(testConfig(), k, pol)
	if err != nil {
		t.Fatal(err)
	}
	g.Run(cycles)
	return g.Collect()
}

func TestLinebackerSelectsHighLocalityLoad(t *testing.T) {
	r := runPolicy(t, sensitiveKernel(), New(), 40_000)
	if r.Extra["lb_disabled"] != 0 {
		t.Fatal("Linebacker disabled on a cache-sensitive kernel")
	}
	if r.Extra["lb_selected_loads"] < 1 {
		t.Fatalf("selected loads = %v, want >= 1", r.Extra["lb_selected_loads"])
	}
	if r.Extra["lb_monitor_windows"] < 2 {
		t.Fatalf("monitoring took %v windows, want >= 2", r.Extra["lb_monitor_windows"])
	}
}

func TestLinebackerDisablesOnStreamingKernel(t *testing.T) {
	r := runPolicy(t, insensitiveKernel(), New(), 40_000)
	if r.Extra["lb_disabled"] != 1 {
		t.Fatal("Linebacker stayed enabled on a pure-streaming kernel")
	}
	if r.Extra["lb_throttle_events"] != 0 {
		t.Fatal("disabled Linebacker throttled CTAs")
	}
	if r.Loads[sim.OutRegHit] != 0 {
		t.Fatal("disabled Linebacker produced reg hits")
	}
}

func TestLinebackerThrottlesAndBacksUp(t *testing.T) {
	r := runPolicy(t, sensitiveKernel(), New(), 120_000)
	if r.Extra["lb_throttle_events"] < 1 {
		t.Fatalf("throttle events = %v, want >= 1 (proactive throttle after monitoring)", r.Extra["lb_throttle_events"])
	}
	if r.Extra["lb_backup_regs"] < 1 {
		t.Fatal("no registers backed up")
	}
	if r.DRAM.RegBackupBytes == 0 {
		t.Fatal("no backup traffic reached DRAM")
	}
	// Backup traffic must match registers backed up (128 B per register).
	if got, want := r.DRAM.RegBackupBytes, int64(r.Extra["lb_backup_regs"]*128*2); got != want {
		// Extra is averaged over 2 SMs; total = avg * SMs.
		t.Fatalf("backup bytes %d, want %d", got, want)
	}
}

func TestLinebackerProducesRegHits(t *testing.T) {
	r := runPolicy(t, sensitiveKernel(), New(), 200_000)
	if r.Loads[sim.OutRegHit] == 0 {
		t.Fatal("no victim-cache (Reg) hits on a thrashing kernel")
	}
	if r.Extra["lb_vtt_hits"] == 0 || r.Extra["lb_vtt_installs"] == 0 {
		t.Fatalf("vtt hits=%v installs=%v", r.Extra["lb_vtt_hits"], r.Extra["lb_vtt_installs"])
	}
	// Victim reads in the register file must match VTT hits per SM.
	if r.RF.VictimReads == 0 {
		t.Fatal("no register-file victim reads recorded")
	}
}

func TestLinebackerBeatsBaselineOnSensitiveKernel(t *testing.T) {
	k := sensitiveKernel()
	base := runPolicy(t, k, sim.Baseline{}, 200_000)
	lb := runPolicy(t, k, New(), 200_000)
	if lb.IPC() <= base.IPC() {
		t.Fatalf("Linebacker IPC %.3f not above baseline %.3f", lb.IPC(), base.IPC())
	}
}

func TestLinebackerHarmlessOnInsensitiveKernel(t *testing.T) {
	k := insensitiveKernel()
	base := runPolicy(t, k, sim.Baseline{}, 100_000)
	lb := runPolicy(t, k, New(), 100_000)
	ratio := lb.IPC() / base.IPC()
	if ratio < 0.95 {
		t.Fatalf("Linebacker slowed a streaming kernel by %.1f%%", (1-ratio)*100)
	}
}

func TestSelectiveVsPreserveAllVictimCaching(t *testing.T) {
	// With a big streaming load, preserve-all wastes victim space on
	// stream lines; selective should produce at least as many useful hits.
	k := sensitiveKernel()
	all := runPolicy(t, k, NewWith(Options{Selection: false}), 150_000)
	sel := runPolicy(t, k, NewWith(Options{Selection: true}), 150_000)
	if sel.IPC() < all.IPC()*0.9 {
		t.Fatalf("selective (%.3f IPC) far below preserve-all (%.3f IPC)", sel.IPC(), all.IPC())
	}
	// Preserve-all must have installed streaming lines (more installs per
	// hit) — check install efficiency.
	if all.Extra["lb_vtt_installs"] <= sel.Extra["lb_vtt_installs"] {
		t.Fatalf("preserve-all installs %v <= selective %v",
			all.Extra["lb_vtt_installs"], sel.Extra["lb_vtt_installs"])
	}
}

func TestVictimNeverDirtyInvariant(t *testing.T) {
	// A kernel that stores into its reuse region: every store must drop
	// the victim copy, so no reg hit can return stale data. We check the
	// mechanism-level invariant: store invalidates are recorded and reg
	// hits never exceed installs.
	k := workload.NewKernel("storehit",
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 80 * 1024, Coalesced: 1, Phase: 1},
		},
		[]workload.LoadSpec{
			{Pattern: workload.Tiled, Scope: workload.PerSM, WorkingSetBytes: 80 * 1024, Coalesced: 1, Phase: 1},
		},
		2, 8, 100000, 8, 32, 4096)
	r := runPolicy(t, k, New(), 120_000)
	if r.Extra["lb_vtt_hits"] > 0 && r.Extra["lb_vtt_installs"] == 0 {
		t.Fatal("hits without installs")
	}
	// Stores into the cached working set must invalidate victim copies.
	if r.Loads[sim.OutRegHit] > 0 {
		if es := r.Extra["lb_vtt_installs"]; es == 0 {
			t.Fatal("impossible: reg hits with no installs")
		}
	}
}

func TestThrottlingRecoversParallelismOnDrop(t *testing.T) {
	// After heavy throttling, if IPC collapses the controller must restore
	// CTAs. We simply assert the mechanism fires on at least one SM across
	// a long run (reactivations > 0 requires the IPC to have dropped).
	r := runPolicy(t, sensitiveKernel(), New(), 400_000)
	_ = r
	// The run must keep at least one CTA active per SM at all times —
	// indirectly verified by forward progress:
	if r.Instructions == 0 {
		t.Fatal("no forward progress under throttling")
	}
	if r.Extra["lb_active_ctas"] < 1 {
		t.Fatalf("active CTAs = %v", r.Extra["lb_active_ctas"])
	}
}

func TestFigure6Workflow(t *testing.T) {
	// The paper's walkthrough: monitoring (2 windows) → selection →
	// proactive throttle → backup → victim caching → possible restore.
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	k := sensitiveKernel()
	g, err := sim.New(cfg, k, New())
	if err != nil {
		t.Fatal(err)
	}
	pol := g.SMPolicies()[0].(*SMState)

	// P0-P1: locality monitoring.
	g.Run(int64(cfg.LB.WindowCycles)*2 - 1)
	if pol.phase != phaseMonitoring {
		t.Fatalf("phase during first two windows = %v, want monitoring", pol.phase)
	}
	// After monitoring converges the policy activates and throttles.
	g.Run(int64(cfg.LB.WindowCycles) * 4)
	if pol.phase != phaseActive {
		t.Fatalf("phase = %v, want active", pol.phase)
	}
	if len(pol.selected) == 0 {
		t.Fatal("no loads selected")
	}
	if pol.throttleEvents == 0 {
		t.Fatal("no proactive throttle after monitoring")
	}
	// Let the backup finish and victim caching engage.
	g.Run(int64(cfg.LB.WindowCycles) * 10)
	if pol.vtt.ActiveParts() == 0 {
		t.Fatal("no victim partitions activated after backup")
	}
	if pol.backupRegs == 0 {
		t.Fatal("no registers backed up")
	}
	// The register space of inactive CTAs must not overlap victim RNs.
	lrn := g.SMs()[0].RF().LargestLiveRN()
	first := pol.vtt.FirstUsableFor(lrn)
	if pol.vtt.ActiveParts() > pol.vtt.MaxParts()-first {
		t.Fatal("victim partitions overlap live registers")
	}
}
