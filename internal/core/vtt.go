package core

import (
	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

// VTT is the Victim Tag Table: up to MaxPartitions tag arrays (VPs), each a
// ways-way set-associative structure with the same set count as the L1
// (48 sets). Partition N maps its entries onto warp-registers by Equation 2:
//
//	RN = Offset + N*sets*ways + set*ways + way
//
// Partitions become usable only when their whole register range lies above
// the largest live register number (and the backing registers have been
// backed up); the usable partitions always form a suffix [lo, MaxPartitions).
type VTT struct {
	sets, ways int
	maxParts   int
	offset     int

	lo      int        // first usable partition
	entries []vttEntry // indexed [part][set][way] flattened
	stamp   int64

	// Accesses counts partition probes for the energy model (one per
	// partition searched).
	Accesses int64
	// Hits/Installs/Drops/StoreInvalidates count victim-cache events.
	Hits             int64
	Installs         int64
	Drops            int64 // replacements of a valid victim line
	StoreInvalidates int64
}

type vttEntry struct {
	valid bool
	tag   memtypes.LineAddr
	lru   int64
}

// NewVTT builds a victim tag table. offset is the paper's register-number
// offset (511); totalRegs bounds the mappable register numbers.
func NewVTT(sets, ways, maxParts, offset, totalRegs int) *VTT {
	// Clamp maxParts so every partition maps within the register file
	// (the highest RN is offset + maxParts*sets*ways).
	for maxParts > 0 && offset+maxParts*sets*ways > totalRegs-1 {
		maxParts--
	}
	return &VTT{
		sets: sets, ways: ways, maxParts: maxParts, offset: offset,
		lo:      maxParts, // nothing usable until SetUsable is called
		entries: make([]vttEntry, maxParts*sets*ways),
	}
}

// PartRegs returns the warp-registers covered by one partition.
func (v *VTT) PartRegs() int { return v.sets * v.ways }

// MaxParts returns the partition count limit.
func (v *VTT) MaxParts() int { return v.maxParts }

// ActiveParts returns the number of usable partitions.
func (v *VTT) ActiveParts() int { return v.maxParts - v.lo }

// CapacityBytes returns the active victim storage in bytes.
func (v *VTT) CapacityBytes() int { return v.ActiveParts() * v.PartRegs() * memtypes.LineSize }

// FirstUsableFor returns the lowest partition index whose whole register
// range lies strictly above lrn (the largest live register number).
// Partition N occupies RNs [offset+1+N*partRegs, offset+(N+1)*partRegs].
func (v *VTT) FirstUsableFor(lrn int) int {
	for n := 0; n < v.maxParts; n++ {
		if v.offset+1+n*v.PartRegs() > lrn {
			return n
		}
	}
	return v.maxParts
}

// SetUsable marks partitions [lo, maxParts) usable, invalidating entries of
// partitions that drop out (victim lines are never dirty, so dropping them
// is always safe).
func (v *VTT) SetUsable(lo int) {
	if lo < 0 {
		lo = 0
	}
	if lo > v.maxParts {
		lo = v.maxParts
	}
	if lo > v.lo {
		// Partitions [v.lo, lo) are reclaimed: drop their lines.
		for p := v.lo; p < lo; p++ {
			base := p * v.PartRegs()
			for i := 0; i < v.PartRegs(); i++ {
				v.entries[base+i] = vttEntry{}
			}
		}
	}
	v.lo = lo
}

func (v *VTT) setIndex(line memtypes.LineAddr) int {
	return int((uint64(line) / memtypes.LineSize) % uint64(v.sets))
}

func (v *VTT) entry(part, set, way int) *vttEntry {
	return &v.entries[part*v.PartRegs()+set*v.ways+way]
}

// rn computes Equation 2 for a hit at (part, set, way). With the paper's
// Offset of 511, victim lines map to RN 512–2047.
func (v *VTT) rn(part, set, way int) int {
	return v.offset + 1 + part*v.PartRegs() + set*v.ways + way
}

// Probe searches the usable partitions in sequential order. On a hit it
// refreshes LRU and returns the register number and the probe latency in
// partition-steps (1 = found in the first partition searched).
func (v *VTT) Probe(line memtypes.LineAddr) (rn int, steps int, ok bool) {
	set := v.setIndex(line)
	for p := v.lo; p < v.maxParts; p++ {
		v.Accesses++
		for w := 0; w < v.ways; w++ {
			e := v.entry(p, set, w)
			if e.valid && e.tag == line {
				v.stamp++
				e.lru = v.stamp
				v.Hits++
				return v.rn(p, set, w), p - v.lo + 1, true
			}
		}
	}
	return 0, v.ActiveParts(), false
}

// Insert stores an evicted line, preferring invalid entries (the paper
// replaces store-invalidated lines in priority) and otherwise the LRU entry
// across all usable partitions of the set. It reports the register number
// written and whether a valid victim line was displaced.
func (v *VTT) Insert(line memtypes.LineAddr) (rn int, displaced bool, ok bool) {
	if v.ActiveParts() == 0 {
		return 0, false, false
	}
	set := v.setIndex(line)
	v.Accesses++
	// If the line is already present, refresh it.
	for p := v.lo; p < v.maxParts; p++ {
		for w := 0; w < v.ways; w++ {
			e := v.entry(p, set, w)
			if e.valid && e.tag == line {
				v.stamp++
				e.lru = v.stamp
				return v.rn(p, set, w), false, true
			}
		}
	}
	var victim *vttEntry
	vp, vw := 0, 0
	for p := v.lo; p < v.maxParts; p++ {
		for w := 0; w < v.ways; w++ {
			e := v.entry(p, set, w)
			if !e.valid {
				victim, vp, vw = e, p, w
				goto place
			}
			if victim == nil || e.lru < victim.lru {
				victim, vp, vw = e, p, w
			}
		}
	}
place:
	displaced = victim.valid
	if displaced {
		v.Drops++
	}
	v.stamp++
	*victim = vttEntry{valid: true, tag: line, lru: v.stamp}
	v.Installs++
	return v.rn(vp, set, vw), displaced, true
}

// InvalidateLine drops the victim copy of a stored-to line (write-evict:
// victim lines are never dirty). It returns whether a copy existed.
func (v *VTT) InvalidateLine(line memtypes.LineAddr) bool {
	set := v.setIndex(line)
	for p := v.lo; p < v.maxParts; p++ {
		for w := 0; w < v.ways; w++ {
			e := v.entry(p, set, w)
			if e.valid && e.tag == line {
				*e = vttEntry{}
				v.StoreInvalidates++
				return true
			}
		}
	}
	return false
}

// InvalidateAll clears every entry (monitoring → active transition).
func (v *VTT) InvalidateAll() {
	for i := range v.entries {
		v.entries[i] = vttEntry{}
	}
}

// Utilization returns the valid fraction of active-partition entries.
func (v *VTT) Utilization() float64 {
	if v.ActiveParts() == 0 {
		return 0
	}
	n := 0
	for p := v.lo; p < v.maxParts; p++ {
		base := p * v.PartRegs()
		for i := 0; i < v.PartRegs(); i++ {
			if v.entries[base+i].valid {
				n++
			}
		}
	}
	return float64(n) / float64(v.ActiveParts()*v.PartRegs())
}
