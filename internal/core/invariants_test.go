package core

import (
	"testing"

	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestVictimNeverOverlapsLiveRegisters steps a Linebacker run cycle by
// cycle and asserts, at every cycle, the DESIGN.md §5 invariants:
//
//   - usable VTT partitions lie entirely above the largest live register
//     number (victim lines never alias warp registers);
//   - the number of active partitions never exceeds what the free register
//     space allows;
//   - at least one CTA stays active (no throttling deadlock).
func TestVictimNeverOverlapsLiveRegisters(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	g, err := sim.New(cfg, sensitiveKernel(), New())
	if err != nil {
		t.Fatal(err)
	}
	pol := g.SMPolicies()[0].(*SMState)
	sm := g.SMs()[0]

	for i := 0; i < 120_000; i++ {
		g.Step()
		if pol.phase != phaseActive {
			continue
		}
		lrn := sm.RF().LargestLiveRN()
		if first := pol.vtt.FirstUsableFor(lrn); pol.vtt.ActiveParts() > pol.vtt.MaxParts()-first {
			t.Fatalf("cycle %d: %d partitions active, only %d fit above LRN %d",
				i, pol.vtt.ActiveParts(), pol.vtt.MaxParts()-first, lrn)
		}
		if i > 20_000 && pol.activeCount() == 0 && sm.ResidentCTAs() > 0 {
			// A fully-throttled SM with resident CTAs would deadlock; the
			// only legal zero-active states are transient (during the very
			// transition window).
			if pol.trans == nil {
				t.Fatalf("cycle %d: no active CTAs and no transition in flight", i)
			}
		}
	}
	if pol.throttleEvents == 0 {
		t.Fatal("run never exercised throttling; invariant test vacuous")
	}
}

// TestBackupRestoreRoundTrip drives a throttle and a forced restore and
// checks the CTL bookkeeping: registers released only after the backup
// completes (C=1), the restore re-reserves exactly the same count, and the
// backup traffic equals #regs × 128 B in each direction.
func TestBackupRestoreRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	g, err := sim.New(cfg, sensitiveKernel(), New())
	if err != nil {
		t.Fatal(err)
	}
	pol := g.SMPolicies()[0].(*SMState)
	sm := g.SMs()[0]

	// Run until the first backup completes.
	var slot int
	for i := 0; i < 400_000; i++ {
		g.Step()
		if len(pol.inactiveStack) > 0 {
			slot = pol.inactiveStack[0]
			break
		}
	}
	if len(pol.inactiveStack) == 0 {
		t.Fatal("no CTA was backed up")
	}
	info := sm.CTA(slot)
	if !info.Resident {
		t.Fatal("inactive CTA must stay resident")
	}
	if info.FirstRN != -1 {
		t.Fatal("backed-up CTA still holds a register allocation")
	}
	wantBytes := int64(sm.Kernel().RegsPerCTA()) * 128
	if g.DRAM().Stats.RegBackupBytes < wantBytes {
		t.Fatalf("backup traffic %d B < one CTA's registers %d B",
			g.DRAM().Stats.RegBackupBytes, wantBytes)
	}

	// Force a restore and let it complete.
	pol.startRestore(g.Cycle())
	for i := 0; i < 400_000 && pol.slotStates[slot] != slotRunning; i++ {
		g.Step()
	}
	if pol.slotStates[slot] != slotRunning {
		t.Fatal("restore never completed")
	}
	info = sm.CTA(slot)
	if info.FirstRN < 0 || info.RegCount != sm.Kernel().RegsPerCTA() {
		t.Fatalf("restored CTA allocation broken: %+v", info)
	}
	if g.DRAM().Stats.RegRestoreBytes < wantBytes {
		t.Fatalf("restore traffic %d B < one CTA's registers %d B",
			g.DRAM().Stats.RegRestoreBytes, wantBytes)
	}
}

// TestMonitoringSetEqualityRule checks the paper's subtle rule: selection
// requires the *same* set of high-locality loads in two consecutive
// windows; a strict subset must not be tagged.
func TestMonitoringSetEqualityRule(t *testing.T) {
	set := func(hs ...uint32) map[uint32]bool {
		m := map[uint32]bool{}
		for _, h := range hs {
			m[h] = true
		}
		return m
	}
	// Subset of the previous window: tag nothing, keep monitoring.
	action, out := decideMonitoring(set(1), set(1, 2), nil, 3, 8)
	if action != monitorContinue {
		t.Fatalf("subset window: action = %v, want continue", action)
	}
	if len(out) != 1 || !out[1] {
		t.Fatalf("carried set = %v", out)
	}
	// Exact repeat: activate with that set.
	action, out = decideMonitoring(set(1, 2), set(1, 2), nil, 3, 8)
	if action != monitorActivate || len(out) != 2 {
		t.Fatalf("exact match: action=%v set=%v", action, out)
	}
	// Superset is not equality either.
	if a, _ := decideMonitoring(set(1, 2, 3), set(1, 2), nil, 3, 8); a != monitorContinue {
		t.Fatalf("superset window: action = %v, want continue", a)
	}
	// Empty first two windows: disable.
	if a, _ := decideMonitoring(set(), set(), nil, 2, 8); a != monitorDisable {
		t.Fatal("empty windows must disable")
	}
	// One window is not enough to disable.
	if a, _ := decideMonitoring(set(), set(), nil, 1, 8); a != monitorContinue {
		t.Fatal("first window must not disable")
	}
	// Timeout with confirmed loads: settle for them.
	action, out = decideMonitoring(set(3), set(1), []uint32{7}, 8, 8)
	if action != monitorActivate || !out[7] {
		t.Fatalf("timeout: action=%v set=%v", action, out)
	}
	// Timeout without confirmation: disable.
	if a, _ := decideMonitoring(set(3), set(1), nil, 8, 8); a != monitorDisable {
		t.Fatal("timeout without confirmation must disable")
	}
}

// TestBackupBufferPacing asserts the 6-entry backup buffer bound: at no
// cycle may more register transfers be in flight than the buffer holds.
func TestBackupBufferPacing(t *testing.T) {
	cfg := testConfig()
	cfg.GPU.NumSMs = 1
	g, err := sim.New(cfg, sensitiveKernel(), New())
	if err != nil {
		t.Fatal(err)
	}
	pol := g.SMPolicies()[0].(*SMState)
	sawTransfer := false
	for i := 0; i < 200_000; i++ {
		g.Step()
		if tr := pol.trans; tr != nil {
			sawTransfer = true
			if tr.inflight > cfg.LB.BackupBufEntries {
				t.Fatalf("cycle %d: %d transfers in flight, buffer holds %d",
					i, tr.inflight, cfg.LB.BackupBufEntries)
			}
			if tr.sent < tr.done || tr.sent > tr.count {
				t.Fatalf("cycle %d: transfer bookkeeping broken: %+v", i, tr)
			}
		}
	}
	if !sawTransfer {
		t.Fatal("no backup/restore transfer observed; test vacuous")
	}
}
