package core

import "testing"

func TestLMHighLocalitySelection(t *testing.T) {
	lm := NewLoadMonitor(32)
	// Load at HPC 3: 30% hit ratio; load at HPC 7: 5%.
	for i := 0; i < 100; i++ {
		lm.Observe(3, 0x100, i%10 < 3)
		lm.Observe(7, 0x200, i%20 == 0)
	}
	cur, confirmed := lm.EndWindow(0.20)
	if len(cur) != 1 || cur[0] != 3 {
		t.Fatalf("window 1 high-locality = %v, want [3]", cur)
	}
	if len(confirmed) != 0 {
		t.Fatalf("confirmed after one window = %v, want none", confirmed)
	}
	// Second window, same behaviour: confirmed.
	for i := 0; i < 100; i++ {
		lm.Observe(3, 0x100, i%10 < 3)
		lm.Observe(7, 0x200, false)
	}
	cur, confirmed = lm.EndWindow(0.20)
	if len(cur) != 1 || len(confirmed) != 1 || confirmed[0] != 3 {
		t.Fatalf("window 2: cur=%v confirmed=%v", cur, confirmed)
	}
}

func TestLMValidBitsShift(t *testing.T) {
	lm := NewLoadMonitor(32)
	lm.Observe(5, 0x50, true)
	lm.EndWindow(0.2) // window 1: high
	// Window 2: no accesses → not high; valid history becomes 10.
	_, confirmed := lm.EndWindow(0.2)
	if len(confirmed) != 0 {
		t.Fatalf("confirmed = %v after a cold window", confirmed)
	}
	// Window 3: high again, but bit1 is now 0 → still not confirmed.
	lm.Observe(5, 0x50, true)
	_, confirmed = lm.EndWindow(0.2)
	if len(confirmed) != 0 {
		t.Fatalf("confirmed = %v, non-consecutive windows must not confirm", confirmed)
	}
	// Window 4: high → two consecutive highs → confirmed.
	lm.Observe(5, 0x50, true)
	_, confirmed = lm.EndWindow(0.2)
	if len(confirmed) != 1 || confirmed[0] != 5 {
		t.Fatalf("confirmed = %v, want [5]", confirmed)
	}
}

func TestLMCountersResetPerWindow(t *testing.T) {
	lm := NewLoadMonitor(32)
	for i := 0; i < 10; i++ {
		lm.Observe(1, 0x10, true)
	}
	lm.EndWindow(0.2)
	// One miss only in window 2: ratio 0 → not high.
	lm.Observe(1, 0x10, false)
	cur, _ := lm.EndWindow(0.2)
	if len(cur) != 0 {
		t.Fatalf("hit counters leaked across windows: %v", cur)
	}
}

func TestLMThresholdBoundary(t *testing.T) {
	lm := NewLoadMonitor(32)
	// Exactly 20%: 1 hit, 4 misses.
	lm.Observe(2, 0x20, true)
	for i := 0; i < 4; i++ {
		lm.Observe(2, 0x20, false)
	}
	cur, _ := lm.EndWindow(0.20)
	if len(cur) != 1 {
		t.Fatalf("ratio == threshold should classify high, got %v", cur)
	}
}

func TestLMAccessesAndStorage(t *testing.T) {
	lm := NewLoadMonitor(32)
	lm.Observe(0, 1, true)
	lm.Observe(0, 1, false)
	if lm.Accesses() != 2 {
		t.Fatalf("accesses = %d", lm.Accesses())
	}
	// Section 4.2: 32 entries * (3 * 32-bit + 2 bit) = 392 bytes = 3136 bits.
	if lm.StorageBits() != 3136 {
		t.Fatalf("storage = %d bits, want 3136 (392 B)", lm.StorageBits())
	}
}

func TestLMReset(t *testing.T) {
	lm := NewLoadMonitor(32)
	lm.Observe(4, 0x40, true)
	lm.EndWindow(0.2)
	lm.Reset()
	lm.Observe(4, 0x40, true)
	_, confirmed := lm.EndWindow(0.2)
	if len(confirmed) != 0 {
		t.Fatal("Reset did not clear valid history")
	}
}
