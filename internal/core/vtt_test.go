package core

import (
	"testing"
	"testing/quick"

	"github.com/linebacker-sim/linebacker/internal/memtypes"
)

func newTestVTT() *VTT {
	// Paper geometry: 48 sets, 4 ways, 8 partitions, offset 511, 2048 regs.
	return NewVTT(48, 4, 8, 511, 2048)
}

func lineInSet(set, n int) memtypes.LineAddr {
	return memtypes.LineAddr((set + n*48) * memtypes.LineSize)
}

func TestVTTGeometry(t *testing.T) {
	v := newTestVTT()
	if v.PartRegs() != 192 {
		t.Fatalf("partition regs = %d, want 192 (24 KB)", v.PartRegs())
	}
	if v.MaxParts() != 8 {
		t.Fatalf("max partitions = %d, want 8", v.MaxParts())
	}
	if v.ActiveParts() != 0 {
		t.Fatal("partitions usable before SetUsable")
	}
	v.SetUsable(0)
	if v.CapacityBytes() != 8*24*1024 {
		t.Fatalf("capacity = %d", v.CapacityBytes())
	}
}

func TestVTTClampsToRegisterFile(t *testing.T) {
	// Offset 511 with 1024 registers: only 2 partitions fit (511+2*192=895).
	v := NewVTT(48, 4, 8, 511, 1024)
	if v.MaxParts() != 2 {
		t.Fatalf("clamped partitions = %d, want 2", v.MaxParts())
	}
}

func TestVTTEquation2RNRange(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(0)
	seen := map[int]bool{}
	for n := 0; n < 400; n++ {
		l := lineInSet(n%48, n)
		rn, _, ok := v.Insert(l)
		if !ok {
			t.Fatal("insert failed with all partitions usable")
		}
		if rn <= 511 || rn > 2047 {
			t.Fatalf("RN %d outside (511, 2047]", rn)
		}
		if rnBack, _, hit := v.Probe(l); !hit || rnBack != rn {
			t.Fatalf("probe after insert: rn=%d hit=%v, want %d", rnBack, hit, rn)
		}
		seen[rn] = true
	}
	if len(seen) != 400 {
		t.Fatalf("distinct RNs = %d, want 400 (no collisions while space remains)", len(seen))
	}
}

func TestVTTFirstUsableFor(t *testing.T) {
	v := newTestVTT()
	// Partition N occupies RNs [512+192N, 511+192(N+1)].
	cases := []struct{ lrn, want int }{
		{-1, 0},   // empty register file: everything usable
		{400, 0},  // live regs below offset
		{511, 0},  // partition 0 base 512 is above LRN 511
		{512, 1},  // LRN overlaps partition 0
		{703, 1},  // partition 0 top is 703; partition 1 base 704 clears it
		{704, 2},  // LRN overlaps partition 1
		{2047, 8}, // full file: nothing usable
	}
	for _, c := range cases {
		if got := v.FirstUsableFor(c.lrn); got != c.want {
			t.Fatalf("FirstUsableFor(%d) = %d, want %d", c.lrn, got, c.want)
		}
	}
}

func TestVTTShrinkDropsLines(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(0)
	l := lineInSet(5, 0)
	v.Insert(l)
	v.SetUsable(4) // partitions 0-3 reclaimed
	if _, _, hit := v.Probe(l); hit {
		t.Fatal("line survived partition reclamation")
	}
	if v.ActiveParts() != 4 {
		t.Fatalf("active = %d", v.ActiveParts())
	}
}

func TestVTTInsertPrefersInvalidated(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(7) // single partition, 4 ways
	var lines []memtypes.LineAddr
	for n := 0; n < 4; n++ {
		l := lineInSet(0, n)
		lines = append(lines, l)
		v.Insert(l)
	}
	// Invalidate the second (a store hit), then insert a new line: it must
	// take the invalidated slot, keeping the other three.
	if !v.InvalidateLine(lines[1]) {
		t.Fatal("invalidate failed")
	}
	v.Insert(lineInSet(0, 9))
	for _, l := range []memtypes.LineAddr{lines[0], lines[2], lines[3], lineInSet(0, 9)} {
		if _, _, hit := v.Probe(l); !hit {
			t.Fatalf("line %#x lost; insert did not prefer the invalidated way", l)
		}
	}
}

func TestVTTLRUReplacementWithinSet(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(7) // 4 ways in one partition
	for n := 0; n < 4; n++ {
		v.Insert(lineInSet(3, n))
	}
	v.Probe(lineInSet(3, 0)) // refresh line 0
	_, displaced, _ := v.Insert(lineInSet(3, 4))
	if !displaced {
		t.Fatal("full set must displace")
	}
	if _, _, hit := v.Probe(lineInSet(3, 0)); !hit {
		t.Fatal("recently probed line was displaced (not LRU)")
	}
	if _, _, hit := v.Probe(lineInSet(3, 1)); hit {
		t.Fatal("LRU line survived displacement")
	}
}

func TestVTTProbeLatencySteps(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(0)
	// Fill one set across partitions: first 4 inserts land in partition 0.
	l := lineInSet(7, 0)
	v.Insert(l)
	if _, steps, ok := v.Probe(l); !ok || steps != 1 {
		t.Fatalf("steps = %d, want 1 (first partition)", steps)
	}
	// A miss searches every active partition.
	if _, steps, ok := v.Probe(lineInSet(7, 99)); ok || steps != 8 {
		t.Fatalf("miss steps = %d, want 8", steps)
	}
}

func TestVTTInsertRefreshesDuplicate(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(0)
	l := lineInSet(2, 0)
	rn1, _, _ := v.Insert(l)
	rn2, displaced, ok := v.Insert(l)
	if !ok || displaced || rn1 != rn2 {
		t.Fatalf("duplicate insert: rn %d vs %d displaced=%v", rn1, rn2, displaced)
	}
}

func TestVTTUtilization(t *testing.T) {
	v := newTestVTT()
	v.SetUsable(7)
	if v.Utilization() != 0 {
		t.Fatal("empty utilization != 0")
	}
	v.Insert(lineInSet(0, 0))
	if got := v.Utilization(); got != 1.0/192.0 {
		t.Fatalf("utilization = %v", got)
	}
}

// Property: register numbers are unique across all valid entries and always
// within the mappable range.
func TestVTTRNUniqueProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		v := newTestVTT()
		v.SetUsable(0)
		rnOf := map[memtypes.LineAddr]int{}
		for _, op := range ops {
			l := memtypes.LineAddr(int(op%997) * memtypes.LineSize)
			switch op % 3 {
			case 0, 1:
				rn, _, ok := v.Insert(l)
				if !ok {
					return false
				}
				if rn <= 511 || rn > 2047 {
					return false
				}
				rnOf[l] = rn
			case 2:
				v.InvalidateLine(l)
				delete(rnOf, l)
			}
		}
		// Probe everything still tracked: hits must return the stored RN
		// unless displaced; collect RNs of current hits and check unique.
		used := map[int]memtypes.LineAddr{}
		for l := range rnOf {
			if rn, _, hit := v.Probe(l); hit {
				if prev, dup := used[rn]; dup && prev != l {
					return false
				}
				used[rn] = l
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
