package core

import (
	"fmt"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// Options selects which Linebacker mechanisms are enabled, supporting the
// Figure 11 ablation:
//
//   - Victim Caching:            Selection=false, Throttling=false
//   - Selective Victim Caching:  Selection=true,  Throttling=false
//   - Linebacker (full):         Selection=true,  Throttling=true
type Options struct {
	// Selection enables per-load locality monitoring; when false every
	// evicted line is preserved (including streaming data).
	Selection bool
	// Throttling enables IPC-driven CTA throttling with register
	// backup/restore (dynamically unused registers become victim space).
	Throttling bool
	// VTTWays overrides the configured partition associativity when > 0
	// (Figure 10 sweep).
	VTTWays int
}

// Policy is the Linebacker scheme.
type Policy struct {
	opts Options
}

// New builds the full Linebacker policy (selection + throttling).
func New() *Policy { return &Policy{opts: Options{Selection: true, Throttling: true}} }

// NewWith builds a Linebacker variant.
func NewWith(opts Options) *Policy { return &Policy{opts: opts} }

// Name implements sim.Policy.
func (p *Policy) Name() string {
	switch {
	case p.opts.Selection && p.opts.Throttling:
		return "Linebacker"
	case p.opts.Selection:
		return "SelectiveVictimCaching"
	case p.opts.Throttling:
		return "Throttling+VictimCaching"
	default:
		return "VictimCaching"
	}
}

// Attach implements sim.Policy.
func (p *Policy) Attach(sm *sim.SM) sim.SMPolicy {
	return newSMState(sm, p.opts)
}

// phase is the Linebacker controller state.
type phase uint8

const (
	phaseMonitoring phase = iota
	phaseActive
	phaseDisabled
)

// slotState tracks a CTA slot through the throttle life cycle.
type slotState uint8

const (
	slotRunning slotState = iota
	slotBackingUp
	slotInactive  // registers backed up (C=1), space released
	slotRestoring // registers streaming back from memory
)

// transit tracks an in-flight backup or restore of one CTA.
type transit struct {
	slot     int
	firstRN  int
	count    int
	sent     int
	done     int
	inflight int
	restore  bool
}

// SMState is the per-SM Linebacker instance (the paper's LM + VTT + CTL).
type SMState struct {
	sim.BasePolicy
	sm   *sim.SM
	opts Options

	lm  *LoadMonitor
	vtt *VTT

	phase    phase
	windows  int
	prevSet  map[uint32]bool // high-locality HPCs of the previous window
	selected map[uint32]bool

	// CTL: IPC monitor.
	windowStart   int64
	retiredStart  int64
	prevIPC       float64
	bestIPC       float64
	throttleFloor float64 // IPC that must be exceeded before throttling again
	cooldown      bool    // skip one window after a backup/restore completes
	exploring     bool    // initial descent: throttle while it does not hurt
	havePrevIPC   bool

	// CTL: CTA manager.
	slotStates    []slotState
	inactiveStack []int // LIFO of backed-up slots
	trans         *transit
	targetActive  int

	// Energy/stat counters.
	ctaMgrAccesses   int64
	hpcAccesses      int64
	backupRegs       int64
	restoreRegs      int64
	throttleEvents   int64
	reactivations    int64
	victimByteCycles float64 // integral of victim capacity over cycles
	unusedByteCycles float64 // integral of unallocated register bytes
	cycles           int64
	monitorWindows   int
	regHitSteps      int64
	regHits          int64
}

func newSMState(sm *sim.SM, opts Options) *SMState {
	cfg := sm.Config()
	ways := cfg.LB.VTTWays
	if opts.VTTWays > 0 {
		ways = opts.VTTWays
	}
	sets := sm.L1().Sets()
	s := &SMState{
		sm:   sm,
		opts: opts,
		lm:   NewLoadMonitor(cfg.LB.LMEntries),
		vtt: NewVTT(sets, ways, partitionsFor(cfg.LB.MaxPartitions, cfg.LB.VTTWays, ways),
			cfg.LB.RegOffset, cfg.GPU.WarpRegisters()),
		slotStates: make([]slotState, sm.MaxResident()),
		selected:   map[uint32]bool{},
		prevSet:    map[uint32]bool{},
	}
	if opts.Selection {
		s.phase = phaseMonitoring
		// During monitoring the VTT keeps tags only; all partitions may
		// hold tags regardless of register occupancy.
		s.vtt.SetUsable(0)
	} else {
		// Preserve-everything victim caching starts immediately.
		s.phase = phaseActive
		s.recomputePartitions()
	}
	s.targetActive = sm.MaxResident()
	return s
}

// partitionsFor keeps the total victim tag capacity constant across the
// Figure 10 associativity sweep: the default is 8 partitions of 4 ways
// (32 ways total); a 1-way VP configuration gets 32 partitions, a 16-way
// one gets 2, etc.
func partitionsFor(defaultParts, defaultWays, ways int) int {
	total := defaultParts * defaultWays
	n := total / ways
	if n < 1 {
		n = 1
	}
	return n
}

// --- victim space management ---

// recomputePartitions re-derives which VTT partitions are usable from the
// largest live register number.
func (s *SMState) recomputePartitions() {
	if s.phase != phaseActive {
		return
	}
	lrn := s.sm.RF().LargestLiveRN()
	s.vtt.SetUsable(s.vtt.FirstUsableFor(lrn))
}

// --- sim.SMPolicy hooks ---

// CTAActive implements sim.SMPolicy: only running CTAs issue.
func (s *SMState) CTAActive(slot int) bool { return s.slotStates[slot] == slotRunning }

// AllowNewCTA implements sim.SMPolicy: inactive CTAs are re-scheduled in
// priority over new launches, and launches stop while throttled below the
// residency limit.
func (s *SMState) AllowNewCTA() bool {
	if !s.opts.Throttling || s.phase != phaseActive {
		return true
	}
	if len(s.inactiveStack) > 0 || s.trans != nil {
		return false
	}
	return s.activeCount() < s.targetActive
}

func (s *SMState) activeCount() int {
	n := 0
	for slot := 0; slot < s.sm.MaxResident(); slot++ {
		if s.sm.CTA(slot).Resident && s.slotStates[slot] == slotRunning {
			n++
		}
	}
	return n
}

// ProbeVictim implements sim.SMPolicy: on an L1 miss, search the VTT; a hit
// is serviced by a register-file read (a "Reg hit").
func (s *SMState) ProbeVictim(line memtypes.LineAddr, pc uint32, cycle int64) (bool, int) {
	if s.phase != phaseActive || s.vtt.ActiveParts() == 0 {
		return false, 0
	}
	rn, steps, ok := s.vtt.Probe(line)
	if !ok {
		// A miss searched every active partition; the engine adds this to
		// the subsequent fetch's latency (the paper's argument against
		// low-associativity partitions is exactly this serial search).
		return false, steps * s.sm.Config().LB.VPAccessLatency
	}
	lat := steps * s.sm.Config().LB.VPAccessLatency
	if s.sm.RF().VictimRead(rn, cycle) {
		lat += 2 // register bank conflict with operand traffic
	}
	s.regHitSteps += int64(steps)
	s.regHits++
	return true, lat
}

// OnEviction implements sim.SMPolicy: preserve useful victim lines.
func (s *SMState) OnEviction(ev cache.Eviction, cycle int64) {
	s.hpcAccesses++
	switch s.phase {
	case phaseMonitoring:
		// Tags only: remember what was evicted to measure reuse.
		s.vtt.Insert(ev.Line)
	case phaseActive:
		if s.opts.Selection && !s.selected[ev.HPC] {
			return // not a high-locality load's line: drop it
		}
		if rn, _, ok := s.vtt.Insert(ev.Line); ok {
			s.sm.RF().VictimWrite(rn, cycle)
		}
	}
}

// OnLoadOutcome implements sim.SMPolicy: during monitoring, count per-load
// hits (L1 hit or victim-tag hit) and misses.
func (s *SMState) OnLoadOutcome(warpSlot int, pc uint32, line memtypes.LineAddr, out sim.Outcome, cycle int64) {
	s.hpcAccesses++
	if s.phase != phaseMonitoring {
		return
	}
	hpc := memtypes.HashPC(pc, s.sm.Config().LB.HPCBits)
	// A merged (pending) access found its line present-in-flight: it is a
	// locality signal exactly like a hit for per-load classification.
	hit := out == sim.OutHit || out == sim.OutPendingHit
	if !hit {
		// The engine's ProbeVictim returned false during monitoring (no
		// data is stored); check the tags here for the LM.
		if _, _, ok := s.vtt.Probe(line); ok {
			hit = true
		}
	}
	s.lm.Observe(hpc, pc, hit)
}

// OnStore implements sim.SMPolicy: victim copies of written lines are
// invalidated so the victim cache never holds dirty data.
func (s *SMState) OnStore(line memtypes.LineAddr, cycle int64) {
	if s.phase == phaseActive && s.vtt.ActiveParts() > 0 {
		s.vtt.InvalidateLine(line)
	}
}

// OnCTALaunch implements sim.SMPolicy.
func (s *SMState) OnCTALaunch(slot, seq int, cycle int64) {
	s.ctaMgrAccesses++
	s.slotStates[slot] = slotRunning
	s.recomputePartitions()
}

// OnCTAComplete implements sim.SMPolicy: an inactive CTA is re-scheduled in
// priority when an active CTA finishes.
func (s *SMState) OnCTAComplete(slot int, cycle int64) {
	s.ctaMgrAccesses++
	s.slotStates[slot] = slotRunning // empty slot defaults to runnable
	s.recomputePartitions()
	if s.opts.Throttling && s.phase == phaseActive &&
		len(s.inactiveStack) > 0 && s.trans == nil && s.activeCount() < s.targetActive {
		s.startRestore(cycle)
	}
}

// OnRegResponse implements sim.SMPolicy: one register finished its backup
// or restore transfer.
func (s *SMState) OnRegResponse(req *memtypes.Request, cycle int64) {
	t := s.trans
	if t == nil {
		return
	}
	t.inflight--
	t.done++
	if t.done < t.count {
		return
	}
	// Transfer complete.
	if t.restore {
		s.finishRestore(t, cycle)
	} else {
		s.finishBackup(t, cycle)
	}
	s.trans = nil
	// Outside the initial descent, skip the transition window before the
	// next measurement; during exploration the short backup transient is
	// tolerated to keep the one-CTA-per-window pace of the paper.
	if !s.exploring {
		s.cooldown = true
	}
}

// OnCycle implements sim.SMPolicy: drain the backup/restore buffer and run
// window boundaries.
func (s *SMState) OnCycle(cycle int64) {
	s.cycles++
	if s.phase == phaseActive {
		s.victimByteCycles += float64(s.vtt.CapacityBytes())
	}
	s.unusedByteCycles += float64(s.sm.RF().StaticallyUnusedBytes())
	if t := s.trans; t != nil {
		s.pumpTransfer(t, cycle)
	}
	cfg := s.sm.Config()
	if cycle-s.windowStart >= int64(cfg.LB.WindowCycles) {
		s.endWindow(cycle)
	}
}

// NextEvent implements sim.SMPolicy for the event-driven engine: while a
// register backup/restore is draining with buffer headroom, pumpTransfer
// sends every cycle, so the event is now; a full buffer (or a fully-sent
// transfer) resumes through OnRegResponse, which is the response link's
// event, not ours. Otherwise the only self-driven state change is the next
// window boundary — endWindow mutates window counters in every phase, so
// the boundary is always advertised.
func (s *SMState) NextEvent(now int64) (int64, bool) {
	if t := s.trans; t != nil && t.sent < t.count && t.inflight < s.sm.Config().LB.BackupBufEntries {
		return now, true
	}
	b := s.windowStart + int64(s.sm.Config().LB.WindowCycles)
	if b < now {
		b = now
	}
	return b, true
}

// SkipCycles implements sim.SMPolicy: the per-cycle byte-cycle integrals of
// OnCycle in closed form. Both integrands are constant across a skipped
// span — VTT capacity changes only in recomputePartitions and the
// register file's unused bytes only in allocation hooks, all of which run
// during ticked cycles — and both add integer-valued float64 terms, so the
// single multiply-add is bit-identical to span repeated additions.
func (s *SMState) SkipCycles(from, to int64) {
	span := to - from
	s.cycles += span
	if s.phase == phaseActive {
		s.victimByteCycles += float64(span * int64(s.vtt.CapacityBytes()))
	}
	s.unusedByteCycles += float64(span * int64(s.sm.RF().StaticallyUnusedBytes()))
}

// pumpTransfer issues register transfers through the 6-entry buffer. It
// writes only in states NextEvent refuses to skip over: while unsent
// registers and buffer headroom both remain, NextEvent pins the event to
// now, and in every other state the loop body never runs — so SkipCycles
// owes none of these writes.
//
//lbvet:eventbound
func (s *SMState) pumpTransfer(t *transit, cycle int64) {
	buf := s.sm.Config().LB.BackupBufEntries
	for t.inflight < buf && t.sent < t.count {
		rn := t.firstRN + t.sent
		if t.restore {
			s.sm.RF().RestoreWrite(rn, cycle)
			s.sm.SendRegTraffic(memtypes.RegRestore, rn, cycle)
			s.restoreRegs++
		} else {
			s.sm.RF().BackupRead(rn, cycle)
			s.sm.SendRegTraffic(memtypes.RegBackup, rn, cycle)
			s.backupRegs++
		}
		t.sent++
		t.inflight++
	}
}

// --- window boundary / CTL decisions ---

// endWindow runs only at window boundaries, which NextEvent always
// advertises — a skipped span never crosses one, so SkipCycles owes none
// of these writes.
//
//lbvet:eventbound
func (s *SMState) endWindow(cycle int64) {
	cfg := s.sm.Config()
	elapsed := cycle - s.windowStart
	retired := s.sm.Retired() - s.retiredStart
	ipc := float64(retired) / float64(elapsed)
	s.windowStart = cycle
	s.retiredStart = s.sm.Retired()
	s.windows++

	if ipc > s.bestIPC {
		// Track the best window IPC across all phases so the reactivation
		// guard compares against the pre-throttle level too.
		s.bestIPC = ipc
	}
	switch s.phase {
	case phaseMonitoring:
		s.monitorWindows++
		current, confirmed := s.lm.EndWindow(cfg.LB.HitThreshold)
		s.monitoringDecision(current, confirmed, cycle)
	case phaseActive:
		if !s.opts.Throttling {
			break
		}
		if s.cooldown {
			// The window just ended contains a backup/restore transition;
			// measure the next steady window instead.
			s.cooldown = false
			break
		}
		if s.havePrevIPC && s.prevIPC > 0 && s.trans == nil {
			vari := (ipc - s.prevIPC) / s.prevIPC
			// Stepwise throttling can drift IPC down without any single
			// window tripping the lower bound; treat a drop below the best
			// observed window like a per-window drop (the paper's "detects
			// such slowdown" reactivation trigger).
			drifted := s.bestIPC > 0 && (ipc-s.bestIPC)/s.bestIPC < cfg.LB.IPCVarLower/2
			// During the initial descent after monitoring, keep throttling
			// as long as performance is not degrading (each throttled CTA
			// adds victim partitions, so the gradient often appears only
			// after several steps); afterwards require a clear improvement.
			wantMore := vari > cfg.LB.IPCVarUpper ||
				(s.exploring && vari > cfg.LB.IPCVarLower && !drifted)
			switch {
			case wantMore && s.activeCount() > 1 && ipc > s.throttleFloor:
				s.startThrottle(cycle)
			case (vari < cfg.LB.IPCVarLower || drifted) && len(s.inactiveStack) > 0:
				// Throttling hurt: restore, and do not try again until the
				// IPC ever exceeds the level throttling failed to beat
				// (prevents throttle/restore oscillation on insensitive
				// kernels — the paper tunes its ±10% bounds for the same
				// reason).
				s.exploring = false
				s.throttleFloor = s.bestIPC * (1 + cfg.LB.IPCVarUpper/2)
				s.startRestore(cycle)
			}
		}
	}
	s.prevIPC = ipc
	s.havePrevIPC = true
}

// monitorAction is the outcome of one monitoring window.
type monitorAction uint8

const (
	monitorContinue monitorAction = iota
	monitorActivate
	monitorDisable
)

// decideMonitoring applies the paper's four monitoring rules as a pure
// function of the window's high-locality sets:
//
//  1. the whole previous set must repeat to confirm (a strict subset tags
//     nothing and monitoring continues);
//  2. no high-locality loads in the first two windows disables Linebacker;
//  3. monitoring otherwise continues, bounded by maxWindows;
//  4. on timeout, settle for the two-window-confirmed loads if any.
func decideMonitoring(curSet, prevSet map[uint32]bool, confirmed []uint32, windows, maxWindows int) (monitorAction, map[uint32]bool) {
	if len(curSet) > 0 && len(prevSet) > 0 && sameSet(curSet, prevSet) {
		return monitorActivate, curSet
	}
	if windows >= 2 && len(curSet) == 0 && len(prevSet) == 0 {
		return monitorDisable, nil
	}
	if windows >= maxWindows {
		if len(confirmed) > 0 {
			set := map[uint32]bool{}
			for _, h := range confirmed {
				set[h] = true
			}
			return monitorActivate, set
		}
		return monitorDisable, nil
	}
	return monitorContinue, curSet
}

// monitoringDecision applies decideMonitoring's outcome to the SM state.
func (s *SMState) monitoringDecision(current, confirmed []uint32, cycle int64) {
	curSet := map[uint32]bool{}
	for _, h := range current {
		curSet[h] = true
	}
	action, set := decideMonitoring(curSet, s.prevSet, confirmed, s.windows, s.sm.Config().LB.MaxMonitorWindows)
	switch action {
	case monitorActivate:
		s.activate(set, cycle)
	case monitorDisable:
		s.phase = phaseDisabled
		s.vtt.InvalidateAll()
		s.vtt.SetUsable(s.vtt.MaxParts())
	default:
		s.prevSet = set
	}
}

// activate transitions monitoring → active victim caching.
func (s *SMState) activate(selected map[uint32]bool, cycle int64) {
	s.selected = selected
	s.phase = phaseActive
	s.vtt.InvalidateAll()
	s.recomputePartitions()
	if s.opts.Throttling {
		// The paper proactively throttles one CTA right after monitoring.
		s.exploring = true
		s.startThrottle(cycle)
	}
}

// startThrottle deactivates the active CTA with the largest slot index and
// begins backing up its registers.
func (s *SMState) startThrottle(cycle int64) {
	if s.trans != nil {
		return
	}
	slot := -1
	for i := s.sm.MaxResident() - 1; i >= 0; i-- {
		if s.sm.CTA(i).Resident && s.slotStates[i] == slotRunning {
			slot = i
			break
		}
	}
	if slot < 0 {
		return
	}
	info := s.sm.CTA(slot)
	s.slotStates[slot] = slotBackingUp
	s.targetActive = s.activeCount()
	s.trans = &transit{slot: slot, firstRN: info.FirstRN, count: info.RegCount}
	s.throttleEvents++
	s.ctaMgrAccesses++
	s.pumpTransfer(s.trans, cycle)
}

// finishBackup marks the CTA inactive (C=1), releases its register space
// and extends the victim cache.
func (s *SMState) finishBackup(t *transit, cycle int64) {
	s.slotStates[t.slot] = slotInactive
	s.inactiveStack = append(s.inactiveStack, t.slot)
	s.sm.ReleaseCTARegs(t.slot)
	s.recomputePartitions()
	s.ctaMgrAccesses++
}

// startRestore re-activates the most recently throttled CTA: re-reserve its
// registers (shrinking the victim cache first) and stream them back.
func (s *SMState) startRestore(cycle int64) {
	if s.trans != nil || len(s.inactiveStack) == 0 {
		return
	}
	slot := s.inactiveStack[len(s.inactiveStack)-1]
	s.inactiveStack = s.inactiveStack[:len(s.inactiveStack)-1]
	info := s.sm.CTA(slot)
	first, ok := s.sm.ReserveCTARegs(slot, info.RegCount)
	if !ok {
		// Register space unavailable (should not happen: victim space is
		// reclaimed on demand); give up and leave the CTA inactive.
		s.inactiveStack = append(s.inactiveStack, slot)
		return
	}
	s.slotStates[slot] = slotRestoring
	s.recomputePartitions() // shrink victim space before overwriting
	s.targetActive = s.activeCount() + 1
	s.trans = &transit{slot: slot, firstRN: first, count: info.RegCount, restore: true}
	s.reactivations++
	s.ctaMgrAccesses++
	s.pumpTransfer(s.trans, cycle)
}

// finishRestore resumes the CTA.
func (s *SMState) finishRestore(t *transit, cycle int64) {
	s.slotStates[t.slot] = slotRunning
	s.ctaMgrAccesses++
}

// --- verification hooks (consumed by internal/check) ---

// VictimHits returns the victim-cache hits this policy serviced; the
// invariant checker cross-checks it against the engine's OutRegHit count.
func (s *SMState) VictimHits() int64 { return s.regHits }

// RegInflight returns the register backup/restore line requests currently
// in flight below the SM; the invariant checker matches it against the
// RegBackup/RegRestore census of the memory system.
func (s *SMState) RegInflight() int {
	if s.trans == nil {
		return 0
	}
	return s.trans.inflight
}

// CheckInvariants verifies Linebacker-internal conservation laws: victim
// storage never exceeds the registers the register file reports unused,
// usable VTT partitions lie strictly above the largest live register
// number, and backup/restore transfer accounting balances.
func (s *SMState) CheckInvariants() error {
	// During monitoring the VTT tracks tags only (no register storage), so
	// occupancy constraints bind only once victim data actually lives in
	// the register file.
	if s.phase == phaseActive {
		rf := s.sm.RF()
		if cap, unused := s.vtt.CapacityBytes(), rf.StaticallyUnusedBytes(); cap > unused {
			return fmt.Errorf("core: victim capacity %d B exceeds %d B of unused registers", cap, unused)
		}
		if s.vtt.ActiveParts() > 0 {
			if lrn := rf.LargestLiveRN(); s.vtt.FirstUsableFor(lrn) > s.vtt.MaxParts()-s.vtt.ActiveParts() {
				return fmt.Errorf("core: %d VTT partitions usable but live registers reach RN %d", s.vtt.ActiveParts(), lrn)
			}
		}
	}
	if t := s.trans; t != nil {
		switch {
		case t.sent != t.done+t.inflight:
			return fmt.Errorf("core: transfer sent %d != done %d + inflight %d", t.sent, t.done, t.inflight)
		case t.sent > t.count:
			return fmt.Errorf("core: transfer sent %d of %d registers", t.sent, t.count)
		case t.inflight > s.sm.Config().LB.BackupBufEntries:
			return fmt.Errorf("core: %d transfers in flight exceed the %d-entry buffer", t.inflight, s.sm.Config().LB.BackupBufEntries)
		}
	}
	for _, slot := range s.inactiveStack {
		if s.slotStates[slot] != slotInactive {
			return fmt.Errorf("core: slot %d on the inactive stack in state %d", slot, s.slotStates[slot])
		}
		if !s.sm.CTA(slot).Resident {
			return fmt.Errorf("core: inactive slot %d is not resident", slot)
		}
	}
	return nil
}

// --- statistics ---

// ExtraStats implements sim.ExtraStatser.
func (s *SMState) ExtraStats() map[string]float64 {
	avgVictim, avgUnused := 0.0, 0.0
	if s.cycles > 0 {
		avgVictim = s.victimByteCycles / float64(s.cycles)
		avgUnused = s.unusedByteCycles / float64(s.cycles)
	}
	return map[string]float64{
		"lb_unused_bytes_avg": avgUnused,
		"lb_monitor_windows":  float64(s.monitorWindows),
		"lb_selected_loads":   float64(len(s.selected)),
		"lb_disabled":         b2f(s.phase == phaseDisabled),
		"lb_victim_bytes_avg": avgVictim,
		"lb_victim_capacity":  float64(s.vtt.CapacityBytes()),
		"lb_vtt_accesses":     float64(s.vtt.Accesses),
		"lb_vtt_hits":         float64(s.vtt.Hits),
		"lb_vtt_installs":     float64(s.vtt.Installs),
		"lb_vtt_drops":        float64(s.vtt.Drops),
		"lb_vtt_utilization":  s.vtt.Utilization(),
		"lb_lm_accesses":      float64(s.lm.Accesses()),
		"lb_ctamgr_accesses":  float64(s.ctaMgrAccesses),
		"lb_hpc_accesses":     float64(s.hpcAccesses),
		"lb_backup_regs":      float64(s.backupRegs),
		"lb_restore_regs":     float64(s.restoreRegs),
		"lb_throttle_events":  float64(s.throttleEvents),
		"lb_reactivations":    float64(s.reactivations),
		"lb_active_ctas":      float64(s.activeCount()),
		"lb_target_ctas":      float64(s.targetActive),
		"lb_inactive_ctas":    float64(len(s.inactiveStack)),
		"lb_reghit_steps":     float64(s.regHitSteps),
	}
}

func sameSet(a, b map[uint32]bool) bool {
	if len(a) != len(b) {
		return false
	}
	//lbvet:ordered set equality: the conjunction over members is
	// commutative, so the answer cannot depend on visit order.
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
