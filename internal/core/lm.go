// Package core implements Linebacker (ISCA '19): per-load locality
// monitoring (Load Monitor), a register-file victim cache indexed by a
// Victim Tag Table, and CTA throttling logic with register backup/restore —
// the paper's Section 3 algorithm and Section 4 microarchitecture.
package core

// lmEntry is one Load Monitor row: the full PC of the (last) load hashed to
// this row, its hit and miss counters for the current window, and the
// two-bit valid history used for two-consecutive-window confirmation.
type lmEntry struct {
	pc    uint32
	used  bool
	hits  uint32
	miss  uint32
	valid uint8 // bit0: current window high-locality, bit1: previous window
}

// LoadMonitor is the paper's LM: a 32-entry array indexed by the 5-bit
// hashed PC, counting per-load cache (L1 or victim-tag) hits and misses
// within each monitoring window.
type LoadMonitor struct {
	entries  []lmEntry
	accesses int64 // energy accounting: one per Observe
}

// NewLoadMonitor builds an LM with the given number of entries.
func NewLoadMonitor(entries int) *LoadMonitor {
	return &LoadMonitor{entries: make([]lmEntry, entries)}
}

// Accesses returns how many times the LM was consulted (for the energy
// model).
func (lm *LoadMonitor) Accesses() int64 { return lm.accesses }

// Observe counts one load access. hpc indexes the table; pc is stored on
// first touch. hit is true when the access hit in L1 or the victim tag
// table.
func (lm *LoadMonitor) Observe(hpc uint32, pc uint32, hit bool) {
	lm.accesses++
	e := &lm.entries[hpc%uint32(len(lm.entries))]
	if !e.used {
		e.used = true
		e.pc = pc
	}
	if hit {
		e.hits++
	} else {
		e.miss++
	}
}

// EndWindow closes a monitoring window: every entry whose hit ratio meets
// the threshold shifts a 1 into its valid history, everything else a 0, and
// the hit/miss counters reset (PC and valid survive, as in the paper).
// It returns the set of hashed PCs that were high-locality this window
// (bit0) and the set confirmed across two consecutive windows (bit0&bit1).
func (lm *LoadMonitor) EndWindow(threshold float64) (current, confirmed []uint32) {
	for i := range lm.entries {
		e := &lm.entries[i]
		high := false
		if e.used {
			total := e.hits + e.miss
			if total > 0 && float64(e.hits)/float64(total) >= threshold {
				high = true
			}
		}
		e.valid = (e.valid << 1) & 0b10
		if high {
			e.valid |= 1
		}
		if high {
			current = append(current, uint32(i))
		}
		if e.valid == 0b11 {
			confirmed = append(confirmed, uint32(i))
		}
		e.hits, e.miss = 0, 0
	}
	return current, confirmed
}

// Reset clears all entries.
func (lm *LoadMonitor) Reset() {
	for i := range lm.entries {
		lm.entries[i] = lmEntry{}
	}
}

// StorageBits returns the LM storage cost in bits (overhead accounting,
// Section 4.2: three 4-byte registers plus a 2-bit valid per entry).
func (lm *LoadMonitor) StorageBits() int {
	return len(lm.entries) * (3*32 + 2)
}
