package benchkit

import (
	"context"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

// TestSkipBeatsStrictMacroSmoke is the wall-clock acceptance gate of the
// cycle-skipping engine, sized for CI: on the memory-starved Table 1
// machine most SM-cycles are provably idle, so the event-driven loop must
// regenerate a Figure 12 smoke slice measurably faster than strict
// ticking. The local development measurement is ~1.3x on the full macro;
// the assertion here is deliberately conservative (skipping must not be
// slower than strict) so shared-runner noise cannot flake the job, while
// still catching the real regression mode — a pinned event (a component
// returning `now` forever) silently degrading every run to strict speed,
// which shows up as a ratio near or below 1.0 AND a zero skip ratio.
func TestSkipBeatsStrictMacroSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped in -short")
	}
	run := func(strict bool) time.Duration {
		cfg := harness.PaperConfig()
		cfg.Strict = strict
		r := harness.NewRunner(cfg, 4)
		start := time.Now()
		if _, err := r.Run(context.Background(), macroBench, sim.Baseline{}); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(context.Background(), macroBench, core.New()); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Interleave a warmup of each mode so neither side pays one-time costs.
	run(true)
	run(false)
	strict := run(true)
	skip := run(false)
	ratio := float64(strict) / float64(skip)
	t.Logf("paper-config macro smoke: strict=%v skipping=%v speedup=%.2fx", strict, skip, ratio)

	// The structural half of the gate: the smoke slice must actually skip
	// a large share of its cycles — wall-clock could be masked by noise,
	// a zero skip ratio cannot.
	ratioSkip, err := SkipRatio(harness.PaperConfig(), macroBench, sim.Baseline{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline %s skip ratio: %.1f%%", macroBench, 100*ratioSkip)
	if ratioSkip < 0.10 {
		t.Errorf("skip ratio %.1f%% below 10%%: the event engine is not finding the machine's idle cycles", 100*ratioSkip)
	}
	if ratio < 1.0 {
		t.Errorf("skipping (%v) slower than strict (%v): event probing is costing more than it saves", skip, strict)
	}
}
