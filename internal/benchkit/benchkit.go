// Package benchkit holds the benchmark bodies of the simulator's
// performance trajectory. The same bodies back the root-level
// `go test -bench 'Micro|Macro'` wrappers and the machine-readable
// BENCH_PR4.json emitter (see benchjson_test.go at the repo root), so the
// numbers in the artifact are always produced by exactly the code a `-bench`
// run exercises.
//
// Two tiers:
//
//   - micro: the per-cycle hot paths — cache access (L1 geometry), one full
//     GPU.Step (which contains the SM tick), and the interconnect link.
//     These are the paths the pooling/ring-buffer work targets; ns/op and
//     allocs/op here are the regression currency.
//   - macro: one full Figure 12 bench run — a single cache-sensitive
//     benchmark (S2) through the figure's policy set (baseline, Best-SWL
//     sweep, PCAL, CERF, Linebacker) on a fresh runner, i.e. real end-to-end
//     experiment regeneration with no memo hits.
package benchkit

import (
	"context"
	"fmt"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/cache"
	"github.com/linebacker-sim/linebacker/internal/config"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/icnt"
	"github.com/linebacker-sim/linebacker/internal/memtypes"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/twin"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// macroBench is the cache-sensitive benchmark the macro tier runs.
const macroBench = "S2"

// CacheLoad exercises the L1 access path on the Table 1 geometry with a
// deterministic mixed hit/miss stream: a resident working set re-touched
// between misses, outstanding fills drained so the MSHRs never saturate.
func CacheLoad(b *testing.B) {
	c := cache.New(48*1024, 8, 64, false)
	const resident = 128 // lines re-touched between misses (always hitting)
	for i := 0; i < resident; i++ {
		l := memtypes.LineAddr(i * memtypes.LineSize)
		c.Load(l, uint32(i), true)
		c.Fill(l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	next := uint64(resident)
	for i := 0; i < b.N; i++ {
		if i%4 == 3 {
			// Cold miss: allocate, then complete the fill immediately.
			l := memtypes.LineAddr(next * memtypes.LineSize)
			next++
			c.Load(l, uint32(i), true)
			c.Fill(l)
		} else {
			l := memtypes.LineAddr(uint64(i%resident) * memtypes.LineSize)
			c.Load(l, uint32(i), true)
		}
	}
}

// CacheStore exercises the store path (write-evict L1 policy) against a
// stream of store hits and misses.
func CacheStore(b *testing.B) {
	c := cache.New(48*1024, 8, 64, false)
	const resident = 128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := memtypes.LineAddr(uint64(i%resident) * memtypes.LineSize)
		if i%2 == 0 {
			c.Load(l, uint32(i), true)
			c.Fill(l)
		} else {
			c.Store(l)
		}
	}
}

// GPUStep measures one whole-machine cycle (dispatch, every SM tick, icnt,
// L2, DRAM) in steady state on the fast 4-SM configuration running the
// macro benchmark under the baseline policy. One op == one simulated cycle,
// so sim-cycles/sec = 1e9 / ns_per_op.
func GPUStep(b *testing.B) {
	bench, ok := workload.ByName(macroBench)
	if !ok {
		b.Fatalf("unknown benchmark %q", macroBench)
	}
	cfg := harness.BenchConfig()
	build := func() *sim.GPU {
		g, err := sim.New(cfg, bench.Kernel, sim.Baseline{})
		if err != nil {
			b.Fatal(err)
		}
		// Warm the machine past the launch transient so the measured cycles
		// carry live memory traffic.
		g.Run(2000)
		return g
	}
	g := build()
	const rebuildEvery = 200_000 // stay well inside the grid's runtime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%rebuildEvery == 0 {
			b.StopTimer()
			g = build()
			b.StartTimer()
		}
		g.Step()
	}
}

// IcntLink measures the SM↔L2 link: four sends and one delivery sweep per
// op, with the drain offset by the link latency so the queue stays in steady
// state — the engine-facing traffic pattern of one busy cycle.
func IcntLink(b *testing.B) {
	const latency = 12
	l := icnt.New(latency, 8)
	reqs := make([]*memtypes.Request, 64)
	for i := range reqs {
		reqs[i] = &memtypes.Request{Line: memtypes.LineAddr(i * memtypes.LineSize), Kind: memtypes.Load}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc := int64(i)
		for k := 0; k < 4; k++ {
			l.Send(reqs[(i*4+k)%len(reqs)], cyc)
		}
		deliverAll(l, cyc)
	}
	// Drain so Pending-based leak checks in callers stay clean.
	deliverAll(l, int64(b.N)+latency)
}

// deliverAll drains every request ready at the cycle.
func deliverAll(l *icnt.Link, cyc int64) {
	for len(l.Deliver(cyc)) > 0 {
	}
}

// MacroFig12Bench regenerates one Figure 12 column set end to end: the
// macro benchmark under baseline, the full Best-SWL limit sweep, PCAL, CERF
// and Linebacker, on a fresh runner (16 windows, 4-SM fast config) so
// nothing is memoised. This is the macro-tier trajectory number: wall-clock
// per full experiment regeneration.
func MacroFig12Bench(b *testing.B) {
	macroFig12(b, harness.BenchConfig())
}

// MacroFig12BenchWorkers returns the fig12 macro body pinned to an intra-run
// worker count (DESIGN.md §9) — the scaling-curve tier of the trajectory
// artifact. The fast config has 4 SMs, so counts above 4 clamp; the curve is
// flat by construction on a single-core host (GOMAXPROCS caps real
// concurrency), which the artifact records alongside the numbers.
func MacroFig12BenchWorkers(workers int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := harness.BenchConfig()
		cfg.GPU.Workers = workers
		macroFig12(b, cfg)
	}
}

// MacroFig12BenchStrict is the fig12 macro with cycle skipping disabled:
// the strict per-cycle engine on the 4-SM fast config. Paired with
// MacroFig12Bench (which runs the default skipping mode) it is the
// run-mode arm of the trajectory artifact. Note the 4-SM fast config is
// nearly issue-saturated, so the strict/skip gap here is small by
// construction; the paper-config pair below carries the headline ratio.
func MacroFig12BenchStrict(b *testing.B) {
	cfg := harness.BenchConfig()
	cfg.Strict = true
	macroFig12(b, cfg)
}

// MacroFig12PaperBench returns the fig12 macro body on the full Table 1
// machine (16 SMs, paper DRAM bandwidth) in the given run mode. This is
// the machine Figure 12 actually describes, and it is memory-starved
// enough that most SM-cycles are provably idle — the configuration where
// event-driven skipping pays (DESIGN.md §10).
func MacroFig12PaperBench(strict bool) func(*testing.B) {
	return func(b *testing.B) {
		cfg := harness.PaperConfig()
		cfg.Strict = strict
		macroFig12(b, cfg)
	}
}

// SkipRatio runs one benchmark under one policy in skipping mode and
// returns the fraction of SM-cycles the engine serviced through the
// closed-form sleep/skip path instead of a full tick — the per-bench skip
// ratio reported in the trajectory artifact. Per-SM sleeping and global
// fast-forwards both count (sim.SleptSMCycles); on the paper machine the
// DRAM is rarely globally idle, so per-SM sleeping carries nearly all of
// it. The ratio is diagnostic only: results are bit-identical to strict
// mode regardless of its value.
func SkipRatio(cfg config.Config, bench string, pol sim.Policy, windows int) (float64, error) {
	bm, ok := workload.ByName(bench)
	if !ok {
		return 0, fmt.Errorf("benchkit: unknown benchmark %q", bench)
	}
	cfg.Strict = false
	g, err := sim.New(cfg, bm.Kernel, pol)
	if err != nil {
		return 0, err
	}
	cycles := int64(windows) * int64(cfg.LB.WindowCycles)
	end, err := g.RunCtx(context.Background(), cycles)
	if err != nil {
		return 0, err
	}
	if end == 0 {
		return 0, nil
	}
	return float64(g.SleptSMCycles()) / float64(end*int64(cfg.GPU.NumSMs)), nil
}

// twinWindows is the run length of the twin tier's calibration and of the
// cycle-level run it is compared against — the serve default, so the
// recorded speedup is the one /v1/estimate users actually see.
const twinWindows = 3

// TwinQuery measures one in-envelope analytical estimate against a
// pre-calibrated model — the interactive-query latency the twin tier
// exists for. Calibration happens once, outside the timer: its cost is
// the amortised price of every subsequent microsecond answer. Paired with
// TwinPointSim below, the trajectory artifact records the twin-vs-sim
// latency ratio.
func TwinQuery(b *testing.B) {
	r := harness.NewRunner(harness.BenchConfig(), twinWindows)
	m, err := twin.Calibrate(context.Background(), r, macroBench, twin.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q := twin.Query{L1Bytes: 64 * 1024, LB: true}
	if est := m.Estimate(q); !est.InEnvelope {
		b.Fatalf("benchmark query out of envelope: %s", est.Reason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if est := m.Estimate(q); !est.InEnvelope {
			b.Fatal("query left the envelope mid-benchmark")
		}
	}
}

// TwinPointSim measures the cycle-level answer to the same question
// TwinQuery asks: one full Linebacker run of the macro benchmark at 64 KB
// L1 on a fresh machine — no memo, no store, exactly what an estimate
// fallback pays.
func TwinPointSim(b *testing.B) {
	bench, ok := workload.ByName(macroBench)
	if !ok {
		b.Fatalf("unknown benchmark %q", macroBench)
	}
	cfg := harness.BenchConfig()
	cfg.GPU.L1Bytes = 64 * 1024
	cycles := int64(twinWindows) * int64(cfg.LB.WindowCycles)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := sim.New(cfg, bench.Kernel, core.New())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.RunCtx(context.Background(), cycles); err != nil {
			b.Fatal(err)
		}
	}
}

func macroFig12(b *testing.B, cfg config.Config) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := harness.NewRunner(cfg, 16)
		ctx := context.Background()
		if _, err := r.Run(ctx, macroBench, sim.Baseline{}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := r.BestSWL(ctx, macroBench); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(ctx, macroBench, schemes.PCAL{}); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(ctx, macroBench, schemes.CERF{}); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(ctx, macroBench, core.New()); err != nil {
			b.Fatal(err)
		}
	}
}
