module github.com/linebacker-sim/linebacker

go 1.22
