package linebacker

import "testing"

func TestNewSchemeSpecs(t *testing.T) {
	for _, spec := range []string{
		"baseline", "swl:4", "pcal", "cerf", "cacheext",
		"linebacker", "lb", "svc", "vc", "lb+cacheext", "pcal+svc", "pcal+cerf",
	} {
		if _, err := NewScheme(spec); err != nil {
			t.Errorf("NewScheme(%q): %v", spec, err)
		}
	}
	for _, bad := range []string{"", "swl:", "swl:0", "swl:x", "nope"} {
		if _, err := NewScheme(bad); err == nil {
			t.Errorf("NewScheme(%q) accepted", bad)
		}
	}
}

func TestBenchmarksExposed(t *testing.T) {
	if len(Benchmarks()) != 20 {
		t.Fatalf("benchmarks = %d, want 20", len(Benchmarks()))
	}
	if _, ok := Benchmark("S2"); !ok {
		t.Fatal("S2 missing")
	}
}

func TestRunQuickstartPath(t *testing.T) {
	cfg := FastConfig()
	cfg.GPU.NumSMs = 1
	cfg.LB.WindowCycles = 2000
	k := NewKernel("api-test",
		[]LoadSpec{{Pattern: Tiled, Scope: PerSM, WorkingSetBytes: 8 * 1024, Coalesced: 1}},
		nil, 2, 4, 200, 4, 16, 16)
	base, err := Run(cfg, k, mustScheme(t, "baseline"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if base.Instructions == 0 || base.IPC() <= 0 {
		t.Fatalf("empty result: %+v", base)
	}
	lb, err := Run(cfg, k, mustScheme(t, "linebacker"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if e := Energy(&cfg, lb); e.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
	if EnergyPerInstruction(&cfg, lb) <= 0 {
		t.Fatal("non-positive energy per instruction")
	}
}

func TestConfigsValidate(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), FastConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func mustScheme(t *testing.T, spec string) Policy {
	t.Helper()
	p, err := NewScheme(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
