package linebacker

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the experiment through the shared harness (results are
// memoised across benches, so Best-SWL sweeps and baseline runs are paid
// once per `go test -bench` invocation). Run with -v to see the tables:
//
//	go test -bench=Fig12 -benchmem -v .
//
// The benchmark metric of interest is the experiment's headline number
// (geometric-mean speedup etc.), reported via b.ReportMetric; wall-clock
// per op is the cost of regenerating the experiment.

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/harness"
)

var (
	benchRunnerOnce sync.Once
	benchRunner     *harness.Runner
)

// benchGetRunner returns the shared experiment runner (16 windows on the
// 4-SM fast configuration, like cmd/lbfig's default).
func benchGetRunner() *harness.Runner {
	benchRunnerOnce.Do(func() {
		benchRunner = harness.NewRunner(harness.BenchConfig(), 16)
	})
	return benchRunner
}

// runExperiment executes the experiment once per benchmark iteration and
// reports its headline metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	r := benchGetRunner()
	for i := 0; i < b.N; i++ {
		t := e.Run(r)
		if i == 0 {
			logTable(b, t)
			reportHeadline(b, t)
		}
	}
}

// logTable prints the reproduced table under -v.
func logTable(b *testing.B, t *harness.Table) {
	var sb strings.Builder
	t.Fprint(&sb)
	b.Log("\n" + sb.String())
}

// reportHeadline extracts the last row's numeric cells (GM/Avg rows) as
// benchmark metrics.
func reportHeadline(b *testing.B, t *harness.Table) {
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	for i, cell := range last {
		if i == 0 || i >= len(t.Header) {
			continue
		}
		v := strings.TrimSuffix(cell, "%")
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			continue
		}
		name := strings.ToLower(strings.ReplaceAll(t.Header[i], " ", "_"))
		b.ReportMetric(f, last[0]+"_"+name)
	}
}

func BenchmarkTable1Config(b *testing.B)      { runExperiment(b, "table1") }
func BenchmarkTable2Sensitivity(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3Config(b *testing.B)      { runExperiment(b, "table3") }

func BenchmarkFig1MissBreakdown(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig2WorkingSet(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkFig3Streaming(b *testing.B)      { runExperiment(b, "fig3") }
func BenchmarkFig4UnusedRF(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig5CacheExt(b *testing.B)       { runExperiment(b, "fig5") }
func BenchmarkFig9IdleRF(b *testing.B)         { runExperiment(b, "fig9") }
func BenchmarkFig10VTTAssoc(b *testing.B)      { runExperiment(b, "fig10") }
func BenchmarkFig11Breakdown(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12Performance(b *testing.B)   { runExperiment(b, "fig12") }
func BenchmarkFig13HitBreakdown(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14CacheSize(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15Combos(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkFig16BankConflicts(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17Traffic(b *testing.B)       { runExperiment(b, "fig17") }
func BenchmarkFig18Energy(b *testing.B)        { runExperiment(b, "fig18") }

// BenchmarkExtCCWS is a reproduction extension: CCWS (MICRO '12) situated
// against Best-SWL and Linebacker.
func BenchmarkExtCCWS(b *testing.B) { runExperiment(b, "ext-ccws") }

// BenchmarkSimulatorThroughput measures raw engine speed: simulated cycles
// per second on one cache-sensitive benchmark under the baseline scheme.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := FastConfig()
	bench, _ := Benchmark("S2")
	for i := 0; i < b.N; i++ {
		g, err := New(cfg, bench.Kernel, mustBaseline(b))
		if err != nil {
			b.Fatal(err)
		}
		const cycles = 50_000
		g.Run(cycles)
		b.ReportMetric(float64(cycles), "cycles/op")
	}
}

func mustBaseline(b *testing.B) Policy {
	b.Helper()
	p, err := NewScheme("baseline")
	if err != nil {
		b.Fatal(err)
	}
	return p
}
