package main

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/harness"
)

// exitCode runs the CLI and maps its error exactly as main does.
func exitCode(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var stderr bytes.Buffer
	err := run(args, io.Discard, &stderr)
	return cliutil.Exit(&stderr, "lbsim", err), stderr.String()
}

func TestExitCodeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "NOPE"},
		{"-scheme", "nonsense"},
		{"-chaos", "bogus:1"},
		{"-badflag"},
	} {
		if code, _ := exitCode(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestExitCodeSuccess(t *testing.T) {
	if code, msg := exitCode(t, "-bench", "S2", "-scheme", "baseline", "-windows", "1"); code != 0 {
		t.Fatalf("clean run exit %d, stderr:\n%s", code, msg)
	}
}

func TestChaosPanicExitsOneWithDiagnostics(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-bench", "S2", "-scheme", "baseline", "-windows", "2",
		"-chaos", "panic:sm:1000"}, io.Discard, &stderr)
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("chaos panic returned %T, want *harness.RunError: %v", err, err)
	}
	if !errors.Is(err, harness.ErrPanic) {
		t.Fatalf("error chain missing ErrPanic: %v", err)
	}
	if code := cliutil.Exit(&stderr, "lbsim", err); code != 1 {
		t.Fatalf("chaos panic exit %d, want 1", code)
	}
	out := stderr.String()
	for _, want := range []string{"chaos: injected panic", "machine state at abort", "recovered stack"} {
		if !strings.Contains(out, want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
}

func TestTimeoutExitsOne(t *testing.T) {
	var stderr bytes.Buffer
	// -windows 0 runs to completion; a 1 ns budget cannot finish any bench.
	err := run([]string{"-bench", "S2", "-scheme", "baseline", "-windows", "0",
		"-timeout", "1ns"}, io.Discard, &stderr)
	if !errors.Is(err, harness.ErrTimeout) {
		t.Fatalf("error chain missing ErrTimeout: %v", err)
	}
	if code := cliutil.Exit(&stderr, "lbsim", err); code != 1 {
		t.Fatalf("timeout exit %d, want 1", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-h"}, io.Discard, &stderr)
	if code := cliutil.Exit(io.Discard, "lbsim", err); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}
