// Command lbsim runs one benchmark under one scheme and prints the
// statistics block.
//
// Usage:
//
//	lbsim -bench S2 -scheme linebacker
//	lbsim -bench BI -scheme swl:4 -windows 16 -paper
//	lbsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/linebacker-sim/linebacker"
)

func main() {
	var (
		bench      = flag.String("bench", "S2", "benchmark code (see -list)")
		kernelFile = flag.String("kernel", "", "run a kernel described in a JSON file instead of -bench")
		scheme     = flag.String("scheme", "linebacker", "scheme specifier (baseline, swl:<n>, ccws, pcal, cerf, cacheext, linebacker, svc, vc, ...)")
		windows    = flag.Int("windows", 16, "run length in monitoring windows (0 = to completion)")
		paper      = flag.Bool("paper", false, "full Table 1 scale (16 SMs) instead of the fast 4-SM configuration")
		list       = flag.Bool("list", false, "list benchmarks and schemes")
		timeline   = flag.Bool("timeline", false, "print per-window IPC while running")
		traceFile  = flag.String("trace", "", "replay a recorded memory trace instead of -bench")
		recordFile = flag.String("record", "", "record the run's memory trace to a file")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks (Table 2):")
		for _, b := range linebacker.Benchmarks() {
			class := "cache-insensitive"
			if b.Sensitive {
				class = "cache-sensitive"
			}
			fmt.Printf("  %-4s %-36s %-10s %s\n", b.Name, b.Desc, b.Suite, class)
		}
		fmt.Println("schemes:")
		for _, s := range linebacker.SchemeNames() {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	var kernel *linebacker.Kernel
	title := ""
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		tr, err := linebacker.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		kernel, err = tr.Kernel("trace-replay", 2, 8, 8, 24, 4096)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		title = fmt.Sprintf("trace replay (%d warps, %d loads, %d events from %s)",
			tr.Warps(), tr.Loads(), tr.Events(), *traceFile)
	} else if *kernelFile != "" {
		data, err := os.ReadFile(*kernelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		kernel, err = linebacker.ParseKernelJSON(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		title = fmt.Sprintf("%s (from %s)", kernel.Name, *kernelFile)
	} else {
		b, ok := linebacker.Benchmark(*bench)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbsim: unknown benchmark %q (use -list)\n", *bench)
			os.Exit(1)
		}
		kernel = b.Kernel
		title = fmt.Sprintf("%s (%s)", b.Name, b.Desc)
	}
	pol, err := linebacker.NewScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}

	cfg := linebacker.FastConfig()
	if *paper {
		cfg = linebacker.DefaultConfig()
	}
	res, err := runKernel(cfg, kernel, pol, *windows, *timeline, *recordFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", title)
	fmt.Printf("scheme           %s\n", res.Policy)
	fmt.Printf("cycles           %d\n", res.Cycles)
	fmt.Printf("instructions     %d\n", res.Instructions)
	fmt.Printf("IPC              %.3f\n", res.IPC())
	total := res.TotalLoadReqs()
	if total > 0 {
		fmt.Printf("load requests    %d\n", total)
		fmt.Printf("  L1 hits        %5.1f%%\n", pct(res.Loads[0], total))
		fmt.Printf("  merged misses  %5.1f%%\n", pct(res.Loads[1], total))
		fmt.Printf("  misses         %5.1f%%\n", pct(res.Loads[2], total))
		fmt.Printf("  bypasses       %5.1f%%\n", pct(res.Loads[3], total))
		fmt.Printf("  reg hits       %5.1f%%\n", pct(res.Loads[4], total))
	}
	fmt.Printf("L1 miss split    cold %d / capacity+conflict %d\n", res.L1.ColdMisses, res.L1.CapConfMisses)
	fmt.Printf("RF bank conflicts %d\n", res.RF.BankConflicts)
	fmt.Printf("DRAM traffic     %.1f KB read, %.1f KB written (backup %.1f KB, restore %.1f KB)\n",
		float64(res.DRAM.BytesRead)/1024, float64(res.DRAM.BytesWritten)/1024,
		float64(res.DRAM.RegBackupBytes)/1024, float64(res.DRAM.RegRestoreBytes)/1024)
	eb := linebacker.Energy(&cfg, res)
	fmt.Printf("energy           %.3g J total (%.3g pJ/instr)\n", eb.Total(),
		linebacker.EnergyPerInstruction(&cfg, res)*1e12)
	if len(res.Extra) > 0 {
		fmt.Println("scheme metrics:")
		for _, k := range sortedKeys(res.Extra) {
			fmt.Printf("  %-24s %.3f\n", k, res.Extra[k])
		}
	}
}

// runKernel runs with optional per-window IPC timeline output and optional
// trace recording.
func runKernel(cfg linebacker.Config, k *linebacker.Kernel, pol linebacker.Policy, windows int, timeline bool, recordFile string) (*linebacker.Result, error) {
	if !timeline && recordFile == "" {
		return linebacker.Run(cfg, k, pol, windows)
	}
	g, err := linebacker.New(cfg, k, pol)
	if err != nil {
		return nil, err
	}
	if recordFile != "" {
		f, err := os.Create(recordFile)
		if err != nil {
			return nil, err
		}
		rec := linebacker.NewTraceRecorder(f)
		linebacker.RecordTrace(g, rec)
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "lbsim: flushing trace:", err)
			}
			f.Close()
		}()
	}
	if !timeline {
		g.Run(int64(windows) * int64(cfg.LB.WindowCycles))
		return g.Collect(), nil
	}
	win := int64(cfg.LB.WindowCycles)
	var prevRetired int64
	fmt.Println("window  IPC      bar")
	for w := 1; w <= windows; w++ {
		g.Run(int64(w) * win)
		var retired int64
		for _, sm := range g.SMs() {
			retired += sm.Retired()
		}
		ipc := float64(retired-prevRetired) / float64(win)
		prevRetired = retired
		bar := ""
		for i := 0.0; i+0.25 <= ipc; i += 0.25 {
			bar += "#"
		}
		fmt.Printf("%6d  %6.3f   %s\n", w, ipc, bar)
	}
	fmt.Println()
	return g.Collect(), nil
}

func pct(n, d int64) float64 { return 100 * float64(n) / float64(d) }

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
