// Command lbsim runs one benchmark under one scheme and prints the
// statistics block.
//
// Usage:
//
//	lbsim -bench S2 -scheme linebacker
//	lbsim -bench BI -scheme swl:4 -windows 16 -paper
//	lbsim -bench KM -scheme vc -check
//	lbsim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"github.com/linebacker-sim/linebacker"
	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/harness"
)

func main() {
	os.Exit(cliutil.Exit(os.Stderr, "lbsim", run(os.Args[1:], os.Stdout, os.Stderr)))
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench      = fs.String("bench", "S2", "benchmark code (see -list)")
		kernelFile = fs.String("kernel", "", "run a kernel described in a JSON file instead of -bench")
		scheme     = fs.String("scheme", "linebacker", "scheme specifier (baseline, swl:<n>, ccws, pcal, cerf, cacheext, linebacker, svc, vc, ...)")
		windows    = fs.Int("windows", 16, "run length in monitoring windows (0 = to completion)")
		paper      = fs.Bool("paper", false, "full Table 1 scale (16 SMs) instead of the fast 4-SM configuration")
		list       = fs.Bool("list", false, "list benchmarks and schemes")
		timeline   = fs.Bool("timeline", false, "print per-window IPC while running")
		traceFile  = fs.String("trace", "", "replay a recorded memory trace instead of -bench")
		recordFile = fs.String("record", "", "record the run's memory trace to a file")
		checkFlag  = fs.Bool("check", false, "sweep runtime conservation invariants every cycle; abort on violation")
		timeout    = fs.Duration("timeout", 0, "wall-clock limit for the run (0 = none)")
		chaosSpec  = fs.String("chaos", "", "fault-injection spec, e.g. panic:sm:5000 or stall-dram:2000 (see internal/chaos)")
		workers    = fs.Int("workers", 1, "SM-stepping threads (0 = GOMAXPROCS); results are identical at any count")
		strict     = fs.Bool("strict", false, "tick every cycle instead of event-driven cycle skipping; results are identical in both modes")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	if *cpuProfile != "" || *memProfile != "" {
		stop, perr := cliutil.StartProfiles(*cpuProfile, *memProfile)
		if perr != nil {
			return perr
		}
		defer func() {
			if perr := stop(); perr != nil {
				fmt.Fprintln(stderr, "lbsim:", perr)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "benchmarks (Table 2):")
		for _, b := range linebacker.Benchmarks() {
			class := "cache-insensitive"
			if b.Sensitive {
				class = "cache-sensitive"
			}
			fmt.Fprintf(stdout, "  %-4s %-36s %-10s %s\n", b.Name, b.Desc, b.Suite, class)
		}
		fmt.Fprintln(stdout, "schemes:")
		for _, s := range linebacker.SchemeNames() {
			fmt.Fprintf(stdout, "  %s\n", s)
		}
		return nil
	}

	var kernel *linebacker.Kernel
	title := ""
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tr, err := linebacker.ParseTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		kernel, err = tr.Kernel("trace-replay", 2, 8, 8, 24, 4096)
		if err != nil {
			return err
		}
		title = fmt.Sprintf("trace replay (%d warps, %d loads, %d events from %s)",
			tr.Warps(), tr.Loads(), tr.Events(), *traceFile)
	} else if *kernelFile != "" {
		data, err := os.ReadFile(*kernelFile)
		if err != nil {
			return err
		}
		kernel, err = linebacker.ParseKernelJSON(data)
		if err != nil {
			return err
		}
		title = fmt.Sprintf("%s (from %s)", kernel.Name, *kernelFile)
	} else {
		b, ok := linebacker.Benchmark(*bench)
		if !ok {
			return cliutil.Usagef("unknown benchmark %q (use -list)", *bench)
		}
		kernel = b.Kernel
		title = fmt.Sprintf("%s (%s)", b.Name, b.Desc)
	}
	pol, err := linebacker.NewScheme(*scheme)
	if err != nil {
		return cliutil.Usagef("%v", err)
	}

	cfg := linebacker.FastConfig()
	if *paper {
		cfg = linebacker.DefaultConfig()
	}
	cfg.Check = *checkFlag
	if cfg.Chaos, err = chaos.ParseSpec(*chaosSpec); err != nil {
		return cliutil.Usagef("%v", err)
	}
	cfg.GPU.Workers = *workers
	cfg.Strict = *strict
	res, err := runKernel(cfg, kernel, pol, *windows, *timeout, *timeline, *recordFile, stdout, stderr)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "benchmark        %s\n", title)
	fmt.Fprintf(stdout, "scheme           %s\n", res.Policy)
	fmt.Fprintf(stdout, "cycles           %d\n", res.Cycles)
	fmt.Fprintf(stdout, "instructions     %d\n", res.Instructions)
	fmt.Fprintf(stdout, "IPC              %.3f\n", res.IPC())
	total := res.TotalLoadReqs()
	if total > 0 {
		fmt.Fprintf(stdout, "load requests    %d\n", total)
		fmt.Fprintf(stdout, "  L1 hits        %5.1f%%\n", pct(res.Loads[0], total))
		fmt.Fprintf(stdout, "  merged misses  %5.1f%%\n", pct(res.Loads[1], total))
		fmt.Fprintf(stdout, "  misses         %5.1f%%\n", pct(res.Loads[2], total))
		fmt.Fprintf(stdout, "  bypasses       %5.1f%%\n", pct(res.Loads[3], total))
		fmt.Fprintf(stdout, "  reg hits       %5.1f%%\n", pct(res.Loads[4], total))
	}
	fmt.Fprintf(stdout, "L1 miss split    cold %d / capacity+conflict %d\n", res.L1.ColdMisses, res.L1.CapConfMisses)
	fmt.Fprintf(stdout, "RF bank conflicts %d\n", res.RF.BankConflicts)
	fmt.Fprintf(stdout, "DRAM traffic     %.1f KB read, %.1f KB written (backup %.1f KB, restore %.1f KB)\n",
		float64(res.DRAM.BytesRead)/1024, float64(res.DRAM.BytesWritten)/1024,
		float64(res.DRAM.RegBackupBytes)/1024, float64(res.DRAM.RegRestoreBytes)/1024)
	eb := linebacker.Energy(&cfg, res)
	fmt.Fprintf(stdout, "energy           %.3g J total (%.3g pJ/instr)\n", eb.Total(),
		linebacker.EnergyPerInstruction(&cfg, res)*1e12)
	if len(res.Extra) > 0 {
		fmt.Fprintln(stdout, "scheme metrics:")
		for _, k := range sortedKeys(res.Extra) {
			fmt.Fprintf(stdout, "  %-24s %.3f\n", k, res.Extra[k])
		}
	}
	return nil
}

// runKernel runs with optional per-window IPC timeline output and optional
// trace recording. The run executes under a recovery barrier: a panic
// (chaos-injected or an engine bug) comes back as a *harness.RunError with
// the machine-state snapshot, and the process exits 1 instead of crashing.
func runKernel(cfg linebacker.Config, k *linebacker.Kernel, pol linebacker.Policy, windows int, timeout time.Duration, timeline bool, recordFile string, stdout, stderr io.Writer) (res *linebacker.Result, err error) {
	g, gerr := linebacker.New(cfg, k, pol)
	if gerr != nil {
		return nil, fmt.Errorf("%w: %w", harness.ErrBadConfig, gerr)
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, &harness.RunError{
				Bench: k.Name, Policy: pol.Name(), Phase: harness.PhaseRun,
				Cycle: g.Cycle(), Snapshot: g.StateDump(), Stack: string(debug.Stack()),
				Err: fmt.Errorf("%w: %v", harness.ErrPanic, p),
			}
		}
	}()
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, timeout, harness.ErrTimeout)
		defer cancel()
	}
	if recordFile != "" {
		f, err := os.Create(recordFile)
		if err != nil {
			return nil, err
		}
		rec := linebacker.NewTraceRecorder(f)
		linebacker.RecordTrace(g, rec)
		defer func() {
			if err := rec.Flush(); err != nil {
				fmt.Fprintln(stderr, "lbsim: flushing trace:", err)
			}
			f.Close()
		}()
	}
	if !timeline {
		if _, err := g.RunCtx(ctx, int64(windows)*int64(cfg.LB.WindowCycles)); err != nil {
			return nil, &harness.RunError{
				Bench: k.Name, Policy: pol.Name(), Phase: harness.PhaseRun,
				Cycle: g.Cycle(), Snapshot: g.StateDump(), Err: err,
			}
		}
		return g.Collect(), nil
	}
	win := int64(cfg.LB.WindowCycles)
	var prevRetired int64
	fmt.Fprintln(stdout, "window  IPC      bar")
	for w := 1; w <= windows; w++ {
		if _, err := g.RunCtx(ctx, int64(w)*win); err != nil {
			return nil, &harness.RunError{
				Bench: k.Name, Policy: pol.Name(), Phase: harness.PhaseRun,
				Cycle: g.Cycle(), Snapshot: g.StateDump(), Err: err,
			}
		}
		var retired int64
		for _, sm := range g.SMs() {
			retired += sm.Retired()
		}
		ipc := float64(retired-prevRetired) / float64(win)
		prevRetired = retired
		bar := ""
		for i := 0.0; i+0.25 <= ipc; i += 0.25 {
			bar += "#"
		}
		fmt.Fprintf(stdout, "%6d  %6.3f   %s\n", w, ipc, bar)
	}
	fmt.Fprintln(stdout)
	return g.Collect(), nil
}

func pct(n, d int64) float64 { return 100 * float64(n) / float64(d) }

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
