package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmarks (Table 2):", "S2", "schemes:", "linebacker"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunBaseline(t *testing.T) {
	out, err := runCLI(t, "-bench", "S2", "-scheme", "baseline", "-windows", "1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmark", "scheme           Baseline", "cycles", "IPC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunWithCheck(t *testing.T) {
	if _, err := runCLI(t, "-bench", "S2", "-scheme", "vc", "-windows", "2", "-check"); err != nil {
		t.Fatal(err)
	}
}

func TestTimeline(t *testing.T) {
	out, err := runCLI(t, "-bench", "S2", "-scheme", "baseline", "-windows", "2", "-timeline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "window  IPC") {
		t.Errorf("timeline header missing in:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "NOPE"},
		{"-scheme", "nonsense"},
		{"-badflag"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
