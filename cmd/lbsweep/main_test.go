package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, &out, io.Discard)
	return out.String(), err
}

func TestSWLSweep(t *testing.T) {
	out, err := runCLI(t, "-mode", "swl", "-bench", "S2", "-windows", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Best-SWL: limit") {
		t.Errorf("missing Best-SWL summary:\n%s", out)
	}
}

func TestVTTSweep(t *testing.T) {
	out, err := runCLI(t, "-mode", "vtt", "-bench", "S2", "-windows", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VTT partition associativity sweep") {
		t.Errorf("missing sweep header:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nonsense"},
		{"-bench", "NOPE"},
		{"-mode", "cache", "-scheme", "nonsense"},
		{"-badflag"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
