package main

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/harness"
)

func TestExitCodeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nonsense"},
		{"-bench", "NOPE"},
		{"-mode", "cache", "-scheme", "nonsense"},
		{"-chaos", "panic:sm"},
		{"-badflag"},
	} {
		var stderr bytes.Buffer
		err := run(args, io.Discard, &stderr)
		if code := cliutil.Exit(&stderr, "lbsweep", err); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestChaosPanicFailsSweep(t *testing.T) {
	var stderr bytes.Buffer
	err := run([]string{"-mode", "vtt", "-bench", "S2", "-windows", "2",
		"-chaos", "panic:sm:1000"}, io.Discard, &stderr)
	var re *harness.RunError
	if !errors.As(err, &re) {
		t.Fatalf("chaos panic returned %T, want *harness.RunError: %v", err, err)
	}
	if !errors.Is(err, harness.ErrPanic) {
		t.Fatalf("error chain missing ErrPanic: %v", err)
	}
	if code := cliutil.Exit(&stderr, "lbsweep", err); code != 1 {
		t.Fatalf("chaos panic exit %d, want 1", code)
	}
	if out := stderr.String(); !strings.Contains(out, "machine state at abort") {
		t.Errorf("stderr missing machine-state snapshot:\n%s", out)
	}
}

func TestJournalResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	args := []string{"-mode", "vtt", "-bench", "S2", "-windows", "1", "-journal", journal}

	var out1, err1 bytes.Buffer
	if err := run(args, &out1, &err1); err != nil {
		t.Fatalf("first sweep failed: %v", err)
	}
	if strings.Contains(err1.String(), "resuming") {
		t.Fatalf("fresh journal claimed a resume:\n%s", err1.String())
	}

	// Second invocation: every point must come from the journal, with the
	// resume notice on stderr and bit-identical sweep output.
	var out2, err2 bytes.Buffer
	if err := run(args, &out2, &err2); err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if !strings.Contains(err2.String(), "resuming past") {
		t.Fatalf("no resume notice on stderr:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("resumed sweep output diverged:\n--- first\n%s--- second\n%s", out1.String(), out2.String())
	}
}
