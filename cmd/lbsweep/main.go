// Command lbsweep runs parameter sweeps: static CTA limits (Best-SWL
// search), L1 cache sizes, and VTT partition associativities.
//
// Usage:
//
//	lbsweep -mode swl -bench S2
//	lbsweep -mode cache -bench BI -scheme linebacker
//	lbsweep -mode vtt -bench BC
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/linebacker-sim/linebacker"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

func main() {
	var (
		mode    = flag.String("mode", "swl", "sweep: swl | cache | vtt")
		bench   = flag.String("bench", "S2", "benchmark code")
		scheme  = flag.String("scheme", "linebacker", "scheme for the cache sweep")
		windows = flag.Int("windows", 16, "run length in monitoring windows")
		paper   = flag.Bool("paper", false, "full Table 1 scale")
	)
	flag.Parse()

	b, ok := linebacker.Benchmark(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "lbsweep: unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	cfg := linebacker.FastConfig()
	if *paper {
		cfg = linebacker.DefaultConfig()
	}

	run := func(cfg linebacker.Config, pol linebacker.Policy) *linebacker.Result {
		res, err := linebacker.Run(cfg, b.Kernel, pol, *windows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsweep:", err)
			os.Exit(1)
		}
		return res
	}

	switch *mode {
	case "swl":
		maxRes := sim.MaxResidentCTAs(&cfg.GPU, b.Kernel)
		fmt.Printf("static CTA limit sweep for %s (max resident %d):\n", b.Name, maxRes)
		bestIPC, bestLim := 0.0, 0
		for lim := 1; lim <= maxRes; lim++ {
			r := run(cfg, schemes.SWL{Limit: lim})
			fmt.Printf("  limit %2d: IPC %.3f\n", lim, r.IPC())
			if r.IPC() > bestIPC {
				bestIPC, bestLim = r.IPC(), lim
			}
		}
		fmt.Printf("Best-SWL: limit %d (IPC %.3f)\n", bestLim, bestIPC)
	case "cache":
		pol, err := linebacker.NewScheme(*scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsweep:", err)
			os.Exit(1)
		}
		fmt.Printf("L1 size sweep for %s under %s:\n", b.Name, pol.Name())
		for _, kb := range []int{16, 48, 64, 96, 128} {
			c := cfg
			c.GPU.L1Bytes = kb * 1024
			base := run(c, sim.Baseline{})
			r := run(c, pol)
			fmt.Printf("  L1 %3d KB: IPC %.3f (%.2fx baseline)\n", kb, r.IPC(), r.IPC()/base.IPC())
		}
	case "vtt":
		fmt.Printf("VTT partition associativity sweep for %s:\n", b.Name)
		for _, ways := range []int{1, 2, 4, 8, 16, 32} {
			pol := core.NewWith(core.Options{Selection: true, Throttling: true, VTTWays: ways})
			r := run(cfg, pol)
			fmt.Printf("  %2d-way VPs: IPC %.3f, reg-hit %.1f%%, victim %.0f KB avg\n",
				ways, r.IPC(), r.RegHitRatio()*100, r.Extra["lb_victim_bytes_avg"]/1024)
		}
	default:
		fmt.Fprintf(os.Stderr, "lbsweep: unknown mode %q\n", *mode)
		os.Exit(1)
	}
}
