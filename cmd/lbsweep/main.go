// Command lbsweep runs parameter sweeps: static CTA limits (Best-SWL
// search), L1 cache sizes, and VTT partition associativities.
//
// Sweeps execute on the fault-tolerant harness runner: every point runs
// under panic isolation with an optional wall-clock timeout, and with
// -journal the completed points checkpoint to a JSONL file — re-running
// the same command after an interruption re-simulates only the missing
// points.
//
// Usage:
//
//	lbsweep -mode swl -bench S2
//	lbsweep -mode cache -bench BI -scheme linebacker
//	lbsweep -mode vtt -bench BC
//	lbsweep -mode swl -bench KM -journal sweep.jsonl   # resumable
//
// Exit status: 0 ok, 1 run failure, 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/linebacker-sim/linebacker"
	"github.com/linebacker-sim/linebacker/internal/chaos"
	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/harness"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
	"github.com/linebacker-sim/linebacker/internal/twin"
)

func main() {
	os.Exit(cliutil.Exit(os.Stderr, "lbsweep", run(os.Args[1:], os.Stdout, os.Stderr)))
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode       = fs.String("mode", "swl", "sweep: swl | cache | vtt | speedup")
		bench      = fs.String("bench", "S2", "benchmark code")
		scheme     = fs.String("scheme", "linebacker", "scheme for the cache sweep")
		windows    = fs.Int("windows", 16, "run length in monitoring windows")
		paper      = fs.Bool("paper", false, "full Table 1 scale")
		timeout    = fs.Duration("timeout", 0, "wall-clock limit per point (0 = none)")
		journal    = fs.String("journal", "", "JSONL checkpoint file; an existing one resumes the sweep")
		chaosSpec  = fs.String("chaos", "", "fault-injection spec, e.g. panic:sm:5000 (see internal/chaos)")
		twinMode   = fs.Bool("twin", false, "answer the cache sweep from a calibrated analytical twin where in-envelope (simulates only the calibration anchors and any out-of-envelope point)")
		workers    = fs.Int("workers", 1, "SM-stepping threads per simulation (0 = GOMAXPROCS); results are identical at any count")
		strict     = fs.Bool("strict", false, "tick every cycle instead of event-driven cycle skipping; results are identical in both modes")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	if *cpuProfile != "" || *memProfile != "" {
		stop, perr := cliutil.StartProfiles(*cpuProfile, *memProfile)
		if perr != nil {
			return perr
		}
		defer func() {
			if perr := stop(); perr != nil {
				fmt.Fprintln(stderr, "lbsweep:", perr)
			}
		}()
	}

	b, ok := linebacker.Benchmark(*bench)
	if !ok {
		return cliutil.Usagef("unknown benchmark %q", *bench)
	}
	cfg := linebacker.FastConfig()
	if *paper {
		cfg = linebacker.DefaultConfig()
	}
	var err error
	if cfg.Chaos, err = chaos.ParseSpec(*chaosSpec); err != nil {
		return cliutil.Usagef("%v", err)
	}
	cfg.GPU.Workers = *workers
	cfg.Strict = *strict

	r := harness.NewRunner(cfg, *windows)
	r.Timeout = *timeout
	r.WatchdogTick = 10 * time.Second
	if *journal != "" {
		j, err := harness.OpenJournal(*journal)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := j.Close(); cerr != nil {
				fmt.Fprintln(stderr, "lbsweep: journal:", cerr)
			}
		}()
		for _, w := range j.Warnings() {
			fmt.Fprintln(stderr, "lbsweep: journal:", w)
		}
		if j.Len() > 0 {
			fmt.Fprintf(stderr, "lbsweep: journal %s: resuming past %d completed point(s)\n", *journal, j.Len())
		}
		r.AttachJournal(j)
	}

	ctx := context.Background()
	runOne := func(cfg linebacker.Config, cfgKey string, pol linebacker.Policy) (*linebacker.Result, error) {
		return r.RunCfg(ctx, cfg, cfgKey, b.Name, pol)
	}

	switch *mode {
	case "swl":
		maxRes := sim.MaxResidentCTAs(&cfg.GPU, b.Kernel)
		fmt.Fprintf(stdout, "static CTA limit sweep for %s (max resident %d):\n", b.Name, maxRes)
		bestIPC, bestLim := 0.0, 0
		for lim := 1; lim <= maxRes; lim++ {
			res, err := runOne(cfg, "", schemes.SWL{Limit: lim})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  limit %2d: IPC %.3f\n", lim, res.IPC())
			if res.IPC() > bestIPC {
				bestIPC, bestLim = res.IPC(), lim
			}
		}
		fmt.Fprintf(stdout, "Best-SWL: limit %d (IPC %.3f)\n", bestLim, bestIPC)
	case "cache":
		pol, err := linebacker.NewScheme(*scheme)
		if err != nil {
			return cliutil.Usagef("%v", err)
		}
		var model *twin.Model
		if *twinMode {
			if *scheme != "baseline" && *scheme != "linebacker" {
				return cliutil.Usagef("-twin answers the calibrated arms only (baseline, linebacker), not %q", *scheme)
			}
			if model, err = twin.Calibrate(ctx, r, b.Name, twin.Options{}); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "lbsweep: twin calibrated for %s on %d simulation(s); queries are now analytical\n",
				b.Name, model.CalRuns)
		}
		fmt.Fprintf(stdout, "L1 size sweep for %s under %s:\n", b.Name, pol.Name())
		for _, kb := range []int{16, 48, 64, 96, 128} {
			if model != nil {
				arm := model.Estimate(twin.Query{L1Bytes: kb * 1024, LB: *scheme == "linebacker"})
				base := arm
				if *scheme != "baseline" {
					base = model.Estimate(twin.Query{L1Bytes: kb * 1024})
				}
				if arm.InEnvelope && base.InEnvelope {
					fmt.Fprintf(stdout, "  L1 %3d KB: IPC %.3f [%.3f, %.3f] (%.2fx baseline, twin)\n",
						kb, arm.IPC, arm.Lo, arm.Hi, arm.IPC/base.IPC)
					continue
				}
				reason := arm.Reason
				if reason == "" {
					reason = base.Reason
				}
				fmt.Fprintf(stderr, "lbsweep: L1 %d KB out of the twin envelope (%s); simulating\n", kb, reason)
			}
			c := cfg
			c.GPU.L1Bytes = kb * 1024
			key := fmt.Sprintf("l1=%d", kb)
			base, err := runOne(c, key, sim.Baseline{})
			if err != nil {
				return err
			}
			res, err := runOne(c, key, pol)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  L1 %3d KB: IPC %.3f (%.2fx baseline)\n", kb, res.IPC(), res.IPC()/base.IPC())
		}
	case "speedup":
		// Cross-bench aggregate: -scheme vs baseline over all 20 benches,
		// combined with the paired geomean so arms that fail on different
		// benches error out instead of averaging disjoint sets.
		if _, err := linebacker.NewScheme(*scheme); err != nil {
			return cliutil.Usagef("%v", err)
		}
		fmt.Fprintf(stdout, "per-bench speedup of %s vs baseline (all benches):\n", *scheme)
		sweepOf := func(mk func() (linebacker.Policy, error)) *harness.Sweep {
			return r.ForEachBench(ctx, func(ctx context.Context, name string) (float64, error) {
				pol, err := mk()
				if err != nil {
					return 0, err
				}
				res, err := r.RunCfg(ctx, cfg, "", name, pol)
				if err != nil {
					return 0, err
				}
				return res.IPC(), nil
			})
		}
		base := sweepOf(func() (linebacker.Policy, error) { return sim.Baseline{}, nil })
		arm := sweepOf(func() (linebacker.Policy, error) { return linebacker.NewScheme(*scheme) })
		for i, name := range arm.Benches {
			switch {
			case arm.Errs[i] != nil:
				fmt.Fprintf(stdout, "  %-4s FAILED (%s): %v\n", name, *scheme, arm.Errs[i])
			case base.Errs[i] != nil:
				fmt.Fprintf(stdout, "  %-4s FAILED (baseline): %v\n", name, base.Errs[i])
			default:
				fmt.Fprintf(stdout, "  %-4s %.3fx  (IPC %.3f vs %.3f)\n",
					name, arm.Vals[i]/base.Vals[i], arm.Vals[i], base.Vals[i])
			}
		}
		gm, n, err := harness.PairedSpeedupGM(arm, base)
		if err != nil {
			return fmt.Errorf("speedup aggregate: %w", err)
		}
		fmt.Fprintf(stdout, "GM speedup: %.3f over %d paired bench(es)\n", gm, n)
	case "vtt":
		fmt.Fprintf(stdout, "VTT partition associativity sweep for %s:\n", b.Name)
		for _, ways := range []int{1, 2, 4, 8, 16, 32} {
			pol := core.NewWith(core.Options{Selection: true, Throttling: true, VTTWays: ways})
			// Distinct cfgKey per point: the VTT policies share a Name, and
			// the memo/journal key must not alias them.
			res, err := runOne(cfg, fmt.Sprintf("vtt=%d", ways), pol)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  %2d-way VPs: IPC %.3f, reg-hit %.1f%%, victim %.0f KB avg\n",
				ways, res.IPC(), res.RegHitRatio()*100, res.Extra["lb_victim_bytes_avg"]/1024)
		}
	default:
		return cliutil.Usagef("unknown mode %q", *mode)
	}
	return nil
}
