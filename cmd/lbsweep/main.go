// Command lbsweep runs parameter sweeps: static CTA limits (Best-SWL
// search), L1 cache sizes, and VTT partition associativities.
//
// Usage:
//
//	lbsweep -mode swl -bench S2
//	lbsweep -mode cache -bench BI -scheme linebacker
//	lbsweep -mode vtt -bench BC
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/linebacker-sim/linebacker"
	"github.com/linebacker-sim/linebacker/internal/core"
	"github.com/linebacker-sim/linebacker/internal/schemes"
	"github.com/linebacker-sim/linebacker/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lbsweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode    = fs.String("mode", "swl", "sweep: swl | cache | vtt")
		bench   = fs.String("bench", "S2", "benchmark code")
		scheme  = fs.String("scheme", "linebacker", "scheme for the cache sweep")
		windows = fs.Int("windows", 16, "run length in monitoring windows")
		paper   = fs.Bool("paper", false, "full Table 1 scale")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	b, ok := linebacker.Benchmark(*bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *bench)
	}
	cfg := linebacker.FastConfig()
	if *paper {
		cfg = linebacker.DefaultConfig()
	}

	runOne := func(cfg linebacker.Config, pol linebacker.Policy) (*linebacker.Result, error) {
		return linebacker.Run(cfg, b.Kernel, pol, *windows)
	}

	switch *mode {
	case "swl":
		maxRes := sim.MaxResidentCTAs(&cfg.GPU, b.Kernel)
		fmt.Fprintf(stdout, "static CTA limit sweep for %s (max resident %d):\n", b.Name, maxRes)
		bestIPC, bestLim := 0.0, 0
		for lim := 1; lim <= maxRes; lim++ {
			r, err := runOne(cfg, schemes.SWL{Limit: lim})
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  limit %2d: IPC %.3f\n", lim, r.IPC())
			if r.IPC() > bestIPC {
				bestIPC, bestLim = r.IPC(), lim
			}
		}
		fmt.Fprintf(stdout, "Best-SWL: limit %d (IPC %.3f)\n", bestLim, bestIPC)
	case "cache":
		pol, err := linebacker.NewScheme(*scheme)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "L1 size sweep for %s under %s:\n", b.Name, pol.Name())
		for _, kb := range []int{16, 48, 64, 96, 128} {
			c := cfg
			c.GPU.L1Bytes = kb * 1024
			base, err := runOne(c, sim.Baseline{})
			if err != nil {
				return err
			}
			r, err := runOne(c, pol)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  L1 %3d KB: IPC %.3f (%.2fx baseline)\n", kb, r.IPC(), r.IPC()/base.IPC())
		}
	case "vtt":
		fmt.Fprintf(stdout, "VTT partition associativity sweep for %s:\n", b.Name)
		for _, ways := range []int{1, 2, 4, 8, 16, 32} {
			pol := core.NewWith(core.Options{Selection: true, Throttling: true, VTTWays: ways})
			r, err := runOne(cfg, pol)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "  %2d-way VPs: IPC %.3f, reg-hit %.1f%%, victim %.0f KB avg\n",
				ways, r.IPC(), r.RegHitRatio()*100, r.Extra["lb_victim_bytes_avg"]/1024)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
