// Package pkg is a minimal lbvet-clean module for CLI smoke tests.
package pkg

// Add is deterministic by construction.
func Add(a, b int) int { return a + b }
