package main

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/linebacker-sim/linebacker/internal/analysis"
)

// writeDiags renders the findings in the selected format. All formats use
// the module-relative file names the analysis layer produced, so output is
// stable across machines and cache states.
func writeDiags(w io.Writer, format string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	switch format {
	case "json":
		return writeJSON(w, diags)
	case "sarif":
		return writeSARIF(w, analyzers, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
		return nil
	}
}

// jsonDiag is the -format json record.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, len(diags))
	for i, d := range diags {
		out[i] = jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0, the minimum GitHub code scanning accepts: one run, one rule
// per analyzer, one result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func writeSARIF(w io.Writer, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}}
	}
	results := make([]sarifResult, len(diags))
	for i, d := range diags {
		results[i] = sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.Filename},
				Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "lbvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
