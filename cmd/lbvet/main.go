// Command lbvet runs the project's static-analysis suite: the determinism
// and accounting rules of internal/analysis, enforced over the module at
// compile time.
//
// Usage:
//
//	lbvet ./...
//	lbvet -analyzers maprange,floatsum ./internal/sim ./internal/stats
//	lbvet -skip errflow ./...
//	lbvet -format sarif ./... > lbvet.sarif
//	lbvet -baseline lbvet-baseline.json ./...
//	lbvet -list
//
// Results are cached under <module>/.lbvet-cache keyed by source content,
// the module-internal import closure, the toolchain and the analyzer set;
// a warm run re-analyzes only what changed and its output is byte-identical
// to a cold run. Disable with -no-cache.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/linebacker-sim/linebacker/internal/analysis"
)

// errFindings distinguishes "the code is dirty" (exit 1) from "lbvet could
// not run" (exit 2).
var errFindings = errors.New("findings")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "lbvet:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		names     = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		skip      = fs.String("skip", "", "comma-separated analyzers to exclude from the run")
		list      = fs.Bool("list", false, "list analyzers and exit")
		dir       = fs.String("dir", ".", "directory to resolve package patterns from")
		format    = fs.String("format", "text", "output format: text, json or sarif")
		baseline  = fs.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBase = fs.String("write-baseline", "", "write current findings to this baseline file and exit clean")
		cacheDir  = fs.String("cache-dir", "", "cache directory (default: <module root>/.lbvet-cache)")
		noCache   = fs.Bool("no-cache", false, "disable the incremental cache")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers, err := analysis.Select(*names, *skip)
	if err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		return fmt.Errorf("unknown -format %q (want text, json or sarif)", *format)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		return errors.New("no packages (try: lbvet ./...)")
	}

	diags, stats, err := analyze(*dir, patterns, analyzers, *cacheDir, *noCache)
	if err != nil {
		return err
	}

	if *writeBase != "" {
		if err := writeBaseline(*writeBase, diags); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "lbvet: wrote %d finding(s) to baseline %s\n", len(diags), *writeBase)
		return nil
	}
	if *baseline != "" {
		kept, suppressed, stale, err := applyBaseline(*baseline, diags)
		if err != nil {
			return err
		}
		diags = kept
		if suppressed > 0 {
			fmt.Fprintf(stderr, "lbvet: %d finding(s) suppressed by baseline\n", suppressed)
		}
		if stale > 0 {
			fmt.Fprintf(stderr, "lbvet: %d stale baseline entr(y/ies) matched nothing — prune %s\n", stale, *baseline)
		}
	}

	if err := writeDiags(stdout, *format, analyzers, diags); err != nil {
		return err
	}
	if !*noCache {
		fmt.Fprintf(stderr, "lbvet: %d/%d package(s) from cache, %d analyzed, %d loaded\n",
			stats.CachedPackages, stats.Packages, stats.AnalyzedPackages, stats.LoadedPackages)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lbvet: %d finding(s) in %d package(s)\n", len(diags), stats.Packages)
		return errFindings
	}
	return nil
}

// analyze runs the suite through the incremental cache, or cold when the
// cache is disabled. Either way the diagnostics come back module-relative
// and sorted, so both paths print byte-identical output.
func analyze(dir string, patterns []string, analyzers []*analysis.Analyzer, cacheDir string, noCache bool) ([]analysis.Diagnostic, analysis.RunStats, error) {
	if noCache {
		var stats analysis.RunStats
		loader, err := analysis.NewLoader(dir)
		if err != nil {
			return nil, stats, err
		}
		pkgs, err := loader.LoadPatterns(dir, patterns)
		if err != nil {
			return nil, stats, err
		}
		diags := analysis.Relativize(loader.Root(), analysis.Run(loader.Fset, pkgs, analyzers))
		stats.Packages = len(pkgs)
		stats.AnalyzedPackages = len(pkgs)
		stats.LoadedPackages = len(pkgs)
		for _, p := range pkgs {
			stats.PackagePaths = append(stats.PackagePaths, p.Path)
		}
		return diags, stats, nil
	}
	if cacheDir == "" {
		loader, err := analysis.NewLoader(dir)
		if err != nil {
			return nil, analysis.RunStats{}, err
		}
		cacheDir = filepath.Join(loader.Root(), ".lbvet-cache")
	}
	return analysis.RunIncremental(dir, patterns, analyzers, cacheDir)
}
