// Command lbvet runs the project's static-analysis suite: the determinism
// and accounting rules of internal/analysis, enforced over the module at
// compile time.
//
// Usage:
//
//	lbvet ./...
//	lbvet -analyzers maprange,floatsum ./internal/sim ./internal/stats
//	lbvet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/linebacker-sim/linebacker/internal/analysis"
)

// errFindings distinguishes "the code is dirty" (exit 1) from "lbvet could
// not run" (exit 2).
var errFindings = errors.New("findings")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, errFindings):
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "lbvet:", err)
		os.Exit(2)
	}
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		names = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list  = fs.Bool("list", false, "list analyzers and exit")
		dir   = fs.String("dir", ".", "directory to resolve package patterns from")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		return err
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		return errors.New("no packages (try: lbvet ./...)")
	}
	loader, err := analysis.NewLoader(*dir)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadPatterns(*dir, patterns)
	if err != nil {
		return err
	}

	diags := analysis.Run(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lbvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return errFindings
	}
	return nil
}
