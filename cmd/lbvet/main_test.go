package main

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestListAnalyzers covers -list output.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range []string{"maprange", "nondeterm", "fingerprint", "statsflow", "floatsum"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestCleanModule is the happy path: a clean module exits 0 (nil error).
func TestCleanModule(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-dir", filepath.Join("testdata", "clean"), "./..."}, &out, &errb)
	if err != nil {
		t.Fatalf("clean module: %v\nstderr: %s", err, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module printed diagnostics:\n%s", out.String())
	}
}

// TestFindingsExitDistinctly: a dirty fixture returns errFindings (exit 1)
// and prints the diagnostics to stdout.
func TestFindingsExitDistinctly(t *testing.T) {
	var out, errb bytes.Buffer
	dir := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "maprange")
	err := run([]string{"-dir", dir, "./..."}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("dirty module: want errFindings, got %v", err)
	}
	if !strings.Contains(out.String(), "maprange") || !strings.Contains(out.String(), "range over map") {
		t.Errorf("diagnostics not printed:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("summary not printed to stderr: %s", errb.String())
	}
}

// TestAnalyzerSubset restricts the run to one analyzer.
func TestAnalyzerSubset(t *testing.T) {
	var out, errb bytes.Buffer
	dir := filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "maprange")
	// nondeterm has nothing to say about the maprange fixture.
	if err := run([]string{"-dir", dir, "-analyzers", "nondeterm", "./..."}, &out, &errb); err != nil {
		t.Fatalf("subset run: %v", err)
	}
}

// TestErrors covers the non-finding failure modes (exit 2 paths).
func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no packages
		{"-analyzers", "bogus", "./..."}, // unknown analyzer
		{"-dir", filepath.Join("testdata", "clean"), "./missing"},  // bad package path
		{"-dir", filepath.Join("testdata", "missingmod"), "./..."}, // nonexistent directory
		{"-dir", t.TempDir(), "./..."},                             // no go.mod anywhere above
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, &out, &errb)
		if err == nil || errors.Is(err, errFindings) {
			t.Errorf("run(%q) = %v, want a hard error", args, err)
		}
	}
}
