package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestListAnalyzers covers -list output.
func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range []string{"maprange", "nondeterm", "fingerprint", "statsflow", "floatsum", "skipclosure", "workershare", "errflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestCleanModule is the happy path: a clean module exits 0 (nil error).
func TestCleanModule(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-dir", filepath.Join("testdata", "clean"), "-cache-dir", t.TempDir(), "./..."}, &out, &errb)
	if err != nil {
		t.Fatalf("clean module: %v\nstderr: %s", err, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean module printed diagnostics:\n%s", out.String())
	}
}

// maprangeFixture is a module with known maprange findings, used as the
// dirty-module input throughout.
func maprangeFixture() string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "src", "maprange")
}

// TestFindingsExitDistinctly: a dirty fixture returns errFindings (exit 1)
// and prints the diagnostics to stdout with module-relative paths.
func TestFindingsExitDistinctly(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-dir", maprangeFixture(), "-cache-dir", t.TempDir(), "./..."}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("dirty module: want errFindings, got %v", err)
	}
	if !strings.Contains(out.String(), "maprange") || !strings.Contains(out.String(), "range over map") {
		t.Errorf("diagnostics not printed:\n%s", out.String())
	}
	if strings.Contains(out.String(), string(filepath.Separator)+"testdata"+string(filepath.Separator)) {
		t.Errorf("diagnostics leak absolute paths:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("summary not printed to stderr: %s", errb.String())
	}
}

// TestAnalyzerSubset restricts the run to one analyzer.
func TestAnalyzerSubset(t *testing.T) {
	var out, errb bytes.Buffer
	// nondeterm has nothing to say about the maprange fixture.
	if err := run([]string{"-dir", maprangeFixture(), "-cache-dir", t.TempDir(), "-analyzers", "nondeterm", "./..."}, &out, &errb); err != nil {
		t.Fatalf("subset run: %v", err)
	}
}

// TestSkipFlag excludes an analyzer from the full suite, and rejects the
// ambiguous combination of selecting and skipping the same name.
func TestSkipFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-dir", filepath.Join("testdata", "clean"), "-cache-dir", t.TempDir(),
		"-skip", "errflow", "./..."}, &out, &errb); err != nil {
		t.Fatalf("-skip errflow on a clean module: %v\n%s", err, out.String())
	}
	err := run([]string{"-dir", filepath.Join("testdata", "clean"), "-cache-dir", t.TempDir(),
		"-analyzers", "maprange", "-skip", "maprange", "./..."}, &out, &errb)
	if err == nil || errors.Is(err, errFindings) {
		t.Fatalf("selecting and skipping the same analyzer should be a hard error, got %v", err)
	}
}

// TestFormatJSON checks the machine-readable output.
func TestFormatJSON(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-dir", maprangeFixture(), "-cache-dir", t.TempDir(), "-format", "json", "./..."}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("no JSON diagnostics")
	}
	for _, d := range diags {
		if d.Analyzer != "maprange" || d.Line <= 0 || filepath.IsAbs(d.File) {
			t.Errorf("bad JSON diagnostic: %+v", d)
		}
	}
}

// TestFormatSARIF checks the SARIF 2.1.0 envelope.
func TestFormatSARIF(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-dir", maprangeFixture(), "-cache-dir", t.TempDir(), "-format", "sarif", "./..."}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("want errFindings, got %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out.Bytes(), &log); err != nil {
		t.Fatalf("output is not SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "lbvet" {
		t.Fatalf("bad SARIF envelope: %+v", log)
	}
	if len(log.Runs[0].Results) == 0 {
		t.Fatal("no SARIF results")
	}
	for _, r := range log.Runs[0].Results {
		if r.RuleID != "maprange" || len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Errorf("bad SARIF result: %+v", r)
		}
	}
}

// TestBaselineRoundTrip: -write-baseline accepts the current findings,
// -baseline then suppresses exactly them, and a stale entry is reported.
func TestBaselineRoundTrip(t *testing.T) {
	cache := t.TempDir()
	base := filepath.Join(t.TempDir(), "baseline.json")

	var out, errb bytes.Buffer
	if err := run([]string{"-dir", maprangeFixture(), "-cache-dir", cache, "-write-baseline", base, "./..."}, &out, &errb); err != nil {
		t.Fatalf("-write-baseline: %v", err)
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Errorf("no write confirmation: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	if err := run([]string{"-dir", maprangeFixture(), "-cache-dir", cache, "-baseline", base, "./..."}, &out, &errb); err != nil {
		t.Fatalf("baselined run should be clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(errb.String(), "suppressed by baseline") {
		t.Errorf("no suppression note: %s", errb.String())
	}

	// A baseline with an entry nothing matches is stale.
	if err := os.WriteFile(base, []byte(`[{"analyzer":"maprange","file":"gone.go","message":"never"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	err := run([]string{"-dir", maprangeFixture(), "-cache-dir", cache, "-baseline", base, "./..."}, &out, &errb)
	if !errors.Is(err, errFindings) {
		t.Fatalf("unsuppressed findings should still fail: %v", err)
	}
	if !strings.Contains(errb.String(), "stale baseline") {
		t.Errorf("no stale-entry note: %s", errb.String())
	}
}

// TestWarmCacheByteIdentical: a warm run serves everything from cache and
// prints byte-identical stdout.
func TestWarmCacheByteIdentical(t *testing.T) {
	cache := t.TempDir()
	var cold, coldErr bytes.Buffer
	err1 := run([]string{"-dir", maprangeFixture(), "-cache-dir", cache, "./..."}, &cold, &coldErr)
	var warm, warmErr bytes.Buffer
	err2 := run([]string{"-dir", maprangeFixture(), "-cache-dir", cache, "./..."}, &warm, &warmErr)
	if !errors.Is(err1, errFindings) || !errors.Is(err2, errFindings) {
		t.Fatalf("want errFindings twice, got %v / %v", err1, err2)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
	if !strings.Contains(warmErr.String(), "0 loaded") {
		t.Errorf("warm run loaded packages: %s", warmErr.String())
	}
	// -no-cache agrees byte for byte too.
	var nocache, nocacheErr bytes.Buffer
	if err := run([]string{"-dir", maprangeFixture(), "-no-cache", "./..."}, &nocache, &nocacheErr); !errors.Is(err, errFindings) {
		t.Fatalf("-no-cache run: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), nocache.Bytes()) {
		t.Errorf("-no-cache output differs from cached output")
	}
}

// TestErrors covers the non-finding failure modes (exit 2 paths).
func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no packages
		{"-analyzers", "bogus", "./..."}, // unknown analyzer
		{"-skip", "bogus", "./..."},      // unknown analyzer in -skip
		{"-format", "xml", "./..."},      // unknown format
		{"-dir", filepath.Join("testdata", "clean"), "./missing"},  // bad package path
		{"-dir", filepath.Join("testdata", "missingmod"), "./..."}, // nonexistent directory
		{"-dir", t.TempDir(), "./..."},                             // no go.mod anywhere above
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, &out, &errb)
		if err == nil || errors.Is(err, errFindings) {
			t.Errorf("run(%q) = %v, want a hard error", args, err)
		}
	}
}
