package main

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/linebacker-sim/linebacker/internal/analysis"
)

// baselineEntry identifies a reviewed, accepted finding. Line numbers are
// deliberately absent: unrelated edits move findings around, and a baseline
// that churns on every edit stops being reviewable.
type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative, slash-separated
	Message  string `json:"message"`
}

// writeBaseline records the current findings as the accepted baseline.
func writeBaseline(path string, diags []analysis.Diagnostic) error {
	seen := map[baselineEntry]bool{}
	var entries []baselineEntry
	for _, d := range diags {
		e := baselineEntry{Analyzer: d.Analyzer, File: d.Pos.Filename, Message: d.Message}
		if !seen[e] {
			seen[e] = true
			entries = append(entries, e)
		}
	}
	if entries == nil {
		entries = []baselineEntry{}
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// applyBaseline drops findings recorded in the baseline file. It returns
// the surviving findings, how many were suppressed, and how many baseline
// entries matched nothing (stale entries a fixed finding leaves behind).
func applyBaseline(path string, diags []analysis.Diagnostic) (kept []analysis.Diagnostic, suppressed, stale int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("reading baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, 0, 0, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	matched := map[baselineEntry]bool{}
	index := map[baselineEntry]bool{}
	for _, e := range entries {
		index[e] = true
	}
	for _, d := range diags {
		e := baselineEntry{Analyzer: d.Analyzer, File: d.Pos.Filename, Message: d.Message}
		if index[e] {
			matched[e] = true
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range entries {
		if !matched[e] {
			stale++
		}
	}
	return kept, suppressed, stale, nil
}
