package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/serve"
	"github.com/linebacker-sim/linebacker/internal/store"
	"github.com/linebacker-sim/linebacker/internal/workload"
)

// buildPath is the lbserve binary compiled by TestMain for the process
// tests (skipped in -short mode, where nothing is built).
var buildPath string

func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(testMain(m))
}

func testMain(m *testing.M) int {
	if !testing.Short() {
		dir, err := os.MkdirTemp("", "lbserve-bin-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbserve test:", err)
			return 1
		}
		defer func() {
			if rerr := os.RemoveAll(dir); rerr != nil {
				fmt.Fprintln(os.Stderr, "lbserve test:", rerr)
			}
		}()
		buildPath = filepath.Join(dir, "lbserve")
		if out, err := exec.Command("go", "build", "-o", buildPath, ".").CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building lbserve: %v\n%s", err, out)
			return 1
		}
	}
	return m.Run()
}

func lbserveBinary(t *testing.T) string {
	t.Helper()
	if buildPath == "" {
		t.Fatal("no binary built (short mode?)")
	}
	return buildPath
}

// server is one spawned lbserve process.
type server struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *bytes.Buffer
	mu   *sync.Mutex
}

func (s *server) output() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.out.String()
}

// startServer spawns `lbserve serve` over dir and waits for its readiness
// line to learn the bound port.
func startServer(t *testing.T, bin, dir string) *server {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-store", dir, "-addr", "127.0.0.1:0",
		"-lease-ttl", "1s", "-windows", "3")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, out: &bytes.Buffer{}, mu: &sync.Mutex{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			s.mu.Lock()
			fmt.Fprintln(s.out, line)
			s.mu.Unlock()
			if _, base, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addrCh <- base:
				default:
				}
			}
		}
	}()
	select {
	case base := <-addrCh:
		s.base = base
	case <-time.After(30 * time.Second):
		if kerr := cmd.Process.Kill(); kerr != nil {
			t.Log("kill:", kerr)
		}
		t.Fatalf("server never became ready; output:\n%s", s.output())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			if kerr := cmd.Process.Kill(); kerr != nil {
				t.Log("cleanup kill:", kerr)
			}
			if werr := cmd.Wait(); werr != nil && !strings.Contains(werr.Error(), "killed") {
				t.Log("cleanup wait:", werr)
			}
		}
	})
	return s
}

func postSweep(t *testing.T, base string, req serve.SweepRequest) serve.JobStatus {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		data, rerr := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d %s (read err %v)", resp.StatusCode, data, rerr)
	}
	var js serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

func serverStats(t *testing.T, base string) serve.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestCrashKillRestartResumesExactly is the crash-safety acceptance test:
// SIGKILL the daemon mid-sweep, restart it over the same store directory,
// resubmit the identical request, and prove — via the executions counter —
// that exactly the points that had not committed are re-simulated.
func TestCrashKillRestartResumesExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	bin := lbserveBinary(t)
	dir := t.TempDir()
	names := workload.Names()
	total := len(names)
	req := serve.SweepRequest{Windows: 3} // all benches, baseline

	s1 := startServer(t, bin, dir)
	js := postSweep(t, s1.base, req)

	// Wait until the sweep is genuinely mid-flight: some points durably
	// committed, ideally not all.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if n := serverStats(t, s1.base).StoreEntries; n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no points committed in time; output:\n%s", s1.output())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s1.cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no fsync help
		t.Fatal(err)
	}
	if err := s1.cmd.Wait(); err == nil {
		t.Fatal("killed server exited without error")
	}

	// Count what survived the crash straight from the store files.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatalf("store did not recover from the crash: %v", err)
	}
	before := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("kill landed before any commit; nothing to prove")
	}
	if before == total {
		t.Logf("note: sweep completed before the kill landed (%d/%d points)", before, total)
	}
	t.Logf("killed mid-sweep with %d/%d points durable", before, total)

	// Restart over the same directory and resubmit the identical request.
	s2 := startServer(t, bin, dir)
	js2 := postSweep(t, s2.base, req)
	if js2.ID != js.ID {
		t.Fatalf("resubmitted request got a different ticket: %s vs %s", js2.ID, js.ID)
	}
	deadline = time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(s2.base + "/v1/sweeps/" + js2.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var final serve.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&final)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if resp.StatusCode == http.StatusOK {
			if final.Counts[serve.PointOK] != total {
				t.Fatalf("restarted sweep finished with %+v, want %d ok", final.Counts, total)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted sweep never finished: %+v\noutput:\n%s", final, s2.output())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The heart of the test: the restarted server re-simulated exactly the
	// points the crash lost — no more (no re-runs of durable points), no
	// fewer (no phantom completions).
	stats := serverStats(t, s2.base)
	if want := int64(total - before); stats.Executions != want {
		t.Fatalf("restart re-simulated %d points, want exactly %d (= %d total - %d durable)",
			stats.Executions, want, total, before)
	}
	if stats.StoreEntries != total {
		t.Fatalf("store holds %d entries after resume, want %d", stats.StoreEntries, total)
	}
	// The load report is cumulative (recovered at open + committed since):
	// every point must be accounted, and a torn tail from the SIGKILL is
	// reported, never fatal.
	if stats.StoreLoad.Loaded != total {
		t.Fatalf("load report accounts %d entries, want %d", stats.StoreLoad.Loaded, total)
	}
	if stats.StoreLoad.Skipped > 0 || stats.StoreLoad.TruncatedBytes > 0 {
		t.Logf("crash left recoverable damage: %+v", stats.StoreLoad)
	}
}

// TestServeSIGTERMDrains proves the graceful path: SIGTERM mid-sweep lets
// in-flight work finish and commit, reports the drain, and exits 0.
func TestServeSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	bin := lbserveBinary(t)
	dir := t.TempDir()
	s := startServer(t, bin, dir)

	js := postSweep(t, s.base, serve.SweepRequest{Benches: []string{"S2", "BI"}, Windows: 3})
	if js.ID == "" {
		t.Fatal("no ticket")
	}
	// Only an in-flight job is guaranteed to finish through a drain; a
	// still-queued one is (correctly) rejected. Wait for pickup.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(s.base + "/v1/sweeps/" + js.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur serve.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&cur)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if derr != nil {
			t.Fatal(derr)
		}
		if cur.State == serve.StateRunning || cur.State == serve.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := s.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited non-zero: %v\noutput:\n%s", err, s.output())
	}
	out := s.output()
	if !strings.Contains(out, "draining") || !strings.Contains(out, "drained") {
		t.Fatalf("drain left no trace in the log:\n%s", out)
	}

	// The in-flight job finished and committed before exit.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 2 {
		t.Fatalf("drained server committed %d points, want 2", st.Len())
	}
}
