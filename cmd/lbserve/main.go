// Command lbserve runs (and talks to) the crash-safe sweep service: an
// HTTP daemon that executes benchmark sweeps through the fault-tolerant
// harness over a persistent, content-addressed result store.
//
// Subcommands:
//
//	lbserve serve    -store DIR [-addr :8080]     run the daemon
//	lbserve submit   [-addr URL] [-bench a,b,..]  submit a sweep and wait
//	lbserve estimate [-addr URL] -bench B [...]   one interactive config query
//	lbserve stats    [-addr URL]                  print server counters
//
// The daemon's -twin flag (default on) enables the analytical cheap-query
// tier: estimate answers in microseconds from a model calibrated against
// the simulator, with a confidence band, and falls back to a full
// cycle-level run for anything outside the calibrated envelope. Sweeps
// submitted with -mode twin answer twin-eligible points the same way.
//
// The daemon commits every completed point to the store (CRC-framed,
// fsynced) before a client can observe it, so a kill -9 loses at most
// in-flight simulations; restarting over the same -store directory and
// resubmitting the same request re-simulates only what never finished.
// SIGINT/SIGTERM drain gracefully: queued jobs are rejected with resumable
// tickets, in-flight jobs finish and commit.
//
// Usage:
//
//	lbserve serve -store /var/lib/lbserve -addr :8080
//	lbserve submit -bench S2,BI -scheme baseline,linebacker -windows 4
//	lbserve submit -bench all -chaos panic:sm:1000,bench:S2
//
// Exit status: 0 ok, 1 run/point failure, 2 usage error.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/serve"
	"github.com/linebacker-sim/linebacker/internal/store"
)

func main() {
	os.Exit(cliutil.Exit(os.Stderr, "lbserve", run(os.Args[1:], os.Stdout, os.Stderr)))
}

// run is the testable entry point: flag parsing and output against
// injectable streams, errors returned instead of os.Exit.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return cliutil.Usagef("missing subcommand: serve | submit | estimate | stats")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], stdout, stderr)
	case "submit":
		return runSubmit(args[1:], stdout, stderr)
	case "estimate":
		return runEstimate(args[1:], stdout, stderr)
	case "stats":
		return runStats(args[1:], stdout)
	case "-h", "-help", "--help":
		fmt.Fprintln(stdout, "usage: lbserve <serve|submit|estimate|stats> [flags]   (-h after a subcommand for its flags)")
		return nil
	default:
		return cliutil.Usagef("unknown subcommand %q (want serve, submit, estimate or stats)", args[0])
	}
}

// runServe starts the daemon and blocks until a signal drains it.
func runServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbserve serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		storeDir     = fs.String("store", "", "result store directory (required; created if missing)")
		windows      = fs.Int("windows", 3, "default run length in monitoring windows")
		queueDepth   = fs.Int("queue", 4, "admission queue depth; overflow answers 429")
		jobWorkers   = fs.Int("job-workers", 2, "concurrently executing jobs")
		retries      = fs.Int("retries", 3, "max executions per point for transient failures")
		runTimeout   = fs.Duration("run-timeout", 0, "wall-clock limit per simulation (0 = none)")
		watchdog     = fs.Duration("watchdog", 10*time.Second, "no-forward-progress watchdog tick (0 = off)")
		drainTimeout = fs.Duration("drain-timeout", 2*time.Minute, "how long a signal waits for in-flight jobs")
		leaseTTL     = fs.Duration("lease-ttl", time.Minute, "cross-process single-flight lease TTL; a crashed replica's leases are stolen this long after its last renewal")
		twinTier     = fs.Bool("twin", true, "enable the analytical cheap-query tier (/v1/estimate, -mode twin sweeps)")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	if *storeDir == "" {
		return cliutil.Usagef("-store is required")
	}

	st, err := store.Open(*storeDir, store.Options{LeaseTTL: *leaseTTL})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := st.Close(); cerr != nil {
			fmt.Fprintln(stderr, "lbserve: store:", cerr)
		}
	}()
	rep := st.Report()
	fmt.Fprintf(stdout, "lbserve: store %s: %d result(s) loaded from %d segment(s)",
		*storeDir, rep.Loaded, rep.Segments)
	if rep.Skipped > 0 || rep.TruncatedBytes > 0 {
		fmt.Fprintf(stdout, " (recovered past %d corrupt record(s), %d truncated tail byte(s))",
			rep.Skipped, rep.TruncatedBytes)
	}
	fmt.Fprintln(stdout)

	s := serve.New(st, serve.Options{
		Windows:      *windows,
		QueueDepth:   *queueDepth,
		JobWorkers:   *jobWorkers,
		Retry:        serve.RetryPolicy{Attempts: *retries},
		RunTimeout:   *runTimeout,
		WatchdogTick: *watchdog,
		Twin:         *twinTier,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	// The "listening" line is the readiness signal smoke tests and
	// process managers wait for; it carries the resolved port for -addr :0.
	fmt.Fprintf(stdout, "lbserve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(stdout, "lbserve: signal received, draining")
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		rep := s.Drain(dctx)
		fmt.Fprintf(stdout, "lbserve: drained (rejected %d queued job(s), timed_out=%v)\n",
			rep.Rejected, rep.TimedOut)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if serr := hs.Shutdown(sctx); serr != nil {
			fmt.Fprintln(stderr, "lbserve: shutdown:", serr)
		}
	}()

	if serr := hs.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	<-shutdownDone
	return nil
}

// splitList parses a comma-separated flag into fields ("" -> nil).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// runSubmit posts one sweep request and (by default) waits for the result.
func runSubmit(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbserve submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "http://localhost:8080", "server base URL")
		benches  = fs.String("bench", "all", "comma-separated benchmark codes, or all")
		schemes  = fs.String("scheme", "baseline", "comma-separated scheme specs")
		windows  = fs.Int("windows", 0, "run length in monitoring windows (0 = server default)")
		paper    = fs.Bool("paper", false, "full Table 1 scale")
		chaos    = fs.String("chaos", "", "fault-injection spec, e.g. panic:sm:1000,bench:S2")
		deadline = fs.Int64("deadline-ms", 0, "per-point wall-clock deadline in ms (0 = none)")
		mode     = fs.String("mode", "", "execution tier: sim (default) | twin")
		wait     = fs.Bool("wait", true, "poll until the sweep finishes and print results")
		poll     = fs.Duration("poll", 200*time.Millisecond, "polling interval with -wait")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	req := serve.SweepRequest{
		Benches:    splitList(*benches),
		Schemes:    splitList(*schemes),
		Windows:    *windows,
		Paper:      *paper,
		Chaos:      *chaos,
		DeadlineMs: *deadline,
		Mode:       *mode,
	}

	js, err := submit(*addr, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "lbserve: sweep %s %s (%d point(s))\n", js.ID, js.State, totalPoints(js.Counts))
	if !*wait {
		return nil
	}

	for {
		code, body, err := get(*addr + "/v1/sweeps/" + js.ID + "/result")
		if err != nil {
			return err
		}
		switch code {
		case http.StatusOK:
			var final serve.JobStatus
			if err := json.Unmarshal(body, &final); err != nil {
				return fmt.Errorf("decoding result: %w", err)
			}
			return printResult(stdout, final)
		case http.StatusAccepted:
			time.Sleep(*poll)
		case http.StatusConflict:
			return fmt.Errorf("sweep %s was rejected by a draining server; resubmit to resume (completed points are stored)", js.ID)
		default:
			return fmt.Errorf("result endpoint: HTTP %d: %s", code, strings.TrimSpace(string(body)))
		}
	}
}

// Submit backoff tuning: a saturated server must neither be hammered (an
// unparsable Retry-After must not mean "retry immediately") nor be allowed
// to park the client arbitrarily long (a huge Retry-After is capped).
const (
	submitMaxAttempts = 10
	retryAfterCap     = 30 * time.Second
	retryBackoffBase  = 500 * time.Millisecond
)

// sleepFn is swapped by tests so backoff behaviour asserts in microseconds.
var sleepFn = time.Sleep

// retryAfterDelay turns a 429's Retry-After header into a wait. Both
// standard forms are honoured — delta-seconds and HTTP-date (RFC 9110
// §10.2.3) — and capped. An absent or unparsable header falls back to
// exponential backoff from the attempt number, not a fixed delay.
func retryAfterDelay(header string, attempt int, now time.Time) time.Duration {
	if header != "" {
		if secs, err := strconv.Atoi(header); err == nil && secs >= 0 {
			return capDelay(time.Duration(secs) * time.Second)
		}
		if when, err := http.ParseTime(header); err == nil {
			return capDelay(when.Sub(now))
		}
	}
	if attempt < 1 {
		attempt = 1
	}
	if attempt > 10 {
		attempt = 10 // keep the shift well-defined for any caller
	}
	return capDelay(retryBackoffBase << uint(attempt-1))
}

func capDelay(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > retryAfterCap {
		return retryAfterCap
	}
	return d
}

// submit posts the request, retrying while the server applies backpressure
// (429 + Retry-After).
func submit(addr string, req serve.SweepRequest) (serve.JobStatus, error) {
	var js serve.JobStatus
	body, err := json.Marshal(req)
	if err != nil {
		return js, fmt.Errorf("encoding request: %w", err)
	}
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(addr+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			return js, err
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		cerr := resp.Body.Close()
		if rerr != nil {
			return js, rerr
		}
		if cerr != nil {
			return js, cerr
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			if err := json.Unmarshal(data, &js); err != nil {
				return js, fmt.Errorf("decoding submit response: %w", err)
			}
			return js, nil
		case http.StatusTooManyRequests:
			if attempt >= submitMaxAttempts {
				return js, fmt.Errorf("server kept the queue full through %d submit attempts", attempt)
			}
			sleepFn(retryAfterDelay(resp.Header.Get("Retry-After"), attempt, time.Now()))
		case http.StatusServiceUnavailable:
			return js, fmt.Errorf("server is draining; retry after it restarts (completed points are stored): %s",
				strings.TrimSpace(string(data)))
		case http.StatusBadRequest:
			return js, cliutil.Usagef("server rejected the request: %s", strings.TrimSpace(string(data)))
		default:
			return js, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
}

// printResult renders the finished sweep; any failed point makes the whole
// command fail (exit 1) after all points have printed.
func printResult(stdout io.Writer, final serve.JobStatus) error {
	failed := 0
	for _, p := range final.Points {
		if p.State == serve.PointOK {
			note := ""
			if p.Attempts > 1 {
				note = fmt.Sprintf("  (attempt %d)", p.Attempts)
			}
			if p.Source == serve.SourceTwin {
				note += fmt.Sprintf("  [twin, %.3f..%.3f]", p.Lo, p.Hi)
			}
			fmt.Fprintf(stdout, "  %-4s %-12s IPC %7.3f%s\n", p.Bench, p.Scheme, p.IPC, note)
			continue
		}
		failed++
		kind, msg := "unknown", "no error detail"
		if p.Error != nil {
			kind, msg = p.Error.Kind, p.Error.Message
		}
		fmt.Fprintf(stdout, "  %-4s %-12s FAILED [%s, %d attempt(s)]: %s\n",
			p.Bench, p.Scheme, kind, p.Attempts, msg)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d point(s) failed", failed, len(final.Points))
	}
	return nil
}

func totalPoints(counts map[string]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// runStats prints the server counters.
func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lbserve stats", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "server base URL")
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	code, body, err := get(*addr + "/v1/stats")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("stats: HTTP %d: %s", code, strings.TrimSpace(string(body)))
	}
	var stats serve.Stats
	if err := json.Unmarshal(body, &stats); err != nil {
		return fmt.Errorf("decoding stats: %w", err)
	}
	fmt.Fprintf(stdout, "executions:    %d\n", stats.Executions)
	fmt.Fprintf(stdout, "store entries: %d\n", stats.StoreEntries)
	fmt.Fprintf(stdout, "store load:    %d loaded, %d skipped, %d truncated byte(s)\n",
		stats.StoreLoad.Loaded, stats.StoreLoad.Skipped, stats.StoreLoad.TruncatedBytes)
	for state, n := range stats.Jobs {
		fmt.Fprintf(stdout, "jobs %-9s %d\n", state+":", n)
	}
	fmt.Fprintf(stdout, "draining:      %v\n", stats.Draining)
	if stats.Twin.Enabled {
		fmt.Fprintf(stdout, "twin:          %d hit(s), %d fallback(s), %d model(s)\n",
			stats.Twin.Hits, stats.Twin.Fallbacks, stats.Twin.Models)
	} else {
		fmt.Fprintln(stdout, "twin:          disabled")
	}
	return nil
}

// runEstimate posts one configuration query to /v1/estimate and prints the
// answer with its provenance — the band when the twin answered, the
// fallback reason when the simulator did.
func runEstimate(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lbserve estimate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "http://localhost:8080", "server base URL")
		bench   = fs.String("bench", "", "benchmark code (required)")
		lb      = fs.Bool("lb", false, "query the Linebacker arm instead of baseline")
		l1kb    = fs.Int("l1kb", 0, "L1 capacity override in KB (0 = base config)")
		swl     = fs.Int("swl", 0, "static CTA limit (baseline arm only; 0 = none)")
		vtt     = fs.Int("vtt", 0, "VTT partition cap (Linebacker arm only; 0 = default)")
		windows = fs.Int("windows", 0, "run length in monitoring windows (0 = server default)")
		paper   = fs.Bool("paper", false, "full Table 1 scale")
	)
	if err := fs.Parse(args); err != nil {
		return cliutil.WrapParse(err)
	}
	if *bench == "" {
		return cliutil.Usagef("-bench is required")
	}
	body, err := json.Marshal(serve.EstimateRequest{
		Bench: *bench, LB: *lb, L1KB: *l1kb, SWLLimit: *swl, VTTParts: *vtt,
		Windows: *windows, Paper: *paper,
	})
	if err != nil {
		return fmt.Errorf("encoding request: %w", err)
	}
	start := time.Now()
	resp, err := http.Post(*addr+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	cerr := resp.Body.Close()
	if rerr != nil {
		return rerr
	}
	if cerr != nil {
		return cerr
	}
	elapsed := time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusBadRequest:
		return cliutil.Usagef("server rejected the query: %s", strings.TrimSpace(string(data)))
	default:
		return fmt.Errorf("estimate: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var er serve.EstimateResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return fmt.Errorf("decoding estimate: %w", err)
	}
	switch er.Source {
	case serve.SourceTwin:
		fmt.Fprintf(stdout, "%s: IPC %.3f  [%.3f, %.3f]  (twin, %v)\n",
			er.Bench, er.IPC, er.Lo, er.Hi, elapsed.Round(time.Microsecond))
		if er.Basis != "" {
			fmt.Fprintf(stdout, "  basis: %s\n", er.Basis)
		}
	default:
		fmt.Fprintf(stdout, "%s: IPC %.3f  (full simulation, %v)\n",
			er.Bench, er.IPC, elapsed.Round(time.Millisecond))
		if er.Reason != "" {
			fmt.Fprintf(stdout, "  fallback: %s\n", er.Reason)
		}
	}
	if er.MissRate > 0 {
		fmt.Fprintf(stdout, "  L1 load miss rate: %.1f%%\n", er.MissRate*100)
	}
	return nil
}

// get is a small GET helper returning status and body.
func get(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	cerr := resp.Body.Close()
	if rerr != nil {
		return resp.StatusCode, nil, rerr
	}
	if cerr != nil {
		return resp.StatusCode, nil, cerr
	}
	return resp.StatusCode, data, nil
}
