package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/serve"
)

// submitReq is a minimal valid sweep request for the stub-server tests
// (the stub never looks at it).
func submitReq() serve.SweepRequest {
	return serve.SweepRequest{Benches: []string{"S2"}, Schemes: []string{"baseline"}, Windows: 1}
}

// stub429 answers every submit with 429 and a fixed Retry-After header
// value ("" = no header), counting the requests.
func stub429(t *testing.T, retryAfter string) (*httptest.Server, *int) {
	t.Helper()
	hits := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

// captureSleeps reroutes the submit backoff into a recorder for the test's
// lifetime, so a 9-attempt retry ladder asserts in microseconds.
func captureSleeps(t *testing.T) *[]time.Duration {
	t.Helper()
	var delays []time.Duration
	prev := sleepFn
	sleepFn = func(d time.Duration) { delays = append(delays, d) }
	t.Cleanup(func() { sleepFn = prev })
	return &delays
}

// TestSubmitBacksOffWithoutRetryAfter is the regression test for the
// hot-loop bug: a saturated server that never sends a parsable Retry-After
// must still be retried with real, growing, capped backoff. The pre-fix
// client slept a fixed 1s regardless of attempt (and zero forever if the
// constant had been lowered), so the growth assertion fails on it.
func TestSubmitBacksOffWithoutRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		name, header string
	}{
		{"absent", ""},
		{"unparsable", "soon"},
		{"negative", "-3"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, hits := stub429(t, tc.header)
			delays := captureSleeps(t)
			_, err := submit(srv.URL, submitReq())
			if err == nil {
				t.Fatal("submit against an always-429 server must fail")
			}
			if *hits != submitMaxAttempts {
				t.Errorf("made %d requests, want %d", *hits, submitMaxAttempts)
			}
			if len(*delays) != submitMaxAttempts-1 {
				t.Fatalf("slept %d times, want %d", len(*delays), submitMaxAttempts-1)
			}
			for i, d := range *delays {
				if d <= 0 {
					t.Errorf("sleep %d is %v: hot loop", i, d)
				}
				if d > retryAfterCap {
					t.Errorf("sleep %d is %v, above the %v cap", i, d, retryAfterCap)
				}
				if i > 0 && d < (*delays)[i-1] {
					t.Errorf("sleep %d (%v) shrank from %v: backoff must not decay", i, d, (*delays)[i-1])
				}
			}
			if first, last := (*delays)[0], (*delays)[len(*delays)-1]; last <= first {
				t.Errorf("backoff never grew: first %v, last %v", first, last)
			}
		})
	}
}

// TestSubmitCapsServerRetryAfter: a confused server advertising a huge
// delta-seconds Retry-After must not park the client for it verbatim (the
// pre-fix client slept the full advertised 3600s).
func TestSubmitCapsServerRetryAfter(t *testing.T) {
	srv, _ := stub429(t, "3600")
	delays := captureSleeps(t)
	if _, err := submit(srv.URL, submitReq()); err == nil {
		t.Fatal("submit against an always-429 server must fail")
	}
	for i, d := range *delays {
		if d != retryAfterCap {
			t.Errorf("sleep %d is %v, want the %v cap", i, d, retryAfterCap)
		}
	}
}

// TestSubmitHonoursHTTPDateRetryAfter: the HTTP-date form is valid per RFC
// 9110 §10.2.3; the pre-fix strconv.Atoi treated it as unparsable.
func TestSubmitHonoursHTTPDateRetryAfter(t *testing.T) {
	when := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	srv, _ := stub429(t, when)
	delays := captureSleeps(t)
	if _, err := submit(srv.URL, submitReq()); err == nil {
		t.Fatal("submit against an always-429 server must fail")
	}
	if len(*delays) == 0 {
		t.Fatal("no sleeps recorded")
	}
	// The stub's date is ~10s out; HTTP-date has 1s resolution and the
	// test itself takes time, so accept a broad window that still rules
	// out both the old fallback (1s) and ignoring the header (500ms..).
	if d := (*delays)[0]; d < 5*time.Second || d > 10*time.Second {
		t.Errorf("first sleep %v does not honour the HTTP-date header (~10s out)", d)
	}
}

func TestRetryAfterDelayTable(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	for _, tc := range []struct {
		name, header string
		attempt      int
		want         time.Duration
	}{
		{"delta seconds", "7", 1, 7 * time.Second},
		{"delta zero is honoured", "0", 1, 0},
		{"delta capped", "86400", 1, retryAfterCap},
		{"http date", now.Add(4 * time.Second).Format(http.TimeFormat), 1, 4 * time.Second},
		{"http date in the past", now.Add(-time.Hour).Format(http.TimeFormat), 1, 0},
		{"absent attempt 1", "", 1, retryBackoffBase},
		{"absent attempt 4", "", 4, retryBackoffBase * 8},
		{"absent capped", "", 10, retryAfterCap},
		{"garbage falls back", "tomorrow-ish", 2, retryBackoffBase * 2},
		{"negative falls back to backoff floor", "-1", 1, retryBackoffBase},
	} {
		if got := retryAfterDelay(tc.header, tc.attempt, now); got != tc.want {
			t.Errorf("%s: retryAfterDelay(%q, %d) = %v, want %v", tc.name, tc.header, tc.attempt, got, tc.want)
		}
	}
}
