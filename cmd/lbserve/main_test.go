package main

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
	"github.com/linebacker-sim/linebacker/internal/serve"
	"github.com/linebacker-sim/linebacker/internal/store"
)

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"serve"},                     // missing -store
		{"serve", "-nonsense"},        // unknown flag
		{"submit", "-windows", "owl"}, // bad flag value
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		err := run(args, &out, &errb)
		if !errors.Is(err, cliutil.ErrUsage) {
			t.Errorf("run(%q) = %v, want usage error", args, err)
		}
	}
	var out, errb bytes.Buffer
	if err := run([]string{"-h"}, &out, &errb); err != nil {
		t.Errorf("-h returned %v", err)
	}
	if !strings.Contains(out.String(), "serve|submit|estimate|stats") {
		t.Errorf("-h printed %q", out.String())
	}
}

// inProcessServer serves a real sweep service over httptest so the client
// subcommands can be driven without spawning a process.
func inProcessServer(t *testing.T, opts serve.Options) *httptest.Server {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{LeasePoll: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(st, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := st.Close(); err != nil {
			t.Errorf("closing store: %v", err)
		}
	})
	return ts
}

func TestSubmitAndStatsClient(t *testing.T) {
	ts := inProcessServer(t, serve.Options{Windows: 2})

	var out, errb bytes.Buffer
	err := run([]string{"submit", "-addr", ts.URL, "-bench", "S2", "-windows", "2",
		"-poll", "20ms"}, &out, &errb)
	if err != nil {
		t.Fatalf("submit: %v (stderr %q)", err, errb.String())
	}
	if !strings.Contains(out.String(), "IPC") || !strings.Contains(out.String(), "S2") {
		t.Fatalf("submit output missing the result line:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"stats", "-addr", ts.URL}, &out, &errb); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(out.String(), "executions:    1") ||
		!strings.Contains(out.String(), "store entries: 1") {
		t.Fatalf("stats output:\n%s", out.String())
	}

	// A bad request is a usage error (exit 2), reported with the server's
	// validation message.
	out.Reset()
	err = run([]string{"submit", "-addr", ts.URL, "-bench", "no-such-bench"}, &out, &errb)
	if !errors.Is(err, cliutil.ErrUsage) || !strings.Contains(err.Error(), "no-such-bench") {
		t.Fatalf("invalid bench: %v", err)
	}
}

func TestSubmitReportsFailedPoints(t *testing.T) {
	ts := inProcessServer(t, serve.Options{
		Windows: 2,
		Retry:   serve.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	var out, errb bytes.Buffer
	err := run([]string{"submit", "-addr", ts.URL, "-bench", "S2", "-windows", "2",
		"-chaos", "panic:sm:1000,bench:S2", "-poll", "20ms"}, &out, &errb)
	if err == nil || !strings.Contains(err.Error(), "1 of 1 point(s) failed") {
		t.Fatalf("faulted sweep: err=%v", err)
	}
	if !strings.Contains(out.String(), "FAILED [panic, 2 attempt(s)]") {
		t.Fatalf("failure line missing the structured error:\n%s", out.String())
	}
}
