package main

import (
	"bytes"
	"io"
	"testing"

	"github.com/linebacker-sim/linebacker/internal/cliutil"
)

func TestExitCodeUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fig", "nonsense"},
		{}, // one of -fig/-all/-list required
		{"-badflag"},
	} {
		var stderr bytes.Buffer
		err := run(args, io.Discard, &stderr)
		if code := cliutil.Exit(&stderr, "lbfig", err); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	err := run([]string{"-h"}, io.Discard, io.Discard)
	if code := cliutil.Exit(io.Discard, "lbfig", err); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}
